#!/usr/bin/env python3
"""Bench regression gate: compare fresh bench JSON against committed baselines.

Usage:
  tools/check_bench_regress.py [--baseline-dir bench/baselines]
                               [--results-dir bench_results] [--self-test]

For every baseline file bench/baselines/<name>.json with a matching
bench_results/<name>.json from the current run:

  HARD FAIL (exit 1) on broken correctness:
    - a "(1=yes)" invariant check row measuring anything but 1.0;
    - any "fingerprint" check row whose measured value differs from the
      baseline (the decision fingerprint is seed-pure and shard/thread
      invariant, so any drift is a real behaviour change — if the change
      is intentional, regenerate the baseline in the same commit);
    - missing result files, unparseable JSON, or missing required fields.

  WARN ONLY (::warning:: annotation, exit 0) on performance drift:
    - pairs_per_s dropping more than 20% below the baseline (shared CI
      runners make absolute throughput noisy, so this never hard-fails);
    - non-fingerprint seed-pure check rows drifting from the baseline
      (these runs may use different knobs, e.g. shard count, than the
      baseline recording — the invariant and fingerprint rows are the
      contract).

--self-test proves the gate can fail: it perturbs a copy of each baseline
fingerprint and asserts the comparison reports a hard failure, then exits.
"""

import argparse
import copy
import json
import os
import sys

REQUIRED_FIELDS = ("bench", "seed", "threads", "wall_s", "pairs",
                   "pairs_per_s", "checks")
THROUGHPUT_DROP_WARN = 0.20


def load(path):
    with open(path) as f:
        return json.load(f)


def check_rows(doc):
    return {c["metric"]: c["measured"] for c in doc.get("checks", [])}


def compare(name, baseline, current):
    """Return (errors, warnings) comparing one current run to its baseline."""
    errors, warnings = [], []
    for field in REQUIRED_FIELDS:
        if field not in current:
            errors.append(f"{name}: result JSON missing field {field!r}")
    if errors:
        return errors, warnings

    if current.get("seed") != baseline.get("seed"):
        warnings.append(
            f"{name}: seed {current.get('seed')} != baseline "
            f"{baseline.get('seed')}; seed-pure comparisons skipped")
        base_rows = {}
    else:
        base_rows = check_rows(baseline)
    cur_rows = check_rows(current)

    for metric, measured in cur_rows.items():
        if "(1=yes)" in metric and measured != 1.0:
            errors.append(f"{name}: invariant broken: {metric!r} = {measured}")

    for metric, base_val in base_rows.items():
        if metric not in cur_rows:
            errors.append(f"{name}: check row disappeared: {metric!r}")
            continue
        cur_val = cur_rows[metric]
        if "fingerprint" in metric:
            if cur_val != base_val:
                errors.append(
                    f"{name}: fingerprint drift: {metric!r} "
                    f"{base_val} -> {cur_val} (decision behaviour changed; "
                    "regenerate bench/baselines/ if intentional)")
        elif "(1=yes)" not in metric and cur_val != base_val:
            warnings.append(
                f"{name}: seed-pure row drifted: {metric!r} "
                f"{base_val} -> {cur_val}")

    base_tput = baseline.get("pairs_per_s", 0.0)
    cur_tput = current.get("pairs_per_s", 0.0)
    if base_tput > 0 and cur_tput < (1.0 - THROUGHPUT_DROP_WARN) * base_tput:
        warnings.append(
            f"{name}: throughput dropped {100 * (1 - cur_tput / base_tput):.0f}% "
            f"({base_tput:.0f} -> {cur_tput:.0f} pairs/s; want within "
            f"{100 * THROUGHPUT_DROP_WARN:.0f}%)")
    return errors, warnings


def run_gate(baseline_dir, results_dir):
    baselines = sorted(f for f in os.listdir(baseline_dir)
                       if f.endswith(".json"))
    if not baselines:
        return [f"no baselines found in {baseline_dir}"], [], 0
    errors, warnings, compared = [], [], 0
    for fname in baselines:
        name = fname[:-len(".json")]
        base_path = os.path.join(baseline_dir, fname)
        cur_path = os.path.join(results_dir, fname)
        try:
            baseline = load(base_path)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{name}: unreadable baseline: {e}")
            continue
        if not os.path.exists(cur_path):
            errors.append(
                f"{name}: no result at {cur_path} (bench not run, or it "
                "wrote under a different smoke/full name)")
            continue
        try:
            current = load(cur_path)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{name}: unparseable result JSON: {e}")
            continue
        e, w = compare(name, baseline, current)
        errors += e
        warnings += w
        compared += 1
    return errors, warnings, compared


def self_test(baseline_dir):
    """The gate must catch a perturbed fingerprint in every baseline."""
    baselines = sorted(f for f in os.listdir(baseline_dir)
                       if f.endswith(".json"))
    if not baselines:
        print(f"self-test FAILED: no baselines in {baseline_dir}")
        return 1
    failures = 0
    for fname in baselines:
        baseline = load(os.path.join(baseline_dir, fname))
        perturbed = copy.deepcopy(baseline)
        rows = [c for c in perturbed.get("checks", [])
                if "fingerprint" in c["metric"]]
        if not rows:
            print(f"self-test FAILED: {fname} has no fingerprint check row")
            failures += 1
            continue
        for c in rows:
            c["measured"] = c["measured"] + 1.0
        errors, _ = compare(fname, baseline, perturbed)
        if any("fingerprint drift" in e for e in errors):
            print(f"self-test OK: perturbed fingerprint in {fname} "
                  "was caught")
        else:
            print(f"self-test FAILED: perturbed fingerprint in {fname} "
                  "slipped through")
            failures += 1
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--results-dir", default="bench_results")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate fails on a perturbed fingerprint")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.baseline_dir))

    errors, warnings, compared = run_gate(args.baseline_dir, args.results_dir)
    for w in warnings:
        print(f"::warning::{w}")
    for e in errors:
        print(f"ERROR: {e}")
    if errors:
        print(f"bench regression gate: FAILED ({len(errors)} error(s), "
              f"{compared} bench(es) compared)")
        sys.exit(1)
    print(f"bench regression gate: OK ({compared} bench(es) compared, "
          f"{len(warnings)} warning(s))")


if __name__ == "__main__":
    main()
