// Figure 5 (§III-B.2): CDF of (minimum average RTT across the four tunnel
// overlay paths) / (average RTT of the direct path). Paper: the overlay
// reduces the RTT for 52% of pairs; for direct paths with RTT >= 100 ms it
// reduces 68% of them, and 90% of those >= 150 ms.

#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  analysis::Cdf ratio;
  int n100 = 0, n100_reduced = 0;
  int n150 = 0, n150_reduced = 0;
  for (const auto& s : exp.samples) {
    const double r = s.min_overlay_rtt_ms() / s.direct_rtt_ms;
    ratio.add(r);
    if (s.direct_rtt_ms >= 100) {
      ++n100;
      n100_reduced += r < 1.0;
    }
    if (s.direct_rtt_ms >= 150) {
      ++n150;
      n150_reduced += r < 1.0;
    }
  }

  print_header("Figure 5", "overlay RTT / direct RTT");
  print_cdf_log(ratio, "min tunnel avg RTT / direct avg RTT", 0.2, 10.0);

  print_paper_checks({
      {"fraction of pairs with RTT reduced", 0.52, ratio.fraction_leq(1.0)},
      {"RTT reduced | direct RTT >= 100 ms", 0.68,
       n100 ? static_cast<double>(n100_reduced) / n100 : 0.0},
      {"RTT reduced | direct RTT >= 150 ms", 0.90,
       n150 ? static_cast<double>(n150_reduced) / n150 : 0.0},
  });
  return 0;
}
