#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "sim/env.h"
#include "wkld/world.h"

namespace cronets::bench {

/// Seed shared by every figure bench so the same generated Internet
/// underlies the whole evaluation (override with CRONETS_SEED).
inline std::uint64_t world_seed() {
  return sim::env_u64("CRONETS_SEED", 42);
}

/// Set CRONETS_QUICK=1 to shrink the slow (packet-level) benches.
inline bool quick_mode() { return sim::env_flag("CRONETS_QUICK"); }

inline void print_header(const char* fig, const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("==================================================================\n");
}

/// Print a CDF as (x, F(x)) rows on a log-spaced grid, like the paper's
/// log-x CDF figures.
inline void print_cdf_log(const analysis::Cdf& cdf, const char* name, double lo,
                          double hi, int points = 25) {
  std::printf("-- CDF: %s (n=%zu)\n", name, cdf.size());
  std::printf("%12s %8s\n", "x", "CDF");
  for (int i = 0; i <= points; ++i) {
    const double x = lo * std::pow(hi / lo, static_cast<double>(i) / points);
    std::printf("%12.4g %8.3f\n", x, cdf.fraction_leq(x));
  }
}

struct PaperCheck {
  std::string metric;
  double paper;
  double measured;
};

/// Print the paper-vs-measured summary block every bench ends with; these
/// rows are what EXPERIMENTS.md records.
inline void print_paper_checks(const std::vector<PaperCheck>& checks) {
  std::printf("\n-- paper vs measured --------------------------------------------\n");
  std::printf("%-52s %10s %10s\n", "metric", "paper", "measured");
  for (const auto& c : checks) {
    std::printf("%-52s %10.3f %10.3f\n", c.metric.c_str(), c.paper, c.measured);
  }
  std::printf("\n");
}

/// Wall-clock + throughput tracker for a bench's measurement phase, plus
/// machine-readable output: `finish()` writes bench_results/<name>.json
/// with the timing, pair counts, and paper-check rows, so CI can archive
/// and diff the speedup trajectory PR over PR (the text report stays the
/// human-facing artifact). The JSON `checks` block depends only on the
/// world seed — never on thread count or timing — so it doubles as the
/// determinism fingerprint for the parallel engine.
///
/// Shrunk runs (`--smoke` / CRONETS_QUICK) write
/// bench_results/smoke_<name>.json instead, so a CI smoke pass can never
/// clobber a full-run result (and tools/check_bench_regress.py compares
/// smoke runs against the committed bench/baselines/smoke_*.json).
class BenchRun {
 public:
  explicit BenchRun(std::string name, bool smoke = quick_mode())
      : name_(std::move(name)),
        smoke_(smoke),
        start_(std::chrono::steady_clock::now()) {}

  /// Record how many endpoint pairs the measurement phase swept.
  void set_pairs(long pairs) { pairs_ = pairs; }
  /// Attach a machine-performance metric (wall-clock latencies, rates) to
  /// the JSON under "extra". Unlike `checks`, extra values may depend on
  /// the machine and thread count — keep seed-determined results in checks.
  void add_extra(const std::string& key, double value) {
    extra_.emplace_back(key, value);
  }
  /// Stop the measurement clock (call right after the sweep; printing and
  /// aggregation below it are excluded). Without an explicit call,
  /// `finish()` stops it.
  void stop_clock() {
    if (wall_s_ < 0) {
      wall_s_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count();
    }
  }

  /// Measured wall seconds (valid after stop_clock()).
  double wall_seconds() const { return wall_s_; }

  void finish(const std::vector<PaperCheck>& checks) {
    stop_clock();
    print_paper_checks(checks);
    std::printf("-- timing: %.3f s wall, %ld pairs, %.0f pairs/s, %d threads\n\n",
                wall_s_, pairs_, pairs_ > 0 ? pairs_ / wall_s_ : 0.0, threads());
    write_json(checks);
  }

 private:
  static int threads() {
    return sim::Parallelism{}.resolved();
  }

  static std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  void write_json(const std::vector<PaperCheck>& checks) const {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    const std::string path =
        std::string("bench_results/") + (smoke_ ? "smoke_" : "") + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;  // read-only checkout: the text report already printed
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", json_escape(name_).c_str());
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(world_seed()));
    std::fprintf(f, "  \"threads\": %d,\n", threads());
    std::fprintf(f, "  \"smoke\": %s,\n", smoke_ ? "true" : "false");
    std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
    std::fprintf(f, "  \"wall_s\": %.6f,\n", wall_s_);
    std::fprintf(f, "  \"pairs\": %ld,\n", pairs_);
    std::fprintf(f, "  \"pairs_per_s\": %.3f,\n",
                 pairs_ > 0 && wall_s_ > 0 ? pairs_ / wall_s_ : 0.0);
    if (!extra_.empty()) {
      std::fprintf(f, "  \"extra\": {");
      for (std::size_t i = 0; i < extra_.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\": %.17g", i ? "," : "",
                     json_escape(extra_[i].first).c_str(), extra_[i].second);
      }
      std::fprintf(f, "\n  },\n");
    }
    std::fprintf(f, "  \"checks\": [");
    for (std::size_t i = 0; i < checks.size(); ++i) {
      std::fprintf(f, "%s\n    {\"metric\": \"%s\", \"paper\": %.17g, \"measured\": %.17g}",
                   i ? "," : "", json_escape(checks[i].metric).c_str(),
                   checks[i].paper, checks[i].measured);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::string name_;
  bool smoke_ = false;
  std::chrono::steady_clock::time_point start_;
  double wall_s_ = -1.0;
  long pairs_ = 0;
  std::vector<std::pair<std::string, double>> extra_;
};

}  // namespace cronets::bench
