#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "wkld/world.h"

namespace cronets::bench {

/// Seed shared by every figure bench so the same generated Internet
/// underlies the whole evaluation (override with CRONETS_SEED).
inline std::uint64_t world_seed() {
  if (const char* s = std::getenv("CRONETS_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 42;
}

/// Set CRONETS_QUICK=1 to shrink the slow (packet-level) benches.
inline bool quick_mode() {
  const char* q = std::getenv("CRONETS_QUICK");
  return q && q[0] == '1';
}

inline void print_header(const char* fig, const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("==================================================================\n");
}

/// Print a CDF as (x, F(x)) rows on a log-spaced grid, like the paper's
/// log-x CDF figures.
inline void print_cdf_log(const analysis::Cdf& cdf, const char* name, double lo,
                          double hi, int points = 25) {
  std::printf("-- CDF: %s (n=%zu)\n", name, cdf.size());
  std::printf("%12s %8s\n", "x", "CDF");
  for (int i = 0; i <= points; ++i) {
    const double x = lo * std::pow(hi / lo, static_cast<double>(i) / points);
    std::printf("%12.4g %8.3f\n", x, cdf.fraction_leq(x));
  }
}

struct PaperCheck {
  std::string metric;
  double paper;
  double measured;
};

/// Print the paper-vs-measured summary block every bench ends with; these
/// rows are what EXPERIMENTS.md records.
inline void print_paper_checks(const std::vector<PaperCheck>& checks) {
  std::printf("\n-- paper vs measured --------------------------------------------\n");
  std::printf("%-52s %10s %10s\n", "metric", "paper", "measured");
  for (const auto& c : checks) {
    std::printf("%-52s %10.3f %10.3f\n", c.metric.c_str(), c.paper, c.measured);
  }
  std::printf("\n");
}

}  // namespace cronets::bench
