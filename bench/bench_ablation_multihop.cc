// Extension (§VII-B): one-hop vs multi-hop overlay paths, now driven by
// the src/route/ routing plane instead of a hand-rolled two-DC relay
// table. The plane (delay policy) measures the backbone mesh and holds a
// route per (entry, exit) DC pair; the bench picks the best 2-hop
// configuration the way service::PathRanker scores kMultiHop candidates —
// min(entry leg, backbone bottleneck, exit leg) with the split-proxy
// haircut per relay — and then validates that choice at packet level with
// core::PacketLab.
//
// Check rows: the paper-era hypothesis (2-hop beats 1-hop on
// intercontinental pairs) plus the plane-vs-enumeration contract — the
// plane's best 2-hop choice must match or beat an exhaustive enumeration
// over every ordered DC pair relayed across the *direct* backbone edge
// (the old hand-rolled approach, done properly). Both are pure functions
// of the seed. The plane-vs-hand goodput column is informational: when
// the probe model is optimistic about an exit leg the packet run cannot
// sustain (CRONETS' probes have the same blind spot), the plane's choice
// is right per its measurements and still loses at packet level.

#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/measure_packet.h"
#include "route/plane.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();

  // Intercontinental pairs: Asia/AU clients served from NA/EU and vice
  // versa. near_src_dc/near_dst_dc are the old bench's hand-rolled relay
  // choices, kept as the comparison column.
  struct Case {
    const char* name;
    int src, dst, near_src_dc, near_dst_dc;
  };
  const int tok = net.dc_endpoint("tok");
  const int sng = net.dc_endpoint("sng");
  const int ams = net.dc_endpoint("ams");
  const int wdc = net.dc_endpoint("wdc");
  const int c_eu = net.add_client(topo::Region::kEurope, "mh-eu");
  const int c_as = net.add_client(topo::Region::kAsia, "mh-as");
  const int c_au = net.add_client(topo::Region::kAustralia, "mh-au");
  const int s_na = net.add_server(topo::Region::kNaEast, "mh-srv-na");

  const std::vector<Case> cases = {
      {"asia-server -> eu-client", tok, c_eu, tok, ams},
      {"na-server -> asia-client", s_na, c_as, wdc, tok},
      {"na-server -> au-client", s_na, c_au, wdc, sng},
      {"eu-dc -> asia-client", ams, c_as, ams, tok},
  };

  const sim::Time dur = quick_mode() ? sim::Time::seconds(6) : sim::Time::seconds(10);
  const sim::Time at = sim::Time::hours(1);

  print_header("Ablation: multi-hop overlays",
               "routing-plane 2-hop choice vs 1 DC and hand-rolled 2 DCs");
  BenchRun run("bench_ablation_multihop");

  // Warm the routing plane in the seconds before the measurement instant:
  // a few metric-exchange rounds measure every backbone edge and let
  // multi-hop routes propagate (Bellman-Ford needs one round per hop).
  route::RouteConfig rcfg;
  rcfg.policy = route::Policy::kDelay;
  route::RoutePlane plane(&net, &world.flow(), world.seed(), rcfg);
  for (int k = 8; k >= 1; --k) plane.step(at - sim::Time::seconds(k));

  const auto& dcs = net.dc_endpoints();
  const auto& graph = plane.graph();

  std::printf("%-26s %9s %11s %11s %11s %7s  %s\n", "case", "direct",
              "1-hop split", "2-hop hand", "2-hop plane", "pl/hd",
              "plane pair");

  core::PacketLab lab(&net);
  double ratio21_sum = 0, plane_vs_hand_sum = 0;
  int plane_matches_enum = 0;
  int n = 0;
  std::vector<int> via;
  for (const auto& c : cases) {
    // Model-level leg rates of every DC for this pair, with the exact
    // probe semantics the broker's ranker uses. measure() skips an overlay
    // that coincides with the pair's src or dst, so samples are matched by
    // endpoint id, never by dcs index.
    const auto s = world.meter().measure(c.src, c.dst, dcs, at);
    std::vector<const core::OverlaySample*> by_dc(dcs.size(), nullptr);
    for (const auto& os : s.overlays) {
      for (std::size_t i = 0; i < dcs.size(); ++i) {
        if (dcs[i] == os.overlay_ep) {
          by_dc[i] = &os;
          break;
        }
      }
    }

    // The plane's best 2-hop configuration: enter at a, ride the plane's
    // current route to b, exit at b — scored like a kMultiHop candidate.
    // The exhaustive reference forces the middle onto the direct backbone
    // edge for every ordered pair, which is all the old hand-rolled
    // enumeration could express.
    double plane_best = 0.0, enum_best = 0.0;
    double best_leg1 = 0.0, best_leg2 = 0.0;
    int best_a = -1, best_b = -1;
    for (std::size_t ia = 0; ia < dcs.size(); ++ia) {
      for (std::size_t ib = 0; ib < dcs.size(); ++ib) {
        if (ia == ib) continue;
        // A server hosted in a DC enters the backbone on its own VM: that
        // entry (or exit) leg is free, exactly like the old hand-rolled
        // table's via_a == src rows. A DC with no sample (it coincides
        // with the other side of the pair) cannot serve this role.
        if (dcs[ia] != c.src && by_dc[ia] == nullptr) continue;
        if (dcs[ib] != c.dst && by_dc[ib] == nullptr) continue;
        const double leg1 = dcs[ia] == c.src
                                ? std::numeric_limits<double>::infinity()
                                : by_dc[ia]->leg1_bps;
        const double leg2 = dcs[ib] == c.dst
                                ? std::numeric_limits<double>::infinity()
                                : by_dc[ib]->leg2_bps;
        const double direct_mid =
            graph.edge_measured(static_cast<int>(ia), static_cast<int>(ib))
                ? graph.ewma_bps(static_cast<int>(ia), static_cast<int>(ib))
                : 0.0;
        double enum_score = std::min(leg1, std::min(direct_mid, leg2));
        enum_score *= 0.97 * 0.97;
        enum_best = std::max(enum_best, enum_score);

        if (!plane.route(dcs[ia], dcs[ib], &via)) continue;
        double score =
            std::min(leg1, std::min(plane.route_bottleneck_bps(via), leg2));
        for (std::size_t h = 0; h < via.size(); ++h) score *= 0.97;
        // Lexicographic argmax: the min() composition ties whenever the
        // exit (or middle) leg is the bottleneck, and scan order would then
        // pick an arbitrary entry DC. Break ties towards leg headroom — a
        // free own-VM leg (infinite) always wins, mirroring what the
        // hand-rolled table did with its via_a == src rows.
        const bool better =
            score > plane_best ||
            (score == plane_best &&
             (leg1 > best_leg1 || (leg1 == best_leg1 && leg2 > best_leg2)));
        if (better) {
          plane_best = score;
          best_leg1 = leg1;
          best_leg2 = leg2;
          best_a = dcs[ia];
          best_b = dcs[ib];
        }
      }
    }
    if (plane_best >= enum_best * (1.0 - 1e-12)) ++plane_matches_enum;

    // Packet-level validation of the table. The plane-chosen relay pair
    // runs across the direct backbone edge (on the default great-circle
    // mesh the plane's routes are exactly the direct edges).
    const auto direct = lab.run_direct(c.src, c.dst, dur, at);
    const double one_hop =
        std::max(lab.run_split(c.src, c.dst, c.near_src_dc, dur, at).goodput_bps,
                 lab.run_split(c.src, c.dst, c.near_dst_dc, dur, at).goodput_bps);
    const double hand = lab.run_split_backbone(c.src, c.dst, c.near_src_dc,
                                               c.near_dst_dc, dur, at)
                            .goodput_bps;
    const double planep =
        best_a >= 0
            ? lab.run_split_backbone(c.src, c.dst, best_a, best_b, dur, at)
                  .goodput_bps
            : 0.0;
    const double ratio21 = one_hop > 0 ? planep / one_hop : 0.0;
    const double pl_vs_hd = hand > 0 ? planep / hand : 0.0;
    ratio21_sum += ratio21;
    plane_vs_hand_sum += pl_vs_hd;
    ++n;
    std::printf("%-26s %8.1fM %10.1fM %10.1fM %10.1fM %7.2f  %s->%s\n",
                c.name, direct.goodput_bps / 1e6, one_hop / 1e6, hand / 1e6,
                planep / 1e6, pl_vs_hd,
                best_a >= 0 ? net.endpoint(best_a).name.c_str() : "?",
                best_b >= 0 ? net.endpoint(best_b).name.c_str() : "?");
  }

  run.set_pairs(n);
  run.finish({
      {"avg 2-hop/1-hop ratio (hypothesis: >= 1)", 1.0,
       n ? ratio21_sum / n : 0.0},
      {"avg plane-choice / hand-rolled 2-hop goodput", 1.0,
       n ? plane_vs_hand_sum / n : 0.0},
      {"plane 2-hop choice >= exhaustive enumeration (1=yes)", 1.0,
       plane_matches_enum == n ? 1.0 : 0.0},
  });
  return 0;
}
