// Extension (§VII-B): one-hop vs multi-hop overlay paths. The paper left
// multi-hop overlays as future work; with the cloud's private backbone we
// can relay through two data centers (split-TCP at each) so the
// transcontinental middle rides the clean backbone. Packet-level runs on
// intercontinental pairs.

#include "bench_util.h"
#include "core/measure_packet.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();

  // Intercontinental pairs: Asia/AU clients served from NA/EU and vice versa.
  struct Case {
    const char* name;
    int src, dst, near_src_dc, near_dst_dc;
  };
  const int tok = net.dc_endpoint("tok");
  const int sng = net.dc_endpoint("sng");
  const int ams = net.dc_endpoint("ams");
  const int wdc = net.dc_endpoint("wdc");
  const int c_eu = net.add_client(topo::Region::kEurope, "mh-eu");
  const int c_as = net.add_client(topo::Region::kAsia, "mh-as");
  const int c_au = net.add_client(topo::Region::kAustralia, "mh-au");
  const int s_na = net.add_server(topo::Region::kNaEast, "mh-srv-na");

  const std::vector<Case> cases = {
      {"asia-server -> eu-client", tok, c_eu, tok, ams},
      {"na-server -> asia-client", s_na, c_as, wdc, tok},
      {"na-server -> au-client", s_na, c_au, wdc, sng},
      {"eu-dc -> asia-client", ams, c_as, ams, tok},
  };

  const sim::Time dur = quick_mode() ? sim::Time::seconds(6) : sim::Time::seconds(10);
  const sim::Time at = sim::Time::hours(1);

  print_header("Ablation: multi-hop overlays", "split via 1 DC vs 2 DCs + backbone");
  std::printf("%-28s %10s %12s %14s %10s\n", "case", "direct", "1-hop split",
              "2-hop backbone", "2hop/1hop");

  core::PacketLab lab(&net);
  double ratio_sum = 0;
  int n = 0;
  for (const auto& c : cases) {
    const auto direct = lab.run_direct(c.src, c.dst, dur, at);
    // Best single relay of the two nearby DCs.
    const double one_hop =
        std::max(lab.run_split(c.src, c.dst, c.near_src_dc, dur, at).goodput_bps,
                 lab.run_split(c.src, c.dst, c.near_dst_dc, dur, at).goodput_bps);
    const auto two_hop =
        lab.run_split_backbone(c.src, c.dst, c.near_src_dc, c.near_dst_dc, dur, at);
    const double ratio = one_hop > 0 ? two_hop.goodput_bps / one_hop : 0.0;
    ratio_sum += ratio;
    ++n;
    std::printf("%-28s %9.1fM %11.1fM %13.1fM %10.2f\n", c.name,
                direct.goodput_bps / 1e6, one_hop / 1e6, two_hop.goodput_bps / 1e6,
                ratio);
  }

  print_paper_checks({
      {"avg 2-hop/1-hop ratio (hypothesis: >= 1)", 1.0, n ? ratio_sum / n : 0.0},
  });
  return 0;
}
