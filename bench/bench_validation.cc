// Methodology validation: the analytic flow model (used for the paper-scale
// sweeps) against the packet-level stack, on real topology paths. For a
// sample of endpoint pairs we measure direct and split-overlay throughput
// both ways and report the per-pair ratio. This is the bench-form of the
// calibration property tests (tests/property_test.cc).
//
// CRONETS_QUICK=1 shrinks the sample.

#include <cmath>

#include "bench_util.h"
#include "core/measure_packet.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();
  const auto overlays = world.rent_paper_overlays();

  // A spread of pairs: each DC paired with one client per region.
  std::vector<std::pair<int, int>> pairs;
  const topo::Region regions[] = {topo::Region::kEurope, topo::Region::kAsia,
                                  topo::Region::kNaWest, topo::Region::kAustralia};
  int i = 0;
  for (int dc : overlays) {
    const int c = net.add_client(regions[i % 4], "val-" + std::to_string(i));
    ++i;
    pairs.push_back({dc, c});
  }
  const int n = quick_mode() ? 2 : static_cast<int>(pairs.size());
  const sim::Time dur = quick_mode() ? sim::Time::seconds(8) : sim::Time::seconds(15);
  const sim::Time at = sim::Time::hours(1);

  print_header("Validation", "analytic flow model vs packet-level stack");
  std::printf("%6s %14s %14s %9s %14s %14s %9s\n", "pair", "model direct",
              "packet direct", "ratio", "model split", "packet split", "ratio");

  core::PacketLab lab(&net);
  analysis::Cdf ratios;
  for (int p = 0; p < n; ++p) {
    const auto [src, dst] = pairs[static_cast<std::size_t>(p)];
    const auto sample = world.meter().measure(src, dst, overlays, at);
    const auto packet_direct = lab.run_direct(src, dst, dur, at);
    const int best = sample.best_split_overlay_ep();
    const auto packet_split = lab.run_split(src, dst, best, dur, at);

    const double r1 = sample.direct_bps / std::max(1.0, packet_direct.goodput_bps);
    const double r2 =
        sample.best_split_bps() / std::max(1.0, packet_split.goodput_bps);
    ratios.add(r1);
    ratios.add(r2);
    std::printf("%6d %13.2fM %13.2fM %9.2f %13.2fM %13.2fM %9.2f\n", p + 1,
                sample.direct_bps / 1e6, packet_direct.goodput_bps / 1e6, r1,
                sample.best_split_bps() / 1e6, packet_split.goodput_bps / 1e6, r2);
  }

  // Geometric-mean bias and spread of model/packet ratios.
  double log_sum = 0;
  for (double v : ratios.sorted_values()) log_sum += std::log(v);
  const double gmean = std::exp(log_sum / static_cast<double>(ratios.size()));

  print_paper_checks({
      {"geometric mean of model/packet ratios (~1)", 1.0, gmean},
      {"fraction of ratios within [0.5, 2]", 0.9,
       ratios.fraction_leq(2.0) - ratios.fraction_leq(0.5)},
  });
  std::printf(
      "note: the model runs a calibrated steady-state formula, so it is\n"
      "optimistic on long-RTT lossy paths where the 2015-era stack RTO-\n"
      "stalls. The bias applies to direct and overlay paths alike and\n"
      "largely cancels in the improvement *ratios* every figure reports.\n\n");
  return 0;
}
