// Chaos/resilience bench: drives the overlay broker with the session-churn
// workload while the chaos engine replays a scripted fault scenario —
// transit link flaps, a DC outage, congestion storms, gray failures — and
// reports the resilience SLOs the ResilienceMonitor extracts: per-fault
// time-to-detect and time-to-repin, degraded session-seconds,
// availability, and goodput regret inside vs. outside fault windows.
//
// Scenario selection: CRONETS_SCENARIO_SEED picks the fault timeline
// (combined with CRONETS_SEED, which picks the world), CRONETS_CHAOS
// scales the fault counts (0 disables injection entirely — a control run),
// CRONETS_SERVICE_TARGET overrides the concurrency target. `--smoke`
// shrinks everything for CI.
//
// JSON: all `checks` rows — including the decision fingerprint and the SLO
// fingerprint hashing every per-fault metric bit-for-bit — are a pure
// function of the seeds, never of thread count; wall-clock metrics land
// under `extra`. CI runs this at 1 and 4 threads and hard-fails on any
// diff in the checks block.

#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "chaos/injector.h"
#include "chaos/monitor.h"
#include "chaos/scenario.h"
#include "service/broker.h"
#include "sim/hash_rng.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

using namespace cronets;

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const double target = sim::env_double(
      "CRONETS_SERVICE_TARGET", smoke ? 5'000 : 150'000, 1.0, 100e6);
  const std::uint64_t scenario_seed = sim::env_u64("CRONETS_SCENARIO_SEED", 7);
  const long intensity = sim::env_int("CRONETS_CHAOS", 1, 0, 8);

  bench::print_header("chaos", "broker resilience under scripted fault scenarios");
  bench::BenchRun run("bench_chaos", smoke);

  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(smoke ? 30 : 120);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = smoke ? sim::Time::seconds(10) : sim::Time::seconds(20);
  cfg.probe.tick = smoke ? sim::Time::seconds(1) : sim::Time::seconds(2);
  const std::size_t num_pairs = clients.size() * servers.size();
  const auto ticks_per_interval =
      static_cast<std::size_t>(cfg.probe.interval.ns() / cfg.probe.tick.ns());
  cfg.probe.budget_per_tick =
      static_cast<int>((num_pairs + ticks_per_interval - 1) / ticks_per_interval);
  cfg.failover_delay = sim::Time::seconds(1);
  service::Broker broker(&world.internet(), &world.meter(), &world.pool(),
                         overlays, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = bench::world_seed() ^ 0xc7a05;
  churn_params.target_concurrent = target;
  churn_params.mean_duration_s = smoke ? 30.0 : 60.0;
  churn_params.horizon =
      sim::Time::from_seconds(3.0 * churn_params.mean_duration_s);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);

  chaos::ScenarioParams sp;
  sp.horizon = churn_params.horizon;
  sp.link_flaps = static_cast<int>(4 * intensity);
  sp.dc_outages = static_cast<int>(std::min<long>(2, intensity));
  sp.congestion_storms = static_cast<int>(3 * intensity);
  sp.gray_failures = static_cast<int>(3 * intensity);
  const auto scenario = chaos::Scenario::generate(
      world.internet(), sp, bench::world_seed(), scenario_seed);

  chaos::ResilienceMonitor monitor(&broker);
  chaos::Injector injector(&world.internet(), &broker.queue());
  injector.set_observer(&monitor);
  injector.arm(scenario);

  std::printf("clients=%zu servers=%zu pairs=%zu overlays=%zu\n",
              clients.size(), servers.size(), num_pairs, overlays.size());
  std::printf("scenario seed %llu, intensity %ld: %zu faults "
              "(%d flaps, %d outages, %d storms, %d gray)\n",
              static_cast<unsigned long long>(scenario_seed), intensity,
              scenario.faults().size(),
              scenario.count(chaos::FaultKind::kLinkFlap),
              scenario.count(chaos::FaultKind::kDcOutage),
              scenario.count(chaos::FaultKind::kCongestionStorm),
              scenario.count(chaos::FaultKind::kGrayFailure));
  for (const auto& f : scenario.faults()) {
    std::printf("  %s\n", scenario.describe(f).c_str());
  }

  churn.start();
  broker.warm_up();
  broker.run_until(churn_params.horizon);
  run.stop_clock();
  monitor.finalize(churn_params.horizon);

  const auto& st = broker.stats();
  const auto& rep = monitor.report();
  run.set_pairs(static_cast<long>(st.sessions_admitted));

  std::printf("admitted %llu sessions (peak concurrent %zu), probes %llu, "
              "migrations %llu\n",
              static_cast<unsigned long long>(st.sessions_admitted),
              churn.stats().peak_concurrent,
              static_cast<unsigned long long>(st.probes),
              static_cast<unsigned long long>(st.migrations));
  std::printf("%-4s %-16s %9s %9s %8s %8s %6s %6s %6s\n", "#", "kind", "begin",
              "end", "detect", "repin", "pairs", "degr", "drop");
  int degraded_total = 0;
  double detect_sum = 0.0;
  int detect_n = 0;
  for (std::size_t i = 0; i < rep.faults.size(); ++i) {
    const auto& f = rep.faults[i];
    std::printf("%-4zu %-16s %8.1fs %8.1fs %7.2fs %7.2fs %6d %6d %6d\n", i,
                chaos::fault_kind_name(f.kind), f.begin_s, f.end_s,
                f.time_to_detect_s, f.time_to_repin_s, f.pairs_impacted,
                f.sessions_degraded, f.sessions_dropped);
    degraded_total += f.sessions_degraded;
    if (f.time_to_detect_s >= 0.0) {
      detect_sum += f.time_to_detect_s;
      ++detect_n;
    }
  }
  const double mean_detect_s = detect_n ? detect_sum / detect_n : 0.0;
  const double repin_bound_s =
      cfg.failover_delay.to_seconds() + cfg.probe.interval.to_seconds();
  const bool repin_ok =
      rep.hard_faults_impacting == 0 || rep.max_hard_repin_s <= repin_bound_s;
  std::printf("availability %.6f (%.0f degraded of %.0f session-seconds), "
              "dropped %d\n",
              rep.availability, rep.degraded_session_s, rep.total_session_s,
              rep.sessions_dropped);
  std::printf("goodput regret: %.4f inside fault windows (%llu probes), "
              "%.4f outside (%llu probes)\n",
              rep.mean_regret_in(),
              static_cast<unsigned long long>(rep.regret_in_samples),
              rep.mean_regret_out(),
              static_cast<unsigned long long>(rep.regret_out_samples));
  std::printf("hard faults impacting %d, max time-to-repin %.3f s "
              "(bound %.1f s: failover_delay + probe interval)\n",
              rep.hard_faults_impacting, rep.max_hard_repin_s, repin_bound_s);

  // One hash over every per-fault SLO metric, bit-for-bit: a single
  // diverging double anywhere in the report flips it, so comparing this row
  // across thread counts witnesses full SLO determinism.
  std::uint64_t slo_fp = 0;
  const auto mix = [&](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    slo_fp = sim::hash_combine(slo_fp, bits);
  };
  for (const auto& f : rep.faults) {
    mix(f.begin_s);
    mix(f.end_s);
    mix(f.time_to_detect_s);
    mix(f.time_to_repin_s);
    mix(static_cast<double>(f.pairs_impacted));
    mix(static_cast<double>(f.sessions_impacted));
    mix(static_cast<double>(f.sessions_degraded));
    mix(static_cast<double>(f.sessions_dropped));
  }
  mix(rep.availability);
  mix(rep.degraded_session_s);
  mix(rep.regret_in_sum);
  mix(rep.regret_out_sum);

  std::vector<bench::PaperCheck> checks = {
      {"concurrent sessions sustained (target row)", target,
       static_cast<double>(churn.stats().peak_concurrent)},
      {"sessions admitted", 0.0, static_cast<double>(st.sessions_admitted)},
      {"faults injected", static_cast<double>(scenario.faults().size()),
       static_cast<double>(injector.begun())},
      {"hard faults impacting pairs", 0.0,
       static_cast<double>(rep.hard_faults_impacting)},
      {"max hard-fault time-to-repin seconds", repin_bound_s,
       rep.max_hard_repin_s},
      {"repin within failover_delay + probe interval (1=yes)", 1.0,
       repin_ok ? 1.0 : 0.0},
      {"mean time-to-detect seconds", 0.0, mean_detect_s},
      {"sessions degraded by faults", 0.0, static_cast<double>(degraded_total)},
      {"sessions dropped while degraded", 0.0,
       static_cast<double>(rep.sessions_dropped)},
      {"degraded session-seconds", 0.0, rep.degraded_session_s},
      {"availability (session-seconds on usable path)", 1.0, rep.availability},
      {"goodput regret inside fault windows", 0.0, rep.mean_regret_in()},
      {"goodput regret outside fault windows", 0.0, rep.mean_regret_out()},
      {"decision fingerprint (low 32 bits)", -1.0,
       static_cast<double>(st.decision_fingerprint & 0xffffffffu)},
      {"slo fingerprint (low 32 bits)", -1.0,
       static_cast<double>(slo_fp & 0xffffffffu)},
  };
  run.add_extra("arrival_rate_per_s", churn.arrival_rate_per_s());
  run.add_extra("probes", static_cast<double>(st.probes));
  run.finish(checks);
  return 0;
}
