// Figure 3 (§III-B): CDFs of throughput improvement ratios for plain
// overlay, split-overlay and discrete overlay over the direct path, in the
// controlled-sender experiment (5 DC VMs as senders, 50 PlanetLab-like
// clients, remaining 4 DCs as overlay nodes; 250 measurements / 1,250
// observed paths).
//
// Paper reference points:
//   plain overlay:  45% of pairs improved, average factor 6.53
//   split overlay:  74% improved, average 9.26, median 1.66,
//                   59% with >= 25% improvement
//   discrete:       76% improved (upper bound), average 8.14, median 1.74

#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  BenchRun run("fig3_controlled");
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);
  run.stop_clock();
  run.set_pairs(static_cast<long>(exp.samples.size()));

  analysis::Cdf plain_ratio, split_ratio, discrete_ratio;
  double plain_improved = 0, split_improved = 0, discrete_improved = 0;
  double split_25 = 0;
  double plain_factor_sum = 0, split_factor_sum = 0, discrete_factor_sum = 0;
  int n = 0;

  for (const auto& s : exp.samples) {
    if (s.direct_bps <= 0) continue;
    ++n;
    const double rp = s.best_plain_bps() / s.direct_bps;
    const double rs = s.best_split_bps() / s.direct_bps;
    const double rd = s.best_discrete_bps() / s.direct_bps;
    plain_ratio.add(rp);
    split_ratio.add(rs);
    discrete_ratio.add(rd);
    plain_improved += rp > 1.0;
    split_improved += rs > 1.0;
    discrete_improved += rd > 1.0;
    split_25 += rs >= 1.25;
    plain_factor_sum += rp;
    split_factor_sum += rs;
    discrete_factor_sum += rd;
  }

  print_header("Figure 3", "throughput improvement ratios, controlled senders");
  std::printf("measurements: %d (paths observed: %d)\n\n", n, n * 5);
  print_cdf_log(plain_ratio, "overlay (cloud provider)", 1e-3, 1e3);
  print_cdf_log(split_ratio, "split-overlay (cloud provider)", 1e-3, 1e3);
  print_cdf_log(discrete_ratio, "discrete overlay (cloud provider)", 1e-3, 1e3);

  // The paper overlays the web-experiment ("Internet" sender) curves for
  // comparison, showing that a cloud-hosted sender introduces no bias.
  {
    wkld::World web_world(world_seed());
    const auto web = wkld::run_web_experiment(web_world, 40);  // subsample
    analysis::Cdf web_plain, web_split;
    for (const auto& s : web.samples) {
      if (s.direct_bps <= 0) continue;
      web_plain.add(s.best_plain_bps() / s.direct_bps);
      web_split.add(s.best_split_bps() / s.direct_bps);
    }
    print_cdf_log(web_plain, "overlay (Internet sender)", 1e-3, 1e3);
    print_cdf_log(web_split, "split-overlay (Internet sender)", 1e-3, 1e3);
  }

  run.finish({
      {"plain: fraction improved (ratio > 1)", 0.45, plain_improved / n},
      {"plain: average improvement factor", 6.53, plain_factor_sum / n},
      {"split: fraction improved", 0.74, split_improved / n},
      {"split: average improvement factor", 9.26, split_factor_sum / n},
      {"split: median improvement factor", 1.66, split_ratio.median()},
      {"split: fraction with >=25% improvement", 0.59, split_25 / n},
      {"discrete: fraction improved", 0.76, discrete_improved / n},
      {"discrete: average improvement factor", 8.14, discrete_factor_sum / n},
      {"discrete: median improvement factor", 1.74, discrete_ratio.median()},
  });
  return 0;
}
