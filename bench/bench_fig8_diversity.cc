// Figure 8 (§V-A): CDFs of the diversity score (1 - common routers /
// routers on direct path) of every overlay path, overall and grouped by
// throughput-improvement bucket. The traceroute comes from the same
// policy-routed topology the measurements ran over.
//
// Paper: 60% of overlay paths score >= 0.38, 25% score >= 0.55; higher
// improvement buckets have higher diversity; and 87% of the routers shared
// with the direct path sit in its end segments (13% in the middle third).

#include "analysis/traceroute.h"
#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  analysis::Cdf all, hi, mid, low, verylow;
  long common_end = 0, common_middle = 0;

  for (const auto& s : exp.samples) {
    const auto direct =
        analysis::interface_hops(*world.internet().cached_path(s.src, s.dst));
    for (const auto& o : s.overlays) {
      auto leg1 =
          analysis::interface_hops(*world.internet().cached_path(s.src, o.overlay_ep));
      const auto leg2 =
          analysis::interface_hops(*world.internet().cached_path(o.overlay_ep, s.dst));
      leg1.insert(leg1.end(), leg2.begin(), leg2.end());
      const double score = analysis::diversity_score(direct, leg1);
      const auto loc = analysis::common_router_location(direct, leg1);
      common_end += loc.common_end;
      common_middle += loc.common_middle;

      all.add(score);
      const double ratio = s.direct_bps > 0 ? o.split_bps / s.direct_bps : 0.0;
      if (ratio > 1.25) {
        hi.add(score);
      } else if (ratio > 1.0) {
        mid.add(score);
      } else if (ratio > 0.5) {
        low.add(score);
      } else {
        verylow.add(score);
      }
    }
  }

  print_header("Figure 8", "diversity score CDFs by improvement bucket");
  auto print_lin = [](const analysis::Cdf& c, const char* name) {
    std::printf("-- CDF: %s (n=%zu)\n%8s %8s\n", name, c.size(), "score", "CDF");
    for (int i = 0; i <= 20; ++i) {
      const double x = i / 20.0;
      std::printf("%8.2f %8.3f\n", x, c.fraction_leq(x));
    }
  };
  print_lin(all, "all overlays");
  print_lin(hi, "improvement ratio > 1.25");
  print_lin(mid, "1.0 < ratio <= 1.25");
  print_lin(low, "0.5 < ratio <= 1.0");
  print_lin(verylow, "ratio <= 0.5");

  const double total_common = static_cast<double>(common_end + common_middle);
  print_paper_checks({
      {"fraction of overlay paths with score >= 0.38", 0.60, all.fraction_geq(0.38)},
      {"fraction of overlay paths with score >= 0.55", 0.25, all.fraction_geq(0.55)},
      {"score >= 0.4 | ratio > 1.25", 0.70, hi.fraction_geq(0.4)},
      {"score >= 0.4 | 1 < ratio <= 1.25", 0.64, mid.fraction_geq(0.4)},
      {"score >= 0.4 | 0.5 < ratio <= 1", 0.56, low.fraction_geq(0.4)},
      {"score >= 0.4 | ratio <= 0.5", 0.45, verylow.fraction_geq(0.4)},
      {"common routers in end segments", 0.87,
       total_common > 0 ? common_end / total_common : 0.0},
      {"common routers in middle segment", 0.13,
       total_common > 0 ? common_middle / total_common : 0.0},
  });
  return 0;
}
