// Ablation (§VI): path selection policies under network dynamics. The
// classic alternative to MPTCP is to probe all paths periodically and pin
// traffic to the best one; between probes the choice goes stale. We replay
// the longitudinal histories under different probe intervals and compare
// the achieved average throughput against MPTCP-based selection (which
// needs no probing and always tracks the per-sample best path).

#include "analysis/stats.h"
#include "bench_util.h"
#include "core/selection.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());

  // Inject rotating congestion episodes on the cloud DCs' peering links
  // over the week: the identity of the best overlay node now flips every
  // few samples, which is exactly the regime where a stale probing choice
  // bleeds throughput and MPTCP's probe-free selection shines (§VI).
  auto& net = world.internet();
  const auto& dcs = net.dc_endpoints();
  int which = 0;
  for (sim::Time t = sim::Time::hours(6); t < sim::Time::hours(7 * 24);
       t += sim::Time::hours(9)) {
    const int dc_ep = dcs[static_cast<std::size_t>(which++) % 5];  // paper's 5 DCs
    const auto& dc_as = net.ases()[net.endpoint(dc_ep).as_id];
    for (const auto& adj : dc_as.adj) {
      net.add_event(
          topo::LinkEvent{adj.link_id, true, t, t + sim::Time::hours(9), 0.55});
      net.add_event(
          topo::LinkEvent{adj.link_id, false, t, t + sim::Time::hours(9), 0.55});
    }
  }

  const auto pipeline = wkld::run_longitudinal_pipeline(world);

  print_header("Ablation: path selection", "stale probing vs MPTCP (Sec. VI)");
  std::printf("%26s %18s %16s\n", "policy", "avg achieved Mbps",
              "vs MPTCP (ratio)");

  auto average_over_paths = [&](auto achieve) {
    double total = 0;
    for (const auto& p : pipeline.study.pairs) {
      const auto series = achieve(p.history);
      double s = 0;
      for (double v : series) s += v;
      total += s / static_cast<double>(series.size());
    }
    return total / static_cast<double>(pipeline.study.pairs.size()) / 1e6;
  };

  const double mptcp = average_over_paths(
      [](const core::PairHistory& h) { return core::mptcp_achieved(h); });
  const double bandit = average_over_paths([](const core::PairHistory& h) {
    core::BanditSelector b(0.1, 7);
    return b.achieved(h);
  });
  const double min_rtt = average_over_paths(
      [](const core::PairHistory& h) { return core::min_rtt_achieved(h); });

  std::vector<PaperCheck> checks;
  for (int interval : {1, 2, 4, 8, 16, 50}) {
    core::ProbeSelector sel(interval);
    const double avg = average_over_paths(
        [&](const core::PairHistory& h) { return sel.achieved(h); });
    std::printf("%18s every %2d %18.2f %16.2f\n", "probe", interval, avg,
                avg / mptcp);
    if (interval == 1) {
      checks.push_back({"fresh probing ~ MPTCP (ratio ~1)", 1.0, avg / mptcp});
    }
    if (interval == 16) {
      checks.push_back({"stale probing (every 2 days) loses (<1)", 0.85, avg / mptcp});
    }
  }
  std::printf("%26s %18.2f %16.2f\n", "bandit (eps=0.1)", bandit, bandit / mptcp);
  std::printf("%26s %18.2f %16.2f\n", "min-RTT pinning", min_rtt, min_rtt / mptcp);
  std::printf("%26s %18.2f %16.2f\n", "mptcp (no probing)", mptcp, 1.0);

  checks.push_back({"min-RTT pinning underperforms (RTT != tput)", 0.8,
                    min_rtt / mptcp});
  print_paper_checks(checks);
  return 0;
}
