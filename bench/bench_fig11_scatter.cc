// Figure 11 (§V-B): scatter of throughput increase ratio
// (T_overlay - T_direct) / T_direct against the direct path's throughput.
// Paper: direct paths under 10 Mbps almost always improve, usually by more
// than 2x (increase ratio > 1); fast direct paths see little improvement.

#include "analysis/stats.h"
#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  print_header("Figure 11", "throughput increase ratio vs direct throughput");
  std::printf("%14s %16s\n", "direct (Mbps)", "increase ratio");
  int slow_n = 0, slow_improved = 0, slow_doubled = 0;
  int fast_n = 0, fast_doubled = 0;
  for (const auto& s : exp.samples) {
    if (s.direct_bps <= 0) continue;
    const double increase = (s.best_split_bps() - s.direct_bps) / s.direct_bps;
    std::printf("%14.2f %16.2f\n", s.direct_bps / 1e6, increase);
    if (s.direct_bps < 10e6) {
      ++slow_n;
      slow_improved += increase > 0;
      slow_doubled += increase > 1.0;
    } else if (s.direct_bps > 40e6) {
      ++fast_n;
      fast_doubled += increase > 1.0;
    }
  }

  print_paper_checks({
      {"direct < 10 Mbps: fraction improved (paper ~all)", 0.95,
       slow_n ? static_cast<double>(slow_improved) / slow_n : 0.0},
      {"direct < 10 Mbps: fraction more than doubled", 0.60,
       slow_n ? static_cast<double>(slow_doubled) / slow_n : 0.0},
      {"direct > 40 Mbps: fraction more than doubled (small)", 0.10,
       fast_n ? static_cast<double>(fast_doubled) / fast_n : 0.0},
  });
  return 0;
}
