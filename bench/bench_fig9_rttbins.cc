// Figure 9 (§V-B): direct paths binned by RTT ([0,70), [70,140), [140,210),
// [210,280), [280,inf) ms); per bin, the median throughput-improvement
// ratio (bar height), the median absolute deviation (error bar) and the
// fraction of paths improved (the pink shade). Paper: >= 84% of paths with
// RTT >= 140 ms improve; the median ratio more than doubles beyond 140 ms
// and more than triples beyond 280 ms.

#include "analysis/stats.h"
#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  std::vector<double> rtts, ratios;
  for (const auto& s : exp.samples) {
    rtts.push_back(s.direct_rtt_ms);
    ratios.push_back(s.direct_bps > 0 ? s.best_split_bps() / s.direct_bps : 0.0);
  }
  const std::vector<double> edges = {0, 70, 140, 210, 280};
  const auto binned = analysis::bin_by(rtts, ratios, edges);

  print_header("Figure 9", "median improvement ratio by direct-path RTT bin");
  std::printf("%14s %8s %12s %8s %12s\n", "RTT bin (ms)", "paths", "median", "MAD",
              "frac>1");
  double over140_improved = 0, over140_n = 0;
  double med_140_210 = 0, med_280 = 0, med_0_70 = 0;
  for (std::size_t b = 0; b < binned.bins.size(); ++b) {
    const auto& vals = binned.bins[b];
    if (vals.empty()) continue;
    double improved = 0;
    for (double v : vals) improved += v > 1.0;
    const double med = analysis::median_of(vals);
    const double mad = analysis::median_abs_deviation(vals);
    const char* label[] = {"[0,70)", "[70,140)", "[140,210)", "[210,280)", "[280,+)"};
    std::printf("%14s %8zu %12.2f %8.2f %12.2f\n", label[b], vals.size(), med, mad,
                improved / static_cast<double>(vals.size()));
    if (b >= 2) {
      over140_improved += improved;
      over140_n += static_cast<double>(vals.size());
    }
    if (b == 0) med_0_70 = med;
    if (b == 2) med_140_210 = med;
    if (b == 4) med_280 = med;
  }

  print_paper_checks({
      {"fraction improved | RTT >= 140 ms", 0.84,
       over140_n > 0 ? over140_improved / over140_n : 0.0},
      {"median ratio in [140,210) (paper: > 2)", 2.0, med_140_210},
      {"median ratio in [280,inf) (paper: > 3)", 3.0, med_280},
      {"median ratio in [0,70) (paper: lowest bin ~1)", 1.0, med_0_70},
  });
  return 0;
}
