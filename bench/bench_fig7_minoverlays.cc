// Figure 7 (§IV): minimum number of overlay nodes each of the 30 paths
// needs so that, at every sample over the week, some chosen node attains
// the maximum observed overlay throughput. Paper: 70% of the paths need
// only one or two nodes.

#include "bench_util.h"
#include "core/selection.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto pipeline = wkld::run_longitudinal_pipeline(world);

  print_header("Figure 7", "minimum overlay nodes required per path");
  std::printf("%5s %22s\n", "path", "min overlays required");
  int histogram[8] = {0};
  int le2 = 0;
  const int n = static_cast<int>(pipeline.study.pairs.size());
  for (int i = 0; i < n; ++i) {
    const int k = core::min_overlays_required(pipeline.study.pairs[static_cast<std::size_t>(i)].history,
                                              /*tolerance=*/0.02);
    std::printf("%5d %22d\n", i + 1, k);
    ++histogram[std::min(k, 7)];
    le2 += k <= 2;
  }
  std::printf("\nhistogram:");
  for (int k = 1; k <= 4; ++k) std::printf("  %d nodes: %d paths", k, histogram[k]);
  std::printf("\n");

  print_paper_checks({
      {"fraction of paths needing <= 2 overlay nodes", 0.70,
       static_cast<double>(le2) / n},
  });
  return 0;
}
