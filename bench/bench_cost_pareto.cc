// Cost-aware brokering bench: drives the session-churn workload through
// the sharded broker under each CRONETS_COST_POLICY objective (plus a
// budget sweep for max_goodput_under_budget) with the econ::PricingBook
// attached, settles the metered billing ledger, and reports per-policy
// $/Gbps-hour, metered egress USD, cost regret vs the cost-oblivious
// performance oracle, and SLO attainment. Every policy runs twice — at 1
// shard and at 8 shards — and the gated check rows assert that both the
// decision fingerprint and the global billing ledger's fingerprint are
// bitwise identical across the two runs: the economics plane must obey
// the same shard/thread/SIMD-invariance contract as the control plane.
//
// JSON: all `checks` rows are pure functions of the seed (fingerprints,
// USD totals, attainment ratios); wall-clock rates land under `extra`.
// Text rows that differ across thread counts are prefixed "-- timing:"
// so the CI determinism diff can filter them.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "econ/pricing_book.h"
#include "service/sharded_broker.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

using namespace cronets;

namespace {

struct RunResult {
  std::uint64_t decision_fp = 0;
  std::uint64_t cost_fp = 0;
  double egress_usd = 0.0;     ///< metered from the global billing ledger
  double total_usd = 0.0;      ///< egress + amortized VM rental
  double delivered_gb = 0.0;   ///< end-to-end transfer volume
  double usd_per_gbps_hour = 0.0;
  double peak_spend_usd_per_hour = 0.0;
  std::uint64_t slo_met = 0;
  std::uint64_t slo_total = 0;
  std::uint64_t budget_denied = 0;
  std::uint64_t admitted = 0;
  std::uint64_t via_overlay = 0;
  bool books_ok = false;  ///< per-shard billing books sum to the global one
  double wall_s = 0.0;

  double attainment() const {
    return slo_total ? static_cast<double>(slo_met) /
                           static_cast<double>(slo_total)
                     : 0.0;
  }
};

struct BenchShape {
  int clients = 12;
  double target = 600.0;
  double mean_duration_s = 30.0;
};

RunResult run_policy(const econ::PricingBook& book, econ::CostPolicy policy,
                     double budget_usd_per_hour, int num_shards,
                     const BenchShape& shape) {
  const auto wall_start = std::chrono::steady_clock::now();
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(shape.clients);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  const std::size_t num_pairs = clients.size() * servers.size();
  const auto ticks_per_interval =
      static_cast<std::size_t>(cfg.probe.interval.ns() / cfg.probe.tick.ns());
  cfg.probe.budget_per_tick = static_cast<int>(
      (num_pairs + ticks_per_interval - 1) / ticks_per_interval);
  // Knobs (alpha, SLO defaults) come from the environment; the policy and
  // budget axes are what this bench sweeps itself.
  cfg.ranking.econ = econ::econ_config_from_env(&book);
  cfg.ranking.econ.policy = policy;
  cfg.ranking.econ.budget_usd_per_hour = budget_usd_per_hour;

  service::ShardedBroker broker(&world.internet(), &world.meter(),
                                &world.pool(), overlays, num_shards, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = bench::world_seed() ^ 0xC0575EEDull;
  churn_params.target_concurrent = shape.target;
  churn_params.mean_duration_s = shape.mean_duration_s;
  churn_params.horizon =
      sim::Time::from_seconds(3.0 * churn_params.mean_duration_s);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();
  broker.run_until(churn_params.horizon);
  broker.settle_billing();

  const auto st = broker.stats();
  RunResult r;
  r.decision_fp = st.decision_fingerprint;
  r.cost_fp = broker.global_billing().fingerprint();
  r.egress_usd = broker.global_billing().total_usd();
  r.delivered_gb = broker.global_billing().delivered_gb();
  const double sim_hours = churn_params.horizon.to_seconds() / 3600.0;
  r.total_usd = r.egress_usd + static_cast<double>(overlays.size()) *
                                   econ::vm_hour_usd(book, 100) * sim_hours;
  // Gbps-hours delivered: GB * 8 = Gbit = Gbps-seconds; / 3600 = Gbps-h.
  const double gbps_hours = r.delivered_gb * 8.0 / 3600.0;
  r.usd_per_gbps_hour = gbps_hours > 0.0 ? r.total_usd / gbps_hours : 0.0;
  r.peak_spend_usd_per_hour = broker.global_cost().peak_usd_per_hour();
  r.slo_met = st.slo_met;
  r.slo_total = st.slo_total;
  r.budget_denied = st.budget_denied;
  r.admitted = st.sessions_admitted;
  r.via_overlay = st.admitted_via_overlay;

  // Per-shard billing books must sum to the shared global ledger — the
  // shards split the metering, not the money.
  double shard_usd = 0.0, shard_gb = 0.0;
  for (int s = 0; s < broker.num_shards(); ++s) {
    shard_usd += broker.shard_sessions(s).billing().total_usd();
    shard_gb += broker.shard_sessions(s).billing().delivered_gb();
  }
  const auto close_rel = [](double a, double b) {
    return std::abs(a - b) <=
           1e-9 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
  };
  r.books_ok = close_rel(shard_usd, r.egress_usd) &&
               close_rel(shard_gb, r.delivered_gb);
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header("Cost-aware brokering",
                      "Pareto policies + metered billing ledger");
  bench::BenchRun run("bench_cost_pareto", smoke);

  BenchShape shape;
  shape.clients = smoke ? 12 : 60;
  shape.target = sim::env_double("CRONETS_SERVICE_TARGET",
                                 smoke ? 600.0 : 20'000.0, 1.0, 10e6);

  const econ::PricingBook book;  // §VII-D Softlayer defaults
  std::printf("pricing: transit %.3f $/GB, backbone %.3f $/GB, VM %.4f $/h "
              "(100 Mbps port)\n",
              book.transit_usd_per_gb, book.backbone_usd_per_gb,
              econ::vm_hour_usd(book, 100));

  const econ::CostPolicy policies[] = {
      econ::CostPolicy::kPerformance,
      econ::CostPolicy::kMaxGoodputUnderBudget,
      econ::CostPolicy::kMinCostMeetingSlo,
      econ::CostPolicy::kPareto,
  };

  std::vector<bench::PaperCheck> checks;
  long total_admissions = 0;
  double total_wall = 0.0;
  bool all_books_ok = true;
  RunResult perf{}, min_cost{};

  const auto report = [&](const std::string& label, const RunResult& a,
                          const RunResult& b) {
    // `a` is the 1-shard run, `b` the 8-shard run of the same config.
    const bool decision_ok = a.decision_fp == b.decision_fp;
    const bool cost_ok = a.cost_fp == b.cost_fp;
    all_books_ok = all_books_ok && a.books_ok && b.books_ok;
    std::printf("%-28s egress $%.4f total $%.4f (%.3f GB, %.3f $/Gbps-h) "
                "SLO %.4f (%llu/%llu) overlay %llu/%llu budget-denied %llu\n",
                label.c_str(), a.egress_usd, a.total_usd, a.delivered_gb,
                a.usd_per_gbps_hour, a.attainment(),
                static_cast<unsigned long long>(a.slo_met),
                static_cast<unsigned long long>(a.slo_total),
                static_cast<unsigned long long>(a.via_overlay),
                static_cast<unsigned long long>(a.admitted),
                static_cast<unsigned long long>(a.budget_denied));
    checks.push_back({label + ": decision fp shards 1 == 8 (1=yes)", 1.0,
                      decision_ok ? 1.0 : 0.0});
    checks.push_back(
        {label + ": cost fp shards 1 == 8 (1=yes)", 1.0, cost_ok ? 1.0 : 0.0});
    checks.push_back({label + ": decision fingerprint (low 32 bits)", -1.0,
                      static_cast<double>(a.decision_fp & 0xffffffffu)});
    checks.push_back({label + ": cost fingerprint (low 32 bits)", -1.0,
                      static_cast<double>(a.cost_fp & 0xffffffffu)});
    checks.push_back({label + ": metered egress USD", 0.0, a.egress_usd});
    checks.push_back({label + ": USD per Gbps-hour", 0.0, a.usd_per_gbps_hour});
    checks.push_back({label + ": SLO attainment", 0.0, a.attainment()});
    total_admissions += static_cast<long>(a.admitted + b.admitted);
    total_wall += a.wall_s + b.wall_s;
  };

  for (const econ::CostPolicy policy : policies) {
    const RunResult r1 = run_policy(book, policy, 0.0, 1, shape);
    const RunResult r8 = run_policy(book, policy, 0.0, 8, shape);
    report(econ::cost_policy_name(policy), r1, r8);
    if (policy == econ::CostPolicy::kPerformance) perf = r1;
    if (policy == econ::CostPolicy::kMinCostMeetingSlo) min_cost = r1;
  }

  // Budget sweep: cap the fleet's reserved spend rate at fractions of the
  // unconstrained run's peak. Budget levels derive from the measured peak
  // (seed-pure), so the row *names* stay stable across machines.
  const double peak = perf.peak_spend_usd_per_hour;
  std::printf("unconstrained peak spend rate: %.4f USD/hour\n", peak);
  for (const double frac : {0.5, 0.1}) {
    const double budget = frac * peak;
    const RunResult r1 = run_policy(
        book, econ::CostPolicy::kMaxGoodputUnderBudget, budget, 1, shape);
    const RunResult r8 = run_policy(
        book, econ::CostPolicy::kMaxGoodputUnderBudget, budget, 8, shape);
    const std::string label =
        "budget@" + std::to_string(static_cast<int>(frac * 100)) + "%";
    report(label, r1, r8);
    checks.push_back({label + ": budget-denied admissions", 0.0,
                      static_cast<double>(r1.budget_denied)});
    // The reservation gate must actually hold the line: the peak reserved
    // spend rate never exceeds the budget.
    checks.push_back({label + ": peak spend <= budget (1=yes)", 1.0,
                      r1.peak_spend_usd_per_hour <= budget + 1e-12 ? 1.0
                                                                   : 0.0});
  }
  run.stop_clock();

  // Cost regret vs the cost-oblivious oracle (the performance policy):
  // relative metered-egress delta. min_cost_meeting_slo must be strictly
  // cheaper while conceding nothing on SLO attainment (integer
  // cross-multiplication: met_a/total_a >= met_b/total_b exactly).
  const double regret =
      perf.egress_usd > 0.0
          ? (min_cost.egress_usd - perf.egress_usd) / perf.egress_usd
          : 0.0;
  const bool attainment_no_worse =
      min_cost.slo_met * perf.slo_total >= perf.slo_met * min_cost.slo_total;
  const bool pareto_gate = perf.egress_usd > 0.0 &&
                           min_cost.egress_usd < perf.egress_usd &&
                           attainment_no_worse;
  std::printf("min-cost egress cost regret vs performance oracle: %.4f\n",
              regret);

  checks.push_back({"min-cost egress regret vs performance oracle", 0.0,
                    regret});
  checks.push_back(
      {"min-cost cheaper at no-worse SLO attainment (1=yes)", 1.0,
       pareto_gate ? 1.0 : 0.0});
  checks.push_back({"sharded cost books sum to global ledger (1=yes)", 1.0,
                    all_books_ok ? 1.0 : 0.0});

  run.set_pairs(total_admissions);
  run.add_extra("runs_wall_s", total_wall);
  run.add_extra("usd_per_gbps_hour_performance", perf.usd_per_gbps_hour);
  run.add_extra("usd_per_gbps_hour_min_cost", min_cost.usd_per_gbps_hour);
  run.finish(checks);
  return 0;
}
