// Ablation (the RON/ARROW context the paper builds on): what happens when
// an AS-level adjacency on the default path fails outright?
//
//   * Plain BGP: the path is dark until the routing system reconverges
//     (tens of seconds in 2015-era measurements), then traffic follows the
//     healed — often worse — policy path.
//   * CRONets + MPTCP: the overlay subflows never used the failed session;
//     the connection keeps delivering within a retransmission timeout.
//
// We replay a two-minute timeline at 1-second resolution with the analytic
// instrument, modelling a 45 s BGP convergence outage.

#include <map>
#include <set>

#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();
  const auto overlays = world.rent_paper_overlays();
  const int client = net.add_client(topo::Region::kEurope, "bgp-client");
  const int sender = net.dc_endpoint("wdc");

  // The failure: pick the middle adjacency of the default path used by the
  // FEWEST overlay legs (MPTCP only needs one unaffected path to survive).
  const auto direct = net.path(sender, client);
  auto adj_key = [](int a, int b) { return std::make_pair(std::min(a, b), std::max(a, b)); };
  std::map<std::pair<int, int>, std::set<int>> users;  // adjacency -> overlays using it
  std::map<int, std::vector<int>> overlay_as_seqs;     // snapshot of old leg AS paths
  for (int o : overlays) {
    for (const topo::RouterPath& path : {net.path(sender, o), net.path(o, client)}) {
      for (std::size_t k = 0; k + 1 < path.as_seq.size(); ++k) {
        users[adj_key(path.as_seq[k], path.as_seq[k + 1])].insert(o);
      }
      auto& seq = overlay_as_seqs[o];
      seq.insert(seq.end(), path.as_seq.begin(), path.as_seq.end());
    }
  }
  int fail_a = -1, fail_b = -1;
  std::size_t fewest = overlays.size() + 1;
  for (std::size_t k = 1; k + 2 < direct.as_seq.size(); ++k) {
    const auto key = adj_key(direct.as_seq[k], direct.as_seq[k + 1]);
    if (users[key].size() < fewest) {
      fewest = users[key].size();
      fail_a = direct.as_seq[k];
      fail_b = direct.as_seq[k + 1];
    }
  }
  // Overlays unaffected by the failure (their old legs avoid it).
  std::vector<int> surviving;
  for (int o : overlays) {
    if (!users[adj_key(fail_a, fail_b)].count(o)) surviving.push_back(o);
  }

  print_header("Ablation: BGP failover vs CRONets",
               "AS-session failure, 45 s reconvergence");
  std::printf("failing adjacency: %s <-> %s at t=10s (affects %zu of %zu overlay"
              " nodes); BGP heals at t=55s\n\n",
              net.ases()[static_cast<std::size_t>(fail_a)].name.c_str(),
              net.ases()[static_cast<std::size_t>(fail_b)].name.c_str(),
              overlays.size() - surviving.size(), overlays.size());

  const int kFail = 10, kHeal = 55, kEnd = 120;
  double bgp_up_seconds = 0, mptcp_up_seconds = 0;
  double bgp_bytes = 0, mptcp_bytes = 0;

  std::printf("%6s %18s %18s\n", "t (s)", "BGP-only (Mbps)", "CRONets+MPTCP");
  for (int t = 0; t <= kEnd; ++t) {
    double bgp_bps = 0, mptcp_bps = 0;
    const sim::Time at = sim::Time::hours(2) + sim::Time::seconds(t);
    if (t == kFail) net.set_adjacency_up(fail_a, fail_b, false);
    if (t == kHeal) {
      // BGP has reconverged; the session itself stays down, traffic takes
      // the healed policy path.
    }
    const bool bgp_dark = t >= kFail && t < kHeal;
    if (!bgp_dark) {
      const auto p = net.path(sender, client);
      if (p.valid) {
        auto m = world.flow().sample(p, at);
        m.rwnd_bytes = static_cast<double>(net.endpoint(client).rcv_buf);
        bgp_bps = world.flow().tcp_throughput(m);
      }
    }
    // MPTCP across direct + overlays: during the outage the direct subflow
    // and any overlay leg crossing the failed session contribute nothing;
    // the surviving overlay paths carry the session.
    std::vector<double> per_path;
    if (!bgp_dark) per_path.push_back(bgp_bps);
    for (int o : bgp_dark ? surviving : overlays) {
      auto m1 = world.flow().sample(net.path(sender, o), at);
      auto m2 = world.flow().sample(net.path(o, client), at);
      m2.rwnd_bytes = static_cast<double>(net.endpoint(client).rcv_buf);
      per_path.push_back(
          world.flow().tcp_throughput(model::FlowModel::concat(m1, m2)));
    }
    mptcp_bps = world.flow().mptcp_coupled(per_path);

    bgp_up_seconds += bgp_bps > 1e5;
    mptcp_up_seconds += mptcp_bps > 1e5;
    bgp_bytes += bgp_bps;
    mptcp_bytes += mptcp_bps;
    if (t % 10 == 0) {
      std::printf("%6d %18.2f %18.2f\n", t, bgp_bps / 1e6, mptcp_bps / 1e6);
    }
  }
  net.set_adjacency_up(fail_a, fail_b, true);  // restore the world

  print_paper_checks({
      {"BGP-only availability over the window", 0.63,
       bgp_up_seconds / (kEnd + 1)},
      {"CRONets+MPTCP availability", 1.0, mptcp_up_seconds / (kEnd + 1)},
      {"CRONets/BGP bytes delivered ratio", 1.5, mptcp_bytes / bgp_bytes},
  });
  return 0;
}
