// Ablation: short flows. The paper measures bulk transfers (100 MB files,
// 30 s iperf); most real traffic is short. For web-scale fetch sizes we
// compare flow completion time (FCT) on the direct path vs via the best
// split-overlay relay. Two opposing forces: the relay adds a handshake,
// but each leg slow-starts over half the RTT and dodges the lossy middle —
// so the overlay's edge should grow with flow size.

#include "bench_util.h"
#include "core/measure_packet.h"
#include "net/network.h"
#include "topo/materialize.h"
#include "transport/apps.h"
#include "transport/split_proxy.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

namespace {

/// FCT of one download of `bytes` from `src` to `dst`, optionally split
/// through `via`. Returns seconds (negative if it did not complete).
double measure_fct(topo::Internet* topo, int src, int dst, int via,
                   std::int64_t bytes, sim::Time at) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{5});
  topo::Materializer mat(topo, &netw);
  if (via >= 0) {
    mat.add_pair(src, via);
    mat.add_pair(via, dst);
  } else {
    mat.add_pair(src, dst);
  }
  mat.apply_events();

  transport::TcpConfig cfg;
  transport::TcpConfig sink_cfg = cfg;
  sink_cfg.rcv_buf = topo->endpoint(dst).rcv_buf;

  transport::FileServer server(mat.host(src), 80, bytes, cfg);
  std::unique_ptr<transport::SplitTcpProxy> proxy;
  net::IpAddr connect_to = mat.host(src)->addr();
  net::TransportPort port = 80;
  if (via >= 0) {
    proxy = std::make_unique<transport::SplitTcpProxy>(
        mat.host(via), 5002, mat.host(src)->addr(), 80, cfg);
    connect_to = mat.host(via)->addr();
    port = 5002;
  }
  transport::FileDownloader down(mat.host(dst), 1234, connect_to, port, sink_cfg);
  simv.schedule_at(at, [&] { down.start(&simv); });
  simv.run_until(at + sim::Time::seconds(120));
  if (!down.done()) return -1.0;
  return static_cast<double>(bytes) * 8.0 / down.goodput_bps();
}

}  // namespace

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();
  const auto overlays = world.rent_paper_overlays();
  const sim::Time at = sim::Time::hours(1);

  // A handful of server->client pairs with a modelled-best relay each.
  struct Case {
    int src, dst, via;
  };
  std::vector<Case> cases;
  const topo::Region regions[] = {topo::Region::kEurope, topo::Region::kAsia,
                                  topo::Region::kAustralia};
  const auto servers = world.make_servers();
  for (int i = 0; i < (quick_mode() ? 2 : 5); ++i) {
    const int c = net.add_client(regions[i % 3], "fct-" + std::to_string(i));
    const int s = servers[static_cast<std::size_t>(i) % servers.size()];
    const auto sample = world.meter().measure(s, c, overlays, at);
    cases.push_back({s, c, sample.best_split_overlay_ep()});
  }

  print_header("Ablation: short flows", "flow completion time, direct vs split relay");
  std::printf("%10s %8s %12s %12s %10s\n", "size", "pair", "direct FCT",
              "overlay FCT", "speedup");

  std::vector<PaperCheck> checks;
  const std::int64_t sizes[] = {20'000, 100'000, 1'000'000, 10'000'000};
  for (std::int64_t size : sizes) {
    double speedup_sum = 0;
    int n = 0;
    for (std::size_t k = 0; k < cases.size(); ++k) {
      const auto& c = cases[k];
      const double direct = measure_fct(&net, c.src, c.dst, -1, size, at);
      const double split = measure_fct(&net, c.src, c.dst, c.via, size, at);
      if (direct <= 0 || split <= 0) continue;
      const double speedup = direct / split;
      speedup_sum += speedup;
      ++n;
      std::printf("%9.0fK %8zu %11.3fs %11.3fs %10.2f\n", size / 1e3, k + 1,
                  direct, split, speedup);
    }
    if (n > 0 && (size == 20'000 || size == 10'000'000)) {
      checks.push_back({size == 20'000
                            ? std::string("avg speedup at 20 KB (handshake-bound)")
                            : std::string("avg speedup at 10 MB (throughput-bound)"),
                        size == 20'000 ? 1.0 : 2.0, speedup_sum / n});
    }
  }
  print_paper_checks(checks);
  std::printf("takeaway: the relay's extra handshake washes out even at tens\n"
              "of KB, and the per-leg slow-start + bypassed middle grow the\n"
              "advantage with flow size — overlays are not just for bulk.\n\n");
  return 0;
}
