// Figure 13 (§VI-C): same setup as Figure 12, but each MPTCP subflow runs
// an independent (uncoupled) CUBIC controller — the configuration CRONets
// users asked for, since they pay for the overlay bandwidth. Paper: the
// aggregate consistently saturates the endpoints' 100 Mbps NIC.

#include <algorithm>

#include "bench_util.h"
#include "core/measure_packet.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  topo::CloudParams cloud;
  cloud.dcs.push_back({"fra", {50.1, 8.7}});
  cloud.dcs.push_back({"hkg", {22.3, 114.2}});
  wkld::World world(world_seed(), topo::TopologyParams{}, cloud);
  auto& net = world.internet();
  const auto& dcs = net.dc_endpoints();
  const sim::Time at = sim::Time::hours(1);

  struct Pair {
    int src, dst;
    double direct_est;
  };
  std::vector<Pair> pairs;
  for (int a : dcs) {
    for (int b : dcs) {
      if (a == b) continue;
      auto m = world.flow().sample(net.path(a, b), at);
      pairs.push_back({a, b, world.flow().tcp_throughput(m)});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.direct_est < y.direct_est; });

  const int num_paths = quick_mode() ? 6 : 15;
  // The paper measured 60 s; CUBIC needs time to converge with 8
  // subflows sharing the NIC, so use 30 s (6 s in quick mode).
  const sim::Time dur = quick_mode() ? sim::Time::seconds(6) : sim::Time::seconds(30);

  print_header("Figure 13 (uncoupled CUBIC)",
               "MPTCP with per-subflow CUBIC vs coupled OLIA");
  std::printf("%5s %10s %12s %14s %12s\n", "path", "direct", "MPTCP olia",
              "MPTCP cubic", "cubic/NIC");

  core::PacketLab lab(&net);
  double frac_sum = 0, ratio_sum = 0;
  int measured = 0;
  const double nic = net.cloud().vm_nic_bps;
  for (int i = 0; i < num_paths && i < static_cast<int>(pairs.size()); ++i) {
    const auto& p = pairs[static_cast<std::size_t>(i)];
    std::vector<int> vias;
    for (int dc : dcs) {
      if (dc != p.src && dc != p.dst) vias.push_back(dc);
    }
    const auto direct = lab.run_direct(p.src, p.dst, dur, at);
    const auto olia = lab.run_mptcp(p.src, p.dst, vias, transport::Coupling::kOlia,
                                    dur, at);
    const auto cubic = lab.run_mptcp(p.src, p.dst, vias,
                                     transport::Coupling::kUncoupledCubic, dur, at);
    const double frac = cubic.goodput_bps / nic;
    frac_sum += frac;
    ratio_sum += olia.goodput_bps > 0 ? cubic.goodput_bps / olia.goodput_bps : 0.0;
    ++measured;
    std::printf("%5d %9.1fM %11.1fM %13.1fM %12.2f\n", i + 1,
                direct.goodput_bps / 1e6, olia.goodput_bps / 1e6,
                cubic.goodput_bps / 1e6, frac);
  }

  print_paper_checks({
      {"avg uncoupled throughput as fraction of NIC", 0.95,
       measured ? frac_sum / measured : 0.0},
      {"avg uncoupled / coupled ratio (paper: ~1.3-2)", 1.5,
       measured ? ratio_sum / measured : 0.0},
  });
  std::printf(
      "note: the paper's inter-DC paths were nearly loss-free, so coupled\n"
      "OLIA pinned at the best single path (~60-80M) while uncoupled CUBIC\n"
      "hit the 100 Mbps NIC. Our pairs are the 15 WORST of a lossier\n"
      "synthetic core, so both configurations are loss-bound below the NIC\n"
      "and the coupled/uncoupled gap collapses. The regime where coupling\n"
      "matters — a shared bottleneck — is verified head-to-head in\n"
      "tests/fairness_test.cc instead.\n\n");
  return 0;
}
