// Engine microbenchmarks (google-benchmark): event queue throughput and
// churn, path-cache hit/miss cost, end-to-end measurement rate, topology
// generation and policy routing. After the google-benchmark tables, main()
// runs a fixed end-to-end measure sweep and records it via bench::BenchRun,
// so bench_results/bench_micro.json tracks measures/s (as pairs_per_s) and
// seed-deterministic hot-path counters PR over PR.

#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>

#include "bench_util.h"
#include "model/batch_sampler.h"
#include "model/simd/dispatch.h"
#include "net/network.h"
#include "sim/hash_rng.h"
#include "sim/simulator.h"
#include "topo/internet.h"
#include "transport/apps.h"
#include "wkld/world.h"

using namespace cronets;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simv;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simv.schedule_in(sim::Time::microseconds(i), [&] { ++fired; });
    }
    simv.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// Steady-state schedule/cancel/fire cycling: every round retires 100 slots
// back to the arena free list and reuses them, so this measures the
// allocation-free churn path (and handle invalidation) rather than arena
// growth.
static void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles;
    handles.reserve(100);
    long fired = 0;
    for (int round = 0; round < 10; ++round) {
      handles.clear();
      for (int i = 0; i < 100; ++i) {
        handles.push_back(q.schedule(sim::Time::microseconds(round * 100 + i),
                                     [&] { ++fired; }));
      }
      for (int i = 0; i < 100; i += 2) handles[i].cancel();
      while (q.run_next()) {
      }
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

static void BM_TcpBulkTransferSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simv;
    net::Network netw(&simv, sim::Rng{7});
    auto* a = netw.add_host("A");
    auto* b = netw.add_host("B");
    auto* r = netw.add_router("R");
    net::LinkSpec acc, bot;
    acc.capacity_bps = 1e9;
    acc.prop_delay = sim::Time::milliseconds(1);
    bot.capacity_bps = 100e6;
    bot.prop_delay = sim::Time::milliseconds(10);
    netw.add_link(a, r, acc);
    netw.add_link(r, b, bot);
    netw.compute_routes();
    transport::TcpConfig cfg;
    transport::BulkSink sink(b, 5001, cfg);
    transport::BulkSource src(a, 1234, b->addr(), 5001, cfg);
    src.start();
    simv.run_until(sim::Time::seconds(1));
    benchmark::DoNotOptimize(sink.bytes_received());
  }
}
BENCHMARK(BM_TcpBulkTransferSimSecond)->Unit(benchmark::kMillisecond);

static void BM_TopologyGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    topo::TopologyParams p;
    p.seed = seed++;
    topo::Internet net(p, topo::CloudParams{});
    benchmark::DoNotOptimize(net.links().size());
  }
}
BENCHMARK(BM_TopologyGeneration)->Unit(benchmark::kMillisecond);

static void BM_PolicyRoutingPerDestination(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  int dst = 0;
  for (auto _ : state) {
    net.routing().invalidate();
    benchmark::DoNotOptimize(net.routing().to(dst % static_cast<int>(net.ases().size())));
    ++dst;
  }
}
BENCHMARK(BM_PolicyRoutingPerDestination)->Unit(benchmark::kMicrosecond);

static void BM_RouterPathExpansion(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.path(c, s).routers.size());
  }
}
BENCHMARK(BM_RouterPathExpansion)->Unit(benchmark::kMicrosecond);

// Warm lookup of an interned path: one shared_lock + hash probe, the cost
// every measure() pays per path after the first sweep.
static void BM_PathCacheHit(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  net.cached_path(c, s);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.cached_path(c, s)->routers.size());
  }
}
BENCHMARK(BM_PathCacheHit);

// Cold lookup: policy-route + expand + intern. Compare against
// BM_PathCacheHit for the per-path saving and against
// BM_RouterPathExpansion for the interning overhead itself.
static void BM_PathCacheMiss(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  for (auto _ : state) {
    net.path_cache().invalidate();
    benchmark::DoNotOptimize(net.cached_path(c, s)->routers.size());
  }
}
BENCHMARK(BM_PathCacheMiss)->Unit(benchmark::kMicrosecond);

// Full analytic measurement including overlay candidates — the hot path of
// every figure sweep. Each iteration sweeps servers x clients at a fresh
// timestamp; items processed = measure() calls.
static void BM_EndToEndMeasure(benchmark::State& state) {
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  for (int s : servers)
    for (int c : clients) world.meter().measure(s, c, overlays, sim::Time::hours(1));
  long n = 0;
  int rep = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(1 + rep % 59);
    ++rep;
    for (int s : servers)
      for (int c : clients) {
        sink += world.meter().measure(s, c, overlays, at).direct_bps;
        ++n;
      }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_EndToEndMeasure)->Unit(benchmark::kMillisecond);

namespace {

// The paths one probe sweep touches (direct + both legs per overlay), the
// working set for the sampling-kernel benchmarks below.
std::vector<topo::PathRef> sweep_paths(wkld::World& world,
                                       const std::vector<int>& servers,
                                       const std::vector<int>& clients,
                                       const std::vector<int>& overlays) {
  std::vector<topo::PathRef> paths;
  for (int s : servers) {
    for (int c : clients) {
      paths.push_back(world.internet().cached_path(s, c));
      for (int o : overlays) {
        paths.push_back(world.internet().cached_path(s, o));
        paths.push_back(world.internet().cached_path(o, c));
      }
    }
  }
  return paths;
}

}  // namespace

// Scalar sampling kernel: per-path FlowModel::sample through the memoized
// aggregates, the pre-batching hot path. Items processed = path samples.
static void BM_ScalarSample(benchmark::State& state) {
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  const auto paths = sweep_paths(world, servers, clients, overlays);
  long n = 0;
  int rep = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(1 + rep % 59);
    ++rep;
    for (const auto& p : paths) sink += world.flow().sample(p, at).rtt_ms;
    n += static_cast<long>(paths.size());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_ScalarSample)->Unit(benchmark::kMicrosecond);

// Batched SoA sampling kernel over the same working set, at batch sizes
// 1/16/256. Shared link fields are evaluated once per (field, t) within a
// batch, so throughput grows with batch size until the dedup saturates.
static void BM_BatchSample(benchmark::State& state) {
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  const auto paths = sweep_paths(world, servers, clients, overlays);

  model::BatchSampler sampler(&world.flow());
  sampler.begin_batch();
  std::vector<int> handles;
  for (const auto& p : paths) handles.push_back(sampler.intern(p));
  std::vector<model::PathMetrics> out(handles.size());

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  long n = 0;
  int rep = 0;
  for (auto _ : state) {
    const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(1 + rep % 59);
    ++rep;
    for (std::size_t lo = 0; lo < handles.size(); lo += batch) {
      const std::size_t len = std::min(batch, handles.size() - lo);
      sampler.sample_batch(handles.data() + lo, len, at, out.data() + lo);
    }
    n += static_cast<long>(handles.size());
  }
  benchmark::DoNotOptimize(out.data());
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_BatchSample)->Arg(1)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

namespace {

// Deterministic event-queue exercise: interleaved schedule/cancel with slot
// reuse across rounds; returns 1 iff exactly the non-cancelled callbacks
// fired, in timestamp-then-FIFO order.
int event_queue_ok() {
  sim::EventQueue q;
  long fired = 0, expected = 0;
  long order_violations = 0;
  long last_key = -1;
  for (int round = 0; round < 8; ++round) {
    std::vector<sim::EventHandle> hs;
    for (int i = 0; i < 64; ++i) {
      const long key = round * 64 + i;
      hs.push_back(q.schedule(sim::Time::microseconds(round * 64 + i / 2), [&, key] {
        ++fired;
        if (key < last_key) ++order_violations;
        last_key = key;
      }));
    }
    for (int i = 1; i < 64; i += 3) hs[i].cancel();
    expected += 64 - 21;  // 21 cancelled per round
    while (q.run_next()) {
    }
  }
  return (fired == expected && order_violations == 0) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  // --- recorded end-to-end sweep (bench_results/bench_micro.json) -------
  // Fixed size regardless of CRONETS_QUICK: the sweep takes well under a
  // second and the JSON checks must not depend on the mode.
  bench::print_header("micro", "hot-path measurement sweep");
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(30);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  for (int s : servers)
    for (int c : clients) world.meter().measure(s, c, overlays, sim::Time::hours(1));

  auto& cache = world.internet().path_cache();
  const std::uint64_t hits0 = cache.hits();
  const std::uint64_t misses0 = cache.misses();

  bench::BenchRun run("bench_micro");
  long n = 0;
  double direct_sum_bps = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(rep);
    for (int s : servers)
      for (int c : clients) {
        direct_sum_bps += world.meter().measure(s, c, overlays, at).direct_bps;
        ++n;
      }
  }
  run.stop_clock();
  run.set_pairs(n);

  const std::uint64_t sweep_hits = cache.hits() - hits0;
  const std::uint64_t sweep_misses = cache.misses() - misses0;

  // --- scalar vs batched sampling kernel ---------------------------------
  // The same sweep's path set through both samplers, single-threaded: the
  // scalar side is per-path FlowModel::sample (memoized aggregates + field
  // memo), the batched side one SoA sample_batch over pre-interned handles.
  // Rates are pair sweeps per second (11 paths per pair: direct plus two
  // legs for each of five overlays). These are the headline
  // scalar_pairs_per_s / batch_pairs_per_s extras CI tracks; the full
  // measure() comparison below also pays the per-pair stochastic draws,
  // which are bitwise-pinned and identical on both sides, so it lands in
  // separate measure_* extras.
  using clock = std::chrono::steady_clock;
  const auto kpaths = sweep_paths(world, servers, clients, overlays);
  const int kSampleReps = 40;

  double kernel_sink = 0.0;
  const auto sample_scalar_t0 = clock::now();
  for (int rep = 0; rep < kSampleReps; ++rep) {
    const sim::Time at = sim::Time::hours(3) + sim::Time::minutes(rep);
    for (const auto& p : kpaths) kernel_sink += world.flow().sample(p, at).rtt_ms;
  }
  const double sample_scalar_s =
      std::chrono::duration<double>(clock::now() - sample_scalar_t0).count();

  // Scalar-ISA batched sampler: isolates the SoA batching win so the
  // batch_* extras keep their pre-vectorization meaning.
  model::BatchSampler ksampler(&world.flow(), model::simd::Level::kScalar);
  ksampler.begin_batch();
  std::vector<int> khandles;
  for (const auto& p : kpaths) khandles.push_back(ksampler.intern(p));
  std::vector<model::PathMetrics> kout(khandles.size());
  const auto sample_batch_t0 = clock::now();
  for (int rep = 0; rep < kSampleReps; ++rep) {
    const sim::Time at = sim::Time::hours(3) + sim::Time::minutes(rep);
    ksampler.sample_batch(khandles.data(), khandles.size(), at, kout.data());
    kernel_sink += kout[0].rtt_ms;
  }
  const double sample_batch_s =
      std::chrono::duration<double>(clock::now() - sample_batch_t0).count();

  // The dispatched sampler (CRONETS_SIMD: AVX2/NEON where available):
  // batching + vectorized AR(1) innovations + vectorized PFTK.
  model::BatchSampler vsampler(&world.flow());
  vsampler.begin_batch();
  std::vector<int> vhandles;
  for (const auto& p : kpaths) vhandles.push_back(vsampler.intern(p));
  std::vector<model::PathMetrics> vout(vhandles.size());
  const auto sample_simd_t0 = clock::now();
  for (int rep = 0; rep < kSampleReps; ++rep) {
    const sim::Time at = sim::Time::hours(3) + sim::Time::minutes(rep);
    vsampler.sample_batch(vhandles.data(), vhandles.size(), at, vout.data());
    kernel_sink += vout[0].rtt_ms;
  }
  const double sample_simd_s =
      std::chrono::duration<double>(clock::now() - sample_simd_t0).count();

  const double paths_per_pair =
      1.0 + 2.0 * static_cast<double>(overlays.size());
  const double sample_pair_sweeps = static_cast<double>(kpaths.size()) *
                                    kSampleReps / paths_per_pair;
  run.add_extra("scalar_pairs_per_s",
                sample_scalar_s > 0 ? sample_pair_sweeps / sample_scalar_s : 0.0);
  run.add_extra("batch_pairs_per_s",
                sample_batch_s > 0 ? sample_pair_sweeps / sample_batch_s : 0.0);
  run.add_extra("batch_speedup",
                sample_batch_s > 0 ? sample_scalar_s / sample_batch_s : 0.0);
  run.add_extra("simd_pairs_per_s",
                sample_simd_s > 0 ? sample_pair_sweeps / sample_simd_s : 0.0);
  run.add_extra("simd_speedup",
                sample_simd_s > 0 ? sample_scalar_s / sample_simd_s : 0.0);

  // Dispatched == scalar ISA, bit for bit, and an order-sensitive
  // fingerprint over the dispatched sweep (identical under any
  // CRONETS_SIMD setting — the baseline the CI determinism legs diff).
  int simd_eq_scalar = 1;
  std::uint64_t sample_fp = 0;
  for (const sim::Time at : {sim::Time::hours(5) + sim::Time::minutes(11),
                             sim::Time::hours(29) + sim::Time::seconds(3)}) {
    ksampler.sample_batch(khandles.data(), khandles.size(), at, kout.data());
    vsampler.sample_batch(vhandles.data(), vhandles.size(), at, vout.data());
    for (std::size_t i = 0; i < kout.size(); ++i) {
      if (kout[i].rtt_ms != vout[i].rtt_ms || kout[i].loss != vout[i].loss ||
          kout[i].residual_bps != vout[i].residual_bps ||
          kout[i].capacity_bps != vout[i].capacity_bps) {
        simd_eq_scalar = 0;
      }
      sample_fp = sim::hash_combine(
          sample_fp,
          sim::hash_combine(std::bit_cast<std::uint64_t>(vout[i].rtt_ms),
                            sim::hash_combine(
                                std::bit_cast<std::uint64_t>(vout[i].residual_bps),
                                std::bit_cast<std::uint64_t>(vout[i].loss))));
    }
  }

  // --- scalar vs batched end-to-end measure() ----------------------------
  // Same pair sweep through measure() and measure_batch(). Both entry
  // points pay the identical per-pair draw sequence (mt19937_64 seeding +
  // lognormal noise), so this ratio is much smaller than the kernel one.
  std::vector<std::pair<int, int>> pairs;
  for (int s : servers)
    for (int c : clients) pairs.emplace_back(s, c);
  std::vector<core::PairSample> batched(pairs.size());
  const int kKernelReps = 10;

  const auto scalar_t0 = clock::now();
  for (int rep = 0; rep < kKernelReps; ++rep) {
    const sim::Time at = sim::Time::hours(2) + sim::Time::minutes(rep);
    for (const auto& [s, c] : pairs) {
      kernel_sink += world.meter().measure(s, c, overlays, at).direct_bps;
    }
  }
  const double scalar_s = std::chrono::duration<double>(clock::now() - scalar_t0).count();

  const auto batch_t0 = clock::now();
  for (int rep = 0; rep < kKernelReps; ++rep) {
    const sim::Time at = sim::Time::hours(2) + sim::Time::minutes(rep);
    world.meter().measure_batch(pairs.data(), pairs.size(), overlays, at,
                                batched.data());
    kernel_sink += batched[0].direct_bps;
  }
  const double batch_s = std::chrono::duration<double>(clock::now() - batch_t0).count();
  const double kernel_pairs = static_cast<double>(pairs.size()) * kKernelReps;
  run.add_extra("measure_scalar_pairs_per_s",
                scalar_s > 0 ? kernel_pairs / scalar_s : 0.0);
  run.add_extra("measure_batch_pairs_per_s",
                batch_s > 0 ? kernel_pairs / batch_s : 0.0);
  run.add_extra("measure_speedup", batch_s > 0 ? scalar_s / batch_s : 0.0);

  // Batched == scalar, bit for bit: every field of every PairSample, across
  // batch sizes (1, a ragged 13, all) and several timestamps.
  int batch_eq_scalar = 1;
  const auto same_sample = [](const core::PairSample& a, const core::PairSample& b) {
    if (a.direct_bps != b.direct_bps || a.direct_rtt_ms != b.direct_rtt_ms ||
        a.direct_loss != b.direct_loss || a.direct_hops != b.direct_hops ||
        a.overlays.size() != b.overlays.size()) {
      return false;
    }
    for (std::size_t o = 0; o < a.overlays.size(); ++o) {
      if (a.overlays[o].plain_bps != b.overlays[o].plain_bps ||
          a.overlays[o].split_bps != b.overlays[o].split_bps ||
          a.overlays[o].discrete_bps != b.overlays[o].discrete_bps ||
          a.overlays[o].rtt_ms != b.overlays[o].rtt_ms ||
          a.overlays[o].loss != b.overlays[o].loss) {
        return false;
      }
    }
    return true;
  };
  for (const sim::Time at : {sim::Time::hours(1) + sim::Time::minutes(3),
                             sim::Time::hours(25) + sim::Time::seconds(17)}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{13}, pairs.size()}) {
      for (std::size_t lo = 0; lo < pairs.size(); lo += batch) {
        const std::size_t len = std::min(batch, pairs.size() - lo);
        world.meter().measure_batch(pairs.data() + lo, len, overlays, at,
                                    batched.data() + lo);
      }
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (!same_sample(batched[i], world.meter().measure(pairs[i].first,
                                                           pairs[i].second,
                                                           overlays, at))) {
          batch_eq_scalar = 0;
        }
      }
    }
  }
  benchmark::DoNotOptimize(kernel_sink);

  // Fast-path aggregates must reproduce the generic sampler bit for bit.
  int fast_eq_generic = 1;
  for (int s : servers) {
    for (int c : clients) {
      const topo::PathRef p = world.internet().cached_path(s, c);
      const model::PathMetrics fast = world.flow().sample(p, sim::Time::minutes(90));
      const model::PathMetrics ref = world.flow().sample(*p, sim::Time::minutes(90));
      if (fast.rtt_ms != ref.rtt_ms || fast.loss != ref.loss ||
          fast.residual_bps != ref.residual_bps ||
          fast.capacity_bps != ref.capacity_bps || fast.hop_count != ref.hop_count) {
        fast_eq_generic = 0;
      }
    }
  }

  run.finish({
      {"micro: mean direct throughput (Mbit/s)", 76.161,
       direct_sum_bps / static_cast<double>(n) / 1e6},
      {"micro: sweep path-cache misses (expect 0, all warm)", 0.0,
       static_cast<double>(sweep_misses)},
      {"micro: sweep path-cache hit count / 1000", 33.0,
       static_cast<double>(sweep_hits) / 1000.0},
      {"micro: interned paths == cache misses (1=yes)", 1.0,
       cache.size() == cache.misses() ? 1.0 : 0.0},
      {"micro: fast sample == generic sample (1=yes)", 1.0,
       static_cast<double>(fast_eq_generic)},
      {"micro: batch sample == scalar sample (1=yes)", 1.0,
       static_cast<double>(batch_eq_scalar)},
      {"micro: simd sample == scalar sample (1=yes)", 1.0,
       static_cast<double>(simd_eq_scalar)},
      {"micro: sweep sample fingerprint (low 32 bits)", -1.0,
       static_cast<double>(sample_fp & 0xffffffffu)},
      {"micro: event-queue churn order+count ok (1=yes)", 1.0,
       static_cast<double>(event_queue_ok())},
  });
  return 0;
}
