// Engine microbenchmarks (google-benchmark): event queue throughput,
// end-to-end TCP simulation speed, topology generation and policy routing.

#include <benchmark/benchmark.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/internet.h"
#include "transport/apps.h"

using namespace cronets;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simv;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simv.schedule_in(sim::Time::microseconds(i), [&] { ++fired; });
    }
    simv.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void BM_TcpBulkTransferSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simv;
    net::Network netw(&simv, sim::Rng{7});
    auto* a = netw.add_host("A");
    auto* b = netw.add_host("B");
    auto* r = netw.add_router("R");
    net::LinkSpec acc, bot;
    acc.capacity_bps = 1e9;
    acc.prop_delay = sim::Time::milliseconds(1);
    bot.capacity_bps = 100e6;
    bot.prop_delay = sim::Time::milliseconds(10);
    netw.add_link(a, r, acc);
    netw.add_link(r, b, bot);
    netw.compute_routes();
    transport::TcpConfig cfg;
    transport::BulkSink sink(b, 5001, cfg);
    transport::BulkSource src(a, 1234, b->addr(), 5001, cfg);
    src.start();
    simv.run_until(sim::Time::seconds(1));
    benchmark::DoNotOptimize(sink.bytes_received());
  }
}
BENCHMARK(BM_TcpBulkTransferSimSecond)->Unit(benchmark::kMillisecond);

static void BM_TopologyGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    topo::TopologyParams p;
    p.seed = seed++;
    topo::Internet net(p, topo::CloudParams{});
    benchmark::DoNotOptimize(net.links().size());
  }
}
BENCHMARK(BM_TopologyGeneration)->Unit(benchmark::kMillisecond);

static void BM_PolicyRoutingPerDestination(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  int dst = 0;
  for (auto _ : state) {
    net.routing().invalidate();
    benchmark::DoNotOptimize(net.routing().to(dst % static_cast<int>(net.ases().size())));
    ++dst;
  }
}
BENCHMARK(BM_PolicyRoutingPerDestination)->Unit(benchmark::kMicrosecond);

static void BM_RouterPathExpansion(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.path(c, s).routers.size());
  }
}
BENCHMARK(BM_RouterPathExpansion)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
