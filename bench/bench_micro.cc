// Engine microbenchmarks (google-benchmark): event queue throughput and
// churn, path-cache hit/miss cost, end-to-end measurement rate, topology
// generation and policy routing. After the google-benchmark tables, main()
// runs a fixed end-to-end measure sweep and records it via bench::BenchRun,
// so bench_results/bench_micro.json tracks measures/s (as pairs_per_s) and
// seed-deterministic hot-path counters PR over PR.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/internet.h"
#include "transport/apps.h"
#include "wkld/world.h"

using namespace cronets;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simv;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simv.schedule_in(sim::Time::microseconds(i), [&] { ++fired; });
    }
    simv.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// Steady-state schedule/cancel/fire cycling: every round retires 100 slots
// back to the arena free list and reuses them, so this measures the
// allocation-free churn path (and handle invalidation) rather than arena
// growth.
static void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles;
    handles.reserve(100);
    long fired = 0;
    for (int round = 0; round < 10; ++round) {
      handles.clear();
      for (int i = 0; i < 100; ++i) {
        handles.push_back(q.schedule(sim::Time::microseconds(round * 100 + i),
                                     [&] { ++fired; }));
      }
      for (int i = 0; i < 100; i += 2) handles[i].cancel();
      while (q.run_next()) {
      }
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

static void BM_TcpBulkTransferSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simv;
    net::Network netw(&simv, sim::Rng{7});
    auto* a = netw.add_host("A");
    auto* b = netw.add_host("B");
    auto* r = netw.add_router("R");
    net::LinkSpec acc, bot;
    acc.capacity_bps = 1e9;
    acc.prop_delay = sim::Time::milliseconds(1);
    bot.capacity_bps = 100e6;
    bot.prop_delay = sim::Time::milliseconds(10);
    netw.add_link(a, r, acc);
    netw.add_link(r, b, bot);
    netw.compute_routes();
    transport::TcpConfig cfg;
    transport::BulkSink sink(b, 5001, cfg);
    transport::BulkSource src(a, 1234, b->addr(), 5001, cfg);
    src.start();
    simv.run_until(sim::Time::seconds(1));
    benchmark::DoNotOptimize(sink.bytes_received());
  }
}
BENCHMARK(BM_TcpBulkTransferSimSecond)->Unit(benchmark::kMillisecond);

static void BM_TopologyGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    topo::TopologyParams p;
    p.seed = seed++;
    topo::Internet net(p, topo::CloudParams{});
    benchmark::DoNotOptimize(net.links().size());
  }
}
BENCHMARK(BM_TopologyGeneration)->Unit(benchmark::kMillisecond);

static void BM_PolicyRoutingPerDestination(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  int dst = 0;
  for (auto _ : state) {
    net.routing().invalidate();
    benchmark::DoNotOptimize(net.routing().to(dst % static_cast<int>(net.ases().size())));
    ++dst;
  }
}
BENCHMARK(BM_PolicyRoutingPerDestination)->Unit(benchmark::kMicrosecond);

static void BM_RouterPathExpansion(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.path(c, s).routers.size());
  }
}
BENCHMARK(BM_RouterPathExpansion)->Unit(benchmark::kMicrosecond);

// Warm lookup of an interned path: one shared_lock + hash probe, the cost
// every measure() pays per path after the first sweep.
static void BM_PathCacheHit(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  net.cached_path(c, s);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.cached_path(c, s)->routers.size());
  }
}
BENCHMARK(BM_PathCacheHit);

// Cold lookup: policy-route + expand + intern. Compare against
// BM_PathCacheHit for the per-path saving and against
// BM_RouterPathExpansion for the interning overhead itself.
static void BM_PathCacheMiss(benchmark::State& state) {
  topo::TopologyParams p;
  p.seed = 3;
  topo::Internet net(p, topo::CloudParams{});
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_server(topo::Region::kNaEast, "s");
  for (auto _ : state) {
    net.path_cache().invalidate();
    benchmark::DoNotOptimize(net.cached_path(c, s)->routers.size());
  }
}
BENCHMARK(BM_PathCacheMiss)->Unit(benchmark::kMicrosecond);

// Full analytic measurement including overlay candidates — the hot path of
// every figure sweep. Each iteration sweeps servers x clients at a fresh
// timestamp; items processed = measure() calls.
static void BM_EndToEndMeasure(benchmark::State& state) {
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  for (int s : servers)
    for (int c : clients) world.meter().measure(s, c, overlays, sim::Time::hours(1));
  long n = 0;
  int rep = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(1 + rep % 59);
    ++rep;
    for (int s : servers)
      for (int c : clients) {
        sink += world.meter().measure(s, c, overlays, at).direct_bps;
        ++n;
      }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_EndToEndMeasure)->Unit(benchmark::kMillisecond);

namespace {

// Deterministic event-queue exercise: interleaved schedule/cancel with slot
// reuse across rounds; returns 1 iff exactly the non-cancelled callbacks
// fired, in timestamp-then-FIFO order.
int event_queue_ok() {
  sim::EventQueue q;
  long fired = 0, expected = 0;
  long order_violations = 0;
  long last_key = -1;
  for (int round = 0; round < 8; ++round) {
    std::vector<sim::EventHandle> hs;
    for (int i = 0; i < 64; ++i) {
      const long key = round * 64 + i;
      hs.push_back(q.schedule(sim::Time::microseconds(round * 64 + i / 2), [&, key] {
        ++fired;
        if (key < last_key) ++order_violations;
        last_key = key;
      }));
    }
    for (int i = 1; i < 64; i += 3) hs[i].cancel();
    expected += 64 - 21;  // 21 cancelled per round
    while (q.run_next()) {
    }
  }
  return (fired == expected && order_violations == 0) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  // --- recorded end-to-end sweep (bench_results/bench_micro.json) -------
  // Fixed size regardless of CRONETS_QUICK: the sweep takes well under a
  // second and the JSON checks must not depend on the mode.
  bench::print_header("micro", "hot-path measurement sweep");
  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(30);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  for (int s : servers)
    for (int c : clients) world.meter().measure(s, c, overlays, sim::Time::hours(1));

  auto& cache = world.internet().path_cache();
  const std::uint64_t hits0 = cache.hits();
  const std::uint64_t misses0 = cache.misses();

  bench::BenchRun run("bench_micro");
  long n = 0;
  double direct_sum_bps = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(rep);
    for (int s : servers)
      for (int c : clients) {
        direct_sum_bps += world.meter().measure(s, c, overlays, at).direct_bps;
        ++n;
      }
  }
  run.stop_clock();
  run.set_pairs(n);

  const std::uint64_t sweep_hits = cache.hits() - hits0;
  const std::uint64_t sweep_misses = cache.misses() - misses0;

  // Fast-path aggregates must reproduce the generic sampler bit for bit.
  int fast_eq_generic = 1;
  for (int s : servers) {
    for (int c : clients) {
      const topo::PathRef p = world.internet().cached_path(s, c);
      const model::PathMetrics fast = world.flow().sample(p, sim::Time::minutes(90));
      const model::PathMetrics ref = world.flow().sample(*p, sim::Time::minutes(90));
      if (fast.rtt_ms != ref.rtt_ms || fast.loss != ref.loss ||
          fast.residual_bps != ref.residual_bps ||
          fast.capacity_bps != ref.capacity_bps || fast.hop_count != ref.hop_count) {
        fast_eq_generic = 0;
      }
    }
  }

  run.finish({
      {"micro: mean direct throughput (Mbit/s)", 76.161,
       direct_sum_bps / static_cast<double>(n) / 1e6},
      {"micro: sweep path-cache misses (expect 0, all warm)", 0.0,
       static_cast<double>(sweep_misses)},
      {"micro: sweep path-cache hit count / 1000", 33.0,
       static_cast<double>(sweep_hits) / 1000.0},
      {"micro: interned paths == cache misses (1=yes)", 1.0,
       cache.size() == cache.misses() ? 1.0 : 0.0},
      {"micro: fast sample == generic sample (1=yes)", 1.0,
       static_cast<double>(fast_eq_generic)},
      {"micro: event-queue churn order+count ok (1=yes)", 1.0,
       static_cast<double>(event_queue_ok())},
  });
  return 0;
}
