// Figure 6 (§IV): longitudinal study. The 30 pairs with the highest
// split-overlay improvement at ranking time are re-measured 50 times at
// 3-hour intervals over a week; for each path index we report the average
// direct throughput and the average per-sample best split-overlay
// throughput, with standard deviations (the paper's error bars).
//
// Paper: 90% of the 30 paths keep a significant improvement over the week
// (average improvement ratio 8.39, median 7.58); the top-ranked paths
// 1/2/4 — which shared a destination hit by a transient event during the
// ranking — have recovered and sit near the throughput ceiling, so the
// overlay cannot improve them further.

#include "analysis/stats.h"
#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  BenchRun run("fig6_longitudinal");
  wkld::World world(world_seed());
  const auto pipeline = wkld::run_longitudinal_pipeline(world);
  const auto& study = pipeline.study;
  run.stop_clock();
  run.set_pairs(static_cast<long>(pipeline.ranking.samples.size() +
                                  study.pairs.size() * study.samples_per_pair));

  print_header("Figure 6", "direct vs max split-overlay throughput, 30 paths / 1 week");
  std::printf("(transient ranking event on client endpoint %d, cleared before the week)\n\n",
              pipeline.event_victim);
  std::printf("%5s %26s %30s %8s\n", "path", "direct avg +- std (Mbps)",
              "max split-overlay avg +- std", "ratio");

  int improved = 0;
  std::vector<double> ratios;
  int recovered_in_top4 = 0;
  for (std::size_t i = 0; i < study.pairs.size(); ++i) {
    const auto& p = study.pairs[i];
    analysis::Cdf direct, best;
    for (double v : p.history.direct) direct.add(v / 1e6);
    for (double v : p.best_split_series) best.add(v / 1e6);
    const double ratio = best.mean() / std::max(1e-9, direct.mean());
    ratios.push_back(ratio);
    if (ratio > 1.25) ++improved;
    // "Recovered": the transient that earned this rank is gone — the weekly
    // ratio is an order of magnitude below the ranking-time improvement.
    if (i < 4 && ratio < p.ranking_improvement / 10.0) ++recovered_in_top4;
    std::printf("%5zu %12.2f +- %-10.2f %14.2f +- %-12.2f %8.2f (ranked at %.0fx)\n",
                i + 1, direct.mean(), direct.stdev(), best.mean(), best.stdev(),
                ratio, p.ranking_improvement);
  }

  analysis::Cdf rc;
  rc.add_all(ratios);
  run.finish({
      {"fraction of 30 paths still clearly improved", 0.90,
       static_cast<double>(improved) / static_cast<double>(ratios.size())},
      {"average improvement ratio over the week", 8.39, rc.mean()},
      {"median improvement ratio over the week", 7.58, rc.median()},
      {"top-4 paths that recovered (paper: 3 of 4)", 3.0,
       static_cast<double>(recovered_in_top4)},
  });
  return 0;
}
