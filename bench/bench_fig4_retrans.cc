// Figure 4 (§III-B.1): CDFs of the TCP retransmission rate over the direct
// paths and over the best (lowest-rate) tunnel overlay path per pair, in
// the controlled-sender experiment. The paper's headline: the overlay cuts
// the median retransmission rate by an order of magnitude
// (2.69e-4 -> 1.66e-5 as a fraction of bytes).
//
// The analytic sweep uses the path loss probability as the steady-state
// retransmission-rate estimate; a packet-level spot check with the real
// TCP stack and the tstat-style analyzer validates the mapping on a sample
// of pairs (CRONETS_QUICK=1 skips the spot check).

#include "bench_util.h"
#include "core/measure_packet.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  analysis::Cdf direct_rate, overlay_rate;
  for (const auto& s : exp.samples) {
    direct_rate.add(s.direct_loss);
    overlay_rate.add(s.min_overlay_loss());
  }

  print_header("Figure 4", "TCP retransmission rate, direct vs best tunnel");
  print_cdf_log(direct_rate, "direct path", 1e-6, 1e-1);
  print_cdf_log(overlay_rate, "best tunnel overlay", 1e-6, 1e-1);

  std::vector<PaperCheck> checks = {
      {"direct: median retransmission rate (x1e-4)", 2.69,
       direct_rate.median() * 1e4},
      {"overlay: median retransmission rate (x1e-4)", 0.166,
       overlay_rate.median() * 1e4},
      {"median reduction factor (direct/overlay)", 16.2,
       direct_rate.median() / std::max(1e-9, overlay_rate.median())},
  };

  if (!quick_mode()) {
    // Packet-level spot check: run real transfers on a few pairs and
    // compare sender retransmission rates against the model loss.
    std::printf("-- packet-level spot check (real TCP + tstat semantics) --\n");
    std::printf("%8s %14s %14s\n", "pair", "model loss", "measured retx");
    core::PacketLab lab(&world.internet());
    int shown = 0;
    double model_sum = 0, packet_sum = 0;
    for (std::size_t i = 0; i < exp.samples.size() && shown < 6; i += 41) {
      const auto& s = exp.samples[i];
      const auto r = lab.run_direct(s.src, s.dst, sim::Time::seconds(12),
                                    sim::Time::hours(1));
      if (!r.connected) continue;
      std::printf("%8zu %14.6f %14.6f\n", i, s.direct_loss, r.retrans_rate);
      model_sum += s.direct_loss;
      packet_sum += r.retrans_rate;
      ++shown;
    }
    if (shown > 0 && model_sum > 0) {
      checks.push_back({"spot check: packet/model retrans ratio (~1)", 1.0,
                        packet_sum / model_sum});
    }
  }

  print_paper_checks(checks);
  return 0;
}
