// Figure 2 (§III-A): CDFs of throughput improvement ratios (plain overlay
// and split-overlay over the direct path) for the real-life web server
// experiment: ~110 PlanetLab-like clients x 10 mirror servers x 5 overlay
// DCs = 6,600 observed Internet paths.
//
// Paper reference points:
//   plain overlay:  49% of pairs improved, average factor 1.29
//   split overlay:  78% improved, average 3.27, median 1.67,
//                   67% with >= 25% improvement

#include <bit>

#include "bench_util.h"
#include "sim/hash_rng.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  BenchRun run("fig2_weblarge");
  wkld::World world(world_seed());
  const auto exp = wkld::run_web_experiment(world);
  run.stop_clock();
  run.set_pairs(static_cast<long>(exp.samples.size()));

  analysis::Cdf plain_ratio, split_ratio;
  double plain_improved = 0, split_improved = 0, split_25 = 0;
  double plain_sum = 0, split_sum = 0;
  int n = 0;

  // Order-sensitive hash over every measured sample: the figure pipeline's
  // determinism witness (bitwise identical at any thread/batch count), and
  // what the CI bench-baseline gate pins against bench/baselines/.
  std::uint64_t fingerprint = 0;
  for (const auto& s : exp.samples) {
    fingerprint = sim::hash_combine(
        fingerprint,
        sim::hash_combine(std::bit_cast<std::uint64_t>(s.direct_bps),
                          std::bit_cast<std::uint64_t>(s.best_split_bps())));
    if (s.direct_bps <= 0) continue;
    ++n;
    const double rp = s.best_plain_bps() / s.direct_bps;
    const double rs = s.best_split_bps() / s.direct_bps;
    plain_ratio.add(rp);
    split_ratio.add(rs);
    plain_improved += rp > 1.0;
    split_improved += rs > 1.0;
    split_25 += rs >= 1.25;
    plain_sum += rp;
    split_sum += rs;
  }

  print_header("Figure 2", "throughput improvement ratios, real-life web servers");
  std::printf("clients: %zu  servers: %zu  overlay DCs: %zu  paths observed: %d\n\n",
              exp.clients.size(), exp.servers.size(), exp.overlays.size(), n * 6);
  print_cdf_log(plain_ratio, "overlay", 1e-2, 1e2);
  print_cdf_log(split_ratio, "split-overlay", 1e-2, 1e2);

  run.finish({
      {"plain: fraction improved (ratio > 1)", 0.49, plain_improved / n},
      {"plain: average improvement factor", 1.29, plain_sum / n},
      {"split: fraction improved", 0.78, split_improved / n},
      {"split: average improvement factor", 3.27, split_sum / n},
      {"split: median improvement factor", 1.67, split_ratio.median()},
      {"split: fraction with >=25% improvement", 0.67, split_25 / n},
      {"sample fingerprint (low 32 bits)", -1.0,
       static_cast<double>(fingerprint & 0xffffffffu)},
  });
  return 0;
}
