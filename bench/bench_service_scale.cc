// Overlay-broker scale bench: drives the src/service/ control plane with
// the session-churn workload (Poisson arrivals, Pareto durations) at
// provider scale (default: 10^7 concurrent sessions across 8 broker
// shards), injects a transit-adjacency failure mid-run, and reports
// admission rate (aggregate and per shard), path-decision latency
// (wall-clock and ranking staleness), probe overhead, failover reaction,
// and goodput regret vs. the per-sample oracle. The control plane is the
// sharded multi-broker (service::ShardedBroker): `--shards N` (or
// CRONETS_SHARDS) picks the shard count, and every seed-pure output row —
// the decision fingerprint above all — is bitwise identical at any shard
// count and any thread count. Probe sweeps run through the batched SoA
// measurement kernel (CRONETS_BATCH). `--smoke` shrinks everything for CI
// (and writes smoke_*.json); CRONETS_SERVICE_TARGET overrides the
// concurrency target.
//
// JSON: all `checks` rows are a pure function of the seed (the decision
// fingerprint row is the cross-thread *and* cross-shard determinism
// witness); wall-clock metrics — aggregate and per-shard admission rates,
// decision latency — land under `extra`. Text output: per-shard rows are
// prefixed "-- shard" and the shard-count line "-- config", so the CI
// determinism diff can compare runs at different shard counts after
// filtering those (every aggregate row must survive the diff).

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/selection.h"
#include "econ/pricing_book.h"
#include "service/sharded_broker.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

using namespace cronets;

namespace {

double percentile(std::vector<std::uint32_t>* v, double p) {
  if (v->empty()) return 0.0;
  const std::size_t k =
      std::min(v->size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(v->size())));
  std::nth_element(v->begin(), v->begin() + static_cast<std::ptrdiff_t>(k),
                   v->end());
  return static_cast<double>((*v)[k]);
}

double percentile_f(std::vector<float>* v, double p) {
  if (v->empty()) return 0.0;
  const std::size_t k =
      std::min(v->size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(v->size())));
  std::nth_element(v->begin(), v->begin() + static_cast<std::ptrdiff_t>(k),
                   v->end());
  return static_cast<double>((*v)[k]);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  long shards_arg = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards_arg = std::strtol(argv[++i], nullptr, 10);
    }
  }
  const int num_shards = static_cast<int>(
      shards_arg > 0 ? shards_arg
                     : sim::env_u64("CRONETS_SHARDS", smoke ? 1 : 8));

  double target =
      sim::env_double("CRONETS_SERVICE_TARGET", smoke ? 5'000 : 10'000'000,
                      1.0, 100e6);

  bench::print_header("service", "sharded overlay broker at session scale");
  bench::BenchRun run("bench_service_scale", smoke);

  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(smoke ? 30 : 120);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = smoke ? sim::Time::seconds(10) : sim::Time::seconds(20);
  cfg.probe.tick = smoke ? sim::Time::seconds(1) : sim::Time::seconds(2);
  const std::size_t num_pairs = clients.size() * servers.size();
  const auto ticks_per_interval =
      static_cast<std::size_t>(cfg.probe.interval.ns() / cfg.probe.tick.ns());
  cfg.probe.budget_per_tick =
      static_cast<int>((num_pairs + ticks_per_interval - 1) / ticks_per_interval);
  cfg.failover_delay = sim::Time::seconds(1);
  // Economics plane: always attached (the metered ledger observes every
  // run); the ranking objective follows CRONETS_COST_POLICY, which
  // defaults to `performance` — under it every decision, and hence the
  // decision fingerprint, is bitwise identical to the plane being off.
  const econ::PricingBook pricing_book;
  cfg.ranking.econ = econ::econ_config_from_env(&pricing_book);
  service::ShardedBroker broker(&world.internet(), &world.meter(),
                                &world.pool(), overlays, num_shards, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = bench::world_seed() ^ 0xc0ffee;
  churn_params.target_concurrent = target;
  churn_params.mean_duration_s = smoke ? 30.0 : 60.0;
  churn_params.horizon =
      sim::Time::from_seconds(3.0 * churn_params.mean_duration_s);
  churn_params.record_latency = true;
  // At 10^7 concurrency the run admits ~4x target sessions; sampling every
  // 16th admission keeps the latency log in the low hundreds of MB while
  // leaving millions of percentile samples.
  churn_params.latency_sample_every = target >= 1e6 ? 16 : 1;
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();

  // Fail the busiest transit adjacency halfway through, then check —
  // one failover delay later — that no session still crosses it.
  const sim::Time t_fail = churn_params.horizon / 2;
  int fail_a = -1, fail_b = -1;
  int crossing_before = 0, crossing_after = -1;
  broker.queue().schedule(t_fail, [&] {
    if (!broker.busiest_transit_adjacency(&fail_a, &fail_b)) return;
    crossing_before = broker.sessions_traversing(fail_a, fail_b);
    world.internet().set_adjacency_up(fail_a, fail_b, false);
  });
  broker.queue().schedule(
      t_fail + cfg.failover_delay + sim::Time::milliseconds(1), [&] {
        if (fail_a >= 0) crossing_after = broker.sessions_traversing(fail_a, fail_b);
      });

  broker.run_until(churn_params.horizon);
  broker.settle_billing();
  run.stop_clock();

  const auto st = broker.stats();
  auto churn_stats = churn.stats();  // copy: percentile reorders the vectors
  // "pairs" for this bench = admission decisions, so the JSON's
  // pairs_per_s is the headline sessions-admitted-per-wall-second rate.
  run.set_pairs(static_cast<long>(st.sessions_admitted));

  // Aggregate goodput regret, recomputed from the recorded per-pair probe
  // histories with the core/selection oracle (mptcp_achieved at
  // efficiency 1 == the per-sample best path). Pairs are folded in
  // global-pair-id order, so the sums are bitwise shard-count-invariant.
  double oracle_sum = 0.0, achieved_sum = 0.0;
  for (std::size_t g = 0; g < broker.pair_count(); ++g) {
    const auto& p = broker.pair(static_cast<int>(g));
    const auto oracle = core::mptcp_achieved(p.history, 1.0);
    for (double v : oracle) oracle_sum += v;
    for (double v : p.achieved_bps) achieved_sum += v;
  }
  const double aggregate_regret =
      oracle_sum > 0.0 ? 1.0 - achieved_sum / oracle_sum : 0.0;

  // Sustained rate of the admission decision path itself (timed
  // open_session calls only — excludes the simulator driving arrivals):
  // sessions the broker can admit per second of decision wall time.
  double admit_wall_sum_ns = 0.0;
  for (const std::uint32_t v : churn_stats.admit_wall_ns) admit_wall_sum_ns += v;
  const double admit_path_per_s =
      admit_wall_sum_ns > 0.0
          ? static_cast<double>(churn_stats.admit_wall_ns.size()) * 1e9 /
                admit_wall_sum_ns
          : 0.0;
  const double p50_wall_us = percentile(&churn_stats.admit_wall_ns, 0.50) / 1e3;
  const double p99_wall_us = percentile(&churn_stats.admit_wall_ns, 0.99) / 1e3;
  const double p50_stale_s =
      percentile_f(&churn_stats.admit_staleness_s, 0.50);
  const double p99_stale_s =
      percentile_f(&churn_stats.admit_staleness_s, 0.99);
  const double wall_s = run.wall_seconds();

  // Per-shard NIC accounting must sum to the shared (physical) ledger —
  // the shards split the books, not the capacity.
  double shard_nic_sum = 0.0;
  std::uint64_t overlay_denied = 0;
  for (const auto& ss : st.shards) {
    shard_nic_sum += ss.nic_used_bps;
    overlay_denied += ss.overlay_denied;
  }
  const double global_nic = broker.global_nic().total_used_bps();
  const bool nic_books_ok =
      std::abs(shard_nic_sum - global_nic) <=
      1e-9 * std::max(1.0, std::max(std::abs(shard_nic_sum), std::abs(global_nic)));

  // Same split-the-books-not-the-money invariant for the billing ledger:
  // per-shard metered USD/GB sum to the shared global book.
  double shard_usd_sum = 0.0, shard_gb_sum = 0.0;
  for (int s = 0; s < broker.num_shards(); ++s) {
    shard_usd_sum += broker.shard_sessions(s).billing().total_usd();
    shard_gb_sum += broker.shard_sessions(s).billing().delivered_gb();
  }
  const double global_usd = broker.global_billing().total_usd();
  const double global_gb = broker.global_billing().delivered_gb();
  const auto close_rel = [](double a, double b) {
    return std::abs(a - b) <=
           1e-9 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
  };
  const bool cost_books_ok =
      close_rel(shard_usd_sum, global_usd) && close_rel(shard_gb_sum, global_gb);

  std::printf("clients=%zu servers=%zu pairs=%zu overlays=%zu\n",
              clients.size(), servers.size(), num_pairs, overlays.size());
  std::printf("-- config: shards=%d threads=%d\n", broker.num_shards(),
              sim::Parallelism{}.resolved());
  std::printf("target %.0f concurrent, arrival rate %.0f/s, horizon %.0f s\n",
              target, churn.arrival_rate_per_s(),
              churn_params.horizon.to_seconds());
  std::printf("admitted %llu sessions (peak concurrent %zu), released %llu\n",
              static_cast<unsigned long long>(st.sessions_admitted),
              churn_stats.peak_concurrent,
              static_cast<unsigned long long>(st.sessions_released));
  std::printf("via overlay %llu, overlay-denied %llu, migrations %llu, "
              "ranking flips %llu\n",
              static_cast<unsigned long long>(st.admitted_via_overlay),
              static_cast<unsigned long long>(overlay_denied),
              static_cast<unsigned long long>(st.migrations),
              static_cast<unsigned long long>(st.ranking_flips));
  std::printf("probes %llu (budget %d/tick), probe backlog %llu\n",
              static_cast<unsigned long long>(st.probes),
              cfg.probe.budget_per_tick,
              static_cast<unsigned long long>(broker.scheduler().backlog()));
  const double dirty_pairs_per_sweep =
      st.probe_ticks > 0 ? static_cast<double>(st.sweep_pairs_touched) /
                               static_cast<double>(st.probe_ticks)
                         : 0.0;
  std::printf("dirty-set sweeps: %.1f pairs touched per tick (of %zu pairs, "
              "%llu ticks)\n",
              dirty_pairs_per_sweep, num_pairs,
              static_cast<unsigned long long>(st.probe_ticks));
  std::printf("failover: adjacency AS%d-AS%d, %d sessions crossing before, "
              "%d after, reaction %.3f s (interval %.0f s)\n",
              fail_a, fail_b, crossing_before, crossing_after,
              st.last_failover_reaction.to_seconds(),
              cfg.probe.interval.to_seconds());
  std::printf("goodput regret: %.4f mean per-probe, %.4f aggregate vs oracle\n",
              st.mean_regret(), aggregate_regret);
  std::printf("cost policy %s: metered %.4f USD / %.3f GB egressed "
              "(budget-denied %llu, SLO %llu/%llu)\n",
              econ::cost_policy_name(cfg.ranking.econ.policy), global_usd,
              global_gb, static_cast<unsigned long long>(st.budget_denied),
              static_cast<unsigned long long>(st.slo_met),
              static_cast<unsigned long long>(st.slo_total));
  std::printf("-- timing: decision wall p50 %.2f us, p99 %.2f us; staleness "
              "p50 %.1f s, p99 %.1f s\n",
              p50_wall_us, p99_wall_us, p50_stale_s, p99_stale_s);
  std::printf("-- timing: admission path sustains %.2fM admissions/s "
              "(%zu timed decisions)\n",
              admit_path_per_s / 1e6, churn_stats.admit_wall_ns.size());

  run.add_extra("shards", static_cast<double>(broker.num_shards()));
  run.add_extra("decision_wall_p50_us", p50_wall_us);
  run.add_extra("decision_wall_p99_us", p99_wall_us);
  run.add_extra("p99_under_50us", p99_wall_us < 50.0 ? 1.0 : 0.0);
  run.add_extra("admit_path_admissions_per_s", admit_path_per_s);
  run.add_extra("regret_mean_per_probe", st.mean_regret());
  run.add_extra("regret_aggregate_vs_oracle", aggregate_regret);
  // Mean pairs the incremental probe scheduler examined per tick — the
  // dirty-set size. The stateless scan would touch every pair every tick.
  run.add_extra("dirty_pairs_per_sweep", dirty_pairs_per_sweep);

  // Per-shard rows: "-- shard" text prefix + shard<k>_* extras. These are
  // the only outputs that legitimately differ between shard counts.
  run.add_extra("admissions_per_s",
                wall_s > 0 ? static_cast<double>(st.sessions_admitted) / wall_s
                           : 0.0);
  for (std::size_t s = 0; s < st.shards.size(); ++s) {
    const auto& ss = st.shards[s];
    const double adm_per_s =
        wall_s > 0 ? static_cast<double>(ss.sessions_admitted) / wall_s : 0.0;
    std::printf("-- shard %zu: pairs=%zu admitted=%llu (%.0f/s) active=%zu "
                "probes=%llu migrations=%llu nic_used=%.3g bps\n",
                s, ss.pairs,
                static_cast<unsigned long long>(ss.sessions_admitted),
                adm_per_s, ss.active_sessions,
                static_cast<unsigned long long>(ss.probes),
                static_cast<unsigned long long>(ss.migrations),
                ss.nic_used_bps);
    run.add_extra("shard" + std::to_string(s) + "_admitted",
                  static_cast<double>(ss.sessions_admitted));
    run.add_extra("shard" + std::to_string(s) + "_admissions_per_s", adm_per_s);
    run.add_extra("shard" + std::to_string(s) + "_probes",
                  static_cast<double>(ss.probes));
  }

  const bool failover_ok = fail_a >= 0 && crossing_after == 0 &&
                           st.last_failover_reaction <= cfg.probe.interval;
  std::vector<bench::PaperCheck> checks = {
      {"concurrent sessions sustained (target row)", target,
       static_cast<double>(churn_stats.peak_concurrent)},
      {"sessions admitted", 0.0, static_cast<double>(st.sessions_admitted)},
      {"admitted via overlay (NIC-capped)", 0.0,
       static_cast<double>(st.admitted_via_overlay)},
      {"session migrations on ranking change", 0.0,
       static_cast<double>(st.migrations)},
      {"probes issued", 0.0, static_cast<double>(st.probes)},
      // A budget-limited round-robin prober re-probes a pair between
      // `interval` (becomes due) and ~2x interval (waits a full rotation
      // for budget), so 2x interval is the steady-state staleness bound.
      {"decision staleness p99 <= 2x probe interval (1=yes)", 1.0,
       p99_stale_s <= 2.0 * cfg.probe.interval.to_seconds() ? 1.0 : 0.0},
      {"goodput regret mean per-probe", 0.0, st.mean_regret()},
      {"goodput regret aggregate vs oracle", 0.0, aggregate_regret},
      {"failover reaction seconds", cfg.failover_delay.to_seconds(),
       st.last_failover_reaction.to_seconds()},
      {"sessions crossing failed adjacency after repin", 0.0,
       static_cast<double>(crossing_after)},
      {"repinned within one probe interval (1=yes)", 1.0,
       failover_ok ? 1.0 : 0.0},
      {"per-shard NIC books sum to global ledger (1=yes)", 1.0,
       nic_books_ok ? 1.0 : 0.0},
      {"sharded cost books sum to global ledger (1=yes)", 1.0,
       cost_books_ok ? 1.0 : 0.0},
      {"metered egress USD", 0.0, global_usd},
      {"decision fingerprint (low 32 bits)", -1.0,
       static_cast<double>(st.decision_fingerprint & 0xffffffffu)},
      {"cost fingerprint (low 32 bits)", -1.0,
       static_cast<double>(broker.global_billing().fingerprint() &
                           0xffffffffu)},
  };
  run.finish(checks);
  return 0;
}
