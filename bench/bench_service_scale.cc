// Overlay-broker scale bench: drives the src/service/ control plane with
// the session-churn workload (Poisson arrivals, Pareto durations) at
// million-session concurrency, injects a transit-adjacency failure
// mid-run, and reports admission rate, path-decision latency (wall-clock
// and ranking staleness), probe overhead, failover reaction, and goodput
// regret vs. the per-sample oracle. Probe sweeps run through the batched
// SoA measurement kernel (CRONETS_BATCH), which is what lets the default
// target sit at 10^6 concurrent sessions. `--smoke` shrinks everything
// for CI; the CRONETS_SERVICE_TARGET env var overrides the concurrency
// target.
//
// JSON: all `checks` rows are a pure function of the seed (the decision
// fingerprint row is the cross-thread determinism witness); wall-clock
// metrics land under `extra`.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/selection.h"
#include "service/broker.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

using namespace cronets;

namespace {

double percentile(std::vector<std::uint32_t>* v, double p) {
  if (v->empty()) return 0.0;
  const std::size_t k =
      std::min(v->size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(v->size())));
  std::nth_element(v->begin(), v->begin() + static_cast<std::ptrdiff_t>(k),
                   v->end());
  return static_cast<double>((*v)[k]);
}

double percentile_f(std::vector<float>* v, double p) {
  if (v->empty()) return 0.0;
  const std::size_t k =
      std::min(v->size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(v->size())));
  std::nth_element(v->begin(), v->begin() + static_cast<std::ptrdiff_t>(k),
                   v->end());
  return static_cast<double>((*v)[k]);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  double target =
      sim::env_double("CRONETS_SERVICE_TARGET", smoke ? 5'000 : 1'000'000, 1.0,
                      100e6);

  bench::print_header("service", "overlay broker at session scale");
  bench::BenchRun run("bench_service_scale");

  wkld::World world(bench::world_seed());
  const auto clients = world.make_web_clients(smoke ? 30 : 120);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = smoke ? sim::Time::seconds(10) : sim::Time::seconds(20);
  cfg.probe.tick = smoke ? sim::Time::seconds(1) : sim::Time::seconds(2);
  const std::size_t num_pairs = clients.size() * servers.size();
  const auto ticks_per_interval =
      static_cast<std::size_t>(cfg.probe.interval.ns() / cfg.probe.tick.ns());
  cfg.probe.budget_per_tick =
      static_cast<int>((num_pairs + ticks_per_interval - 1) / ticks_per_interval);
  cfg.failover_delay = sim::Time::seconds(1);
  service::Broker broker(&world.internet(), &world.meter(), &world.pool(),
                         overlays, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = bench::world_seed() ^ 0xc0ffee;
  churn_params.target_concurrent = target;
  churn_params.mean_duration_s = smoke ? 30.0 : 60.0;
  churn_params.horizon =
      sim::Time::from_seconds(3.0 * churn_params.mean_duration_s);
  churn_params.record_latency = true;
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();

  // Fail the busiest transit adjacency halfway through, then check —
  // one failover delay later — that no session still crosses it.
  const sim::Time t_fail = churn_params.horizon / 2;
  int fail_a = -1, fail_b = -1;
  int crossing_before = 0, crossing_after = -1;
  broker.queue().schedule(t_fail, [&] {
    if (!broker.busiest_transit_adjacency(&fail_a, &fail_b)) return;
    crossing_before = broker.sessions_traversing(fail_a, fail_b);
    world.internet().set_adjacency_up(fail_a, fail_b, false);
  });
  broker.queue().schedule(
      t_fail + cfg.failover_delay + sim::Time::milliseconds(1), [&] {
        if (fail_a >= 0) crossing_after = broker.sessions_traversing(fail_a, fail_b);
      });

  broker.run_until(churn_params.horizon);
  run.stop_clock();

  const auto& st = broker.stats();
  auto churn_stats = churn.stats();  // copy: percentile reorders the vectors
  // "pairs" for this bench = admission decisions, so the JSON's
  // pairs_per_s is the headline sessions-admitted-per-wall-second rate.
  run.set_pairs(static_cast<long>(st.sessions_admitted));

  // Aggregate goodput regret, recomputed from the recorded per-pair probe
  // histories with the core/selection oracle (mptcp_achieved at
  // efficiency 1 == the per-sample best path).
  double oracle_sum = 0.0, achieved_sum = 0.0;
  for (std::size_t i = 0; i < broker.ranker().size(); ++i) {
    const auto& p = broker.ranker().pair(static_cast<int>(i));
    const auto oracle = core::mptcp_achieved(p.history, 1.0);
    for (double v : oracle) oracle_sum += v;
    for (double v : p.achieved_bps) achieved_sum += v;
  }
  const double aggregate_regret =
      oracle_sum > 0.0 ? 1.0 - achieved_sum / oracle_sum : 0.0;

  const double p50_wall_us = percentile(&churn_stats.admit_wall_ns, 0.50) / 1e3;
  const double p99_wall_us = percentile(&churn_stats.admit_wall_ns, 0.99) / 1e3;
  const double p50_stale_s =
      percentile_f(&churn_stats.admit_staleness_s, 0.50);
  const double p99_stale_s =
      percentile_f(&churn_stats.admit_staleness_s, 0.99);

  std::printf("clients=%zu servers=%zu pairs=%zu overlays=%zu\n",
              clients.size(), servers.size(), num_pairs, overlays.size());
  std::printf("target %.0f concurrent, arrival rate %.0f/s, horizon %.0f s\n",
              target, churn.arrival_rate_per_s(),
              churn_params.horizon.to_seconds());
  std::printf("admitted %llu sessions (peak concurrent %zu), released %llu\n",
              static_cast<unsigned long long>(st.sessions_admitted),
              churn_stats.peak_concurrent,
              static_cast<unsigned long long>(st.sessions_released));
  std::printf("via overlay %llu, overlay-denied %llu, migrations %llu, "
              "ranking flips %llu\n",
              static_cast<unsigned long long>(st.admitted_via_overlay),
              static_cast<unsigned long long>(broker.sessions().overlay_denied()),
              static_cast<unsigned long long>(st.migrations),
              static_cast<unsigned long long>(st.ranking_flips));
  std::printf("probes %llu (budget %d/tick), probe backlog %llu\n",
              static_cast<unsigned long long>(st.probes),
              cfg.probe.budget_per_tick,
              static_cast<unsigned long long>(broker.scheduler().backlog()));
  std::printf("failover: adjacency AS%d-AS%d, %d sessions crossing before, "
              "%d after, reaction %.3f s (interval %.0f s)\n",
              fail_a, fail_b, crossing_before, crossing_after,
              st.last_failover_reaction.to_seconds(),
              cfg.probe.interval.to_seconds());
  std::printf("goodput regret: %.4f mean per-probe, %.4f aggregate vs oracle\n",
              st.mean_regret(), aggregate_regret);
  std::printf("-- timing: decision wall p50 %.2f us, p99 %.2f us; staleness "
              "p50 %.1f s, p99 %.1f s\n",
              p50_wall_us, p99_wall_us, p50_stale_s, p99_stale_s);

  run.add_extra("decision_wall_p50_us", p50_wall_us);
  run.add_extra("decision_wall_p99_us", p99_wall_us);
  run.add_extra("p99_under_50us", p99_wall_us < 50.0 ? 1.0 : 0.0);

  const bool failover_ok = fail_a >= 0 && crossing_after == 0 &&
                           st.last_failover_reaction <= cfg.probe.interval;
  std::vector<bench::PaperCheck> checks = {
      {"concurrent sessions sustained (target row)", target,
       static_cast<double>(churn_stats.peak_concurrent)},
      {"sessions admitted", 0.0, static_cast<double>(st.sessions_admitted)},
      {"admitted via overlay (NIC-capped)", 0.0,
       static_cast<double>(st.admitted_via_overlay)},
      {"session migrations on ranking change", 0.0,
       static_cast<double>(st.migrations)},
      {"probes issued", 0.0, static_cast<double>(st.probes)},
      // A budget-limited round-robin prober re-probes a pair between
      // `interval` (becomes due) and ~2x interval (waits a full rotation
      // for budget), so 2x interval is the steady-state staleness bound.
      {"decision staleness p99 <= 2x probe interval (1=yes)", 1.0,
       p99_stale_s <= 2.0 * cfg.probe.interval.to_seconds() ? 1.0 : 0.0},
      {"goodput regret mean per-probe", 0.0, st.mean_regret()},
      {"goodput regret aggregate vs oracle", 0.0, aggregate_regret},
      {"failover reaction seconds", cfg.failover_delay.to_seconds(),
       st.last_failover_reaction.to_seconds()},
      {"sessions crossing failed adjacency after repin", 0.0,
       static_cast<double>(crossing_after)},
      {"repinned within one probe interval (1=yes)", 1.0,
       failover_ok ? 1.0 : 0.0},
      {"decision fingerprint (low 32 bits)", -1.0,
       static_cast<double>(st.decision_fingerprint & 0xffffffffu)},
  };
  run.finish(checks);
  return 0;
}
