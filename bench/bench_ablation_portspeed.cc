// Extension (§VII-C): overlay servers with higher network bandwidths. The
// paper deployed 100 Mbps virtual NICs and often saturated them; it left
// 1 Gbps / 10 Gbps ports as future work. We regenerate the controlled
// experiment's overlay measurements under each port speed and report where
// the NIC stops being the binding constraint.

#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  print_header("Ablation: overlay port speed", "100 Mbps vs 1 Gbps vs 10 Gbps VMs");
  std::printf("%10s %22s %14s %24s %22s\n", "port", "median best-split Mbps",
              "p95 Mbps", "fraction NIC-saturated", "median improvement");

  std::vector<PaperCheck> checks;
  double median_100m = 0, median_1g = 0, p95_100m = 0, p95_1g = 0;
  for (double port : {100e6, 1e9, 10e9}) {
    topo::CloudParams cloud;
    cloud.vm_nic_bps = port;
    wkld::World world(world_seed(), topo::TopologyParams{}, cloud);
    const auto exp = wkld::run_controlled_experiment(world, 30);

    analysis::Cdf best, ratio;
    int saturated = 0, n = 0;
    for (const auto& s : exp.samples) {
      if (s.direct_bps <= 0) continue;
      ++n;
      best.add(s.best_split_bps() / 1e6);
      ratio.add(s.best_split_bps() / s.direct_bps);
      saturated += s.best_split_bps() > 0.85 * port;
    }
    std::printf("%9.0fM %22.1f %14.1f %24.2f %22.2f\n", port / 1e6, best.median(),
                best.quantile(0.95), static_cast<double>(saturated) / n,
                ratio.median());
    if (port == 100e6) {
      median_100m = best.median();
      p95_100m = best.quantile(0.95);
    }
    if (port == 1e9) {
      median_1g = best.median();
      p95_1g = best.quantile(0.95);
    }
  }

  // The NIC cap binds only for the cleanest paths: the median barely moves
  // while the tail gains.
  checks.push_back({"1G/100M median gain (~1: middle is the bottleneck)", 1.0,
                    median_1g / median_100m});
  checks.push_back({"1G/100M p95 gain (the NIC-capped tail benefits)", 1.1,
                    p95_1g / p95_100m});
  print_paper_checks(checks);
  std::printf("takeaway: once the NIC cap lifts, the commercial middle and the\n"
              "receiver become the bottleneck — upgrading ports helps the top\n"
              "quartile of paths, not the median (the paper's 'many cases\n"
              "saturate 100 Mbps' applies to its cleanest paths).\n\n");
  return 0;
}
