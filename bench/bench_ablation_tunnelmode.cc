// Ablation (§II): GRE vs IPsec tunnel mode. IPsec adds per-packet overhead
// (ESP header/trailer/ICV) and, per the paper, rules out split-TCP at the
// overlay node because the TCP headers are encrypted. We quantify the
// encapsulation overhead cost and the split-TCP gain that IPsec forgoes.

#include "bench_util.h"
#include "core/measure_packet.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();
  const int client = net.add_client(topo::Region::kEurope, "tm-client");
  const int sender = net.dc_endpoint("wdc");
  const int via = net.dc_endpoint("ams");

  const sim::Time dur = quick_mode() ? sim::Time::seconds(6) : sim::Time::seconds(12);
  const sim::Time at = sim::Time::hours(1);
  core::PacketLab lab(&net);

  const auto direct = lab.run_direct(sender, client, dur, at);
  const auto gre = lab.run_tunnel(sender, client, via, tunnel::TunnelMode::kGre, dur, at);
  const auto esp =
      lab.run_tunnel(sender, client, via, tunnel::TunnelMode::kIpsec, dur, at);
  const auto split = lab.run_split(sender, client, via, dur, at);

  print_header("Ablation: tunnel mode", "GRE vs IPsec vs split-TCP (GRE only)");
  std::printf("%-24s %12s %12s %10s\n", "mode", "goodput", "avg RTT ms", "retx");
  auto row = [](const char* name, const core::PacketRunResult& r) {
    std::printf("%-24s %11.2fM %12.1f %10.5f\n", name, r.goodput_bps / 1e6,
                r.avg_rtt_ms, r.retrans_rate);
  };
  row("direct", direct);
  row("gre tunnel", gre);
  row("ipsec tunnel", esp);
  row("split-tcp (gre only)", split);

  print_paper_checks({
      // Loss/RTT-bound paths hide the wire overhead (identical segment
      // counts); the ~4% ESP tax only shows when capacity-bound.
      {"ipsec/gre goodput (in [0.95, 1.0])", 1.0,
       gre.goodput_bps > 0 ? esp.goodput_bps / gre.goodput_bps : 0.0},
      {"split/gre goodput (what ipsec forgoes, > 1)", 1.5,
       gre.goodput_bps > 0 ? split.goodput_bps / gre.goodput_bps : 0.0},
  });
  return 0;
}
