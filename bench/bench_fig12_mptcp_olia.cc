// Figure 12 (§VI-B): packet-level MPTCP validation with OLIA coupling.
// Nine cloud VMs; every ordered pair is a candidate; the 15 pairs with the
// lowest direct throughput are measured in four configurations: single-path
// TCP on the direct path, the best of the 7 plain tunnel overlays, the best
// of the 7 split overlays, and MPTCP with one subflow per path (1 direct +
// 7 via overlays). All transport here is the real packet-level stack.
//
// Paper: MPTCP (OLIA) reliably achieves ~ the maximum overlay throughput,
// removing the need to identify the best overlay node.
//
// CRONETS_QUICK=1 reduces to 6 paths / shorter transfers.

#include <algorithm>

#include "bench_util.h"
#include "core/measure_packet.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int run_fig(transport::Coupling coupling, const char* figname, double paper_mptcp_vs_best,
            transport::CcFactory subflow_cc_for_title = nullptr) {
  (void)subflow_cc_for_title;
  // Nine DCs: the default seven plus two more (paper: 9 VMs across USA,
  // Europe and Asia).
  topo::CloudParams cloud;
  cloud.dcs.push_back({"fra", {50.1, 8.7}});
  cloud.dcs.push_back({"hkg", {22.3, 114.2}});
  wkld::World world(world_seed(), topo::TopologyParams{}, cloud);
  auto& net = world.internet();

  const auto& dcs = net.dc_endpoints();
  const sim::Time at = sim::Time::hours(1);

  // Rank the 72 ordered pairs by modelled direct throughput; take the worst.
  struct Pair {
    int src, dst;
    double direct_est;
  };
  std::vector<Pair> pairs;
  for (int a : dcs) {
    for (int b : dcs) {
      if (a == b) continue;
      auto m = world.flow().sample(net.path(a, b), at);
      pairs.push_back({a, b, world.flow().tcp_throughput(m)});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.direct_est < y.direct_est; });

  const int num_paths = quick_mode() ? 6 : 15;
  const sim::Time dur = quick_mode() ? sim::Time::seconds(6) : sim::Time::seconds(10);

  print_header(figname, "MPTCP vs direct / best overlay / best split (packet-level)");
  std::printf("%5s %10s %12s %12s %10s %18s\n", "path", "direct", "max overlay",
              "max split", "MPTCP", "MPTCP/max-overlay");

  core::PacketLab lab(&net);
  double ratio_sum = 0;
  int measured = 0;
  for (int i = 0; i < num_paths && i < static_cast<int>(pairs.size()); ++i) {
    const auto& p = pairs[static_cast<std::size_t>(i)];
    std::vector<int> vias;
    for (int dc : dcs) {
      if (dc != p.src && dc != p.dst) vias.push_back(dc);
    }

    const auto direct = lab.run_direct(p.src, p.dst, dur, at);
    double best_tunnel = 0, best_split = 0;
    for (int via : vias) {
      best_tunnel = std::max(
          best_tunnel,
          lab.run_tunnel(p.src, p.dst, via, tunnel::TunnelMode::kGre, dur, at)
              .goodput_bps);
      best_split =
          std::max(best_split, lab.run_split(p.src, p.dst, via, dur, at).goodput_bps);
    }
    const auto mptcp = lab.run_mptcp(p.src, p.dst, vias, coupling, dur, at);

    const double best_any = std::max(best_tunnel, best_split);
    const double ratio = best_any > 0 ? mptcp.goodput_bps / best_any : 0.0;
    ratio_sum += ratio;
    ++measured;
    std::printf("%5d %9.1fM %11.1fM %11.1fM %9.1fM %18.2f\n", i + 1,
                direct.goodput_bps / 1e6, best_tunnel / 1e6, best_split / 1e6,
                mptcp.goodput_bps / 1e6, ratio);
  }

  print_paper_checks({
      {"avg MPTCP / max-overlay throughput", paper_mptcp_vs_best,
       measured ? ratio_sum / measured : 0.0},
  });
  return 0;
}

#ifndef FIG13_CUBIC
int main() { return run_fig(transport::Coupling::kOlia, "Figure 12 (OLIA)", 1.0); }
#endif
