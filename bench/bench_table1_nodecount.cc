// Table I (§IV): deploying k = 1..4 overlay nodes (choosing each path's
// best subset of size k), the mean and median of the average improvement
// factors across the 30 longitudinal paths. Paper:
//   k=1: 8.19 / 7.51    k=2: 8.36 / 7.58
//   k=3: 8.38 / 7.58    k=4: 8.39 / 7.58
// i.e. one or two nodes already capture nearly all of the benefit.

#include "analysis/stats.h"
#include "bench_util.h"
#include "core/selection.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto pipeline = wkld::run_longitudinal_pipeline(world);
  const auto& pairs = pipeline.study.pairs;

  print_header("Table I", "overlay node count vs mean/median improvement factor");
  std::printf("%8s %26s %28s\n", "#nodes", "mean of avg improvement",
              "median of avg improvement");

  const double paper_mean[] = {8.19, 8.36, 8.38, 8.39};
  const double paper_median[] = {7.51, 7.58, 7.58, 7.58};
  std::vector<PaperCheck> checks;
  double k1_mean = 0, k4_mean = 0;

  for (int k = 1; k <= 4; ++k) {
    analysis::Cdf factors;
    for (const auto& p : pairs) {
      const double best_avg = core::best_subset_avg_bps(p.history, k);
      double direct_avg = 0;
      for (double v : p.history.direct) direct_avg += v;
      direct_avg /= static_cast<double>(p.history.direct.size());
      factors.add(best_avg / std::max(1e-9, direct_avg));
    }
    std::printf("%8d %26.2f %28.2f\n", k, factors.mean(), factors.median());
    checks.push_back({"k=" + std::to_string(k) + ": mean of avg improvement",
                      paper_mean[k - 1], factors.mean()});
    checks.push_back({"k=" + std::to_string(k) + ": median of avg improvement",
                      paper_median[k - 1], factors.median()});
    if (k == 1) k1_mean = factors.mean();
    if (k == 4) k4_mean = factors.mean();
  }
  // The paper's takeaway: k=1 already captures ~98% of k=4's benefit.
  checks.push_back({"k=1 benefit as fraction of k=4 (paper ~0.98)", 0.976,
                    k1_mean / std::max(1e-9, k4_mean)});
  print_paper_checks(checks);
  return 0;
}
