// §V-B's C4.5 analysis: train a decision tree on per-tunnel samples with
// features (relative RTT reduction, relative loss reduction) and label
// "throughput improved", then read the thresholds off the best positive
// rule. Paper: decreasing RTT by >= 10.5% and loss by >= 12.1%
// simultaneously gives a high likelihood of throughput improvement.

#include "analysis/c45.h"
#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  analysis::Dataset data;
  data.feature_names = {"rtt_reduction", "loss_reduction"};
  for (const auto& s : exp.samples) {
    for (const auto& o : s.overlays) {
      const double rtt_red = 1.0 - o.rtt_ms / s.direct_rtt_ms;
      const double loss_red =
          s.direct_loss > 0 ? 1.0 - o.loss / s.direct_loss : (o.loss > 0 ? -1.0 : 0.0);
      data.x.push_back({rtt_red, loss_red});
      data.y.push_back(o.split_bps > s.direct_bps ? 1 : 0);
    }
  }

  analysis::C45Tree tree;
  analysis::C45Tree::Options opt;
  opt.min_leaf = 20;
  tree.train(data, opt);

  print_header("C4.5 (Sec. V-B)", "when does an overlay path improve throughput?");
  std::printf("training samples: %zu (tunnel paths), positives: %d\n\n",
              data.y.size(),
              static_cast<int>(std::count(data.y.begin(), data.y.end(), 1)));
  std::printf("learned tree:\n%s\n", tree.dump().c_str());

  const auto rule = tree.best_positive_rule(/*min_support=*/40);
  double rtt_thr = 0.0, loss_thr = 0.0;
  std::printf("best positive rule (support=%d, confidence=%.2f):\n", rule.support,
              rule.confidence);
  for (const auto& c : rule.conditions) {
    std::printf("  %s %s %.4f\n", data.feature_names[static_cast<std::size_t>(c.feature)].c_str(),
                c.greater ? ">" : "<=", c.threshold);
    if (c.greater && c.feature == 0) rtt_thr = std::max(rtt_thr, c.threshold);
    if (c.greater && c.feature == 1) loss_thr = std::max(loss_thr, c.threshold);
  }

  // Validate the paper's concrete rule on our measurements: among tunnels
  // that reduce RTT by >= 10.5% AND loss by >= 12.1%, how many improved?
  int paper_rule_n = 0, paper_rule_improved = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    if (data.x[i][0] >= 0.105 && data.x[i][1] >= 0.121) {
      ++paper_rule_n;
      paper_rule_improved += data.y[i];
    }
  }

  print_paper_checks({
      {"learned RTT-reduction threshold (paper: 10.5%)", 0.105, rtt_thr},
      {"learned loss-reduction threshold (paper: 12.1%)", 0.121, loss_thr},
      {"learned rule confidence ('high likelihood')", 0.9, rule.confidence},
      {"paper's exact rule applied here: P(improved)", 0.9,
       paper_rule_n ? static_cast<double>(paper_rule_improved) / paper_rule_n : 0.0},
  });
  std::printf("note: our synthetic Internet rewards any simultaneous\n"
              "RTT+loss non-worsening, so the learned thresholds sit near 0%%\n"
              "rather than the paper's 10.5%%/12.1%%; the paper's rule itself\n"
              "holds with the probability shown above (n=%d).\n\n",
              paper_rule_n);
  return 0;
}
