// Figure 10 (§V-B): direct paths binned by packet-loss rate ({0},
// (0,0.25%), [0.25%,0.5%), [0.5%,inf)); per bin, the median improvement
// ratio, its MAD and the improved fraction. Paper: >= 86% of paths with
// loss >= 0.25% improve; higher loss bins improve more; the zero-loss bin
// shows a polarity — paths either do not improve at all or improve a lot
// (the latter driven by RTT reduction).

#include "analysis/stats.h"
#include "bench_util.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  const auto exp = wkld::run_controlled_experiment(world);

  // "Zero" loss operationally: below one retransmission per measured
  // transfer (~1e-4 over a 30 s / 10 Mbps run).
  const double kZero = 1e-4;
  std::vector<double> zero_bin, low_bin, mid_bin, high_bin;
  for (const auto& s : exp.samples) {
    const double ratio =
        s.direct_bps > 0 ? s.best_split_bps() / s.direct_bps : 0.0;
    if (s.direct_loss < kZero) {
      zero_bin.push_back(ratio);
    } else if (s.direct_loss < 0.0025) {
      low_bin.push_back(ratio);
    } else if (s.direct_loss < 0.005) {
      mid_bin.push_back(ratio);
    } else {
      high_bin.push_back(ratio);
    }
  }

  print_header("Figure 10", "median improvement ratio by direct-path loss bin");
  std::printf("%16s %8s %12s %8s %12s\n", "loss bin", "paths", "median", "MAD",
              "frac>1");
  auto row = [](const char* label, const std::vector<double>& vals) -> double {
    if (vals.empty()) {
      std::printf("%16s %8d %12s %8s %12s\n", label, 0, "-", "-", "-");
      return 0.0;
    }
    double improved = 0;
    for (double v : vals) improved += v > 1.0;
    const double frac = improved / static_cast<double>(vals.size());
    std::printf("%16s %8zu %12.2f %8.2f %12.2f\n", label, vals.size(),
                analysis::median_of(vals), analysis::median_abs_deviation(vals),
                frac);
    return frac;
  };
  row("[0]", zero_bin);
  row("(0, 0.25%)", low_bin);
  const double frac_mid = row("[0.25%, 0.5%)", mid_bin);
  const double frac_high = row("[0.5%, +)", high_bin);

  // Zero-loss polarity: mass near ratio<=1 plus a clearly-improved tail.
  analysis::Cdf z;
  z.add_all(zero_bin);
  const double not_improved = z.empty() ? 0 : z.fraction_leq(1.0);
  const double big_gain = z.empty() ? 0 : z.fraction_gt(1.5);

  const double n_hi = static_cast<double>(mid_bin.size() + high_bin.size());
  print_paper_checks({
      {"fraction improved | loss >= 0.25%", 0.86,
       n_hi > 0 ? (frac_mid * mid_bin.size() + frac_high * high_bin.size()) / n_hi
                : 0.0},
      {"zero-loss bin: fraction not improved (polarity)", 0.4, not_improved},
      {"zero-loss bin: fraction with ratio > 1.5 (polarity)", 0.3, big_gain},
  });
  return 0;
}
