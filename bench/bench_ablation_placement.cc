// Extension (§VII-A): where should a customer rent overlay nodes? We build
// a traffic matrix (every controlled-experiment client as destination, the
// customer's site as source), measure every candidate DC once, and compare
// placement strategies for k = 1..4 rented nodes:
//   greedy submodular maximization vs exhaustive optimum vs random choice.

#include "bench_util.h"
#include "core/placement.h"
#include "wkld/experiments.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  wkld::World world(world_seed());
  auto& net = world.internet();

  // The customer: a headquarters site fanning out to 24 branch clients.
  const int hq = net.add_server(topo::Region::kNaEast, "placement-hq");
  std::vector<std::pair<int, int>> pairs;
  const topo::Region regions[] = {topo::Region::kEurope, topo::Region::kAsia,
                                  topo::Region::kNaWest, topo::Region::kSouthAmerica};
  for (int i = 0; i < 24; ++i) {
    const int c = net.add_client(regions[i % 4], "plc-" + std::to_string(i));
    pairs.push_back({hq, c});
  }

  core::PlacementOptimizer opt(&net, &world.meter());
  opt.measure(pairs, net.dc_endpoints(), sim::Time::hours(1));

  print_header("Ablation: overlay placement",
               "greedy vs exhaustive vs random DC choice (Sec. VII-A)");
  std::printf("%4s %26s %26s %26s\n", "k", "greedy (avg improvement)",
              "exhaustive optimum", "random baseline");

  std::vector<PaperCheck> checks;
  for (int k = 1; k <= 4; ++k) {
    const auto g = opt.greedy(k);
    const auto e = opt.exhaustive(k);
    const auto r = opt.random_baseline(k, 50, 99);
    std::string names;
    for (int ep : g.chosen) names += net.endpoint(ep).name.substr(3) + " ";
    std::printf("%4d %20.2f (%s) %23.2f %26.2f\n", k, g.avg_improvement,
                names.c_str(), e.avg_improvement, r.avg_improvement);
    if (k == 2) {
      checks.push_back({"greedy/exhaustive value ratio at k=2", 1.0,
                        g.total_bps / e.total_bps});
      checks.push_back({"greedy/random value ratio at k=2 (>1)", 1.2,
                        g.total_bps / r.total_bps});
    }
  }
  // For a single path Table I showed one node suffices; a fan-out traffic
  // matrix needs geographic coverage, so the curve saturates at k~3.
  const auto g3 = opt.greedy(3);
  const auto g4 = opt.greedy(4);
  checks.push_back({"k=3 captures most of k=4 (coverage saturates)", 0.95,
                    g3.total_bps / g4.total_bps});
  print_paper_checks(checks);
  return 0;
}
