// Multi-hop overlay routing plane (src/route/) under a pathological
// topology: a congestion-heavy public Internet (high severe/hot core
// fractions, long fiber detours) where the one-hop overlay already wins
// often, plus a severe mid-run congestion episode on the ams<->wdc
// backbone edge so the plane has to route *around* its own backbone.
// Both policies run — delay-based (EWMA + hysteresis, Jonglez
// arXiv:1403.3488) and backpressure (virtual queue differentials,
// Rai/Singh/Modiano arXiv:1612.05537) — each through three control
// planes: the single Broker, ShardedBroker with 1 shard, and
// ShardedBroker with 8 shards, all on the same seed.
//
// Reported per policy: the k-hop (k>=2 relay VMs) win-rate over the
// one-hop overlay and the direct path, mid-episode detour routes (>= 2
// backbone hops), convergence rounds, route flaps, and the two
// determinism witnesses — the plane's routing-table fingerprint and the
// control plane's per-pair-merged decision fingerprint. Every `checks`
// row is a pure function of the seed: the "(1=yes)" rows assert the
// sharded control planes reproduce the single broker's decisions and
// routing tables bit for bit, that the incremental plane
// (CRONETS_ROUTE_INCREMENTAL=1, the default) reproduces the
// full-recompute reference bit for bit, and the CI legs diff the whole
// text output across CRONETS_THREADS 1/4, CRONETS_SIMD scalar/auto, and
// CRONETS_ROUTE_INCREMENTAL 0/1 (only "-- timing:"/"-- config" rows are
// filtered).
//
// The `--dcs N` axis (default sweep: 32/128, plus 512 in full mode) grows
// a synthetic DC mesh and runs the plane alone — incremental and full
// reference in lockstep on one world, fingerprint-checked every warm and
// perturbed round — reporting steady-state rounds/s for both modes, the
// speedup, edges probed per round, and table-entry deltas per round. The
// ">= 10x" gate at 128 DCs is the headline incrementality win.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/selection.h"
#include "route/plane.h"
#include "service/broker.h"
#include "service/sharded_broker.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

using namespace cronets;

namespace {

// The pathological-topology axis the one-hop paper could not open: long
// AS-level detours and a congestion-ridden core make the public legs bad
// enough that entering the backbone near the client and exiting near the
// server (two relay VMs) beats any single relay.
topo::TopologyParams pathological_topology() {
  topo::TopologyParams tp;
  tp.seed = bench::world_seed();
  tp.core_severe_fraction = 0.10;
  tp.core_hot_fraction = 0.18;
  tp.detour_mu = 0.55;
  tp.detour_sigma = 0.55;
  return tp;
}

// Even the cloud's own fiber takes long detours here: with factors up to
// 3x the great circle, the backbone mesh violates the triangle inequality
// all over, so the delay-shortest DC-to-DC route is often a genuine
// k>=2-hop chain rather than the direct edge.
topo::CloudParams pathological_cloud() {
  topo::CloudParams cp;
  cp.backbone_detour_lo = 1.0;
  cp.backbone_detour_hi = 3.0;
  return cp;
}

struct RunResult {
  std::uint64_t decision_fp = 0;
  std::uint64_t table_fp = 0;
  long measured_pairs = 0;
  long multihop_pairs = 0;  ///< measured pairs whose best is kMultiHop
  long detour_best = 0;     ///< ... whose via chain is > 2 DCs long
  long detour_routes_mid = 0;  ///< plane routes with >= 2 backbone hops mid-episode
  int rounds = 0;
  int flaps = 0;
  int convergence_round = -1;
  long admitted = 0;
  std::uint64_t via_overlay = 0;
};

// One full control-plane run. num_shards == 0 drives the single Broker;
// otherwise a ShardedBroker with that many shards. Everything else —
// world, plane config, workload, congestion episode — is identical, so
// every RunResult field must be bitwise identical across the three runs,
// and across incremental vs full-recompute plane modes.
RunResult run_one(route::Policy policy, int num_shards, bool smoke,
                  bool incremental = true) {
  wkld::World world(bench::world_seed(), pathological_topology(),
                    pathological_cloud());
  auto& net = world.internet();
  const auto clients = world.make_web_clients(smoke ? 16 : 48);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_all_overlays();

  const sim::Time horizon = sim::Time::seconds(smoke ? 60 : 180);

  // Severe congestion on the ams<->wdc backbone edge for the middle half
  // of the run: the transatlantic detour lon sits right next to ams, so a
  // working plane reroutes ams->wdc as ams->lon->wdc (a k=2 backbone
  // detour) while the episode lasts, then flaps back. Events are added
  // before any listener registers, so they are part of the world, not a
  // mid-run mutation — all control planes see the identical timeline.
  const int ams = net.dc_endpoint("ams");
  const int wdc = net.dc_endpoint("wdc");
  int backbone_link = -1;
  for (const auto& tr : net.backbone_path(ams, wdc).traversals) {
    if (net.links()[static_cast<std::size_t>(tr.link_id)].is_backbone) {
      backbone_link = tr.link_id;
      break;
    }
  }
  topo::LinkEvent ev;
  ev.link_id = backbone_link;
  ev.from = horizon / 4;
  ev.until = (horizon / 4) * 3;
  ev.util_boost = 0.9;
  ev.loss_boost = 0.02;
  ev.forward = true;
  net.add_event(ev);
  ev.forward = false;
  net.add_event(ev);

  route::RouteConfig rcfg;
  rcfg.policy = policy;
  rcfg.round_interval = sim::Time::seconds(1);
  rcfg.incremental = incremental;
  route::RoutePlane plane(&net, &world.flow(), world.seed(), rcfg);

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  const std::size_t num_pairs = clients.size() * servers.size();
  cfg.probe.budget_per_tick = static_cast<int>((num_pairs + 9) / 10);
  cfg.failover_delay = sim::Time::seconds(1);
  cfg.ranking.route_plane = &plane;

  std::unique_ptr<service::Broker> single;
  std::unique_ptr<service::ShardedBroker> sharded;
  service::ControlPlane* plane_owner = nullptr;
  if (num_shards == 0) {
    single = std::make_unique<service::Broker>(&net, &world.meter(),
                                               &world.pool(), overlays, cfg);
    plane_owner = single.get();
  } else {
    sharded = std::make_unique<service::ShardedBroker>(
        &net, &world.meter(), &world.pool(), overlays, num_shards, cfg);
    plane_owner = sharded.get();
  }

  wkld::SessionChurnParams churn_params;
  churn_params.seed = bench::world_seed() ^ 0x90f7e5;
  churn_params.target_concurrent = smoke ? 400 : 2000;
  churn_params.mean_duration_s = 30.0;
  churn_params.horizon = horizon;
  wkld::SessionChurn churn(plane_owner, clients, servers, churn_params);
  churn.start();
  if (single) single->warm_up();
  if (sharded) sharded->warm_up();

  // Snapshot the plane's detour count in the middle of the congestion
  // episode (the +1 ms offset orders the snapshot after that second's
  // routing round, deterministically).
  RunResult r;
  plane_owner->queue().schedule(
      horizon / 2 + sim::Time::milliseconds(1), [&] {
        std::vector<int> via;
        const auto& eps = net.dc_endpoints();
        for (int a : eps) {
          for (int b : eps) {
            if (a == b) continue;
            if (plane.route(a, b, &via) && via.size() > 2) {
              ++r.detour_routes_mid;
            }
          }
        }
      });

  plane_owner->run_until(horizon);

  const auto count_pair = [&r](const service::PairState& p) {
    if (p.last_probe.ns() < 0) return;
    ++r.measured_pairs;
    const auto& best = p.candidates[static_cast<std::size_t>(p.best)];
    if (best.kind == core::PathKind::kMultiHop && best.measured &&
        best.score_bps > 0.0) {
      ++r.multihop_pairs;
      if (best.via.size() > 2) ++r.detour_best;
    }
  };
  if (single) {
    const auto& st = single->stats();
    r.admitted = static_cast<long>(st.sessions_admitted);
    r.via_overlay = st.admitted_via_overlay;
    // The per-pair-merged fingerprint (pair_decision_term keyed by pair
    // index == global id), the same construction the sharded control
    // plane aggregates — the single broker is the 1-partition reference.
    r.decision_fp = single->ranker().partial_decision_fingerprint();
    for (std::size_t i = 0; i < single->ranker().size(); ++i) {
      count_pair(single->ranker().pair(static_cast<int>(i)));
    }
  } else {
    const auto st = sharded->stats();
    r.admitted = static_cast<long>(st.sessions_admitted);
    r.via_overlay = st.admitted_via_overlay;
    r.decision_fp = st.decision_fingerprint;
    for (std::size_t g = 0; g < sharded->pair_count(); ++g) {
      count_pair(sharded->pair(static_cast<int>(g)));
    }
  }
  r.table_fp = plane.table_fingerprint();
  r.rounds = plane.rounds();
  r.flaps = plane.flaps();
  r.convergence_round = plane.convergence_round();
  return r;
}

// A synthetic n-DC cloud: deterministic positions (index-keyed lat/lon
// spread, no RNG draws) with the same pathological detour range as the
// broker runs, so the mesh still violates the triangle inequality and
// exchange rounds have real work at every size.
topo::CloudParams synth_cloud(int n) {
  topo::CloudParams cp;
  cp.dcs.clear();
  for (int i = 0; i < n; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "d%03d", i);
    const double lat =
        -60.0 + 120.0 * static_cast<double>((i * 37) % n) / n;
    const double lon = -180.0 + 360.0 * static_cast<double>(i) / n;
    cp.dcs.push_back({name, {lat, lon}});
  }
  cp.backbone_detour_lo = 1.0;
  cp.backbone_detour_hi = 3.0;
  return cp;
}

struct ScaleResult {
  bool equal = true;  ///< inc fingerprint == full fingerprint, every round
  std::uint64_t table_fp = 0;
  double inc_rounds_per_s = 0.0;
  double full_rounds_per_s = 0.0;
  double speedup = 0.0;
  double probed_per_round = 0.0;  ///< quiescent window, incremental plane
  double deltas_per_round = 0.0;
  long mesh_edges = 0;
  int timed_rounds = 0;
};

// The `--dcs` axis: the routing plane alone on an n-DC mesh, incremental
// and full-recompute planes in lockstep on ONE world so both see the
// identical mutation timeline. Fingerprints are compared after every warm
// and perturbed round (and once after the timed quiescent window, where
// per-round hashing would swamp the thing being measured); the timed
// window charges each plane its own wall clock for the same rounds.
ScaleResult run_scale(route::Policy policy, int dcs, bool smoke) {
  wkld::World world(bench::world_seed(), pathological_topology(),
                    synth_cloud(dcs));
  auto& net = world.internet();

  route::RouteConfig base;
  base.policy = policy;
  base.round_interval = sim::Time::seconds(1);
  // A quiescent steady state probes each edge every 128 rounds (cadence
  // E/128 per round after the first sweep drains). Probing is the one
  // cost the two modes share, so the interval — identical in both planes,
  // and therefore fingerprint-neutral — sets the ceiling on the
  // measurable incremental speedup.
  base.probe_interval_rounds = 128;
  route::RouteConfig inc_cfg = base;
  inc_cfg.incremental = true;
  route::RouteConfig full_cfg = base;
  full_cfg.incremental = false;
  route::RoutePlane inc(&net, &world.flow(), world.seed(), inc_cfg);
  route::RoutePlane full(&net, &world.flow(), world.seed(), full_cfg);

  ScaleResult r;
  r.mesh_edges = static_cast<long>(dcs) * (dcs - 1);
  int round = 0;
  const auto step_both = [&](bool check) {
    ++round;
    const sim::Time t = sim::Time::seconds(round);
    inc.step(t);
    full.step(t);
    if (check && inc.table_fingerprint() != full.table_fingerprint()) {
      r.equal = false;
    }
  };

  // Warm: the round-1 full sweep, latch settling, and one probe interval
  // so the due-set has spread into its steady E/interval-per-round
  // cadence — all fingerprint-checked.
  const int warm_rounds = base.probe_interval_rounds + 2;
  for (int k = 0; k < warm_rounds; ++k) step_both(true);

  // Timed quiescent window: the steady-state rounds/s the issue gates.
  const int timed = smoke ? 24 : 48;
  r.timed_rounds = timed;
  const std::uint64_t probed0 = inc.graph().edges_probed_total();
  const std::uint64_t deltas0 = inc.deltas_total();
  double inc_s = 0.0;
  double full_s = 0.0;
  for (int k = 0; k < timed; ++k) {
    ++round;
    const sim::Time t = sim::Time::seconds(round);
    const auto t0 = std::chrono::steady_clock::now();
    inc.step(t);
    const auto t1 = std::chrono::steady_clock::now();
    full.step(t);
    const auto t2 = std::chrono::steady_clock::now();
    inc_s += std::chrono::duration<double>(t1 - t0).count();
    full_s += std::chrono::duration<double>(t2 - t1).count();
  }
  if (inc.table_fingerprint() != full.table_fingerprint()) r.equal = false;
  r.inc_rounds_per_s = inc_s > 0 ? timed / inc_s : 0.0;
  r.full_rounds_per_s = full_s > 0 ? timed / full_s : 0.0;
  r.speedup = inc_s > 0 ? full_s / inc_s : 0.0;
  r.probed_per_round =
      static_cast<double>(inc.graph().edges_probed_total() - probed0) / timed;
  r.deltas_per_round =
      static_cast<double>(inc.deltas_total() - deltas0) / timed;

  // Perturbation: one DC dark for four rounds, then restored — the dirty
  // paths (liveness epoch, full refresh, budget-exempt probes) must stay
  // bitwise equal too.
  const int victim_ep = net.dc_endpoints()[static_cast<std::size_t>(dcs / 2)];
  const int victim_as = net.endpoint(victim_ep).as_id;
  std::vector<std::pair<int, int>> downed;
  for (const auto& adj : net.ases()[static_cast<std::size_t>(victim_as)].adj) {
    if (adj.up) downed.emplace_back(victim_as, adj.nbr_as);
  }
  for (const auto& [a, b] : downed) net.set_adjacency_up(a, b, false);
  for (int k = 0; k < 4; ++k) step_both(true);
  for (const auto& [a, b] : downed) net.set_adjacency_up(a, b, true);
  for (int k = 0; k < 4; ++k) step_both(true);

  r.table_fp = inc.table_fingerprint();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  int only_dcs = 0;  // --dcs N: scale section only, at that one size
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--dcs") == 0 && i + 1 < argc) {
      only_dcs = std::atoi(argv[i + 1]);
    }
  }

  bench::print_header("routing plane",
                      "k-hop overlay routing on a pathological topology");
  bench::BenchRun run("bench_multihop_routing", smoke);
  std::printf("-- config: threads=%d\n", sim::Parallelism{}.resolved());

  std::vector<bench::PaperCheck> checks;
  long admitted_total = 0;
  // The broker runs honor CRONETS_ROUTE_INCREMENTAL (default on), so the
  // CI leg can byte-diff the whole filtered output across =0 and =1; the
  // explicit full-recompute reference below keeps the in-process
  // "incremental == full" gate meaningful in either setting.
  const bool env_incremental = route::RouteConfig::from_env().incremental;
  for (const route::Policy policy :
       {route::Policy::kDelay, route::Policy::kBackpressure}) {
    if (only_dcs > 0) break;  // --dcs: skip the broker section
    const std::string tag = route::policy_name(policy);
    const RunResult broker = run_one(policy, /*num_shards=*/0, smoke,
                                     env_incremental);
    const RunResult s1 = run_one(policy, 1, smoke, env_incremental);
    const RunResult s8 = run_one(policy, 8, smoke, env_incremental);
    const RunResult full = run_one(policy, /*num_shards=*/0, smoke,
                                   /*incremental=*/false);
    admitted_total += broker.admitted;

    const double win_rate =
        broker.measured_pairs > 0
            ? static_cast<double>(broker.multihop_pairs) /
                  static_cast<double>(broker.measured_pairs)
            : 0.0;
    std::printf("== policy %s\n", tag.c_str());
    std::printf("pairs measured %ld, won by multi-hop %ld (win-rate %.3f), "
                "best-route detours %ld\n",
                broker.measured_pairs, broker.multihop_pairs, win_rate,
                broker.detour_best);
    std::printf("plane: %d rounds, %d flaps, converged at round %d, "
                "%ld detour routes mid-episode\n",
                broker.rounds, broker.flaps, broker.convergence_round,
                broker.detour_routes_mid);
    std::printf("admitted %ld sessions (%llu via overlay)\n", broker.admitted,
                static_cast<unsigned long long>(broker.via_overlay));
    std::printf("table fp %016llx | decisions fp %016llx | sharded(1) %s | "
                "sharded(8) %s | full-recompute %s\n",
                static_cast<unsigned long long>(broker.table_fp),
                static_cast<unsigned long long>(broker.decision_fp),
                s1.decision_fp == broker.decision_fp ? "==" : "DIVERGED",
                s8.decision_fp == broker.decision_fp ? "==" : "DIVERGED",
                full.table_fp == broker.table_fp &&
                        full.decision_fp == broker.decision_fp
                    ? "=="
                    : "DIVERGED");

    const bool tables_equal =
        s1.table_fp == broker.table_fp && s8.table_fp == broker.table_fp;
    checks.push_back({tag + ": pairs won by multi-hop (k>=2)", 0.0,
                      static_cast<double>(broker.multihop_pairs)});
    checks.push_back({tag + ": k>=2 win-rate positive (1=yes)", 1.0,
                      broker.multihop_pairs > 0 ? 1.0 : 0.0});
    checks.push_back({tag + ": win-rate vs one-hop", 0.0, win_rate});
    checks.push_back({tag + ": detour routes mid-episode", 0.0,
                      static_cast<double>(broker.detour_routes_mid)});
    checks.push_back({tag + ": plane rounds", 0.0,
                      static_cast<double>(broker.rounds)});
    checks.push_back({tag + ": route flaps", 0.0,
                      static_cast<double>(broker.flaps)});
    checks.push_back({tag + ": convergence round", 0.0,
                      static_cast<double>(broker.convergence_round)});
    checks.push_back({tag + ": routing-table fingerprint (low 32 bits)", -1.0,
                      static_cast<double>(broker.table_fp & 0xffffffffu)});
    checks.push_back({tag + ": decision fingerprint (low 32 bits)", -1.0,
                      static_cast<double>(broker.decision_fp & 0xffffffffu)});
    checks.push_back({tag + ": sharded decisions == broker (1=yes)", 1.0,
                      s1.decision_fp == broker.decision_fp &&
                              s8.decision_fp == broker.decision_fp
                          ? 1.0
                          : 0.0});
    checks.push_back({tag + ": sharded routing table == broker (1=yes)", 1.0,
                      tables_equal ? 1.0 : 0.0});
    checks.push_back({tag + ": incremental plane == full (1=yes)", 1.0,
                      full.table_fp == broker.table_fp &&
                              full.decision_fp == broker.decision_fp
                          ? 1.0
                          : 0.0});
  }

  // --- the `--dcs` scale axis ------------------------------------------
  std::vector<int> sizes;
  if (only_dcs > 0) {
    sizes.push_back(only_dcs);
  } else if (smoke) {
    sizes = {32, 128};
  } else {
    sizes = {32, 128, 512};
  }
  for (const route::Policy policy :
       {route::Policy::kDelay, route::Policy::kBackpressure}) {
    const std::string tag = route::policy_name(policy);
    for (const int dcs : sizes) {
      const ScaleResult sr = run_scale(policy, dcs, smoke);
      const std::string st = tag + " @" + std::to_string(dcs) + " DCs";
      std::printf("== scale %s: %ld mesh edges, %d timed rounds\n", st.c_str(),
                  sr.mesh_edges, sr.timed_rounds);
      std::printf("-- timing: %s inc %.1f rounds/s, full %.1f rounds/s, "
                  "speedup %.1fx\n",
                  st.c_str(), sr.inc_rounds_per_s, sr.full_rounds_per_s,
                  sr.speedup);
      std::printf("quiescent: %.1f edges probed/round (of %ld), "
                  "%.1f table deltas/round | inc==full %s\n",
                  sr.probed_per_round, sr.mesh_edges, sr.deltas_per_round,
                  sr.equal ? "every round" : "DIVERGED");
      run.add_extra(st + ": inc rounds/s", sr.inc_rounds_per_s);
      run.add_extra(st + ": full rounds/s", sr.full_rounds_per_s);
      run.add_extra(st + ": speedup", sr.speedup);
      checks.push_back({st + ": incremental == full every round (1=yes)", 1.0,
                        sr.equal ? 1.0 : 0.0});
      checks.push_back({st + ": edges probed per round (quiescent)", 0.0,
                        sr.probed_per_round});
      checks.push_back({st + ": table deltas per round (quiescent)", 0.0,
                        sr.deltas_per_round});
      checks.push_back(
          {st + ": quiescent probe fraction < 0.2 (1=yes)", 1.0,
           sr.probed_per_round <
                   0.2 * static_cast<double>(sr.mesh_edges)
               ? 1.0
               : 0.0});
      checks.push_back(
          {st + ": routing-table fingerprint (low 32 bits)", -1.0,
           static_cast<double>(sr.table_fp & 0xffffffffu)});
      // The >= 10x gate is the delay policy's: its table is a pure
      // function of the latched metrics, so a quiescent mesh recomputes
      // nothing. Backpressure's virtual queues evolve every round by
      // design (inject/drain dynamics), so its incremental win is bounded
      // to the column-stability fast path — reported, not gated.
      if (dcs == 128 && policy == route::Policy::kDelay) {
        checks.push_back({st + ": steady-state speedup >= 10x (1=yes)", 1.0,
                          sr.speedup >= 10.0 ? 1.0 : 0.0});
      }
    }
  }

  run.set_pairs(admitted_total);
  run.finish(checks);
  return 0;
}
