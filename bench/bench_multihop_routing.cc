// Multi-hop overlay routing plane (src/route/) under a pathological
// topology: a congestion-heavy public Internet (high severe/hot core
// fractions, long fiber detours) where the one-hop overlay already wins
// often, plus a severe mid-run congestion episode on the ams<->wdc
// backbone edge so the plane has to route *around* its own backbone.
// Both policies run — delay-based (EWMA + hysteresis, Jonglez
// arXiv:1403.3488) and backpressure (virtual queue differentials,
// Rai/Singh/Modiano arXiv:1612.05537) — each through three control
// planes: the single Broker, ShardedBroker with 1 shard, and
// ShardedBroker with 8 shards, all on the same seed.
//
// Reported per policy: the k-hop (k>=2 relay VMs) win-rate over the
// one-hop overlay and the direct path, mid-episode detour routes (>= 2
// backbone hops), convergence rounds, route flaps, and the two
// determinism witnesses — the plane's routing-table fingerprint and the
// control plane's per-pair-merged decision fingerprint. Every `checks`
// row is a pure function of the seed: the "(1=yes)" rows assert the
// sharded control planes reproduce the single broker's decisions and
// routing tables bit for bit, and the CI legs diff the whole text output
// across CRONETS_THREADS 1/4 and CRONETS_SIMD scalar/auto (only
// "-- timing:"/"-- config" rows are filtered).

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/selection.h"
#include "route/plane.h"
#include "service/broker.h"
#include "service/sharded_broker.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

using namespace cronets;

namespace {

// The pathological-topology axis the one-hop paper could not open: long
// AS-level detours and a congestion-ridden core make the public legs bad
// enough that entering the backbone near the client and exiting near the
// server (two relay VMs) beats any single relay.
topo::TopologyParams pathological_topology() {
  topo::TopologyParams tp;
  tp.seed = bench::world_seed();
  tp.core_severe_fraction = 0.10;
  tp.core_hot_fraction = 0.18;
  tp.detour_mu = 0.55;
  tp.detour_sigma = 0.55;
  return tp;
}

// Even the cloud's own fiber takes long detours here: with factors up to
// 3x the great circle, the backbone mesh violates the triangle inequality
// all over, so the delay-shortest DC-to-DC route is often a genuine
// k>=2-hop chain rather than the direct edge.
topo::CloudParams pathological_cloud() {
  topo::CloudParams cp;
  cp.backbone_detour_lo = 1.0;
  cp.backbone_detour_hi = 3.0;
  return cp;
}

struct RunResult {
  std::uint64_t decision_fp = 0;
  std::uint64_t table_fp = 0;
  long measured_pairs = 0;
  long multihop_pairs = 0;  ///< measured pairs whose best is kMultiHop
  long detour_best = 0;     ///< ... whose via chain is > 2 DCs long
  long detour_routes_mid = 0;  ///< plane routes with >= 2 backbone hops mid-episode
  int rounds = 0;
  int flaps = 0;
  int convergence_round = -1;
  long admitted = 0;
  std::uint64_t via_overlay = 0;
};

// One full control-plane run. num_shards == 0 drives the single Broker;
// otherwise a ShardedBroker with that many shards. Everything else —
// world, plane config, workload, congestion episode — is identical, so
// every RunResult field must be bitwise identical across the three runs.
RunResult run_one(route::Policy policy, int num_shards, bool smoke) {
  wkld::World world(bench::world_seed(), pathological_topology(),
                    pathological_cloud());
  auto& net = world.internet();
  const auto clients = world.make_web_clients(smoke ? 16 : 48);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_all_overlays();

  const sim::Time horizon = sim::Time::seconds(smoke ? 60 : 180);

  // Severe congestion on the ams<->wdc backbone edge for the middle half
  // of the run: the transatlantic detour lon sits right next to ams, so a
  // working plane reroutes ams->wdc as ams->lon->wdc (a k=2 backbone
  // detour) while the episode lasts, then flaps back. Events are added
  // before any listener registers, so they are part of the world, not a
  // mid-run mutation — all control planes see the identical timeline.
  const int ams = net.dc_endpoint("ams");
  const int wdc = net.dc_endpoint("wdc");
  int backbone_link = -1;
  for (const auto& tr : net.backbone_path(ams, wdc).traversals) {
    if (net.links()[static_cast<std::size_t>(tr.link_id)].is_backbone) {
      backbone_link = tr.link_id;
      break;
    }
  }
  topo::LinkEvent ev;
  ev.link_id = backbone_link;
  ev.from = horizon / 4;
  ev.until = (horizon / 4) * 3;
  ev.util_boost = 0.9;
  ev.loss_boost = 0.02;
  ev.forward = true;
  net.add_event(ev);
  ev.forward = false;
  net.add_event(ev);

  route::RouteConfig rcfg;
  rcfg.policy = policy;
  rcfg.round_interval = sim::Time::seconds(1);
  route::RoutePlane plane(&net, &world.flow(), world.seed(), rcfg);

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  const std::size_t num_pairs = clients.size() * servers.size();
  cfg.probe.budget_per_tick = static_cast<int>((num_pairs + 9) / 10);
  cfg.failover_delay = sim::Time::seconds(1);
  cfg.ranking.route_plane = &plane;

  std::unique_ptr<service::Broker> single;
  std::unique_ptr<service::ShardedBroker> sharded;
  service::ControlPlane* plane_owner = nullptr;
  if (num_shards == 0) {
    single = std::make_unique<service::Broker>(&net, &world.meter(),
                                               &world.pool(), overlays, cfg);
    plane_owner = single.get();
  } else {
    sharded = std::make_unique<service::ShardedBroker>(
        &net, &world.meter(), &world.pool(), overlays, num_shards, cfg);
    plane_owner = sharded.get();
  }

  wkld::SessionChurnParams churn_params;
  churn_params.seed = bench::world_seed() ^ 0x90f7e5;
  churn_params.target_concurrent = smoke ? 400 : 2000;
  churn_params.mean_duration_s = 30.0;
  churn_params.horizon = horizon;
  wkld::SessionChurn churn(plane_owner, clients, servers, churn_params);
  churn.start();
  if (single) single->warm_up();
  if (sharded) sharded->warm_up();

  // Snapshot the plane's detour count in the middle of the congestion
  // episode (the +1 ms offset orders the snapshot after that second's
  // routing round, deterministically).
  RunResult r;
  plane_owner->queue().schedule(
      horizon / 2 + sim::Time::milliseconds(1), [&] {
        std::vector<int> via;
        const auto& eps = net.dc_endpoints();
        for (int a : eps) {
          for (int b : eps) {
            if (a == b) continue;
            if (plane.route(a, b, &via) && via.size() > 2) {
              ++r.detour_routes_mid;
            }
          }
        }
      });

  plane_owner->run_until(horizon);

  const auto count_pair = [&r](const service::PairState& p) {
    if (p.last_probe.ns() < 0) return;
    ++r.measured_pairs;
    const auto& best = p.candidates[static_cast<std::size_t>(p.best)];
    if (best.kind == core::PathKind::kMultiHop && best.measured &&
        best.score_bps > 0.0) {
      ++r.multihop_pairs;
      if (best.via.size() > 2) ++r.detour_best;
    }
  };
  if (single) {
    const auto& st = single->stats();
    r.admitted = static_cast<long>(st.sessions_admitted);
    r.via_overlay = st.admitted_via_overlay;
    // The per-pair-merged fingerprint (pair_decision_term keyed by pair
    // index == global id), the same construction the sharded control
    // plane aggregates — the single broker is the 1-partition reference.
    r.decision_fp = single->ranker().partial_decision_fingerprint();
    for (std::size_t i = 0; i < single->ranker().size(); ++i) {
      count_pair(single->ranker().pair(static_cast<int>(i)));
    }
  } else {
    const auto st = sharded->stats();
    r.admitted = static_cast<long>(st.sessions_admitted);
    r.via_overlay = st.admitted_via_overlay;
    r.decision_fp = st.decision_fingerprint;
    for (std::size_t g = 0; g < sharded->pair_count(); ++g) {
      count_pair(sharded->pair(static_cast<int>(g)));
    }
  }
  r.table_fp = plane.table_fingerprint();
  r.rounds = plane.rounds();
  r.flaps = plane.flaps();
  r.convergence_round = plane.convergence_round();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header("routing plane",
                      "k-hop overlay routing on a pathological topology");
  bench::BenchRun run("bench_multihop_routing", smoke);
  std::printf("-- config: threads=%d\n", sim::Parallelism{}.resolved());

  std::vector<bench::PaperCheck> checks;
  long admitted_total = 0;
  for (const route::Policy policy :
       {route::Policy::kDelay, route::Policy::kBackpressure}) {
    const std::string tag = route::policy_name(policy);
    const RunResult broker = run_one(policy, /*num_shards=*/0, smoke);
    const RunResult s1 = run_one(policy, 1, smoke);
    const RunResult s8 = run_one(policy, 8, smoke);
    admitted_total += broker.admitted;

    const double win_rate =
        broker.measured_pairs > 0
            ? static_cast<double>(broker.multihop_pairs) /
                  static_cast<double>(broker.measured_pairs)
            : 0.0;
    std::printf("== policy %s\n", tag.c_str());
    std::printf("pairs measured %ld, won by multi-hop %ld (win-rate %.3f), "
                "best-route detours %ld\n",
                broker.measured_pairs, broker.multihop_pairs, win_rate,
                broker.detour_best);
    std::printf("plane: %d rounds, %d flaps, converged at round %d, "
                "%ld detour routes mid-episode\n",
                broker.rounds, broker.flaps, broker.convergence_round,
                broker.detour_routes_mid);
    std::printf("admitted %ld sessions (%llu via overlay)\n", broker.admitted,
                static_cast<unsigned long long>(broker.via_overlay));
    std::printf("table fp %016llx | decisions fp %016llx | sharded(1) %s | "
                "sharded(8) %s\n",
                static_cast<unsigned long long>(broker.table_fp),
                static_cast<unsigned long long>(broker.decision_fp),
                s1.decision_fp == broker.decision_fp ? "==" : "DIVERGED",
                s8.decision_fp == broker.decision_fp ? "==" : "DIVERGED");

    const bool tables_equal =
        s1.table_fp == broker.table_fp && s8.table_fp == broker.table_fp;
    checks.push_back({tag + ": pairs won by multi-hop (k>=2)", 0.0,
                      static_cast<double>(broker.multihop_pairs)});
    checks.push_back({tag + ": k>=2 win-rate positive (1=yes)", 1.0,
                      broker.multihop_pairs > 0 ? 1.0 : 0.0});
    checks.push_back({tag + ": win-rate vs one-hop", 0.0, win_rate});
    checks.push_back({tag + ": detour routes mid-episode", 0.0,
                      static_cast<double>(broker.detour_routes_mid)});
    checks.push_back({tag + ": plane rounds", 0.0,
                      static_cast<double>(broker.rounds)});
    checks.push_back({tag + ": route flaps", 0.0,
                      static_cast<double>(broker.flaps)});
    checks.push_back({tag + ": convergence round", 0.0,
                      static_cast<double>(broker.convergence_round)});
    checks.push_back({tag + ": routing-table fingerprint (low 32 bits)", -1.0,
                      static_cast<double>(broker.table_fp & 0xffffffffu)});
    checks.push_back({tag + ": decision fingerprint (low 32 bits)", -1.0,
                      static_cast<double>(broker.decision_fp & 0xffffffffu)});
    checks.push_back({tag + ": sharded decisions == broker (1=yes)", 1.0,
                      s1.decision_fp == broker.decision_fp &&
                              s8.decision_fp == broker.decision_fp
                          ? 1.0
                          : 0.0});
    checks.push_back({tag + ": sharded routing table == broker (1=yes)", 1.0,
                      tables_equal ? 1.0 : 0.0});
  }

  run.set_pairs(admitted_total);
  run.finish(checks);
  return 0;
}
