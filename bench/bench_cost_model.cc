// §I / §VII-D: cost comparison between a CRONets deployment (rented cloud
// VMs relaying traffic) and private leased lines of comparable capacity.
// Paper: the overlay costs about a tenth of a comparable private line, and
// the intro cites up to a hundredth for long-haul MPLS.

#include "bench_util.h"
#include "core/cost.h"

using namespace cronets;
using namespace cronets::bench;

int main() {
  core::CloudPricing cloud;
  core::LeasedLinePricing line;

  print_header("Cost model (Sec. VII-D)", "CRONets vs private leased lines");
  std::printf("%-44s %12s\n", "configuration", "USD/month");

  std::vector<PaperCheck> checks;
  const double volumes_gb[] = {1000, 5000, 10000, 20000};
  for (double gb : volumes_gb) {
    const auto c = core::cronets_monthly_cost(cloud, 2, gb, 100);
    std::printf("%-44s %12.0f\n", c.description.c_str(), c.monthly_usd);
  }
  const auto c1g = core::cronets_monthly_cost(cloud, 2, 20000, 1000);
  std::printf("%-44s %12.0f\n", c1g.description.c_str(), c1g.monthly_usd);
  const auto cbare = core::cronets_monthly_cost(cloud, 2, 20000, 100, true);
  std::printf("%-44s %12.0f\n", cbare.description.c_str(), cbare.monthly_usd);

  std::printf("\n");
  const auto dom = core::leased_line_monthly_cost(line, 100, false);
  const auto intl = core::leased_line_monthly_cost(line, 100, true);
  std::printf("%-44s %12.0f\n", dom.description.c_str(), dom.monthly_usd);
  std::printf("%-44s %12.0f\n", intl.description.c_str(), intl.monthly_usd);

  const auto typical = core::cronets_monthly_cost(cloud, 2, 5000, 100);
  checks.push_back({"domestic leased line / CRONets cost ratio", 10.0,
                    dom.monthly_usd / typical.monthly_usd});
  checks.push_back({"intercontinental line / CRONets cost ratio", 25.0,
                    intl.monthly_usd / typical.monthly_usd});
  print_paper_checks(checks);
  return 0;
}
