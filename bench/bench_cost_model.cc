// §I / §VII-D: cost comparison between a CRONets deployment (rented cloud
// VMs relaying traffic) and private leased lines of comparable capacity.
// Paper: the overlay costs about a tenth of a comparable private line, and
// the intro cites up to a hundredth for long-haul MPLS.
//
// The offline monthly grid and the online economics plane share one price
// source: the econ::PricingBook wraps the same core::CloudPricing numbers
// the broker meters sessions against, so the $/GB rates reported here are
// exactly what bench_cost_pareto's billing ledger accrues. All rows are
// pure functions of the (default) book — no seed, no threads — so the
// whole JSON doubles as a pricing regression fingerprint.

#include <cstring>

#include "bench_util.h"
#include "core/cost.h"
#include "econ/pricing_book.h"
#include "sim/hash_rng.h"

using namespace cronets;
using namespace cronets::bench;

int main(int argc, char** argv) {
  bool smoke = quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const econ::PricingBook book;  // §VII-D Softlayer defaults
  const core::CloudPricing& cloud = book.cloud;
  core::LeasedLinePricing line;

  print_header("Cost model (Sec. VII-D)", "CRONets vs private leased lines");
  BenchRun run("bench_cost_model", smoke);
  std::printf("%-44s %12s\n", "configuration", "USD/month");

  std::vector<PaperCheck> checks;
  const double volumes_gb[] = {1000, 5000, 10000, 20000};
  for (double gb : volumes_gb) {
    const auto c = core::cronets_monthly_cost(cloud, 2, gb, 100);
    std::printf("%-44s %12.0f\n", c.description.c_str(), c.monthly_usd);
  }
  const auto c1g = core::cronets_monthly_cost(cloud, 2, 20000, 1000);
  std::printf("%-44s %12.0f\n", c1g.description.c_str(), c1g.monthly_usd);
  const auto cbare = core::cronets_monthly_cost(cloud, 2, 20000, 100, true);
  std::printf("%-44s %12.0f\n", cbare.description.c_str(), cbare.monthly_usd);

  std::printf("\n");
  const auto dom = core::leased_line_monthly_cost(line, 100, false);
  const auto intl = core::leased_line_monthly_cost(line, 100, true);
  std::printf("%-44s %12.0f\n", dom.description.c_str(), dom.monthly_usd);
  std::printf("%-44s %12.0f\n", intl.description.c_str(), intl.monthly_usd);

  // The online plane's per-GB and per-hour rates, derived from the same
  // book (what bench_cost_pareto's metered ledger charges per unit).
  using topo::Region;
  const double same = econ::egress_usd_per_gb(book, Region::kNaEast,
                                              Region::kNaEast, false);
  const double continental = econ::egress_usd_per_gb(book, Region::kNaEast,
                                                     Region::kNaWest, false);
  const double intercont = econ::egress_usd_per_gb(book, Region::kNaEast,
                                                   Region::kEurope, false);
  const double remote = econ::egress_usd_per_gb(book, Region::kEurope,
                                                Region::kAustralia, false);
  const double backbone = econ::egress_usd_per_gb(book, Region::kNaEast,
                                                  Region::kEurope, true);
  std::printf("\nonline egress rates ($/GB): same-region %.4f, "
              "same-continent %.4f, intercontinental %.4f, remote %.4f, "
              "backbone intercontinental %.4f\n",
              same, continental, intercont, remote, backbone);
  std::printf("VM amortization: %.4f $/h at 100 Mbps, %.4f $/h at 1 Gbps, "
              "%.4f $/h bare-metal\n",
              econ::vm_hour_usd(book, 100), econ::vm_hour_usd(book, 1000),
              econ::vm_hour_usd(book, 100, true));

  const auto typical = core::cronets_monthly_cost(cloud, 2, 5000, 100);
  checks.push_back({"domestic leased line / CRONets cost ratio", 10.0,
                    dom.monthly_usd / typical.monthly_usd});
  checks.push_back({"intercontinental line / CRONets cost ratio", 25.0,
                    intl.monthly_usd / typical.monthly_usd});
  checks.push_back({"egress $/GB same-region", 0.0, same});
  checks.push_back({"egress $/GB intercontinental", 0.0, intercont});
  checks.push_back({"egress $/GB remote-region", 0.0, remote});
  checks.push_back({"egress $/GB backbone intercontinental", 0.0, backbone});
  checks.push_back({"VM $/hour at 100 Mbps port", 0.0,
                    econ::vm_hour_usd(book, 100)});
  checks.push_back({"backbone cheaper than transit (1=yes)", 1.0,
                    backbone < intercont ? 1.0 : 0.0});
  // A deterministic pricing fingerprint over the reported rates: any change
  // to the book's numbers shows up as drift in this row.
  const double rates[] = {same,     continental,
                          intercont, remote,
                          backbone, econ::vm_hour_usd(book, 100)};
  std::uint64_t fp = 0x9e3779b97f4a7c15ull;
  for (const double r : rates) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &r, sizeof(bits));
    fp = sim::hash_combine(fp, bits);
  }
  checks.push_back({"pricing fingerprint (low 32 bits)", -1.0,
                    static_cast<double>(fp & 0xffffffffu)});

  run.set_pairs(static_cast<long>(sizeof(volumes_gb) / sizeof(double)) + 4);
  run.finish(checks);
  return 0;
}
