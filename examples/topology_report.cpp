// Topology report: summarize the generated Internet (AS tiers, regions,
// link-condition classes, cloud peering) and optionally emit the AS graph
// as Graphviz dot for visualization.
//
//   ./topology_report [seed]          # human-readable summary
//   ./topology_report [seed] --dot    # dot graph on stdout
//
//   ./topology_report 42 --dot | dot -Tsvg > world.svg

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "wkld/world.h"

using namespace cronets;

static const char* tier_name(topo::Tier t) {
  switch (t) {
    case topo::Tier::kTier1: return "tier1";
    case topo::Tier::kTier2: return "tier2";
    case topo::Tier::kStub: return "stub";
    case topo::Tier::kCloudDc: return "cloud-dc";
  }
  return "?";
}

static void emit_dot(const topo::Internet& net) {
  std::printf("graph cronets_world {\n  overlap=false;\n  splines=true;\n");
  for (const auto& as : net.ases()) {
    const char* color = "gray70";
    const char* shape = "ellipse";
    switch (as.tier) {
      case topo::Tier::kTier1: color = "tomato"; shape = "doublecircle"; break;
      case topo::Tier::kTier2: color = "orange"; break;
      case topo::Tier::kStub: color = "lightblue"; break;
      case topo::Tier::kCloudDc: color = "palegreen"; shape = "box"; break;
    }
    std::printf("  as%d [label=\"%s\", style=filled, fillcolor=%s, shape=%s];\n",
                as.id, as.name.c_str(), color, shape);
  }
  for (const auto& as : net.ases()) {
    for (const auto& adj : as.adj) {
      if (adj.nbr_as < as.id) continue;  // each edge once
      const char* style =
          adj.rel == topo::Rel::kPeerWith ? "dashed" : "solid";
      std::printf("  as%d -- as%d [style=%s];\n", as.id, adj.nbr_as, style);
    }
  }
  std::printf("}\n");
}

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const bool dot = argc > 2 && std::strcmp(argv[2], "--dot") == 0;
  wkld::World world(seed);
  auto& net = world.internet();

  if (dot) {
    emit_dot(net);
    return 0;
  }

  std::printf("CRONets world (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  // --- AS census ---------------------------------------------------------
  std::map<topo::Tier, int> by_tier;
  std::map<topo::Region, int> by_region;
  for (const auto& as : net.ases()) {
    ++by_tier[as.tier];
    ++by_region[as.region];
  }
  std::printf("autonomous systems: %zu   routers: %zu   links: %zu\n",
              net.ases().size(), net.routers().size(), net.links().size());
  for (auto [tier, n] : by_tier) std::printf("  %-9s %4d\n", tier_name(tier), n);
  std::printf("by region:\n");
  for (auto [region, n] : by_region) {
    std::printf("  %-14s %4d\n", topo::region_name(region), n);
  }

  // --- Link-condition census ----------------------------------------------
  int hot = 0, warm = 0, cool = 0, core_n = 0;
  for (const auto& l : net.links()) {
    if (!l.is_core) continue;
    ++core_n;
    const double u = l.bg_fwd.mean_util;
    if (u >= 0.72) ++hot;
    else if (u >= 0.5) ++warm;
    else ++cool;
  }
  std::printf("\ncore links: %d  (hot>=0.72: %d, warm: %d, cool: %d)\n", core_n,
              hot, warm, cool);

  // --- Cloud provider ------------------------------------------------------
  std::printf("\ncloud data centers:\n");
  for (std::size_t i = 0; i < net.cloud().dcs.size(); ++i) {
    const auto& dc = net.cloud().dcs[i];
    const int ep = net.dc_endpoints()[i];
    const auto& as = net.ases()[net.endpoint(ep).as_id];
    int transit = 0, peering = 0;
    for (const auto& adj : as.adj) {
      (adj.rel == topo::Rel::kCustomerOf ? transit : peering) += 1;
    }
    std::printf("  %-4s (%.1f, %.1f)  transit x%d, peering x%d\n",
                dc.name.c_str(), dc.pos.lat, dc.pos.lon, transit, peering);
  }

  // --- A sample path -------------------------------------------------------
  const int a = net.add_client(topo::Region::kEurope, "probe-a");
  const int b = net.add_client(topo::Region::kAsia, "probe-b");
  const auto path = net.path(a, b);
  std::printf("\nsample policy path (probe-a -> probe-b, %.0f ms base RTT):\n  ",
              net.base_rtt_ms(path));
  for (int as : path.as_seq) std::printf("%s ", net.ases()[as].name.c_str());
  std::printf("\n");
  return 0;
}
