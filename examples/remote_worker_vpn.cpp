// Remote-worker VPN (the paper's second motivating scenario): a remote
// user keeps an MPTCP session to headquarters with one subflow on the
// direct path and one per overlay node. Mid-session, a transit link on the
// default path fails outright — possibly taking an overlay leg that shared
// the same ISP down with it. The session must keep delivering: stranded
// in-flight data is reinjected on the surviving subflows, transparently to
// the application.
//
// This example drives the packet-level stack directly (no PacketLab) to
// show the lower-level API: materializer, tunnels, MPTCP endpoints.

#include <cstdio>
#include <set>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/materialize.h"
#include "transport/mptcp.h"
#include "tunnel/tunnel.h"
#include "wkld/world.h"

using namespace cronets;

int main() {
  wkld::World world(19);
  auto& net = world.internet();

  const int worker = net.add_client(topo::Region::kEurope, "remote-worker");
  const int hq = net.add_client(topo::Region::kNaEast, "hq-gateway");
  const std::vector<int> vias = {net.dc_endpoint("ams"), net.dc_endpoint("wdc"),
                                 net.dc_endpoint("lon")};

  // Materialize the slice of the Internet this session touches.
  sim::Simulator simv;
  net::Network packet_net(&simv, sim::Rng{3});
  topo::Materializer mat(&net, &packet_net);
  mat.add_pair(worker, hq);
  for (int via : vias) {
    mat.add_pair(worker, via);
    mat.add_pair(via, hq);
  }
  // One alias address of HQ per overlay path (MPTCP ADD_ADDR steering).
  std::vector<net::IpAddr> remote_addrs = {mat.host(hq)->addr()};
  for (std::size_t i = 0; i < vias.size(); ++i) {
    const net::IpAddr alias{0x0b000000u + static_cast<std::uint32_t>(i) + 1};
    mat.add_alias_path(alias, vias[static_cast<std::size_t>(i)], hq);
    remote_addrs.push_back(alias);
  }

  // Tunnel client on the worker's laptop; overlay datapaths on the VMs.
  tunnel::TunnelClient tc(mat.host(worker));
  std::vector<std::unique_ptr<tunnel::OverlayDatapath>> datapaths;
  for (std::size_t i = 0; i < vias.size(); ++i) {
    tc.add_tunnel_route(remote_addrs[i + 1], mat.host(vias[i])->addr(),
                        tunnel::TunnelMode::kIpsec);  // VPN => IPsec
    datapaths.push_back(std::make_unique<tunnel::OverlayDatapath>(mat.host(vias[i])));
  }

  // VPN session: worker streams to HQ over MPTCP (OLIA).
  transport::TcpConfig cfg;
  cfg.max_consecutive_rtos = 3;  // fast failure detection for the VPN
  cfg.rto_initial = sim::Time::milliseconds(300);
  transport::MptcpListener hq_endpoint(mat.host(hq), 4500, cfg);
  transport::MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = transport::Coupling::kOlia;
  transport::MptcpConnection session(mat.host(worker), 20000, remote_addrs, 4500,
                                     mcfg);
  session.set_infinite_source(true);
  session.connect();

  // Fail the direct path at t=10s: kill a transit link that no overlay leg
  // shares, so only the direct subflow dies (the interesting failover case).
  const topo::RouterPath direct = net.path(worker, hq);
  std::set<int> overlay_links;
  for (int via : vias) {
    // Forward data legs and the reverse (ACK) legs — routing is asymmetric.
    for (int a : {worker, hq}) {
      for (const auto& t : net.path(a, via).traversals) overlay_links.insert(t.link_id);
      for (const auto& t : net.path(via, a).traversals) overlay_links.insert(t.link_id);
    }
  }
  int victim_link = direct.traversals[direct.traversals.size() / 2].link_id;
  for (const auto& t : direct.traversals) {
    if (!overlay_links.count(t.link_id)) {
      victim_link = t.link_id;  // keep the last disjoint one (mid-path-ish)
    }
  }
  simv.schedule_at(sim::Time::seconds(10), [&, victim_link] {
    mat.link(victim_link, true)->set_down(true);
    mat.link(victim_link, false)->set_down(true);
    std::printf("t=10s   !! direct path transit link failed\n");
  });

  std::printf("remote worker VPN over MPTCP: 1 direct + %zu overlay subflows\n\n",
              vias.size());
  std::uint64_t last = 0;
  for (int t = 2; t <= 30; t += 2) {
    simv.run_until(sim::Time::seconds(t));
    const std::uint64_t now_bytes = hq_endpoint.bytes_delivered();
    std::printf("t=%02ds   delivered %7.1f MB  (+%5.1f Mbps)   subflows alive: %zu\n",
                t, now_bytes / 1e6, (now_bytes - last) * 8.0 / 2e6,
                session.alive_subflows());
    last = now_bytes;
  }

  std::printf("\n=> the session survived the path failure: %zu of %zu subflows "
              "remain, stream delivered contiguously throughout.\n",
              session.alive_subflows(), vias.size() + 1);
  return session.alive_subflows() > 0 ? 0 : 1;
}
