// Quickstart: build a synthetic Internet, rent three overlay nodes from the
// cloud provider, and check — first with the analytic flow model, then with
// the packet-level stack — whether bouncing through the cloud beats the BGP
// default path for one endpoint pair.
//
//   ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/measure_packet.h"
#include "wkld/world.h"

using namespace cronets;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::printf("CRONets quickstart (seed %llu)\n", static_cast<unsigned long long>(seed));

  // 1. One shared world: AS-level Internet + cloud provider + flow model.
  wkld::World world(seed);
  auto& net = world.internet();

  // 2. Our two endpoints: a branch office in Asia, a server in Europe.
  const int office = net.add_client(topo::Region::kAsia, "branch-office");
  const int server = net.add_server(topo::Region::kEurope, "app-server");

  // 3. Rent three overlay nodes (GRE tunnel + NAT each).
  auto& overlay = world.overlay();
  overlay.rent("tok");
  overlay.rent("ams");
  overlay.rent("wdc");

  // 4. Ask the measurement instrument how every path looks right now.
  const auto sample = world.meter().measure(server, office, overlay.endpoints(),
                                            sim::Time::hours(1));
  std::printf("\nmodel estimates (server -> office):\n");
  std::printf("  direct     : %7.2f Mbps  (rtt %.0f ms, loss %.4f%%)\n",
              sample.direct_bps / 1e6, sample.direct_rtt_ms,
              sample.direct_loss * 100);
  for (const auto& o : sample.overlays) {
    std::printf("  via %-7s: %7.2f Mbps plain, %7.2f Mbps split  (rtt %.0f ms)\n",
                net.endpoint(o.overlay_ep).name.c_str(), o.plain_bps / 1e6,
                o.split_bps / 1e6, o.rtt_ms);
  }

  // 5. Verify the winner with real packet-level TCP.
  const int best = sample.best_split_overlay_ep();
  core::PacketLab lab(&net);
  const auto direct = lab.run_direct(server, office, sim::Time::seconds(10),
                                     sim::Time::hours(1));
  const auto split = lab.run_split(server, office, best, sim::Time::seconds(10),
                                   sim::Time::hours(1));
  std::printf("\npacket-level check:\n");
  std::printf("  direct      : %7.2f Mbps (avg rtt %.0f ms, retx %.4f%%)\n",
              direct.goodput_bps / 1e6, direct.avg_rtt_ms,
              direct.retrans_rate * 100);
  std::printf("  split via %s: %7.2f Mbps\n",
              net.endpoint(best).name.c_str(), split.goodput_bps / 1e6);
  std::printf("\n=> overlay %s by %.2fx\n",
              split.goodput_bps > direct.goodput_bps ? "wins" : "loses",
              split.goodput_bps / std::max(1.0, direct.goodput_bps));
  return 0;
}
