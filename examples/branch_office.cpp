// Branch-office connectivity (the paper's first motivating scenario): an
// enterprise with offices in New York and Singapore compares its options:
//   1. plain Internet (the BGP default path),
//   2. CRONets: split-TCP through the best of three rented overlay nodes,
//   3. CRONets: MPTCP across the direct path + all overlay paths,
//   4. a private leased line (for the cost column only).
// All throughputs are measured with the packet-level stack.

#include <algorithm>
#include <cstdio>

#include "core/cost.h"
#include "core/measure_packet.h"
#include "wkld/world.h"

using namespace cronets;

int main() {
  wkld::World world(11);
  auto& net = world.internet();

  const int ny = net.add_client(topo::Region::kNaEast, "office-ny");
  const int sg = net.add_client(topo::Region::kAustralia, "office-sg");

  auto& overlay = world.overlay();
  const std::vector<int> vias = {overlay.rent("wdc").endpoint,
                                 overlay.rent("sjc").endpoint,
                                 overlay.rent("sng").endpoint};

  const sim::Time dur = sim::Time::seconds(10);
  const sim::Time at = sim::Time::hours(2);
  core::PacketLab lab(&net);

  std::printf("branch office NY <-> SG: measuring options...\n\n");
  const auto direct = lab.run_direct(ny, sg, dur, at);

  double best_split = 0;
  int best_via = vias[0];
  for (int via : vias) {
    const auto r = lab.run_split(ny, sg, via, dur, at);
    std::printf("  split via %-4s: %6.2f Mbps\n", net.endpoint(via).name.c_str(),
                r.goodput_bps / 1e6);
    if (r.goodput_bps > best_split) {
      best_split = r.goodput_bps;
      best_via = via;
    }
  }
  const auto mptcp =
      lab.run_mptcp(ny, sg, vias, transport::Coupling::kUncoupledCubic, dur, at);

  // Costs: 2 VMs relaying ~5 TB/month vs a 100 Mbps intercontinental line.
  const auto cloud_cost = core::cronets_monthly_cost(core::CloudPricing{}, 2, 5000, 100);
  const auto line_cost =
      core::leased_line_monthly_cost(core::LeasedLinePricing{}, 100, true);

  std::printf("\n%-34s %12s %14s\n", "option", "Mbps", "USD/month");
  std::printf("%-34s %12.2f %14s\n", "internet (default path)",
              direct.goodput_bps / 1e6, "~0 (existing)");
  std::printf("%-34s %12.2f %14.0f\n",
              ("cronets split via " + net.endpoint(best_via).name).c_str(),
              best_split / 1e6, cloud_cost.monthly_usd);
  std::printf("%-34s %12.2f %14.0f\n", "cronets mptcp (all paths, cubic)",
              mptcp.goodput_bps / 1e6, cloud_cost.monthly_usd);
  std::printf("%-34s %12s %14.0f\n", "private leased line (100 Mbps)", "~95",
              line_cost.monthly_usd);

  std::printf("\n=> CRONets: %.1fx the default throughput at %.0f%% of the leased-line cost\n",
              std::max(best_split, mptcp.goodput_bps) /
                  std::max(1.0, direct.goodput_bps),
              100.0 * cloud_cost.monthly_usd / line_cost.monthly_usd);
  return 0;
}
