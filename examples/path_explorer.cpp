// Path explorer: inspect what the overlay actually does to a route. For a
// chosen endpoint pair, print the AS-level and router-level default path,
// traceroute it packet-by-packet through a GRE tunnel, and compute the
// diversity score of every overlay alternative (§V-A's analysis, on one
// pair, interactively).
//
//   ./path_explorer [seed]

#include <cstdio>
#include <cstdlib>

#include "analysis/traceroute.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/materialize.h"
#include "tunnel/tunnel.h"
#include "wkld/world.h"

using namespace cronets;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  wkld::World world(seed);
  auto& net = world.internet();

  const int src = net.add_client(topo::Region::kNaWest, "explorer-src");
  const int dst = net.add_client(topo::Region::kEurope, "explorer-dst");

  // --- Map view: the policy-routed default path. -----------------------
  const topo::RouterPath direct = net.path(src, dst);
  std::printf("default path %s -> %s (%.0f ms base RTT):\n  AS path: ",
              net.endpoint(src).name.c_str(), net.endpoint(dst).name.c_str(),
              net.base_rtt_ms(direct));
  for (int as : direct.as_seq) std::printf("%s ", net.ases()[as].name.c_str());
  std::printf("\n  routers: ");
  for (int r : direct.routers) std::printf("%s ", net.routers()[r].name.c_str());
  std::printf("\n\n");

  // --- Diversity of each overlay alternative (interface-level). --------
  const auto direct_hops = analysis::interface_hops(direct);
  std::printf("overlay alternatives:\n");
  for (const auto& dc : net.cloud().dcs) {
    const int via = net.dc_endpoint(dc.name);
    auto hops = analysis::interface_hops(net.path(src, via));
    const auto leg2 = analysis::interface_hops(net.path(via, dst));
    hops.insert(hops.end(), leg2.begin(), leg2.end());
    const auto loc = analysis::common_router_location(direct_hops, hops);
    std::printf("  via %-4s: %2zu hops, diversity %.2f (%d shared at ends, %d mid)\n",
                dc.name.c_str(), hops.size(),
                analysis::diversity_score(direct_hops, hops), loc.common_end,
                loc.common_middle);
  }

  // --- Packet view: a real traceroute through a GRE tunnel. ------------
  const int via = net.dc_endpoint("wdc");
  sim::Simulator simv;
  net::Network packet_net(&simv, sim::Rng{5});
  topo::Materializer mat(&net, &packet_net);
  mat.add_pair(src, via);
  mat.add_pair(via, dst);
  tunnel::TunnelClient tc(mat.host(src));
  tc.add_tunnel_route(mat.host(dst)->addr(), mat.host(via)->addr(),
                      tunnel::TunnelMode::kGre);
  tunnel::OverlayDatapath datapath(mat.host(via));

  std::printf("\npacket traceroute through the wdc tunnel:\n");
  analysis::Traceroute tr(mat.host(src), mat.host(dst)->addr());
  bool done = false;
  tr.run([&](const analysis::Traceroute::Result& r) {
    int n = 1;
    for (const auto& hop : r.hops) {
      if (hop.addr == net::IpAddr{}) {
        std::printf("  %2d  *\n", n++);
      } else {
        std::printf("  %2d  %-14s %7.1f ms\n", n++, hop.addr.to_string().c_str(),
                    hop.rtt_ms);
      }
    }
    std::printf("  %s\n", r.reached ? "destination reached" : "gave up");
    done = true;
  });
  simv.run_until(sim::Time::minutes(5));
  return done ? 0 : 1;
}
