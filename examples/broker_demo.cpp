// Overlay broker demo: run the src/service/ control plane over a small
// fleet of client-server pairs, open a few long-lived sessions, then fail
// the AS adjacency carrying the most traffic and watch the broker re-pin
// every impacted session within its failover bound.
//
//   ./broker_demo [seed]

#include <cstdio>
#include <cstdlib>

#include "service/broker.h"
#include "wkld/world.h"

using namespace cronets;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::printf("CRONets broker demo (seed %llu)\n",
              static_cast<unsigned long long>(seed));

  // 1. World + endpoints: a handful of web clients, the paper's servers,
  //    and the five-node overlay fleet (100 Mbps virtual NICs).
  wkld::World world(seed);
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  // 2. The broker: budgeted probing every 10 s, EWMA + hysteresis
  //    ranking, NIC-capacity admission, 1 s failover reaction.
  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.failover_delay = sim::Time::seconds(1);
  service::Broker broker(&world.internet(), &world.meter(), &world.pool(),
                         overlays, cfg);

  // 3. Sessions: every client opens one 2 Mbps session to every server.
  //    warm_up() probes all pairs first so admissions see real rankings.
  for (int c : clients) {
    for (int s : servers) broker.register_pair(c, s);
  }
  broker.warm_up();
  for (int c : clients) {
    for (int s : servers) broker.open_session(c, s, 2e6);
  }
  const auto& st = broker.stats();
  std::printf("\nadmitted %llu sessions, %llu of them via a split-TCP relay\n",
              static_cast<unsigned long long>(st.sessions_admitted),
              static_cast<unsigned long long>(st.admitted_via_overlay));

  // 4. Let the control plane probe for a minute of simulated time.
  broker.run_until(sim::Time::seconds(60));
  std::printf("after 60 s: %llu probes, %llu ranking flips, %llu migrations, "
              "mean goodput regret %.3f\n",
              static_cast<unsigned long long>(st.probes),
              static_cast<unsigned long long>(st.ranking_flips),
              static_cast<unsigned long long>(st.migrations),
              st.mean_regret());

  // 5. Fail the busiest transit adjacency and watch the failover.
  int as_a = -1, as_b = -1;
  if (broker.busiest_transit_adjacency(&as_a, &as_b)) {
    const int before = broker.sessions_traversing(as_a, as_b);
    std::printf("\nfailing AS%d-AS%d (carrying %d sessions)...\n", as_a, as_b,
                before);
    world.internet().set_adjacency_up(as_a, as_b, false);
    broker.run_until(sim::Time::seconds(62));
    std::printf("=> %d sessions still crossing it, reaction %.3f s, "
                "%llu sessions re-pinned\n",
                broker.sessions_traversing(as_a, as_b),
                st.last_failover_reaction.to_seconds(),
                static_cast<unsigned long long>(st.failover_repins));
  }
  return 0;
}
