# Empty compiler generated dependencies file for bench_fig10_lossbins.
# This may be replaced when dependencies are built.
