file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lossbins.dir/bench_fig10_lossbins.cc.o"
  "CMakeFiles/bench_fig10_lossbins.dir/bench_fig10_lossbins.cc.o.d"
  "bench_fig10_lossbins"
  "bench_fig10_lossbins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lossbins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
