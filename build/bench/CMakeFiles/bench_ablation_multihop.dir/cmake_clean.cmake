file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multihop.dir/bench_ablation_multihop.cc.o"
  "CMakeFiles/bench_ablation_multihop.dir/bench_ablation_multihop.cc.o.d"
  "bench_ablation_multihop"
  "bench_ablation_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
