# Empty compiler generated dependencies file for bench_fig9_rttbins.
# This may be replaced when dependencies are built.
