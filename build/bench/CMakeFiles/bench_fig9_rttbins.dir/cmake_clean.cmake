file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_rttbins.dir/bench_fig9_rttbins.cc.o"
  "CMakeFiles/bench_fig9_rttbins.dir/bench_fig9_rttbins.cc.o.d"
  "bench_fig9_rttbins"
  "bench_fig9_rttbins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rttbins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
