file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_portspeed.dir/bench_ablation_portspeed.cc.o"
  "CMakeFiles/bench_ablation_portspeed.dir/bench_ablation_portspeed.cc.o.d"
  "bench_ablation_portspeed"
  "bench_ablation_portspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_portspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
