# Empty dependencies file for bench_ablation_portspeed.
# This may be replaced when dependencies are built.
