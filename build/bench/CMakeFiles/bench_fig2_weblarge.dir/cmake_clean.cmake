file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_weblarge.dir/bench_fig2_weblarge.cc.o"
  "CMakeFiles/bench_fig2_weblarge.dir/bench_fig2_weblarge.cc.o.d"
  "bench_fig2_weblarge"
  "bench_fig2_weblarge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_weblarge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
