# Empty dependencies file for bench_fig2_weblarge.
# This may be replaced when dependencies are built.
