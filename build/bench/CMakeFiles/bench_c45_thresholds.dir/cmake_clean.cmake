file(REMOVE_RECURSE
  "CMakeFiles/bench_c45_thresholds.dir/bench_c45_thresholds.cc.o"
  "CMakeFiles/bench_c45_thresholds.dir/bench_c45_thresholds.cc.o.d"
  "bench_c45_thresholds"
  "bench_c45_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c45_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
