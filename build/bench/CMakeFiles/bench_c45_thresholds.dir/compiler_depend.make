# Empty compiler generated dependencies file for bench_c45_thresholds.
# This may be replaced when dependencies are built.
