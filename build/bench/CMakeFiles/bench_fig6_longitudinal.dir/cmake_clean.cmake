file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_longitudinal.dir/bench_fig6_longitudinal.cc.o"
  "CMakeFiles/bench_fig6_longitudinal.dir/bench_fig6_longitudinal.cc.o.d"
  "bench_fig6_longitudinal"
  "bench_fig6_longitudinal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
