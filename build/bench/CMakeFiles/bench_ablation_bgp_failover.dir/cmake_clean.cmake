file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bgp_failover.dir/bench_ablation_bgp_failover.cc.o"
  "CMakeFiles/bench_ablation_bgp_failover.dir/bench_ablation_bgp_failover.cc.o.d"
  "bench_ablation_bgp_failover"
  "bench_ablation_bgp_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bgp_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
