file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_minoverlays.dir/bench_fig7_minoverlays.cc.o"
  "CMakeFiles/bench_fig7_minoverlays.dir/bench_fig7_minoverlays.cc.o.d"
  "bench_fig7_minoverlays"
  "bench_fig7_minoverlays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_minoverlays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
