# Empty dependencies file for bench_fig7_minoverlays.
# This may be replaced when dependencies are built.
