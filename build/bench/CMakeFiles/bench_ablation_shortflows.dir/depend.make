# Empty dependencies file for bench_ablation_shortflows.
# This may be replaced when dependencies are built.
