file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shortflows.dir/bench_ablation_shortflows.cc.o"
  "CMakeFiles/bench_ablation_shortflows.dir/bench_ablation_shortflows.cc.o.d"
  "bench_ablation_shortflows"
  "bench_ablation_shortflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shortflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
