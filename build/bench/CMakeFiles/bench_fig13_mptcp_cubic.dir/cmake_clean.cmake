file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mptcp_cubic.dir/bench_fig13_mptcp_cubic.cc.o"
  "CMakeFiles/bench_fig13_mptcp_cubic.dir/bench_fig13_mptcp_cubic.cc.o.d"
  "bench_fig13_mptcp_cubic"
  "bench_fig13_mptcp_cubic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mptcp_cubic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
