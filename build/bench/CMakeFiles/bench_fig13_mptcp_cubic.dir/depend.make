# Empty dependencies file for bench_fig13_mptcp_cubic.
# This may be replaced when dependencies are built.
