# Empty dependencies file for bench_fig4_retrans.
# This may be replaced when dependencies are built.
