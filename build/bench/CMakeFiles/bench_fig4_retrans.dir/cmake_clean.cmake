file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_retrans.dir/bench_fig4_retrans.cc.o"
  "CMakeFiles/bench_fig4_retrans.dir/bench_fig4_retrans.cc.o.d"
  "bench_fig4_retrans"
  "bench_fig4_retrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_retrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
