file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nodecount.dir/bench_table1_nodecount.cc.o"
  "CMakeFiles/bench_table1_nodecount.dir/bench_table1_nodecount.cc.o.d"
  "bench_table1_nodecount"
  "bench_table1_nodecount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nodecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
