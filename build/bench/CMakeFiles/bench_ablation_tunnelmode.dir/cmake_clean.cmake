file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tunnelmode.dir/bench_ablation_tunnelmode.cc.o"
  "CMakeFiles/bench_ablation_tunnelmode.dir/bench_ablation_tunnelmode.cc.o.d"
  "bench_ablation_tunnelmode"
  "bench_ablation_tunnelmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tunnelmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
