# Empty dependencies file for bench_ablation_tunnelmode.
# This may be replaced when dependencies are built.
