# Empty dependencies file for bench_fig3_controlled.
# This may be replaced when dependencies are built.
