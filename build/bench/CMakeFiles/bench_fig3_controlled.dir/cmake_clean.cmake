file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_controlled.dir/bench_fig3_controlled.cc.o"
  "CMakeFiles/bench_fig3_controlled.dir/bench_fig3_controlled.cc.o.d"
  "bench_fig3_controlled"
  "bench_fig3_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
