# Empty compiler generated dependencies file for bench_fig12_mptcp_olia.
# This may be replaced when dependencies are built.
