file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mptcp_olia.dir/bench_fig12_mptcp_olia.cc.o"
  "CMakeFiles/bench_fig12_mptcp_olia.dir/bench_fig12_mptcp_olia.cc.o.d"
  "bench_fig12_mptcp_olia"
  "bench_fig12_mptcp_olia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mptcp_olia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
