file(REMOVE_RECURSE
  "libcronets_tunnel.a"
)
