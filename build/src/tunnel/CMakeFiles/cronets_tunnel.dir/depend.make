# Empty dependencies file for cronets_tunnel.
# This may be replaced when dependencies are built.
