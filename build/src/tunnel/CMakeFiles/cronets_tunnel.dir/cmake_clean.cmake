file(REMOVE_RECURSE
  "CMakeFiles/cronets_tunnel.dir/tunnel.cc.o"
  "CMakeFiles/cronets_tunnel.dir/tunnel.cc.o.d"
  "libcronets_tunnel.a"
  "libcronets_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
