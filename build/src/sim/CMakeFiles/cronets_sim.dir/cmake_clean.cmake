file(REMOVE_RECURSE
  "CMakeFiles/cronets_sim.dir/time.cc.o"
  "CMakeFiles/cronets_sim.dir/time.cc.o.d"
  "libcronets_sim.a"
  "libcronets_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
