# Empty compiler generated dependencies file for cronets_sim.
# This may be replaced when dependencies are built.
