file(REMOVE_RECURSE
  "libcronets_sim.a"
)
