
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost.cc" "src/core/CMakeFiles/cronets_core.dir/cost.cc.o" "gcc" "src/core/CMakeFiles/cronets_core.dir/cost.cc.o.d"
  "/root/repo/src/core/measure_model.cc" "src/core/CMakeFiles/cronets_core.dir/measure_model.cc.o" "gcc" "src/core/CMakeFiles/cronets_core.dir/measure_model.cc.o.d"
  "/root/repo/src/core/measure_packet.cc" "src/core/CMakeFiles/cronets_core.dir/measure_packet.cc.o" "gcc" "src/core/CMakeFiles/cronets_core.dir/measure_packet.cc.o.d"
  "/root/repo/src/core/overlay.cc" "src/core/CMakeFiles/cronets_core.dir/overlay.cc.o" "gcc" "src/core/CMakeFiles/cronets_core.dir/overlay.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/cronets_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/cronets_core.dir/placement.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/cronets_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/cronets_core.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/cronets_model.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/cronets_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cronets_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/tunnel/CMakeFiles/cronets_tunnel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cronets_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cronets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
