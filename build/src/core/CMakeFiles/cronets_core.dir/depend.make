# Empty dependencies file for cronets_core.
# This may be replaced when dependencies are built.
