file(REMOVE_RECURSE
  "libcronets_core.a"
)
