file(REMOVE_RECURSE
  "CMakeFiles/cronets_core.dir/cost.cc.o"
  "CMakeFiles/cronets_core.dir/cost.cc.o.d"
  "CMakeFiles/cronets_core.dir/measure_model.cc.o"
  "CMakeFiles/cronets_core.dir/measure_model.cc.o.d"
  "CMakeFiles/cronets_core.dir/measure_packet.cc.o"
  "CMakeFiles/cronets_core.dir/measure_packet.cc.o.d"
  "CMakeFiles/cronets_core.dir/overlay.cc.o"
  "CMakeFiles/cronets_core.dir/overlay.cc.o.d"
  "CMakeFiles/cronets_core.dir/placement.cc.o"
  "CMakeFiles/cronets_core.dir/placement.cc.o.d"
  "CMakeFiles/cronets_core.dir/selection.cc.o"
  "CMakeFiles/cronets_core.dir/selection.cc.o.d"
  "libcronets_core.a"
  "libcronets_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
