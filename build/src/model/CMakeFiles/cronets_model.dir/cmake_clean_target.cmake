file(REMOVE_RECURSE
  "libcronets_model.a"
)
