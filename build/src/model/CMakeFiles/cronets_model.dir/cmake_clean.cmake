file(REMOVE_RECURSE
  "CMakeFiles/cronets_model.dir/flow_model.cc.o"
  "CMakeFiles/cronets_model.dir/flow_model.cc.o.d"
  "libcronets_model.a"
  "libcronets_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
