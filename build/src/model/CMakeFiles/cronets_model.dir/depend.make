# Empty dependencies file for cronets_model.
# This may be replaced when dependencies are built.
