
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/congestion.cc" "src/transport/CMakeFiles/cronets_transport.dir/congestion.cc.o" "gcc" "src/transport/CMakeFiles/cronets_transport.dir/congestion.cc.o.d"
  "/root/repo/src/transport/mptcp.cc" "src/transport/CMakeFiles/cronets_transport.dir/mptcp.cc.o" "gcc" "src/transport/CMakeFiles/cronets_transport.dir/mptcp.cc.o.d"
  "/root/repo/src/transport/mptcp_proxy.cc" "src/transport/CMakeFiles/cronets_transport.dir/mptcp_proxy.cc.o" "gcc" "src/transport/CMakeFiles/cronets_transport.dir/mptcp_proxy.cc.o.d"
  "/root/repo/src/transport/split_proxy.cc" "src/transport/CMakeFiles/cronets_transport.dir/split_proxy.cc.o" "gcc" "src/transport/CMakeFiles/cronets_transport.dir/split_proxy.cc.o.d"
  "/root/repo/src/transport/tcp.cc" "src/transport/CMakeFiles/cronets_transport.dir/tcp.cc.o" "gcc" "src/transport/CMakeFiles/cronets_transport.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cronets_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cronets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
