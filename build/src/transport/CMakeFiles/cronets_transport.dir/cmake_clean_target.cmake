file(REMOVE_RECURSE
  "libcronets_transport.a"
)
