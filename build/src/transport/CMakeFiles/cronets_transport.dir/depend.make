# Empty dependencies file for cronets_transport.
# This may be replaced when dependencies are built.
