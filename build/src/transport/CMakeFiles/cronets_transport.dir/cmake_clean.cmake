file(REMOVE_RECURSE
  "CMakeFiles/cronets_transport.dir/congestion.cc.o"
  "CMakeFiles/cronets_transport.dir/congestion.cc.o.d"
  "CMakeFiles/cronets_transport.dir/mptcp.cc.o"
  "CMakeFiles/cronets_transport.dir/mptcp.cc.o.d"
  "CMakeFiles/cronets_transport.dir/mptcp_proxy.cc.o"
  "CMakeFiles/cronets_transport.dir/mptcp_proxy.cc.o.d"
  "CMakeFiles/cronets_transport.dir/split_proxy.cc.o"
  "CMakeFiles/cronets_transport.dir/split_proxy.cc.o.d"
  "CMakeFiles/cronets_transport.dir/tcp.cc.o"
  "CMakeFiles/cronets_transport.dir/tcp.cc.o.d"
  "libcronets_transport.a"
  "libcronets_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
