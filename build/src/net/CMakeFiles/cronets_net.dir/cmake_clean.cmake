file(REMOVE_RECURSE
  "CMakeFiles/cronets_net.dir/host.cc.o"
  "CMakeFiles/cronets_net.dir/host.cc.o.d"
  "CMakeFiles/cronets_net.dir/link.cc.o"
  "CMakeFiles/cronets_net.dir/link.cc.o.d"
  "CMakeFiles/cronets_net.dir/network.cc.o"
  "CMakeFiles/cronets_net.dir/network.cc.o.d"
  "CMakeFiles/cronets_net.dir/router.cc.o"
  "CMakeFiles/cronets_net.dir/router.cc.o.d"
  "libcronets_net.a"
  "libcronets_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
