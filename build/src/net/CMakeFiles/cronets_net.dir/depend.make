# Empty dependencies file for cronets_net.
# This may be replaced when dependencies are built.
