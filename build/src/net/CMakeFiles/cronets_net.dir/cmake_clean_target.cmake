file(REMOVE_RECURSE
  "libcronets_net.a"
)
