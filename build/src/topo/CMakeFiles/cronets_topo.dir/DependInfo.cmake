
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/geo.cc" "src/topo/CMakeFiles/cronets_topo.dir/geo.cc.o" "gcc" "src/topo/CMakeFiles/cronets_topo.dir/geo.cc.o.d"
  "/root/repo/src/topo/internet.cc" "src/topo/CMakeFiles/cronets_topo.dir/internet.cc.o" "gcc" "src/topo/CMakeFiles/cronets_topo.dir/internet.cc.o.d"
  "/root/repo/src/topo/materialize.cc" "src/topo/CMakeFiles/cronets_topo.dir/materialize.cc.o" "gcc" "src/topo/CMakeFiles/cronets_topo.dir/materialize.cc.o.d"
  "/root/repo/src/topo/routing.cc" "src/topo/CMakeFiles/cronets_topo.dir/routing.cc.o" "gcc" "src/topo/CMakeFiles/cronets_topo.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cronets_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cronets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
