# Empty compiler generated dependencies file for cronets_topo.
# This may be replaced when dependencies are built.
