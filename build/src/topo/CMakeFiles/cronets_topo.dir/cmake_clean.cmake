file(REMOVE_RECURSE
  "CMakeFiles/cronets_topo.dir/geo.cc.o"
  "CMakeFiles/cronets_topo.dir/geo.cc.o.d"
  "CMakeFiles/cronets_topo.dir/internet.cc.o"
  "CMakeFiles/cronets_topo.dir/internet.cc.o.d"
  "CMakeFiles/cronets_topo.dir/materialize.cc.o"
  "CMakeFiles/cronets_topo.dir/materialize.cc.o.d"
  "CMakeFiles/cronets_topo.dir/routing.cc.o"
  "CMakeFiles/cronets_topo.dir/routing.cc.o.d"
  "libcronets_topo.a"
  "libcronets_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
