file(REMOVE_RECURSE
  "libcronets_topo.a"
)
