file(REMOVE_RECURSE
  "CMakeFiles/cronets_wkld.dir/experiments.cc.o"
  "CMakeFiles/cronets_wkld.dir/experiments.cc.o.d"
  "CMakeFiles/cronets_wkld.dir/world.cc.o"
  "CMakeFiles/cronets_wkld.dir/world.cc.o.d"
  "libcronets_wkld.a"
  "libcronets_wkld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_wkld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
