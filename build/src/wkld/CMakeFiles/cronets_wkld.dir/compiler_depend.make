# Empty compiler generated dependencies file for cronets_wkld.
# This may be replaced when dependencies are built.
