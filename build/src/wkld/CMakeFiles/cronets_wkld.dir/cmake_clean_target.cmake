file(REMOVE_RECURSE
  "libcronets_wkld.a"
)
