file(REMOVE_RECURSE
  "CMakeFiles/cronets_analysis.dir/c45.cc.o"
  "CMakeFiles/cronets_analysis.dir/c45.cc.o.d"
  "CMakeFiles/cronets_analysis.dir/stats.cc.o"
  "CMakeFiles/cronets_analysis.dir/stats.cc.o.d"
  "CMakeFiles/cronets_analysis.dir/traceroute.cc.o"
  "CMakeFiles/cronets_analysis.dir/traceroute.cc.o.d"
  "CMakeFiles/cronets_analysis.dir/tstat.cc.o"
  "CMakeFiles/cronets_analysis.dir/tstat.cc.o.d"
  "libcronets_analysis.a"
  "libcronets_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronets_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
