
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/c45.cc" "src/analysis/CMakeFiles/cronets_analysis.dir/c45.cc.o" "gcc" "src/analysis/CMakeFiles/cronets_analysis.dir/c45.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/analysis/CMakeFiles/cronets_analysis.dir/stats.cc.o" "gcc" "src/analysis/CMakeFiles/cronets_analysis.dir/stats.cc.o.d"
  "/root/repo/src/analysis/traceroute.cc" "src/analysis/CMakeFiles/cronets_analysis.dir/traceroute.cc.o" "gcc" "src/analysis/CMakeFiles/cronets_analysis.dir/traceroute.cc.o.d"
  "/root/repo/src/analysis/tstat.cc" "src/analysis/CMakeFiles/cronets_analysis.dir/tstat.cc.o" "gcc" "src/analysis/CMakeFiles/cronets_analysis.dir/tstat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/cronets_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cronets_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cronets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
