file(REMOVE_RECURSE
  "libcronets_analysis.a"
)
