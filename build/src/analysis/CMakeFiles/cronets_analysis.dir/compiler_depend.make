# Empty compiler generated dependencies file for cronets_analysis.
# This may be replaced when dependencies are built.
