# Empty dependencies file for branch_office.
# This may be replaced when dependencies are built.
