file(REMOVE_RECURSE
  "CMakeFiles/branch_office.dir/branch_office.cpp.o"
  "CMakeFiles/branch_office.dir/branch_office.cpp.o.d"
  "branch_office"
  "branch_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
