# Empty compiler generated dependencies file for path_explorer.
# This may be replaced when dependencies are built.
