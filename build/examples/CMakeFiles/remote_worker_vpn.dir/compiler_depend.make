# Empty compiler generated dependencies file for remote_worker_vpn.
# This may be replaced when dependencies are built.
