file(REMOVE_RECURSE
  "CMakeFiles/remote_worker_vpn.dir/remote_worker_vpn.cpp.o"
  "CMakeFiles/remote_worker_vpn.dir/remote_worker_vpn.cpp.o.d"
  "remote_worker_vpn"
  "remote_worker_vpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_worker_vpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
