# Empty dependencies file for cronets_tests.
# This may be replaced when dependencies are built.
