
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_extra_test.cc" "tests/CMakeFiles/cronets_tests.dir/analysis_extra_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/analysis_extra_test.cc.o.d"
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/cronets_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/cronets_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/cronets_tests.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/determinism_test.cc.o.d"
  "/root/repo/tests/experiments_test.cc" "tests/CMakeFiles/cronets_tests.dir/experiments_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/experiments_test.cc.o.d"
  "/root/repo/tests/fairness_test.cc" "tests/CMakeFiles/cronets_tests.dir/fairness_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/fairness_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/cronets_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/cronets_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/mptcp_dss_test.cc" "tests/CMakeFiles/cronets_tests.dir/mptcp_dss_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/mptcp_dss_test.cc.o.d"
  "/root/repo/tests/mptcp_proxy_test.cc" "tests/CMakeFiles/cronets_tests.dir/mptcp_proxy_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/mptcp_proxy_test.cc.o.d"
  "/root/repo/tests/mptcp_test.cc" "tests/CMakeFiles/cronets_tests.dir/mptcp_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/mptcp_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/cronets_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/placement_test.cc" "tests/CMakeFiles/cronets_tests.dir/placement_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/placement_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/cronets_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/red_test.cc" "tests/CMakeFiles/cronets_tests.dir/red_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/red_test.cc.o.d"
  "/root/repo/tests/selection_extra_test.cc" "tests/CMakeFiles/cronets_tests.dir/selection_extra_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/selection_extra_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/cronets_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/split_proxy_test.cc" "tests/CMakeFiles/cronets_tests.dir/split_proxy_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/split_proxy_test.cc.o.d"
  "/root/repo/tests/tcp_edge_test.cc" "tests/CMakeFiles/cronets_tests.dir/tcp_edge_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/tcp_edge_test.cc.o.d"
  "/root/repo/tests/tcp_test.cc" "tests/CMakeFiles/cronets_tests.dir/tcp_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/tcp_test.cc.o.d"
  "/root/repo/tests/tlp_test.cc" "tests/CMakeFiles/cronets_tests.dir/tlp_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/tlp_test.cc.o.d"
  "/root/repo/tests/topo_test.cc" "tests/CMakeFiles/cronets_tests.dir/topo_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/topo_test.cc.o.d"
  "/root/repo/tests/tunnel_test.cc" "tests/CMakeFiles/cronets_tests.dir/tunnel_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/tunnel_test.cc.o.d"
  "/root/repo/tests/umbrella_test.cc" "tests/CMakeFiles/cronets_tests.dir/umbrella_test.cc.o" "gcc" "tests/CMakeFiles/cronets_tests.dir/umbrella_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wkld/CMakeFiles/cronets_wkld.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cronets_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cronets_model.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cronets_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/cronets_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cronets_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/tunnel/CMakeFiles/cronets_tunnel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cronets_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cronets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
