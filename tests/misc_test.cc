// Remaining coverage: tunnel edge cases, C4.5 details, the cost model's
// corners, simulator stress, and the flow-model knobs.

#include <gtest/gtest.h>

#include "analysis/c45.h"
#include "core/cost.h"
#include "model/flow_model.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "tunnel/tunnel.h"

namespace cronets {
namespace {

using sim::Time;

// ----------------------------------------------------------------- tunnels

struct MiniOverlay {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{3}};
  net::Host* a;
  net::Host* o;
  net::Host* b;

  MiniOverlay() {
    a = net.add_host("A");
    o = net.add_host("O");
    b = net.add_host("B");
    auto* r1 = net.add_router("r1");
    auto* r2 = net.add_router("r2");
    net::LinkSpec s;
    s.capacity_bps = 100e6;
    s.prop_delay = Time::milliseconds(3);
    net.add_link(a, r1, s);
    net.add_link(r1, o, s);
    net.add_link(o, r2, s);
    net.add_link(r2, b, s);
    net.compute_routes();
  }
};

TEST(TunnelEdge, RemoveRouteStopsEncapsulation) {
  MiniOverlay n;
  tunnel::TunnelClient tc(n.a);
  tunnel::OverlayDatapath dp(n.o);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), tunnel::TunnelMode::kGre);

  transport::TcpConfig cfg;
  transport::BulkSink sink(n.b, 5001, cfg);
  transport::TcpConnection c1(n.a, 1234, n.b->addr(), 5001, cfg);
  c1.set_on_connected([&] { c1.app_write(50'000); });
  c1.connect();
  n.simv.run_until(Time::seconds(3));
  const auto encap_before = tc.encapsulated();
  EXPECT_GT(encap_before, 0u);

  tc.remove_tunnel_route(n.b->addr());
  // New connection goes direct: A's default route still reaches B through
  // the chain, but O no longer NATs it — it forwards as plain routing is
  // absent on host O, so the direct attempt dies. What must hold: no new
  // encapsulations happen.
  transport::TcpConnection c2(n.a, 1235, n.b->addr(), 5001, cfg);
  c2.connect();
  n.simv.run_until(Time::seconds(6));
  EXPECT_EQ(tc.encapsulated(), encap_before);
}

TEST(TunnelEdge, NatEntriesSurviveQuietPeriods) {
  MiniOverlay n;
  tunnel::TunnelClient tc(n.a);
  tunnel::OverlayDatapath dp(n.o);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), tunnel::TunnelMode::kGre);
  transport::TcpConfig cfg;
  transport::BulkSink sink(n.b, 5001, cfg);
  transport::TcpConnection c(n.a, 1234, n.b->addr(), 5001, cfg);
  c.set_on_connected([&] { c.app_write(10'000); });
  c.connect();
  n.simv.run_until(Time::seconds(2));
  EXPECT_EQ(dp.nat_entries(), 1u);
  // 30 seconds of silence, then more data through the same mapping.
  n.simv.run_until(Time::seconds(32));
  c.app_write(10'000);
  n.simv.run_until(Time::seconds(35));
  EXPECT_EQ(dp.nat_entries(), 1u);
  EXPECT_EQ(sink.bytes_received(), 20'000u);
}

TEST(TunnelEdge, IpsecCostsMoreWireBytesThanGre) {
  auto run_mode = [](tunnel::TunnelMode mode) {
    MiniOverlay n;
    tunnel::TunnelClient tc(n.a);
    tunnel::OverlayDatapath dp(n.o);
    tc.add_tunnel_route(n.b->addr(), n.o->addr(), mode);
    transport::TcpConfig cfg;
    transport::BulkSink sink(n.b, 5001, cfg);
    transport::TcpConnection c(n.a, 1234, n.b->addr(), 5001, cfg);
    c.set_on_connected([&] { c.app_write(500'000); });
    c.connect();
    n.simv.run_until(Time::seconds(10));
    net::Link* l = n.net.find_link(n.a, n.net.nodes()[3].get());  // a->r1
    return l ? l->stats().tx_bytes : 0ull;
  };
  const auto gre_bytes = run_mode(tunnel::TunnelMode::kGre);
  const auto esp_bytes = run_mode(tunnel::TunnelMode::kIpsec);
  EXPECT_GT(esp_bytes, gre_bytes);
}

// -------------------------------------------------------------------- C4.5

TEST(C45Extra, PredictConfidenceReflectsLeafPurity) {
  analysis::Dataset d;
  d.feature_names = {"x"};
  sim::Rng rng(6);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform();
    // Right side pure positive; left side 70/30 negative.
    const int y = x > 0.5 ? 1 : (rng.bernoulli(0.3) ? 1 : 0);
    d.x.push_back({x});
    d.y.push_back(y);
  }
  analysis::C45Tree tree;
  analysis::C45Tree::Options opt;
  opt.prune = false;
  opt.max_depth = 2;
  tree.train(d, opt);
  EXPECT_GT(tree.predict_confidence({0.9}), 0.9);
  EXPECT_LT(tree.predict_confidence({0.1}), 0.6);
}

TEST(C45Extra, MinLeafPreventsTinySplits) {
  analysis::Dataset d;
  d.feature_names = {"x"};
  sim::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform();
    d.x.push_back({x});
    d.y.push_back(x > 0.9 ? 1 : 0);  // only ~10 positives
  }
  analysis::C45Tree strict;
  analysis::C45Tree::Options opt;
  opt.min_leaf = 60;  // a split would need 120 samples; only 100 exist
  opt.prune = false;
  strict.train(d, opt);
  EXPECT_EQ(strict.node_count(), 1);  // stump
}

TEST(C45Extra, SingleClassDataYieldsStump) {
  analysis::Dataset d;
  d.feature_names = {"x"};
  for (int i = 0; i < 50; ++i) {
    d.x.push_back({static_cast<double>(i)});
    d.y.push_back(1);
  }
  analysis::C45Tree tree;
  tree.train(d);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict({25.0}), 1);
  const auto rule = tree.best_positive_rule();
  EXPECT_TRUE(rule.conditions.empty());
  EXPECT_EQ(rule.support, 50);
}

// -------------------------------------------------------------------- cost

TEST(CostExtra, DescriptionsAreInformative) {
  const auto c = core::cronets_monthly_cost(core::CloudPricing{}, 3, 1234, 1000);
  EXPECT_NE(c.description.find("3"), std::string::npos);
  EXPECT_NE(c.description.find("1000 Mbps"), std::string::npos);
  const auto l = core::leased_line_monthly_cost(core::LeasedLinePricing{}, 100, true);
  EXPECT_NE(l.description.find("intercontinental"), std::string::npos);
}

TEST(CostExtra, BareMetalCostsMoreThanVm) {
  const auto vm = core::cronets_monthly_cost(core::CloudPricing{}, 1, 100, 100, false);
  const auto bm = core::cronets_monthly_cost(core::CloudPricing{}, 1, 100, 100, true);
  EXPECT_GT(bm.monthly_usd, vm.monthly_usd);
}

TEST(CostExtra, IncludedTrafficIsFree) {
  core::CloudPricing p;
  const auto small = core::cronets_monthly_cost(p, 1, p.included_gb / 2, 100);
  EXPECT_DOUBLE_EQ(small.monthly_usd, p.vm_monthly_usd);
}

// --------------------------------------------------------------- simulator

TEST(SimStress, HundredThousandInterleavedEvents) {
  sim::Simulator simv;
  sim::Rng rng(123);
  std::int64_t sum = 0;
  sim::Time last{};
  bool monotonic = true;
  for (int i = 0; i < 100'000; ++i) {
    simv.schedule_at(Time::microseconds(rng.uniform_int(0, 1'000'000)), [&, i] {
      sum += i;
      if (simv.now() < last) monotonic = false;
      last = simv.now();
    });
  }
  simv.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sum, 100'000ll * 99'999 / 2);
}

TEST(SimStress, CancellingHalfTheEvents) {
  sim::Simulator simv;
  std::vector<sim::EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        simv.schedule_in(Time::milliseconds(i + 1), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  simv.run();
  EXPECT_EQ(fired, 500);
}

// -------------------------------------------------------------- flow model

TEST(FlowModelKnobs, NoiseToggleIsExact) {
  topo::TopologyParams tp;
  tp.seed = 4;
  tp.num_tier1 = 6;
  tp.num_tier2 = 14;
  tp.num_stubs = 40;
  topo::Internet net(tp, topo::CloudParams{});
  model::FlowModel fm(&net, 5);
  fm.params().noise_sigma = 0.0;
  model::PathMetrics m{.rtt_ms = 100, .loss = 0.001, .residual_bps = 1e9,
                       .capacity_bps = 1e9, .hop_count = 5};
  const double t1 = fm.tcp_throughput(m);
  const double t2 = fm.tcp_throughput(m);
  EXPECT_DOUBLE_EQ(t1, t2);  // no noise => deterministic
}

TEST(FlowModelKnobs, RwndOverrideBindsWhenSmall) {
  topo::TopologyParams tp;
  tp.seed = 4;
  tp.num_tier1 = 6;
  tp.num_tier2 = 14;
  tp.num_stubs = 40;
  topo::Internet net(tp, topo::CloudParams{});
  model::FlowModel fm(&net, 5);
  fm.params().noise_sigma = 0.0;
  model::PathMetrics m{.rtt_ms = 200, .loss = 0.0, .residual_bps = 1e9,
                       .capacity_bps = 1e9, .hop_count = 5};
  m.rwnd_bytes = 64 * 1024;
  EXPECT_NEAR(fm.tcp_throughput(m), 64 * 1024 * 8 / 0.2, 1.0);
}

}  // namespace
}  // namespace cronets
