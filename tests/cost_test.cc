#include <gtest/gtest.h>

#include <vector>

#include "core/cost.h"
#include "econ/billing_ledger.h"
#include "econ/pricing_book.h"
#include "service/broker.h"
#include "service/sharded_broker.h"
#include "sim/time.h"
#include "topo/types.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

namespace cronets {
namespace {

using topo::Region;

// ---------------------------------------------------------------------------
// Offline cost model (core/cost.h): §VII-D edge cases.

TEST(CostModelTest, ZeroTrafficPaysOnlyRental) {
  core::CloudPricing p;
  const auto c = core::cronets_monthly_cost(p, 2, 0.0, 100);
  EXPECT_DOUBLE_EQ(c.monthly_usd, 2 * p.vm_monthly_usd);
}

TEST(CostModelTest, ExactIncludedAllowanceIsFree) {
  core::CloudPricing p;
  // Exactly at the included allowance: no overage; one GB past it: one
  // GB's worth of overage.
  const auto at = core::cronets_monthly_cost(p, 1, p.included_gb, 100);
  EXPECT_DOUBLE_EQ(at.monthly_usd, p.vm_monthly_usd);
  const auto past = core::cronets_monthly_cost(p, 1, p.included_gb + 1.0, 100);
  EXPECT_DOUBLE_EQ(past.monthly_usd, p.vm_monthly_usd + p.per_gb_overage_usd);
}

TEST(CostModelTest, PortTierTransitions) {
  core::CloudPricing p;
  const auto m100 = core::cronets_monthly_cost(p, 1, 0.0, 100);
  const auto m999 = core::cronets_monthly_cost(p, 1, 0.0, 999);
  const auto m1g = core::cronets_monthly_cost(p, 1, 0.0, 1000);
  const auto m10g = core::cronets_monthly_cost(p, 1, 0.0, 10000);
  // Upcharges apply at the 1 Gbps and 10 Gbps thresholds, not below.
  EXPECT_DOUBLE_EQ(m100.monthly_usd, p.vm_monthly_usd);
  EXPECT_DOUBLE_EQ(m999.monthly_usd, p.vm_monthly_usd);
  EXPECT_DOUBLE_EQ(m1g.monthly_usd, p.vm_monthly_usd + p.port_1g_upcharge_usd);
  EXPECT_DOUBLE_EQ(m10g.monthly_usd,
                   p.vm_monthly_usd + p.port_10g_upcharge_usd);
}

TEST(CostModelTest, UnlimitedOptionCapsHeavyTrafficAt100Mbps) {
  core::CloudPricing p;
  // Heavy traffic on a 100 Mbps port is capped by the unmetered upcharge;
  // the same volume on a 1 Gbps port pays full overage.
  const double heavy_gb = p.included_gb + 10000.0;
  const auto capped = core::cronets_monthly_cost(p, 1, heavy_gb, 100);
  EXPECT_DOUBLE_EQ(capped.monthly_usd,
                   p.vm_monthly_usd + p.unlimited_100m_upcharge_usd);
  const auto full = core::cronets_monthly_cost(p, 1, heavy_gb, 1000);
  EXPECT_DOUBLE_EQ(full.monthly_usd, p.vm_monthly_usd +
                                         p.port_1g_upcharge_usd +
                                         10000.0 * p.per_gb_overage_usd);
}

TEST(CostModelTest, BareMetalCrossoverUnderUnmeteredCap) {
  core::CloudPricing p;
  // At low volume the VM wins; the gap between the two options is exactly
  // the rental difference since traffic charges are identical.
  const double gb = p.included_gb + 100.0;
  const auto vm = core::cronets_monthly_cost(p, 1, gb, 100);
  const auto bare = core::cronets_monthly_cost(p, 1, gb, 100, true);
  EXPECT_LT(vm.monthly_usd, bare.monthly_usd);
  EXPECT_DOUBLE_EQ(bare.monthly_usd - vm.monthly_usd,
                   p.bare_metal_monthly_usd - p.vm_monthly_usd);
}

TEST(CostModelTest, IntercontinentalLeasedLineMultiplier) {
  core::LeasedLinePricing p;
  const auto dom = core::leased_line_monthly_cost(p, 100, false);
  const auto intl = core::leased_line_monthly_cost(p, 100, true);
  // Transport scales by the multiplier; the two local loops do not.
  const double loops = 2.0 * p.local_loop_monthly_usd;
  EXPECT_DOUBLE_EQ(intl.monthly_usd - loops,
                   (dom.monthly_usd - loops) * p.intercontinental_multiplier);
}

// ---------------------------------------------------------------------------
// Online pricing book (econ/pricing_book.h).

TEST(CostModelTest, EgressMultipliersByRegionPair) {
  econ::PricingBook book;
  const double base = book.transit_usd_per_gb;
  EXPECT_DOUBLE_EQ(
      econ::egress_usd_per_gb(book, Region::kNaEast, Region::kNaEast, false),
      base);
  // NA east<->west share a continent.
  EXPECT_DOUBLE_EQ(
      econ::egress_usd_per_gb(book, Region::kNaEast, Region::kNaWest, false),
      base * book.same_continent_multiplier);
  EXPECT_DOUBLE_EQ(
      econ::egress_usd_per_gb(book, Region::kNaEast, Region::kEurope, false),
      base * book.intercontinental_multiplier);
  // Remote endpoints dominate the intercontinental multiplier.
  EXPECT_DOUBLE_EQ(
      econ::egress_usd_per_gb(book, Region::kEurope, Region::kAustralia,
                              false),
      base * book.remote_region_multiplier);
  // Backbone rates use the same multipliers on the cheaper base.
  EXPECT_DOUBLE_EQ(
      econ::egress_usd_per_gb(book, Region::kNaEast, Region::kEurope, true),
      book.backbone_usd_per_gb * book.intercontinental_multiplier);
  EXPECT_LT(
      econ::egress_usd_per_gb(book, Region::kNaEast, Region::kEurope, true),
      econ::egress_usd_per_gb(book, Region::kNaEast, Region::kEurope, false));
}

TEST(CostModelTest, VmHourAmortizationTiers) {
  econ::PricingBook book;
  EXPECT_DOUBLE_EQ(econ::vm_hour_usd(book, 100),
                   book.cloud.vm_monthly_usd / book.hours_per_month);
  EXPECT_DOUBLE_EQ(
      econ::vm_hour_usd(book, 1000),
      (book.cloud.vm_monthly_usd + book.cloud.port_1g_upcharge_usd) /
          book.hours_per_month);
  EXPECT_DOUBLE_EQ(
      econ::vm_hour_usd(book, 10000),
      (book.cloud.vm_monthly_usd + book.cloud.port_10g_upcharge_usd) /
          book.hours_per_month);
  EXPECT_DOUBLE_EQ(econ::vm_hour_usd(book, 100, true),
                   book.cloud.bare_metal_monthly_usd / book.hours_per_month);
}

// ---------------------------------------------------------------------------
// Billing + cost ledgers (econ/billing_ledger.h).

TEST(EconLedgerTest, MeterAccumulatesPerCell) {
  econ::BillingLedger ledger;
  const econ::BillCell relay{3, Region::kEurope, core::PathKind::kOverlay, 0.1};
  ledger.meter(relay, 2.0);
  ledger.meter(relay, 3.0);
  EXPECT_EQ(ledger.cell_count(), 1u);
  EXPECT_DOUBLE_EQ(ledger.total_gb(), 5.0);
  EXPECT_DOUBLE_EQ(ledger.total_usd(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.kind_gb(core::PathKind::kOverlay), 5.0);
  EXPECT_DOUBLE_EQ(ledger.kind_gb(core::PathKind::kDirect), 0.0);
  EXPECT_EQ(ledger.meter_events(), 2u);
}

TEST(EconLedgerTest, MeterSessionChargesEveryHopDeliversOnce) {
  econ::BillingLedger ledger;
  // A two-hop chain: one backbone cell plus the exit transit cell.
  const std::vector<econ::BillCell> bills = {
      {1, Region::kNaWest, core::PathKind::kMultiHop, 0.02},
      {2, Region::kEurope, core::PathKind::kMultiHop, 0.135},
  };
  ledger.meter_session(bills, 4.0);
  // Billed GB is hop-inflated; delivered GB is end-to-end.
  EXPECT_DOUBLE_EQ(ledger.total_gb(), 8.0);
  EXPECT_DOUBLE_EQ(ledger.delivered_gb(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.total_usd(), 4.0 * (0.02 + 0.135));
}

TEST(EconLedgerTest, FingerprintInsensitiveToCellCreationOrder) {
  const econ::BillCell a{1, Region::kNaEast, core::PathKind::kOverlay, 0.09};
  const econ::BillCell b{2, Region::kEurope, core::PathKind::kMultiHop, 0.03};
  econ::BillingLedger fwd, rev;
  fwd.meter(a, 1.0);
  fwd.meter(b, 2.0);
  rev.meter(b, 2.0);
  rev.meter(a, 1.0);
  // Same per-cell totals, opposite creation order: identical fingerprints
  // (hashed in sorted-key order), but the delivered counter still
  // distinguishes real metering differences.
  EXPECT_EQ(fwd.fingerprint(), rev.fingerprint());
  econ::BillingLedger other;
  other.meter(a, 3.0);
  EXPECT_NE(fwd.fingerprint(), other.fingerprint());
}

TEST(EconLedgerTest, CostLedgerTracksReservedAndPeak) {
  econ::CostLedger ledger;
  ledger.add(2.0);
  ledger.add(3.0);
  EXPECT_DOUBLE_EQ(ledger.reserved_usd_per_hour(), 5.0);
  ledger.sub(3.0);
  EXPECT_DOUBLE_EQ(ledger.reserved_usd_per_hour(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.peak_usd_per_hour(), 5.0);
}

// ---------------------------------------------------------------------------
// Broker integration (single + sharded): kept out of the ASan job's
// service exclusions via the Cost* fixture names below.

constexpr std::uint64_t kWorldSeed = 42;

struct EconRun {
  service::BrokerStats stats;
  std::uint64_t decision_fp = 0;
  /// Per-pair chains merged by global id (comparable across the single
  /// Broker and the sharded plane; the running aggregate is not).
  std::uint64_t partial_fp = 0;
  std::uint64_t cost_fp = 0;
  double metered_usd = 0.0;
  double metered_gb = 0.0;
  double delivered_gb = 0.0;
  std::uint64_t budget_denied = 0;
  std::uint64_t slo_met = 0;
  std::uint64_t slo_total = 0;
};

/// One single-broker churn run under the given economics config.
EconRun run_broker(const econ::PricingBook& book, econ::CostPolicy policy,
                   double budget_usd_per_hour = 0.0) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.ranking.econ.pricing = &book;
  cfg.ranking.econ.policy = policy;
  cfg.ranking.econ.budget_usd_per_hour = budget_usd_per_hour;
  service::Broker broker(&world.internet(), &world.meter(), nullptr, overlays,
                         cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = kWorldSeed ^ 0x5e55;
  churn_params.target_concurrent = 300;
  churn_params.mean_duration_s = 20.0;
  churn_params.horizon = sim::Time::seconds(60);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();
  broker.run_until(churn_params.horizon);
  broker.settle_billing();

  EconRun r;
  r.stats = broker.stats();
  r.decision_fp = r.stats.decision_fingerprint;
  r.partial_fp = broker.ranker().partial_decision_fingerprint();
  r.cost_fp = broker.sessions().billing().fingerprint();
  r.metered_usd = broker.sessions().billing().total_usd();
  r.metered_gb = broker.sessions().billing().total_gb();
  r.delivered_gb = broker.sessions().billing().delivered_gb();
  r.budget_denied = broker.sessions().budget_denied();
  r.slo_met = broker.sessions().slo_met();
  r.slo_total = broker.sessions().slo_total();
  return r;
}

/// The same workload on a sharded broker (reading the global books).
EconRun run_sharded(const econ::PricingBook& book, econ::CostPolicy policy,
                    int num_shards, double budget_usd_per_hour = 0.0) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.ranking.econ.pricing = &book;
  cfg.ranking.econ.policy = policy;
  cfg.ranking.econ.budget_usd_per_hour = budget_usd_per_hour;
  service::ShardedBroker broker(&world.internet(), &world.meter(), nullptr,
                                overlays, num_shards, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = kWorldSeed ^ 0x5e55;
  churn_params.target_concurrent = 300;
  churn_params.mean_duration_s = 20.0;
  churn_params.horizon = sim::Time::seconds(60);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();
  broker.run_until(churn_params.horizon);
  broker.settle_billing();

  const auto stats = broker.stats();
  EconRun r;
  r.decision_fp = stats.decision_fingerprint;
  r.cost_fp = broker.global_billing().fingerprint();
  r.metered_usd = broker.global_billing().total_usd();
  r.metered_gb = broker.global_billing().total_gb();
  r.delivered_gb = broker.global_billing().delivered_gb();
  r.budget_denied = stats.budget_denied;
  r.slo_met = stats.slo_met;
  r.slo_total = stats.slo_total;
  return r;
}

TEST(CostServiceTest, PerformancePolicyMetersWithoutChangingDecisions) {
  econ::PricingBook book;
  // The same workload with the economics plane fully off...
  const EconRun off = run_broker(book, econ::CostPolicy::kPerformance);
  wkld::World world(kWorldSeed);  // reference run without a pricing book
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  service::Broker bare(&world.internet(), &world.meter(), nullptr, overlays,
                       cfg);
  wkld::SessionChurnParams churn_params;
  churn_params.seed = kWorldSeed ^ 0x5e55;
  churn_params.target_concurrent = 300;
  churn_params.mean_duration_s = 20.0;
  churn_params.horizon = sim::Time::seconds(60);
  wkld::SessionChurn churn(&bare, clients, servers, churn_params);
  churn.start();
  bare.warm_up();
  bare.run_until(churn_params.horizon);
  // Attaching the book under kPerformance changes no decision...
  EXPECT_EQ(off.decision_fp, bare.stats().decision_fingerprint);
  // ...but the ledger observed the traffic (delivered volume includes the
  // zero-rate direct cells; paid USD only when overlays carried traffic).
  EXPECT_GT(off.delivered_gb, 0.0);
  EXPECT_GT(off.slo_total, 0u);
  EXPECT_EQ(off.budget_denied, 0u);
}

TEST(CostServiceTest, MinCostIsCheaperAtNoWorseSloAttainment) {
  econ::PricingBook book;
  const EconRun perf = run_broker(book, econ::CostPolicy::kPerformance);
  const EconRun cheap = run_broker(book, econ::CostPolicy::kMinCostMeetingSlo);
  ASSERT_GT(perf.metered_usd, 0.0);
  EXPECT_LT(cheap.metered_usd, perf.metered_usd);
  // Integer cross-multiplication: attainment no worse, no fp division.
  EXPECT_GE(cheap.slo_met * perf.slo_total, perf.slo_met * cheap.slo_total);
}

TEST(CostServiceTest, BudgetGateDeniesAndNeverOverspends) {
  econ::PricingBook book;
  const EconRun open = run_broker(
      book, econ::CostPolicy::kMaxGoodputUnderBudget, /*budget=*/0.0);
  EXPECT_EQ(open.budget_denied, 0u);  // budget 0 = gate off
  ASSERT_GT(open.metered_usd, 0.0);

  // A tight budget forces denials; denied sessions still get service on
  // the free direct path, and spend drops.
  const EconRun tight = run_broker(
      book, econ::CostPolicy::kMaxGoodputUnderBudget, /*budget=*/0.01);
  EXPECT_GT(tight.budget_denied, 0u);
  EXPECT_LT(tight.metered_usd, open.metered_usd);
  EXPECT_EQ(tight.slo_total, open.slo_total);  // all sessions still admitted
}

TEST(CostServiceTest, MeteringConservesDeliveredVolume) {
  econ::PricingBook book;
  const EconRun r = run_broker(book, econ::CostPolicy::kPerformance);
  // Hop-inflated billed GB can only exceed end-to-end delivered GB.
  EXPECT_GE(r.metered_gb, r.delivered_gb);
  EXPECT_GT(r.delivered_gb, 0.0);
}

using CostShardedTest = ::testing::TestWithParam<econ::CostPolicy>;

TEST_P(CostShardedTest, GlobalBooksBitwiseIdenticalAcrossShardCounts) {
  econ::PricingBook book;
  const econ::CostPolicy policy = GetParam();
  const double budget =
      policy == econ::CostPolicy::kMaxGoodputUnderBudget ? 0.05 : 0.0;
  const EconRun single = run_sharded(book, policy, 1, budget);
  const EconRun sharded = run_sharded(book, policy, 4, budget);
  EXPECT_EQ(single.decision_fp, sharded.decision_fp);
  EXPECT_EQ(single.cost_fp, sharded.cost_fp);
  EXPECT_EQ(single.budget_denied, sharded.budget_denied);
  EXPECT_EQ(single.slo_met, sharded.slo_met);
  EXPECT_EQ(single.slo_total, sharded.slo_total);
  // Doubles on the global ledger are written in global event order, so
  // they are bitwise equal, not merely close.
  EXPECT_EQ(single.metered_usd, sharded.metered_usd);
  EXPECT_EQ(single.delivered_gb, sharded.delivered_gb);
  // And the single broker makes the same decisions (per-pair chains merged
  // by global id) and meters the same books.
  const EconRun plain = run_broker(book, policy, budget);
  EXPECT_EQ(plain.partial_fp, single.decision_fp);
  EXPECT_EQ(plain.cost_fp, single.cost_fp);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CostShardedTest,
    ::testing::Values(econ::CostPolicy::kPerformance,
                      econ::CostPolicy::kMaxGoodputUnderBudget,
                      econ::CostPolicy::kMinCostMeetingSlo,
                      econ::CostPolicy::kPareto),
    [](const ::testing::TestParamInfo<econ::CostPolicy>& info) {
      return econ::cost_policy_name(info.param);
    });

TEST(CostShardedTest, PerShardBooksSumToGlobalLedger) {
  econ::PricingBook book;
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.ranking.econ.pricing = &book;
  service::ShardedBroker broker(&world.internet(), &world.meter(), nullptr,
                                overlays, 4, cfg);
  wkld::SessionChurnParams churn_params;
  churn_params.seed = kWorldSeed ^ 0x5e55;
  churn_params.target_concurrent = 300;
  churn_params.mean_duration_s = 20.0;
  churn_params.horizon = sim::Time::seconds(60);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();
  broker.run_until(churn_params.horizon);
  broker.settle_billing();

  double usd = 0.0, gb = 0.0, delivered = 0.0;
  for (int s = 0; s < broker.num_shards(); ++s) {
    usd += broker.shard_sessions(s).billing().total_usd();
    gb += broker.shard_sessions(s).billing().total_gb();
    delivered += broker.shard_sessions(s).billing().delivered_gb();
  }
  ASSERT_GT(broker.global_billing().total_usd(), 0.0);
  EXPECT_NEAR(usd, broker.global_billing().total_usd(),
              1e-9 * broker.global_billing().total_usd());
  EXPECT_NEAR(gb, broker.global_billing().total_gb(),
              1e-9 * broker.global_billing().total_gb());
  EXPECT_NEAR(delivered, broker.global_billing().delivered_gb(),
              1e-9 * broker.global_billing().delivered_gb());
}

}  // namespace
}  // namespace cronets
