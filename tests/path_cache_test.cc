// The interning PathCache's contract: cached paths are structurally equal
// to fresh expansions across an endpoint mesh, pointer-stable, dropped on
// topology mutation, and deterministic under concurrent hammering. Also
// pins the fast FlowModel::sample(PathRef) overload to the generic sampler
// bit for bit — including after transient events invalidate the
// precomputed aggregates.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "model/flow_model.h"
#include "topo/internet.h"
#include "wkld/world.h"

namespace cronets {
namespace {

void expect_same_path(const topo::RouterPath& a, const topo::RouterPath& b) {
  ASSERT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.routers, b.routers);
  EXPECT_EQ(a.as_seq, b.as_seq);
  ASSERT_EQ(a.traversals.size(), b.traversals.size());
  for (std::size_t i = 0; i < a.traversals.size(); ++i) {
    EXPECT_EQ(a.traversals[i].link_id, b.traversals[i].link_id);
    EXPECT_EQ(a.traversals[i].forward, b.traversals[i].forward);
  }
}

std::vector<int> mesh_endpoints(wkld::World& world) {
  std::vector<int> eps = world.make_web_clients(5);
  for (int s : world.make_servers()) eps.push_back(s);
  for (int o : world.rent_paper_overlays()) eps.push_back(o);
  return eps;
}

TEST(PathCache, CachedEqualsFreshOverEndpointMesh) {
  wkld::World world(7);
  const std::vector<int> eps = mesh_endpoints(world);
  for (int src : eps) {
    for (int dst : eps) {
      if (src == dst) continue;
      const topo::PathRef cached = world.internet().cached_path(src, dst);
      const topo::RouterPath fresh = world.internet().path(src, dst);
      expect_same_path(*cached, fresh);
    }
  }
  auto& cache = world.internet().path_cache();
  EXPECT_EQ(cache.size(), cache.misses());
}

TEST(PathCache, RepeatLookupsInternOneObjectAndCountHits) {
  wkld::World world(7);
  auto& net = world.internet();
  const std::vector<int> eps = mesh_endpoints(world);
  const int src = eps.front(), dst = eps.back();

  auto& cache = net.path_cache();
  const std::uint64_t h0 = cache.hits(), m0 = cache.misses();
  const topo::PathRef first = net.cached_path(src, dst);
  EXPECT_EQ(cache.misses(), m0 + 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(net.cached_path(src, dst).get(), first.get());
  }
  EXPECT_EQ(cache.hits(), h0 + 10);

  // Distinct ordered pairs intern distinct objects (forward != reverse).
  EXPECT_NE(net.cached_path(dst, src).get(), first.get());
}

TEST(PathCache, AdjacencyChangeInvalidatesAndRefsStayUsable) {
  wkld::World world(7);
  auto& net = world.internet();
  const std::vector<int> eps = mesh_endpoints(world);
  const int src = eps.front(), dst = eps.back();

  const topo::PathRef before = net.cached_path(src, dst);
  ASSERT_TRUE(before->valid);
  ASSERT_GE(before->as_seq.size(), 2u);

  // Fail a BGP session on the cached route; the interned mesh must drop.
  ASSERT_TRUE(net.set_adjacency_up(before->as_seq[0], before->as_seq[1], false));
  EXPECT_EQ(net.path_cache().size(), 0u);

  const topo::PathRef after = net.cached_path(src, dst);
  EXPECT_NE(after.get(), before.get());
  expect_same_path(*after, net.path(src, dst));
  // The stale ref still points at intact (pre-failure) data.
  EXPECT_TRUE(before->valid);

  ASSERT_TRUE(net.set_adjacency_up(before->as_seq[0], before->as_seq[1], true));
  expect_same_path(*net.cached_path(src, dst), *before);
}

TEST(PathCache, ConcurrentLookupsInternExactlyOneObjectPerPair) {
  wkld::World world(7);
  auto& net = world.internet();
  const std::vector<int> eps = mesh_endpoints(world);

  std::vector<std::pair<int, int>> pairs;
  for (int src : eps)
    for (int dst : eps)
      if (src != dst) pairs.emplace_back(src, dst);

  constexpr int kThreads = 4;
  std::vector<std::vector<const topo::RouterPath*>> seen(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Offset start so threads race on different pairs' first-inserts.
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto& [src, dst] = pairs[(i + w * 17) % pairs.size()];
        net.cached_path(src, dst);
      }
      for (const auto& [src, dst] : pairs) {
        seen[w].push_back(net.cached_path(src, dst).get());
      }
    });
  }
  for (auto& t : workers) t.join();

  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(seen[w], seen[0]);  // one interned object per pair, all threads
  }
  EXPECT_EQ(net.path_cache().size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expect_same_path(*net.cached_path(pairs[i].first, pairs[i].second),
                     net.path(pairs[i].first, pairs[i].second));
  }
}

TEST(PathCache, FlapStormWithListenerChurnKeepsCacheConsistent) {
  // A chaos-style flap storm: adjacencies bounce rapidly while mutation
  // listeners subscribe and unsubscribe mid-storm. The cache must drop its
  // interned mesh on every adjacency change, the epoch must advance
  // monotonically, and listeners must see exactly the mutations delivered
  // while they were subscribed.
  wkld::World world(7);
  auto& net = world.internet();
  const std::vector<int> eps = mesh_endpoints(world);

  // Flap targets: the first transit adjacencies of a few live routes.
  std::vector<std::pair<int, int>> flaps;
  for (std::size_t i = 0; i + 1 < eps.size() && flaps.size() < 3; i += 2) {
    const topo::PathRef p = net.cached_path(eps[i], eps[i + 1]);
    if (!p->valid || p->as_seq.size() < 2) continue;
    const std::pair<int, int> adj{p->as_seq[0], p->as_seq[1]};
    if (std::find(flaps.begin(), flaps.end(), adj) == flaps.end()) {
      flaps.push_back(adj);
    }
  }
  ASSERT_GE(flaps.size(), 2u);

  int early_seen = 0, late_seen = 0;
  const int early = net.add_mutation_listener(
      [&](const topo::Mutation& m) {
        EXPECT_EQ(m.kind, topo::Mutation::Kind::kAdjacencyChange);
        ++early_seen;
      });
  int late = -1;

  std::uint64_t last_epoch = net.mutation_epoch();
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& [a, b] : flaps) {
      ASSERT_TRUE(net.set_adjacency_up(a, b, false));
      EXPECT_EQ(net.path_cache().size(), 0u);  // mesh dropped synchronously
      EXPECT_GT(net.mutation_epoch(), last_epoch);
      last_epoch = net.mutation_epoch();
      ASSERT_TRUE(net.set_adjacency_up(a, b, true));
      EXPECT_GT(net.mutation_epoch(), last_epoch);
      last_epoch = net.mutation_epoch();
    }
    // Listener churn mid-storm: the early listener leaves halfway, a late
    // one joins — neither unsubscription nor subscription may be missed.
    if (round == kRounds / 2 - 1) {
      net.remove_mutation_listener(early);
      late = net.add_mutation_listener(
          [&](const topo::Mutation& m) {
            EXPECT_EQ(m.kind, topo::Mutation::Kind::kAdjacencyChange);
            ++late_seen;
          });
    }
    // Mid-storm queries re-intern against the current routing state.
    const topo::PathRef q = net.cached_path(eps.front(), eps.back());
    expect_same_path(*q, net.path(eps.front(), eps.back()));
  }
  if (late >= 0) net.remove_mutation_listener(late);

  const int per_round = 2 * static_cast<int>(flaps.size());
  EXPECT_EQ(early_seen, per_round * (kRounds / 2));
  EXPECT_EQ(late_seen, per_round * (kRounds - kRounds / 2));

  // Storm over: every adjacency restored, cache rebuilds to fresh routes.
  for (int src : eps) {
    for (int dst : eps) {
      if (src == dst) continue;
      expect_same_path(*net.cached_path(src, dst), net.path(src, dst));
    }
  }
}

void expect_same_metrics(const model::PathMetrics& a, const model::PathMetrics& b) {
  // Exact comparison on purpose: the fast path must be bitwise identical.
  EXPECT_EQ(a.rtt_ms, b.rtt_ms);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.residual_bps, b.residual_bps);
  EXPECT_EQ(a.capacity_bps, b.capacity_bps);
  EXPECT_EQ(a.hop_count, b.hop_count);
}

TEST(PathAggregates, FastSampleMatchesGenericBitwise) {
  wkld::World world(11);
  const std::vector<int> eps = mesh_endpoints(world);
  for (int src : eps) {
    for (int dst : eps) {
      if (src == dst) continue;
      const topo::PathRef p = world.internet().cached_path(src, dst);
      for (const sim::Time t :
           {sim::Time::minutes(7), sim::Time::hours(3), sim::Time::hours(25)}) {
        expect_same_metrics(world.flow().sample(p, t), world.flow().sample(*p, t));
      }
    }
  }
}

TEST(PathAggregates, TransientEventInvalidatesAggregates) {
  wkld::World world(11);
  auto& net = world.internet();
  const std::vector<int> eps = mesh_endpoints(world);
  const int src = eps.front(), dst = eps.back();
  const sim::Time t = sim::Time::hours(2);

  const topo::PathRef p = net.cached_path(src, dst);
  const model::PathMetrics calm = world.flow().sample(p, t);
  expect_same_metrics(calm, world.flow().sample(*p, t));

  // Saturate the first traversed link inside a window covering t; the
  // precomputed aggregates (which carry per-link event lists) must rebuild.
  topo::LinkEvent ev;
  ev.link_id = p->traversals.front().link_id;
  ev.forward = p->traversals.front().forward;
  ev.from = sim::Time::hours(1);
  ev.until = sim::Time::hours(3);
  ev.util_boost = 0.5;
  net.add_event(ev);

  const model::PathMetrics hot = world.flow().sample(p, t);
  expect_same_metrics(hot, world.flow().sample(*p, t));
  EXPECT_GT(hot.loss, calm.loss);
  EXPECT_LT(hot.residual_bps, calm.residual_bps);

  // Outside the window the event contributes nothing.
  expect_same_metrics(world.flow().sample(p, sim::Time::hours(4)),
                      world.flow().sample(*p, sim::Time::hours(4)));
}

}  // namespace
}  // namespace cronets
