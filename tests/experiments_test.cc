// Shape tests for the experiment layer: small worlds, loose thresholds —
// these guard the headline phenomena the figure benches report, without
// pinning exact calibration numbers.

#include <gtest/gtest.h>

#include "wkld/experiments.h"

namespace cronets::wkld {
namespace {

topo::TopologyParams small_params(std::uint64_t seed = 42) {
  topo::TopologyParams p;
  p.seed = seed;
  p.num_tier1 = 8;
  p.num_tier2 = 24;
  p.num_stubs = 80;
  return p;
}

TEST(WorldTest, PopulationsMatchPaperMix) {
  World world(42, small_params());
  const auto web = world.make_web_clients(110);
  EXPECT_EQ(web.size(), 110u);
  const auto servers = world.make_servers();
  EXPECT_EQ(servers.size(), 10u);
  const auto ctl = world.make_controlled_clients(50);
  EXPECT_EQ(ctl.size(), 50u);
  // Region mix of web clients ~ PlanetLab (48 EU of 110).
  int eu = 0;
  for (int ep : web) {
    if (world.internet().endpoint(ep).region == topo::Region::kEurope) ++eu;
  }
  EXPECT_NEAR(eu, 48, 3);
}

TEST(WorldTest, PaperOverlaysAreTheFiveDcs) {
  World world(42, small_params());
  const auto overlays = world.rent_paper_overlays();
  ASSERT_EQ(overlays.size(), 5u);
  EXPECT_EQ(world.internet().endpoint(overlays[0]).name, "vm-wdc");
  EXPECT_EQ(world.internet().endpoint(overlays[4]).name, "vm-tok");
}

TEST(ControlledExperiment, StructureAndHeadlineShape) {
  World world(42, small_params());
  const auto exp = run_controlled_experiment(world, 20);
  // 20 clients x 5 senders = 100 measurements, 4 overlays each.
  EXPECT_EQ(exp.samples.size(), 100u);
  int improved = 0, valid = 0;
  for (const auto& s : exp.samples) {
    EXPECT_EQ(s.overlays.size(), 4u);
    if (s.direct_bps <= 0) continue;
    ++valid;
    improved += s.best_split_bps() > s.direct_bps;
  }
  ASSERT_GT(valid, 80);
  // The headline: a clear majority of paths improve via the best split
  // overlay (paper: 74%).
  const double frac = static_cast<double>(improved) / valid;
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.97);
}

TEST(WebExperiment, SenderKindDoesNotFlipTheResult) {
  // §III-B: cloud-hosted senders vs Internet servers give similar CDFs.
  World w1(42, small_params());
  const auto web = run_web_experiment(w1, 20);
  World w2(42, small_params());
  const auto ctl = run_controlled_experiment(w2, 20);
  auto improved_fraction = [](const std::vector<core::PairSample>& v) {
    int imp = 0, n = 0;
    for (const auto& s : v) {
      if (s.direct_bps <= 0) continue;
      ++n;
      imp += s.best_split_bps() > s.direct_bps;
    }
    return static_cast<double>(imp) / n;
  };
  EXPECT_NEAR(improved_fraction(web.samples), improved_fraction(ctl.samples), 0.25);
}

TEST(Longitudinal, RankingEventRecoversInFollowUp) {
  World world(42, small_params());
  const auto pipe = run_longitudinal_pipeline(world, 10, 6);
  ASSERT_EQ(pipe.study.pairs.size(), 10u);
  EXPECT_GE(pipe.event_victim, 0);
  // Pairs are sorted by ranking improvement, descending.
  for (std::size_t i = 1; i < pipe.study.pairs.size(); ++i) {
    EXPECT_GE(pipe.study.pairs[i - 1].ranking_improvement,
              pipe.study.pairs[i].ranking_improvement);
  }
  // The event victim's pairs rank near the top and recover afterwards.
  bool victim_ranked = false;
  for (std::size_t i = 0; i < 4 && i < pipe.study.pairs.size(); ++i) {
    const auto& p = pipe.study.pairs[i];
    if (p.dst != pipe.event_victim) continue;
    victim_ranked = true;
    double weekly_direct = 0;
    for (double v : p.history.direct) weekly_direct += v;
    weekly_direct /= static_cast<double>(p.history.direct.size());
    double best = 0;
    for (double v : p.best_split_series) best += v;
    best /= static_cast<double>(p.best_split_series.size());
    EXPECT_LT(best / weekly_direct, p.ranking_improvement / 3.0)
        << "weekly ratio should collapse vs ranking-time ratio";
  }
  EXPECT_TRUE(victim_ranked);
}

TEST(Longitudinal, HistoriesAreComplete) {
  World world(7, small_params(7));
  const auto pipe = run_longitudinal_pipeline(world, 5, 8);
  for (const auto& p : pipe.study.pairs) {
    EXPECT_EQ(p.history.direct.size(), 8u);
    EXPECT_EQ(p.history.overlay.size(), 8u);
    EXPECT_EQ(p.history.direct_rtt_ms.size(), 8u);
    EXPECT_EQ(p.history.overlay_rtt_ms.size(), 8u);
    EXPECT_EQ(p.best_split_series.size(), 8u);
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_EQ(p.history.overlay[t].size(), 4u);
      double best = 0;
      for (double v : p.history.overlay[t]) best = std::max(best, v);
      EXPECT_DOUBLE_EQ(best, p.best_split_series[t]);
    }
  }
}

TEST(Longitudinal, GainsPersistOverTheWeek) {
  World world(42, small_params());
  const auto pipe = run_longitudinal_pipeline(world, 10, 10);
  int persistent = 0;
  for (const auto& p : pipe.study.pairs) {
    double direct = 0, best = 0;
    for (double v : p.history.direct) direct += v;
    for (double v : p.best_split_series) best += v;
    if (best > direct * 1.25) ++persistent;
  }
  // Paper: 90% of top paths stay improved. Loose bound: > 60%.
  EXPECT_GT(persistent, 6);
}

}  // namespace
}  // namespace cronets::wkld
