// The parallel measurement engine's contract: thread count is a pure
// performance knob. Every experiment sweep must produce bitwise-identical
// samples at any parallelism, and a pair's measurement must not depend on
// when — or in what order — other pairs are measured.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/hash_rng.h"
#include "sim/thread_pool.h"
#include "wkld/experiments.h"

namespace cronets {
namespace {

topo::TopologyParams small_params(std::uint64_t seed = 42) {
  topo::TopologyParams p;
  p.seed = seed;
  p.num_tier1 = 8;
  p.num_tier2 = 24;
  p.num_stubs = 80;
  return p;
}

void expect_samples_identical(const std::vector<core::PairSample>& a,
                              const std::vector<core::PairSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src) << i;
    EXPECT_EQ(a[i].dst, b[i].dst) << i;
    EXPECT_EQ(a[i].direct_bps, b[i].direct_bps) << i;
    EXPECT_EQ(a[i].direct_rtt_ms, b[i].direct_rtt_ms) << i;
    EXPECT_EQ(a[i].direct_loss, b[i].direct_loss) << i;
    ASSERT_EQ(a[i].overlays.size(), b[i].overlays.size()) << i;
    for (std::size_t o = 0; o < a[i].overlays.size(); ++o) {
      EXPECT_EQ(a[i].overlays[o].overlay_ep, b[i].overlays[o].overlay_ep);
      EXPECT_EQ(a[i].overlays[o].plain_bps, b[i].overlays[o].plain_bps);
      EXPECT_EQ(a[i].overlays[o].split_bps, b[i].overlays[o].split_bps);
      EXPECT_EQ(a[i].overlays[o].discrete_bps, b[i].overlays[o].discrete_bps);
      EXPECT_EQ(a[i].overlays[o].rtt_ms, b[i].overlays[o].rtt_ms);
      EXPECT_EQ(a[i].overlays[o].loss, b[i].overlays[o].loss);
    }
  }
}

TEST(ParallelEngine, WebExperimentIsThreadCountInvariant) {
  std::vector<int> counts = {1, 2};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 2) counts.push_back(hw);

  std::vector<std::vector<core::PairSample>> runs;
  for (int threads : counts) {
    wkld::World world(42, small_params(), topo::CloudParams{},
                      sim::Parallelism{threads});
    runs.push_back(wkld::run_web_experiment(world, 20).samples);
  }
  for (std::size_t k = 1; k < runs.size(); ++k) {
    expect_samples_identical(runs[0], runs[k]);
  }
}

TEST(ParallelEngine, ControlledAndLongitudinalAreThreadCountInvariant) {
  auto run = [](int threads) {
    wkld::World world(7, small_params(7), topo::CloudParams{},
                      sim::Parallelism{threads});
    return wkld::run_longitudinal_pipeline(world, 8, 6);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  expect_samples_identical(serial.ranking.samples, parallel.ranking.samples);
  ASSERT_EQ(serial.study.pairs.size(), parallel.study.pairs.size());
  for (std::size_t i = 0; i < serial.study.pairs.size(); ++i) {
    const auto& s = serial.study.pairs[i];
    const auto& p = parallel.study.pairs[i];
    EXPECT_EQ(s.src, p.src);
    EXPECT_EQ(s.dst, p.dst);
    EXPECT_EQ(s.history.direct, p.history.direct);
    EXPECT_EQ(s.best_split_series, p.best_split_series);
  }
}

TEST(ParallelEngine, PairSeedingIsSubmissionOrderIndependent) {
  // Measure the same pair set twice — forward and shuffled — in the same
  // world. Per-pair seeding means nothing measured before a pair can
  // perturb it, so each pair's sample matches its twin exactly.
  wkld::World world(13, small_params(13));
  const auto clients = world.make_controlled_clients(12);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  const sim::Time at = sim::Time::hours(2);

  std::vector<std::pair<int, int>> pairs;
  for (int s : servers) {
    for (int c : clients) pairs.emplace_back(s, c);
  }
  std::vector<std::size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 shuffler(99);
  std::vector<std::size_t> shuffled = order;
  std::shuffle(shuffled.begin(), shuffled.end(), shuffler);
  ASSERT_NE(shuffled, order);

  std::vector<core::PairSample> forward(pairs.size()), scrambled(pairs.size());
  for (std::size_t i : order) {
    forward[i] = world.meter().measure(pairs[i].first, pairs[i].second, overlays, at);
  }
  for (std::size_t i : shuffled) {
    scrambled[i] =
        world.meter().measure(pairs[i].first, pairs[i].second, overlays, at);
  }
  expect_samples_identical(forward, scrambled);
}

TEST(ParallelEngine, DistinctPairsGetDistinctNoise) {
  // Seed separation sanity: different (src, dst, t) must not collapse onto
  // one stream.
  EXPECT_NE(sim::pair_seed(42, 1, 2, 100), sim::pair_seed(42, 2, 1, 100));
  EXPECT_NE(sim::pair_seed(42, 1, 2, 100), sim::pair_seed(42, 1, 2, 101));
  EXPECT_NE(sim::pair_seed(42, 1, 2, 100), sim::pair_seed(43, 1, 2, 100));
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  sim::ThreadPool pool(sim::Parallelism{4});
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  sim::ThreadPool pool(sim::Parallelism{3});
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
    ASSERT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, PropagatesBodyExceptions) {
  sim::ThreadPool pool(sim::Parallelism{4});
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 33) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable after a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

TEST(Parallelism, ResolvesToAtLeastOneThread) {
  EXPECT_EQ(sim::Parallelism{3}.resolved(), 3);
  EXPECT_GE(sim::Parallelism{}.resolved(), 1);
}

}  // namespace
}  // namespace cronets
