// The vectorized measurement kernels' contract: CRONETS_SIMD is a pure
// performance knob. Every ISA level (AVX2 on x86-64, NEON on aarch64, the
// portable scalar reference) must produce bitwise identical AR(1)
// innovation lanes, PFTK throughputs, and end-to-end batched samples — at
// every horizon, array length (including ragged SIMD tails), and loss
// regime (the branch-turned-blend).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "model/batch_sampler.h"
#include "model/flow_model.h"
#include "model/simd/dispatch.h"
#include "sim/hash_rng.h"
#include "wkld/world.h"

namespace cronets {
namespace {

using model::simd::Level;

std::vector<Level> wide_levels() {
  std::vector<Level> out;
  for (Level l : {Level::kAvx2, Level::kNeon}) {
    if (model::simd::level_available(l)) out.push_back(l);
  }
  return out;
}

TEST(SimdDispatch, ActiveLevelIsAvailable) {
  EXPECT_TRUE(model::simd::level_available(model::simd::active_level()));
  EXPECT_TRUE(model::simd::level_available(Level::kScalar));
}

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ("scalar", model::simd::level_name(Level::kScalar));
  EXPECT_STREQ("avx2", model::simd::level_name(Level::kAvx2));
  EXPECT_STREQ("neon", model::simd::level_name(Level::kNeon));
}

TEST(SimdAr1, MatchesScalarReferenceAtEveryHorizon) {
  const auto levels = wide_levels();
  if (levels.empty()) GTEST_SKIP() << "no wide SIMD level on this machine";
  // Streams and epochs spanning small, huge, and sign-wrapped values; every
  // horizon 1..64 exercises each possible ragged tail.
  const std::uint64_t streams[] = {0u, 1u, 0x9e3779b97f4a7c15ull,
                                   0xffffffffffffffffull, 12345678901234ull};
  const std::int64_t epochs[] = {0, 1, -3, 1'000'000'007, -987654321012345678};
  for (const Level level : levels) {
    for (const std::uint64_t stream : streams) {
      for (const std::int64_t n : epochs) {
        for (int horizon = 1; horizon <= 64; ++horizon) {
          double ref[64], got[64];
          model::simd::ar1_innovations(Level::kScalar, stream, n, horizon, ref);
          model::simd::ar1_innovations(level, stream, n, horizon, got);
          for (int j = 0; j < horizon; ++j) {
            ASSERT_EQ(ref[j], got[j])
                << model::simd::level_name(level) << " stream=" << stream
                << " n=" << n << " horizon=" << horizon << " j=" << j;
          }
          // And against the hash primitives directly.
          for (int j = 0; j < horizon; ++j) {
            ASSERT_EQ(sim::hash_centered(sim::hash_combine(
                          stream, static_cast<std::uint64_t>(n - j))),
                      got[j]);
          }
        }
      }
    }
  }
}

TEST(SimdAr1, GroupedWeightedSumsMatchScalarFoldExactly) {
  // The grouped fold (four fields per kernel call, one lane each) must
  // reproduce the plain per-field scalar fold bit-for-bit: zero-padded
  // weight rows past a lane's horizon contribute exact +/-0.0 adds, and
  // lane order never mixes fields. Exercised with mixed horizons per
  // group, short tail groups (nf 1..4), and every available level.
  sim::Rng rng(11);
  const std::uint64_t streams[] = {3u, 0x9e3779b97f4a7c15ull, 77777777777ull,
                                   0xfedcba9876543210ull};
  const std::int64_t ns[] = {5, -2, 123456789, 0};
  for (int nf = 1; nf <= 4; ++nf) {
    for (const int base_h : {1, 7, 31, 64}) {
      int horizons[4];
      int maxh = 0;
      for (int k = 0; k < 4; ++k) {
        // Mixed horizons: base, then progressively shorter lanes.
        horizons[k] = std::max(1, base_h - 9 * k);
        if (k < nf) maxh = std::max(maxh, horizons[k]);
      }
      // Lane-transposed weight matrix, zero-padded past each horizon.
      std::vector<double> wt(4 * static_cast<std::size_t>(maxh), 0.0);
      std::vector<std::vector<double>> w(4);
      for (int k = 0; k < 4; ++k) {
        double wk = 1.0;
        const double a = 0.5 + 0.49 * rng.uniform();
        for (int j = 0; j < horizons[k]; ++j) {
          w[k].push_back(wk);
          if (j < maxh) wt[4 * static_cast<std::size_t>(j) + k] = wk;
          wk *= a;
        }
      }
      double ref[4], got[4];
      model::simd::ar1_weighted_sums(Level::kScalar, nf, streams, ns, horizons,
                                     wt.data(), maxh, ref);
      // Scalar reference recomputed from first principles.
      for (int k = 0; k < nf; ++k) {
        double acc = 0.0;
        for (int j = 0; j < horizons[k]; ++j) {
          acc += w[k][static_cast<std::size_t>(j)] *
                 sim::hash_centered(sim::hash_combine(
                     streams[k], static_cast<std::uint64_t>(ns[k] - j)));
        }
        ASSERT_EQ(acc, ref[k]) << "nf=" << nf << " base_h=" << base_h
                               << " k=" << k;
      }
      for (const Level level : wide_levels()) {
        model::simd::ar1_weighted_sums(level, nf, streams, ns, horizons,
                                       wt.data(), maxh, got);
        for (int k = 0; k < nf; ++k) {
          ASSERT_EQ(ref[k], got[k])
              << model::simd::level_name(level) << " nf=" << nf
              << " base_h=" << base_h << " k=" << k;
        }
      }
    }
  }
}

TEST(SimdPftk, MatchesScalarFunctionAcrossLossRegimes) {
  const auto levels = wide_levels();
  if (levels.empty()) GTEST_SKIP() << "no wide SIMD level on this machine";
  model::TcpModelParams p;
  // Deterministic inputs straddling every branch: zero loss (the blend's
  // sentinel side), sub-gate loss, heavy loss, slow and fast RTTs, and
  // capacity- vs window-bound paths.
  std::vector<double> rtt_ms, loss, residual, capacity, rwnd;
  sim::Rng rng(7);
  const double loss_grid[] = {0.0, 1e-12, 1e-9, 2e-9, 1e-4, 0.01, 0.2};
  for (int i = 0; i < 259; ++i) {  // odd length: exercises ragged tails
    rtt_ms.push_back(0.05 + 400.0 * rng.uniform());
    loss.push_back(loss_grid[i % 7] * (0.5 + rng.uniform()));
    residual.push_back(1e6 + 1e9 * rng.uniform());
    capacity.push_back(1e6 + 1e10 * rng.uniform());
    rwnd.push_back(64e3 + 8e6 * rng.uniform());
  }
  for (const Level level : levels) {
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{4}, std::size_t{5}, std::size_t{7},
                          std::size_t{8}, rtt_ms.size()}) {
      std::vector<double> got(n), ref(n);
      model::pftk_throughput_batch(level, n, rtt_ms.data(), loss.data(),
                                   residual.data(), capacity.data(),
                                   rwnd.data(), p, got.data());
      model::pftk_throughput_batch(Level::kScalar, n, rtt_ms.data(),
                                   loss.data(), residual.data(),
                                   capacity.data(), rwnd.data(), p, ref.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ref[i], got[i])
            << model::simd::level_name(level) << " n=" << n << " i=" << i
            << " loss=" << loss[i];
        // The scalar function itself (with the per-element rwnd override).
        model::TcpModelParams pi = p;
        pi.rwnd_bytes = rwnd[i];
        ASSERT_EQ(model::pftk_throughput_bps(rtt_ms[i], loss[i], residual[i],
                                             capacity[i], pi),
                  got[i]);
      }
    }
  }
}

TEST(SimdBatchSampler, EndToEndSamplesMatchScalarLevel) {
  const auto levels = wide_levels();
  if (levels.empty()) GTEST_SKIP() << "no wide SIMD level on this machine";
  topo::TopologyParams tp;
  tp.seed = 42;
  tp.num_tier1 = 8;
  tp.num_tier2 = 24;
  tp.num_stubs = 80;
  wkld::World world(42, tp);
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  std::vector<topo::PathRef> paths;
  for (int s : servers) {
    for (int c : clients) paths.push_back(world.internet().cached_path(s, c));
  }
  for (const Level level : levels) {
    model::BatchSampler scalar_s(&world.flow(), Level::kScalar);
    model::BatchSampler simd_s(&world.flow(), level);
    EXPECT_EQ(level, simd_s.simd_level());
    std::vector<int> hs, hv;
    for (const auto& p : paths) {
      hs.push_back(scalar_s.intern(p));
      hv.push_back(simd_s.intern(p));
    }
    std::vector<model::PathMetrics> ms(paths.size()), mv(paths.size());
    for (int step = 0; step < 5; ++step) {
      const sim::Time t = sim::Time::seconds(step * 17);
      scalar_s.sample_batch(hs.data(), hs.size(), t, ms.data());
      simd_s.sample_batch(hv.data(), hv.size(), t, mv.data());
      for (std::size_t i = 0; i < paths.size(); ++i) {
        ASSERT_EQ(ms[i].rtt_ms, mv[i].rtt_ms) << i;
        ASSERT_EQ(ms[i].loss, mv[i].loss) << i;
        ASSERT_EQ(ms[i].residual_bps, mv[i].residual_bps) << i;
        ASSERT_EQ(ms[i].capacity_bps, mv[i].capacity_bps) << i;
      }
    }
  }
}

}  // namespace
}  // namespace cronets
