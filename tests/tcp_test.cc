#include <gtest/gtest.h>

#include "testutil.h"
#include "transport/apps.h"
#include "transport/tcp.h"

namespace cronets::transport {
namespace {

using cronets::testutil::Dumbbell;
using cronets::testutil::mk_link;
using sim::Time;

TEST(TcpHandshake, EstablishesBothSides) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  bool server_up = false;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_connected([&] { server_up = true; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool client_up = false;
  client.set_on_connected([&] { client_up = true; });
  client.connect();
  d.simv.run_until(Time::seconds(2));
  EXPECT_TRUE(client_up);
  EXPECT_TRUE(server_up);
  EXPECT_TRUE(client.established());
}

TEST(TcpTransfer, DeliversExactByteCount) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  std::int64_t received = 0;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_data([&](std::int64_t n, std::uint64_t) { received += n; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.app_write(1'000'000); });
  client.connect();
  d.simv.run_until(Time::seconds(10));
  EXPECT_EQ(received, 1'000'000);
}

TEST(TcpTransfer, CleanCloseBothDirections) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  bool server_saw_close = false;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_peer_closed([&] { server_saw_close = true; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool closed = false;
  client.set_on_closed([&] { closed = true; });
  client.set_on_connected([&] {
    client.app_write(50'000);
    client.close();
  });
  client.connect();
  d.simv.run_until(Time::seconds(10));
  EXPECT_TRUE(server_saw_close);
  // Our close completes when the passive side also closes; the listener
  // connection stays half-open (server never closes), so client should be
  // in FinWait with all data acked.
  EXPECT_TRUE(closed || client.state() == TcpConnection::State::kFinWait);
  EXPECT_EQ(client.stats().bytes_acked, 50'000u);
}

TEST(TcpTransfer, FileServerDownloadCompletes) {
  Dumbbell d;
  TcpConfig cfg;
  FileServer server(d.b, 80, 500'000, cfg);
  FileDownloader down(d.a, 1234, d.b->addr(), 80, cfg);
  down.start(&d.simv);
  d.simv.run_until(Time::seconds(30));
  EXPECT_TRUE(down.done());
  EXPECT_EQ(down.bytes(), 500'000u);
  EXPECT_GT(down.goodput_bps(), 0.0);
}

TEST(TcpThroughput, SaturatesCleanBottleneck) {
  // 100 Mbps bottleneck, 20 ms RTT, no loss: bulk TCP should reach >80%.
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(100e6, Time::milliseconds(10)));
  TcpConfig cfg;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(10));
  const double bps = sink.bytes_received() * 8.0 / 10.0;
  EXPECT_GT(bps, 80e6);
  EXPECT_LT(bps, 100e6);
}

TEST(TcpThroughput, RttLimitsWindowBoundFlow) {
  // Tiny receive buffer: throughput == rwnd / RTT.
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(1e9, Time::milliseconds(49)));  // RTT = 100 ms
  TcpConfig cfg;
  cfg.rcv_buf = 128 * 1024;  // 128 KB / 100 ms ~ 10.5 Mbps
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(20));
  const double bps = sink.bytes_received() * 8.0 / 20.0;
  EXPECT_NEAR(bps, 128.0 * 1024 * 8 / 0.1, 2.5e6);
}

TEST(TcpLoss, RecoversViaFastRetransmit) {
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(100e6, Time::milliseconds(10), /*util=*/0.0,
                     /*loss=*/0.002));
  TcpConfig cfg;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(20));
  EXPECT_GT(sink.bytes_received(), 10'000'000u);  // still makes progress
  EXPECT_GT(src.connection().stats().fast_retx_count, 0u);
  EXPECT_GT(src.connection().stats().bytes_retransmitted, 0u);
}

TEST(TcpLoss, SurvivesHeavyLossViaRto) {
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(10e6, Time::milliseconds(40), 0.0, /*loss=*/0.05));
  TcpConfig cfg;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(30));
  EXPECT_GT(sink.bytes_received(), 100'000u);
  EXPECT_GT(src.connection().stats().rto_count, 0u);
}

TEST(TcpStats, RetransmissionRateTracksLinkLoss) {
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(100e6, Time::milliseconds(10), 0.0, /*loss=*/0.01));
  TcpConfig cfg;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(30));
  const double rate = src.connection().stats().retransmission_rate();
  EXPECT_GT(rate, 0.004);
  EXPECT_LT(rate, 0.05);
}

TEST(TcpStats, AvgRttReflectsPathDelay) {
  Dumbbell d(mk_link(1e9, Time::milliseconds(5)),
             mk_link(1e9, Time::milliseconds(45)));  // base RTT 100 ms
  TcpConfig cfg;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(10));
  const double rtt = src.connection().stats().avg_rtt_ms();
  EXPECT_GT(rtt, 95.0);
  EXPECT_LT(rtt, 160.0);  // queueing + delayed acks may inflate
}

TEST(TcpFlowControl, ZeroWindowBackpressureAndReopen) {
  Dumbbell d;
  TcpConfig cfg;
  cfg.rcv_buf = 64 * 1024;
  TcpListener listener(d.b, 80, cfg);
  TcpConnection* server_conn = nullptr;
  std::int64_t delivered = 0;
  listener.set_on_accept([&](TcpConnection& c) {
    server_conn = &c;
    c.set_auto_consume(false);
    c.set_on_data([&](std::int64_t n, std::uint64_t) { delivered += n; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.app_write(1'000'000); });
  client.connect();
  d.simv.run_until(Time::seconds(5));
  // Receiver never consumed: at most one buffer's worth delivered.
  EXPECT_LE(delivered, 64 * 1024);
  EXPECT_GT(delivered, 0);
  const std::int64_t stalled = delivered;
  // Consume everything: window reopens and transfer continues.
  ASSERT_NE(server_conn, nullptr);
  std::int64_t consumed = stalled;
  server_conn->app_consume(stalled);
  server_conn->set_on_data([&](std::int64_t n, std::uint64_t) {
    delivered += n;
    consumed += n;
    server_conn->app_consume(n);
  });
  d.simv.run_until(Time::seconds(60));
  EXPECT_EQ(delivered, 1'000'000);
}

TEST(TcpFailure, ConsecutiveRtosFailConnection) {
  // Server host exists but sink port is never bound -> SYN black-holed.
  Dumbbell d;
  TcpConfig cfg;
  cfg.max_consecutive_rtos = 3;
  cfg.rto_initial = Time::milliseconds(100);
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool failed = false;
  client.set_on_failed([&] { failed = true; });
  client.connect();
  d.simv.run_until(Time::seconds(30));
  EXPECT_TRUE(failed);
  EXPECT_TRUE(client.failed());
}

TEST(TcpCubic, GrowsBeyondRenoOnLongFatPath) {
  // Sanity: cubic reaches high utilization on a 200ms, 100 Mbps path.
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(100e6, Time::milliseconds(99)));
  TcpConfig cfg;
  cfg.cc = CubicCc::factory();
  cfg.rcv_buf = 16 * 1024 * 1024;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(30));
  // HyStart caps the initial burst; cubic then probes upward with its
  // characteristic ~K-second plateau, so the 30 s average sits well below
  // link rate but far above what Reno's 1 MSS/RTT growth could reach.
  const double bps = sink.bytes_received() * 8.0 / 30.0;
  EXPECT_GT(bps, 40e6);
  EXPECT_EQ(src.connection().stats().rto_count, 0u);
}

TEST(TcpDelack, AckCountStaysWellBelowDataCount) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  TcpConnection* server_conn = nullptr;
  listener.set_on_accept([&](TcpConnection& c) { server_conn = &c; });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.app_write(2'000'000); });
  client.connect();
  d.simv.run_until(Time::seconds(10));
  ASSERT_NE(server_conn, nullptr);
  // Delayed acks: server sends roughly one ack per two data segments.
  EXPECT_LT(server_conn->stats().segs_sent,
            client.stats().segs_sent * 3 / 4);
}

}  // namespace
}  // namespace cronets::transport
