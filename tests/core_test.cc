#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/measure_model.h"
#include "core/measure_packet.h"
#include "core/overlay.h"
#include "core/selection.h"
#include "wkld/world.h"

namespace cronets::core {
namespace {

using sim::Time;

topo::TopologyParams small_params() {
  topo::TopologyParams p;
  p.seed = 21;
  p.num_tier1 = 6;
  p.num_tier2 = 14;
  p.num_stubs = 40;
  return p;
}

TEST(Overlay, RentNodesByDcName) {
  topo::Internet net(small_params(), topo::CloudParams{});
  OverlayNetwork overlay(&net);
  const OverlayNode n1 = overlay.rent("wdc");
  const OverlayNode n2 = overlay.rent("tok", tunnel::TunnelMode::kIpsec);
  EXPECT_EQ(n1.dc_name, "wdc");
  EXPECT_EQ(n2.mode, tunnel::TunnelMode::kIpsec);
  EXPECT_EQ(overlay.endpoints().size(), 2u);
  EXPECT_NE(n1.endpoint, n2.endpoint);
}

TEST(ModelMeasurement, PairSampleAggregates) {
  PairSample s;
  s.direct_bps = 10e6;
  s.overlays = {
      OverlaySample{.overlay_ep = 1, .plain_bps = 5e6, .split_bps = 12e6,
                    .discrete_bps = 13e6, .rtt_ms = 120, .loss = 0.01},
      OverlaySample{.overlay_ep = 2, .plain_bps = 8e6, .split_bps = 25e6,
                    .discrete_bps = 26e6, .rtt_ms = 90, .loss = 0.002},
  };
  EXPECT_DOUBLE_EQ(s.best_plain_bps(), 8e6);
  EXPECT_DOUBLE_EQ(s.best_split_bps(), 25e6);
  EXPECT_DOUBLE_EQ(s.best_discrete_bps(), 26e6);
  EXPECT_DOUBLE_EQ(s.min_overlay_rtt_ms(), 90.0);
  EXPECT_DOUBLE_EQ(s.min_overlay_loss(), 0.002);
  EXPECT_EQ(s.best_split_overlay_ep(), 2);
}

TEST(ModelMeasurement, MeasuresPairAgainstOverlays) {
  wkld::World world(21, small_params());
  const auto overlays = world.rent_paper_overlays();
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int s = world.internet().add_server(topo::Region::kNaEast, "s");
  const PairSample sample = world.meter().measure(s, c, overlays, Time::hours(1));
  EXPECT_EQ(sample.overlays.size(), 5u);
  EXPECT_GT(sample.direct_bps, 0.0);
  EXPECT_GT(sample.direct_rtt_ms, 10.0);
  for (const auto& o : sample.overlays) {
    EXPECT_GT(o.split_bps, 0.0);
    EXPECT_GT(o.rtt_ms, sample.direct_rtt_ms * 0.3);
    // The VM NIC caps every overlay path at 100 Mbps.
    EXPECT_LE(o.split_bps, 100e6 * 1.2);
    EXPECT_LE(o.plain_bps, 100e6 * 1.2);
  }
}

TEST(Selection, MinOverlaysRequired) {
  // Overlay 0 is best at t0/t1, overlay 2 best at t2: need both.
  PairHistory h;
  h.direct = {1, 1, 1};
  h.overlay = {{9, 2, 3}, {8, 2, 3}, {2, 3, 7}};
  EXPECT_EQ(min_overlays_required(h), 2);
  // A single always-best overlay suffices.
  PairHistory h1;
  h1.direct = {1, 1};
  h1.overlay = {{9, 2}, {8, 2}};
  EXPECT_EQ(min_overlays_required(h1), 1);
}

TEST(Selection, BestSubsetAverage) {
  PairHistory h;
  h.direct = {1, 1};
  h.overlay = {{10, 6, 2}, {2, 6, 10}};
  std::vector<int> chosen;
  // k=1: overlay 1 averages 6; overlay 0 and 2 average 6 too ((10+2)/2).
  EXPECT_DOUBLE_EQ(best_subset_avg_bps(h, 1, &chosen), 6.0);
  // k=2: {0,2} gives max(10,2)=10 then max(2,10)=10 -> avg 10.
  EXPECT_DOUBLE_EQ(best_subset_avg_bps(h, 2, &chosen), 10.0);
  EXPECT_EQ(chosen, (std::vector<int>{0, 2}));
}

TEST(Selection, StaleProbingLosesToMptcp) {
  // Alternating best path: stale probing picks yesterday's winner.
  PairHistory h;
  for (int t = 0; t < 10; ++t) {
    h.direct.push_back(1.0);
    if (t % 2 == 0) {
      h.overlay.push_back({10.0, 2.0});
    } else {
      h.overlay.push_back({2.0, 10.0});
    }
  }
  ProbeSelector stale(/*probe_interval=*/2);
  const auto probed = stale.achieved(h);
  const auto mptcp = mptcp_achieved(h);
  double probed_sum = 0, mptcp_sum = 0;
  for (double v : probed) probed_sum += v;
  for (double v : mptcp) mptcp_sum += v;
  EXPECT_GT(mptcp_sum, probed_sum * 1.4);
  // Fresh probing every sample matches MPTCP (modulo efficiency).
  ProbeSelector fresh(1);
  const auto fresh_vals = fresh.achieved(h);
  double fresh_sum = 0;
  for (double v : fresh_vals) fresh_sum += v;
  EXPECT_NEAR(fresh_sum, mptcp_sum / 0.97, 1.0);
}

TEST(Cost, CronetsVsLeasedLineIsAboutTenfold) {
  CloudPricing cloud;
  LeasedLinePricing line;
  // Two branch offices, 100 Mbps-class connectivity, ~2 TB/month.
  const CostBreakdown cronets = cronets_monthly_cost(cloud, 2, 2000, 100);
  const CostBreakdown leased = leased_line_monthly_cost(line, 100, false);
  EXPECT_GT(leased.monthly_usd / cronets.monthly_usd, 5.0);
  EXPECT_LT(leased.monthly_usd / cronets.monthly_usd, 30.0);
}

TEST(Cost, UnmeteredOptionCapsEgress) {
  CloudPricing cloud;
  const CostBreakdown a = cronets_monthly_cost(cloud, 1, 500, 100);
  const CostBreakdown b = cronets_monthly_cost(cloud, 1, 50000, 100);
  // Beyond break-even the unlimited option caps traffic cost.
  EXPECT_LE(b.monthly_usd, cloud.vm_monthly_usd + cloud.unlimited_100m_upcharge_usd);
  EXPECT_LT(a.monthly_usd, b.monthly_usd + 1e-9);
}

TEST(Cost, PortUpgradesCost) {
  CloudPricing cloud;
  const double m100 = cronets_monthly_cost(cloud, 1, 100, 100).monthly_usd;
  const double m1g = cronets_monthly_cost(cloud, 1, 100, 1000).monthly_usd;
  const double m10g = cronets_monthly_cost(cloud, 1, 100, 10000).monthly_usd;
  EXPECT_LT(m100, m1g);
  EXPECT_LT(m1g, m10g);
}

TEST(PacketLab, DirectRunProducesPlausibleResult) {
  wkld::World world(22, small_params());
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int dc = world.internet().dc_endpoints()[0];
  PacketLab lab(&world.internet());
  const PacketRunResult r = lab.run_direct(dc, c, Time::seconds(8));
  EXPECT_TRUE(r.connected);
  EXPECT_GT(r.goodput_bps, 1e5);
  EXPECT_LE(r.goodput_bps, 100e6);  // VM NIC cap
  EXPECT_GT(r.avg_rtt_ms, 1.0);
}

TEST(PacketLab, SplitRunRelaysThroughOverlay) {
  wkld::World world(23, small_params());
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int s = world.internet().add_server(topo::Region::kNaEast, "s");
  const int via = world.internet().dc_endpoints()[0];
  PacketLab lab(&world.internet());
  const PacketRunResult r = lab.run_split(s, c, via, Time::seconds(8));
  EXPECT_TRUE(r.connected);
  EXPECT_GT(r.goodput_bps, 1e5);
}

TEST(PacketLab, TunnelRunCarriesTraffic) {
  wkld::World world(24, small_params());
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int s = world.internet().add_server(topo::Region::kNaEast, "s");
  const int via = world.internet().dc_endpoints()[1];
  PacketLab lab(&world.internet());
  const PacketRunResult r =
      lab.run_tunnel(s, c, via, tunnel::TunnelMode::kGre, Time::seconds(8));
  EXPECT_TRUE(r.connected);
  EXPECT_GT(r.goodput_bps, 1e5);
}

TEST(PacketLab, MptcpRunUsesAllPaths) {
  wkld::World world(25, small_params());
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int s = world.internet().add_server(topo::Region::kNaEast, "s");
  const std::vector<int> vias = {world.internet().dc_endpoints()[0],
                                 world.internet().dc_endpoints()[1]};
  PacketLab lab(&world.internet());
  const PacketRunResult r = lab.run_mptcp(s, c, vias, transport::Coupling::kOlia,
                                          Time::seconds(8));
  EXPECT_TRUE(r.connected);
  EXPECT_GT(r.goodput_bps, 1e5);
}

TEST(PacketLab, BackboneSplitRunWorks) {
  wkld::World world(26, small_params());
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int s = world.internet().add_server(topo::Region::kAsia, "s");
  const int dc_a = world.internet().dc_endpoints()[4];  // tok
  const int dc_b = world.internet().dc_endpoints()[3];  // ams
  PacketLab lab(&world.internet());
  const PacketRunResult r =
      lab.run_split_backbone(s, c, dc_a, dc_b, Time::seconds(8));
  EXPECT_TRUE(r.connected);
  EXPECT_GT(r.goodput_bps, 1e5);
}

}  // namespace
}  // namespace cronets::core
