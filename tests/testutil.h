#pragma once

#include "net/network.h"
#include "sim/simulator.h"

namespace cronets::testutil {

/// A minimal dumbbell: host A -- router R -- host B, with configurable
/// bottleneck characteristics on the R--B hop.
struct Dumbbell {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{7}};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  net::Router* r = nullptr;

  explicit Dumbbell(const net::LinkSpec& access = {},
                    const net::LinkSpec& bottleneck = default_bottleneck()) {
    a = net.add_host("A");
    b = net.add_host("B");
    r = net.add_router("R");
    net.add_link(a, r, access);
    net.add_link(r, b, bottleneck);
    net.compute_routes();
  }

  static net::LinkSpec default_bottleneck() {
    net::LinkSpec s;
    s.capacity_bps = 100e6;
    s.prop_delay = sim::Time::milliseconds(10);
    return s;
  }
};

/// LinkSpec helper.
inline net::LinkSpec mk_link(double bps, sim::Time delay, double mean_util = 0.0,
                             double base_loss = 0.0) {
  net::LinkSpec s;
  s.capacity_bps = bps;
  s.prop_delay = delay;
  s.background.mean_util = mean_util;
  s.background.base_loss = base_loss;
  s.background.sigma = mean_util > 0 ? 0.02 : 0.0;
  return s;
}

}  // namespace cronets::testutil
