// Determinism guarantees: a (seed, workload) pair fully reproduces a run —
// the property that makes every figure in EXPERIMENTS.md regenerable.

#include <gtest/gtest.h>

#include "core/measure_packet.h"
#include "wkld/experiments.h"

namespace cronets {
namespace {

topo::TopologyParams small_params() {
  topo::TopologyParams p;
  p.seed = 77;
  p.num_tier1 = 6;
  p.num_tier2 = 14;
  p.num_stubs = 40;
  return p;
}

TEST(Determinism, ModelMeasurementsAreBitIdentical) {
  auto run = [] {
    wkld::World world(77, small_params());
    const auto exp = wkld::run_controlled_experiment(world, 10);
    std::vector<double> out;
    for (const auto& s : exp.samples) {
      out.push_back(s.direct_bps);
      out.push_back(s.best_split_bps());
      out.push_back(s.direct_rtt_ms);
    }
    return out;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "sample " << i;
  }
}

TEST(Determinism, PacketRunsAreBitIdentical) {
  auto run = [] {
    wkld::World world(78, small_params());
    const int c = world.internet().add_client(topo::Region::kEurope, "c");
    const int dc = world.internet().dc_endpoints()[0];
    core::PacketLab lab(&world.internet());
    return lab.run_direct(dc, c, sim::Time::seconds(6), sim::Time::hours(1));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_DOUBLE_EQ(a.retrans_rate, b.retrans_rate);
  EXPECT_DOUBLE_EQ(a.avg_rtt_ms, b.avg_rtt_ms);
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    auto p = small_params();
    p.seed = seed;
    wkld::World world(seed, p);
    const int c = world.internet().add_client(topo::Region::kEurope, "c");
    const int dc = world.internet().dc_endpoints()[0];
    core::PacketLab lab(&world.internet());
    return lab.run_direct(dc, c, sim::Time::seconds(6), sim::Time::hours(1)).bytes;
  };
  EXPECT_NE(run(101), run(102));
}

TEST(Determinism, PacketLabSeedChangesBackgroundDraws) {
  wkld::World world(79, small_params());
  const int c = world.internet().add_client(topo::Region::kEurope, "c");
  const int dc = world.internet().dc_endpoints()[0];
  core::PacketLab lab1(&world.internet(), 1);
  core::PacketLab lab2(&world.internet(), 2);
  const auto r1 = lab1.run_direct(dc, c, sim::Time::seconds(6), sim::Time::hours(1));
  const auto r2 = lab2.run_direct(dc, c, sim::Time::seconds(6), sim::Time::hours(1));
  // Same world, different instrument seeds: same ballpark, different bits.
  EXPECT_NE(r1.bytes, r2.bytes);
  EXPECT_NEAR(r1.goodput_bps, r2.goodput_bps, r1.goodput_bps * 1.5 + 1e6);
}

}  // namespace
}  // namespace cronets
