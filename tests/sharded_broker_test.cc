#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "service/broker.h"
#include "service/sharded_broker.h"
#include "sim/thread_pool.h"
#include "topo/internet.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

namespace cronets::service {
namespace {

constexpr std::uint64_t kWorldSeed = 42;

struct ShardScenarioResult {
  ShardedBrokerStats stats;
  std::size_t peak_concurrent = 0;
  int crossing_before = 0;
  int crossing_after = -1;
  double global_nic_used_bps = 0.0;
  double global_nic_peak_bps = 0.0;
};

BrokerConfig scenario_config() {
  BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.failover_delay = sim::Time::seconds(1);
  return cfg;
}

wkld::SessionChurnParams scenario_churn() {
  wkld::SessionChurnParams p;
  p.seed = kWorldSeed ^ 0x5e55;
  p.target_concurrent = 400;
  p.mean_duration_s = 20.0;
  p.horizon = sim::Time::seconds(60);
  return p;
}

/// One sharded run: the service_test.cc scenario (churn + transit failure
/// at t=30s) on a ShardedBroker. Every aggregate field of the result must
/// be a pure function of the seeds and config — never of `shards` or
/// `threads`.
ShardScenarioResult run_sharded(int shards, int threads) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(12);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  const BrokerConfig cfg = scenario_config();
  sim::ThreadPool pool(sim::Parallelism{threads});
  ShardedBroker broker(&world.internet(), &world.meter(), &pool, overlays,
                       shards, cfg);

  const wkld::SessionChurnParams churn_params = scenario_churn();
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();

  ShardScenarioResult r;
  int fail_a = -1, fail_b = -1;
  broker.queue().schedule(sim::Time::seconds(30), [&] {
    if (!broker.busiest_transit_adjacency(&fail_a, &fail_b)) return;
    r.crossing_before = broker.sessions_traversing(fail_a, fail_b);
    world.internet().set_adjacency_up(fail_a, fail_b, false);
  });
  broker.queue().schedule(
      sim::Time::seconds(30) + cfg.failover_delay + sim::Time::milliseconds(1),
      [&] {
        if (fail_a >= 0) r.crossing_after = broker.sessions_traversing(fail_a, fail_b);
      });
  broker.run_until(churn_params.horizon);

  r.stats = broker.stats();
  r.peak_concurrent = churn.stats().peak_concurrent;
  r.global_nic_used_bps = broker.global_nic().total_used_bps();
  r.global_nic_peak_bps = broker.global_nic().peak_used_bps();
  return r;
}

void expect_same_decisions(const ShardScenarioResult& a,
                           const ShardScenarioResult& b) {
  // The merged per-pair decision chains hash every admission and repin —
  // a single diverging decision on any shard flips the fingerprint.
  EXPECT_EQ(a.stats.decision_fingerprint, b.stats.decision_fingerprint);
  EXPECT_EQ(a.stats.sessions_admitted, b.stats.sessions_admitted);
  EXPECT_EQ(a.stats.sessions_released, b.stats.sessions_released);
  EXPECT_EQ(a.stats.admitted_via_overlay, b.stats.admitted_via_overlay);
  EXPECT_EQ(a.stats.migrations, b.stats.migrations);
  EXPECT_EQ(a.stats.probes, b.stats.probes);
  EXPECT_EQ(a.stats.ranking_flips, b.stats.ranking_flips);
  EXPECT_EQ(a.stats.failover_repins, b.stats.failover_repins);
  // Regret is floating point, but folded per pair in global-pair-id order:
  // bitwise equality is the contract, not approximate equality.
  EXPECT_EQ(a.stats.regret_sum, b.stats.regret_sum);
  EXPECT_EQ(a.stats.regret_samples, b.stats.regret_samples);
  EXPECT_EQ(a.peak_concurrent, b.peak_concurrent);
  EXPECT_EQ(a.crossing_before, b.crossing_before);
  EXPECT_EQ(a.crossing_after, b.crossing_after);
}

TEST(ShardedDeterminism, BitwiseIdenticalAcrossShardCounts) {
  const ShardScenarioResult one = run_sharded(/*shards=*/1, /*threads=*/1);
  const ShardScenarioResult four = run_sharded(/*shards=*/4, /*threads=*/1);
  const ShardScenarioResult eight = run_sharded(/*shards=*/8, /*threads=*/1);
  expect_same_decisions(one, four);
  expect_same_decisions(one, eight);
  // The workload actually exercised the paths being compared.
  EXPECT_GT(one.stats.sessions_admitted, 500u);
  EXPECT_GT(one.stats.probes, 0u);
  EXPECT_GT(one.stats.migrations, 0u);
}

TEST(ShardedDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  const ShardScenarioResult serial = run_sharded(/*shards=*/8, /*threads=*/1);
  const ShardScenarioResult parallel = run_sharded(/*shards=*/8, /*threads=*/4);
  expect_same_decisions(serial, parallel);
}

TEST(ShardedDeterminism, ShardAssignmentIsPureAndDense) {
  // shard_of is a pure function of the endpoints — no registration-order
  // or seed dependence — and spreads a realistic pair population across
  // every shard.
  std::vector<int> hits(8, 0);
  for (int src = 0; src < 64; ++src) {
    for (int dst = 64; dst < 96; ++dst) {
      const int s = ShardedBroker::shard_of(src, dst, 8);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 8);
      ASSERT_EQ(s, ShardedBroker::shard_of(src, dst, 8));
      ++hits[static_cast<std::size_t>(s)];
    }
  }
  for (int s = 0; s < 8; ++s) EXPECT_GT(hits[static_cast<std::size_t>(s)], 0);
}

/// The single Broker and the sharded control plane make the same decisions
/// — decision for decision, not just in aggregate. Broker pair indices are
/// allocated in registration order (identity mapping), so its per-pair
/// chains merge with the same global ids the sharded plane uses.
TEST(ShardedEquivalence, MatchesUnshardedBrokerDecisionForDecision) {
  // Unsharded reference: the exact scenario run_sharded drives.
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(12);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  const BrokerConfig cfg = scenario_config();
  Broker broker(&world.internet(), &world.meter(), /*pool=*/nullptr, overlays,
                cfg);
  const wkld::SessionChurnParams churn_params = scenario_churn();
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();
  int fail_a = -1, fail_b = -1;
  broker.queue().schedule(sim::Time::seconds(30), [&] {
    if (!broker.busiest_transit_adjacency(&fail_a, &fail_b)) return;
    world.internet().set_adjacency_up(fail_a, fail_b, false);
  });
  broker.run_until(churn_params.horizon);

  const ShardScenarioResult sharded = run_sharded(/*shards=*/8, /*threads=*/1);
  EXPECT_EQ(broker.ranker().partial_decision_fingerprint(),
            sharded.stats.decision_fingerprint);
  EXPECT_EQ(broker.stats().sessions_admitted, sharded.stats.sessions_admitted);
  EXPECT_EQ(broker.stats().migrations, sharded.stats.migrations);
  EXPECT_EQ(broker.stats().probes, sharded.stats.probes);
  EXPECT_EQ(broker.stats().failover_repins, sharded.stats.failover_repins);
  // Per-pair regret folded in global-id order reproduces the sharded
  // aggregate bitwise (the Broker's own running total is order-coupled to
  // its probe interleaving, so fold from the per-pair sums instead).
  double regret = 0.0;
  std::uint64_t samples = 0;
  for (std::size_t i = 0; i < broker.ranker().size(); ++i) {
    regret += broker.ranker().pair(static_cast<int>(i)).regret_sum;
    samples += broker.ranker().pair(static_cast<int>(i)).regret_samples;
  }
  EXPECT_EQ(regret, sharded.stats.regret_sum);
  EXPECT_EQ(samples, sharded.stats.regret_samples);
  // Physical capacity is one book no matter how many shards keep accounts.
  EXPECT_EQ(broker.sessions().ledger().total_used_bps(),
            sharded.global_nic_used_bps);
}

TEST(ShardedFailover, RepinsSpanShardBoundaries) {
  const ShardScenarioResult r = run_sharded(/*shards=*/8, /*threads=*/1);
  // The injected failure hit live sessions, and one failover delay later
  // none remained on the dead adjacency — across every shard.
  EXPECT_GT(r.crossing_before, 0);
  EXPECT_EQ(r.crossing_after, 0);
  EXPECT_EQ(r.stats.failover_events, 1u);
  EXPECT_GT(r.stats.failover_repins, 0u);
  EXPECT_EQ(r.stats.last_failover_reaction, sim::Time::seconds(1));
  // The busiest transit adjacency carries pairs owned by multiple shards,
  // so the coordinated failover must have repinned on at least two.
  int shards_with_repins = 0;
  for (const auto& ss : r.stats.shards) {
    if (ss.failover_repins > 0) ++shards_with_repins;
  }
  EXPECT_GE(shards_with_repins, 2);
}

TEST(ShardedAccounting, PerShardBooksSumToGlobalLedger) {
  const ShardScenarioResult r = run_sharded(/*shards=*/8, /*threads=*/1);
  double shard_sum = 0.0;
  std::uint64_t admitted = 0, released = 0, probes = 0;
  std::size_t pairs = 0;
  for (const auto& ss : r.stats.shards) {
    shard_sum += ss.nic_used_bps;
    admitted += ss.sessions_admitted;
    released += ss.sessions_released;
    probes += ss.probes;
    pairs += ss.pairs;
    // Every shard owns a slice of the pair space and did real work.
    EXPECT_GT(ss.pairs, 0u);
    EXPECT_GT(ss.probes, 0u);
  }
  EXPECT_GT(r.global_nic_used_bps, 0.0);
  EXPECT_NEAR(shard_sum, r.global_nic_used_bps,
              1e-9 * std::max(1.0, r.global_nic_used_bps));
  EXPECT_EQ(admitted, r.stats.sessions_admitted);
  EXPECT_EQ(released, r.stats.sessions_released);
  EXPECT_EQ(probes, r.stats.probes);
  EXPECT_EQ(pairs, std::size_t{12} * 10);  // clients x servers
  // The shared ledger's peak respects the per-VM cap at all times.
  EXPECT_GT(r.global_nic_peak_bps, 0.0);
}

TEST(ShardedAccounting, SessionIdsRouteToOwningShard) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(4);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  ShardedBroker broker(&world.internet(), &world.meter(), /*pool=*/nullptr,
                       overlays, /*num_shards=*/8, scenario_config());
  std::vector<std::uint64_t> ids;
  for (int c : clients) {
    for (int s : servers) {
      const int g = broker.register_pair(c, s);
      const std::uint64_t id = broker.open_session(g, 1e6);
      // The id's top byte names the owning shard (tag = shard + 1).
      EXPECT_EQ(SessionManager::id_tag_of(id) - 1, broker.pair_shard(g));
      ids.push_back(id);
    }
  }
  EXPECT_EQ(broker.active_sessions(), ids.size());
  for (std::uint64_t id : ids) broker.close_session(id);
  EXPECT_EQ(broker.active_sessions(), 0u);
  // Stale and foreign-tagged ids are ignored, not misrouted.
  broker.close_session(ids.front());
  broker.close_session(0xff00000000000001ull);
  EXPECT_EQ(broker.active_sessions(), 0u);
}

}  // namespace
}  // namespace cronets::service
