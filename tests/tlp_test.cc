// Tail Loss Probe behaviour: a tail drop on an otherwise idle connection
// should be repaired by the TLP probe in ~2 SRTT instead of waiting for the
// full RTO (and its exponential backoff).

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "transport/tcp.h"

namespace cronets::transport {
namespace {

using sim::Time;

struct TailNet {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{41}};
  net::Host* a;
  net::Host* b;
  net::Link* a_r;

  TailNet() {
    a = net.add_host("A");
    b = net.add_host("B");
    auto* r = net.add_router("R");
    net::LinkSpec s;
    s.capacity_bps = 100e6;
    s.prop_delay = Time::milliseconds(20);
    auto [fwd, rev] = net.add_link(a, r, s);
    a_r = fwd;
    (void)rev;
    net.add_link(r, b, s);
    net.compute_routes();
  }
};

/// Send `bytes`, dropping everything on the A->R link during
/// [blackout_from, blackout_to] — sized to swallow exactly the tail of the
/// burst. Returns the time at which all bytes were delivered.
double tail_loss_completion_seconds(bool tlp_enabled) {
  TailNet n;
  TcpConfig cfg;
  cfg.enable_tlp = tlp_enabled;
  TcpListener listener(n.b, 80, cfg);
  std::int64_t delivered = 0;
  double done_at = -1.0;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_data([&](std::int64_t d, std::uint64_t) {
      delivered += d;
      if (delivered == 200'000) done_at = n.simv.now().to_seconds();
    });
  });
  TcpConnection client(n.a, 1234, n.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.app_write(200'000); });
  client.connect();
  // Blackout that swallows the tail of the transfer: the window ramp means
  // the last segments leave around 250-400 ms in.
  n.simv.schedule_at(Time::milliseconds(330), [&] { n.a_r->set_down(true); });
  n.simv.schedule_at(Time::milliseconds(430), [&] { n.a_r->set_down(false); });
  n.simv.run_until(Time::seconds(30));
  EXPECT_EQ(delivered, 200'000) << "transfer must complete (tlp=" << tlp_enabled << ")";
  return done_at;
}

TEST(TailLossProbe, RepairsTailFasterThanRto) {
  const double with_tlp = tail_loss_completion_seconds(true);
  const double without = tail_loss_completion_seconds(false);
  ASSERT_GT(with_tlp, 0.0);
  ASSERT_GT(without, 0.0);
  // TLP should not be slower, and typically is clearly faster.
  EXPECT_LE(with_tlp, without + 1e-9);
}

TEST(TailLossProbe, ProbesFireUnderLoss) {
  TailNet n;
  TcpConfig cfg;
  TcpListener listener(n.b, 80, cfg);
  TcpConnection client(n.a, 1234, n.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.app_write(500'000); });
  client.connect();
  n.simv.schedule_at(Time::milliseconds(300), [&] { n.a_r->set_down(true); });
  n.simv.schedule_at(Time::milliseconds(500), [&] { n.a_r->set_down(false); });
  n.simv.run_until(Time::seconds(20));
  EXPECT_GT(client.stats().tlp_probes, 0u);
}

TEST(TailLossProbe, NoProbesOnCleanIdleConnection) {
  TailNet n;
  TcpConfig cfg;
  TcpListener listener(n.b, 80, cfg);
  TcpConnection client(n.a, 1234, n.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.app_write(100'000); });
  client.connect();
  n.simv.run_until(Time::seconds(10));
  // Everything acked; the armed TLP timers must all have been cancelled.
  EXPECT_EQ(client.stats().tlp_probes, 0u);
  EXPECT_EQ(client.stats().rto_count, 0u);
}

}  // namespace
}  // namespace cronets::transport
