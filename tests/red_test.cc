// RED queue discipline: early drops keep the standing queue (and thus the
// flow's measured RTT) much lower than drop-tail at similar goodput.

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"

namespace cronets::net {
namespace {

using sim::Time;

struct Result {
  double goodput_bps;
  double avg_rtt_ms;
  std::uint64_t red_drops;
  std::uint64_t tail_drops;
};

Result run(QueueDiscipline qd) {
  sim::Simulator simv;
  Network netw(&simv, sim::Rng{7});
  auto* a = netw.add_host("A");
  auto* b = netw.add_host("B");
  auto* r = netw.add_router("R");
  LinkSpec acc, bot;
  acc.capacity_bps = 1e9;
  acc.prop_delay = Time::milliseconds(1);
  bot.capacity_bps = 50e6;
  bot.prop_delay = Time::milliseconds(10);
  bot.queue_limit_bytes = 1024 * 1024;  // deep buffer: drop-tail will bloat
  netw.add_link(a, r, acc);
  auto [bottleneck, rev] = netw.add_link(r, b, bot);
  (void)rev;
  bottleneck->set_queue_discipline(qd);
  netw.compute_routes();

  transport::TcpConfig cfg;
  transport::BulkSink sink(b, 5001, cfg);
  transport::BulkSource src(a, 1234, b->addr(), 5001, cfg);
  src.start();
  simv.run_until(Time::seconds(20));
  return Result{sink.bytes_received() * 8.0 / 20.0,
                src.connection().stats().avg_rtt_ms(),
                bottleneck->stats().red_drops, bottleneck->stats().queue_drops};
}

TEST(RedQueue, KeepsRttLowerThanDropTailAtSimilarGoodput) {
  const Result droptail = run(QueueDiscipline::kDropTail);
  const Result red = run(QueueDiscipline::kRed);
  // Both should utilize the 50M bottleneck decently.
  EXPECT_GT(droptail.goodput_bps, 30e6);
  EXPECT_GT(red.goodput_bps, 30e6);
  // RED drops early instead of letting the deep buffer fill.
  EXPECT_GT(red.red_drops, 0u);
  EXPECT_LT(red.avg_rtt_ms, droptail.avg_rtt_ms);
}

TEST(RedQueue, NoEarlyDropsWhenIdle) {
  const Result red = run(QueueDiscipline::kRed);
  // A single flow ramping up will trip RED eventually but not instantly;
  // sanity: drops are bounded (not dropping everything).
  EXPECT_LT(red.red_drops, 2000u);
}

}  // namespace
}  // namespace cronets::net
