// The umbrella header must compile standalone and expose the full API.

#include "cronets.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  cronets::topo::TopologyParams p;
  p.seed = 9;
  p.num_tier1 = 6;
  p.num_tier2 = 14;
  p.num_stubs = 40;
  cronets::wkld::World world(9, p);
  auto& net = world.internet();
  const int c = net.add_client(cronets::topo::Region::kEurope, "u-client");
  const int s = net.add_server(cronets::topo::Region::kNaEast, "u-server");
  const auto overlays = world.rent_paper_overlays();
  const auto sample = world.meter().measure(s, c, overlays, cronets::sim::Time::hours(1));
  EXPECT_GT(sample.direct_bps, 0.0);
  EXPECT_EQ(sample.overlays.size(), overlays.size());
}

}  // namespace
