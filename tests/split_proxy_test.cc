#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "transport/split_proxy.h"

namespace cronets::transport {
namespace {

using sim::Time;

/// Chain A -- r1 -- O -- r2 -- B with configurable leg characteristics.
struct ChainNet {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{13}};
  net::Host* a;
  net::Host* o;
  net::Host* b;

  ChainNet(double cap1, Time d1, double loss1, double cap2, Time d2, double loss2) {
    a = net.add_host("A");
    o = net.add_host("O");
    b = net.add_host("B");
    auto* r1 = net.add_router("R1");
    auto* r2 = net.add_router("R2");
    net::LinkSpec s1, s2, acc;
    acc.capacity_bps = 1e9;
    acc.prop_delay = Time::milliseconds(1);
    s1.capacity_bps = cap1;
    s1.prop_delay = d1;
    s1.background.base_loss = loss1;
    s2.capacity_bps = cap2;
    s2.prop_delay = d2;
    s2.background.base_loss = loss2;
    net.add_link(a, r1, acc);
    net.add_link(r1, o, s1);
    net.add_link(o, r2, acc);
    net.add_link(r2, b, s2);
    net.compute_routes();
  }
};

TEST(SplitProxy, RelaysExactBytesEndToEnd) {
  ChainNet n(100e6, Time::milliseconds(10), 0.0, 100e6, Time::milliseconds(10), 0.0);
  TcpConfig cfg;
  BulkSink sink(n.b, 5001, cfg);
  SplitTcpProxy proxy(n.o, 5002, n.b->addr(), 5001, cfg);
  TcpConnection client(n.a, 1234, n.o->addr(), 5002, cfg);
  client.set_on_connected([&] { client.app_write(2'000'000); });
  client.connect();
  n.simv.run_until(Time::seconds(20));
  EXPECT_EQ(sink.bytes_received(), 2'000'000u);
  EXPECT_EQ(proxy.relayed_a2b(), 2'000'000u);
}

TEST(SplitProxy, ReverseDirectionRelays) {
  // Server pushes a file back through the proxy (the paper's download
  // direction: client connects via proxy, server sends data B -> A).
  ChainNet n(100e6, Time::milliseconds(10), 0.0, 100e6, Time::milliseconds(10), 0.0);
  TcpConfig cfg;
  FileServer server(n.b, 5001, 1'000'000, cfg);
  SplitTcpProxy proxy(n.o, 5002, n.b->addr(), 5001, cfg);
  FileDownloader down(n.a, 1234, n.o->addr(), 5002, cfg);
  down.start(&n.simv);
  n.simv.run_until(Time::seconds(30));
  EXPECT_TRUE(down.done());
  EXPECT_EQ(down.bytes(), 1'000'000u);
  EXPECT_EQ(proxy.relayed_b2a(), 1'000'000u);
}

TEST(SplitProxy, BeatsEndToEndTcpOnLossyLongPath) {
  // Mathis: end-to-end TCP sees RTT ~200ms and the combined loss;
  // split-TCP runs each ~100ms leg separately and should win clearly.
  const double loss = 0.004;
  const Time leg = Time::milliseconds(49);

  double split_bps, direct_bps;
  {
    ChainNet n(200e6, leg, loss, 200e6, leg, loss);
    TcpConfig cfg;
    BulkSink sink(n.b, 5001, cfg);
    SplitTcpProxy proxy(n.o, 5002, n.b->addr(), 5001, cfg);
    BulkSource src(n.a, 1234, n.o->addr(), 5002, cfg);
    src.start();
    n.simv.run_until(Time::seconds(30));
    split_bps = sink.bytes_received() * 8.0 / 30.0;
  }
  {
    ChainNet n(200e6, leg, loss, 200e6, leg, loss);
    TcpConfig cfg;
    BulkSink sink(n.b, 5001, cfg);
    BulkSource src(n.a, 1234, n.b->addr(), 5001, cfg);
    src.start();
    n.simv.run_until(Time::seconds(30));
    direct_bps = sink.bytes_received() * 8.0 / 30.0;
  }
  // Halving the RTT roughly doubles the Mathis rate; loss per leg also
  // halves, giving another sqrt(2). Expect a clear win.
  EXPECT_GT(split_bps, direct_bps * 1.5);
}

TEST(SplitProxy, BackpressureBoundsProxyMemory) {
  // Fast first leg into a slow second leg: the proxy buffer must stay
  // bounded by the configured limit (receive-window backpressure).
  ChainNet n(500e6, Time::milliseconds(2), 0.0, 5e6, Time::milliseconds(40), 0.0);
  TcpConfig cfg;
  const std::int64_t limit = 256 * 1024;
  BulkSink sink(n.b, 5001, cfg);
  SplitTcpProxy proxy(n.o, 5002, n.b->addr(), 5001, cfg, limit);
  BulkSource src(n.a, 1234, n.o->addr(), 5002, cfg);
  src.start();
  n.simv.run_until(Time::seconds(20));
  // Throughput follows the slow leg.
  const double bps = sink.bytes_received() * 8.0 / 20.0;
  EXPECT_GT(bps, 3e6);
  EXPECT_LT(bps, 5.2e6);
  // The client cannot have streamed unboundedly ahead of delivery: what A
  // pushed is capped by delivered + proxy buffer + both legs' windows.
  const std::uint64_t pushed = src.connection().stats().bytes_acked;
  EXPECT_LT(pushed, sink.bytes_received() + 2 * static_cast<std::uint64_t>(limit) +
                        8 * 1024 * 1024);
}

TEST(SplitProxy, ResolverSelectsDestinationPerPeer) {
  ChainNet n(100e6, Time::milliseconds(5), 0.0, 100e6, Time::milliseconds(5), 0.0);
  TcpConfig cfg;
  BulkSink sink(n.b, 5001, cfg);
  SplitTcpProxy proxy(n.o, 5002, net::IpAddr{0}, 0, cfg);
  proxy.set_dest_resolver([&](net::IpAddr) {
    return std::make_pair(n.b->addr(), net::TransportPort{5001});
  });
  TcpConnection client(n.a, 1234, n.o->addr(), 5002, cfg);
  client.set_on_connected([&] { client.app_write(100'000); });
  client.connect();
  n.simv.run_until(Time::seconds(5));
  EXPECT_EQ(sink.bytes_received(), 100'000u);
}

TEST(SplitProxy, ConcurrentClientsAreIsolated) {
  ChainNet n(100e6, Time::milliseconds(5), 0.0, 100e6, Time::milliseconds(5), 0.0);
  TcpConfig cfg;
  // Each client's bytes must arrive on its own forward connection.
  std::map<net::TransportPort, std::int64_t> per_conn;
  TcpListener server(n.b, 5001, cfg);
  server.set_on_accept([&](TcpConnection& c) {
    const net::TransportPort peer = c.remote_port();
    c.set_on_data([&per_conn, peer](std::int64_t d, std::uint64_t) {
      per_conn[peer] += d;
    });
  });
  SplitTcpProxy proxy(n.o, 5002, n.b->addr(), 5001, cfg);
  TcpConnection c1(n.a, 1234, n.o->addr(), 5002, cfg);
  TcpConnection c2(n.a, 1235, n.o->addr(), 5002, cfg);
  TcpConnection c3(n.a, 1236, n.o->addr(), 5002, cfg);
  c1.set_on_connected([&] { c1.app_write(111'000); });
  c2.set_on_connected([&] { c2.app_write(222'000); });
  c3.set_on_connected([&] { c3.app_write(333'000); });
  c1.connect();
  c2.connect();
  c3.connect();
  n.simv.run_until(Time::seconds(15));
  // Three separate forward connections, each with exactly its client's bytes.
  ASSERT_EQ(per_conn.size(), 3u);
  std::vector<std::int64_t> sizes;
  for (auto& [port, bytes] : per_conn) sizes.push_back(bytes);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{111'000, 222'000, 333'000}));
  EXPECT_EQ(proxy.relayed_a2b(), 666'000u);
}

TEST(SplitProxy, CloseCascadesThroughBothLegs) {
  ChainNet n(100e6, Time::milliseconds(5), 0.0, 100e6, Time::milliseconds(5), 0.0);
  TcpConfig cfg;
  bool server_saw_close = false;
  TcpListener server(n.b, 5001, cfg);
  std::int64_t server_bytes = 0;
  server.set_on_accept([&](TcpConnection& c) {
    c.set_on_data([&](std::int64_t d, std::uint64_t) { server_bytes += d; });
    c.set_on_peer_closed([&] { server_saw_close = true; });
  });
  SplitTcpProxy proxy(n.o, 5002, n.b->addr(), 5001, cfg);
  TcpConnection client(n.a, 1234, n.o->addr(), 5002, cfg);
  client.set_on_connected([&] {
    client.app_write(500'000);
    client.close();
  });
  client.connect();
  n.simv.run_until(Time::seconds(10));
  EXPECT_EQ(server_bytes, 500'000);
  EXPECT_TRUE(server_saw_close);
}

}  // namespace
}  // namespace cronets::transport
