#include <gtest/gtest.h>

#include <vector>

#include "service/broker.h"
#include "sim/thread_pool.h"
#include "topo/internet.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

namespace cronets::service {
namespace {

constexpr std::uint64_t kWorldSeed = 42;

struct ScenarioResult {
  BrokerStats stats;
  std::size_t peak_concurrent = 0;
  int crossing_before = 0;
  int crossing_after = -1;
  double peak_overlay_used_bps = 0.0;
  std::uint64_t overlay_denied = 0;
  std::uint64_t partial_fp = 0;  ///< merged per-pair decision chains
};

/// One broker run: churn workload + a transit-adjacency failure halfway
/// through. Every field of the result must be a pure function of the
/// seeds and config — never of `threads` (nor of `incremental`, the
/// dirty-set scheduler being a pure performance knob).
ScenarioResult run_scenario(int threads, double nic_cap_bps = 0.0,
                            bool incremental = true) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(12);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.failover_delay = sim::Time::seconds(1);
  cfg.nic_capacity_bps = nic_cap_bps;
  cfg.probe.incremental = incremental;
  sim::ThreadPool pool(sim::Parallelism{threads});
  Broker broker(&world.internet(), &world.meter(), &pool, overlays, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = kWorldSeed ^ 0x5e55;
  churn_params.target_concurrent = 400;
  churn_params.mean_duration_s = 20.0;
  churn_params.horizon = sim::Time::seconds(60);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);
  churn.start();
  broker.warm_up();

  ScenarioResult r;
  int fail_a = -1, fail_b = -1;
  broker.queue().schedule(sim::Time::seconds(30), [&] {
    if (!broker.busiest_transit_adjacency(&fail_a, &fail_b)) return;
    r.crossing_before = broker.sessions_traversing(fail_a, fail_b);
    world.internet().set_adjacency_up(fail_a, fail_b, false);
  });
  broker.queue().schedule(
      sim::Time::seconds(30) + cfg.failover_delay + sim::Time::milliseconds(1),
      [&] {
        if (fail_a >= 0) r.crossing_after = broker.sessions_traversing(fail_a, fail_b);
      });
  broker.run_until(churn_params.horizon);

  r.stats = broker.stats();
  r.peak_concurrent = churn.stats().peak_concurrent;
  r.peak_overlay_used_bps = broker.sessions().peak_overlay_used_bps();
  r.overlay_denied = broker.sessions().overlay_denied();
  r.partial_fp = broker.ranker().partial_decision_fingerprint();
  return r;
}

TEST(ServiceDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  const ScenarioResult serial = run_scenario(1);
  const ScenarioResult parallel = run_scenario(4);
  // The decision fingerprint hashes every admission and migration in
  // order — a single diverging decision anywhere flips it.
  EXPECT_EQ(serial.stats.decision_fingerprint, parallel.stats.decision_fingerprint);
  EXPECT_EQ(serial.stats.sessions_admitted, parallel.stats.sessions_admitted);
  EXPECT_EQ(serial.stats.admitted_via_overlay, parallel.stats.admitted_via_overlay);
  EXPECT_EQ(serial.stats.migrations, parallel.stats.migrations);
  EXPECT_EQ(serial.stats.ranking_flips, parallel.stats.ranking_flips);
  EXPECT_EQ(serial.stats.probes, parallel.stats.probes);
  EXPECT_EQ(serial.stats.failover_repins, parallel.stats.failover_repins);
  EXPECT_EQ(serial.stats.regret_sum, parallel.stats.regret_sum);
  EXPECT_EQ(serial.peak_concurrent, parallel.peak_concurrent);
  // The workload actually exercised the paths being compared.
  EXPECT_GT(serial.stats.sessions_admitted, 500u);
  EXPECT_GT(serial.stats.probes, 0u);
}

TEST(ServiceFailover, AllSessionsOffFailedAdjacencyWithinOneInterval) {
  const ScenarioResult r = run_scenario(1);
  // The injected failure actually hit live sessions...
  EXPECT_GT(r.crossing_before, 0);
  // ...and one failover delay later none remained on the dead adjacency.
  EXPECT_EQ(r.crossing_after, 0);
  EXPECT_EQ(r.stats.failover_events, 1u);
  EXPECT_GT(r.stats.failover_repins, 0u);
  // Reaction time is the configured delay, within the advertised bound of
  // one probe interval.
  EXPECT_EQ(r.stats.last_failover_reaction, sim::Time::seconds(1));
  EXPECT_LE(r.stats.last_failover_reaction, sim::Time::seconds(10));
}

TEST(ServiceAdmission, OverlayReservationsNeverExceedNicCapacity) {
  // A tight NIC cap forces denials; the capacity invariant must hold at
  // the peak, not just at the end.
  const double cap = 2e6;
  const ScenarioResult r = run_scenario(1, cap);
  EXPECT_LE(r.peak_overlay_used_bps, cap);
  EXPECT_GT(r.peak_overlay_used_bps, 0.0);
  EXPECT_GT(r.overlay_denied, 0u);
  // Denied sessions still got service (direct fallback admits always).
  EXPECT_GT(r.stats.sessions_admitted, 500u);
}

TEST(ServiceAdmission, DirectPathAdmitsWhenEveryOverlayIsFull) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(2);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  BrokerConfig cfg;
  cfg.nic_capacity_bps = 1.0;  // nothing fits on any overlay NIC
  Broker broker(&world.internet(), &world.meter(), nullptr, overlays, cfg);
  const int pair = broker.register_pair(clients[0], servers[0]);
  broker.warm_up();
  const std::uint64_t id = broker.open_session(pair, 5e6);
  ASSERT_NE(id, SessionManager::kInvalidSession);
  const Session& s = broker.sessions().session(id);
  EXPECT_EQ(broker.ranker().pair(pair).candidates[s.candidate].kind,
            core::PathKind::kDirect);
  EXPECT_EQ(broker.sessions().peak_overlay_used_bps(), 0.0);
}

TEST(PathRanker, EwmaSmoothsAndHysteresisDamsFlapping) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(2);
  const auto servers = world.make_servers();
  const std::vector<int> overlays = {world.rent_paper_overlays()[0]};

  RankerConfig cfg;
  cfg.ewma_alpha = 1.0;  // no smoothing: isolate the hysteresis margin
  cfg.hysteresis = 0.10;
  PathRanker ranker(&world.internet(), cfg, overlays);
  const int idx = ranker.add_pair(clients[0], servers[0]);

  const auto sample = [&](double direct, double split) {
    core::PairSample s;
    s.src = clients[0];
    s.dst = servers[0];
    s.direct_bps = direct;
    core::OverlaySample o;
    o.overlay_ep = overlays[0];
    o.split_bps = split;
    s.overlays.push_back(o);
    return s;
  };

  // First probe: overlay wins outright (clears the 10% margin).
  EXPECT_TRUE(ranker.apply_sample(idx, sample(10.0, 20.0), sim::Time::seconds(1)));
  EXPECT_EQ(ranker.pair(idx).best, 1);
  // Challenger better but inside the margin: no flip (21 < 20 * 1.1).
  EXPECT_FALSE(ranker.apply_sample(idx, sample(21.0, 20.0), sim::Time::seconds(2)));
  EXPECT_EQ(ranker.pair(idx).best, 1);
  // Clearing the margin flips back (23 > 22).
  EXPECT_TRUE(ranker.apply_sample(idx, sample(23.0, 20.0), sim::Time::seconds(3)));
  EXPECT_EQ(ranker.pair(idx).best, 0);

  // With smoothing on, one outlier probe moves the score only by alpha.
  RankerConfig smooth;
  smooth.ewma_alpha = 0.3;
  PathRanker smoothed(&world.internet(), smooth, overlays);
  const int idx2 = smoothed.add_pair(clients[1], servers[0]);
  auto s1 = sample(10.0, 20.0);
  s1.src = clients[1];
  auto s2 = sample(100.0, 20.0);
  s2.src = clients[1];
  smoothed.apply_sample(idx2, s1, sim::Time::seconds(1));
  smoothed.apply_sample(idx2, s2, sim::Time::seconds(2));
  EXPECT_DOUBLE_EQ(smoothed.pair(idx2).candidates[0].score_bps,
                   0.3 * 100.0 + 0.7 * 10.0);
}

TEST(PathRanker, RegretInputsClampUnreachableCandidates) {
  // An unreachable direct path samples as a huge bogus number (the flow
  // model evaluates an empty path); the ranker must clamp it out of the
  // score, the history, and the oracle/pinned regret inputs.
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(2);
  const auto servers = world.make_servers();
  const std::vector<int> overlays = {world.rent_paper_overlays()[0]};
  PathRanker ranker(&world.internet(), RankerConfig{}, overlays);
  const int idx = ranker.add_pair(clients[0], servers[0]);

  // Forge an invalid direct path by failing the adjacency it uses until no
  // route remains... simpler: point the candidate at an invalid PathRef.
  auto invalid = std::make_shared<topo::RouterPath>();  // valid = false
  ranker.pair(idx).candidates[0].path = invalid;

  core::PairSample s;
  s.src = clients[0];
  s.dst = servers[0];
  s.direct_bps = 3e11;  // the garbage an empty path samples as
  core::OverlaySample o;
  o.overlay_ep = overlays[0];
  o.split_bps = 5e6;
  s.overlays.push_back(o);
  ranker.apply_sample(idx, s, sim::Time::seconds(1));

  const PairState& p = ranker.pair(idx);
  EXPECT_EQ(p.candidates[0].last_bps, 0.0);
  EXPECT_EQ(p.history.direct.back(), 0.0);
  EXPECT_EQ(p.best, 1);
  EXPECT_DOUBLE_EQ(p.last_oracle_bps, 5e6);
  // The pin was the (unreachable) direct path at sample time: zero goodput.
  EXPECT_EQ(p.last_pinned_bps, 0.0);
}

TEST(ProbeScheduler, BudgetSelectsMostStaleFirst) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(4);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  PathRanker ranker(&world.internet(), RankerConfig{}, overlays);
  const int a = ranker.add_pair(clients[0], servers[0]);
  const int b = ranker.add_pair(clients[1], servers[0]);
  const int c = ranker.add_pair(clients[2], servers[0]);
  const int d = ranker.add_pair(clients[3], servers[0]);

  ProbeConfig cfg;
  cfg.interval = sim::Time::seconds(10);
  cfg.budget_per_tick = 2;
  ProbeScheduler sched(cfg);

  // b and d never probed; a stale; c fresh.
  ranker.pair(a).last_probe = sim::Time::seconds(5);
  ranker.pair(c).last_probe = sim::Time::seconds(19);
  std::vector<int> out;
  sched.select(ranker, sim::Time::seconds(20), &out);
  // Never-probed pairs are the most stale, in index order; budget cuts
  // the also-due `a`.
  EXPECT_EQ(out, (std::vector<int>{b, d}));
  EXPECT_EQ(sched.backlog(), 1u);

  // Once those two are probed (the broker stamps last_probe when applying
  // the sample), the backlog drains on the next tick.
  ranker.pair(b).last_probe = sim::Time::seconds(20);
  ranker.pair(d).last_probe = sim::Time::seconds(20);
  out.clear();
  sched.select(ranker, sim::Time::seconds(21), &out);
  EXPECT_EQ(out, std::vector<int>{a});
  EXPECT_EQ(sched.backlog(), 0u);
}

TEST(IncrementalReRank, DirtySetSweepsMatchFullScanBitwise) {
  // The dirty-set machinery (incremental probe scheduling + cached
  // admission orders) is a pure performance knob: the full-scan reference
  // run must agree decision for decision, bit for bit.
  const ScenarioResult inc = run_scenario(1, 0.0, /*incremental=*/true);
  const ScenarioResult full = run_scenario(1, 0.0, /*incremental=*/false);
  EXPECT_EQ(inc.stats.decision_fingerprint, full.stats.decision_fingerprint);
  EXPECT_EQ(inc.partial_fp, full.partial_fp);
  EXPECT_EQ(inc.stats.sessions_admitted, full.stats.sessions_admitted);
  EXPECT_EQ(inc.stats.admitted_via_overlay, full.stats.admitted_via_overlay);
  EXPECT_EQ(inc.stats.migrations, full.stats.migrations);
  EXPECT_EQ(inc.stats.ranking_flips, full.stats.ranking_flips);
  EXPECT_EQ(inc.stats.probes, full.stats.probes);
  EXPECT_EQ(inc.stats.failover_repins, full.stats.failover_repins);
  EXPECT_EQ(inc.stats.regret_sum, full.stats.regret_sum);
  EXPECT_EQ(inc.stats.probe_ticks, full.stats.probe_ticks);
  // Same decisions, far less work: the stateless scan examines every pair
  // on every tick, the incremental sweep only the due prefix.
  EXPECT_GT(inc.stats.probe_ticks, 0u);
  EXPECT_LT(inc.stats.sweep_pairs_touched, full.stats.sweep_pairs_touched);
}

TEST(IncrementalReRank, CleanSteadyStateSweepTouchesZeroPairs) {
  // Warm-up probes every pair at t=0; with a 10 s staleness interval the
  // ticks at t=1..5 find a fully fresh fleet, and the incremental sweep
  // must notice that without examining a single pair.
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  Broker broker(&world.internet(), &world.meter(), nullptr, overlays, cfg);
  for (int c : clients) broker.register_pair(c, servers[0]);
  broker.warm_up();
  broker.run_until(sim::Time::seconds(5));
  EXPECT_GT(broker.stats().probe_ticks, 0u);
  EXPECT_EQ(broker.stats().sweep_pairs_touched, 0u);
  EXPECT_EQ(broker.last_sweep_touched(), 0u);
  // Once the interval elapses the whole fleet comes due again.
  broker.run_until(sim::Time::seconds(10));
  EXPECT_EQ(broker.last_sweep_touched(), clients.size());
}

TEST(IncrementalReRank, IncrementalSelectionMatchesStatelessScan) {
  // Same staleness state as the BudgetSelectsMostStaleFirst scenario, fed
  // through the ordered due set: identical selection, but last_scan()
  // counts only the due prefix.
  ProbeConfig cfg;
  cfg.interval = sim::Time::seconds(10);
  cfg.budget_per_tick = 2;
  ProbeScheduler sched(cfg);
  for (int i = 0; i < 4; ++i) sched.track_pair(i);
  // b(1) and d(3) never probed; a(0) stale; c(2) fresh.
  sched.on_probed(0, sim::Time::seconds(5));
  sched.on_probed(2, sim::Time::seconds(19));
  std::vector<int> out;
  sched.select_incremental(sim::Time::seconds(20), &out);
  EXPECT_EQ(out, (std::vector<int>{1, 3}));
  EXPECT_EQ(sched.backlog(), 1u);
  EXPECT_EQ(sched.last_scan(), 3u);  // the three due pairs, not all four

  sched.on_probed(1, sim::Time::seconds(20));
  sched.on_probed(3, sim::Time::seconds(20));
  out.clear();
  sched.select_incremental(sim::Time::seconds(21), &out);
  EXPECT_EQ(out, std::vector<int>{0});
  EXPECT_EQ(sched.backlog(), 0u);
  EXPECT_EQ(sched.last_scan(), 1u);

  // Fresh fleet: the due prefix is empty.
  sched.on_probed(0, sim::Time::seconds(21));
  out.clear();
  sched.select_incremental(sim::Time::seconds(22), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(sched.last_scan(), 0u);

  // age_all resets every pair to never-probed (adjacency restore).
  sched.age_all();
  out.clear();
  sched.select_incremental(sim::Time::seconds(22), &out);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));  // index order, budget 2
  EXPECT_EQ(sched.last_scan(), 4u);
}

TEST(IncrementalReRank, FailoverMarksExactlyTheAdjacentPairsDirty) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(12);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  PathRanker ranker(&world.internet(), RankerConfig{}, overlays);
  for (int c : clients) {
    for (int s : servers) ranker.add_pair(c, s);
  }
  // Clean every pair's cached order, then fail an adjacency some direct
  // path actually crosses.
  for (int i = 0; i < static_cast<int>(ranker.size()); ++i) {
    ranker.admission_order(i);
    ASSERT_FALSE(ranker.order_dirty(i));
  }
  const auto& seq = ranker.pair(0).candidates[0].path->as_seq;
  ASSERT_GE(seq.size(), 2u);
  const int as_a = seq[0], as_b = seq[1];
  std::vector<int> affected;
  ranker.mark_adjacency_down(as_a, as_b, &affected);
  ASSERT_FALSE(affected.empty());
  // Exactly the pairs with a candidate crossing (as_a, as_b) are dirty.
  std::vector<int> expected;
  for (int i = 0; i < static_cast<int>(ranker.size()); ++i) {
    const PairState& p = ranker.pair(i);
    bool crosses = false;
    for (const Candidate& c : p.candidates) {
      crosses = crosses ||
                (c.path && path_uses_adjacency(*c.path, as_a, as_b)) ||
                (c.leg2 && path_uses_adjacency(*c.leg2, as_a, as_b));
    }
    if (crosses) expected.push_back(i);
    EXPECT_EQ(ranker.order_dirty(i), crosses) << "pair " << i;
  }
  EXPECT_EQ(affected, expected);
  EXPECT_LT(expected.size(), ranker.size()) << "failure should not hit all";
}

TEST(PathRanker, AdmissionOrderMatchesRankedOrderAndCaches) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(2);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();
  PathRanker ranker(&world.internet(), RankerConfig{}, overlays);
  const int idx = ranker.add_pair(clients[0], servers[0]);

  core::PairSample s;
  s.src = clients[0];
  s.dst = servers[0];
  s.direct_bps = 10e6;
  for (std::size_t i = 0; i < overlays.size(); ++i) {
    core::OverlaySample o;
    o.overlay_ep = overlays[i];
    o.split_bps = 5e6 + 1e6 * static_cast<double>(i);
    s.overlays.push_back(o);
  }
  std::vector<int> reference;
  for (int probe = 0; probe < 3; ++probe) {
    s.direct_bps += 7e6;  // moves the ranking around
    ranker.apply_sample(idx, s, sim::Time::seconds(probe + 1));
    EXPECT_TRUE(ranker.order_dirty(idx));
    const std::uint64_t rebuilds = ranker.order_rebuilds();
    ranker.ranked_order(idx, &reference);
    EXPECT_EQ(ranker.admission_order(idx), reference);  // rebuilt
    EXPECT_EQ(ranker.admission_order(idx), reference);  // cached
    EXPECT_EQ(ranker.order_rebuilds(), rebuilds + 1);
    EXPECT_FALSE(ranker.order_dirty(idx));
  }
  EXPECT_GT(ranker.order_hits(), 0u);
}

TEST(InternetMutation, ListenersObserveEventsAndUnsubscribe) {
  wkld::World world(kWorldSeed);
  topo::Internet& net = world.internet();
  const auto clients = world.make_web_clients(2);
  const auto servers = world.make_servers();

  std::vector<topo::Mutation> seen;
  const int id = net.add_mutation_listener(
      [&](const topo::Mutation& m) { seen.push_back(m); });

  topo::LinkEvent ev;
  ev.link_id = 0;
  ev.from = sim::Time::seconds(1);
  ev.until = sim::Time::seconds(2);
  ev.util_boost = 0.5;
  net.add_event(ev);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, topo::Mutation::Kind::kTransientEvent);
  EXPECT_EQ(seen[0].event.link_id, 0);
  EXPECT_EQ(seen[0].epoch, net.mutation_epoch());

  // An adjacency flap delivers change + restore, with the epoch bumped
  // before the listener runs.
  const auto path = net.cached_path(clients[0], servers[0]);
  ASSERT_TRUE(path->valid);
  ASSERT_GE(path->as_seq.size(), 2u);
  const int as_a = path->as_seq[0], as_b = path->as_seq[1];
  net.set_adjacency_up(as_a, as_b, false);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].kind, topo::Mutation::Kind::kAdjacencyChange);
  EXPECT_EQ(seen[1].as_a, as_a);
  EXPECT_EQ(seen[1].as_b, as_b);
  EXPECT_FALSE(seen[1].up);

  // The PathCache listener (registered first) already dropped the interned
  // path: a fresh query reroutes while the old ref stays readable.
  const auto rerouted = net.cached_path(clients[0], servers[0]);
  EXPECT_NE(rerouted.get(), path.get());
  EXPECT_TRUE(path->valid);  // stale, not dangling

  net.set_adjacency_up(as_a, as_b, true);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen[2].up);

  net.remove_mutation_listener(id);
  net.add_event(ev);
  EXPECT_EQ(seen.size(), 3u);  // unsubscribed: no further deliveries
}

}  // namespace
}  // namespace cronets::service
