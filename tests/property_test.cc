// Property-based tests (parameterized sweeps):
//  * the packet-level TCP stack obeys Mathis/PFTK scaling across a grid of
//    loss rates and RTTs, and stays within a calibration band of the
//    analytic flow model (this is what licenses using the model for the
//    6,600-path sweeps);
//  * topology invariants hold across generator seeds;
//  * MPTCP coupling bounds hold across coupling modes.

#include <gtest/gtest.h>

#include "model/flow_model.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/internet.h"
#include "transport/apps.h"
#include "transport/mptcp.h"

namespace cronets {
namespace {

using sim::Time;

// ---------------------------------------------------------------------------
// Packet TCP vs the analytic model, across (loss, rtt_ms).
// ---------------------------------------------------------------------------

struct PathCase {
  double loss;
  int rtt_ms;
};

class TcpModelAgreement : public ::testing::TestWithParam<PathCase> {};

double run_packet_tcp(double loss, int rtt_ms, Time duration) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{23});
  auto* a = netw.add_host("A");
  auto* b = netw.add_host("B");
  auto* r = netw.add_router("R");
  net::LinkSpec acc, bot;
  acc.capacity_bps = 1e9;
  acc.prop_delay = Time::milliseconds(1);
  bot.capacity_bps = 1e9;
  bot.prop_delay = Time::milliseconds(rtt_ms / 2 - 1);
  bot.background.base_loss = loss;
  netw.add_link(a, r, acc);
  netw.add_link(r, b, bot);
  netw.compute_routes();
  transport::TcpConfig cfg;
  transport::BulkSink sink(b, 5001, cfg);
  transport::BulkSource src(a, 1234, b->addr(), 5001, cfg);
  src.start();
  // Skip slow start: measure the second half only.
  simv.run_until(duration / 2);
  const std::uint64_t half = sink.bytes_received();
  simv.run_until(duration);
  return static_cast<double>(sink.bytes_received() - half) * 8.0 /
         (duration / 2).to_seconds();
}

TEST_P(TcpModelAgreement, PacketStackWithinCalibrationBand) {
  const PathCase c = GetParam();
  const double measured = run_packet_tcp(c.loss, c.rtt_ms, Time::seconds(40));

  model::TcpModelParams params;  // calibrated aggressiveness
  const double predicted =
      model::pftk_throughput_bps(c.rtt_ms, c.loss, 1e9, 1e9, params);

  // The model must predict the packet stack within a factor band. It is a
  // steady-state formula; cubic dynamics and delayed ACKs blur it, and on
  // long-RTT lossy paths the (pre-RACK, 2015-era) stack occasionally
  // RTO-stalls on tail losses, dragging the measured average down.
  EXPECT_GT(measured, predicted * 0.22)
      << "loss=" << c.loss << " rtt=" << c.rtt_ms;
  EXPECT_LT(measured, predicted * 2.8)
      << "loss=" << c.loss << " rtt=" << c.rtt_ms;
}

INSTANTIATE_TEST_SUITE_P(
    LossRttGrid, TcpModelAgreement,
    ::testing::Values(PathCase{0.0005, 40}, PathCase{0.0005, 120},
                      PathCase{0.001, 40}, PathCase{0.001, 80},
                      PathCase{0.002, 40}, PathCase{0.002, 160},
                      PathCase{0.005, 40}, PathCase{0.005, 80},
                      PathCase{0.01, 60}, PathCase{0.02, 40}),
    [](const ::testing::TestParamInfo<PathCase>& info) {
      return "loss" + std::to_string(static_cast<int>(info.param.loss * 1e4)) +
             "e4_rtt" + std::to_string(info.param.rtt_ms);
    });

class MathisScaling : public ::testing::TestWithParam<int> {};

TEST_P(MathisScaling, ThroughputHalvesWhenLossQuadruples) {
  const int rtt = GetParam();
  const double t1 = run_packet_tcp(0.001, rtt, Time::seconds(40));
  const double t4 = run_packet_tcp(0.004, rtt, Time::seconds(40));
  EXPECT_GT(t1 / t4, 1.4) << "rtt=" << rtt;
  EXPECT_LT(t1 / t4, 3.2) << "rtt=" << rtt;
}

TEST_P(MathisScaling, ThroughputScalesInverselyWithRtt) {
  const int rtt = GetParam();
  const double t = run_packet_tcp(0.002, rtt, Time::seconds(40));
  const double t2 = run_packet_tcp(0.002, rtt * 2, Time::seconds(40));
  EXPECT_GT(t / t2, 1.4) << "rtt=" << rtt;
  EXPECT_LT(t / t2, 3.0) << "rtt=" << rtt;
}

INSTANTIATE_TEST_SUITE_P(Rtts, MathisScaling, ::testing::Values(30, 60, 120));

// ---------------------------------------------------------------------------
// Topology invariants across seeds.
// ---------------------------------------------------------------------------

class TopologyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyInvariants, GeneratedWorldIsSane) {
  topo::TopologyParams p;
  p.seed = GetParam();
  p.num_tier1 = 8;
  p.num_tier2 = 20;
  p.num_stubs = 60;
  topo::Internet net(p, topo::CloudParams{});

  // Every DC endpoint reachable from every stub, and vice versa.
  for (const auto& as : net.ases()) {
    if (as.tier != topo::Tier::kStub) continue;
    for (int dc : net.dc_endpoints()) {
      EXPECT_FALSE(net.routing().as_path(as.id, net.endpoint(dc).as_id).empty());
      EXPECT_FALSE(net.routing().as_path(net.endpoint(dc).as_id, as.id).empty());
    }
  }

  // Background parameters well-formed on every link.
  for (const auto& l : net.links()) {
    EXPECT_GE(l.bg_fwd.mean_util, 0.0);
    EXPECT_LT(l.bg_fwd.mean_util, 0.98);
    EXPECT_GE(l.bg_fwd.base_loss, 0.0);
    EXPECT_LT(l.bg_fwd.base_loss, 0.01);
    EXPECT_GT(l.capacity_bps, 1e6);
    EXPECT_GT(l.delay_ms, 0.0);
    EXPECT_LT(l.delay_ms, 400.0);
  }

  // Paths between random endpoint pairs are valid and loop-free.
  const int c1 = net.add_client(topo::Region::kEurope, "p1");
  const int c2 = net.add_client(topo::Region::kAsia, "p2");
  const int c3 = net.add_client(topo::Region::kNaWest, "p3");
  for (int a : {c1, c2, c3}) {
    for (int b : {c1, c2, c3}) {
      if (a == b) continue;
      const auto path = net.path(a, b);
      ASSERT_TRUE(path.valid);
      std::set<int> seen;
      for (int r : path.routers) {
        EXPECT_TRUE(seen.insert(r).second) << "router repeated on path";
      }
      // RTT sanity: below one planet circumference worth of detours.
      EXPECT_LT(net.base_rtt_ms(path), 1500.0);
      EXPECT_GT(net.base_rtt_ms(path), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyInvariants,
                         ::testing::Values(1, 7, 13, 99, 1234, 777777));

// ---------------------------------------------------------------------------
// Flow model invariants across seeds and times.
// ---------------------------------------------------------------------------

class FlowModelInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowModelInvariants, SamplesAreWellFormed) {
  topo::TopologyParams p;
  p.seed = GetParam();
  p.num_tier1 = 8;
  p.num_tier2 = 20;
  p.num_stubs = 60;
  topo::Internet net(p, topo::CloudParams{});
  model::FlowModel fm(&net, GetParam() ^ 0xabcdef);
  const int c = net.add_client(topo::Region::kEurope, "c");
  const int s = net.add_client(topo::Region::kNaEast, "s");
  const auto path = net.path(s, c);
  for (int hour = 1; hour < 50; hour += 7) {
    const auto m = fm.sample(path, sim::Time::hours(hour));
    EXPECT_GE(m.loss, 0.0);
    EXPECT_LE(m.loss, 1.0);
    EXPECT_GT(m.rtt_ms, 0.0);
    EXPECT_GT(m.residual_bps, 0.0);
    const double t = fm.tcp_throughput(m);
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, std::min(m.residual_bps, m.capacity_bps) * 1.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowModelInvariants,
                         ::testing::Values(3, 31, 313));

// ---------------------------------------------------------------------------
// MPTCP coupling bounds across modes.
// ---------------------------------------------------------------------------

class MptcpCouplingBounds
    : public ::testing::TestWithParam<transport::Coupling> {};

TEST_P(MptcpCouplingBounds, AggregateWithinSaneBounds) {
  // Two lossy disjoint 200M paths; aggregate must never exceed the sum of
  // per-path Mathis rates (x slack) and never collapse below a floor.
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{11});
  auto* a = netw.add_host("A");
  auto* b = netw.add_host("B");
  auto* r1 = netw.add_router("R1");
  auto* r2 = netw.add_router("R2");
  const net::IpAddr alias{0x0b000001};
  net::LinkSpec s1, acc;
  acc.capacity_bps = 1e9;
  acc.prop_delay = Time::milliseconds(1);
  s1.capacity_bps = 200e6;
  s1.prop_delay = Time::milliseconds(10);
  s1.background.base_loss = 0.002;
  auto [l1, l1r] = netw.add_link(a, r1, acc);
  auto [l2, l2r] = netw.add_link(r1, b, s1);
  auto [l3, l3r] = netw.add_link(a, r2, acc);
  auto [l4, l4r] = netw.add_link(r2, b, s1);
  a->add_route(b->addr(), l1);
  r1->add_route(b->addr(), l2);
  b->add_alias(alias);
  a->add_route(alias, l3);
  r2->add_route(alias, l4);
  b->add_route(a->addr(), l2r);
  r1->add_route(a->addr(), l1r);
  r2->add_route(a->addr(), l3r);

  transport::TcpConfig cfg;
  transport::MptcpListener listener(b, 5001, cfg);
  transport::MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = GetParam();
  transport::MptcpConnection conn(a, 20000, {b->addr(), alias}, 5001, mcfg);
  conn.set_infinite_source(true);
  conn.connect();
  simv.run_until(Time::seconds(20));
  const double bps = listener.bytes_delivered() * 8.0 / 20.0;

  // Single-path Mathis at 0.2% / ~22ms is ~ 14 Mbps (cubic is somewhat
  // more aggressive). Aggregate of two subflows stays within [floor, 2x
  // aggressive-single].
  EXPECT_GT(bps, 5e6);
  EXPECT_LT(bps, 90e6);
  EXPECT_EQ(conn.alive_subflows(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Couplings, MptcpCouplingBounds,
    ::testing::Values(transport::Coupling::kOlia, transport::Coupling::kLia,
                      transport::Coupling::kUncoupledCubic,
                      transport::Coupling::kUncoupledReno),
    [](const ::testing::TestParamInfo<transport::Coupling>& info) {
      switch (info.param) {
        case transport::Coupling::kOlia: return std::string("olia");
        case transport::Coupling::kLia: return std::string("lia");
        case transport::Coupling::kUncoupledCubic: return std::string("cubic");
        case transport::Coupling::kUncoupledReno: return std::string("reno");
      }
      return std::string("unknown");
    });

}  // namespace
}  // namespace cronets
