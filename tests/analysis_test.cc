#include <gtest/gtest.h>

#include "analysis/c45.h"
#include "analysis/stats.h"
#include "analysis/traceroute.h"
#include "analysis/tstat.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "transport/apps.h"

namespace cronets::analysis {
namespace {

using sim::Time;

TEST(Cdf, QuantilesAndFractions) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.median(), 50.5);
  EXPECT_NEAR(c.quantile(0.9), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 100.0);
  EXPECT_DOUBLE_EQ(c.mean(), 50.5);
  EXPECT_DOUBLE_EQ(c.fraction_leq(50), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_gt(90), 0.1);
  EXPECT_DOUBLE_EQ(c.fraction_geq(91), 0.1);
  EXPECT_EQ(c.size(), 100u);
}

TEST(Cdf, StdevMatchesKnown) {
  Cdf c;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) c.add(v);
  EXPECT_NEAR(c.stdev(), 2.138, 0.01);  // sample stdev
}

TEST(Stats, MedianAndMad) {
  EXPECT_DOUBLE_EQ(median_of({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median_abs_deviation({1, 1, 2, 2, 4, 6, 9}), 1.0);
}

TEST(Stats, BinByEdges) {
  const std::vector<double> keys = {5, 75, 145, 300, 69, 140};
  const std::vector<double> vals = {1, 2, 3, 4, 5, 6};
  const Binned b = bin_by(keys, vals, {0, 70, 140, 210, 280});
  ASSERT_EQ(b.bins.size(), 5u);
  EXPECT_EQ(b.bins[0], (std::vector<double>{1, 5}));
  EXPECT_EQ(b.bins[1], (std::vector<double>{2}));
  EXPECT_EQ(b.bins[2], (std::vector<double>{3, 6}));
  EXPECT_TRUE(b.bins[3].empty());
  EXPECT_EQ(b.bins[4], (std::vector<double>{4}));
}

TEST(Diversity, ScoreDefinition) {
  // diversity = 1 - common/|direct|
  using V = std::vector<int>;
  EXPECT_DOUBLE_EQ(diversity_score(V{1, 2, 3, 4}, V{1, 2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(diversity_score(V{1, 2, 3, 4}, V{5, 6, 7}), 1.0);
  EXPECT_DOUBLE_EQ(diversity_score(V{1, 2, 3, 4}, V{1, 9, 4}), 0.5);
  // Interface-level identity: same router via different ingress links is a
  // different hop.
  using H = std::vector<long long>;
  EXPECT_DOUBLE_EQ(diversity_score(H{1000003 + 1, 2000006 + 2},
                                   H{1000003 + 9, 2000006 + 2}),
                   0.5);
}

TEST(Diversity, CommonRouterLocation) {
  // Direct path of 9 routers; overlay shares the first 2 and last 2.
  const std::vector<int> direct = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<int> overlay = {1, 2, 20, 21, 8, 9};
  const CommonRouterLocation loc = common_router_location(direct, overlay);
  EXPECT_EQ(loc.common_end, 4);
  EXPECT_EQ(loc.common_middle, 0);
  const CommonRouterLocation mid = common_router_location(direct, {4, 5, 6});
  EXPECT_EQ(mid.common_end, 0);
  EXPECT_EQ(mid.common_middle, 3);
}

TEST(C45, LearnsAxisAlignedConcept) {
  // Label = (x0 > 0.3) && (x1 > 0.5), plus mild noise.
  sim::Rng rng(4);
  Dataset d;
  d.feature_names = {"x0", "x1"};
  for (int i = 0; i < 2000; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    int y = (x0 > 0.3 && x1 > 0.5) ? 1 : 0;
    if (rng.bernoulli(0.02)) y = 1 - y;
    d.x.push_back({x0, x1});
    d.y.push_back(y);
  }
  C45Tree tree;
  tree.train(d);
  ASSERT_TRUE(tree.trained());

  // Accuracy on clean grid points.
  int correct = 0, total = 0;
  for (double x0 = 0.05; x0 < 1.0; x0 += 0.1) {
    for (double x1 = 0.05; x1 < 1.0; x1 += 0.1) {
      const int want = (x0 > 0.3 && x1 > 0.5) ? 1 : 0;
      correct += (tree.predict({x0, x1}) == want);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);

  // The best positive rule should recover both thresholds approximately.
  const auto rule = tree.best_positive_rule(/*min_support=*/100);
  ASSERT_FALSE(rule.conditions.empty());
  double thr0 = -1, thr1 = -1;
  for (const auto& c : rule.conditions) {
    if (c.feature == 0 && c.greater) thr0 = c.threshold;
    if (c.feature == 1 && c.greater) thr1 = c.threshold;
  }
  EXPECT_NEAR(thr0, 0.3, 0.08);
  EXPECT_NEAR(thr1, 0.5, 0.08);
  EXPECT_GT(rule.confidence, 0.9);
}

TEST(C45, PruningShrinksNoiseTree) {
  // Pure-noise labels: a pruned tree should collapse to (near) a stump.
  sim::Rng rng(9);
  Dataset d;
  d.feature_names = {"a", "b"};
  for (int i = 0; i < 500; ++i) {
    d.x.push_back({rng.uniform(), rng.uniform()});
    d.y.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  C45Tree pruned, unpruned;
  C45Tree::Options opt;
  opt.prune = true;
  pruned.train(d, opt);
  opt.prune = false;
  unpruned.train(d, opt);
  EXPECT_LT(pruned.node_count(), unpruned.node_count());
}

TEST(C45, DumpContainsFeatureNames) {
  Dataset d;
  d.feature_names = {"rtt_reduction", "loss_reduction"};
  sim::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    d.x.push_back({a, b});
    d.y.push_back(a > 0.4 ? 1 : 0);
  }
  C45Tree tree;
  tree.train(d);
  EXPECT_NE(tree.dump().find("rtt_reduction"), std::string::npos);
}

TEST(Tstat, MeasuresRetransmissionRateAndRtt) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{7});
  auto* a = netw.add_host("A");
  auto* b = netw.add_host("B");
  auto* r = netw.add_router("R");
  net::LinkSpec acc, bot;
  acc.capacity_bps = 1e9;
  acc.prop_delay = Time::milliseconds(1);
  bot.capacity_bps = 100e6;
  bot.prop_delay = Time::milliseconds(24);
  bot.background.base_loss = 0.005;
  netw.add_link(a, r, acc);
  netw.add_link(r, b, bot);
  netw.compute_routes();

  Tstat tstat;
  tstat.attach(a);

  transport::TcpConfig cfg;
  transport::BulkSink sink(b, 5001, cfg);
  transport::BulkSource src(a, 1234, b->addr(), 5001, cfg);
  src.start();
  simv.run_until(Time::seconds(30));

  const Tstat::FlowStats t = tstat.totals();
  EXPECT_GT(t.bytes_sent, 1'000'000u);
  // Retransmission rate tracks the injected loss within a factor.
  EXPECT_GT(t.retransmission_rate(), 0.002);
  EXPECT_LT(t.retransmission_rate(), 0.02);
  // Average RTT reflects the ~50 ms base path plus delack/queueing.
  EXPECT_GT(t.avg_rtt_ms(), 48.0);
  EXPECT_LT(t.avg_rtt_ms(), 120.0);
  // Cross-check against the sender's own accounting (same ballpark).
  EXPECT_NEAR(t.retransmission_rate(),
              src.connection().stats().retransmission_rate(), 0.01);
}

}  // namespace
}  // namespace cronets::analysis
