// The routing plane's contract: the delay policy converges to (near)
// shortest-delay routes under the hop bound on a pathological backbone
// where detours genuinely win; hysteresis damps metric-chatter flaps;
// the backpressure policy keeps its virtual queues bounded when drain
// capacity exceeds arrivals; DC outages propagate through the Internet's
// mutation listeners (routes withdrawn while dark, restored after); and
// every routing table and broker decision is bitwise identical across
// measurement thread counts and broker shard counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/injector.h"
#include "chaos/scenario.h"
#include "route/plane.h"
#include "service/broker.h"
#include "service/sharded_broker.h"
#include "sim/thread_pool.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

namespace cronets::route {
namespace {

constexpr std::uint64_t kSeed = 42;

/// A backbone mesh that violates the triangle inequality: detour factors
/// up to 3x make some direct edges slower than two-hop chains, so the
/// delay policy has real k >= 2 routes to find.
topo::CloudParams pathological_cloud() {
  topo::CloudParams cp;
  cp.backbone_detour_lo = 1.0;
  cp.backbone_detour_hi = 3.0;
  return cp;
}

void warm(RoutePlane* plane, int rounds, int offset_s = 0) {
  for (int k = 0; k < rounds; ++k) {
    plane->step(sim::Time::seconds(offset_s + k + 1));
  }
}

/// Hop-bounded Bellman-Ford over the graph's latched delays (the metric
/// the policy actually reads) — the centralized reference the distributed
/// exchange must approach.
std::vector<double> bf_distances(const OverlayGraph& g, int max_hops) {
  const int n = g.size();
  std::vector<double> dist(static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
                           kInfMetric);
  for (int i = 0; i < n; ++i) dist[static_cast<std::size_t>(i * n + i)] = 0.0;
  for (int hop = 0; hop < max_hops; ++hop) {
    std::vector<double> next = dist;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j || !g.node_up(i) || !g.node_up(j) || !g.edge_measured(i, j))
          continue;
        const double w = g.metric_delay_ms(i, j);
        for (int d = 0; d < n; ++d) {
          const double via = w + dist[static_cast<std::size_t>(j * n + d)];
          double& cur = next[static_cast<std::size_t>(i * n + d)];
          cur = std::min(cur, via);
        }
      }
    }
    dist = std::move(next);
  }
  return dist;
}

TEST(RoutePlane, DelayPolicyConvergesTowardShortestRoutes) {
  wkld::World world(kSeed, topo::TopologyParams{}, pathological_cloud());
  RouteConfig cfg;
  cfg.policy = Policy::kDelay;
  cfg.hysteresis = 0.0;  // exact chase: no damping slack in this test
  RoutePlane plane(&world.internet(), &world.flow(), world.seed(), cfg);
  warm(&plane, 16);

  const OverlayGraph& g = plane.graph();
  const int n = g.size();
  ASSERT_GE(n, 3);
  const std::vector<double> dist = bf_distances(g, cfg.max_hops);

  int multi_hop_routes = 0;
  std::vector<int> via;
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < n; ++d) {
      if (i == d) continue;
      const RouteEntry& e =
          plane.agents()[static_cast<std::size_t>(i)]
              .table[static_cast<std::size_t>(d)];
      ASSERT_GE(e.next, 0) << "no route " << i << " -> " << d;
      EXPECT_LE(e.hops, cfg.max_hops);
      if (e.hops >= 2) ++multi_hop_routes;

      // The composed chain must be loop-free, hop-bounded, and its total
      // current delay within a noise margin of the centralized optimum
      // (the table lags the newest EWMAs by one exchange round).
      ASSERT_TRUE(plane.route(g.node_ep(i), g.node_ep(d), &via));
      ASSERT_GE(via.size(), 2u);
      EXPECT_EQ(via.front(), g.node_ep(i));
      EXPECT_EQ(via.back(), g.node_ep(d));
      EXPECT_LE(static_cast<int>(via.size()) - 1, cfg.max_hops);
      double chain = 0.0;
      for (std::size_t h = 0; h + 1 < via.size(); ++h) {
        const int a = g.node_of_ep(via[h]);
        const int b = g.node_of_ep(via[h + 1]);
        ASSERT_NE(a, b);
        ASSERT_TRUE(g.edge_measured(a, b));
        chain += g.metric_delay_ms(a, b);
      }
      const double best = dist[static_cast<std::size_t>(i * n + d)];
      ASSERT_LT(best, kInfMetric);
      EXPECT_LE(chain, best * 1.25 + 1e-9)
          << "route " << i << " -> " << d << " far from optimal";
    }
  }
  // The pathological mesh must make some detours genuinely shortest.
  EXPECT_GT(multi_hop_routes, 0);
  EXPECT_GE(plane.convergence_round(), 0);
}

TEST(RoutePlane, HysteresisDampsFlaps) {
  wkld::World world_a(kSeed, topo::TopologyParams{}, pathological_cloud());
  wkld::World world_b(kSeed, topo::TopologyParams{}, pathological_cloud());

  RouteConfig chase;
  chase.policy = Policy::kDelay;
  chase.hysteresis = 0.0;
  RoutePlane plane_chase(&world_a.internet(), &world_a.flow(), world_a.seed(),
                         chase);

  RouteConfig damped;
  damped.policy = Policy::kDelay;
  damped.hysteresis = 0.25;
  RoutePlane plane_damped(&world_b.internet(), &world_b.flow(),
                          world_b.seed(), damped);

  warm(&plane_chase, 40);
  warm(&plane_damped, 40);

  // Same worlds, same measurement noise: the only difference is damping.
  EXPECT_LE(plane_damped.flaps(), plane_chase.flaps());
  EXPECT_EQ(plane_chase.rounds(), 40);
  EXPECT_EQ(plane_damped.rounds(), 40);
}

TEST(RoutePlane, BackpressureQueuesStayBounded) {
  wkld::World world(kSeed, topo::TopologyParams{}, pathological_cloud());
  RouteConfig cfg;
  cfg.policy = Policy::kBackpressure;
  RoutePlane plane(&world.internet(), &world.flow(), world.seed(), cfg);

  const int rounds = 40;
  double peak_queue = 0.0;
  for (int k = 0; k < rounds; ++k) {
    plane.step(sim::Time::seconds(k + 1));
    for (const RoutingAgent& a : plane.agents()) {
      for (double q : a.queue) peak_queue = std::max(peak_queue, q);
    }
  }
  // Drain capacity exceeds the arrival rate on every healthy edge, so the
  // virtual queues must stay near empty instead of growing with rounds —
  // the stability half of the backpressure guarantee.
  EXPECT_LT(peak_queue, cfg.bp_arrival * 20.0);
  EXPECT_GT(plane.rounds(), 0);

  // Spot-check table sanity: installed next-hops are real node indices.
  const int n = plane.graph().size();
  for (const RoutingAgent& a : plane.agents()) {
    for (int d = 0; d < n; ++d) {
      const RouteEntry& e = a.table[static_cast<std::size_t>(d)];
      if (d == a.node || e.next < 0) continue;
      EXPECT_LT(e.next, n);
      EXPECT_NE(e.next, a.node);
    }
  }
}

TEST(RoutePlane, DcOutageWithdrawsAndRestoresRoutes) {
  wkld::World world(kSeed);
  auto& net = world.internet();
  RouteConfig cfg;
  cfg.policy = Policy::kDelay;
  RoutePlane plane(&net, &world.flow(), world.seed(), cfg);
  warm(&plane, 8);

  const OverlayGraph& g = plane.graph();
  const int tok = net.dc_endpoint("tok");
  const int down = g.node_of_ep(tok);
  ASSERT_GE(down, 0);
  ASSERT_TRUE(g.node_up(down));

  std::vector<int> via;
  ASSERT_TRUE(plane.route(net.dc_endpoint("wdc"), tok, &via));

  // Take the DC dark exactly the way the chaos injector does: every BGP
  // adjacency of its cloud AS goes down through the production mutation
  // path, which must reach the graph via its listener — no polling.
  const std::uint64_t epoch_before = g.liveness_epoch();
  const std::uint64_t version_before = plane.route_version();
  const int dc_as = net.endpoint(tok).as_id;
  std::vector<std::pair<int, int>> downed;
  for (const auto& adj : net.ases()[static_cast<std::size_t>(dc_as)].adj) {
    if (adj.up) downed.emplace_back(dc_as, adj.nbr_as);
  }
  ASSERT_FALSE(downed.empty());
  for (const auto& [a, b] : downed) net.set_adjacency_up(a, b, false);

  EXPECT_GT(g.liveness_epoch(), epoch_before);
  EXPECT_GT(plane.route_version(), version_before);
  EXPECT_FALSE(g.node_up(down));
  EXPECT_FALSE(plane.route(net.dc_endpoint("wdc"), tok, &via));

  // After the next exchange round no surviving route may thread through
  // the dark DC.
  warm(&plane, 2, /*offset_s=*/8);
  const auto& eps = net.dc_endpoints();
  for (int a : eps) {
    for (int b : eps) {
      if (a == b || a == tok || b == tok) continue;
      ASSERT_TRUE(plane.route(a, b, &via));
      for (int ep : via) EXPECT_NE(ep, tok);
    }
  }

  // Restore: liveness flips back and routes to the DC re-form within a
  // couple of rounds (its edges were still measured while it was dark).
  for (const auto& [a, b] : downed) net.set_adjacency_up(a, b, true);
  EXPECT_TRUE(g.node_up(down));
  warm(&plane, 2, /*offset_s=*/10);
  EXPECT_TRUE(plane.route(net.dc_endpoint("wdc"), tok, &via));
  EXPECT_EQ(via.back(), tok);
}

// Replays a seeded chaos timeline (DC outages + a link-flap/storm mix)
// against two planes on the SAME world — one incremental, one running the
// full-recompute reference — and asserts the table fingerprints are
// bitwise identical at every round index. The window crosses fault begins,
// fault ends, periodic full refreshes, and plain quiescent rounds, so the
// delta path is exercised on every kind of round the plane has.
TEST(RoutePlane, IncrementalMatchesFullUnderChaos) {
  for (const Policy policy : {Policy::kDelay, Policy::kBackpressure}) {
    wkld::World world(kSeed, topo::TopologyParams{}, pathological_cloud());
    auto& net = world.internet();

    sim::EventQueue queue;
    chaos::ScenarioParams sp;
    sp.horizon = sim::Time::seconds(48);
    sp.link_flaps = 6;  // flap storm: several overlapping adjacency flaps
    sp.dc_outages = 2;
    sp.congestion_storms = 3;
    sp.gray_failures = 2;
    sp.mean_repair_s = 8.0;
    sp.min_repair_s = 3.0;
    const chaos::Scenario scenario =
        chaos::Scenario::generate(net, sp, kSeed, /*scenario_seed=*/7);
    chaos::Injector injector(&net, &queue);
    injector.arm(scenario);

    RouteConfig inc_cfg;
    inc_cfg.policy = policy;
    inc_cfg.incremental = true;
    inc_cfg.full_refresh_rounds = 16;  // several refreshes inside the window
    RouteConfig full_cfg = inc_cfg;
    full_cfg.incremental = false;
    // Both planes observe the same mutation timeline through their own
    // listeners; measurements are keyed on (seed, pair, t), so sharing the
    // world cannot couple them.
    RoutePlane inc(&net, &world.flow(), world.seed(), inc_cfg);
    RoutePlane full(&net, &world.flow(), world.seed(), full_cfg);

    const int rounds = 48;
    for (int k = 0; k < rounds; ++k) {
      const sim::Time t = sim::Time::seconds(k + 1);
      while (queue.next_time() <= t) queue.run_next();
      inc.step(t);
      full.step(t);
      ASSERT_EQ(inc.table_fingerprint(), full.table_fingerprint())
          << policy_name(policy) << " diverged at round " << k + 1;
    }
    EXPECT_GT(injector.begun(), 0u);

    // Identical change trajectories...
    EXPECT_EQ(inc.flaps(), full.flaps()) << policy_name(policy);
    EXPECT_EQ(inc.deltas_total(), full.deltas_total()) << policy_name(policy);
    EXPECT_EQ(inc.graph().edges_probed_total(),
              full.graph().edges_probed_total())
        << policy_name(policy);
    // ...for strictly less exchange work.
    EXPECT_LT(inc.entries_recomputed_total(), full.entries_recomputed_total())
        << policy_name(policy);
    // The probe budget must have bitten: far fewer probes than rounds * E.
    const int n = inc.graph().size();
    EXPECT_LT(inc.graph().edges_probed_total(),
              static_cast<std::uint64_t>(rounds) *
                  static_cast<std::uint64_t>(n) *
                  static_cast<std::uint64_t>(n - 1))
        << policy_name(policy);
  }
}

struct ControlResult {
  std::uint64_t decision_fp = 0;
  std::uint64_t table_fp = 0;
  std::uint64_t admitted = 0;
};

/// One full control-plane run with the plane wired into the ranker.
/// num_shards == 0 -> single Broker; threads only affects measurement
/// fan-out. Every field must be a pure function of the seed.
ControlResult run_control(Policy policy, int num_shards, int threads) {
  wkld::World world(kSeed, topo::TopologyParams{}, pathological_cloud(),
                    sim::Parallelism{threads});
  auto& net = world.internet();
  const auto clients = world.make_web_clients(8);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_all_overlays();

  RouteConfig rcfg;
  rcfg.policy = policy;
  rcfg.round_interval = sim::Time::seconds(1);
  RoutePlane plane(&net, &world.flow(), world.seed(), rcfg);

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.failover_delay = sim::Time::seconds(1);
  cfg.ranking.route_plane = &plane;

  std::unique_ptr<service::Broker> single;
  std::unique_ptr<service::ShardedBroker> sharded;
  service::ControlPlane* owner = nullptr;
  if (num_shards == 0) {
    single = std::make_unique<service::Broker>(&net, &world.meter(),
                                               &world.pool(), overlays, cfg);
    owner = single.get();
  } else {
    sharded = std::make_unique<service::ShardedBroker>(
        &net, &world.meter(), &world.pool(), overlays, num_shards, cfg);
    owner = sharded.get();
  }

  wkld::SessionChurnParams churn_params;
  churn_params.seed = kSeed ^ 0x90f7e5;
  churn_params.target_concurrent = 100;
  churn_params.mean_duration_s = 15.0;
  churn_params.horizon = sim::Time::seconds(30);
  wkld::SessionChurn churn(owner, clients, servers, churn_params);
  churn.start();
  if (single) single->warm_up();
  if (sharded) sharded->warm_up();
  owner->run_until(churn_params.horizon);

  ControlResult r;
  if (single) {
    r.decision_fp = single->ranker().partial_decision_fingerprint();
    r.admitted = single->stats().sessions_admitted;
  } else {
    const auto st = sharded->stats();
    r.decision_fp = st.decision_fingerprint;
    r.admitted = st.sessions_admitted;
  }
  r.table_fp = plane.table_fingerprint();
  return r;
}

TEST(RoutePlane, DecisionsBitwiseInvariantAcrossThreadsAndShards) {
  for (const Policy policy : {Policy::kDelay, Policy::kBackpressure}) {
    const ControlResult t1 = run_control(policy, /*num_shards=*/0, 1);
    const ControlResult t4 = run_control(policy, /*num_shards=*/0, 4);
    const ControlResult s4 = run_control(policy, /*num_shards=*/4, 4);

    EXPECT_GT(t1.admitted, 0u);
    EXPECT_EQ(t1.decision_fp, t4.decision_fp) << policy_name(policy);
    EXPECT_EQ(t1.table_fp, t4.table_fp) << policy_name(policy);
    EXPECT_EQ(t1.decision_fp, s4.decision_fp) << policy_name(policy);
    EXPECT_EQ(t1.table_fp, s4.table_fp) << policy_name(policy);
    EXPECT_EQ(t1.admitted, s4.admitted) << policy_name(policy);
  }
}

}  // namespace
}  // namespace cronets::route
