#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/internet.h"
#include "topo/materialize.h"
#include "transport/apps.h"

namespace cronets::topo {
namespace {

using sim::Time;

TopologyParams small_params(std::uint64_t seed = 5) {
  TopologyParams p;
  p.seed = seed;
  p.num_tier1 = 6;
  p.num_tier2 = 14;
  p.num_stubs = 40;
  return p;
}

TEST(Geo, DistanceAndDelaySanity) {
  const GeoPoint ny{40.7, -74.0};
  const GeoPoint london{51.5, -0.1};
  const double d = distance_km(ny, london);
  EXPECT_NEAR(d, 5570, 200);  // well-known great-circle distance
  EXPECT_GT(propagation_ms(d), 25.0);
  EXPECT_LT(propagation_ms(d), 50.0);
  EXPECT_DOUBLE_EQ(distance_km(ny, ny), 0.0);
}

TEST(Internet, GeneratesExpectedStructure) {
  Internet net(small_params(), CloudParams{});
  int t1 = 0, t2 = 0, stub = 0, dc = 0;
  for (const auto& as : net.ases()) {
    switch (as.tier) {
      case Tier::kTier1: ++t1; break;
      case Tier::kTier2: ++t2; break;
      case Tier::kStub: ++stub; break;
      case Tier::kCloudDc: ++dc; break;
    }
    EXPECT_FALSE(as.routers.empty());
    const std::size_t per_border = as.agg_routers.empty() ? 1 : 2;
    EXPECT_EQ(as.intra_links.size(), per_border * (as.routers.size() - 1));
  }
  EXPECT_EQ(t1, 6);
  EXPECT_EQ(t2, 14);
  EXPECT_EQ(stub, 40);
  EXPECT_EQ(dc, 7);  // default CloudParams
  EXPECT_EQ(net.dc_endpoints().size(), 7u);
}

TEST(Internet, DeterministicForSeed) {
  Internet a(small_params(9), CloudParams{});
  Internet b(small_params(9), CloudParams{});
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].router_a, b.links()[i].router_a);
    EXPECT_DOUBLE_EQ(a.links()[i].bg_fwd.mean_util, b.links()[i].bg_fwd.mean_util);
  }
  // A different seed produces a world with a different condition
  // fingerprint (counts can coincide; the drawn utilizations cannot).
  Internet c(small_params(10), CloudParams{});
  double fp_a = 0, fp_c = 0;
  for (const auto& l : a.links()) fp_a += l.bg_fwd.mean_util + l.delay_ms;
  for (const auto& l : c.links()) fp_c += l.bg_fwd.mean_util + l.delay_ms;
  EXPECT_NE(fp_a, fp_c);
}

TEST(Internet, EveryStubReachesEveryDc) {
  Internet net(small_params(), CloudParams{});
  for (const auto& as : net.ases()) {
    if (as.tier != Tier::kStub) continue;
    for (int dc_ep : net.dc_endpoints()) {
      const int dst_as = net.endpoint(dc_ep).as_id;
      EXPECT_FALSE(net.routing().as_path(as.id, dst_as).empty())
          << as.name << " cannot reach " << net.ases()[dst_as].name;
    }
  }
}

TEST(Routing, PathsAreValleyFree) {
  Internet net(small_params(), CloudParams{});
  auto rel_between = [&](int a, int b) -> Rel {
    for (const auto& adj : net.ases()[a].adj) {
      if (adj.nbr_as == b) return adj.rel;
    }
    ADD_FAILURE() << "no adjacency " << a << "->" << b;
    return Rel::kPeerWith;
  };
  // Check a sample of stub-to-stub paths.
  std::vector<int> stubs;
  for (const auto& as : net.ases()) {
    if (as.tier == Tier::kStub) stubs.push_back(as.id);
  }
  int checked = 0;
  for (std::size_t i = 0; i < stubs.size() && checked < 200; i += 3) {
    for (std::size_t j = 1; j < stubs.size() && checked < 200; j += 7) {
      if (stubs[i] == stubs[j]) continue;
      const auto path = net.routing().as_path(stubs[i], stubs[j]);
      if (path.empty()) continue;
      ++checked;
      // Pattern: (customer->provider)* (peer)? (provider->customer)*.
      int phase = 0;  // 0=up, 1=after peer, 2=down
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const Rel rel = rel_between(path[k], path[k + 1]);
        if (rel == Rel::kCustomerOf) {
          EXPECT_EQ(phase, 0) << "up edge after going flat/down";
        } else if (rel == Rel::kPeerWith) {
          EXPECT_LE(phase, 0) << "second peer edge or peer after down";
          phase = 1;
        } else {
          phase = 2;
        }
      }
    }
  }
  EXPECT_GT(checked, 50);
}

TEST(Routing, PathEndpointsAndAdjacency) {
  Internet net(small_params(), CloudParams{});
  const int c1 = net.add_client(Region::kEurope, "c1");
  const int c2 = net.add_client(Region::kAsia, "c2");
  RouterPath p = net.path(c1, c2);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.as_seq.front(), net.endpoint(c1).as_id);
  EXPECT_EQ(p.as_seq.back(), net.endpoint(c2).as_id);
  EXPECT_EQ(p.routers.front(), net.endpoint(c1).access_router);
  EXPECT_EQ(p.routers.back(), net.endpoint(c2).access_router);
  // Traversal count = routers + host links at both ends.
  EXPECT_EQ(p.traversals.size(), p.routers.size() + 1);
  // Consecutive routers are connected by the named link.
  for (std::size_t i = 1; i + 1 < p.traversals.size(); ++i) {
    const TopoLink& l = net.links()[p.traversals[i].link_id];
    const int from = p.routers[i - 1];
    const int to = p.routers[i];
    if (p.traversals[i].forward) {
      EXPECT_EQ(l.router_a, from);
      EXPECT_EQ(l.router_b, to);
    } else {
      EXPECT_EQ(l.router_b, from);
      EXPECT_EQ(l.router_a, to);
    }
  }
}

TEST(Routing, IntercontinentalRttExceedsRegional) {
  Internet net(small_params(), CloudParams{});
  const int eu1 = net.add_client(Region::kEurope, "eu1");
  const int eu2 = net.add_client(Region::kEurope, "eu2");
  const int asia = net.add_client(Region::kAsia, "as1");
  const double rtt_regional = net.base_rtt_ms(net.path(eu1, eu2));
  const double rtt_intercont = net.base_rtt_ms(net.path(eu1, asia));
  EXPECT_LT(rtt_regional, 120.0);
  EXPECT_GT(rtt_intercont, 100.0);
  EXPECT_GT(rtt_intercont, rtt_regional);
}

TEST(Routing, OverlayLegsAreLongerInHops) {
  // Concatenated overlay paths should usually have more router hops than
  // the direct path (the paper's §V-B observation).
  Internet net(small_params(), CloudParams{});
  const int c = net.add_client(Region::kEurope, "c");
  const int s = net.add_client(Region::kNaEast, "s");
  // Individual overlay routes can occasionally be *shorter* (cloud peering
  // shortcuts), but on average the two concatenated legs exceed the direct
  // hop count — the trend behind the paper's §V-B hop-count observation.
  const auto direct = net.path(s, c);
  ASSERT_TRUE(direct.valid);
  double total_hops = 0;
  for (int via : net.dc_endpoints()) {
    const auto leg1 = net.path(s, via);
    const auto leg2 = net.path(via, c);
    ASSERT_TRUE(leg1.valid && leg2.valid);
    total_hops += static_cast<double>(leg1.routers.size() + leg2.routers.size());
  }
  const double avg = total_hops / static_cast<double>(net.dc_endpoints().size());
  EXPECT_GT(avg, static_cast<double>(direct.routers.size()));
}

TEST(Routing, BackbonePathUsesBackboneLink) {
  Internet net(small_params(), CloudParams{});
  const int a = net.dc_endpoints()[0];
  const int b = net.dc_endpoints()[1];
  RouterPath p = net.backbone_path(a, b);
  ASSERT_TRUE(p.valid);
  bool has_backbone = false;
  for (const auto& t : p.traversals) {
    if (net.links()[t.link_id].is_backbone) has_backbone = true;
  }
  EXPECT_TRUE(has_backbone);
  // Public path between the same DCs does not use the backbone.
  RouterPath pub = net.path(a, b);
  for (const auto& t : pub.traversals) {
    EXPECT_FALSE(net.links()[t.link_id].is_backbone);
  }
}

TEST(Internet, CoreLinksRunHotterThanCloudLinks) {
  Internet net(small_params(), CloudParams{});
  double core_sum = 0, cloud_sum = 0;
  int core_n = 0, cloud_n = 0;
  for (const auto& l : net.links()) {
    if (l.is_core) {
      core_sum += l.bg_fwd.mean_util;
      ++core_n;
    } else if (l.is_backbone) {
      cloud_sum += l.bg_fwd.mean_util;
      ++cloud_n;
    }
  }
  ASSERT_GT(core_n, 0);
  ASSERT_GT(cloud_n, 0);
  EXPECT_GT(core_sum / core_n, cloud_sum / cloud_n);
}

TEST(Materializer, PacketTransferAcrossGeneratedTopology) {
  Internet topo(small_params(), CloudParams{});
  const int client = topo.add_client(Region::kEurope, "client");
  const int server = topo.add_server(Region::kNaEast, "server");

  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{3});
  Materializer mat(&topo, &netw);
  mat.add_pair(server, client);

  transport::TcpConfig cfg;
  transport::BulkSink sink(mat.host(client), 5001, cfg);
  transport::BulkSource src(mat.host(server), 1234, mat.host(client)->addr(), 5001,
                            cfg);
  src.start();
  simv.run_until(Time::seconds(10));
  EXPECT_GT(sink.bytes_received(), 100'000u);
  EXPECT_TRUE(src.connection().established());
}

TEST(Materializer, SharedLinksAreDeduplicated) {
  Internet topo(small_params(), CloudParams{});
  const int c1 = topo.add_client(Region::kEurope, "c1");
  const int c2 = topo.add_client(Region::kEurope, "c2");
  const int s = topo.add_server(Region::kNaEast, "s");

  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{3});
  Materializer mat(&topo, &netw);
  mat.add_pair(s, c1);
  const std::size_t links_after_first = netw.links().size();
  mat.add_pair(s, c2);
  // The two paths share the server's access + stub segments at minimum, so
  // the second pair must add fewer links than the first.
  EXPECT_LT(netw.links().size() - links_after_first, links_after_first);

  // Each topo link materialized exactly once per direction.
  std::set<std::pair<net::Node*, net::Node*>> seen;
  for (const auto& l : netw.links()) {
    EXPECT_TRUE(seen.insert({l->src(), l->dst()}).second);
  }
}

TEST(Materializer, EventsApplyToMaterializedLinks) {
  Internet topo(small_params(), CloudParams{});
  const int c = topo.add_client(Region::kEurope, "c");
  const int s = topo.add_server(Region::kNaEast, "s");
  RouterPath p = topo.path(s, c);
  const int victim = p.traversals[p.traversals.size() / 2].link_id;
  topo.add_event(LinkEvent{victim, true, Time::zero(), Time::hours(1), 0.5});
  topo.add_event(LinkEvent{victim, false, Time::zero(), Time::hours(1), 0.5});

  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{3});
  Materializer mat(&topo, &netw);
  mat.add_pair(s, c);
  mat.apply_events();
  net::Link* l = mat.link(victim, true);
  ASSERT_NE(l, nullptr);
  const double boosted = l->background().utilization(Time::seconds(10));
  // Utilization must reflect the +0.5 boost (baseline is < 0.5 for most
  // links; boosted must exceed the boost alone).
  EXPECT_GE(boosted, 0.5);
}

}  // namespace
}  // namespace cronets::topo
