// Edge cases of the TCP state machine beyond the happy paths.

#include <gtest/gtest.h>

#include "testutil.h"
#include "transport/apps.h"
#include "transport/tcp.h"

namespace cronets::transport {
namespace {

using cronets::testutil::Dumbbell;
using cronets::testutil::mk_link;
using sim::Time;

TEST(TcpEdge, RstAbortsConnection) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool failed = false;
  client.set_on_failed([&] { failed = true; });
  client.connect();
  d.simv.run_until(Time::seconds(1));
  ASSERT_TRUE(client.established());

  // Forge a RST from the server side.
  net::Packet rst;
  rst.headers.push_back(net::Ipv4Header{
      .src = d.b->addr(), .dst = d.a->addr(), .proto = net::IpProto::kTcp});
  net::TcpSegment seg;
  seg.sport = 80;
  seg.dport = 1234;
  seg.rst = true;
  rst.body = seg;
  d.b->send(std::move(rst));
  d.simv.run_until(Time::seconds(2));
  EXPECT_TRUE(failed);
  EXPECT_TRUE(client.failed());
}

TEST(TcpEdge, LostSynIsRetransmitted) {
  Dumbbell d;
  TcpConfig cfg;
  cfg.rto_initial = Time::milliseconds(200);
  TcpListener listener(d.b, 80, cfg);
  // Blackhole the first SYN by taking the access link down briefly.
  net::Link* a_r = d.net.find_link(d.a, d.r);
  ASSERT_NE(a_r, nullptr);
  a_r->set_down(true);
  d.simv.schedule_in(Time::milliseconds(100), [&] { a_r->set_down(false); });

  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool connected = false;
  client.set_on_connected([&] { connected = true; });
  client.connect();
  d.simv.run_until(Time::seconds(3));
  EXPECT_TRUE(connected);
  EXPECT_GE(client.stats().rto_count, 1u);
}

TEST(TcpEdge, LostSynAckHandledByDuplicateSyn) {
  Dumbbell d;
  TcpConfig cfg;
  cfg.rto_initial = Time::milliseconds(200);
  TcpListener listener(d.b, 80, cfg);
  net::Link* r_b_rev = d.net.find_link(d.b, d.r);  // server -> router (SYN|ACK path)
  ASSERT_NE(r_b_rev, nullptr);
  r_b_rev->set_down(true);
  d.simv.schedule_in(Time::milliseconds(150), [&] { r_b_rev->set_down(false); });

  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool connected = false;
  client.set_on_connected([&] { connected = true; });
  client.connect();
  d.simv.run_until(Time::seconds(5));
  EXPECT_TRUE(connected);
}

TEST(TcpEdge, ZeroByteWriteIsHarmless) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  std::int64_t got = 0;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_data([&](std::int64_t n, std::uint64_t) { got += n; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_connected([&] {
    client.app_write(0);
    client.app_write(500);
  });
  client.connect();
  d.simv.run_until(Time::seconds(2));
  EXPECT_EQ(got, 500);
}

TEST(TcpEdge, SmallWritesCoalesceIntoSegments) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_connected([&] {
    for (int i = 0; i < 100; ++i) client.app_write(100);  // 10 KB total
  });
  client.connect();
  d.simv.run_until(Time::seconds(2));
  // No Nagle (like iperf's TCP_NODELAY): writes that arrive while the
  // window is open go out immediately, but backlogged bytes coalesce into
  // MSS-sized segments — so clearly fewer segments than writes.
  EXPECT_LT(client.stats().segs_sent, 80u);
  EXPECT_EQ(client.stats().bytes_acked, 10'000u);
}

TEST(TcpEdge, BothSidesTransferSimultaneously) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  std::int64_t server_got = 0, client_got = 0;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_data([&](std::int64_t n, std::uint64_t) { server_got += n; });
    c.app_write(300'000);  // server pushes too
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_data([&](std::int64_t n, std::uint64_t) { client_got += n; });
  client.set_on_connected([&] { client.app_write(200'000); });
  client.connect();
  d.simv.run_until(Time::seconds(10));
  EXPECT_EQ(server_got, 200'000);
  EXPECT_EQ(client_got, 300'000);
}

TEST(TcpEdge, CloseWithEmptyStreamSendsBareFIN) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  bool peer_closed = false;
  listener.set_on_accept([&](TcpConnection& c) {
    c.set_on_peer_closed([&] { peer_closed = true; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  client.set_on_connected([&] { client.close(); });
  client.connect();
  d.simv.run_until(Time::seconds(2));
  EXPECT_TRUE(peer_closed);
}

TEST(TcpEdge, SimultaneousCloseCompletesBothSides) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  TcpConnection* server = nullptr;
  bool server_closed_cb = false;
  listener.set_on_accept([&](TcpConnection& c) {
    server = &c;
    c.set_on_closed([&] { server_closed_cb = true; });
  });
  TcpConnection client(d.a, 1234, d.b->addr(), 80, cfg);
  bool client_closed_cb = false;
  client.set_on_closed([&] { client_closed_cb = true; });
  client.set_on_connected([&] {
    client.app_write(1000);
    client.close();
  });
  client.connect();
  d.simv.run_until(Time::milliseconds(500));
  ASSERT_NE(server, nullptr);
  server->close();
  d.simv.run_until(Time::seconds(5));
  EXPECT_TRUE(client_closed_cb);
  EXPECT_TRUE(server_closed_cb);
  EXPECT_EQ(client.state(), TcpConnection::State::kDone);
  EXPECT_EQ(server->state(), TcpConnection::State::kDone);
}

TEST(TcpEdge, SurvivesExtremeAsymmetricAckLoss) {
  // Heavy loss on the ACK path only: cumulative acks absorb the losses.
  Dumbbell d(mk_link(1e9, Time::milliseconds(1)),
             mk_link(100e6, Time::milliseconds(10)));
  net::Link* b_r = d.net.find_link(d.b, d.r);  // reverse (ACK) leg
  ASSERT_NE(b_r, nullptr);
  // Note: background loss applies per direction; inject by replacing the
  // reverse link's conditions through failure pulses instead.
  int pulse = 0;
  std::function<void()> pulser = [&] {
    b_r->set_down(pulse++ % 3 == 0);  // 1/3 of time dark
    if (pulse < 60) d.simv.schedule_in(Time::milliseconds(100), pulser);
    else b_r->set_down(false);
  };
  d.simv.schedule_in(Time::seconds(1), pulser);

  TcpConfig cfg;
  BulkSink sink(d.b, 5001, cfg);
  BulkSource src(d.a, 1234, d.b->addr(), 5001, cfg);
  src.start();
  d.simv.run_until(Time::seconds(20));
  EXPECT_GT(sink.bytes_received(), 20'000'000u);
}

TEST(TcpEdge, ListenerIgnoresStrayNonSynSegments) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  // A data segment from an unknown peer must not create a connection.
  net::Packet stray;
  stray.headers.push_back(net::Ipv4Header{
      .src = d.a->addr(), .dst = d.b->addr(), .proto = net::IpProto::kTcp});
  net::TcpSegment seg;
  seg.sport = 999;
  seg.dport = 80;
  seg.payload = 100;
  seg.has_ack = true;
  stray.body = seg;
  d.a->send(std::move(stray));
  d.simv.run_until(Time::seconds(1));
  EXPECT_TRUE(listener.connections().empty());
}

TEST(TcpEdge, PortsAreReusableAfterConnectionDestroyed) {
  Dumbbell d;
  TcpConfig cfg;
  TcpListener listener(d.b, 80, cfg);
  {
    TcpConnection first(d.a, 1234, d.b->addr(), 80, cfg);
    first.connect();
    d.simv.run_until(Time::seconds(1));
    EXPECT_TRUE(first.established());
  }  // destructor unbinds port 1234
  TcpConnection second(d.a, 1234, d.b->addr(), 80, cfg);
  bool connected = false;
  second.set_on_connected([&] { connected = true; });
  second.connect();
  d.simv.run_until(Time::seconds(5));
  // The listener still holds the old (dead) connection for this peer/port
  // pair, so the fresh SYN is routed to it. A brand-new port works:
  TcpConnection third(d.a, 1235, d.b->addr(), 80, cfg);
  bool third_up = false;
  third.set_on_connected([&] { third_up = true; });
  third.connect();
  d.simv.run_until(Time::seconds(10));
  EXPECT_TRUE(third_up);
  (void)connected;
}

TEST(TcpEdge, FileDownloaderReportsGoodput) {
  Dumbbell d;
  TcpConfig cfg;
  FileServer server(d.b, 80, 2'000'000, cfg);
  FileDownloader down(d.a, 1234, d.b->addr(), 80, cfg);
  down.start(&d.simv);
  d.simv.run_until(Time::seconds(30));
  ASSERT_TRUE(down.done());
  EXPECT_GT(down.goodput_bps(), 1e6);
  EXPECT_LT(down.goodput_bps(), 100e6);
}

}  // namespace
}  // namespace cronets::transport
