#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace cronets::sim {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Time::seconds(2).ns(), 2'000'000'000);
  EXPECT_EQ(Time::milliseconds(3).ns(), 3'000'000);
  EXPECT_EQ(Time::microseconds(5).ns(), 5'000);
  EXPECT_DOUBLE_EQ(Time::milliseconds(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::seconds(2).to_milliseconds(), 2000.0);
  EXPECT_EQ(Time::minutes(2), Time::seconds(120));
  EXPECT_EQ(Time::hours(1), Time::minutes(60));
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::milliseconds(10);
  const Time b = Time::milliseconds(4);
  EXPECT_EQ((a + b).ns(), 14'000'000);
  EXPECT_EQ((a - b).ns(), 6'000'000);
  EXPECT_EQ((a * 3).ns(), 30'000'000);
  EXPECT_EQ((a / 2).ns(), 5'000'000);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(TimeTest, TransmissionTime) {
  // 1250 bytes at 10 Mbps = 1 ms.
  EXPECT_EQ(transmission_time(1250, 10e6), Time::milliseconds(1));
}

TEST(TimeTest, ToString) {
  EXPECT_EQ(Time::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(Time::milliseconds(3).to_string(), "3.000ms");
  EXPECT_EQ(Time::nanoseconds(42).to_string(), "42ns");
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::seconds(1), [&] { order.push_back(1); });
  q.schedule(Time::seconds(1), [&] { order.push_back(2); });
  q.schedule(Time::milliseconds(500), [&] { order.push_back(0); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, Cancellation) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, HandleFlipsAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(Time::seconds(1), [] {});
  EXPECT_TRUE(h.pending());
  q.run_next();
  EXPECT_FALSE(h.pending());
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  Simulator simv;
  std::vector<std::int64_t> at;
  simv.schedule_in(Time::milliseconds(5), [&] { at.push_back(simv.now().ns()); });
  simv.schedule_in(Time::milliseconds(15), [&] { at.push_back(simv.now().ns()); });
  simv.run_until(Time::milliseconds(10));
  EXPECT_EQ(at.size(), 1u);
  EXPECT_EQ(simv.now(), Time::milliseconds(10));
  simv.run_until(Time::milliseconds(20));
  EXPECT_EQ(at.size(), 2u);
  EXPECT_EQ(at[1], Time::milliseconds(15).ns());
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator simv;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) simv.schedule_in(Time::milliseconds(1), tick);
  };
  simv.schedule_in(Time::milliseconds(1), tick);
  simv.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(simv.now(), Time::milliseconds(5));
  EXPECT_EQ(simv.events_run(), 5u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkIndependence) {
  Rng parent(9);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, UniformBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const auto k = r.uniform_int(-2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

TEST(RngTest, WeightedIndex) {
  Rng r(5);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ParetoTail) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

}  // namespace
}  // namespace cronets::sim
