#include <gtest/gtest.h>

#include "model/flow_model.h"
#include "topo/internet.h"

namespace cronets::model {
namespace {

using sim::Time;

topo::TopologyParams small_params() {
  topo::TopologyParams p;
  p.seed = 5;
  p.num_tier1 = 6;
  p.num_tier2 = 14;
  p.num_stubs = 40;
  return p;
}

TEST(Pftk, DecreasesWithRttAndLoss) {
  TcpModelParams p;
  const double base = pftk_throughput_bps(50, 0.001, 1e9, 1e9, p);
  EXPECT_LT(pftk_throughput_bps(100, 0.001, 1e9, 1e9, p), base);
  EXPECT_LT(pftk_throughput_bps(50, 0.004, 1e9, 1e9, p), base);
}

TEST(Pftk, MathisSqrtScaling) {
  TcpModelParams p;
  // Quadrupling the loss should halve throughput (in the sqrt regime).
  const double t1 = pftk_throughput_bps(100, 0.0005, 1e12, 1e12, p);
  const double t4 = pftk_throughput_bps(100, 0.002, 1e12, 1e12, p);
  EXPECT_NEAR(t1 / t4, 2.0, 0.35);
  // Doubling RTT halves throughput.
  const double t2 = pftk_throughput_bps(200, 0.0005, 1e12, 1e12, p);
  EXPECT_NEAR(t1 / t2, 2.0, 0.25);
}

TEST(Pftk, WindowBoundDominatesOnCleanPath) {
  TcpModelParams p;
  p.rwnd_bytes = 1 << 20;  // 1 MB
  // No loss: throughput = rwnd / rtt.
  const double t = pftk_throughput_bps(100, 0.0, 1e12, 1e12, p);
  EXPECT_NEAR(t, (1 << 20) * 8.0 / 0.1, 1e4);
}

TEST(Pftk, CapacityCapApplies) {
  TcpModelParams p;
  const double t = pftk_throughput_bps(10, 0.0, 50e6, 100e6, p);
  EXPECT_LE(t, 50e6 + 1);
}

TEST(FlowModel, UtilizationWithinBoundsAndNearMean) {
  topo::Internet topo(small_params(), topo::CloudParams{});
  FlowModel fm(&topo, 77);
  // Pick a core link and sample it across a day.
  int link = -1;
  for (const auto& l : topo.links()) {
    if (l.is_core && l.bg_fwd.mean_util > 0.3 && l.bg_fwd.mean_util < 0.6) {
      link = l.id;
      break;
    }
  }
  ASSERT_GE(link, 0);
  const double mean = topo.links()[link].bg_fwd.mean_util;
  double sum = 0;
  int n = 0;
  for (int i = 0; i < 500; ++i) {
    const double u = fm.utilization(link, true, Time::minutes(i * 3));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 0.98);
    sum += u;
    ++n;
  }
  EXPECT_NEAR(sum / n, mean, 0.12);  // diurnal swing adds slack
}

TEST(FlowModel, TemporalCorrelationDecays) {
  topo::Internet topo(small_params(), topo::CloudParams{});
  FlowModel fm(&topo, 78);
  int link = -1;
  for (const auto& l : topo.links()) {
    if (l.is_core && l.bg_fwd.diurnal_amp < 0.02) {
      link = l.id;
      break;
    }
  }
  ASSERT_GE(link, 0);
  // Successive samples 1 epoch apart should hug each other much tighter
  // than samples hours apart.
  double close_diff = 0, far_diff = 0;
  double prev_close = fm.utilization(link, true, Time::zero());
  for (int i = 1; i <= 200; ++i) {
    const double u = fm.utilization(link, true, Time::milliseconds(500 * i));
    close_diff += std::abs(u - prev_close);
    prev_close = u;
  }
  FlowModel fm2(&topo, 78);
  double prev_far = fm2.utilization(link, false, Time::zero());
  for (int i = 1; i <= 200; ++i) {
    const double u = fm2.utilization(link, false, Time::hours(3 * i));
    far_diff += std::abs(u - prev_far);
    prev_far = u;
  }
  EXPECT_LT(close_diff, far_diff);
}

TEST(FlowModel, EventBoostsUtilization) {
  topo::Internet topo(small_params(), topo::CloudParams{});
  const int link = topo.links()[10].id;
  topo.add_event(topo::LinkEvent{link, true, Time::hours(1), Time::hours(2), 0.6});
  FlowModel fm(&topo, 79);
  const double during = fm.utilization(link, true, Time::hours(1) + Time::minutes(5));
  const double after = fm.utilization(link, true, Time::hours(3));
  EXPECT_GT(during, after);
  EXPECT_GE(during, 0.55);
}

TEST(FlowModel, PathMetricsComposeAlongTraversals) {
  topo::Internet topo(small_params(), topo::CloudParams{});
  FlowModel fm(&topo, 80);
  const int c = topo.add_client(topo::Region::kEurope, "c");
  const int s = topo.add_server(topo::Region::kNaEast, "s");
  const auto path = topo.path(s, c);
  const PathMetrics m = fm.sample(path, Time::hours(1));
  EXPECT_GT(m.rtt_ms, topo.base_rtt_ms(path) * 0.99);
  EXPECT_LT(m.rtt_ms, topo.base_rtt_ms(path) + 80.0);
  EXPECT_GE(m.loss, 0.0);
  EXPECT_LT(m.loss, 0.6);
  EXPECT_LE(m.capacity_bps, 1e9 + 1);  // server access link caps it
  EXPECT_EQ(m.hop_count, static_cast<int>(path.routers.size()));
}

TEST(FlowModel, ConcatAddsRttAndLoss) {
  PathMetrics a{.rtt_ms = 40, .loss = 0.01, .residual_bps = 5e8, .capacity_bps = 1e9,
                .hop_count = 10};
  PathMetrics b{.rtt_ms = 60, .loss = 0.02, .residual_bps = 2e8, .capacity_bps = 1e8,
                .hop_count = 12};
  const PathMetrics c = FlowModel::concat(a, b);
  EXPECT_DOUBLE_EQ(c.rtt_ms, 100.0);
  EXPECT_NEAR(c.loss, 1 - 0.99 * 0.98, 1e-12);
  EXPECT_DOUBLE_EQ(c.residual_bps, 2e8);
  EXPECT_DOUBLE_EQ(c.capacity_bps, 1e8);
  EXPECT_EQ(c.hop_count, 22);
}

TEST(FlowModel, SplitBeatsPlainOnBalancedLossyLegs) {
  topo::Internet topo(small_params(), topo::CloudParams{});
  FlowModel fm(&topo, 81);
  fm.params().noise_sigma = 0.0;
  PathMetrics leg{.rtt_ms = 80, .loss = 0.004, .residual_bps = 1e9,
                  .capacity_bps = 1e9, .hop_count = 10};
  double split_sum = 0, plain_sum = 0;
  for (int i = 0; i < 50; ++i) {
    split_sum += fm.overlay_split(leg, leg);
    plain_sum += fm.overlay_plain(leg, leg);
  }
  // Mathis: same loss per leg at half the RTT -> at least ~1.9x.
  EXPECT_GT(split_sum, plain_sum * 1.8);
}

TEST(FlowModel, MptcpPredictors) {
  topo::Internet topo(small_params(), topo::CloudParams{});
  FlowModel fm(&topo, 82);
  fm.params().noise_sigma = 0.0;
  const std::vector<double> paths = {10e6, 40e6, 25e6};
  for (int i = 0; i < 20; ++i) {
    const double coupled = fm.mptcp_coupled(paths);
    EXPECT_GT(coupled, 35e6);
    EXPECT_LT(coupled, 45e6);
    const double uncoupled = fm.mptcp_uncoupled(paths, 100e6);
    EXPECT_GT(uncoupled, 70e6);
    EXPECT_LE(uncoupled, 97e6 + 1);
    // NIC cap binds when the sum exceeds it.
    EXPECT_LE(fm.mptcp_uncoupled({80e6, 90e6}, 100e6), 97e6 + 1);
  }
}

}  // namespace
}  // namespace cronets::model
