// The §IX future-work feature: a pair of MPTCP proxies lets plain-TCP
// endpoints ride the overlay. Client (plain TCP) -> ingress proxy ->
// MPTCP over two paths -> egress proxy -> server (plain TCP).

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "transport/mptcp_proxy.h"

namespace cronets::transport {
namespace {

using net::IpAddr;
using sim::Time;

/// client -- g1 (ingress gateway) == two disjoint paths == g2 (egress
/// gateway) -- server. The gateway pair speaks MPTCP; client and server
/// only ever see plain TCP.
struct ProxyNet {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{47}};
  net::Host* client;
  net::Host* g1;
  net::Host* g2;
  net::Host* server;
  net::Link* path1_fwd;
  IpAddr alias{0x0b000001};

  ProxyNet(double cap1, double cap2) {
    client = net.add_host("client");
    g1 = net.add_host("g1");
    g2 = net.add_host("g2");
    server = net.add_host("server");
    auto* r1 = net.add_router("R1");
    auto* r2 = net.add_router("R2");
    net::LinkSpec lan, p1, p2;
    lan.capacity_bps = 1e9;
    lan.prop_delay = Time::milliseconds(1);
    p1.capacity_bps = cap1;
    p1.prop_delay = Time::milliseconds(15);
    p2.capacity_bps = cap2;
    p2.prop_delay = Time::milliseconds(25);
    auto [c_g1, g1_c] = net.add_link(client, g1, lan);
    auto [g1_r1, r1_g1] = net.add_link(g1, r1, p1);
    auto [r1_g2, g2_r1] = net.add_link(r1, g2, p1);
    auto [g1_r2, r2_g1] = net.add_link(g1, r2, p2);
    auto [r2_g2, g2_r2] = net.add_link(r2, g2, p2);
    auto [g2_s, s_g2] = net.add_link(g2, server, lan);
    path1_fwd = r1_g2;

    // Client <-> g1.
    client->add_route(g1->addr(), c_g1);
    g1->add_route(client->addr(), g1_c);
    // g1 -> g2 primary via r1; alias via r2.
    g1->add_route(g2->addr(), g1_r1);
    r1->add_route(g2->addr(), r1_g2);
    g2->add_alias(alias);
    g1->add_route(alias, g1_r2);
    r2->add_route(alias, r2_g2);
    // Reverse (ACKs) via r1.
    g2->add_route(g1->addr(), g2_r1);
    r1->add_route(g1->addr(), r1_g1);
    r2->add_route(g1->addr(), r2_g1);
    (void)g2_r2;
    // g2 <-> server.
    g2->add_route(server->addr(), g2_s);
    server->add_route(g2->addr(), s_g2);
  }
};

TEST(MptcpProxy, PlainTcpEndpointsRideTheOverlay) {
  ProxyNet n(40e6, 40e6);
  TcpConfig cfg;
  BulkSink server_sink(n.server, 9000, cfg);
  MptcpEgressProxy egress(n.g2, 4500, n.server->addr(), 9000, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = Coupling::kUncoupledCubic;
  MptcpIngressProxy ingress(n.g1, 8080, {n.g2->addr(), n.alias}, 4500, mcfg);

  TcpConnection client(n.client, 1234, n.g1->addr(), 8080, cfg);
  client.set_on_connected([&] { client.app_write(5'000'000); });
  client.connect();
  n.simv.run_until(Time::seconds(20));
  EXPECT_EQ(server_sink.bytes_received(), 5'000'000u);
  EXPECT_EQ(ingress.accepted_bytes(), 5'000'000u);
  EXPECT_EQ(egress.relayed_bytes(), 5'000'000u);
  // Both MPTCP paths carried data.
  EXPECT_GT(ingress.mptcp().subflows()[0]->stats().bytes_sent, 200'000u);
  EXPECT_GT(ingress.mptcp().subflows()[1]->stats().bytes_sent, 200'000u);
}

TEST(MptcpProxy, AggregatesBeyondSinglePathCapacity) {
  // Two 20M paths: a plain TCP client stream should achieve well above a
  // single path's worth end-to-end.
  ProxyNet n(20e6, 20e6);
  TcpConfig cfg;
  BulkSink server_sink(n.server, 9000, cfg);
  MptcpEgressProxy egress(n.g2, 4500, n.server->addr(), 9000, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = Coupling::kUncoupledCubic;
  MptcpIngressProxy ingress(n.g1, 8080, {n.g2->addr(), n.alias}, 4500, mcfg);

  TcpConnection client(n.client, 1234, n.g1->addr(), 8080, cfg);
  client.set_on_connected([&] { client.set_infinite_source(true); });
  client.connect();
  n.simv.run_until(Time::seconds(20));
  const double bps = server_sink.bytes_received() * 8.0 / 20.0;
  EXPECT_GT(bps, 24e6);  // > a single 20M path
}

TEST(MptcpProxy, SurvivesPathFailureTransparently) {
  ProxyNet n(30e6, 30e6);
  TcpConfig cfg;
  cfg.max_consecutive_rtos = 4;
  cfg.rto_initial = Time::milliseconds(200);
  BulkSink server_sink(n.server, 9000, cfg);
  MptcpEgressProxy egress(n.g2, 4500, n.server->addr(), 9000, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpIngressProxy ingress(n.g1, 8080, {n.g2->addr(), n.alias}, 4500, mcfg);

  TcpConnection client(n.client, 1234, n.g1->addr(), 8080, cfg);
  client.set_on_connected([&] { client.app_write(20'000'000); });
  client.connect();
  // Kill the primary inter-gateway path mid-transfer; the client's plain
  // TCP connection must never notice.
  n.simv.schedule_in(Time::seconds(3), [&] { n.path1_fwd->set_down(true); });
  n.simv.run_until(Time::seconds(60));
  EXPECT_EQ(server_sink.bytes_received(), 20'000'000u);
  EXPECT_FALSE(client.failed());
}

}  // namespace
}  // namespace cronets::transport
