#include <gtest/gtest.h>

#include "core/selection.h"

namespace cronets::core {
namespace {

PairHistory stable_history() {
  // Overlay 1 is always best (10); overlay 0 mediocre; direct poor.
  PairHistory h;
  for (int t = 0; t < 200; ++t) {
    h.direct.push_back(2.0);
    h.overlay.push_back({5.0, 10.0});
  }
  return h;
}

TEST(Bandit, ConvergesToBestArmOnStationaryHistory) {
  BanditSelector b(0.05, 3);
  const auto achieved = b.achieved(stable_history());
  // Late samples should almost always take the best arm.
  double tail = 0.0;
  for (std::size_t t = 150; t < achieved.size(); ++t) tail += achieved[t];
  EXPECT_GT(tail / 50.0, 9.0);
}

TEST(Bandit, ExploresEveryArmAtLeastOnce) {
  // With an always-equal history, achieved values are identical; use a
  // history where each arm has a unique value and verify all appear.
  PairHistory h;
  for (int t = 0; t < 60; ++t) {
    h.direct.push_back(1.0);
    h.overlay.push_back({2.0, 3.0});
  }
  BanditSelector b(0.3, 11);
  const auto achieved = b.achieved(h);
  bool saw1 = false, saw2 = false, saw3 = false;
  for (double v : achieved) {
    saw1 |= v == 1.0;
    saw2 |= v == 2.0;
    saw3 |= v == 3.0;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
  EXPECT_TRUE(saw3);
}

TEST(MinRtt, PicksLowestRttPath) {
  PairHistory h;
  h.direct = {10.0, 10.0};
  h.overlay = {{20.0, 5.0}, {20.0, 5.0}};
  h.direct_rtt_ms = {100.0, 40.0};
  h.overlay_rtt_ms = {{50.0, 200.0}, {90.0, 200.0}};
  const auto achieved = min_rtt_achieved(h);
  // t=0: overlay 0 has min RTT (50) -> 20 Mbps. t=1: direct min (40) -> 10.
  EXPECT_EQ(achieved, (std::vector<double>{20.0, 10.0}));
}

TEST(MinRtt, FallsBackToDirectWithoutRttData) {
  PairHistory h;
  h.direct = {3.0, 4.0};
  h.overlay = {{9.0}, {9.0}};
  const auto achieved = min_rtt_achieved(h);
  EXPECT_EQ(achieved, (std::vector<double>{3.0, 4.0}));
}

TEST(MinRtt, RttIsTheWrongMetricWhenLossDominates) {
  // Direct has the lowest RTT but (implicitly) heavy loss: min-RTT pins to
  // the slow path while a throughput-aware policy would not.
  PairHistory h;
  for (int t = 0; t < 10; ++t) {
    h.direct.push_back(1.0);           // slow (lossy)
    h.overlay.push_back({8.0});        // fast
    h.direct_rtt_ms.push_back(30.0);   // but lowest RTT
    h.overlay_rtt_ms.push_back({60.0});
  }
  const auto rtt_based = min_rtt_achieved(h);
  const auto best = mptcp_achieved(h, 1.0);
  double rtt_sum = 0, best_sum = 0;
  for (std::size_t t = 0; t < h.times(); ++t) {
    rtt_sum += rtt_based[t];
    best_sum += best[t];
  }
  EXPECT_LT(rtt_sum, best_sum * 0.2);
}

}  // namespace
}  // namespace cronets::core
