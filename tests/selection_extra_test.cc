#include <gtest/gtest.h>

#include "core/selection.h"

namespace cronets::core {
namespace {

PairHistory stable_history() {
  // Overlay 1 is always best (10); overlay 0 mediocre; direct poor.
  PairHistory h;
  for (int t = 0; t < 200; ++t) {
    h.direct.push_back(2.0);
    h.overlay.push_back({5.0, 10.0});
  }
  return h;
}

TEST(Bandit, ConvergesToBestArmOnStationaryHistory) {
  BanditSelector b(0.05, 3);
  const auto achieved = b.achieved(stable_history());
  // Late samples should almost always take the best arm.
  double tail = 0.0;
  for (std::size_t t = 150; t < achieved.size(); ++t) tail += achieved[t];
  EXPECT_GT(tail / 50.0, 9.0);
}

TEST(Bandit, ExploresEveryArmAtLeastOnce) {
  // With an always-equal history, achieved values are identical; use a
  // history where each arm has a unique value and verify all appear.
  PairHistory h;
  for (int t = 0; t < 60; ++t) {
    h.direct.push_back(1.0);
    h.overlay.push_back({2.0, 3.0});
  }
  BanditSelector b(0.3, 11);
  const auto achieved = b.achieved(h);
  bool saw1 = false, saw2 = false, saw3 = false;
  for (double v : achieved) {
    saw1 |= v == 1.0;
    saw2 |= v == 2.0;
    saw3 |= v == 3.0;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
  EXPECT_TRUE(saw3);
}

TEST(MinRtt, PicksLowestRttPath) {
  PairHistory h;
  h.direct = {10.0, 10.0};
  h.overlay = {{20.0, 5.0}, {20.0, 5.0}};
  h.direct_rtt_ms = {100.0, 40.0};
  h.overlay_rtt_ms = {{50.0, 200.0}, {90.0, 200.0}};
  const auto achieved = min_rtt_achieved(h);
  // t=0: overlay 0 has min RTT (50) -> 20 Mbps. t=1: direct min (40) -> 10.
  EXPECT_EQ(achieved, (std::vector<double>{20.0, 10.0}));
}

TEST(MinRtt, FallsBackToDirectWithoutRttData) {
  PairHistory h;
  h.direct = {3.0, 4.0};
  h.overlay = {{9.0}, {9.0}};
  const auto achieved = min_rtt_achieved(h);
  EXPECT_EQ(achieved, (std::vector<double>{3.0, 4.0}));
}

TEST(MinRtt, RttIsTheWrongMetricWhenLossDominates) {
  // Direct has the lowest RTT but (implicitly) heavy loss: min-RTT pins to
  // the slow path while a throughput-aware policy would not.
  PairHistory h;
  for (int t = 0; t < 10; ++t) {
    h.direct.push_back(1.0);           // slow (lossy)
    h.overlay.push_back({8.0});        // fast
    h.direct_rtt_ms.push_back(30.0);   // but lowest RTT
    h.overlay_rtt_ms.push_back({60.0});
  }
  const auto rtt_based = min_rtt_achieved(h);
  const auto best = mptcp_achieved(h, 1.0);
  double rtt_sum = 0, best_sum = 0;
  for (std::size_t t = 0; t < h.times(); ++t) {
    rtt_sum += rtt_based[t];
    best_sum += best[t];
  }
  EXPECT_LT(rtt_sum, best_sum * 0.2);
}

// --- Edge cases: empty, single-sample, and ragged histories --------------
// These shapes all occur in practice (a pair never probed, probed once,
// or with an overlay skipped at some samples due to a src/dst collision);
// every policy must degrade gracefully instead of indexing out of bounds.

TEST(SelectionEdge, EmptyHistoryEveryPolicy) {
  PairHistory h;
  EXPECT_EQ(h.times(), 0u);
  EXPECT_EQ(h.overlays(), 0u);
  EXPECT_EQ(min_overlays_required(h), 0);
  EXPECT_EQ(best_subset_avg_bps(h, 1), 0.0);
  EXPECT_TRUE(ProbeSelector(3).achieved(h).empty());
  EXPECT_TRUE(BanditSelector(0.1, 7).achieved(h).empty());
  EXPECT_TRUE(min_rtt_achieved(h).empty());
  EXPECT_TRUE(mptcp_achieved(h).empty());
}

TEST(SelectionEdge, DirectOnlyHistoryNoOverlayRows) {
  // `direct` populated but no overlay rows at all: every selector should
  // ride the direct path.
  PairHistory h;
  h.direct = {4.0, 5.0, 6.0};
  EXPECT_EQ(h.overlays(), 0u);
  EXPECT_EQ(min_overlays_required(h), 0);
  EXPECT_EQ(best_subset_avg_bps(h, 2), 0.0);
  EXPECT_EQ(ProbeSelector(1).achieved(h), h.direct);
  EXPECT_EQ(BanditSelector(0.5, 1).achieved(h), h.direct);
  const auto m = mptcp_achieved(h, 1.0);
  EXPECT_EQ(m, h.direct);
}

TEST(SelectionEdge, SingleSampleHistory) {
  PairHistory h;
  h.direct = {2.0};
  h.overlay = {{7.0, 3.0}};
  EXPECT_EQ(min_overlays_required(h), 1);
  EXPECT_DOUBLE_EQ(best_subset_avg_bps(h, 1), 7.0);
  EXPECT_EQ(ProbeSelector(5).achieved(h), std::vector<double>{7.0});
  EXPECT_EQ(BanditSelector(0.0, 9).achieved(h).size(), 1u);
  EXPECT_EQ(mptcp_achieved(h, 1.0), std::vector<double>{7.0});
}

TEST(SelectionEdge, RaggedRowsUseWidestAndFallBack) {
  // Overlay 1 only appears at t=0; at t=1 the row is narrower.
  PairHistory h;
  h.direct = {1.0, 1.0, 1.0};
  h.overlay = {{5.0, 9.0}, {5.0}, {5.0, 9.0}};
  EXPECT_EQ(h.overlays(), 2u);
  // ProbeSelector probing every sample pins overlay 1 at t=0, falls back
  // to direct at t=1 (pin missing from the row), re-pins at t=2.
  const auto got = ProbeSelector(1).achieved(h);
  EXPECT_EQ(got, (std::vector<double>{9.0, 5.0, 9.0}));
  // Bandit never indexes past a short row.
  const auto bandit = BanditSelector(0.5, 13).achieved(h);
  EXPECT_EQ(bandit.size(), 3u);
  // Subset metrics treat the missing entry as absent, not as zero-crash.
  EXPECT_GT(best_subset_avg_bps(h, 2), 0.0);
  EXPECT_GE(min_overlays_required(h), 1);
}

TEST(SelectionEdge, OverlayRowsShorterThanDirect) {
  // History where probing stopped recording overlay rows mid-stream.
  PairHistory h;
  h.direct = {3.0, 4.0, 5.0};
  h.overlay = {{8.0}};
  const auto probe = ProbeSelector(1).achieved(h);
  EXPECT_EQ(probe, (std::vector<double>{8.0, 4.0, 5.0}));
  const auto m = mptcp_achieved(h, 1.0);
  EXPECT_EQ(m, (std::vector<double>{8.0, 4.0, 5.0}));
  EXPECT_EQ(BanditSelector(0.2, 5).achieved(h).size(), 3u);
}

TEST(SelectionEdge, BestSubsetClampsOversizedK) {
  PairHistory h;
  h.direct = {1.0, 1.0};
  h.overlay = {{2.0, 6.0}, {4.0, 2.0}};
  std::vector<int> chosen;
  // k larger than the overlay count clamps to "all overlays".
  EXPECT_DOUBLE_EQ(best_subset_avg_bps(h, 99, &chosen), 5.0);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1}));
  EXPECT_EQ(best_subset_avg_bps(h, 0, &chosen), 0.0);
  EXPECT_TRUE(chosen.empty());
}

TEST(SelectionEdge, MinRttRowWiderThanThroughputRow) {
  // RTT view knows two overlays but only one has a throughput sample:
  // the RTT-only overlay must not be picked (no throughput to index).
  PairHistory h;
  h.direct = {10.0};
  h.overlay = {{20.0}};
  h.direct_rtt_ms = {100.0};
  h.overlay_rtt_ms = {{80.0, 5.0}};  // overlay 1: tempting RTT, no sample
  EXPECT_EQ(min_rtt_achieved(h), std::vector<double>{20.0});
}

}  // namespace
}  // namespace cronets::core
