#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "transport/mptcp.h"

namespace cronets::transport {
namespace {

using net::IpAddr;
using sim::Time;

/// Two disjoint forward paths A->B: via r1 (cap1) and via r2 (cap2, used by
/// the alias address). Reverse (ACK) traffic shares the r1 path.
struct TwoPathNet {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{11}};
  net::Host* a;
  net::Host* b;
  net::Router* r1;
  net::Router* r2;
  net::Link* a_r1;
  net::Link* r1_b;
  net::Link* a_r2;
  net::Link* r2_b;
  IpAddr alias{0x0b000001};

  TwoPathNet(double cap1, double cap2, Time d1 = Time::milliseconds(10),
             Time d2 = Time::milliseconds(10), double loss1 = 0.0,
             double loss2 = 0.0) {
    a = net.add_host("A");
    b = net.add_host("B");
    r1 = net.add_router("R1");
    r2 = net.add_router("R2");
    net::LinkSpec s1, s2, acc;
    acc.capacity_bps = 1e9;
    acc.prop_delay = Time::milliseconds(1);
    s1.capacity_bps = cap1;
    s1.prop_delay = d1;
    s1.background.base_loss = loss1;
    s2.capacity_bps = cap2;
    s2.prop_delay = d2;
    s2.background.base_loss = loss2;
    auto [l1, l1r] = net.add_link(a, r1, acc);
    auto [l2, l2r] = net.add_link(r1, b, s1);
    auto [l3, l3r] = net.add_link(a, r2, acc);
    auto [l4, l4r] = net.add_link(r2, b, s2);
    a_r1 = l1;
    r1_b = l2;
    a_r2 = l3;
    r2_b = l4;
    // Primary address via r1.
    a->add_route(b->addr(), l1);
    r1->add_route(b->addr(), l2);
    // Alias via r2.
    b->add_alias(alias);
    a->add_route(alias, l3);
    r2->add_route(alias, l4);
    // Reverse path via r1.
    b->add_route(a->addr(), l2r);
    r1->add_route(a->addr(), l1r);
    // Also give r2 a reverse route (for completeness).
    r2->add_route(a->addr(), l3r);
  }
};

double run_mptcp(TwoPathNet& n, Coupling coupling, Time duration) {
  TcpConfig cfg;
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = coupling;
  MptcpConnection conn(n.a, 20000, std::vector<IpAddr>{n.b->addr(), n.alias},
                       5001, mcfg);
  conn.set_infinite_source(true);
  conn.connect();
  n.simv.run_until(duration);
  return static_cast<double>(listener.bytes_delivered()) * 8.0 /
         duration.to_seconds();
}

TEST(Mptcp, HandshakeBringsUpBothSubflows) {
  TwoPathNet n(50e6, 50e6);
  TcpConfig cfg;
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.connect();
  n.simv.run_until(Time::seconds(2));
  EXPECT_EQ(conn.alive_subflows(), 2u);
  EXPECT_TRUE(conn.subflows()[0]->established());
  EXPECT_TRUE(conn.subflows()[1]->established());
}

TEST(Mptcp, DeliversContiguousStream) {
  TwoPathNet n(20e6, 20e6);
  TcpConfig cfg;
  MptcpListener listener(n.b, 5001, cfg);
  std::int64_t delivered = 0;
  listener.set_on_data([&](std::int64_t d) { delivered += d; });
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.connect();
  n.simv.run_until(Time::milliseconds(200));
  conn.app_write(3'000'000);
  n.simv.run_until(Time::seconds(10));
  EXPECT_EQ(delivered, 3'000'000);
  EXPECT_EQ(listener.bytes_delivered(), 3'000'000u);
  // Both subflows should have carried data.
  EXPECT_GT(conn.subflows()[0]->stats().bytes_sent, 100'000u);
  EXPECT_GT(conn.subflows()[1]->stats().bytes_sent, 100'000u);
}

/// On lossy Internet-like paths (the paper's regime) the coupled controllers
/// keep the aggregate near the best single path's loss-bound rate, while
/// uncoupled subflows each claim their own Mathis share and sum up.
TEST(Mptcp, CoupledOliaTracksBestPath) {
  TwoPathNet lossy(200e6, 200e6, Time::milliseconds(10), Time::milliseconds(10),
                   /*loss1=*/0.004, /*loss2=*/0.001);
  const double coupled = run_mptcp(lossy, Coupling::kOlia, Time::seconds(20));
  TwoPathNet solo(200e6, 200e6, Time::milliseconds(10), Time::milliseconds(10),
                  0.004, 0.001);
  TcpConfig cfg;
  BulkSink sink(solo.b, 5001, cfg);
  // Single-path TCP on the better (alias) path.
  cfg.remote_addr = solo.alias;
  BulkSource src(solo.a, 1234, solo.b->addr(), 5001, cfg);
  src.start();
  solo.simv.run_until(Time::seconds(20));
  const double best_single = sink.bytes_received() * 8.0 / 20.0;
  // OLIA aggregate ~ best single path (within generous 2x / 0.6x bounds;
  // it must be far from the 1.5x+ a full sum would give).
  EXPECT_GT(coupled, best_single * 0.6);
  EXPECT_LT(coupled, best_single * 1.45);
}

TEST(Mptcp, CoupledLiaBoundedByBestPathScale) {
  TwoPathNet n(200e6, 200e6, Time::milliseconds(10), Time::milliseconds(10),
               0.004, 0.001);
  const double bps = run_mptcp(n, Coupling::kLia, Time::seconds(20));
  EXPECT_GT(bps, 5e6);
  EXPECT_LT(bps, 40e6);  // far below what uncoupled cubic reaches
}

TEST(Mptcp, UncoupledCubicSumsSubflows) {
  // Clean disjoint paths: uncoupled subflows saturate each link.
  TwoPathNet n(40e6, 60e6);
  const double bps = run_mptcp(n, Coupling::kUncoupledCubic, Time::seconds(15));
  EXPECT_GT(bps, 80e6);
}

TEST(Mptcp, UncoupledBeatsCoupledOnLossyPaths) {
  TwoPathNet a(200e6, 200e6, Time::milliseconds(10), Time::milliseconds(10),
               0.002, 0.002);
  const double coupled = run_mptcp(a, Coupling::kOlia, Time::seconds(20));
  TwoPathNet b(200e6, 200e6, Time::milliseconds(10), Time::milliseconds(10),
               0.002, 0.002);
  const double uncoupled = run_mptcp(b, Coupling::kUncoupledCubic, Time::seconds(20));
  EXPECT_GT(uncoupled, coupled * 1.25);
}

TEST(Mptcp, FailoverReinjectsOntoSurvivingSubflow) {
  TwoPathNet n(50e6, 50e6);
  TcpConfig cfg;
  cfg.max_consecutive_rtos = 4;
  cfg.rto_initial = Time::milliseconds(200);
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.set_infinite_source(true);
  conn.connect();
  // Kill the primary path's forward link mid-transfer.
  n.simv.schedule_in(Time::seconds(3), [&] { n.r1_b->set_down(true); });
  n.simv.run_until(Time::seconds(20));
  EXPECT_EQ(conn.alive_subflows(), 1u);
  EXPECT_TRUE(conn.subflows()[0]->failed());
  EXPECT_FALSE(conn.subflows()[1]->failed());
  // The connection-level stream keeps advancing on the survivor: offered
  // data minus a small in-flight tail has been contiguously acked.
  EXPECT_GT(conn.data_acked(), 20'000'000u);
}

TEST(Mptcp, StreamSurvivesFailoverWithoutGaps) {
  TwoPathNet n(30e6, 30e6);
  TcpConfig cfg;
  cfg.max_consecutive_rtos = 4;
  cfg.rto_initial = Time::milliseconds(200);
  MptcpListener listener(n.b, 5001, cfg);
  std::int64_t delivered = 0;
  listener.set_on_data([&](std::int64_t d) { delivered += d; });
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.connect();
  n.simv.run_until(Time::milliseconds(300));
  conn.app_write(20'000'000);
  n.simv.schedule_in(Time::seconds(2), [&] { n.r2_b->set_down(true); });
  n.simv.run_until(Time::seconds(40));
  // All 20 MB must arrive contiguously despite the path failure.
  EXPECT_EQ(delivered, 20'000'000);
}

TEST(Mptcp, HeadOfLineStallTriggersOpportunisticReinjection) {
  // Path 2 goes dark for 3 seconds — long enough to strand its in-flight
  // DSS ranges (stalling contiguous delivery), short enough that the
  // subflow survives (no failure-path reinjection). The HoL watchdog must
  // re-offer the blocking range so path 1 carries the stream onward.
  TwoPathNet n(30e6, 30e6);
  TcpConfig cfg;
  cfg.rto_initial = Time::milliseconds(300);
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.set_infinite_source(true);
  conn.connect();
  n.simv.schedule_in(Time::seconds(3), [&] { n.r2_b->set_down(true); });
  n.simv.schedule_in(Time::seconds(6), [&] { n.r2_b->set_down(false); });
  n.simv.run_until(Time::seconds(15));
  EXPECT_GT(conn.hol_reinjections(), 0u);
  EXPECT_EQ(conn.alive_subflows(), 2u);  // the dark subflow recovered
  // Delivery kept flowing at a useful rate despite the 3 s blackout.
  EXPECT_GT(listener.bytes_delivered() * 8.0 / 15.0, 15e6);
}

TEST(Mptcp, TokensSeparateConcurrentConnections) {
  TwoPathNet n(50e6, 50e6);
  TcpConfig cfg;
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection c1(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  MptcpConnection c2(n.a, 21000, {n.b->addr(), n.alias}, 5001, mcfg);
  EXPECT_NE(c1.token(), c2.token());
  c1.connect();
  c2.connect();
  n.simv.run_until(Time::milliseconds(500));
  c1.app_write(1'000'000);
  c2.app_write(2'000'000);
  n.simv.run_until(Time::seconds(10));
  EXPECT_EQ(listener.bytes_delivered(), 3'000'000u);
}

TEST(OliaUnit, AlphaShiftsTowardBetterPath) {
  auto group = std::make_shared<CoupledGroup>();
  OliaCc cc1(1460, group);
  OliaCc cc2(1460, group);
  // Leave slow start.
  cc1.cap_slow_start();
  cc2.cap_slow_start();
  // Path 2 sees fewer losses (larger inter-loss byte counts).
  group->member(0).srtt = Time::milliseconds(50);
  group->member(1).srtt = Time::milliseconds(50);
  group->member(0).bytes_since_loss = 1e5;
  group->member(1).bytes_since_loss = 1e7;
  const double w1_before = cc1.cwnd();
  const double w2_before = cc2.cwnd();
  for (int i = 0; i < 2000; ++i) {
    cc1.on_ack(1460, Time::milliseconds(50), Time::seconds(i));
    cc2.on_ack(1460, Time::milliseconds(50), Time::seconds(i));
  }
  const double g1 = cc1.cwnd() - w1_before;
  const double g2 = cc2.cwnd() - w2_before;
  EXPECT_GT(g2, g1);  // the better path grows faster
}

TEST(LiaUnit, AggregateIncreaseCappedAtBestPathRate) {
  auto group = std::make_shared<CoupledGroup>();
  LiaCc cc1(1460, group);
  LiaCc cc2(1460, group);
  cc1.cap_slow_start();
  cc2.cap_slow_start();
  group->member(0).srtt = Time::milliseconds(50);
  group->member(1).srtt = Time::milliseconds(50);
  // Per RFC 6356 the per-ack coupled increase never exceeds the uncoupled
  // (Reno) increase on that subflow.
  const double before = cc1.cwnd();
  cc1.on_ack(1460, Time::milliseconds(50), Time::zero());
  const double coupled_gain = cc1.cwnd() - before;
  const double reno_gain = 1460.0 * 1460.0 / before;
  EXPECT_LE(coupled_gain, reno_gain * 1.0001);
}

}  // namespace
}  // namespace cronets::transport
