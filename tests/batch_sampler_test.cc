// The batched SoA measurement kernel's contract: batching is a pure
// performance knob. model::BatchSampler and the batched meter entry points
// must be bitwise identical to the scalar sampler at every batch size
// (including 1 and ragged tails), at every thread count, and across
// topology mutations that force paths to be re-interned.

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "model/batch_sampler.h"
#include "wkld/experiments.h"
#include "wkld/world.h"

namespace cronets {
namespace {

topo::TopologyParams small_params(std::uint64_t seed = 42) {
  topo::TopologyParams p;
  p.seed = seed;
  p.num_tier1 = 8;
  p.num_tier2 = 24;
  p.num_stubs = 80;
  return p;
}

struct Populations {
  std::vector<int> clients;
  std::vector<int> servers;
  std::vector<int> overlays;
};

Populations make_populations(wkld::World& world, int num_clients = 10) {
  return Populations{world.make_web_clients(num_clients), world.make_servers(),
                     world.rent_paper_overlays()};
}

// Every path a probe sweep touches: direct plus both overlay legs.
std::vector<topo::PathRef> sweep_paths(wkld::World& world, const Populations& p) {
  std::vector<topo::PathRef> paths;
  for (int s : p.servers) {
    for (int c : p.clients) {
      paths.push_back(world.internet().cached_path(s, c));
      for (int o : p.overlays) {
        paths.push_back(world.internet().cached_path(s, o));
        paths.push_back(world.internet().cached_path(o, c));
      }
    }
  }
  return paths;
}

void expect_metrics_equal(const model::PathMetrics& a, const model::PathMetrics& b,
                          const char* what) {
  EXPECT_EQ(a.rtt_ms, b.rtt_ms) << what;
  EXPECT_EQ(a.loss, b.loss) << what;
  EXPECT_EQ(a.residual_bps, b.residual_bps) << what;
  EXPECT_EQ(a.capacity_bps, b.capacity_bps) << what;
  EXPECT_EQ(a.hop_count, b.hop_count) << what;
}

void expect_pair_samples_equal(const core::PairSample& a, const core::PairSample& b) {
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.direct_bps, b.direct_bps);
  EXPECT_EQ(a.direct_rtt_ms, b.direct_rtt_ms);
  EXPECT_EQ(a.direct_loss, b.direct_loss);
  EXPECT_EQ(a.direct_hops, b.direct_hops);
  ASSERT_EQ(a.overlays.size(), b.overlays.size());
  for (std::size_t o = 0; o < a.overlays.size(); ++o) {
    EXPECT_EQ(a.overlays[o].overlay_ep, b.overlays[o].overlay_ep);
    // Every predictor policy: plain tunnel, split-TCP, discrete bound.
    EXPECT_EQ(a.overlays[o].plain_bps, b.overlays[o].plain_bps);
    EXPECT_EQ(a.overlays[o].split_bps, b.overlays[o].split_bps);
    EXPECT_EQ(a.overlays[o].discrete_bps, b.overlays[o].discrete_bps);
    EXPECT_EQ(a.overlays[o].rtt_ms, b.overlays[o].rtt_ms);
    EXPECT_EQ(a.overlays[o].loss, b.overlays[o].loss);
  }
}

TEST(BatchSampler, BitwiseEqualsScalarAtEveryBatchSize) {
  wkld::World world(42, small_params());
  const auto pops = make_populations(world, 6);
  const auto paths = sweep_paths(world, pops);
  ASSERT_GT(paths.size(), 256u);

  model::BatchSampler sampler(&world.flow());
  sampler.begin_batch();
  std::vector<int> handles;
  for (const auto& p : paths) handles.push_back(sampler.intern(p));
  EXPECT_GT(sampler.unique_fields(), 0u);
  EXPECT_LT(sampler.unique_fields(), paths.size());  // shared fields dedup

  const std::size_t batch_sizes[] = {1, 7, 16, 256, paths.size()};
  const sim::Time times[] = {sim::Time::minutes(90),
                             sim::Time::hours(2) + sim::Time::seconds(13),
                             sim::Time::hours(26)};  // diurnal swing active
  std::vector<model::PathMetrics> out(paths.size());
  for (const sim::Time t : times) {
    for (const std::size_t batch : batch_sizes) {
      for (std::size_t lo = 0; lo < handles.size(); lo += batch) {
        const std::size_t len = std::min(batch, handles.size() - lo);
        sampler.sample_batch(handles.data() + lo, len, t, out.data() + lo);
      }
      for (std::size_t i = 0; i < paths.size(); ++i) {
        expect_metrics_equal(out[i], world.flow().sample(paths[i], t), "batch");
      }
    }
  }
  EXPECT_GT(sampler.dedup_saved(), 0u);
}

TEST(BatchSampler, ReinternsAfterTopologyMutation) {
  wkld::World world(7, small_params(7));
  const auto pops = make_populations(world, 4);
  auto paths = sweep_paths(world, pops);

  model::BatchSampler sampler(&world.flow());
  ASSERT_FALSE(sampler.begin_batch());
  std::vector<int> handles;
  for (const auto& p : paths) handles.push_back(sampler.intern(p));
  std::vector<model::PathMetrics> out(paths.size());
  sampler.sample_batch(handles.data(), handles.size(), sim::Time::minutes(30),
                       out.data());

  // Transient event: epoch bump, same routes, field constants change.
  world.internet().add_event(topo::LinkEvent{0, true, sim::Time::minutes(40),
                                             sim::Time::minutes(80), 0.3});
  EXPECT_TRUE(sampler.begin_batch());
  EXPECT_EQ(sampler.paths(), 0u);
  paths = sweep_paths(world, pops);
  handles.clear();
  for (const auto& p : paths) handles.push_back(sampler.intern(p));
  sampler.sample_batch(handles.data(), handles.size(), sim::Time::minutes(60),
                       out.data());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    expect_metrics_equal(out[i],
                         world.flow().sample(paths[i], sim::Time::minutes(60)),
                         "post-event");
  }

  // BGP failure: routes themselves change and paths re-intern.
  int as_a = -1, as_b = -1;
  const auto& ases = world.internet().ases();
  for (std::size_t i = 0; i < ases.size() && as_a < 0; ++i) {
    if (ases[i].tier != topo::Tier::kTier1) continue;
    for (const auto& adj : ases[i].adj) {
      if (ases[adj.nbr_as].tier == topo::Tier::kTier1) {
        as_a = static_cast<int>(i);
        as_b = adj.nbr_as;
        break;
      }
    }
  }
  ASSERT_GE(as_a, 0);
  ASSERT_TRUE(world.internet().set_adjacency_up(as_a, as_b, false));
  EXPECT_TRUE(sampler.begin_batch());
  paths = sweep_paths(world, pops);
  handles.clear();
  for (const auto& p : paths) handles.push_back(sampler.intern(p));
  sampler.sample_batch(handles.data(), handles.size(), sim::Time::minutes(90),
                       out.data());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    expect_metrics_equal(out[i],
                         world.flow().sample(paths[i], sim::Time::minutes(90)),
                         "post-failure");
  }
}

TEST(BatchMeasure, BitwiseEqualsScalarMeasureForAllPolicies) {
  wkld::World world(42, small_params());
  const auto pops = make_populations(world, 8);
  const sim::Time at = sim::Time::hours(1) + sim::Time::minutes(7);

  std::vector<std::pair<int, int>> pairs;
  for (int s : pops.servers) {
    for (int c : pops.clients) pairs.emplace_back(s, c);
  }
  std::vector<core::PairSample> expected;
  for (const auto& [s, c] : pairs) {
    expected.push_back(world.meter().measure(s, c, pops.overlays, at));
  }

  // Batch sizes 1, ragged (13 does not divide the pair count), and all.
  std::vector<core::PairSample> got(pairs.size());
  for (const std::size_t batch : {std::size_t{1}, std::size_t{13}, pairs.size()}) {
    for (auto& g : got) g = core::PairSample{};
    for (std::size_t lo = 0; lo < pairs.size(); lo += batch) {
      const std::size_t len = std::min(batch, pairs.size() - lo);
      world.meter().measure_batch(pairs.data() + lo, len, pops.overlays, at,
                                  got.data() + lo);
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      expect_pair_samples_equal(expected[i], got[i]);
    }
  }

  // A pair whose src/dst collide with an overlay endpoint skips it, same
  // as the scalar meter.
  const int o = pops.overlays[2];
  const core::PairSample ref = world.meter().measure(o, pops.clients[0],
                                                     pops.overlays, at);
  core::PairSample via_batch;
  const std::pair<int, int> collide{o, pops.clients[0]};
  world.meter().measure_batch(&collide, 1, pops.overlays, at, &via_batch);
  expect_pair_samples_equal(ref, via_batch);
}

TEST(BatchMeasure, BatchedParallelSweepMatchesScalarSerial) {
  // The fig-2 sweep now runs through the batch kernel on the pool; it must
  // reproduce the scalar serial meter bit for bit at 1 and 4 threads.
  std::vector<std::vector<core::PairSample>> runs;
  for (const int threads : {1, 4}) {
    wkld::World world(11, small_params(11), topo::CloudParams{},
                      sim::Parallelism{threads});
    runs.push_back(wkld::run_web_experiment(world, 12).samples);
  }

  wkld::World scalar_world(11, small_params(11));
  const auto exp_clients = scalar_world.make_web_clients(12);
  const auto exp_servers = scalar_world.make_servers();
  const auto exp_overlays = scalar_world.rent_paper_overlays();
  std::size_t i = 0;
  for (int s : exp_servers) {
    for (int c : exp_clients) {
      const core::PairSample ref =
          scalar_world.meter().measure(s, c, exp_overlays, sim::Time::hours(1));
      ASSERT_LT(i, runs[0].size());
      expect_pair_samples_equal(ref, runs[0][i]);
      expect_pair_samples_equal(ref, runs[1][i]);
      ++i;
    }
  }
}

TEST(BatchMeasure, PostMutationMeasurementsTrackScalar) {
  wkld::World world(5, small_params(5));
  const auto pops = make_populations(world, 5);
  std::vector<std::pair<int, int>> pairs;
  for (int s : pops.servers) {
    for (int c : pops.clients) pairs.emplace_back(s, c);
  }
  std::vector<core::PairSample> got(pairs.size());
  world.meter().measure_batch(pairs.data(), pairs.size(), pops.overlays,
                              sim::Time::minutes(10), got.data());

  // Cut a transit adjacency: routes change, the path cache invalidates,
  // and the next batch re-interns everything against the new epoch.
  int as_a = -1, as_b = -1;
  const auto& ases = world.internet().ases();
  for (std::size_t a = 0; a < ases.size() && as_a < 0; ++a) {
    if (ases[a].tier != topo::Tier::kTier1) continue;
    for (const auto& adj : ases[a].adj) {
      if (ases[adj.nbr_as].tier == topo::Tier::kTier1) {
        as_a = static_cast<int>(a);
        as_b = adj.nbr_as;
        break;
      }
    }
  }
  ASSERT_GE(as_a, 0);
  ASSERT_TRUE(world.internet().set_adjacency_up(as_a, as_b, false));

  const sim::Time at = sim::Time::minutes(20);
  world.meter().measure_batch(pairs.data(), pairs.size(), pops.overlays, at,
                              got.data());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expect_pair_samples_equal(
        world.meter().measure(pairs[i].first, pairs[i].second, pops.overlays, at),
        got[i]);
  }
}

TEST(BatchSampler, ReinternsConsistentlyThroughFlapStorm) {
  // Chaos-style storm: an adjacency bounces down/up repeatedly while a
  // mutation listener subscribes and unsubscribes mid-storm. After every
  // bounce the sampler must notice the epoch change, demand re-interning,
  // and reproduce the scalar sampler bit for bit against the new routes.
  wkld::World world(9, small_params(9));
  auto& net = world.internet();
  const auto pops = make_populations(world, 4);

  int as_a = -1, as_b = -1;
  const auto& ases = net.ases();
  for (std::size_t i = 0; i < ases.size() && as_a < 0; ++i) {
    if (ases[i].tier != topo::Tier::kTier1) continue;
    for (const auto& adj : ases[i].adj) {
      if (ases[adj.nbr_as].tier == topo::Tier::kTier1) {
        as_a = static_cast<int>(i);
        as_b = adj.nbr_as;
        break;
      }
    }
  }
  ASSERT_GE(as_a, 0);

  model::BatchSampler sampler(&world.flow());
  sampler.begin_batch();
  {
    const auto paths = sweep_paths(world, pops);
    for (const auto& p : paths) sampler.intern(p);
  }

  int listener_seen = 0;
  int listener = net.add_mutation_listener(
      [&](const topo::Mutation&) { ++listener_seen; });

  std::vector<model::PathMetrics> out;
  for (int round = 0; round < 6; ++round) {
    const bool up = (round % 2) != 0;
    ASSERT_TRUE(net.set_adjacency_up(as_a, as_b, up));
    // Listener churn mid-storm must not disturb the sampler's own
    // epoch-listener registration.
    if (round == 2) {
      net.remove_mutation_listener(listener);
      listener = net.add_mutation_listener(
          [&](const topo::Mutation&) { ++listener_seen; });
    }
    EXPECT_TRUE(sampler.begin_batch());  // epoch changed: everything drops
    EXPECT_EQ(sampler.paths(), 0u);
    const auto paths = sweep_paths(world, pops);
    std::vector<int> handles;
    for (const auto& p : paths) handles.push_back(sampler.intern(p));
    out.resize(paths.size());
    const sim::Time t = sim::Time::minutes(15 * (round + 1));
    sampler.sample_batch(handles.data(), handles.size(), t, out.data());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      expect_metrics_equal(out[i], world.flow().sample(paths[i], t), "storm");
    }
  }
  net.remove_mutation_listener(listener);
  EXPECT_EQ(listener_seen, 6);

  // Quiet world: no epoch change, the interned batch stays valid.
  EXPECT_FALSE(sampler.begin_batch());
}

TEST(BatchKnob, ProbeBatchSizeIsAtLeastOne) {
  EXPECT_GE(core::probe_batch_size(), 1);
}

}  // namespace
}  // namespace cronets
