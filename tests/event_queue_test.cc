// The arena-backed event queue's contract under churn: randomized
// interleaved schedule/cancel/fire checked against a reference model,
// handle inertness across slot recycling, FIFO order at equal timestamps
// with cancels punched into the run, heap fallback for oversized callbacks,
// and reentrant cancel/schedule from inside a firing callback.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace cronets::sim {
namespace {

TEST(EventQueueArena, RandomizedStressAgainstReferenceModel) {
  std::mt19937_64 rng(12345);
  EventQueue q;

  // Reference model: one record per schedule call, parallel to `handles`.
  struct RefEv {
    std::int64_t at_ns;
    long seq;
    bool live;
  };
  std::vector<RefEv> ref;
  std::vector<EventHandle> handles;
  std::vector<std::size_t> fired;  // indices, in actual firing order
  long seq = 0;

  auto expected_next = [&]() -> std::ptrdiff_t {
    std::ptrdiff_t best = -1;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (!ref[i].live) continue;
      if (best < 0 || ref[i].at_ns < ref[best].at_ns ||
          (ref[i].at_ns == ref[best].at_ns && ref[i].seq < ref[best].seq)) {
        best = static_cast<std::ptrdiff_t>(i);
      }
    }
    return best;
  };

  auto fire_one = [&]() {
    const std::ptrdiff_t want = expected_next();
    Time at{};
    const bool ran = q.run_next(&at);
    if (want < 0) {
      EXPECT_FALSE(ran);
      return;
    }
    ASSERT_TRUE(ran);
    ASSERT_FALSE(fired.empty());
    EXPECT_EQ(static_cast<std::ptrdiff_t>(fired.back()), want);
    EXPECT_EQ(at.ns(), ref[want].at_ns);
    ref[want].live = false;
    EXPECT_FALSE(handles[want].pending());
  };

  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t op = rng() % 100;
    if (op < 55) {
      // Deliberately small time range so equal timestamps (FIFO ties) are
      // common.
      const Time at = Time::microseconds(static_cast<std::int64_t>(rng() % 64));
      const std::size_t idx = handles.size();
      handles.push_back(q.schedule(at, [&fired, idx] { fired.push_back(idx); }));
      ref.push_back(RefEv{at.ns(), seq++, true});
      EXPECT_TRUE(handles[idx].pending());
    } else if (op < 80 && !handles.empty()) {
      const std::size_t k = rng() % handles.size();
      EXPECT_EQ(handles[k].pending(), ref[k].live);
      handles[k].cancel();
      ref[k].live = false;
      EXPECT_FALSE(handles[k].pending());
    } else {
      fire_one();
    }
  }
  while (expected_next() >= 0 || !q.empty()) fire_one();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueArena, RecycledSlotLeavesOldHandleInert) {
  EventQueue q;
  int first = 0, second = 0;
  EventHandle a = q.schedule(Time::seconds(1), [&] { ++first; });
  ASSERT_TRUE(q.run_next());
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(a.pending());

  // The freed slot is recycled for the next schedule; the stale handle must
  // neither report pending nor cancel the new occupant.
  EventHandle b = q.schedule(Time::seconds(2), [&] { ++second; });
  EXPECT_FALSE(a.pending());
  a.cancel();
  EXPECT_TRUE(b.pending());
  ASSERT_TRUE(q.run_next());
  EXPECT_EQ(second, 1);

  // Same inertness after a cancel-then-reuse cycle, across many
  // generations of the same arena slots.
  for (int round = 0; round < 100; ++round) {
    int fired = 0;
    EventHandle dead = q.schedule(Time::seconds(3), [&] { ++fired; });
    dead.cancel();
    EventHandle live = q.schedule(Time::seconds(3), [&] { ++fired; });
    dead.cancel();  // stale: must not touch `live`
    EXPECT_FALSE(dead.pending());
    EXPECT_TRUE(live.pending());
    ASSERT_TRUE(q.run_next());
    EXPECT_EQ(fired, 1);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueArena, FifoAtEqualTimesWithInterleavedCancels) {
  EventQueue q;
  const Time at = Time::milliseconds(5);
  std::vector<int> fired;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 100; ++i) {
    hs.push_back(q.schedule(at, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 3) hs[i].cancel();
  while (q.run_next()) {
  }
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(fired, expected);  // schedule order among survivors
}

TEST(EventQueueArena, OversizedCallbackFallsBackToHeap) {
  EventQueue q;
  // Payload larger than the inline slot storage: forces the heap path for
  // both the fire and the cancel/destroy branches.
  struct Big {
    std::array<std::uint8_t, 512> bytes;
    std::shared_ptr<int> tracker;
  };
  Big big;
  for (std::size_t i = 0; i < big.bytes.size(); ++i) {
    big.bytes[i] = static_cast<std::uint8_t>(i * 7);
  }
  big.tracker = std::make_shared<int>(0);
  std::weak_ptr<int> alive = big.tracker;

  bool payload_intact = false;
  EventHandle h = q.schedule(Time::seconds(1), [big, &payload_intact] {
    bool ok = true;
    for (std::size_t i = 0; i < big.bytes.size(); ++i) {
      ok = ok && big.bytes[i] == static_cast<std::uint8_t>(i * 7);
    }
    payload_intact = ok;
  });
  EventHandle cancelled = q.schedule(Time::seconds(2), [big] { (void)big; });
  big.tracker.reset();
  EXPECT_FALSE(alive.expired());  // captured copies keep it alive

  cancelled.cancel();  // destroy path for a heap-stored callback
  ASSERT_TRUE(q.run_next());
  EXPECT_TRUE(payload_intact);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(alive.expired());  // both captured copies destroyed
}

TEST(EventQueueArena, ReentrantCancelAndScheduleFromCallback) {
  EventQueue q;
  int cancelled_fired = 0, chained_fired = 0;
  EventHandle victim = q.schedule(Time::seconds(2), [&] { ++cancelled_fired; });
  EventHandle self;
  self = q.schedule(Time::seconds(1), [&] {
    // Cancelling our own (currently firing) handle must be a no-op...
    EXPECT_FALSE(self.pending());
    self.cancel();
    // ...cancelling a still-pending peer must stick...
    victim.cancel();
    // ...and scheduling from inside a callback must work, including when it
    // recycles the victim's just-freed slot.
    q.schedule(Time::seconds(3), [&] { ++chained_fired; });
  });
  while (q.run_next()) {
  }
  EXPECT_EQ(cancelled_fired, 0);
  EXPECT_EQ(chained_fired, 1);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace cronets::sim
