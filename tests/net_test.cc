#include <gtest/gtest.h>

#include "net/background.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"

namespace cronets::net {
namespace {

using sim::Time;

Packet make_tcp_packet(IpAddr src, IpAddr dst, std::int64_t payload = 1000) {
  Packet p;
  p.headers.push_back(Ipv4Header{.src = src, .dst = dst, .proto = IpProto::kTcp});
  TcpSegment seg;
  seg.payload = payload;
  p.body = seg;
  return p;
}

TEST(PacketTest, SizeAccountsForEncapLayers) {
  Packet p = make_tcp_packet(IpAddr{1}, IpAddr{2}, 1460);
  EXPECT_EQ(p.size_bytes(), 1460 + kIpTcpHeaderBytes);
  p.headers.push_back(Ipv4Header{.src = IpAddr{1}, .dst = IpAddr{9},
                                 .proto = IpProto::kGre,
                                 .encap_overhead = kGreOverheadBytes});
  EXPECT_EQ(p.size_bytes(), 1460 + kIpTcpHeaderBytes + kGreOverheadBytes);
  EXPECT_EQ(p.outer().dst, IpAddr{9});
  EXPECT_EQ(p.inner().dst, IpAddr{2});
}

TEST(IpAddrTest, Printing) {
  EXPECT_EQ(IpAddr{0x0a000001}.to_string(), "10.0.0.1");
  EXPECT_EQ(IpAddr{0xc0a80164}.to_string(), "192.168.1.100");
}

TEST(LinkTest, DeliversAfterSerializationAndPropagation) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  LinkSpec s;
  s.capacity_bps = 8e6;  // 1 MB/s
  s.prop_delay = Time::milliseconds(10);
  auto [ab, ba] = net.add_link(a, b, s);
  (void)ba;

  // 1000-byte payload + 40 header = 1040 B => 1.04 ms serialization.
  ab->send(make_tcp_packet(a->addr(), b->addr(), 1000));
  simv.run_until(Time::milliseconds(30));
  EXPECT_EQ(ab->stats().tx_packets, 1u);
  EXPECT_EQ(ab->stats().tx_bytes, 1040u);
  EXPECT_EQ(b->delivered_segments(), 0u);  // no sink bound: dropped at host
}

TEST(LinkTest, QueueOverflowDrops) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  LinkSpec s;
  s.capacity_bps = 1e6;
  s.prop_delay = Time::milliseconds(1);
  s.queue_limit_bytes = 3000;  // fits ~2 packets
  auto [ab, ba] = net.add_link(a, b, s);
  (void)ba;
  for (int i = 0; i < 10; ++i) {
    ab->send(make_tcp_packet(a->addr(), b->addr(), 1400));
  }
  simv.run_until(Time::seconds(2));
  EXPECT_GT(ab->stats().queue_drops, 0u);
  EXPECT_LT(ab->stats().tx_packets, 10u);
}

TEST(LinkTest, DownLinkDropsEverything) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  auto [ab, ba] = net.add_link(a, b, LinkSpec{});
  (void)ba;
  ab->set_down(true);
  EXPECT_TRUE(ab->is_down());
  for (int i = 0; i < 5; ++i) ab->send(make_tcp_packet(a->addr(), b->addr()));
  simv.run_until(Time::seconds(1));
  EXPECT_EQ(ab->stats().tx_packets, 0u);
  EXPECT_EQ(ab->stats().random_drops, 5u);
}

TEST(LinkTest, RandomLossMatchesConfiguredRate) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{5});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  LinkSpec s;
  s.capacity_bps = 1e9;
  s.background.base_loss = 0.1;
  auto [ab, ba] = net.add_link(a, b, s);
  (void)ba;
  const int n = 5000;
  for (int i = 0; i < n; ++i) ab->send(make_tcp_packet(a->addr(), b->addr(), 100));
  simv.run_until(Time::seconds(5));
  const double loss_rate = static_cast<double>(ab->stats().random_drops) / n;
  EXPECT_NEAR(loss_rate, 0.1, 0.02);
}

TEST(BackgroundTest, LossGrowsWithUtilization) {
  BackgroundParams p;
  p.base_loss = 1e-5;
  EXPECT_NEAR(loss_from_utilization(p, 0.1), 1e-5, 1e-9);
  EXPECT_GT(loss_from_utilization(p, 0.75), loss_from_utilization(p, 0.5));
  EXPECT_GT(loss_from_utilization(p, 0.95), loss_from_utilization(p, 0.75));
  EXPECT_LE(loss_from_utilization(p, 0.98), 0.5);
}

TEST(BackgroundTest, DiurnalComponentOscillates) {
  BackgroundParams p;
  p.diurnal_amp = 0.1;
  p.diurnal_phase = 0.0;
  const double at6h = diurnal_component(p, sim::Time::hours(6));    // sin(pi/2)
  const double at18h = diurnal_component(p, sim::Time::hours(18));  // sin(3pi/2)
  EXPECT_NEAR(at6h, 0.1, 1e-9);
  EXPECT_NEAR(at18h, -0.1, 1e-9);
  EXPECT_NEAR(diurnal_component(p, sim::Time::hours(24)), 0.0, 1e-9);
}

TEST(BackgroundTest, ProcessStaysNearMean) {
  BackgroundParams p;
  p.mean_util = 0.6;
  p.sigma = 0.03;
  BackgroundProcess bg(p, sim::Rng{9});
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double u = bg.utilization(sim::Time::milliseconds(500 * i));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 0.98);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.6, 0.05);
}

TEST(BackgroundTest, EventWindowBoostsThenClears) {
  BackgroundParams p;
  p.mean_util = 0.2;
  p.sigma = 0.0;
  BackgroundProcess bg(p, sim::Rng{9});
  bg.add_event(sim::Time::seconds(10), sim::Time::seconds(20), 0.5);
  EXPECT_NEAR(bg.utilization(sim::Time::seconds(5)), 0.2, 1e-9);
  EXPECT_NEAR(bg.utilization(sim::Time::seconds(15)), 0.7, 1e-9);
  EXPECT_NEAR(bg.utilization(sim::Time::seconds(25)), 0.2, 1e-9);
}

TEST(RouterTest, DropsWithoutRouteCountsIt) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Router* r = net.add_router("r");
  Host* b = net.add_host("b");
  auto [ar, ra] = net.add_link(a, r, LinkSpec{});
  net.add_link(r, b, LinkSpec{});
  (void)ra;
  // No routes installed at r.
  ar->send(make_tcp_packet(a->addr(), b->addr()));
  simv.run_until(Time::seconds(1));
  EXPECT_EQ(r->no_route_drops(), 1u);
  EXPECT_EQ(r->forwarded(), 0u);
}

TEST(RouterTest, TtlExpiryGeneratesTimeExceeded) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Router* r = net.add_router("r");
  Host* b = net.add_host("b");
  net.add_link(a, r, LinkSpec{});
  net.add_link(r, b, LinkSpec{});
  net.compute_routes();

  bool got_time_exceeded = false;
  a->set_icmp_sink([&](const IcmpMessage& m, IpAddr from) {
    got_time_exceeded = m.type == IcmpType::kTimeExceeded;
    EXPECT_EQ(from, r->addr());
  });
  Packet probe;
  probe.headers.push_back(
      Ipv4Header{.src = a->addr(), .dst = b->addr(), .proto = IpProto::kIcmp});
  probe.ttl = 1;
  IcmpMessage msg;
  msg.type = IcmpType::kEchoRequest;
  msg.probe_id = 42;
  probe.body = msg;
  a->send(std::move(probe));
  simv.run_until(Time::seconds(1));
  EXPECT_TRUE(got_time_exceeded);
}

TEST(HostTest, LoopbackDelivery) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  struct Sink : SegmentSink {
    int count = 0;
    void on_packet(const Packet&) override { ++count; }
  } sink;
  a->bind(80, &sink);
  Packet p = make_tcp_packet(a->addr(), a->addr());
  p.tcp().dport = 80;
  a->send(std::move(p));
  simv.run_until(Time::seconds(1));
  EXPECT_EQ(sink.count, 1);
}

TEST(HostTest, AliasAddressesAreLocal) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  const IpAddr alias{0x0b000001};
  EXPECT_FALSE(a->is_local_addr(alias));
  a->add_alias(alias);
  EXPECT_TRUE(a->is_local_addr(alias));
  EXPECT_TRUE(a->is_local_addr(a->addr()));
}

TEST(HostTest, TapObservesBothDirections) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  net.add_link(a, b, LinkSpec{});
  net.compute_routes();
  int in = 0, out = 0;
  a->set_tap([&](const Packet&, Host::TapDir d) {
    (d == Host::TapDir::kOut ? out : in) += 1;
  });
  transport::TcpConfig cfg;
  transport::BulkSink sink(b, 5001, cfg);
  transport::TcpConnection c(a, 1234, b->addr(), 5001, cfg);
  c.set_on_connected([&] { c.app_write(10'000); });
  c.connect();
  simv.run_until(Time::seconds(5));
  EXPECT_GT(out, 5);
  EXPECT_GT(in, 2);
}

TEST(HostTest, EchoRequestAnswered) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  net.add_link(a, b, LinkSpec{});
  net.compute_routes();
  bool got_reply = false;
  a->set_icmp_sink([&](const IcmpMessage& m, IpAddr from) {
    got_reply = m.type == IcmpType::kEchoReply && m.probe_id == 7;
    EXPECT_EQ(from, b->addr());
  });
  Packet ping;
  ping.headers.push_back(
      Ipv4Header{.src = a->addr(), .dst = b->addr(), .proto = IpProto::kIcmp});
  IcmpMessage msg;
  msg.type = IcmpType::kEchoRequest;
  msg.probe_id = 7;
  ping.body = msg;
  a->send(std::move(ping));
  simv.run_until(Time::seconds(1));
  EXPECT_TRUE(got_reply);
}

TEST(NetworkTest, ComputeRoutesPicksShortestDelay) {
  // a - r1 - b (5ms) and a - r2 - b (50ms): traffic must take r1.
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  Router* r1 = net.add_router("r1");
  Router* r2 = net.add_router("r2");
  LinkSpec fast, slow;
  fast.prop_delay = Time::milliseconds(5);
  slow.prop_delay = Time::milliseconds(50);
  auto [a_r1, _1] = net.add_link(a, r1, fast);
  auto [r1_b, _2] = net.add_link(r1, b, fast);
  net.add_link(a, r2, slow);
  net.add_link(r2, b, slow);
  net.compute_routes();
  EXPECT_EQ(a->route(b->addr()), a_r1);
  EXPECT_EQ(r1->route(b->addr()), r1_b);
}

TEST(NetworkTest, InstallPathSetsHopByHopRoutes) {
  sim::Simulator simv;
  Network net(&simv, sim::Rng{1});
  Host* a = net.add_host("a");
  Router* r = net.add_router("r");
  Host* b = net.add_host("b");
  auto [ar, ra] = net.add_link(a, r, LinkSpec{});
  auto [rb, br] = net.add_link(r, b, LinkSpec{});
  (void)ra;
  (void)br;
  net.install_path({a, r, b}, b->addr());
  EXPECT_EQ(a->route(b->addr()), ar);
  EXPECT_EQ(r->route(b->addr()), rb);
}

}  // namespace
}  // namespace cronets::net
