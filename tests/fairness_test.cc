// RFC 6356's design goal (quoted in §VI-C): MPTCP "does not take up more
// capacity on its paths than a single-path TCP would at a shared
// bottleneck". We verify it head-to-head: an MPTCP connection whose two
// subflows BOTH cross one bottleneck competes against a single-path TCP
// flow through the same bottleneck.

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "transport/mptcp.h"

namespace cronets::transport {
namespace {

using sim::Time;

/// A and C share a bottleneck link R1->R2 toward B. A runs MPTCP with two
/// subflows (both through the bottleneck, steered by an alias); C runs
/// plain single-path TCP.
struct SharedBottleneck {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{29}};
  net::Host* a;
  net::Host* c;
  net::Host* b;
  net::IpAddr alias{0x0b000001};

  SharedBottleneck() {
    a = net.add_host("A");
    c = net.add_host("C");
    b = net.add_host("B");
    auto* r1 = net.add_router("R1");
    auto* r2 = net.add_router("R2");
    net::LinkSpec acc, bot;
    acc.capacity_bps = 1e9;
    acc.prop_delay = Time::milliseconds(2);
    bot.capacity_bps = 40e6;  // the contested link
    bot.prop_delay = Time::milliseconds(20);
    auto [a_r1, r1_a] = net.add_link(a, r1, acc);
    auto [c_r1, r1_c] = net.add_link(c, r1, acc);
    auto [r1_r2, r2_r1] = net.add_link(r1, r2, bot);
    auto [r2_b, b_r2] = net.add_link(r2, b, acc);
    // Forward routes.
    for (net::IpAddr dst : {b->addr(), alias}) {
      a->add_route(dst, a_r1);
      c->add_route(dst, c_r1);
      r1->add_route(dst, r1_r2);
      r2->add_route(dst, r2_b);
    }
    b->add_alias(alias);
    // Reverse routes.
    b->add_route(a->addr(), b_r2);
    b->add_route(c->addr(), b_r2);
    r2->add_route(a->addr(), r2_r1);
    r2->add_route(c->addr(), r2_r1);
    r1->add_route(a->addr(), r1_a);
    r1->add_route(c->addr(), r1_c);
  }
};

struct Rates {
  double mptcp_bps;
  double tcp_bps;
};

Rates run_contest(Coupling coupling, Time duration) {
  SharedBottleneck n;
  TcpConfig cfg;
  MptcpListener mp_sink(n.b, 5001, cfg);
  BulkSink tcp_sink(n.b, 5002, cfg);

  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = coupling;
  MptcpConnection mp(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  mp.set_infinite_source(true);
  BulkSource tcp(n.c, 21000, n.b->addr(), 5002, cfg);

  mp.connect();
  tcp.start();
  n.simv.run_until(duration);
  const double secs = duration.to_seconds();
  return Rates{mp_sink.bytes_delivered() * 8.0 / secs,
               tcp_sink.bytes_received() * 8.0 / secs};
}

TEST(SharedBottleneckFairness, CoupledOliaDoesNotBullySinglePathTcp) {
  const Rates r = run_contest(Coupling::kOlia, Time::seconds(30));
  // Both should get a useful share of the 40M bottleneck...
  EXPECT_GT(r.mptcp_bps + r.tcp_bps, 25e6);
  // ...and coupled MPTCP must not grab much more than the single flow.
  EXPECT_LT(r.mptcp_bps, r.tcp_bps * 1.8);
}

TEST(SharedBottleneckFairness, CoupledLiaDoesNotBullySinglePathTcp) {
  const Rates r = run_contest(Coupling::kLia, Time::seconds(30));
  EXPECT_GT(r.mptcp_bps + r.tcp_bps, 25e6);
  EXPECT_LT(r.mptcp_bps, r.tcp_bps * 1.8);
}

TEST(SharedBottleneckFairness, UncoupledCubicTakesRoughlyTwoShares) {
  // The flip side (§VI-C): two independent cubic subflows behave like two
  // flows and should clearly out-grab the single TCP.
  const Rates r = run_contest(Coupling::kUncoupledCubic, Time::seconds(30));
  EXPECT_GT(r.mptcp_bps, r.tcp_bps * 1.3);
}

}  // namespace
}  // namespace cronets::transport
