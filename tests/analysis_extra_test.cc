// Additional analysis-layer coverage: interface-level hops, CDF edge
// cases, binning corners, tstat multi-flow accounting.

#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "analysis/traceroute.h"
#include "analysis/tstat.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/internet.h"
#include "transport/apps.h"

namespace cronets::analysis {
namespace {

using sim::Time;

TEST(InterfaceHops, EncodeRouterAndIngressLink) {
  topo::RouterPath p;
  p.routers = {10, 11, 12};
  p.traversals = {{100, true}, {101, false}, {102, true}, {103, true}};
  const auto hops = interface_hops(p);
  ASSERT_EQ(hops.size(), 3u);  // min(routers, traversals)
  // Same router entered over a different link must hash differently.
  topo::RouterPath q = p;
  q.traversals[1].link_id = 999;
  const auto hops2 = interface_hops(q);
  EXPECT_EQ(hops[0], hops2[0]);
  EXPECT_NE(hops[1], hops2[1]);
  EXPECT_EQ(hops[2], hops2[2]);
}

TEST(InterfaceHops, MatchesPathStructureOnGeneratedWorld) {
  topo::TopologyParams tp;
  tp.seed = 5;
  tp.num_tier1 = 6;
  tp.num_tier2 = 14;
  tp.num_stubs = 40;
  topo::Internet net(tp, topo::CloudParams{});
  const int a = net.add_client(topo::Region::kEurope, "a");
  const int b = net.add_client(topo::Region::kAsia, "b");
  const auto path = net.path(a, b);
  const auto hops = interface_hops(path);
  EXPECT_EQ(hops.size(), path.routers.size());
  // A path is perfectly self-similar: diversity vs itself is 0.
  EXPECT_DOUBLE_EQ(diversity_score(hops, hops), 0.0);
}

TEST(CdfEdge, SingleValue) {
  Cdf c;
  c.add(5.0);
  EXPECT_DOUBLE_EQ(c.median(), 5.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.mean(), 5.0);
  EXPECT_DOUBLE_EQ(c.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_leq(4.9), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_leq(5.0), 1.0);
}

TEST(CdfEdge, AddAllAndInterleavedQueries) {
  Cdf c;
  c.add_all({3, 1, 2});
  EXPECT_DOUBLE_EQ(c.median(), 2.0);
  c.add(0.0);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.median(), 1.5);
}

TEST(BinningEdge, ValuesBelowFirstEdgeAreDropped) {
  const Binned b = bin_by({-1.0, 0.5, 2.0}, {10, 20, 30}, {0.0, 1.0});
  ASSERT_EQ(b.bins.size(), 2u);
  EXPECT_EQ(b.bins[0], (std::vector<double>{20}));
  EXPECT_EQ(b.bins[1], (std::vector<double>{30}));  // open-ended last bin
}

TEST(TstatMultiFlow, SeparatesFlowsByPort) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{7});
  auto* a = netw.add_host("A");
  auto* b = netw.add_host("B");
  auto* r = netw.add_router("R");
  net::LinkSpec s;
  s.capacity_bps = 100e6;
  s.prop_delay = Time::milliseconds(5);
  netw.add_link(a, r, s);
  netw.add_link(r, b, s);
  netw.compute_routes();

  Tstat tstat;
  tstat.attach(a);
  transport::TcpConfig cfg;
  transport::BulkSink sink1(b, 5001, cfg);
  transport::BulkSink sink2(b, 5002, cfg);
  transport::TcpConnection c1(a, 1234, b->addr(), 5001, cfg);
  transport::TcpConnection c2(a, 1235, b->addr(), 5002, cfg);
  c1.set_on_connected([&] { c1.app_write(100'000); });
  c2.set_on_connected([&] { c2.app_write(200'000); });
  c1.connect();
  c2.connect();
  simv.run_until(Time::seconds(10));

  ASSERT_EQ(tstat.flows().size(), 2u);
  std::vector<std::uint64_t> sent;
  for (const auto& [key, fs] : tstat.flows()) sent.push_back(fs.bytes_sent);
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(sent[0], 100'000u);
  EXPECT_EQ(sent[1], 200'000u);
  // Totals aggregate across flows.
  EXPECT_EQ(tstat.totals().bytes_sent, 300'000u);
  EXPECT_GT(tstat.totals().rtt_samples, 10u);
}

TEST(TstatMultiFlow, CleanFlowHasZeroRetransmissions) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{7});
  auto* a = netw.add_host("A");
  auto* b = netw.add_host("B");
  netw.add_link(a, b, net::LinkSpec{});
  netw.compute_routes();
  Tstat tstat;
  tstat.attach(a);
  transport::TcpConfig cfg;
  transport::BulkSink sink(b, 5001, cfg);
  transport::TcpConnection c(a, 1234, b->addr(), 5001, cfg);
  c.set_on_connected([&] { c.app_write(500'000); });
  c.connect();
  simv.run_until(Time::seconds(10));
  EXPECT_EQ(tstat.totals().bytes_retransmitted, 0u);
  EXPECT_DOUBLE_EQ(tstat.totals().retransmission_rate(), 0.0);
}

}  // namespace
}  // namespace cronets::analysis
