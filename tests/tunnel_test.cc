#include <gtest/gtest.h>

#include "analysis/traceroute.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "tunnel/tunnel.h"

namespace cronets::tunnel {
namespace {

using net::IpAddr;
using sim::Time;

/// A -- ra -- O -- rb -- B (hosts A, O, B; O is the overlay node).
struct OverlayNet {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{17}};
  net::Host* a;
  net::Host* o;
  net::Host* b;
  net::Router* ra;
  net::Router* rb;

  OverlayNet() {
    a = net.add_host("A");
    o = net.add_host("O");
    b = net.add_host("B");
    ra = net.add_router("RA");
    rb = net.add_router("RB");
    net::LinkSpec s;
    s.capacity_bps = 100e6;
    s.prop_delay = Time::milliseconds(5);
    net.add_link(a, ra, s);
    net.add_link(ra, o, s);
    net.add_link(o, rb, s);
    net.add_link(rb, b, s);
    net.compute_routes();
  }
};

TEST(Tunnel, OverheadConstants) {
  EXPECT_EQ(overhead_bytes(TunnelMode::kGre), net::kGreOverheadBytes);
  EXPECT_EQ(overhead_bytes(TunnelMode::kIpsec), net::kEspOverheadBytes);
  EXPECT_GT(overhead_bytes(TunnelMode::kIpsec), overhead_bytes(TunnelMode::kGre));
  EXPECT_EQ(tunnel_proto(TunnelMode::kGre), net::IpProto::kGre);
  EXPECT_EQ(tunnel_proto(TunnelMode::kIpsec), net::IpProto::kEsp);
}

TEST(Tunnel, TcpThroughGreTunnelAndNat) {
  OverlayNet n;
  TunnelClient tc(n.a);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), TunnelMode::kGre);
  OverlayDatapath datapath(n.o);

  transport::TcpConfig cfg;
  transport::BulkSink sink(n.b, 5001, cfg);
  transport::TcpConnection client(n.a, 1234, n.b->addr(), 5001, cfg);
  bool connected = false;
  client.set_on_connected([&] {
    connected = true;
    client.app_write(1'000'000);
  });
  client.connect();
  n.simv.run_until(Time::seconds(20));
  EXPECT_TRUE(connected);
  EXPECT_EQ(sink.bytes_received(), 1'000'000u);
  EXPECT_GT(tc.encapsulated(), 0u);
  EXPECT_GT(tc.decapsulated(), 0u);
  EXPECT_GT(datapath.forwarded_out(), 0u);
  EXPECT_GT(datapath.forwarded_back(), 0u);
  EXPECT_EQ(datapath.nat_entries(), 1u);
}

TEST(Tunnel, ServerSeesMasqueradedSource) {
  OverlayNet n;
  TunnelClient tc(n.a);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), TunnelMode::kGre);
  OverlayDatapath datapath(n.o);

  transport::TcpConfig cfg;
  transport::TcpListener listener(n.b, 5001, cfg);
  IpAddr seen_src{};
  listener.set_on_accept([&](transport::TcpConnection& c) {
    seen_src = c.remote_addr();
  });
  transport::TcpConnection client(n.a, 1234, n.b->addr(), 5001, cfg);
  client.connect();
  n.simv.run_until(Time::seconds(2));
  // Linux IP-masquerade semantics: B talks to O, never sees A.
  EXPECT_EQ(seen_src, n.o->addr());
}

TEST(Tunnel, IpsecModeAlsoCarriesTcp) {
  OverlayNet n;
  TunnelClient tc(n.a);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), TunnelMode::kIpsec);
  OverlayDatapath datapath(n.o);

  transport::TcpConfig cfg;
  transport::BulkSink sink(n.b, 5001, cfg);
  transport::TcpConnection client(n.a, 1234, n.b->addr(), 5001, cfg);
  client.set_on_connected([&] { client.app_write(200'000); });
  client.connect();
  n.simv.run_until(Time::seconds(10));
  EXPECT_EQ(sink.bytes_received(), 200'000u);
}

TEST(Tunnel, ConcurrentFlowsGetDistinctNatPorts) {
  OverlayNet n;
  TunnelClient tc(n.a);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), TunnelMode::kGre);
  OverlayDatapath datapath(n.o);

  transport::TcpConfig cfg;
  transport::BulkSink sink(n.b, 5001, cfg);
  transport::TcpConnection c1(n.a, 1234, n.b->addr(), 5001, cfg);
  transport::TcpConnection c2(n.a, 1235, n.b->addr(), 5001, cfg);
  c1.set_on_connected([&] { c1.app_write(100'000); });
  c2.set_on_connected([&] { c2.app_write(200'000); });
  c1.connect();
  c2.connect();
  n.simv.run_until(Time::seconds(10));
  EXPECT_EQ(sink.bytes_received(), 300'000u);
  EXPECT_EQ(datapath.nat_entries(), 2u);
}

TEST(Tunnel, EncapOverheadVisibleOnWire) {
  // Same transfer with and without the tunnel: tunnelled bytes on the
  // A->O leg must exceed the raw IP+TCP bytes by the GRE overhead.
  OverlayNet n;
  TunnelClient tc(n.a);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), TunnelMode::kGre);
  OverlayDatapath datapath(n.o);
  net::Link* a_ra = n.net.find_link(n.a, n.ra);
  ASSERT_NE(a_ra, nullptr);

  transport::TcpConfig cfg;
  transport::BulkSink sink(n.b, 5001, cfg);
  transport::TcpConnection client(n.a, 1234, n.b->addr(), 5001, cfg);
  client.set_on_connected([&] { client.app_write(1'000'000); });
  client.connect();
  n.simv.run_until(Time::seconds(20));
  const auto& st = a_ra->stats();
  // Wire bytes on the tunnelled leg must carry at least the payload plus
  // per-segment IP/TCP headers plus the GRE encapsulation overhead.
  const double min_data_segments = 1'000'000.0 / 1460.0;
  EXPECT_GT(static_cast<double>(st.tx_bytes),
            1'000'000.0 +
                min_data_segments * (net::kIpTcpHeaderBytes + net::kGreOverheadBytes));
}

TEST(Tunnel, TracerouteThroughOverlayListsOverlayHop) {
  OverlayNet n;
  TunnelClient tc(n.a);
  tc.add_tunnel_route(n.b->addr(), n.o->addr(), TunnelMode::kGre);
  OverlayDatapath datapath(n.o);

  analysis::Traceroute tr(n.a, n.b->addr());
  analysis::Traceroute::Result result;
  bool done = false;
  tr.run([&](const analysis::Traceroute::Result& r) {
    result = r;
    done = true;
  });
  n.simv.run_until(Time::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.reached);
  // Path: RA (outer ttl), O (datapath hop), RB.
  ASSERT_EQ(result.hops.size(), 3u);
  EXPECT_EQ(result.hops[1].addr, n.o->addr());
  // Per-hop RTTs are monotone-ish along the path and positive.
  EXPECT_GT(result.hops[0].rtt_ms, 0.0);
  EXPECT_GT(result.hops[2].rtt_ms, result.hops[0].rtt_ms);
}

TEST(Tunnel, HostsDoNotForwardWithoutDatapath) {
  // The only A->B path runs through host O. Without an OverlayDatapath
  // installed, O must NOT forward: a traceroute gets RA, then silence.
  OverlayNet n;
  analysis::Traceroute tr(n.a, n.b->addr(), /*max_ttl=*/4);
  analysis::Traceroute::Result result;
  bool done = false;
  tr.run([&](const analysis::Traceroute::Result& r) {
    result = r;
    done = true;
  });
  n.simv.run_until(Time::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.reached);
  ASSERT_GE(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[0].addr, n.ra->addr());
  EXPECT_EQ(result.hops[1].addr, net::IpAddr{});  // '*' — dropped at host O
  EXPECT_LT(result.hops[1].rtt_ms, 0.0);
}

}  // namespace
}  // namespace cronets::tunnel
