#include <gtest/gtest.h>

#include "core/placement.h"
#include "wkld/world.h"

namespace cronets::core {
namespace {

topo::TopologyParams small_params() {
  topo::TopologyParams p;
  p.seed = 31;
  p.num_tier1 = 6;
  p.num_tier2 = 14;
  p.num_stubs = 40;
  return p;
}

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : world_(31, small_params()), opt_(&world_.internet(), &world_.meter()) {
    auto& net = world_.internet();
    const int hq = net.add_server(topo::Region::kNaEast, "hq");
    for (int i = 0; i < 8; ++i) {
      const topo::Region r = i % 2 ? topo::Region::kEurope : topo::Region::kAsia;
      pairs_.push_back({hq, net.add_client(r, "c" + std::to_string(i))});
    }
    opt_.measure(pairs_, net.dc_endpoints(), sim::Time::hours(1));
  }

  wkld::World world_;
  PlacementOptimizer opt_;
  std::vector<std::pair<int, int>> pairs_;
};

TEST_F(PlacementTest, GreedyMatchesExhaustiveForK1) {
  const auto g = opt_.greedy(1);
  const auto e = opt_.exhaustive(1);
  ASSERT_EQ(g.chosen.size(), 1u);
  EXPECT_EQ(g.chosen, e.chosen);
  EXPECT_DOUBLE_EQ(g.total_bps, e.total_bps);
}

TEST_F(PlacementTest, GreedyNearExhaustiveForK2AndK3) {
  for (int k : {2, 3}) {
    const auto g = opt_.greedy(k);
    const auto e = opt_.exhaustive(k);
    EXPECT_EQ(static_cast<int>(g.chosen.size()), k);
    // Submodular greedy guarantee is (1-1/e) ~ 0.63; in practice it is
    // near-optimal here.
    EXPECT_GE(g.total_bps, e.total_bps * 0.9);
    EXPECT_LE(g.total_bps, e.total_bps + 1e-6);
  }
}

TEST_F(PlacementTest, ValueMonotoneInK) {
  double prev = 0.0;
  for (int k = 1; k <= 4; ++k) {
    const auto g = opt_.greedy(k);
    EXPECT_GE(g.total_bps, prev - 1e-9);
    prev = g.total_bps;
  }
}

TEST_F(PlacementTest, GreedyBeatsRandomOnAverage) {
  const auto g = opt_.greedy(2);
  const auto r = opt_.random_baseline(2, 40, 5);
  EXPECT_GE(g.total_bps, r.total_bps);
}

TEST_F(PlacementTest, ImprovementAtLeastDirect) {
  // Choosing any set can only add options; improvement factor >= 1.
  for (int k = 1; k <= 3; ++k) {
    EXPECT_GE(opt_.greedy(k).avg_improvement, 1.0);
  }
}

}  // namespace
}  // namespace cronets::core
