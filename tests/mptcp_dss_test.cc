// White-box tests of the MPTCP data-sequence machinery: mapping boundaries,
// duplicate-delivery dedup, reinjection interaction with late arrivals.

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/mptcp.h"

namespace cronets::transport {
namespace {

using net::IpAddr;
using sim::Time;

struct TwoPath {
  sim::Simulator simv;
  net::Network net{&simv, sim::Rng{53}};
  net::Host* a;
  net::Host* b;
  net::Link* p2_fwd;
  IpAddr alias{0x0b000001};

  TwoPath() {
    a = net.add_host("A");
    b = net.add_host("B");
    auto* r1 = net.add_router("R1");
    auto* r2 = net.add_router("R2");
    net::LinkSpec s;
    s.capacity_bps = 50e6;
    s.prop_delay = Time::milliseconds(10);
    auto [l1, l1r] = net.add_link(a, r1, s);
    auto [l2, l2r] = net.add_link(r1, b, s);
    auto [l3, l3r] = net.add_link(a, r2, s);
    auto [l4, l4r] = net.add_link(r2, b, s);
    p2_fwd = l4;
    a->add_route(b->addr(), l1);
    r1->add_route(b->addr(), l2);
    b->add_alias(alias);
    a->add_route(alias, l3);
    r2->add_route(alias, l4);
    b->add_route(a->addr(), l2r);
    r1->add_route(a->addr(), l1r);
    r2->add_route(a->addr(), l3r);
  }
};

TEST(MptcpDss, ExactByteAccountingAcrossSubflows) {
  TwoPath n;
  TcpConfig cfg;
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.connect();
  n.simv.run_until(Time::milliseconds(200));
  // Awkward sizes that do not align with the MSS.
  conn.app_write(1);
  conn.app_write(1459);
  conn.app_write(1461);
  conn.app_write(777'777);
  n.simv.run_until(Time::seconds(10));
  EXPECT_EQ(listener.bytes_delivered(), 1u + 1459 + 1461 + 777'777);
  EXPECT_EQ(conn.data_acked(), 1u + 1459 + 1461 + 777'777);
}

TEST(MptcpDss, DuplicateDeliveryIsIdempotent) {
  // Pause path 2 long enough to trigger an opportunistic reinjection (data
  // flows twice: the stranded original + the reinjected copy); the
  // connection-level byte count must not double-count.
  TwoPath n;
  TcpConfig cfg;
  cfg.rto_initial = Time::milliseconds(250);
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.hol_check_interval = Time::milliseconds(100);
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.connect();
  n.simv.run_until(Time::milliseconds(300));
  conn.app_write(4'000'000);
  n.simv.schedule_in(Time::milliseconds(500), [&] { n.p2_fwd->set_down(true); });
  n.simv.schedule_in(Time::seconds(3), [&] { n.p2_fwd->set_down(false); });
  n.simv.run_until(Time::seconds(30));
  EXPECT_EQ(listener.bytes_delivered(), 4'000'000u);
  EXPECT_EQ(conn.data_acked(), 4'000'000u);
  EXPECT_GT(conn.hol_reinjections(), 0u);
}

TEST(MptcpDss, SegmentsNeverStraddleMappingBoundaries) {
  // Drive a transfer and verify at the receiver that every arriving
  // segment's DSS length equals its subflow payload (the invariant the
  // sender's dss_for clamping maintains).
  TwoPath n;
  TcpConfig cfg;
  bool violated = false;
  n.b->set_tap([&](const net::Packet& pkt, net::Host::TapDir dir) {
    if (dir != net::Host::TapDir::kIn || !pkt.is_tcp()) return;
    const auto& seg = pkt.tcp();
    if (seg.payload > 0 && seg.dss_len > 0 && seg.dss_len != seg.payload) {
      violated = true;
    }
  });
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.set_infinite_source(true);
  conn.connect();
  n.simv.run_until(Time::seconds(5));
  EXPECT_FALSE(violated);
  EXPECT_GT(listener.bytes_delivered(), 1'000'000u);
}

TEST(MptcpDss, OfferedNeverExceedsWrittenForFiniteStream) {
  TwoPath n;
  TcpConfig cfg;
  MptcpListener listener(n.b, 5001, cfg);
  MptcpConfig mcfg;
  mcfg.subflow = cfg;
  MptcpConnection conn(n.a, 20000, {n.b->addr(), n.alias}, 5001, mcfg);
  conn.connect();
  n.simv.run_until(Time::milliseconds(200));
  conn.app_write(123'456);
  n.simv.run_until(Time::seconds(5));
  EXPECT_EQ(conn.data_offered(), 123'456u);
  EXPECT_EQ(conn.data_acked(), 123'456u);
}

}  // namespace
}  // namespace cronets::transport
