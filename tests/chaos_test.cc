// The chaos engine's contract: fault timelines are a pure function of
// (world_seed, scenario_seed); the injector applies and reverts every
// fault through the production mutation machinery; the resilience monitor
// is purely observational (identical decision fingerprints with and
// without it) and its SLO report is bitwise identical across thread
// counts; hard faults repin within failover_delay + one probe interval;
// and the three measurement samplers stay bitwise identical while storm
// and gray-failure overlays are active.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "chaos/injector.h"
#include "chaos/monitor.h"
#include "chaos/scenario.h"
#include "model/batch_sampler.h"
#include "service/broker.h"
#include "sim/thread_pool.h"
#include "wkld/session_churn.h"
#include "wkld/world.h"

namespace cronets::chaos {
namespace {

constexpr std::uint64_t kWorldSeed = 42;
constexpr std::uint64_t kScenarioSeed = 7;

ScenarioParams test_params() {
  ScenarioParams p;
  p.link_flaps = 2;
  p.dc_outages = 1;
  p.congestion_storms = 2;
  p.gray_failures = 2;
  p.horizon = sim::Time::seconds(60);
  p.mean_failure_s = 20.0;
  p.mean_repair_s = 8.0;
  p.min_repair_s = 3.0;
  return p;
}

void expect_same_fault(const Fault& a, const Fault& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.begin, b.begin);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.as_a, b.as_a);
  EXPECT_EQ(a.as_b, b.as_b);
  EXPECT_EQ(a.dc, b.dc);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t e = 0; e < a.events.size(); ++e) {
    EXPECT_EQ(a.events[e].link_id, b.events[e].link_id);
    EXPECT_EQ(a.events[e].forward, b.events[e].forward);
    EXPECT_EQ(a.events[e].util_boost, b.events[e].util_boost);
    EXPECT_EQ(a.events[e].loss_boost, b.events[e].loss_boost);
  }
}

TEST(ChaosScenario, PureFunctionOfSeedsAndSortedByBegin) {
  wkld::World world(kWorldSeed);
  const ScenarioParams p = test_params();
  const Scenario a = Scenario::generate(world.internet(), p, kWorldSeed, kScenarioSeed);
  const Scenario b = Scenario::generate(world.internet(), p, kWorldSeed, kScenarioSeed);

  ASSERT_EQ(a.faults().size(), b.faults().size());
  EXPECT_EQ(a.faults().size(),
            static_cast<std::size_t>(p.link_flaps + p.dc_outages +
                                     p.congestion_storms + p.gray_failures));
  EXPECT_EQ(a.count(FaultKind::kLinkFlap), p.link_flaps);
  EXPECT_EQ(a.count(FaultKind::kDcOutage), p.dc_outages);
  EXPECT_EQ(a.count(FaultKind::kCongestionStorm), p.congestion_storms);
  EXPECT_EQ(a.count(FaultKind::kGrayFailure), p.gray_failures);
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    expect_same_fault(a.faults()[i], b.faults()[i]);
    EXPECT_EQ(a.faults()[i].index, static_cast<int>(i));
    // Windows sit inside the horizon with room to close before the end.
    EXPECT_GE(a.faults()[i].begin, sim::Time{0});
    EXPECT_LT(a.faults()[i].begin, a.faults()[i].end);
    EXPECT_LE(a.faults()[i].end.to_seconds(), 0.95 * p.horizon.to_seconds());
    if (i > 0) {
      EXPECT_GE(a.faults()[i].begin, a.faults()[i - 1].begin);
    }
  }

  // A different scenario seed over the same world draws a different
  // timeline (same counts, different windows/targets).
  const Scenario c = Scenario::generate(world.internet(), p, kWorldSeed, kScenarioSeed + 1);
  ASSERT_EQ(c.faults().size(), a.faults().size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    if (a.faults()[i].begin != c.faults()[i].begin ||
        a.faults()[i].as_a != c.faults()[i].as_a) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);

  // Flap targets are distinct transit-transit adjacencies.
  const auto& ases = world.internet().ases();
  std::vector<std::pair<int, int>> flapped;
  for (const Fault& f : a.faults()) {
    if (f.kind != FaultKind::kLinkFlap) continue;
    EXPECT_NE(ases[f.as_a].tier, topo::Tier::kStub);
    EXPECT_NE(ases[f.as_b].tier, topo::Tier::kStub);
    const auto key = std::minmax(f.as_a, f.as_b);
    EXPECT_EQ(std::count(flapped.begin(), flapped.end(),
                         std::pair<int, int>(key.first, key.second)),
              0);
    flapped.emplace_back(key.first, key.second);
  }
  EXPECT_EQ(static_cast<int>(flapped.size()), p.link_flaps);
}

/// Records world state at each transition; the injector invokes observers
/// after mutations apply, so begin must already see the failure in place.
struct StateProbe : FaultObserver {
  explicit StateProbe(topo::Internet* net) : net(net) {}
  void on_fault_begin(const Fault& f, sim::Time t) override {
    begins.push_back(f.index);
    EXPECT_EQ(t, f.begin);
    if (f.kind == FaultKind::kLinkFlap) {
      EXPECT_FALSE(net->adjacency_up(f.as_a, f.as_b));
    } else if (f.kind == FaultKind::kDcOutage) {
      EXPECT_FALSE(f.downed.empty());
      for (const auto& [a, b] : f.downed) EXPECT_FALSE(net->adjacency_up(a, b));
    } else {
      EXPECT_FALSE(f.events.empty());
    }
  }
  void on_fault_end(const Fault& f, sim::Time t) override {
    ends.push_back(f.index);
    EXPECT_EQ(t, f.end);
    if (f.kind == FaultKind::kLinkFlap) {
      EXPECT_TRUE(net->adjacency_up(f.as_a, f.as_b));
    } else if (f.kind == FaultKind::kDcOutage) {
      for (const auto& [a, b] : f.downed) EXPECT_TRUE(net->adjacency_up(a, b));
    }
  }
  topo::Internet* net;
  std::vector<int> begins, ends;
};

TEST(ChaosInjector, AppliesEveryFaultAndRestoresTheWorld) {
  wkld::World world(kWorldSeed);
  topo::Internet& net = world.internet();
  const Scenario scenario =
      Scenario::generate(net, test_params(), kWorldSeed, kScenarioSeed);

  const std::uint64_t epoch_before = net.mutation_epoch();
  const std::size_t events_before = net.events().size();

  sim::EventQueue queue;
  Injector injector(&net, &queue);
  StateProbe probe(&net);
  injector.set_observer(&probe);
  injector.arm(scenario);

  while (queue.run_next()) {
  }

  EXPECT_EQ(injector.begun(), scenario.faults().size());
  EXPECT_EQ(injector.ended(), scenario.faults().size());
  EXPECT_EQ(probe.begins.size(), scenario.faults().size());
  EXPECT_EQ(probe.ends.size(), scenario.faults().size());
  // Hard faults mutate adjacencies (epoch churn); soft faults add events.
  EXPECT_GT(net.mutation_epoch(), epoch_before);
  EXPECT_GT(net.events().size(), events_before);
  // Every adjacency is back up: routing is fully restored.
  for (const auto& as : net.ases()) {
    for (const auto& adj : as.adj) EXPECT_TRUE(adj.up);
  }
}

struct ChaosRun {
  service::BrokerStats stats;
  ResilienceReport report;
  double repin_bound_s = 0.0;
};

/// One broker run under the standard fault mix. Everything in the result
/// must be a pure function of the seeds and config — never of `threads`.
ChaosRun run_chaos(int threads, bool with_monitor = true) {
  wkld::World world(kWorldSeed);
  const auto clients = world.make_web_clients(12);
  const auto servers = world.make_servers();
  const auto overlays = world.rent_paper_overlays();

  service::BrokerConfig cfg;
  cfg.probe.interval = sim::Time::seconds(10);
  cfg.probe.tick = sim::Time::seconds(1);
  cfg.probe.budget_per_tick = 16;
  cfg.failover_delay = sim::Time::seconds(1);
  sim::ThreadPool pool(sim::Parallelism{threads});
  service::Broker broker(&world.internet(), &world.meter(), &pool, overlays, cfg);

  wkld::SessionChurnParams churn_params;
  churn_params.seed = kWorldSeed ^ 0x5e55;
  churn_params.target_concurrent = 400;
  churn_params.mean_duration_s = 20.0;
  churn_params.horizon = sim::Time::seconds(60);
  wkld::SessionChurn churn(&broker, clients, servers, churn_params);

  const Scenario scenario = Scenario::generate(world.internet(), test_params(),
                                               kWorldSeed, kScenarioSeed);
  std::unique_ptr<ResilienceMonitor> monitor;
  if (with_monitor) monitor = std::make_unique<ResilienceMonitor>(&broker);
  Injector injector(&world.internet(), &broker.queue());
  if (monitor) injector.set_observer(monitor.get());
  injector.arm(scenario);

  churn.start();
  broker.warm_up();
  broker.run_until(churn_params.horizon);

  ChaosRun r;
  r.stats = broker.stats();
  if (monitor) {
    monitor->finalize(churn_params.horizon);
    r.report = monitor->report();
  }
  r.repin_bound_s =
      cfg.failover_delay.to_seconds() + cfg.probe.interval.to_seconds();
  return r;
}

TEST(ChaosResilience, HardFaultsRepinWithinFailoverPlusOneInterval) {
  const ChaosRun r = run_chaos(1);
  // The scenario actually hit the control plane: hard faults had sessions
  // in their blast radius and the workload kept running throughout.
  EXPECT_GT(r.stats.sessions_admitted, 500u);
  EXPECT_GT(r.report.total_session_s, 0.0);
  EXPECT_GT(r.report.hard_faults_impacting, 0);
  EXPECT_GT(r.report.degraded_session_s, 0.0);
  EXPECT_LT(r.report.availability, 1.0);
  EXPECT_GT(r.report.availability, 0.5);

  ASSERT_EQ(r.report.faults.size(), 7u);
  for (const FaultReport& f : r.report.faults) {
    const bool hard =
        f.kind == FaultKind::kLinkFlap || f.kind == FaultKind::kDcOutage;
    if (hard && f.pairs_impacted > 0) {
      // The failover SLO: every impacting hard fault repins within
      // failover_delay + one probe interval.
      EXPECT_GE(f.time_to_repin_s, 0.0) << "fault at " << f.begin_s;
      EXPECT_LE(f.time_to_repin_s, r.repin_bound_s) << "fault at " << f.begin_s;
    }
    if (f.time_to_detect_s >= 0.0) {
      // Detection is the probe loop noticing: bounded by ~2 intervals
      // (budget-limited round-robin worst case).
      EXPECT_LE(f.time_to_detect_s, 20.0) << "fault at " << f.begin_s;
    }
    EXPECT_GE(f.sessions_degraded, 0);
  }
  EXPECT_LE(r.report.max_hard_repin_s, r.repin_bound_s);
}

TEST(ChaosResilience, SloReportBitwiseIdenticalAcrossThreadCounts) {
  const ChaosRun serial = run_chaos(1);
  const ChaosRun parallel = run_chaos(4);

  EXPECT_EQ(serial.stats.decision_fingerprint, parallel.stats.decision_fingerprint);
  EXPECT_EQ(serial.stats.sessions_admitted, parallel.stats.sessions_admitted);
  EXPECT_EQ(serial.stats.migrations, parallel.stats.migrations);
  EXPECT_EQ(serial.stats.failover_repins, parallel.stats.failover_repins);
  EXPECT_EQ(serial.stats.regret_sum, parallel.stats.regret_sum);

  const ResilienceReport& a = serial.report;
  const ResilienceReport& b = parallel.report;
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].begin_s, b.faults[i].begin_s);
    EXPECT_EQ(a.faults[i].end_s, b.faults[i].end_s);
    EXPECT_EQ(a.faults[i].time_to_detect_s, b.faults[i].time_to_detect_s);
    EXPECT_EQ(a.faults[i].time_to_repin_s, b.faults[i].time_to_repin_s);
    EXPECT_EQ(a.faults[i].pairs_impacted, b.faults[i].pairs_impacted);
    EXPECT_EQ(a.faults[i].sessions_impacted, b.faults[i].sessions_impacted);
    EXPECT_EQ(a.faults[i].sessions_degraded, b.faults[i].sessions_degraded);
    EXPECT_EQ(a.faults[i].sessions_dropped, b.faults[i].sessions_dropped);
  }
  EXPECT_EQ(a.total_session_s, b.total_session_s);
  EXPECT_EQ(a.degraded_session_s, b.degraded_session_s);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.regret_in_sum, b.regret_in_sum);
  EXPECT_EQ(a.regret_in_samples, b.regret_in_samples);
  EXPECT_EQ(a.regret_out_sum, b.regret_out_sum);
  EXPECT_EQ(a.regret_out_samples, b.regret_out_samples);
  EXPECT_EQ(a.max_hard_repin_s, b.max_hard_repin_s);
  EXPECT_EQ(a.sessions_dropped, b.sessions_dropped);
}

TEST(ChaosResilience, MonitorIsPurelyObservational) {
  // Attaching the monitor must not perturb a single decision.
  const ChaosRun observed = run_chaos(1, /*with_monitor=*/true);
  const ChaosRun bare = run_chaos(1, /*with_monitor=*/false);
  EXPECT_EQ(observed.stats.decision_fingerprint, bare.stats.decision_fingerprint);
  EXPECT_EQ(observed.stats.sessions_admitted, bare.stats.sessions_admitted);
  EXPECT_EQ(observed.stats.migrations, bare.stats.migrations);
  EXPECT_EQ(observed.stats.regret_sum, bare.stats.regret_sum);
}

void expect_same_metrics(const model::PathMetrics& a, const model::PathMetrics& b) {
  EXPECT_EQ(a.rtt_ms, b.rtt_ms);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.residual_bps, b.residual_bps);
  EXPECT_EQ(a.capacity_bps, b.capacity_bps);
  EXPECT_EQ(a.hop_count, b.hop_count);
}

TEST(ChaosModel, SamplersBitwiseIdenticalUnderStormAndGrayOverlays) {
  wkld::World world(kWorldSeed);
  topo::Internet& net = world.internet();
  const auto clients = world.make_web_clients(4);
  const auto servers = world.make_servers();

  std::vector<topo::PathRef> paths;
  for (int s : servers) {
    for (int c : clients) paths.push_back(net.cached_path(s, c));
  }
  const sim::Time inside = sim::Time::minutes(30);
  const sim::Time outside = sim::Time::minutes(90);
  const model::PathMetrics calm = world.flow().sample(paths[0], inside);

  // A congestion storm and a gray failure on the first path's first link,
  // both covering `inside` only.
  topo::LinkEvent storm;
  storm.link_id = paths[0]->traversals.front().link_id;
  storm.forward = paths[0]->traversals.front().forward;
  storm.from = sim::Time::minutes(20);
  storm.until = sim::Time::minutes(40);
  storm.util_boost = 0.4;
  net.add_event(storm);
  topo::LinkEvent gray = storm;
  gray.util_boost = 0.0;
  gray.loss_boost = 0.08;
  net.add_event(gray);

  // Re-intern after the epoch bump, as production consumers do.
  paths.clear();
  for (int s : servers) {
    for (int c : clients) paths.push_back(net.cached_path(s, c));
  }

  model::BatchSampler sampler(&world.flow());
  sampler.begin_batch();
  std::vector<int> handles;
  for (const auto& p : paths) handles.push_back(sampler.intern(p));
  std::vector<model::PathMetrics> out(paths.size());

  for (const sim::Time t : {inside, outside}) {
    sampler.sample_batch(handles.data(), handles.size(), t, out.data());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const model::PathMetrics generic = world.flow().sample(*paths[i], t);
      expect_same_metrics(generic, world.flow().sample(paths[i], t));
      expect_same_metrics(generic, out[i]);
    }
  }

  // Inside the window the gray failure inflates loss on top of the storm's
  // utilization surge; outside, the path returns to its calm metrics.
  const model::PathMetrics hot = world.flow().sample(paths[0], inside);
  EXPECT_GT(hot.loss, calm.loss);
  expect_same_metrics(world.flow().sample(paths[0], outside),
                      world.flow().sample(*paths[0], outside));
}

}  // namespace
}  // namespace cronets::chaos
