#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/measure_model.h"
#include "service/broker.h"
#include "service/path_ranker.h"
#include "service/probe_scheduler.h"
#include "service/session_manager.h"
#include "sim/event_queue.h"
#include "sim/thread_pool.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::service {

/// Per-shard slice of the aggregated statistics (reporting only — every
/// decision-bearing quantity lives in the shard-invariant aggregate).
struct ShardStats {
  std::size_t pairs = 0;
  std::size_t active_sessions = 0;
  std::uint64_t sessions_admitted = 0;
  std::uint64_t sessions_released = 0;
  std::uint64_t admitted_via_overlay = 0;
  std::uint64_t migrations = 0;
  std::uint64_t probes = 0;
  std::uint64_t ranking_flips = 0;
  std::uint64_t failover_repins = 0;
  std::uint64_t overlay_denied = 0;
  double nic_used_bps = 0.0;  ///< this shard's current NIC reservations
  double nic_peak_bps = 0.0;  ///< this shard's peak NIC reservation
};

/// Aggregate counters of a sharded run. Integer totals are exact sums over
/// shards; the decision fingerprint and regret are merged per pair (see
/// ShardedBroker), so every field is a pure function of (world seed,
/// workload seed, config) — never of shard count, thread count, or
/// wall-clock.
struct ShardedBrokerStats {
  std::uint64_t sessions_admitted = 0;
  std::uint64_t sessions_released = 0;
  std::uint64_t admitted_via_overlay = 0;
  std::uint64_t migrations = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_ticks = 0;
  /// Pairs the global probe sweeps examined, summed over ticks (the
  /// incremental scheduler's due prefix per tick; every pair when the
  /// stateless scan runs) — same semantics as BrokerStats.
  std::uint64_t sweep_pairs_touched = 0;
  std::uint64_t ranking_flips = 0;
  std::uint64_t failover_events = 0;
  std::uint64_t failover_repins = 0;
  sim::Time last_failover_reaction{0};
  /// Shard-count- and thread-count-invariant global decision fingerprint:
  /// per-pair decision chains keyed by global pair id, merged across
  /// shards in shard-index order by wrapping 64-bit addition.
  std::uint64_t decision_fingerprint = 0;
  /// Economics-plane counters, summed over shards (exact integers).
  std::uint64_t budget_denied = 0;
  std::uint64_t slo_met = 0;
  std::uint64_t slo_total = 0;
  /// Goodput regret vs. the per-sample oracle, folded over pairs in
  /// global-pair-id order (fixed summation order: bitwise invariant).
  double regret_sum = 0.0;
  std::uint64_t regret_samples = 0;
  std::vector<ShardStats> shards;

  double mean_regret() const {
    return regret_samples ? regret_sum / static_cast<double>(regret_samples)
                          : 0.0;
  }
};

/// Horizontally partitioned CRONets control plane: the pair space is split
/// by a deterministic endpoint hash across N broker shards, each owning
/// its own slot-arena session table, its own per-pair path tables, and its
/// own probe scratch (request buffers + PairSample results), so probe
/// sweeps fan out across shards x batches with zero shared mutable state.
/// Admission capacity stays physical: every shard's session table checks
/// reservations against one shared NIC ledger, because sharding the
/// brokers does not multiply the overlay VMs' NICs.
///
/// Determinism contract — every decision is bitwise identical at any shard
/// count and any thread count:
///  - Probe selection is global: a flat staleness table indexed by global
///    pair id feeds one ProbeScheduler, so which pairs are probed when
///    never depends on the partitioning. Each shard's slice of the
///    selection is its probe-budget share for that tick.
///  - Measurements are pure functions of (seed, src, dst, t); shards and
///    batches are a fan-out knob only.
///  - Samples are applied in global-selection order on the single-threaded
///    event queue (the same technique as the single broker's
///    pair-index-ordered application), so cross-pair effects through the
///    shared NIC ledger happen in one fixed order.
///  - Topology mutations fan out to every shard in shard-index order
///    through one topo::Internet mutation listener; impacted pairs merge
///    into one globally sorted failover batch.
///  - The global decision fingerprint merges per-pair decision chains
///    (keyed by global pair id) across shards in shard-index order with
///    wrapping addition — commutative, so any partition of the pairs
///    yields the same 64-bit value.
class ShardedBroker final : public ControlPlane {
 public:
  ShardedBroker(topo::Internet* topo, const core::ModelMeasurement* meter,
                sim::ThreadPool* pool, std::vector<int> overlay_eps,
                int num_shards, BrokerConfig cfg = {});
  ~ShardedBroker() override;

  ShardedBroker(const ShardedBroker&) = delete;
  ShardedBroker& operator=(const ShardedBroker&) = delete;

  /// Owning shard of a (src, dst) pair: a pure function of the endpoint
  /// ids and the shard count (splitmix64 of the packed pair, mod N).
  static int shard_of(int src, int dst, int num_shards);

  int register_pair(int src, int dst) override;
  std::uint64_t open_session(int pair_idx, double demand_bps) override;
  /// Convenience: register-or-find the pair first.
  std::uint64_t open_session(int src, int dst, double demand_bps);
  void close_session(std::uint64_t id) override;

  /// Probe every registered pair once at the current time (parallel across
  /// shards and batches). Call after registering pairs, before run_until.
  void warm_up();

  void run_until(sim::Time t) override;
  sim::Time now() const override { return now_; }
  sim::EventQueue& queue() override { return queue_; }
  sim::Time pair_last_probe(int pair_idx) const override {
    return global_last_probe_[static_cast<std::size_t>(pair_idx)];
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t pair_count() const { return shard_of_pair_.size(); }
  std::size_t active_sessions() const;

  /// The pair's state on its owning shard (read-only global view).
  const PairState& pair(int pair_idx) const;
  int pair_shard(int pair_idx) const {
    return shard_of_pair_[static_cast<std::size_t>(pair_idx)];
  }

  const PathRanker& shard_ranker(int shard) const;
  const SessionManager& shard_sessions(int shard) const;
  /// The shared capacity authority all shards reserve against.
  const NicLedger& global_nic() const { return global_nic_; }
  /// The global economics books every shard also writes to, in global
  /// event order — bitwise identical at any shard count (the per-shard
  /// books, reachable via shard_sessions, sum to these within rounding).
  const econ::BillingLedger& global_billing() const { return global_billing_; }
  const econ::CostLedger& global_cost() const { return global_cost_; }

  /// Meter every still-live session's bytes up to the current simulated
  /// time (end-of-run settlement). Pairs are settled in global-pair-id
  /// order — NOT shard order — so the global ledger's accumulation order,
  /// and hence its doubles, stay invariant to the shard count.
  void settle_billing();
  const ProbeScheduler& scheduler() const { return scheduler_; }
  const std::vector<int>& overlay_eps() const { return overlay_eps_; }

  /// Pairs examined by the most recent probe tick's global sweep (0 when
  /// every ranking is fresh).
  std::uint64_t last_sweep_touched() const { return last_sweep_touched_; }

  /// Aggregated + per-shard statistics (merged on demand; see
  /// ShardedBrokerStats for the invariance guarantees).
  ShardedBrokerStats stats() const;

  /// Live sessions across all shards whose pinned path crosses (as_a,
  /// as_b) — 0 after a completed failover.
  int sessions_traversing(int as_a, int as_b) const;
  /// The transit-to-transit adjacency carrying the most sessions fleet-
  /// wide (failure-injection helper, as on Broker).
  bool busiest_transit_adjacency(int* as_a, int* as_b) const;

 private:
  /// One shard: path tables + session arena + this shard's own sweep
  /// scratch. Scratch vectors are sized at registration time and written
  /// at disjoint ranges by concurrent measurement tasks.
  struct Shard {
    Shard(topo::Internet* topo, const BrokerConfig& cfg,
          const std::vector<int>& overlay_eps, AdmissionConfig admission,
          NicLedger* shared_nic, std::uint64_t id_tag,
          econ::BillingLedger* shared_billing, econ::CostLedger* shared_cost)
        : ranker(topo, cfg.ranking, overlay_eps),
          sessions(admission, overlay_eps, shared_nic, id_tag, shared_billing,
                   shared_cost) {}

    PathRanker ranker;
    SessionManager sessions;
    std::vector<int> local_to_global;
    // Per-shard sweep scratch (this shard's probe-budget slice).
    std::vector<int> sel_local;  ///< local pair idxs, global-selection order
    std::vector<std::pair<int, int>> req_pairs;     ///< endpoint ids
    std::vector<core::PairSample> probe_results;    ///< storage reused
    // Reporting counters (aggregates are recomputed shard-invariantly).
    std::uint64_t admitted = 0;
    std::uint64_t released = 0;
    std::uint64_t via_overlay = 0;
    std::uint64_t migrations = 0;
    std::uint64_t probes = 0;
    std::uint64_t flips = 0;
    std::uint64_t failover_repins = 0;
  };

  void probe_tick();
  /// Partition `sel` (global ids, selection order) across shards and
  /// measure every slice (parallel over shard x batch tasks).
  void measure_selection(const std::vector<int>& sel, sim::Time t);
  /// Apply the measured samples in global-selection order.
  void apply_selection(const std::vector<int>& sel, sim::Time t,
                       bool force_repin);
  void apply_probe(Shard& sh, int global_id, int local_idx,
                   const core::PairSample& s, sim::Time t, bool force_repin);
  void on_mutation(const topo::Mutation& m);
  void handle_failover();

  topo::Internet* topo_;
  const core::ModelMeasurement* meter_;
  sim::ThreadPool* pool_;  ///< may be null: fully serial probing
  std::vector<int> overlay_eps_;
  BrokerConfig cfg_;
  sim::EventQueue queue_;
  sim::Time now_{0};
  NicLedger global_nic_;
  econ::BillingLedger global_billing_;
  econ::CostLedger global_cost_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ProbeScheduler scheduler_;
  int listener_id_ = -1;
  std::uint64_t route_epoch_ = 0;

  // Global pair directory: id allocation order is the workload's
  // registration order, independent of the partitioning.
  std::unordered_map<std::uint64_t, int> pair_index_;  // (src,dst) -> gid
  std::vector<int> shard_of_pair_;                     // gid -> shard
  std::vector<int> local_of_pair_;                     // gid -> local idx
  std::vector<sim::Time> global_last_probe_;           // gid -> staleness

  std::uint64_t failover_events_ = 0;
  std::uint64_t probe_ticks_ = 0;
  std::uint64_t sweep_pairs_touched_ = 0;
  std::uint64_t last_sweep_touched_ = 0;
  sim::Time last_failover_reaction_{0};
  std::vector<int> pending_failover_pairs_;  // global ids
  sim::Time pending_failover_since_{-1};
  bool failover_scheduled_ = false;

  std::vector<int> sel_scratch_;                   // global selection
  std::vector<std::pair<int, std::size_t>> tasks_; // (shard, slice offset)
  std::vector<std::size_t> cursor_;                // per-shard apply cursor
  std::vector<int> local_scratch_;                 // mutation fan-out
};

}  // namespace cronets::service
