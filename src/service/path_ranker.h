#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/measure_model.h"
#include "core/overlay.h"
#include "core/selection.h"
#include "econ/billing_ledger.h"
#include "econ/pricing_book.h"
#include "route/plane.h"
#include "sim/hash_rng.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::service {

/// Smoothing and stability knobs of the per-pair path tables.
struct RankerConfig {
  /// EWMA weight of a fresh probe sample (1 = no smoothing). Smoothing is
  /// what keeps rankings from flapping on per-probe measurement noise —
  /// the delay-based-routing lesson: raw probe-driven selection oscillates.
  double ewma_alpha = 0.3;
  /// A challenger must beat the incumbent best path's smoothed score by
  /// this relative margin before the pair switches (and sessions migrate).
  double hysteresis = 0.10;
  /// Record every probe into a core::PairHistory per pair (direct +
  /// per-overlay split samples plus the score the pinned path achieved),
  /// so regret and the core/selection baselines can be computed offline.
  bool record_history = true;
  /// Multi-hop routing plane (not owned; null = feature off, zero new
  /// candidates, all fingerprints unchanged). When set AND the plane's
  /// policy is enabled, every pair also ranks kMultiHop candidates: enter
  /// the cloud at one VM, ride the plane's current backbone route, exit at
  /// another. The plane must outlive the ranker and run on the same event
  /// queue as the owning broker so that route reads are deterministic
  /// (the brokers attach an un-attached plane to their own queue at
  /// construction). One plane instance per control plane — never share
  /// one across brokers being compared against each other.
  route::RoutePlane* route_plane = nullptr;
  /// The economics plane (econ::EconConfig). With `econ.pricing` null the
  /// plane is off: no candidate is priced, the ranking objective is raw
  /// smoothed goodput, and every fingerprint is bitwise unchanged. With a
  /// pricing book attached, candidates carry their $/GB and billing cells,
  /// and `econ.policy` selects the ranking objective (the kPerformance
  /// policy still ranks on goodput alone — pricing is then pure
  /// observation for the metered ledger).
  econ::EconConfig econ;
};

/// One candidate route of a (src, dst) pair: the direct policy path, a
/// split-TCP relay through one overlay VM, or a multi-hop chain entering
/// the cloud at `overlay_ep` and exiting at `exit_ep` along the routing
/// plane's current backbone route.
struct Candidate {
  core::PathKind kind = core::PathKind::kDirect;
  int overlay_ep = -1;        ///< kSplitOverlay/kMultiHop: entry VM
  int exit_ep = -1;           ///< kMultiHop only: exit VM
  double score_bps = 0.0;     ///< EWMA-smoothed predicted throughput
  double last_bps = 0.0;      ///< most recent raw probe sample
  bool measured = false;      ///< at least one probe applied
  bool down = false;          ///< traverses a failed adjacency (await repin)
  topo::PathRef path;         ///< direct path, or leg src -> entry VM
  topo::PathRef leg2;         ///< overlay kinds: exit VM -> dst
  /// kMultiHop: the plane route the score was composed against — the DC
  /// endpoint chain (entry..exit, >= 2 entries; empty = no usable route),
  /// its interned backbone segments, and the per-destination plane version
  /// it was read at (stale version => re-read on the next probe).
  std::vector<int> via;
  std::vector<topo::PathRef> mids;
  std::uint64_t route_ver = 0;
  /// Economics plane (RankerConfig::econ.pricing set): what one GB of this
  /// candidate's traffic costs, and the per-hop metering cells behind that
  /// number — direct pays nothing, a one-hop relay pays transit egress at
  /// its VM, a multi-hop chain pays backbone egress at every intermediate
  /// hop plus transit at the exit. Recomputed whenever the candidate's
  /// route is (re)built, so the price always matches the current chain.
  double usd_per_gb = 0.0;
  std::vector<econ::BillCell> bills;
};

/// Ranked path table of one (src, dst) pair, plus the broker bookkeeping
/// that rides along with it (pinned sessions, probe staleness, history).
struct PairState {
  int src = -1;
  int dst = -1;
  std::vector<Candidate> candidates;  ///< [0] = direct, then overlays
  int best = 0;                       ///< hysteresis-stable current choice
  sim::Time last_probe{-1};           ///< negative: never probed
  std::uint64_t probes = 0;
  std::uint64_t route_epoch = 0;      ///< broker: epoch candidates were built at
  /// Session slots currently pinned to this pair (owned by SessionManager;
  /// order = admission order, with swap-removal on release).
  std::vector<std::uint32_t> sessions;
  /// Probe log for offline analysis (RankerConfig::record_history).
  core::PairHistory history;
  std::vector<double> achieved_bps;  ///< pinned path's raw sample per probe
  /// Regret inputs of the latest applied sample, both clamped to 0 on
  /// unreachable candidates: the best raw value any candidate scored, and
  /// what the path pinned *before* the sample was applied scored.
  double last_oracle_bps = 0.0;
  double last_pinned_bps = 0.0;
  /// Per-pair goodput regret, accumulated by apply_sample in probe-time
  /// order. Unlike a broker-global running sum, a per-pair sum is a pure
  /// function of the pair's own probe sequence, so it is bitwise identical
  /// no matter how the pair space is partitioned across broker shards.
  double regret_sum = 0.0;
  std::uint64_t regret_samples = 0;
  /// Order-sensitive hash chain over this pair's own control-plane
  /// decisions (admissions and repins, stamped via stamp_pair_admit /
  /// stamp_pair_repin). All of a pair's decisions happen on its owning
  /// shard in simulated-time order, so the chain — unlike a broker-global
  /// chain, whose cross-pair interleaving depends on the partitioning —
  /// is invariant to shard count and thread count.
  std::uint64_t decision_fp = 0;
  std::uint64_t admit_seq = 0;  ///< admissions stamped into the chain
  /// Cached admission order (see PathRanker::admission_order) plus its
  /// dirty bit — the heart of dirty-set incremental re-ranking. Set by
  /// every mutation that can change the ranking (apply_sample,
  /// refresh_paths, mark_adjacency_down, candidate rebuilds); admissions
  /// on a clean pair reuse the cached order with no sort.
  std::vector<int> order_cache;
  bool order_dirty = true;
};

/// Fold one admission into the pair's decision chain.
inline void stamp_pair_admit(PairState& p, int candidate) {
  ++p.admit_seq;
  p.decision_fp = sim::hash_combine(
      p.decision_fp, sim::hash_combine(0xAD317ull,
                                       sim::hash_combine(p.admit_seq,
                                                         static_cast<std::uint64_t>(
                                                             candidate))));
}

/// Fold one repin (post-probe or failover migration sweep) into the chain.
inline void stamp_pair_repin(PairState& p, int moved) {
  p.decision_fp = sim::hash_combine(
      p.decision_fp,
      sim::hash_combine(0x4E914ull,
                        sim::hash_combine(static_cast<std::uint64_t>(moved),
                                          static_cast<std::uint64_t>(p.best))));
}

/// One pair's contribution to a global decision fingerprint, keyed by its
/// partition-independent global pair id. Contributions combine by wrapping
/// 64-bit addition — commutative and associative — so per-shard partial
/// sums merged in shard-index order equal the 1-shard sum bit for bit.
inline std::uint64_t pair_decision_term(std::uint64_t global_id,
                                        const PairState& p) {
  return sim::splitmix64(sim::hash_combine(
      sim::hash_combine(0x5da4d5ull, global_id),
      sim::hash_combine(p.decision_fp, p.admit_seq)));
}

/// Does this router-level path cross the AS adjacency (as_a, as_b) in
/// either direction?
bool path_uses_adjacency(const topo::RouterPath& path, int as_a, int as_b);

/// Per-pair ranked path tables: direct vs. split-overlay candidates scored
/// by smoothed predicted throughput, backed by interned topo::PathCache
/// PathRefs. The ranker itself is passive — the ProbeScheduler decides when
/// a pair is re-measured, the Broker feeds samples in via `apply_sample`.
class PathRanker {
 public:
  PathRanker(topo::Internet* topo, RankerConfig cfg,
             std::vector<int> overlay_eps);

  /// Register (or find) the pair. Candidate paths are interned on first
  /// registration; scores start unmeasured (the direct path ranks first
  /// until probed).
  int add_pair(int src, int dst);
  int find_pair(int src, int dst) const;  ///< -1 if unknown

  std::size_t size() const { return pairs_.size(); }
  const PairState& pair(int idx) const { return pairs_[idx]; }
  PairState& pair(int idx) { return pairs_[idx]; }
  const std::vector<int>& overlay_eps() const { return overlay_eps_; }
  const RankerConfig& config() const { return cfg_; }

  /// Fold a fresh measurement into the pair's smoothed scores and re-rank
  /// with hysteresis. Returns true when the best candidate changed (the
  /// caller migrates sessions). Also logs regret inputs when recording.
  bool apply_sample(int idx, const core::PairSample& s, sim::Time t);

  /// Re-intern every candidate path of the pair (after a route-changing
  /// mutation) and clear `down` flags. Smoothed scores survive — the
  /// endpoints didn't move, only the route did — and the next probe
  /// corrects them.
  void refresh_paths(int idx);

  /// Append the indices of pairs with any candidate whose current interned
  /// path crosses the AS adjacency (as_a, as_b); marks those candidates
  /// `down` so no new session pins to them before the failover repin.
  void mark_adjacency_down(int as_a, int as_b, std::vector<int>* affected);

  /// Candidate order for admission: current best first, then the remaining
  /// candidates by descending smoothed score (down candidates last).
  /// Writes indices into `out` (sized to candidates.size()). This is the
  /// full-recompute reference; admissions use admission_order below.
  void ranked_order(int idx, std::vector<int>* out) const;

  /// The pair's cached admission order — identical content to ranked_order,
  /// but only recomputed when the pair's dirty bit is set (a probe was
  /// applied, paths refreshed, or an adjacency failed since the last call).
  /// Steady-state admissions on a clean pair are sort-free, so admission
  /// cost scales with probe/mutation churn instead of session count.
  const std::vector<int>& admission_order(int idx);

  /// The scalar the current cost policy ranks candidates by. Under
  /// kPerformance (or with no pricing book) this is exactly the smoothed
  /// score — same doubles, same comparisons, bitwise-identical rankings.
  /// kMinCostMeetingSlo maps SLO-meeting candidates into (1, 2] by
  /// cheapness and the rest into [0, 1) by score (a monotone transform of
  /// score below the SLO, so the fallback ranking matches performance);
  /// kPareto blends normalized goodput and normalized $/GB with alpha.
  /// Hysteresis applies to this objective, whatever the policy.
  double candidate_objective(const Candidate& c) const;

  /// Whether the pair's cached order is stale (test/bench introspection).
  bool order_dirty(int idx) const {
    return pairs_[static_cast<std::size_t>(idx)].order_dirty;
  }
  /// Cached-order rebuilds / clean reuses since construction.
  std::uint64_t order_rebuilds() const { return order_rebuilds_; }
  std::uint64_t order_hits() const { return order_hits_; }

  /// Sum of this ranker's pair_decision_term contributions, keyed by
  /// `local_to_global` (identity when null). Per-shard partials merged in
  /// shard-index order reproduce the unsharded sum bitwise — the global
  /// decision fingerprint of the sharded control plane.
  std::uint64_t partial_decision_fingerprint(
      const std::vector<int>* local_to_global = nullptr) const;

 private:
  void build_candidates(PairState* p) const;
  /// Re-read the plane's current route for a kMultiHop candidate and
  /// re-intern its segments (entry/exit access legs + backbone mids).
  void refresh_multihop(const PairState& p, Candidate* c) const;
  /// Recompute the candidate's $/GB and billing cells from the pricing
  /// book (no-op with the economics plane off).
  void price_candidate(const PairState& p, Candidate* c) const;

  topo::Internet* topo_;
  RankerConfig cfg_;
  std::vector<int> overlay_eps_;
  std::vector<PairState> pairs_;
  std::unordered_map<std::uint64_t, int> index_;  // (src,dst) -> pair idx
  std::uint64_t order_rebuilds_ = 0;
  std::uint64_t order_hits_ = 0;
};

}  // namespace cronets::service
