#include "service/broker.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "sim/hash_rng.h"

namespace cronets::service {

namespace {
std::uint64_t adjacency_key(int a, int b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

bool is_transit(const topo::Internet& topo, int as_id) {
  const topo::Tier t = topo.ases()[static_cast<std::size_t>(as_id)].tier;
  return t == topo::Tier::kTier1 || t == topo::Tier::kTier2;
}
}  // namespace

int count_sessions_traversing(const PathRanker& ranker,
                              const SessionManager& sessions, int as_a,
                              int as_b) {
  int count = 0;
  sessions.for_each_live([&](std::uint64_t, const Session& s) {
    const PairState& p = ranker.pair(s.pair);
    const Candidate& c = p.candidates[static_cast<std::size_t>(s.candidate)];
    bool uses = (c.path && path_uses_adjacency(*c.path, as_a, as_b)) ||
                (c.leg2 && path_uses_adjacency(*c.leg2, as_a, as_b));
    for (const auto& mid : c.mids) {
      if (!uses && mid && path_uses_adjacency(*mid, as_a, as_b)) uses = true;
    }
    if (uses) ++count;
  });
  return count;
}

void accumulate_transit_load(const topo::Internet& topo,
                             const PathRanker& ranker,
                             const SessionManager& sessions,
                             std::unordered_map<std::uint64_t, int>* load) {
  const auto count_path = [&](const topo::RouterPath& path) {
    for (std::size_t i = 1; i < path.as_seq.size(); ++i) {
      const int u = path.as_seq[i - 1], v = path.as_seq[i];
      if (is_transit(topo, u) && is_transit(topo, v)) {
        ++(*load)[adjacency_key(u, v)];
      }
    }
  };
  sessions.for_each_live([&](std::uint64_t, const Session& s) {
    const PairState& p = ranker.pair(s.pair);
    const Candidate& c = p.candidates[static_cast<std::size_t>(s.candidate)];
    if (c.path) count_path(*c.path);
    for (const auto& mid : c.mids) {
      if (mid) count_path(*mid);
    }
    if (c.leg2) count_path(*c.leg2);
  });
}

bool busiest_adjacency_in(const std::unordered_map<std::uint64_t, int>& load,
                          int* as_a, int* as_b) {
  std::uint64_t best_key = 0;
  int best_count = 0;
  for (const auto& [key, count] : load) {
    if (count > best_count || (count == best_count && key < best_key)) {
      best_count = count;
      best_key = key;
    }
  }
  if (best_count == 0) return false;
  *as_a = static_cast<int>(best_key >> 32);
  *as_b = static_cast<int>(best_key & 0xffffffffu);
  return true;
}

Broker::Broker(topo::Internet* topo, const core::ModelMeasurement* meter,
               sim::ThreadPool* pool, std::vector<int> overlay_eps,
               BrokerConfig cfg)
    : topo_(topo),
      meter_(meter),
      pool_(pool),
      overlay_eps_(std::move(overlay_eps)),
      cfg_(cfg),
      ranker_(topo, cfg.ranking, overlay_eps_),
      scheduler_(cfg.probe),
      sessions_(AdmissionConfig{cfg.nic_capacity_bps > 0
                                    ? cfg.nic_capacity_bps
                                    : topo->cloud().vm_nic_bps},
                overlay_eps_) {
  assert(cfg_.failover_delay <= cfg_.probe.interval &&
         "failover reaction must stay within one probe interval");
  if (cfg_.probe.budget_per_tick > 0) {
    probe_results_.reserve(static_cast<std::size_t>(cfg_.probe.budget_per_tick));
    probe_scratch_.reserve(static_cast<std::size_t>(cfg_.probe.budget_per_tick));
  }
  listener_id_ = topo_->add_mutation_listener(
      [this](const topo::Mutation& m) { on_mutation(m); });
  // Adopt an enabled routing plane onto this broker's queue: routing
  // rounds then interleave with probe ticks at fixed simulated times, so
  // every route the ranker reads is a pure function of (seed, config, t).
  route::RoutePlane* plane = cfg_.ranking.route_plane;
  if (plane != nullptr && plane->enabled() && !plane->attached()) {
    plane->attach(&queue_, now_);
  }
  queue_.schedule(now_ + cfg_.probe.tick, [this] { probe_tick(); });
}

Broker::~Broker() {
  if (listener_id_ >= 0) topo_->remove_mutation_listener(listener_id_);
}

int Broker::register_pair(int src, int dst) {
  const std::size_t before = ranker_.size();
  const int idx = ranker_.add_pair(src, dst);
  if (ranker_.size() > before) scheduler_.track_pair(idx);
  ranker_.pair(idx).route_epoch = route_epoch_;
  // Registration (setup phase) is the only place the probe buffers may
  // grow: any later sweep — budgeted tick, warm-up, failover — measures at
  // most ranker_.size() pairs, so steady state never reallocates.
  if (ranker_.size() > probe_results_.capacity()) {
    const std::size_t want =
        std::max(ranker_.size(), 2 * probe_results_.capacity());
    probe_results_.reserve(want);
    probe_scratch_.reserve(want);
  }
  return idx;
}

void Broker::warm_up() {
  std::vector<int> all(ranker_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  measure_pairs(all, now_);
  for (std::size_t i = 0; i < all.size(); ++i) {
    apply_probe(all[i], probe_results_[i], now_, /*force_repin=*/false);
  }
  stats_.probes += all.size();
}

void Broker::stamp_decision(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  stats_.decision_fingerprint = sim::hash_combine(
      sim::hash_combine(sim::hash_combine(stats_.decision_fingerprint, a), b), c);
}

std::uint64_t Broker::open_session(int pair_idx, double demand_bps) {
  const std::uint64_t id = sessions_.admit(ranker_, pair_idx, demand_bps, now_);
  const Session& s = sessions_.session(id);
  ++stats_.sessions_admitted;
  if (ranker_.pair(pair_idx)
          .candidates[static_cast<std::size_t>(s.candidate)]
          .kind != core::PathKind::kDirect) {
    ++stats_.admitted_via_overlay;
  }
  stamp_decision(id, static_cast<std::uint64_t>(pair_idx),
                 static_cast<std::uint64_t>(s.candidate));
  stamp_pair_admit(ranker_.pair(pair_idx), s.candidate);
  if (monitor_) monitor_->on_admit(id, pair_idx, s.candidate, demand_bps, now_);
  return id;
}

std::uint64_t Broker::open_session(int src, int dst, double demand_bps) {
  return open_session(register_pair(src, dst), demand_bps);
}

void Broker::close_session(std::uint64_t id) {
  if (!sessions_.live(id)) return;
  const int pair_idx = sessions_.session(id).pair;
  if (sessions_.release(ranker_, id, now_)) {
    ++stats_.sessions_released;
    if (monitor_) monitor_->on_release(id, pair_idx, now_);
  }
}

void Broker::run_until(sim::Time t) {
  while (queue_.next_time() <= t && queue_.run_next(&now_)) {
  }
  now_ = t;
}

void Broker::measure_pairs(const std::vector<int>& pair_idxs, sim::Time t) {
  assert(pair_idxs.size() <= probe_results_.capacity() &&
         "probe buffers reserved at registration must cover every sweep");
  // Grow-only resize: steady-state sweeps stay within capacity (no
  // reallocation) and reuse each PairSample's overlay storage in place.
  if (probe_results_.size() < pair_idxs.size()) {
    probe_results_.resize(pair_idxs.size());
  }
  // Per-pair seeding makes each measurement a pure function of
  // (seed, src, dst, t): the batched fan-out below — fixed-size chunks
  // through the SoA batch kernel, distributed across the pool — is a
  // performance knob only.
  const std::size_t batch = static_cast<std::size_t>(core::probe_batch_size());
  const std::size_t chunks = (pair_idxs.size() + batch - 1) / batch;
  const auto measure_chunk = [&](std::size_t c) {
    thread_local std::vector<std::pair<int, int>> pairs;
    pairs.clear();
    const std::size_t lo = c * batch;
    const std::size_t hi = std::min(pair_idxs.size(), lo + batch);
    for (std::size_t i = lo; i < hi; ++i) {
      const PairState& p = ranker_.pair(pair_idxs[i]);
      pairs.emplace_back(p.src, p.dst);
    }
    meter_->measure_batch(pairs.data(), pairs.size(), overlay_eps_, t,
                          probe_results_.data() + lo);
  };
  if (pool_ != nullptr && pair_idxs.size() >= 8 && chunks > 1) {
    pool_->parallel_for(chunks, measure_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) measure_chunk(c);
  }
}

void Broker::apply_probe(int pair_idx, const core::PairSample& s, sim::Time t,
                         bool force_repin) {
  PairState& p = ranker_.pair(pair_idx);
  if (p.route_epoch != route_epoch_) {
    ranker_.refresh_paths(pair_idx);
    p.route_epoch = route_epoch_;
  }

  const bool changed = ranker_.apply_sample(pair_idx, s, t);
  scheduler_.on_probed(pair_idx, t);
  // Goodput regret vs. the per-sample oracle: what the freshest possible
  // selector would have scored at this instant vs. what the previously
  // pinned path scored (the ranker evaluates the pin *before* the sample
  // re-ranks) — exactly the staleness + hysteresis cost the probing
  // control plane pays. Unreachable candidates are already clamped to 0.
  if (p.last_oracle_bps > 0.0) {
    stats_.regret_sum +=
        (p.last_oracle_bps - p.last_pinned_bps) / p.last_oracle_bps;
    ++stats_.regret_samples;
  }
  if (changed) ++stats_.ranking_flips;
  int moved = 0;
  if (changed || force_repin) {
    moved = sessions_.repin_pair(ranker_, pair_idx, t);
    stats_.migrations += static_cast<std::uint64_t>(moved);
    if (force_repin) stats_.failover_repins += static_cast<std::uint64_t>(moved);
    stamp_decision(static_cast<std::uint64_t>(pair_idx),
                   static_cast<std::uint64_t>(moved),
                   static_cast<std::uint64_t>(p.best));
    stamp_pair_repin(p, moved);
  }
  if (monitor_) {
    monitor_->on_probe_applied(pair_idx, t, changed || force_repin, moved);
  }
}

void Broker::probe_tick() {
  probe_scratch_.clear();
  if (cfg_.probe.incremental) {
    scheduler_.select_incremental(now_, &probe_scratch_);
  } else {
    scheduler_.select(ranker_, now_, &probe_scratch_);
  }
  // Sweep cost: the incremental scheduler examined only the due prefix
  // (scheduler_.last_scan()); the stateless scan examined every pair.
  last_sweep_touched_ =
      cfg_.probe.incremental ? scheduler_.last_scan() : ranker_.size();
  ++stats_.probe_ticks;
  stats_.sweep_pairs_touched += last_sweep_touched_;
  if (!probe_scratch_.empty()) {
    measure_pairs(probe_scratch_, now_);
    for (std::size_t i = 0; i < probe_scratch_.size(); ++i) {
      apply_probe(probe_scratch_[i], probe_results_[i], now_,
                  /*force_repin=*/false);
    }
    stats_.probes += probe_scratch_.size();
  }
  queue_.schedule(now_ + cfg_.probe.tick, [this] { probe_tick(); });
}

void Broker::on_mutation(const topo::Mutation& m) {
  if (m.kind != topo::Mutation::Kind::kAdjacencyChange) {
    return;  // transient congestion: rankings adapt through normal probing
  }
  ++route_epoch_;
  if (m.up) {
    // Restored adjacency: nothing is broken, but better routes may exist.
    // Age every ranking so the budgeted prober re-ranks the fleet over the
    // coming ticks (paths re-interned lazily via route_epoch).
    for (int i = 0; i < static_cast<int>(ranker_.size()); ++i) {
      ranker_.pair(i).last_probe = sim::Time{-1};
    }
    scheduler_.age_all();
    return;
  }
  // Failure: find every pair with a candidate crossing the dead adjacency,
  // block new pins to those candidates, and schedule the bounded-time
  // failover (re-probe + re-pin) on the control-plane queue.
  ranker_.mark_adjacency_down(m.as_a, m.as_b, &pending_failover_pairs_);
  std::sort(pending_failover_pairs_.begin(), pending_failover_pairs_.end());
  pending_failover_pairs_.erase(std::unique(pending_failover_pairs_.begin(),
                                            pending_failover_pairs_.end()),
                                pending_failover_pairs_.end());
  // Stamp the reaction clock only when this mutation actually put pairs on
  // the failover list: a failure nothing crosses must not start the clock
  // for a later, unrelated failure batched into the same window.
  if (!pending_failover_pairs_.empty() && pending_failover_since_.ns() < 0) {
    pending_failover_since_ = now_;
  }
  if (!failover_scheduled_ && !pending_failover_pairs_.empty()) {
    failover_scheduled_ = true;
    queue_.schedule(now_ + cfg_.failover_delay, [this] { handle_failover(); });
  }
}

void Broker::handle_failover() {
  failover_scheduled_ = false;
  std::vector<int> pairs;
  pairs.swap(pending_failover_pairs_);
  const sim::Time since = pending_failover_since_;
  pending_failover_since_ = sim::Time{-1};
  if (pairs.empty()) return;

  const std::uint64_t repins_before = stats_.failover_repins;
  measure_pairs(pairs, now_);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    apply_probe(pairs[i], probe_results_[i], now_, /*force_repin=*/true);
  }
  stats_.probes += pairs.size();
  ++stats_.failover_events;
  stats_.last_failover_reaction = now_ - since;
  if (monitor_) {
    monitor_->on_failover_complete(
        since, now_, pairs,
        static_cast<int>(stats_.failover_repins - repins_before));
  }
}

void Broker::settle_billing() {
  for (int i = 0; i < static_cast<int>(ranker_.size()); ++i) {
    sessions_.settle_pair(ranker_, i, now_);
  }
}

int Broker::sessions_traversing(int as_a, int as_b) const {
  return count_sessions_traversing(ranker_, sessions_, as_a, as_b);
}

bool Broker::busiest_transit_adjacency(int* as_a, int* as_b) const {
  std::unordered_map<std::uint64_t, int> load;
  accumulate_transit_load(*topo_, ranker_, sessions_, &load);
  return busiest_adjacency_in(load, as_a, as_b);
}

}  // namespace cronets::service
