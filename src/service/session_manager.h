#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "econ/billing_ledger.h"
#include "service/path_ranker.h"
#include "sim/time.h"

namespace cronets::service {

/// Admission-control knobs. The per-overlay cap is the Softlayer 100 Mbps
/// virtual NIC (CloudParams::vm_nic_bps): a split-overlay session reserves
/// its demand on the relay VM's NIC, and a full NIC pushes new sessions to
/// the next-ranked candidate (ultimately the direct path, which consumes
/// no rented resources and always admits).
struct AdmissionConfig {
  double nic_capacity_bps = 100e6;
};

/// Per-overlay-VM NIC reservation book. A plain value type so a session
/// table can keep its own (per-shard accounting) while admission checks go
/// through a shared global instance: the overlay VMs are physical — their
/// NICs don't multiply when the control plane is sharded. All mutation
/// happens on the single-threaded control plane.
class NicLedger {
 public:
  NicLedger() = default;
  explicit NicLedger(const std::vector<int>& overlay_eps);

  void add(int overlay_ep, double bps);
  void sub(int overlay_ep, double bps);
  /// Current reserved bandwidth on one overlay VM's NIC (0 for unknown).
  double used_bps(int overlay_ep) const;
  /// Highest reservation ever observed on any overlay NIC.
  double peak_used_bps() const { return peak_used_bps_; }
  /// Sum of current reservations across every overlay NIC.
  double total_used_bps() const;

 private:
  std::unordered_map<int, int> slot_;  // overlay ep -> used_ index
  std::vector<double> used_;
  double peak_used_bps_ = 0.0;
};

/// One long-lived client session pinned to a candidate path of its pair.
struct Session {
  int pair = -1;
  int candidate = 0;          ///< index into PairState::candidates
  double demand_bps = 0.0;
  sim::Time admitted{};
  std::uint32_t pos_in_pair = 0;  ///< index into PairState::sessions
  std::uint32_t gen = 0;          ///< odd while live (slot reuse guard)
  /// Overlay VMs this session's demand is reserved on (empty for direct,
  /// one for a one-hop relay, the via chain for multi-hop). Recorded at
  /// reservation time because a multi-hop candidate's chain can be
  /// re-routed while the session stays pinned — releases must return the
  /// capacity to the NICs that actually hold it, not the current chain.
  std::vector<int> reserved_eps;
  /// Economics plane: billing cells and $/GB of the candidate the session
  /// reserved onto, copied at reservation time for the same reason as
  /// reserved_eps — a plane re-route must not silently change what an
  /// already-pinned session pays. `billed_until` is the accrual watermark:
  /// bytes from it to "now" are metered at release/repin/settle time.
  double usd_per_gb = 0.0;
  double cost_rate_usd_per_hour = 0.0;
  sim::Time billed_until{};
  std::vector<econ::BillCell> bills;
};

/// Session table + per-overlay-node NIC accounting. Sessions live in a
/// slot arena (ids are (generation, slot) pairs) so the 10^5..10^6-session
/// workloads run without per-session allocation or hashing on the hot
/// admission path.
class SessionManager {
 public:
  /// `shared_nic`, when given, is the capacity authority admission checks
  /// and reservations go through *in addition to* this table's own ledger
  /// — the sharded broker hands every shard the same global ledger so NIC
  /// capacity stays physical while per-shard ledgers keep the accounting
  /// split (they sum to the shared ledger at all times). `id_tag` is OR'd
  /// into the top byte of every session id (shard routing; 0 = untagged).
  /// `shared_billing` / `shared_cost` play the same authority role for the
  /// economics plane: the sharded broker's global billing ledger and
  /// global spend-rate book, written in global event order so their
  /// contents are bitwise invariant to the shard count, while this table's
  /// own books keep the per-shard split (sums match within rounding).
  SessionManager(AdmissionConfig cfg, const std::vector<int>& overlay_eps,
                 NicLedger* shared_nic = nullptr, std::uint64_t id_tag = 0,
                 econ::BillingLedger* shared_billing = nullptr,
                 econ::CostLedger* shared_cost = nullptr);

  static constexpr std::uint64_t kInvalidSession = 0;
  /// Top-byte tag a session id was minted with (0 for untagged tables).
  static int id_tag_of(std::uint64_t id) { return static_cast<int>(id >> 56); }

  /// Admit a session onto the best admissible candidate of its pair
  /// (ranked order, skipping down candidates and full overlay NICs; the
  /// direct path is the unconditional fallback). Returns the session id.
  std::uint64_t admit(PathRanker& ranker, int pair_idx, double demand_bps,
                      sim::Time now);

  /// Release a live session, metering its bytes up to `now` first (false
  /// if the id is stale).
  bool release(PathRanker& ranker, std::uint64_t id, sim::Time now);

  /// Re-pin the pair's sessions onto its current best candidate, subject
  /// to NIC capacity and hysteresis having already been applied by the
  /// ranker (sessions only move when their candidate differs from best or
  /// is down). A moving session's bytes are metered against its *old*
  /// bills up to `now` before it re-reserves at the new candidate's rates.
  /// Returns the number of migrated sessions.
  int repin_pair(PathRanker& ranker, int pair_idx, sim::Time now);

  /// Meter every live session of the pair up to `now` without releasing
  /// anything (end-of-run settlement). Callers that need a shard-count-
  /// invariant global ledger must settle pairs in global-pair-id order.
  void settle_pair(PathRanker& ranker, int pair_idx, sim::Time now);

  bool live(std::uint64_t id) const;
  const Session& session(std::uint64_t id) const;
  std::size_t active() const { return active_; }

  /// Current reserved bandwidth on one overlay VM's NIC (0 for unknown).
  /// This is the table's *own* accounting — per-shard usage when a shared
  /// ledger is attached, total usage otherwise.
  double overlay_used_bps(int overlay_ep) const {
    return ledger_.used_bps(overlay_ep);
  }
  /// Highest reservation ever observed on any overlay NIC (capacity
  /// invariant: never exceeds the cap).
  double peak_overlay_used_bps() const { return ledger_.peak_used_bps(); }
  const NicLedger& ledger() const { return ledger_; }
  const AdmissionConfig& config() const { return cfg_; }

  /// Number of admissions/migrations that wanted an overlay candidate but
  /// were pushed to a lower-ranked path by a full NIC.
  std::uint64_t overlay_denied() const { return overlay_denied_; }

  /// This table's own metered billing book (per-shard slice when a shared
  /// ledger is attached) and reserved-spend-rate book.
  const econ::BillingLedger& billing() const { return billing_; }
  const econ::CostLedger& cost_ledger() const { return cost_; }
  /// Admissions/migrations pushed off a paid candidate because reserving
  /// its spend rate would breach CRONETS_COST_BUDGET_USD (the
  /// max_goodput_under_budget policy; 0 everywhere else).
  std::uint64_t budget_denied() const { return budget_denied_; }
  /// SLO attainment counters: of all admissions, how many landed on a
  /// measured candidate whose smoothed score met EconConfig::slo_bps.
  /// Plain integers, so per-shard counts sum exactly to the global count.
  std::uint64_t slo_met() const { return slo_met_; }
  std::uint64_t slo_total() const { return slo_total_; }

  /// Append the ids of the pair's live sessions (admission order with
  /// swap-removals — the same deterministic order repin_pair walks).
  void pair_session_ids(const PairState& p,
                        std::vector<std::uint64_t>* out) const;

  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].gen & 1u) fn(id_of(slot), slots_[slot]);
    }
  }

 private:
  /// Id layout: [tag:8][gen:24][slot+1:32]. The tag routes a session back
  /// to its owning shard; the generation (masked to 24 bits — a slot must
  /// be reused ~8M times before a stale handle aliases) guards slot reuse.
  static constexpr std::uint32_t kGenMask = 0x00ffffffu;
  std::uint64_t id_of(std::uint32_t slot) const {
    return id_tag_ |
           (static_cast<std::uint64_t>(slots_[slot].gen & kGenMask) << 32) |
           (slot + 1);
  }
  static std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32) & kGenMask;
  }

  /// First admissible candidate in ranked order for `demand`.
  int pick_candidate(PathRanker& ranker, int pair_idx, double demand_bps);
  /// Reserve `demand` on the candidate's relay VMs, recording them into
  /// `s.reserved_eps`; unreserve returns exactly what was recorded. Also
  /// snapshots the candidate's bills and reserves the session's spend rate
  /// in the cost books (accrual starts at `now`).
  void reserve(const Candidate& c, double demand_bps, sim::Time now,
               Session* s);
  void unreserve(Session* s);
  /// Meter the session's bytes from its accrual watermark up to `now`
  /// against its snapshotted bills, advancing the watermark.
  void accrue(Session* s, sim::Time now);
  void detach_from_pair(PairState& p, Session& s);

  AdmissionConfig cfg_;
  NicLedger ledger_;            // this table's own (per-shard) accounting
  NicLedger* shared_ = nullptr; // capacity authority when sharded
  std::uint64_t id_tag_ = 0;
  econ::BillingLedger billing_;            // per-shard metered billing
  econ::BillingLedger* shared_billing_ = nullptr;  // global book (sharded)
  econ::CostLedger cost_;                  // per-shard reserved spend rate
  econ::CostLedger* shared_cost_ = nullptr;        // budget authority
  std::vector<Session> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t active_ = 0;
  std::uint64_t overlay_denied_ = 0;
  std::uint64_t budget_denied_ = 0;
  std::uint64_t slo_met_ = 0;
  std::uint64_t slo_total_ = 0;
};

}  // namespace cronets::service
