#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/measure_model.h"
#include "service/path_ranker.h"
#include "service/probe_scheduler.h"
#include "service/session_manager.h"
#include "sim/event_queue.h"
#include "sim/thread_pool.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::service {

/// All broker knobs in one place (EXPERIMENTS.md documents each).
struct BrokerConfig {
  ProbeConfig probe;
  RankerConfig ranking;
  /// Per-overlay-VM admission cap; 0 means "use the topology's
  /// CloudParams::vm_nic_bps" (the Softlayer 100 Mbps NIC).
  double nic_capacity_bps = 0.0;
  /// Detection + reroute delay after a route-changing mutation: impacted
  /// pairs are re-probed and their sessions re-pinned this long after the
  /// event fires. Keep it at or below probe.interval — that is the
  /// reaction bound the service advertises.
  sim::Time failover_delay = sim::Time::seconds(1);
};

/// Aggregate counters of one broker run. Everything here is a pure
/// function of (world seed, workload seed, config) — never of thread
/// count or wall-clock — so the whole struct doubles as a determinism
/// fingerprint for the control plane.
struct BrokerStats {
  std::uint64_t sessions_admitted = 0;
  std::uint64_t sessions_released = 0;
  std::uint64_t admitted_via_overlay = 0;
  std::uint64_t migrations = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_ticks = 0;     ///< scheduler ticks executed
  /// Pairs the probe sweeps examined, summed over ticks: the incremental
  /// scheduler walks only each tick's due prefix (zero on a clean
  /// steady-state tick), the stateless scan always walks every pair —
  /// dividing by probe_ticks gives the dirty-set size the bench reports.
  std::uint64_t sweep_pairs_touched = 0;
  std::uint64_t ranking_flips = 0;   ///< best-path changes (post-hysteresis)
  std::uint64_t failover_events = 0;
  std::uint64_t failover_repins = 0;
  /// Reaction time of the most recent failover (mutation -> repin done).
  sim::Time last_failover_reaction{0};
  /// Order-sensitive hash over every admission and migration decision;
  /// bitwise identical across thread counts for the same seeds.
  std::uint64_t decision_fingerprint = 0;
  /// Goodput regret vs. the per-sample oracle, accumulated at probe times:
  /// sum over probes of (oracle - pinned)/oracle, and the probe count.
  double regret_sum = 0.0;
  std::uint64_t regret_samples = 0;

  double mean_regret() const {
    return regret_samples ? regret_sum / static_cast<double>(regret_samples) : 0.0;
  }
};

/// Observer of broker control-plane decisions, invoked synchronously from
/// the single-threaded event queue — hooks see a consistent broker state
/// and may query it (ranker, sessions), but must not mutate it. All
/// overrides default to no-ops; the broker itself works unobserved. The
/// chaos::ResilienceMonitor is the main implementation.
class BrokerMonitor {
 public:
  virtual ~BrokerMonitor() = default;
  /// A session was admitted onto candidate index `candidate` of the pair.
  virtual void on_admit(std::uint64_t id, int pair_idx, int candidate,
                        double demand_bps, sim::Time t) {
    (void)id, (void)pair_idx, (void)candidate, (void)demand_bps, (void)t;
  }
  /// A live session was released.
  virtual void on_release(std::uint64_t id, int pair_idx, sim::Time t) {
    (void)id, (void)pair_idx, (void)t;
  }
  /// A probe sample was folded into the pair's ranking. `repinned` is true
  /// when the pair's sessions were re-evaluated (ranking change or forced
  /// failover); `moved` counts the sessions that actually migrated.
  virtual void on_probe_applied(int pair_idx, sim::Time t, bool repinned,
                                int moved) {
    (void)pair_idx, (void)t, (void)repinned, (void)moved;
  }
  /// A scheduled failover completed: every impacted pair was re-probed and
  /// force-repinned. `began` is when the first batched mutation fired.
  virtual void on_failover_complete(sim::Time began, sim::Time t,
                                    const std::vector<int>& pairs, int moved) {
    (void)began, (void)t, (void)pairs, (void)moved;
  }
};

/// The minimal control-plane surface a session workload drives: pair
/// registration, admission/release, and the event clock. Implemented by
/// the single Broker and by the sharded multi-broker control plane, so
/// workload generators (wkld::SessionChurn) and benches run unchanged
/// against either.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  /// Register (or find) a (client, server) pair; returns its pair index
  /// (global across shards for the sharded implementation).
  virtual int register_pair(int src, int dst) = 0;
  /// Admit a session for a registered pair at the current simulated time.
  virtual std::uint64_t open_session(int pair_idx, double demand_bps) = 0;
  virtual void close_session(std::uint64_t id) = 0;
  /// Run the control plane up to and including simulated time `t`.
  virtual void run_until(sim::Time t) = 0;
  virtual sim::Time now() const = 0;
  virtual sim::EventQueue& queue() = 0;
  /// When the pair's ranking was last refreshed (negative: never probed) —
  /// the staleness behind the next admission decision.
  virtual sim::Time pair_last_probe(int pair_idx) const = 0;
};

/// Count live sessions of one ranker+session table whose pinned candidate
/// crosses the AS adjacency (as_a, as_b). Shared by the single and the
/// sharded broker (the latter sums over shards).
int count_sessions_traversing(const PathRanker& ranker,
                              const SessionManager& sessions, int as_a,
                              int as_b);

/// Accumulate per-transit-adjacency live-session counts into `load`
/// (key = packed sorted AS pair). Used to pick failure-injection targets.
void accumulate_transit_load(const topo::Internet& topo,
                             const PathRanker& ranker,
                             const SessionManager& sessions,
                             std::unordered_map<std::uint64_t, int>* load);

/// The most-loaded transit-to-transit adjacency in `load` (deterministic
/// tie-break on the packed key). False when the map is empty/all-zero.
bool busiest_adjacency_in(const std::unordered_map<std::uint64_t, int>& load,
                          int* as_a, int* as_b);

/// The CRONets overlay broker: an online control plane in simulated time.
/// A ProbeScheduler refreshes per-pair rankings under a probe budget, a
/// PathRanker smooths them (EWMA + hysteresis), a SessionManager admits
/// long-lived sessions against per-overlay NIC capacity and migrates them
/// on ranking changes, and topology mutations (observed via
/// topo::Internet's mutation listeners) trigger bounded-time failover.
///
/// Determinism: probe sweeps fan out across the thread pool in fixed-size
/// batches (CRONETS_BATCH) measured through the SoA batch kernel
/// (core::ModelMeasurement::measure_batch — bitwise identical to the
/// scalar meter at every batch size), samples are per-pair seeded and
/// applied in pair-index order, and all session decisions run on the
/// single-threaded event queue — so every decision is bitwise identical at
/// any thread count and batch size.
class Broker : public ControlPlane {
 public:
  Broker(topo::Internet* topo, const core::ModelMeasurement* meter,
         sim::ThreadPool* pool, std::vector<int> overlay_eps,
         BrokerConfig cfg = {});
  ~Broker() override;

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Register a (client, server) pair ahead of traffic (idempotent).
  int register_pair(int src, int dst) override;

  /// Probe every registered pair once at the current time (parallel) so
  /// the first admissions see measured rankings instead of the direct
  /// fallback. Call after registering pairs, before run_until.
  void warm_up();

  /// Admit a session for a registered pair at the current simulated time.
  std::uint64_t open_session(int pair_idx, double demand_bps) override;
  /// Convenience: register-or-find the pair first (unprobed pairs pin to
  /// the direct path until their first probe).
  std::uint64_t open_session(int src, int dst, double demand_bps);
  void close_session(std::uint64_t id) override;

  /// Run the control plane (probe ticks, failovers, any caller-scheduled
  /// events) up to and including simulated time `t`.
  void run_until(sim::Time t) override;

  /// Attach (or detach with nullptr) a decision observer. Observation
  /// never feeds back into decisions, so the decision fingerprint is
  /// identical with and without a monitor.
  void set_monitor(BrokerMonitor* monitor) { monitor_ = monitor; }

  sim::Time now() const override { return now_; }
  sim::EventQueue& queue() override { return queue_; }
  sim::Time pair_last_probe(int pair_idx) const override {
    return ranker_.pair(pair_idx).last_probe;
  }
  const BrokerStats& stats() const { return stats_; }
  const PathRanker& ranker() const { return ranker_; }
  const SessionManager& sessions() const { return sessions_; }
  const ProbeScheduler& scheduler() const { return scheduler_; }
  const std::vector<int>& overlay_eps() const { return overlay_eps_; }

  /// Pairs examined by the most recent probe tick's sweep (0 when every
  /// ranking is fresh — the dirty-set property the service tests assert).
  std::uint64_t last_sweep_touched() const { return last_sweep_touched_; }

  /// Meter every still-live session's bytes up to the current simulated
  /// time into the billing books (end-of-run settlement, walked in pair
  /// order). Without this, sessions still open at the end of a run would
  /// never be billed for their final stretch.
  void settle_billing();

  /// Live sessions whose pinned candidate path currently crosses the AS
  /// adjacency (as_a, as_b) — 0 after a completed failover.
  int sessions_traversing(int as_a, int as_b) const;

  /// The transit-to-transit AS adjacency carrying the most sessions right
  /// now (failure-injection helper: both ASes are tier-1/2, so routing
  /// reconverges around the cut instead of partitioning). Returns false
  /// if no session crosses any transit adjacency.
  bool busiest_transit_adjacency(int* as_a, int* as_b) const;

 private:
  void probe_tick();
  void measure_pairs(const std::vector<int>& pair_idxs, sim::Time t);
  void apply_probe(int pair_idx, const core::PairSample& s, sim::Time t,
                   bool force_repin);
  void on_mutation(const topo::Mutation& m);
  void handle_failover();
  void stamp_decision(std::uint64_t a, std::uint64_t b, std::uint64_t c);

  topo::Internet* topo_;
  const core::ModelMeasurement* meter_;
  sim::ThreadPool* pool_;  ///< may be null: fully serial probing
  std::vector<int> overlay_eps_;
  BrokerConfig cfg_;
  sim::EventQueue queue_;
  sim::Time now_{0};
  PathRanker ranker_;
  ProbeScheduler scheduler_;
  SessionManager sessions_;
  BrokerStats stats_;
  BrokerMonitor* monitor_ = nullptr;
  int listener_id_ = -1;
  std::uint64_t route_epoch_ = 0;  ///< bumped per adjacency mutation
  std::uint64_t last_sweep_touched_ = 0;

  // Pending failover work (mutation seen, repin scheduled).
  std::vector<int> pending_failover_pairs_;
  sim::Time pending_failover_since_{-1};
  bool failover_scheduled_ = false;

  // Probe buffers: reserved at construction from the scheduler budget and
  // grown (geometrically) only by register_pair, so steady-state probe
  // ticks never reallocate — measure_pairs asserts every sweep fits the
  // reserved capacity. probe_results_ only ever grows in size; element
  // PairSamples keep their overlay storage across sweeps.
  std::vector<int> probe_scratch_;
  std::vector<core::PairSample> probe_results_;
};

}  // namespace cronets::service
