#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "service/path_ranker.h"
#include "sim/time.h"

namespace cronets::service {

/// Probe-budget knobs: how often a pair's ranking is refreshed and how
/// much measurement the broker may spend per scheduler tick.
struct ProbeConfig {
  /// Target staleness: a pair becomes due once its last probe is at least
  /// this old (also the bound on failover reaction time — see Broker).
  sim::Time interval = sim::Time::seconds(10);
  /// Scheduler cadence. Each tick selects due pairs and measures them.
  sim::Time tick = sim::Time::seconds(1);
  /// Max pair probes per tick (0 = unlimited). The budget is the paper's
  /// probe-overhead lever: tightening it trades ranking freshness (and
  /// goodput regret) for measurement traffic.
  int budget_per_tick = 256;
  /// Incremental due-tracking: the brokers notify the scheduler per probe
  /// (track_pair / on_probed / age_all) and each tick walks only the due
  /// prefix of an ordered staleness set — O(churn), not O(pairs). Selection
  /// is provably identical to the stateless full scans (same due predicate,
  /// same (staleness, index) order), so fingerprints cannot move; the flag
  /// exists to run both modes against each other in tests.
  bool incremental = true;
};

/// Decides which pairs to probe at each tick: pairs whose ranking is stale
/// (older than `interval`, or never measured) are selected most-stale
/// first until the budget is spent. Selection is a pure function of the
/// rankers' probe timestamps, so it is deterministic at any thread count.
class ProbeScheduler {
 public:
  explicit ProbeScheduler(ProbeConfig cfg) : cfg_(cfg) {}

  const ProbeConfig& config() const { return cfg_; }

  /// Append up to budget due pair indices to `out`, most-stale first
  /// (ties broken by pair index).
  void select(const PathRanker& ranker, sim::Time now, std::vector<int>* out);

  /// Same selection over a flat staleness table indexed by pair id (the
  /// sharded broker's global view: `last_probe[g]` for global pair g,
  /// negative = never probed). Given the same staleness values this picks
  /// the same pairs as the ranker overload, which is what keeps the global
  /// probe schedule invariant to how pairs are partitioned across shards.
  void select(const std::vector<sim::Time>& last_probe, sim::Time now,
              std::vector<int>* out);

  // --- incremental due-tracking (ProbeConfig::incremental) ---
  // An ordered set keyed (last_probe ns, pair idx) mirrors the staleness
  // table; each tick walks only its due prefix. The brokers keep it in
  // sync: track_pair at registration, on_probed per applied probe,
  // age_all when a mutation resets every pair to never-probed.

  /// Start tracking pair `idx` (must be the next dense index) as
  /// never-probed.
  void track_pair(int idx);
  /// Re-key pair `idx` after a probe was applied at time `t`.
  void on_probed(int idx, sim::Time t);
  /// Reset every tracked pair to never-probed (adjacency-restore sweeps).
  void age_all();
  /// Incremental equivalent of select(): walks the due prefix of the
  /// ordered set — identical output to the stateless scans given the same
  /// staleness values.
  void select_incremental(sim::Time now, std::vector<int>* out);
  /// Pairs examined by the last select_incremental (its due-prefix length):
  /// zero on a clean steady-state tick, ~churn otherwise.
  std::uint64_t last_scan() const { return last_scan_; }
  std::size_t tracked() const { return key_of_.size(); }

  /// Pairs currently overdue (due but beyond this tick's budget) — the
  /// scheduler's staleness backlog, reported by the bench.
  std::uint64_t backlog() const { return backlog_; }
  std::uint64_t selected() const { return selected_; }

 private:
  /// Sort due_ most-stale-first and move up to the budget into `out`.
  void take_budget(std::vector<int>* out);

  ProbeConfig cfg_;
  std::uint64_t backlog_ = 0;
  std::uint64_t selected_ = 0;
  std::uint64_t last_scan_ = 0;
  std::vector<std::pair<std::int64_t, int>> due_;  // (last_probe ns, idx)
  std::set<std::pair<std::int64_t, int>> due_set_;  // incremental mirror
  std::vector<std::int64_t> key_of_;  // pair idx -> key in due_set_
};

}  // namespace cronets::service
