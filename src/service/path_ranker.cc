#include "service/path_ranker.h"

#include <algorithm>
#include <cassert>

namespace cronets::service {

bool path_uses_adjacency(const topo::RouterPath& path, int as_a, int as_b) {
  for (std::size_t i = 1; i < path.as_seq.size(); ++i) {
    const int u = path.as_seq[i - 1], v = path.as_seq[i];
    if ((u == as_a && v == as_b) || (u == as_b && v == as_a)) return true;
  }
  return false;
}

PathRanker::PathRanker(topo::Internet* topo, RankerConfig cfg,
                       std::vector<int> overlay_eps)
    : topo_(topo), cfg_(cfg), overlay_eps_(std::move(overlay_eps)) {}

int PathRanker::add_pair(int src, int dst) {
  const auto [it, inserted] =
      index_.emplace(sim::pack_pair(src, dst), static_cast<int>(pairs_.size()));
  if (!inserted) return it->second;
  PairState p;
  p.src = src;
  p.dst = dst;
  build_candidates(&p);
  pairs_.push_back(std::move(p));
  return it->second;
}

int PathRanker::find_pair(int src, int dst) const {
  const auto it = index_.find(sim::pack_pair(src, dst));
  return it == index_.end() ? -1 : it->second;
}

void PathRanker::build_candidates(PairState* p) const {
  p->candidates.clear();
  Candidate direct;
  direct.kind = core::PathKind::kDirect;
  direct.path = topo_->cached_path(p->src, p->dst);
  price_candidate(*p, &direct);
  p->candidates.push_back(std::move(direct));
  for (int o : overlay_eps_) {
    if (o == p->src || o == p->dst) continue;
    Candidate c;
    c.kind = core::PathKind::kSplitOverlay;
    c.overlay_ep = o;
    c.path = topo_->cached_path(p->src, o);
    c.leg2 = topo_->cached_path(o, p->dst);
    price_candidate(*p, &c);
    p->candidates.push_back(std::move(c));
  }
  // Multi-hop candidates: every ordered (entry VM, exit VM) pair of plane
  // nodes. The plane decides what happens between them; the candidate only
  // pins where the pair enters and leaves the cloud. Scores compose from
  // the same one-hop probe's per-leg rates, so the feature adds no
  // measurement draws — rankings with the plane off are bitwise unchanged.
  const route::RoutePlane* plane = cfg_.route_plane;
  if (plane != nullptr && plane->enabled()) {
    for (int oa : overlay_eps_) {
      if (oa == p->src || oa == p->dst) continue;
      if (plane->graph().node_of_ep(oa) < 0) continue;
      for (int ob : overlay_eps_) {
        if (ob == oa || ob == p->src || ob == p->dst) continue;
        if (plane->graph().node_of_ep(ob) < 0) continue;
        Candidate c;
        c.kind = core::PathKind::kMultiHop;
        c.overlay_ep = oa;
        c.exit_ep = ob;
        refresh_multihop(*p, &c);
        p->candidates.push_back(std::move(c));
      }
    }
  }
  p->best = 0;
  p->order_dirty = true;
}

void PathRanker::refresh_multihop(const PairState& p, Candidate* c) const {
  const route::RoutePlane* plane = cfg_.route_plane;
  c->via.clear();
  c->mids.clear();
  c->path = topo_->cached_path(p.src, c->overlay_ep);
  c->leg2 = topo_->cached_path(c->exit_ep, p.dst);
  if (plane == nullptr) return;
  if (plane->route(c->overlay_ep, c->exit_ep, &c->via)) {
    plane->composer().mid_segments(c->via, &c->mids);
  }
  c->route_ver = plane->pair_route_version(c->exit_ep);
  // The chain moved, so what it costs moved with it.
  price_candidate(p, c);
}

void PathRanker::price_candidate(const PairState& p, Candidate* c) const {
  const econ::PricingBook* book = cfg_.econ.pricing;
  if (book == nullptr) return;
  c->bills.clear();
  c->usd_per_gb = 0.0;
  const topo::Region dst_region = topo_->endpoint(p.dst).region;
  if (c->kind == core::PathKind::kDirect) {
    // Zero-rate cell: delivered traffic is metered even when nothing is
    // billed, so $/Gbps-hour covers the whole fleet, not just relays.
    c->bills.push_back({-1, dst_region, core::PathKind::kDirect, 0.0});
    return;
  }
  if (c->kind == core::PathKind::kSplitOverlay) {
    const topo::Region vm = topo_->endpoint(c->overlay_ep).region;
    const double rate = econ::egress_usd_per_gb(*book, vm, dst_region,
                                                /*backbone=*/false);
    c->bills.push_back({c->overlay_ep, dst_region, c->kind, rate});
    c->usd_per_gb = rate;
    return;
  }
  if (c->kind == core::PathKind::kMultiHop) {
    if (c->via.empty()) return;  // no usable route: nothing to price
    // The chain pays egress at every hop: backbone rate between
    // consecutive VMs, transit rate leaving the exit VM toward dst.
    for (std::size_t i = 0; i + 1 < c->via.size(); ++i) {
      const topo::Region from = topo_->endpoint(c->via[i]).region;
      const topo::Region to = topo_->endpoint(c->via[i + 1]).region;
      const double rate =
          econ::egress_usd_per_gb(*book, from, to, /*backbone=*/true);
      c->bills.push_back({c->via[i], to, c->kind, rate});
      c->usd_per_gb += rate;
    }
    const topo::Region exit = topo_->endpoint(c->via.back()).region;
    const double rate = econ::egress_usd_per_gb(*book, exit, dst_region,
                                                /*backbone=*/false);
    c->bills.push_back({c->via.back(), dst_region, c->kind, rate});
    c->usd_per_gb += rate;
  }
}

double PathRanker::candidate_objective(const Candidate& c) const {
  const econ::EconConfig& e = cfg_.econ;
  if (e.pricing == nullptr) return c.score_bps;
  switch (e.policy) {
    case econ::CostPolicy::kPerformance:
    case econ::CostPolicy::kMaxGoodputUnderBudget:
      // Goodput-ranked (the budget policy constrains admission, not the
      // ranking): exactly the pre-econ objective.
      return c.score_bps;
    case econ::CostPolicy::kMinCostMeetingSlo: {
      if (e.slo_bps <= 0.0) return c.score_bps;
      if (c.score_bps >= e.slo_bps) {
        // SLO met: rank by cheapness inside (1, 2] — any SLO-meeting
        // candidate beats every SLO-missing one.
        const double ref = econ::reference_usd_per_gb(*e.pricing);
        const double cost_norm = ref > 0.0 ? c.usd_per_gb / ref : 0.0;
        return 1.0 + 1.0 / (1.0 + cost_norm);
      }
      // SLO missed: a monotone transform of score into [0, 1), so the
      // fallback ranking is the performance ranking.
      return c.score_bps / e.slo_bps;
    }
    case econ::CostPolicy::kPareto: {
      const double ref = econ::reference_usd_per_gb(*e.pricing);
      const double cost_norm = ref > 0.0 ? c.usd_per_gb / ref : 0.0;
      const double goodput =
          e.pareto_ref_bps > 0.0
              ? std::min(1.0, c.score_bps / e.pareto_ref_bps)
              : 0.0;
      return e.pareto_alpha * goodput +
             (1.0 - e.pareto_alpha) / (1.0 + cost_norm);
    }
  }
  return c.score_bps;
}

bool PathRanker::apply_sample(int idx, const core::PairSample& s, sim::Time t) {
  PairState& p = pairs_[static_cast<std::size_t>(idx)];
  assert(s.src == p.src && s.dst == p.dst);

  // Raw per-candidate values of this probe ([0] = direct, then overlays in
  // candidate order; overlays matched by endpoint id, so a skipped overlay
  // — src/dst collision — simply keeps its old score).
  const int prev_best = p.best;
  double pinned_raw = -1.0;
  double oracle_raw = 0.0;
  double direct_raw = 0.0;
  for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
    Candidate& c = p.candidates[ci];
    double raw = -1.0;
    if (c.kind == core::PathKind::kDirect) {
      raw = s.direct_bps;
    } else if (c.kind == core::PathKind::kMultiHop) {
      const route::RoutePlane* plane = cfg_.route_plane;
      if (plane == nullptr) continue;
      // The table column or liveness behind this candidate's route moved
      // since it was read: re-read before scoring so the score matches the
      // route sessions would actually ride. Per-destination versions keep
      // unrelated table churn from re-composing every candidate.
      if (c.route_ver != plane->pair_route_version(c.exit_ep)) {
        refresh_multihop(p, &c);
      }
      // Compose from the one-hop probe's per-leg rates: leg 1 of the entry
      // VM's split sample, leg 2 of the exit VM's, and the plane's EWMA
      // bottleneck across the backbone hops. One 0.97 split-proxy haircut
      // per VM in the chain (the one-hop relay pays exactly one).
      double leg1 = -1.0, leg2 = -1.0;
      for (const auto& o : s.overlays) {
        if (o.overlay_ep == c.overlay_ep) leg1 = o.leg1_bps;
        if (o.overlay_ep == c.exit_ep) leg2 = o.leg2_bps;
      }
      if (leg1 < 0.0 || leg2 < 0.0) continue;  // an end VM skipped this probe
      if (c.via.empty()) {
        raw = 0.0;  // no usable plane route right now
      } else {
        raw = std::min(leg1, leg2);
        raw = std::min(raw, plane->route_bottleneck_bps(c.via));
        for (std::size_t v = 0; v < c.via.size(); ++v) raw *= 0.97;
        for (int ep : c.via) {
          const int node = plane->graph().node_of_ep(ep);
          if (node < 0 || !plane->graph().node_up(node)) raw = 0.0;
        }
        for (const auto& mid : c.mids) {
          if (mid && !mid->valid) raw = 0.0;
        }
      }
    } else {
      for (const auto& o : s.overlays) {
        if (o.overlay_ep == c.overlay_ep) {
          raw = o.split_bps;
          break;
        }
      }
    }
    if (raw < 0.0) continue;  // not measured this probe
    // Unreachable candidate (no policy route, or a leg crosses a failed
    // adjacency): the flow model samples such paths as if they were empty
    // and returns a meaningless huge number, so clamp to zero here.
    if ((c.path && !c.path->valid) || (c.leg2 && !c.leg2->valid)) raw = 0.0;
    if (c.kind == core::PathKind::kDirect) direct_raw = raw;
    c.last_bps = raw;
    c.score_bps = c.measured
                      ? cfg_.ewma_alpha * raw + (1.0 - cfg_.ewma_alpha) * c.score_bps
                      : raw;
    c.measured = true;
    c.down = false;  // freshly measured on the current route
    oracle_raw = std::max(oracle_raw, raw);
    if (static_cast<int>(ci) == prev_best) pinned_raw = raw;
  }
  p.last_probe = t;
  ++p.probes;
  p.last_oracle_bps = oracle_raw;
  p.last_pinned_bps = pinned_raw >= 0.0 ? pinned_raw : 0.0;
  if (p.last_oracle_bps > 0.0) {
    p.regret_sum += (p.last_oracle_bps - p.last_pinned_bps) / p.last_oracle_bps;
    ++p.regret_samples;
  }

  if (cfg_.record_history) {
    p.history.direct.push_back(direct_raw);
    std::vector<double> row;
    row.reserve(p.candidates.size() - 1);
    for (std::size_t ci = 1; ci < p.candidates.size(); ++ci) {
      row.push_back(p.candidates[ci].last_bps);
    }
    p.history.overlay.push_back(std::move(row));
    p.achieved_bps.push_back(p.last_pinned_bps);
  }

  // Re-rank: the challenger must clear the hysteresis margin over the
  // incumbent's objective (unless the incumbent is down/unreachable).
  // Under the performance policy the objective IS the smoothed score, so
  // these comparisons are bitwise identical to the pre-econ ranking.
  int challenger = p.best;
  double best_obj = -1.0;
  for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
    const Candidate& c = p.candidates[ci];
    if (c.down || !c.measured) continue;
    const double obj = candidate_objective(c);
    if (obj > best_obj) {
      best_obj = obj;
      challenger = static_cast<int>(ci);
    }
  }
  const Candidate& inc = p.candidates[static_cast<std::size_t>(p.best)];
  const bool incumbent_usable = !inc.down && inc.measured;
  if (challenger != p.best &&
      (!incumbent_usable ||
       best_obj > candidate_objective(inc) * (1.0 + cfg_.hysteresis))) {
    p.best = challenger;
  }
  p.order_dirty = true;  // scores moved; cached admission order is stale
  return p.best != prev_best;
}

void PathRanker::refresh_paths(int idx) {
  PairState& p = pairs_[static_cast<std::size_t>(idx)];
  for (Candidate& c : p.candidates) {
    if (c.kind == core::PathKind::kDirect) {
      c.path = topo_->cached_path(p.src, p.dst);
    } else if (c.kind == core::PathKind::kMultiHop) {
      refresh_multihop(p, &c);
    } else {
      c.path = topo_->cached_path(p.src, c.overlay_ep);
      c.leg2 = topo_->cached_path(c.overlay_ep, p.dst);
    }
    c.down = false;
  }
  p.order_dirty = true;
}

void PathRanker::mark_adjacency_down(int as_a, int as_b,
                                     std::vector<int>* affected) {
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    PairState& p = pairs_[i];
    bool hit = false;
    for (Candidate& c : p.candidates) {
      bool uses = (c.path && path_uses_adjacency(*c.path, as_a, as_b)) ||
                  (c.leg2 && path_uses_adjacency(*c.leg2, as_a, as_b));
      for (const auto& mid : c.mids) {
        if (!uses && mid && path_uses_adjacency(*mid, as_a, as_b)) uses = true;
      }
      // A DC outage downs every adjacency of the cloud AS; any multi-hop
      // chain through a VM of that AS must drop immediately — its backbone
      // mids stay "valid" (plain links, not adjacencies), so the AS match
      // on the via chain is what catches it.
      if (!uses && c.kind == core::PathKind::kMultiHop) {
        for (int ep : c.via) {
          const int ep_as = topo_->endpoint(ep).as_id;
          if (ep_as == as_a || ep_as == as_b) {
            uses = true;
            break;
          }
        }
      }
      if (uses) {
        c.down = true;
        hit = true;
      }
    }
    if (hit) {
      p.order_dirty = true;  // down flags demote candidates in the order
      if (affected) affected->push_back(static_cast<int>(i));
    }
  }
}

std::uint64_t PathRanker::partial_decision_fingerprint(
    const std::vector<int>* local_to_global) const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const std::uint64_t gid =
        local_to_global ? static_cast<std::uint64_t>((*local_to_global)[i])
                        : static_cast<std::uint64_t>(i);
    sum += pair_decision_term(gid, pairs_[i]);
  }
  return sum;
}

void PathRanker::ranked_order(int idx, std::vector<int>* out) const {
  const PairState& p = pairs_[static_cast<std::size_t>(idx)];
  out->clear();
  for (int ci = 0; ci < static_cast<int>(p.candidates.size()); ++ci) {
    if (ci != p.best) out->push_back(ci);
  }
  std::sort(out->begin(), out->end(), [&](int a, int b) {
    const Candidate& ca = p.candidates[static_cast<std::size_t>(a)];
    const Candidate& cb = p.candidates[static_cast<std::size_t>(b)];
    if (ca.down != cb.down) return !ca.down;  // down candidates last
    const double oa = candidate_objective(ca);
    const double ob = candidate_objective(cb);
    if (oa != ob) return oa > ob;
    return a < b;
  });
  out->insert(out->begin(), p.best);
}

const std::vector<int>& PathRanker::admission_order(int idx) {
  PairState& p = pairs_[static_cast<std::size_t>(idx)];
  if (p.order_dirty) {
    ranked_order(idx, &p.order_cache);
    p.order_dirty = false;
    ++order_rebuilds_;
  } else {
    ++order_hits_;
  }
  return p.order_cache;
}

}  // namespace cronets::service
