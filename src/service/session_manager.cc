#include "service/session_manager.h"

#include <algorithm>
#include <cassert>

namespace cronets::service {

NicLedger::NicLedger(const std::vector<int>& overlay_eps) {
  for (int ep : overlay_eps) {
    slot_.emplace(ep, static_cast<int>(used_.size()));
    used_.push_back(0.0);
  }
}

void NicLedger::add(int overlay_ep, double bps) {
  const auto it = slot_.find(overlay_ep);
  assert(it != slot_.end());
  double& used = used_[static_cast<std::size_t>(it->second)];
  used += bps;
  peak_used_bps_ = std::max(peak_used_bps_, used);
}

void NicLedger::sub(int overlay_ep, double bps) {
  const auto it = slot_.find(overlay_ep);
  assert(it != slot_.end());
  used_[static_cast<std::size_t>(it->second)] -= bps;
}

double NicLedger::used_bps(int overlay_ep) const {
  const auto it = slot_.find(overlay_ep);
  return it == slot_.end() ? 0.0 : used_[static_cast<std::size_t>(it->second)];
}

double NicLedger::total_used_bps() const {
  double sum = 0.0;
  for (double u : used_) sum += u;
  return sum;
}

SessionManager::SessionManager(AdmissionConfig cfg,
                               const std::vector<int>& overlay_eps,
                               NicLedger* shared_nic, std::uint64_t id_tag,
                               econ::BillingLedger* shared_billing,
                               econ::CostLedger* shared_cost)
    : cfg_(cfg),
      ledger_(overlay_eps),
      shared_(shared_nic),
      id_tag_(id_tag),
      shared_billing_(shared_billing),
      shared_cost_(shared_cost) {
  assert((id_tag & ~(0xffull << 56)) == 0 && "tag lives in the top byte");
}

/// Reserved spend rate of a session: USD per wall-clock hour at its demand
/// rate and its candidate's $/GB (demand_bps/8e9 GB/s * 3600 s/h * $/GB).
static double spend_rate_usd_per_hour(double demand_bps, double usd_per_gb) {
  return demand_bps / 8e9 * 3600.0 * usd_per_gb;
}

void SessionManager::reserve(const Candidate& c, double demand_bps,
                             sim::Time now, Session* s) {
  s->reserved_eps.clear();
  if (c.kind == core::PathKind::kSplitOverlay) {
    s->reserved_eps.push_back(c.overlay_ep);
  } else if (c.kind == core::PathKind::kMultiHop) {
    // A multi-hop session relays through every VM on its chain; each one's
    // NIC carries the session's traffic once in and once out, same as a
    // one-hop relay, so each reserves the full demand.
    s->reserved_eps = c.via;
  }
  for (int ep : s->reserved_eps) {
    ledger_.add(ep, demand_bps);
    if (shared_) shared_->add(ep, demand_bps);
  }
  // Billing snapshot + spend-rate reservation (no-op with pricing off:
  // candidates then carry no bills and a zero rate).
  s->bills = c.bills;
  s->usd_per_gb = c.usd_per_gb;
  s->billed_until = now;
  s->cost_rate_usd_per_hour = spend_rate_usd_per_hour(demand_bps, c.usd_per_gb);
  if (s->cost_rate_usd_per_hour > 0.0) {
    cost_.add(s->cost_rate_usd_per_hour);
    if (shared_cost_) shared_cost_->add(s->cost_rate_usd_per_hour);
  }
}

void SessionManager::unreserve(Session* s) {
  for (int ep : s->reserved_eps) {
    ledger_.sub(ep, s->demand_bps);
    if (shared_) shared_->sub(ep, s->demand_bps);
  }
  s->reserved_eps.clear();
  if (s->cost_rate_usd_per_hour > 0.0) {
    cost_.sub(s->cost_rate_usd_per_hour);
    if (shared_cost_) shared_cost_->sub(s->cost_rate_usd_per_hour);
  }
  s->cost_rate_usd_per_hour = 0.0;
  s->bills.clear();
  s->usd_per_gb = 0.0;
}

void SessionManager::accrue(Session* s, sim::Time now) {
  if (now > s->billed_until && !s->bills.empty()) {
    const double gb =
        s->demand_bps * (now - s->billed_until).to_seconds() / 8e9;
    billing_.meter_session(s->bills, gb);
    if (shared_billing_) shared_billing_->meter_session(s->bills, gb);
  }
  s->billed_until = now;
}

int SessionManager::pick_candidate(PathRanker& ranker, int pair_idx,
                                   double demand_bps) {
  // Cached dirty-set order: sort-free on clean pairs (the common
  // steady-state admission), recomputed only after a probe/mutation.
  const std::vector<int>& order = ranker.admission_order(pair_idx);
  const PairState& p = ranker.pair(pair_idx);
  const econ::EconConfig& econ = ranker.config().econ;
  // Budget gate (max_goodput_under_budget): a paid candidate is only
  // admissible while reserving its spend rate keeps the fleet's reserved
  // USD/hour within budget. The check goes through the authority book —
  // the shared global one when sharded, since budgets don't multiply.
  const bool budget_gated =
      econ.pricing != nullptr &&
      econ.policy == econ::CostPolicy::kMaxGoodputUnderBudget &&
      econ.budget_usd_per_hour > 0.0;
  const econ::CostLedger& cost_authority = shared_cost_ ? *shared_cost_ : cost_;
  int direct_fallback = 0;
  bool denied = false;
  for (int ci : order) {
    const Candidate& c = p.candidates[static_cast<std::size_t>(ci)];
    if (c.kind == core::PathKind::kDirect) {
      direct_fallback = ci;
      if (!c.down) {
        if (denied) ++overlay_denied_;
        return ci;
      }
      continue;  // direct is down: prefer a live overlay, fall back below
    }
    if (c.down) continue;
    if (budget_gated) {
      const double rate = spend_rate_usd_per_hour(demand_bps, c.usd_per_gb);
      if (rate > 0.0 && cost_authority.reserved_usd_per_hour() + rate >
                            econ.budget_usd_per_hour) {
        ++budget_denied_;
        denied = true;
        continue;
      }
    }
    // Capacity check against the authority ledger: the shared global one
    // when sharded (NICs are physical), this table's own otherwise. A
    // multi-hop candidate needs headroom on every VM of its chain.
    const NicLedger& authority = shared_ ? *shared_ : ledger_;
    if (c.kind == core::PathKind::kMultiHop) {
      if (c.via.empty()) continue;  // no usable plane route right now
      bool fits = true;
      for (int ep : c.via) {
        if (authority.used_bps(ep) + demand_bps > cfg_.nic_capacity_bps) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        denied = true;
        continue;
      }
      if (denied) ++overlay_denied_;
      return ci;
    }
    const double used = authority.used_bps(c.overlay_ep);
    if (used + demand_bps <= cfg_.nic_capacity_bps) {
      if (denied) ++overlay_denied_;
      return ci;
    }
    denied = true;
  }
  // Everything down or full: pin to the direct path anyway — it is the
  // default Internet route, which needs no broker resources.
  if (denied) ++overlay_denied_;
  return direct_fallback;
}

std::uint64_t SessionManager::admit(PathRanker& ranker, int pair_idx,
                                    double demand_bps, sim::Time now) {
  const int ci = pick_candidate(ranker, pair_idx, demand_bps);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Session& s = slots_[slot];
  s.pair = pair_idx;
  s.candidate = ci;
  s.demand_bps = demand_bps;
  s.admitted = now;
  s.gen |= 1u;  // odd: live
  PairState& p = ranker.pair(pair_idx);
  s.pos_in_pair = static_cast<std::uint32_t>(p.sessions.size());
  p.sessions.push_back(slot);
  const Candidate& chosen = p.candidates[static_cast<std::size_t>(ci)];
  reserve(chosen, demand_bps, now, &s);
  // SLO attainment at admission time: did the session land on a measured
  // candidate whose smoothed score meets the configured SLO?
  ++slo_total_;
  if (chosen.measured &&
      chosen.score_bps >= ranker.config().econ.slo_bps) {
    ++slo_met_;
  }
  ++active_;
  return id_of(slot);
}

bool SessionManager::live(std::uint64_t id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < slots_.size() && (slots_[slot].gen & kGenMask) == gen_of(id) &&
         (slots_[slot].gen & 1u);
}

const Session& SessionManager::session(std::uint64_t id) const {
  assert(live(id));
  return slots_[slot_of(id)];
}

void SessionManager::detach_from_pair(PairState& p, Session& s) {
  const std::uint32_t pos = s.pos_in_pair;
  assert(pos < p.sessions.size());
  const std::uint32_t last = p.sessions.back();
  p.sessions[pos] = last;
  slots_[last].pos_in_pair = pos;
  p.sessions.pop_back();
}

bool SessionManager::release(PathRanker& ranker, std::uint64_t id,
                             sim::Time now) {
  if (!live(id)) return false;
  Session& s = slots_[slot_of(id)];
  PairState& p = ranker.pair(s.pair);
  accrue(&s, now);
  unreserve(&s);
  detach_from_pair(p, s);
  ++s.gen;  // even: free
  free_.push_back(slot_of(id));
  --active_;
  return true;
}

void SessionManager::pair_session_ids(const PairState& p,
                                      std::vector<std::uint64_t>* out) const {
  out->reserve(out->size() + p.sessions.size());
  for (std::uint32_t slot : p.sessions) out->push_back(id_of(slot));
}

int SessionManager::repin_pair(PathRanker& ranker, int pair_idx,
                               sim::Time now) {
  PairState& p = ranker.pair(pair_idx);
  int migrated = 0;
  // Deterministic session order (admission order with swap-removals); the
  // target choice re-runs full admission per session so capacity freed by
  // one move is visible to the next.
  for (std::uint32_t slot : p.sessions) {
    Session& s = slots_[slot];
    const Candidate& cur = p.candidates[static_cast<std::size_t>(s.candidate)];
    if (s.candidate == p.best && !cur.down) continue;
    accrue(&s, now);  // bytes so far are billed at the *old* path's rates
    unreserve(&s);
    const int target = pick_candidate(ranker, pair_idx, s.demand_bps);
    reserve(p.candidates[static_cast<std::size_t>(target)], s.demand_bps, now,
            &s);
    if (target != s.candidate) {
      s.candidate = target;
      ++migrated;
    }
  }
  return migrated;
}

void SessionManager::settle_pair(PathRanker& ranker, int pair_idx,
                                 sim::Time now) {
  PairState& p = ranker.pair(pair_idx);
  for (std::uint32_t slot : p.sessions) accrue(&slots_[slot], now);
}

}  // namespace cronets::service
