#include "service/session_manager.h"

#include <algorithm>
#include <cassert>

namespace cronets::service {

NicLedger::NicLedger(const std::vector<int>& overlay_eps) {
  for (int ep : overlay_eps) {
    slot_.emplace(ep, static_cast<int>(used_.size()));
    used_.push_back(0.0);
  }
}

void NicLedger::add(int overlay_ep, double bps) {
  const auto it = slot_.find(overlay_ep);
  assert(it != slot_.end());
  double& used = used_[static_cast<std::size_t>(it->second)];
  used += bps;
  peak_used_bps_ = std::max(peak_used_bps_, used);
}

void NicLedger::sub(int overlay_ep, double bps) {
  const auto it = slot_.find(overlay_ep);
  assert(it != slot_.end());
  used_[static_cast<std::size_t>(it->second)] -= bps;
}

double NicLedger::used_bps(int overlay_ep) const {
  const auto it = slot_.find(overlay_ep);
  return it == slot_.end() ? 0.0 : used_[static_cast<std::size_t>(it->second)];
}

double NicLedger::total_used_bps() const {
  double sum = 0.0;
  for (double u : used_) sum += u;
  return sum;
}

SessionManager::SessionManager(AdmissionConfig cfg,
                               const std::vector<int>& overlay_eps,
                               NicLedger* shared_nic, std::uint64_t id_tag)
    : cfg_(cfg), ledger_(overlay_eps), shared_(shared_nic), id_tag_(id_tag) {
  assert((id_tag & ~(0xffull << 56)) == 0 && "tag lives in the top byte");
}

void SessionManager::reserve(const Candidate& c, double demand_bps,
                             Session* s) {
  s->reserved_eps.clear();
  if (c.kind == core::PathKind::kSplitOverlay) {
    s->reserved_eps.push_back(c.overlay_ep);
  } else if (c.kind == core::PathKind::kMultiHop) {
    // A multi-hop session relays through every VM on its chain; each one's
    // NIC carries the session's traffic once in and once out, same as a
    // one-hop relay, so each reserves the full demand.
    s->reserved_eps = c.via;
  }
  for (int ep : s->reserved_eps) {
    ledger_.add(ep, demand_bps);
    if (shared_) shared_->add(ep, demand_bps);
  }
}

void SessionManager::unreserve(Session* s) {
  for (int ep : s->reserved_eps) {
    ledger_.sub(ep, s->demand_bps);
    if (shared_) shared_->sub(ep, s->demand_bps);
  }
  s->reserved_eps.clear();
}

int SessionManager::pick_candidate(PathRanker& ranker, int pair_idx,
                                   double demand_bps) {
  // Cached dirty-set order: sort-free on clean pairs (the common
  // steady-state admission), recomputed only after a probe/mutation.
  const std::vector<int>& order = ranker.admission_order(pair_idx);
  const PairState& p = ranker.pair(pair_idx);
  int direct_fallback = 0;
  bool denied = false;
  for (int ci : order) {
    const Candidate& c = p.candidates[static_cast<std::size_t>(ci)];
    if (c.kind == core::PathKind::kDirect) {
      direct_fallback = ci;
      if (!c.down) {
        if (denied) ++overlay_denied_;
        return ci;
      }
      continue;  // direct is down: prefer a live overlay, fall back below
    }
    if (c.down) continue;
    // Capacity check against the authority ledger: the shared global one
    // when sharded (NICs are physical), this table's own otherwise. A
    // multi-hop candidate needs headroom on every VM of its chain.
    const NicLedger& authority = shared_ ? *shared_ : ledger_;
    if (c.kind == core::PathKind::kMultiHop) {
      if (c.via.empty()) continue;  // no usable plane route right now
      bool fits = true;
      for (int ep : c.via) {
        if (authority.used_bps(ep) + demand_bps > cfg_.nic_capacity_bps) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        denied = true;
        continue;
      }
      if (denied) ++overlay_denied_;
      return ci;
    }
    const double used = authority.used_bps(c.overlay_ep);
    if (used + demand_bps <= cfg_.nic_capacity_bps) {
      if (denied) ++overlay_denied_;
      return ci;
    }
    denied = true;
  }
  // Everything down or full: pin to the direct path anyway — it is the
  // default Internet route, which needs no broker resources.
  if (denied) ++overlay_denied_;
  return direct_fallback;
}

std::uint64_t SessionManager::admit(PathRanker& ranker, int pair_idx,
                                    double demand_bps, sim::Time now) {
  const int ci = pick_candidate(ranker, pair_idx, demand_bps);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Session& s = slots_[slot];
  s.pair = pair_idx;
  s.candidate = ci;
  s.demand_bps = demand_bps;
  s.admitted = now;
  s.gen |= 1u;  // odd: live
  PairState& p = ranker.pair(pair_idx);
  s.pos_in_pair = static_cast<std::uint32_t>(p.sessions.size());
  p.sessions.push_back(slot);
  reserve(p.candidates[static_cast<std::size_t>(ci)], demand_bps, &s);
  ++active_;
  return id_of(slot);
}

bool SessionManager::live(std::uint64_t id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < slots_.size() && (slots_[slot].gen & kGenMask) == gen_of(id) &&
         (slots_[slot].gen & 1u);
}

const Session& SessionManager::session(std::uint64_t id) const {
  assert(live(id));
  return slots_[slot_of(id)];
}

void SessionManager::detach_from_pair(PairState& p, Session& s) {
  const std::uint32_t pos = s.pos_in_pair;
  assert(pos < p.sessions.size());
  const std::uint32_t last = p.sessions.back();
  p.sessions[pos] = last;
  slots_[last].pos_in_pair = pos;
  p.sessions.pop_back();
}

bool SessionManager::release(PathRanker& ranker, std::uint64_t id) {
  if (!live(id)) return false;
  Session& s = slots_[slot_of(id)];
  PairState& p = ranker.pair(s.pair);
  unreserve(&s);
  detach_from_pair(p, s);
  ++s.gen;  // even: free
  free_.push_back(slot_of(id));
  --active_;
  return true;
}

void SessionManager::pair_session_ids(const PairState& p,
                                      std::vector<std::uint64_t>* out) const {
  out->reserve(out->size() + p.sessions.size());
  for (std::uint32_t slot : p.sessions) out->push_back(id_of(slot));
}

int SessionManager::repin_pair(PathRanker& ranker, int pair_idx) {
  PairState& p = ranker.pair(pair_idx);
  int migrated = 0;
  // Deterministic session order (admission order with swap-removals); the
  // target choice re-runs full admission per session so capacity freed by
  // one move is visible to the next.
  for (std::uint32_t slot : p.sessions) {
    Session& s = slots_[slot];
    const Candidate& cur = p.candidates[static_cast<std::size_t>(s.candidate)];
    if (s.candidate == p.best && !cur.down) continue;
    unreserve(&s);
    const int target = pick_candidate(ranker, pair_idx, s.demand_bps);
    reserve(p.candidates[static_cast<std::size_t>(target)], s.demand_bps, &s);
    if (target != s.candidate) {
      s.candidate = target;
      ++migrated;
    }
  }
  return migrated;
}

}  // namespace cronets::service
