#include "service/probe_scheduler.h"

#include <algorithm>
#include <cassert>

namespace cronets::service {

void ProbeScheduler::select(const PathRanker& ranker, sim::Time now,
                            std::vector<int>* out) {
  due_.clear();
  for (int i = 0; i < static_cast<int>(ranker.size()); ++i) {
    const PairState& p = ranker.pair(i);
    const bool never = p.last_probe.ns() < 0;
    if (never || now - p.last_probe >= cfg_.interval) {
      due_.emplace_back(never ? std::int64_t{-1} : p.last_probe.ns(), i);
    }
  }
  take_budget(out);
}

void ProbeScheduler::select(const std::vector<sim::Time>& last_probe,
                            sim::Time now, std::vector<int>* out) {
  due_.clear();
  for (int i = 0; i < static_cast<int>(last_probe.size()); ++i) {
    const bool never = last_probe[static_cast<std::size_t>(i)].ns() < 0;
    if (never || now - last_probe[static_cast<std::size_t>(i)] >= cfg_.interval) {
      due_.emplace_back(
          never ? std::int64_t{-1} : last_probe[static_cast<std::size_t>(i)].ns(),
          i);
    }
  }
  take_budget(out);
}

void ProbeScheduler::take_budget(std::vector<int>* out) {
  std::sort(due_.begin(), due_.end());
  std::size_t take = due_.size();
  if (cfg_.budget_per_tick > 0) {
    take = std::min(take, static_cast<std::size_t>(cfg_.budget_per_tick));
  }
  for (std::size_t k = 0; k < take; ++k) out->push_back(due_[k].second);
  selected_ += take;
  backlog_ = due_.size() - take;
  last_scan_ = due_.size();
}

void ProbeScheduler::track_pair(int idx) {
  assert(static_cast<std::size_t>(idx) == key_of_.size() &&
         "pair indices must be registered densely");
  key_of_.push_back(-1);
  due_set_.emplace(std::int64_t{-1}, idx);
}

void ProbeScheduler::on_probed(int idx, sim::Time t) {
  const auto i = static_cast<std::size_t>(idx);
  if (i >= key_of_.size()) return;  // not tracked (stateless-only caller)
  const std::int64_t key = t.ns() < 0 ? std::int64_t{-1} : t.ns();
  if (key == key_of_[i]) return;
  // Re-key without allocating: extract the node and move it.
  auto node = due_set_.extract(std::pair<std::int64_t, int>{key_of_[i], idx});
  assert(!node.empty());
  key_of_[i] = key;
  node.value() = {key, idx};
  due_set_.insert(std::move(node));
}

void ProbeScheduler::age_all() {
  due_set_.clear();
  for (std::size_t i = 0; i < key_of_.size(); ++i) {
    key_of_[i] = -1;
    // Ascending (key, idx) order: the end() hint makes the rebuild linear.
    due_set_.emplace_hint(due_set_.end(), std::int64_t{-1},
                          static_cast<int>(i));
  }
}

void ProbeScheduler::select_incremental(sim::Time now, std::vector<int>* out) {
  // Due predicate of the stateless scans: never probed (key -1), or
  // last_probe <= now - interval. Keys are -1 or a nonnegative timestamp,
  // so clamping the threshold at -1 folds both cases into one compare.
  const std::int64_t threshold =
      std::max<std::int64_t>(now.ns() - cfg_.interval.ns(), -1);
  const std::size_t limit = cfg_.budget_per_tick > 0
                                ? static_cast<std::size_t>(cfg_.budget_per_tick)
                                : due_set_.size();
  std::size_t due = 0, taken = 0;
  for (auto it = due_set_.begin();
       it != due_set_.end() && it->first <= threshold; ++it) {
    ++due;
    if (taken < limit) {
      out->push_back(it->second);
      ++taken;
    }
  }
  selected_ += taken;
  backlog_ = due - taken;
  last_scan_ = due;
}

}  // namespace cronets::service
