#include "service/probe_scheduler.h"

#include <algorithm>

namespace cronets::service {

void ProbeScheduler::select(const PathRanker& ranker, sim::Time now,
                            std::vector<int>* out) {
  due_.clear();
  for (int i = 0; i < static_cast<int>(ranker.size()); ++i) {
    const PairState& p = ranker.pair(i);
    const bool never = p.last_probe.ns() < 0;
    if (never || now - p.last_probe >= cfg_.interval) {
      due_.emplace_back(never ? std::int64_t{-1} : p.last_probe.ns(), i);
    }
  }
  take_budget(out);
}

void ProbeScheduler::select(const std::vector<sim::Time>& last_probe,
                            sim::Time now, std::vector<int>* out) {
  due_.clear();
  for (int i = 0; i < static_cast<int>(last_probe.size()); ++i) {
    const bool never = last_probe[static_cast<std::size_t>(i)].ns() < 0;
    if (never || now - last_probe[static_cast<std::size_t>(i)] >= cfg_.interval) {
      due_.emplace_back(
          never ? std::int64_t{-1} : last_probe[static_cast<std::size_t>(i)].ns(),
          i);
    }
  }
  take_budget(out);
}

void ProbeScheduler::take_budget(std::vector<int>* out) {
  std::sort(due_.begin(), due_.end());
  std::size_t take = due_.size();
  if (cfg_.budget_per_tick > 0) {
    take = std::min(take, static_cast<std::size_t>(cfg_.budget_per_tick));
  }
  for (std::size_t k = 0; k < take; ++k) out->push_back(due_[k].second);
  selected_ += take;
  backlog_ = due_.size() - take;
}

}  // namespace cronets::service
