#include "service/sharded_broker.h"

#include <algorithm>
#include <cassert>

#include "sim/hash_rng.h"

namespace cronets::service {

int ShardedBroker::shard_of(int src, int dst, int num_shards) {
  return static_cast<int>(sim::splitmix64(sim::pack_pair(src, dst)) %
                          static_cast<std::uint64_t>(num_shards));
}

ShardedBroker::ShardedBroker(topo::Internet* topo,
                             const core::ModelMeasurement* meter,
                             sim::ThreadPool* pool,
                             std::vector<int> overlay_eps, int num_shards,
                             BrokerConfig cfg)
    : topo_(topo),
      meter_(meter),
      pool_(pool),
      overlay_eps_(std::move(overlay_eps)),
      cfg_(cfg),
      global_nic_(overlay_eps_),
      scheduler_(cfg.probe) {
  assert(num_shards >= 1 && num_shards <= 255 &&
         "shard tag must fit the session-id top byte");
  assert(cfg_.failover_delay <= cfg_.probe.interval &&
         "failover reaction must stay within one probe interval");
  const AdmissionConfig admission{cfg_.nic_capacity_bps > 0
                                     ? cfg_.nic_capacity_bps
                                     : topo_->cloud().vm_nic_bps};
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        topo_, cfg_, overlay_eps_, admission, &global_nic_,
        static_cast<std::uint64_t>(s + 1) << 56, &global_billing_,
        &global_cost_));
  }
  cursor_.assign(shards_.size(), 0);
  listener_id_ = topo_->add_mutation_listener(
      [this](const topo::Mutation& m) { on_mutation(m); });
  // One routing plane serves every shard (each shard's ranker holds the
  // same pointer); it runs its rounds on the sharded broker's own queue,
  // so plane state is identical to the 1-shard broker's at every simulated
  // time — a precondition of the shard-invariance contract above.
  route::RoutePlane* plane = cfg_.ranking.route_plane;
  if (plane != nullptr && plane->enabled() && !plane->attached()) {
    plane->attach(&queue_, now_);
  }
  queue_.schedule(now_ + cfg_.probe.tick, [this] { probe_tick(); });
}

ShardedBroker::~ShardedBroker() {
  if (listener_id_ >= 0) topo_->remove_mutation_listener(listener_id_);
}

int ShardedBroker::register_pair(int src, int dst) {
  const auto it = pair_index_.find(sim::pack_pair(src, dst));
  if (it != pair_index_.end()) return it->second;
  const int gid = static_cast<int>(shard_of_pair_.size());
  const int s = shard_of(src, dst, num_shards());
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  const int local = sh.ranker.add_pair(src, dst);
  sh.ranker.pair(local).route_epoch = route_epoch_;
  assert(static_cast<std::size_t>(local) == sh.local_to_global.size() &&
         "shard-local pair ids are dense and append-only");
  sh.local_to_global.push_back(gid);
  pair_index_.emplace(sim::pack_pair(src, dst), gid);
  shard_of_pair_.push_back(s);
  local_of_pair_.push_back(local);
  global_last_probe_.push_back(sim::Time{-1});
  scheduler_.track_pair(gid);
  // Registration is the only place the shard's sweep scratch may grow (cf.
  // Broker's probe buffers): any sweep measures at most every pair the
  // shard owns, so steady-state probe ticks never reallocate.
  if (sh.ranker.size() > sh.probe_results.capacity()) {
    const std::size_t want =
        std::max(sh.ranker.size(), 2 * sh.probe_results.capacity());
    sh.probe_results.reserve(want);
    sh.req_pairs.reserve(want);
    sh.sel_local.reserve(want);
  }
  return gid;
}

std::uint64_t ShardedBroker::open_session(int pair_idx, double demand_bps) {
  const int s = shard_of_pair_[static_cast<std::size_t>(pair_idx)];
  const int local = local_of_pair_[static_cast<std::size_t>(pair_idx)];
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  const std::uint64_t id = sh.sessions.admit(sh.ranker, local, demand_bps, now_);
  const Session& sess = sh.sessions.session(id);
  ++sh.admitted;
  if (sh.ranker.pair(local)
          .candidates[static_cast<std::size_t>(sess.candidate)]
          .kind != core::PathKind::kDirect) {
    ++sh.via_overlay;
  }
  stamp_pair_admit(sh.ranker.pair(local), sess.candidate);
  return id;
}

std::uint64_t ShardedBroker::open_session(int src, int dst, double demand_bps) {
  return open_session(register_pair(src, dst), demand_bps);
}

void ShardedBroker::close_session(std::uint64_t id) {
  const int tag = SessionManager::id_tag_of(id);
  if (tag < 1 || tag > num_shards()) return;
  Shard& sh = *shards_[static_cast<std::size_t>(tag - 1)];
  if (!sh.sessions.live(id)) return;
  if (sh.sessions.release(sh.ranker, id, now_)) ++sh.released;
}

void ShardedBroker::warm_up() {
  sel_scratch_.resize(pair_count());
  for (std::size_t g = 0; g < sel_scratch_.size(); ++g) {
    sel_scratch_[g] = static_cast<int>(g);
  }
  measure_selection(sel_scratch_, now_);
  apply_selection(sel_scratch_, now_, /*force_repin=*/false);
}

void ShardedBroker::run_until(sim::Time t) {
  while (queue_.next_time() <= t && queue_.run_next(&now_)) {
  }
  now_ = t;
}

void ShardedBroker::probe_tick() {
  sel_scratch_.clear();
  if (cfg_.probe.incremental) {
    scheduler_.select_incremental(now_, &sel_scratch_);
  } else {
    scheduler_.select(global_last_probe_, now_, &sel_scratch_);
  }
  last_sweep_touched_ =
      cfg_.probe.incremental ? scheduler_.last_scan() : pair_count();
  ++probe_ticks_;
  sweep_pairs_touched_ += last_sweep_touched_;
  if (!sel_scratch_.empty()) {
    measure_selection(sel_scratch_, now_);
    apply_selection(sel_scratch_, now_, /*force_repin=*/false);
  }
  queue_.schedule(now_ + cfg_.probe.tick, [this] { probe_tick(); });
}

void ShardedBroker::measure_selection(const std::vector<int>& sel,
                                      sim::Time t) {
  for (auto& sh : shards_) {
    sh->sel_local.clear();
    sh->req_pairs.clear();
  }
  // Route each globally selected pair to its owning shard, preserving the
  // global selection order within every shard's slice.
  for (const int g : sel) {
    const int s = shard_of_pair_[static_cast<std::size_t>(g)];
    const int local = local_of_pair_[static_cast<std::size_t>(g)];
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    const PairState& p = sh.ranker.pair(local);
    sh.sel_local.push_back(local);
    sh.req_pairs.emplace_back(p.src, p.dst);
  }
  // One task per (shard, batch-of-pairs) slice: every task writes a
  // disjoint range of its shard's result array, and each measurement is a
  // pure function of (seed, src, dst, t) — the fan-out is a performance
  // knob only.
  const std::size_t batch = static_cast<std::size_t>(core::probe_batch_size());
  tasks_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    assert(sh.req_pairs.size() <= sh.probe_results.capacity() &&
           "probe scratch reserved at registration must cover every sweep");
    if (sh.probe_results.size() < sh.req_pairs.size()) {
      sh.probe_results.resize(sh.req_pairs.size());
    }
    for (std::size_t lo = 0; lo < sh.req_pairs.size(); lo += batch) {
      tasks_.emplace_back(static_cast<int>(s), lo);
    }
  }
  const auto measure_task = [&](std::size_t ti) {
    const auto [s, lo] = tasks_[ti];
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    const std::size_t n = std::min(batch, sh.req_pairs.size() - lo);
    meter_->measure_batch(sh.req_pairs.data() + lo, n, overlay_eps_, t,
                          sh.probe_results.data() + lo);
  };
  if (pool_ != nullptr && sel.size() >= 8 && tasks_.size() > 1) {
    pool_->parallel_for(tasks_.size(), measure_task);
  } else {
    for (std::size_t ti = 0; ti < tasks_.size(); ++ti) measure_task(ti);
  }
}

void ShardedBroker::apply_selection(const std::vector<int>& sel, sim::Time t,
                                    bool force_repin) {
  // Samples are applied in the *global* selection order, not shard by
  // shard: repins of different pairs interact through the shared NIC
  // ledger, so the application order must be a pure function of the
  // selection (which is itself partition-invariant).
  std::fill(cursor_.begin(), cursor_.end(), std::size_t{0});
  for (const int g : sel) {
    const int s = shard_of_pair_[static_cast<std::size_t>(g)];
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    const std::size_t k = cursor_[static_cast<std::size_t>(s)]++;
    apply_probe(sh, g, sh.sel_local[k], sh.probe_results[k], t, force_repin);
  }
}

void ShardedBroker::apply_probe(Shard& sh, int global_id, int local_idx,
                                const core::PairSample& s, sim::Time t,
                                bool force_repin) {
  PairState& p = sh.ranker.pair(local_idx);
  if (p.route_epoch != route_epoch_) {
    sh.ranker.refresh_paths(local_idx);
    p.route_epoch = route_epoch_;
  }
  const bool changed = sh.ranker.apply_sample(local_idx, s, t);
  if (changed) ++sh.flips;
  int moved = 0;
  if (changed || force_repin) {
    moved = sh.sessions.repin_pair(sh.ranker, local_idx, t);
    sh.migrations += static_cast<std::uint64_t>(moved);
    if (force_repin) sh.failover_repins += static_cast<std::uint64_t>(moved);
    stamp_pair_repin(p, moved);
  }
  ++sh.probes;
  global_last_probe_[static_cast<std::size_t>(global_id)] = p.last_probe;
  scheduler_.on_probed(global_id, p.last_probe);
}

void ShardedBroker::on_mutation(const topo::Mutation& m) {
  if (m.kind != topo::Mutation::Kind::kAdjacencyChange) {
    return;  // transient congestion: rankings adapt through normal probing
  }
  ++route_epoch_;
  if (m.up) {
    // Restored adjacency: age every ranking fleet-wide so the budgeted
    // prober re-ranks over the coming ticks (paths re-interned lazily).
    for (auto& sh : shards_) {
      for (int i = 0; i < static_cast<int>(sh->ranker.size()); ++i) {
        sh->ranker.pair(i).last_probe = sim::Time{-1};
      }
    }
    std::fill(global_last_probe_.begin(), global_last_probe_.end(),
              sim::Time{-1});
    scheduler_.age_all();
    return;
  }
  // Failure: fan the mark-down out to every shard (shard-index order) and
  // merge the impacted pairs into one globally sorted failover batch.
  for (auto& sh : shards_) {
    local_scratch_.clear();
    sh->ranker.mark_adjacency_down(m.as_a, m.as_b, &local_scratch_);
    for (const int l : local_scratch_) {
      pending_failover_pairs_.push_back(
          sh->local_to_global[static_cast<std::size_t>(l)]);
    }
  }
  std::sort(pending_failover_pairs_.begin(), pending_failover_pairs_.end());
  pending_failover_pairs_.erase(std::unique(pending_failover_pairs_.begin(),
                                            pending_failover_pairs_.end()),
                                pending_failover_pairs_.end());
  if (!pending_failover_pairs_.empty() && pending_failover_since_.ns() < 0) {
    pending_failover_since_ = now_;
  }
  if (!failover_scheduled_ && !pending_failover_pairs_.empty()) {
    failover_scheduled_ = true;
    queue_.schedule(now_ + cfg_.failover_delay, [this] { handle_failover(); });
  }
}

void ShardedBroker::handle_failover() {
  failover_scheduled_ = false;
  std::vector<int> pairs;
  pairs.swap(pending_failover_pairs_);
  const sim::Time since = pending_failover_since_;
  pending_failover_since_ = sim::Time{-1};
  if (pairs.empty()) return;

  measure_selection(pairs, now_);
  apply_selection(pairs, now_, /*force_repin=*/true);
  ++failover_events_;
  last_failover_reaction_ = now_ - since;
}

void ShardedBroker::settle_billing() {
  // Global-pair-id order, not shard order: each settled session appends to
  // the global billing ledger's doubles, and the accumulation order must
  // be a pure function of the registration order for the ledger to stay
  // bitwise invariant to the partitioning.
  for (std::size_t g = 0; g < shard_of_pair_.size(); ++g) {
    const int s = shard_of_pair_[g];
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    sh.sessions.settle_pair(sh.ranker, local_of_pair_[g], now_);
  }
}

std::size_t ShardedBroker::active_sessions() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh->sessions.active();
  return n;
}

const PairState& ShardedBroker::pair(int pair_idx) const {
  const int s = shard_of_pair_[static_cast<std::size_t>(pair_idx)];
  return shards_[static_cast<std::size_t>(s)]->ranker.pair(
      local_of_pair_[static_cast<std::size_t>(pair_idx)]);
}

const PathRanker& ShardedBroker::shard_ranker(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->ranker;
}

const SessionManager& ShardedBroker::shard_sessions(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->sessions;
}

ShardedBrokerStats ShardedBroker::stats() const {
  ShardedBrokerStats out;
  out.shards.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardStats ss;
    ss.pairs = sh->ranker.size();
    ss.active_sessions = sh->sessions.active();
    ss.sessions_admitted = sh->admitted;
    ss.sessions_released = sh->released;
    ss.admitted_via_overlay = sh->via_overlay;
    ss.migrations = sh->migrations;
    ss.probes = sh->probes;
    ss.ranking_flips = sh->flips;
    ss.failover_repins = sh->failover_repins;
    ss.overlay_denied = sh->sessions.overlay_denied();
    ss.nic_used_bps = sh->sessions.ledger().total_used_bps();
    ss.nic_peak_bps = sh->sessions.ledger().peak_used_bps();
    out.sessions_admitted += ss.sessions_admitted;
    out.sessions_released += ss.sessions_released;
    out.admitted_via_overlay += ss.admitted_via_overlay;
    out.migrations += ss.migrations;
    out.probes += ss.probes;
    out.ranking_flips += ss.ranking_flips;
    out.failover_repins += ss.failover_repins;
    // Merge the per-pair decision chains shard by shard, in shard-index
    // order; wrapping addition keyed by global pair id makes the merged
    // fingerprint independent of the partitioning.
    out.decision_fingerprint +=
        sh->ranker.partial_decision_fingerprint(&sh->local_to_global);
    out.budget_denied += sh->sessions.budget_denied();
    out.slo_met += sh->sessions.slo_met();
    out.slo_total += sh->sessions.slo_total();
    out.shards.push_back(ss);
  }
  out.failover_events = failover_events_;
  out.probe_ticks = probe_ticks_;
  out.sweep_pairs_touched = sweep_pairs_touched_;
  out.last_failover_reaction = last_failover_reaction_;
  // Fold per-pair regret in global-pair-id order: a fixed floating-point
  // summation order, so the aggregate is bitwise shard-count-invariant.
  for (std::size_t g = 0; g < shard_of_pair_.size(); ++g) {
    const PairState& p = pair(static_cast<int>(g));
    out.regret_sum += p.regret_sum;
    out.regret_samples += p.regret_samples;
  }
  return out;
}

int ShardedBroker::sessions_traversing(int as_a, int as_b) const {
  int count = 0;
  for (const auto& sh : shards_) {
    count += count_sessions_traversing(sh->ranker, sh->sessions, as_a, as_b);
  }
  return count;
}

bool ShardedBroker::busiest_transit_adjacency(int* as_a, int* as_b) const {
  std::unordered_map<std::uint64_t, int> load;
  for (const auto& sh : shards_) {
    accumulate_transit_load(*topo_, sh->ranker, sh->sessions, &load);
  }
  return busiest_adjacency_in(load, as_a, as_b);
}

}  // namespace cronets::service
