#include "core/placement.h"

#include <algorithm>
#include <cassert>

#include "sim/rng.h"

namespace cronets::core {

void PlacementOptimizer::measure(const std::vector<std::pair<int, int>>& pairs,
                                 const std::vector<int>& candidates, sim::Time at) {
  assert(candidates.size() <= 20 && "exhaustive/greedy search is exponential-ish");
  candidates_ = candidates;
  direct_.clear();
  split_.clear();
  for (const auto& [src, dst] : pairs) {
    const PairSample s = meter_->measure(src, dst, candidates, at);
    direct_.push_back(s.direct_bps);
    std::vector<double> row(candidates.size(), 0.0);
    for (const auto& o : s.overlays) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (candidates[c] == o.overlay_ep) row[c] = o.split_bps;
      }
    }
    split_.push_back(std::move(row));
  }
}

double PlacementOptimizer::value_of(const std::vector<int>& subset_idx,
                                    double* avg_improvement) const {
  double total = 0.0;
  double imp = 0.0;
  for (std::size_t p = 0; p < direct_.size(); ++p) {
    double best = direct_[p];
    for (int c : subset_idx) {
      best = std::max(best, split_[p][static_cast<std::size_t>(c)]);
    }
    total += best;
    imp += direct_[p] > 0 ? best / direct_[p] : 1.0;
  }
  if (avg_improvement) {
    *avg_improvement = direct_.empty() ? 0.0 : imp / static_cast<double>(direct_.size());
  }
  return total;
}

PlacementOptimizer::Result PlacementOptimizer::greedy(int k) const {
  assert(!split_.empty() && "call measure() first");
  std::vector<int> chosen_idx;
  for (int round = 0; round < k; ++round) {
    int best_c = -1;
    double best_v = -1.0;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      if (std::find(chosen_idx.begin(), chosen_idx.end(), static_cast<int>(c)) !=
          chosen_idx.end()) {
        continue;
      }
      auto trial = chosen_idx;
      trial.push_back(static_cast<int>(c));
      const double v = value_of(trial, nullptr);
      if (v > best_v) {
        best_v = v;
        best_c = static_cast<int>(c);
      }
    }
    if (best_c < 0) break;
    chosen_idx.push_back(best_c);
  }
  Result r;
  r.total_bps = value_of(chosen_idx, &r.avg_improvement);
  for (int c : chosen_idx) r.chosen.push_back(candidates_[static_cast<std::size_t>(c)]);
  return r;
}

PlacementOptimizer::Result PlacementOptimizer::exhaustive(int k) const {
  assert(!split_.empty() && "call measure() first");
  const std::size_t n = candidates_.size();
  assert(n <= 20);
  Result best;
  best.total_bps = -1.0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    std::vector<int> idx;
    for (std::size_t c = 0; c < n; ++c) {
      if (mask & (1u << c)) idx.push_back(static_cast<int>(c));
    }
    Result r;
    r.total_bps = value_of(idx, &r.avg_improvement);
    if (r.total_bps > best.total_bps) {
      for (int c : idx) r.chosen.push_back(candidates_[static_cast<std::size_t>(c)]);
      best = r;
    }
  }
  return best;
}

PlacementOptimizer::Result PlacementOptimizer::random_baseline(int k, int trials,
                                                               std::uint64_t seed) const {
  assert(!split_.empty() && "call measure() first");
  sim::Rng rng(seed);
  Result avg;
  std::vector<int> all(candidates_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  for (int t = 0; t < trials; ++t) {
    rng.shuffle(all);
    std::vector<int> idx(all.begin(), all.begin() + k);
    double imp = 0.0;
    avg.total_bps += value_of(idx, &imp) / trials;
    avg.avg_improvement += imp / trials;
  }
  return avg;
}

}  // namespace cronets::core
