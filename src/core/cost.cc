#include "core/cost.h"

#include <algorithm>
#include <cstdio>

namespace cronets::core {

CostBreakdown cronets_monthly_cost(const CloudPricing& p, int num_overlays,
                                   double monthly_traffic_gb, int port_mbps,
                                   bool bare_metal) {
  double per_node = bare_metal ? p.bare_metal_monthly_usd : p.vm_monthly_usd;
  if (port_mbps >= 10000) {
    per_node += p.port_10g_upcharge_usd;
  } else if (port_mbps >= 1000) {
    per_node += p.port_1g_upcharge_usd;
  }

  // Traffic: relayed traffic leaves each overlay node once (ingress free).
  double egress_cost;
  const double overage_gb = std::max(0.0, monthly_traffic_gb - p.included_gb);
  egress_cost = overage_gb * p.per_gb_overage_usd;
  // Past the break-even, the unmetered option is cheaper.
  if (port_mbps <= 100 && egress_cost > p.unlimited_100m_upcharge_usd) {
    egress_cost = p.unlimited_100m_upcharge_usd;
  }

  CostBreakdown out;
  out.monthly_usd = num_overlays * (per_node + egress_cost);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%d %s node(s) @ %d Mbps, %.0f GB/mo relayed", num_overlays,
                bare_metal ? "bare-metal" : "virtual", port_mbps,
                monthly_traffic_gb);
  out.description = buf;
  return out;
}

CostBreakdown leased_line_monthly_cost(const LeasedLinePricing& p, double mbps,
                                       bool intercontinental) {
  CostBreakdown out;
  const double transport = mbps * p.per_mbps_monthly_usd *
                           (intercontinental ? p.intercontinental_multiplier : 1.0);
  out.monthly_usd = transport + 2.0 * p.local_loop_monthly_usd;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.0f Mbps private line (%s)", mbps,
                intercontinental ? "intercontinental" : "domestic");
  out.description = buf;
  return out;
}

}  // namespace cronets::core
