#include "core/measure_model.h"

#include <algorithm>

#include "sim/hash_rng.h"

namespace cronets::core {

double PairSample::best_plain_bps() const {
  double best = 0.0;
  for (const auto& o : overlays) best = std::max(best, o.plain_bps);
  return best;
}

double PairSample::best_split_bps() const {
  double best = 0.0;
  for (const auto& o : overlays) best = std::max(best, o.split_bps);
  return best;
}

double PairSample::best_discrete_bps() const {
  double best = 0.0;
  for (const auto& o : overlays) best = std::max(best, o.discrete_bps);
  return best;
}

double PairSample::min_overlay_rtt_ms() const {
  double best = 1e18;
  for (const auto& o : overlays) best = std::min(best, o.rtt_ms);
  return best;
}

double PairSample::min_overlay_loss() const {
  double best = 1.0;
  for (const auto& o : overlays) best = std::min(best, o.loss);
  return best;
}

int PairSample::best_split_overlay_ep() const {
  int ep = -1;
  double best = -1.0;
  for (const auto& o : overlays) {
    if (o.split_bps > best) {
      best = o.split_bps;
      ep = o.overlay_ep;
    }
  }
  return ep;
}

PairSample ModelMeasurement::measure(int src_ep, int dst_ep,
                                     const std::vector<int>& overlay_eps,
                                     sim::Time t) const {
  PairSample out;
  out.src = src_ep;
  out.dst = dst_ep;

  // Private noise stream for this (pair, time): the draw sequence below is
  // fixed, so the sample is reproducible no matter where it runs.
  sim::Rng rng(sim::pair_seed(seed_ ^ flow_->seed(), src_ep, dst_ep, t.ns()));

  // Interned paths + precomputed aggregates: the direct path and both legs
  // of every overlay candidate are looked up, never rebuilt, so the only
  // per-call work left is evaluating the stochastic link field.
  const topo::PathRef direct = topo_->cached_path(src_ep, dst_ep);
  model::PathMetrics dm = flow_->sample(direct, t);
  dm.rwnd_bytes = static_cast<double>(topo_->endpoint(dst_ep).rcv_buf);
  out.direct_bps = flow_->tcp_throughput(dm, rng);
  out.direct_rtt_ms = dm.rtt_ms;
  out.direct_loss = dm.loss;
  out.direct_hops = dm.hop_count;

  out.overlays.reserve(overlay_eps.size());
  for (int o : overlay_eps) {
    if (o == src_ep || o == dst_ep) continue;
    const topo::PathRef leg1 = topo_->cached_path(src_ep, o);
    const topo::PathRef leg2 = topo_->cached_path(o, dst_ep);
    model::PathMetrics m1 = flow_->sample(leg1, t);
    model::PathMetrics m2 = flow_->sample(leg2, t);
    // Split-TCP legs terminate at their own receivers: the overlay VM for
    // leg 1, the final destination for leg 2.
    m1.rwnd_bytes = static_cast<double>(topo_->endpoint(o).rcv_buf);
    m2.rwnd_bytes = static_cast<double>(topo_->endpoint(dst_ep).rcv_buf);
    OverlaySample s;
    s.overlay_ep = o;
    s.plain_bps = flow_->overlay_plain(m1, m2, rng);
    s.split_bps = flow_->overlay_split(m1, m2, rng);
    s.discrete_bps = flow_->discrete(m1, m2, rng);
    const model::PathMetrics combined = model::FlowModel::concat(m1, m2);
    s.rtt_ms = combined.rtt_ms;
    s.loss = combined.loss;
    out.overlays.push_back(s);
  }
  return out;
}

}  // namespace cronets::core
