#include "core/measure_model.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "model/batch_sampler.h"
#include "sim/env.h"
#include "sim/hash_rng.h"

namespace cronets::core {

namespace {

// One pair's resolved probe layout, cached across measure_batch calls: the
// interned path handles (direct, then leg1/leg2 per eligible overlay) and
// the receiver-window override for each sampled path. Warm pairs skip the
// path-cache lookups, sampler interning, and endpoint resolution entirely —
// a steady-state probe sweep re-measures the same pairs every tick, so this
// turns the per-pair setup into a single hash probe.
struct PairPlan {
  std::vector<int> overlays;   ///< the overlay set the plan was built for
  std::vector<int> eligible;   ///< overlays minus the pair's own endpoints
  std::vector<int> handles;    ///< direct, then per eligible: leg1, leg2
  std::vector<double> rwnd;    ///< per handle: receiver window (bytes)
};

// Per-thread batched-measurement state: the SoA sampler plus every scratch
// array a batch needs, reused across calls so warm batches allocate
// nothing. Keyed by the flow model's process-unique instance tag — a
// different model (even one reallocated at the same address) rebuilds.
struct BatchScratch {
  std::uint64_t flow_tag = 0;
  std::unique_ptr<model::BatchSampler> sampler;
  std::unordered_map<std::uint64_t, PairPlan> plans;  ///< key: (src, dst)
  std::vector<const PairPlan*> batch_plans;           ///< per request
  std::vector<int> handles;
  std::vector<model::PathMetrics> metrics;  ///< per handle, rwnd filled in
  std::vector<model::PathMetrics> concat;   ///< per overlay candidate
  // PFTK evaluation table (direct, then per overlay: concat, leg1, leg2).
  std::vector<double> rtt_ms, loss, residual_bps, capacity_bps, rwnd_bytes;
  std::vector<double> pftk_bps;
  std::vector<ProbeRequest> reqs;  ///< backing for the pairs overload
};

BatchScratch& batch_scratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

}  // namespace

int probe_batch_size() {
  static const int cached =
      static_cast<int>(sim::env_int("CRONETS_BATCH", 64, 1, 1'000'000));
  return cached;
}

double PairSample::best_plain_bps() const {
  double best = 0.0;
  for (const auto& o : overlays) best = std::max(best, o.plain_bps);
  return best;
}

double PairSample::best_split_bps() const {
  double best = 0.0;
  for (const auto& o : overlays) best = std::max(best, o.split_bps);
  return best;
}

double PairSample::best_discrete_bps() const {
  double best = 0.0;
  for (const auto& o : overlays) best = std::max(best, o.discrete_bps);
  return best;
}

double PairSample::min_overlay_rtt_ms() const {
  double best = 1e18;
  for (const auto& o : overlays) best = std::min(best, o.rtt_ms);
  return best;
}

double PairSample::min_overlay_loss() const {
  double best = 1.0;
  for (const auto& o : overlays) best = std::min(best, o.loss);
  return best;
}

int PairSample::best_split_overlay_ep() const {
  int ep = -1;
  double best = -1.0;
  for (const auto& o : overlays) {
    if (o.split_bps > best) {
      best = o.split_bps;
      ep = o.overlay_ep;
    }
  }
  return ep;
}

PairSample ModelMeasurement::measure(int src_ep, int dst_ep,
                                     const std::vector<int>& overlay_eps,
                                     sim::Time t) const {
  PairSample out;
  out.src = src_ep;
  out.dst = dst_ep;

  // Private noise stream for this (pair, time): the draw sequence below is
  // fixed, so the sample is reproducible no matter where it runs.
  sim::Rng rng(sim::pair_seed(seed_ ^ flow_->seed(), src_ep, dst_ep, t.ns()));

  // Interned paths + precomputed aggregates: the direct path and both legs
  // of every overlay candidate are looked up, never rebuilt, so the only
  // per-call work left is evaluating the stochastic link field.
  const topo::PathRef direct = topo_->cached_path(src_ep, dst_ep);
  model::PathMetrics dm = flow_->sample(direct, t);
  dm.rwnd_bytes = static_cast<double>(topo_->endpoint(dst_ep).rcv_buf);
  out.direct_bps = flow_->tcp_throughput(dm, rng);
  out.direct_rtt_ms = dm.rtt_ms;
  out.direct_loss = dm.loss;
  out.direct_hops = dm.hop_count;

  out.overlays.reserve(overlay_eps.size());
  for (int o : overlay_eps) {
    if (o == src_ep || o == dst_ep) continue;
    const topo::PathRef leg1 = topo_->cached_path(src_ep, o);
    const topo::PathRef leg2 = topo_->cached_path(o, dst_ep);
    model::PathMetrics m1 = flow_->sample(leg1, t);
    model::PathMetrics m2 = flow_->sample(leg2, t);
    // Split-TCP legs terminate at their own receivers: the overlay VM for
    // leg 1, the final destination for leg 2.
    m1.rwnd_bytes = static_cast<double>(topo_->endpoint(o).rcv_buf);
    m2.rwnd_bytes = static_cast<double>(topo_->endpoint(dst_ep).rcv_buf);
    OverlaySample s;
    s.overlay_ep = o;
    s.plain_bps = flow_->overlay_plain(m1, m2, rng);
    s.split_bps = flow_->overlay_split(m1, m2, rng, &s.leg1_bps, &s.leg2_bps);
    s.discrete_bps = flow_->discrete(m1, m2, rng);
    const model::PathMetrics combined = model::FlowModel::concat(m1, m2);
    s.rtt_ms = combined.rtt_ms;
    s.loss = combined.loss;
    out.overlays.push_back(s);
  }
  return out;
}

void ModelMeasurement::measure_batch(const ProbeRequest* reqs, std::size_t n,
                                     sim::Time t, PairSample* out) const {
  if (n == 0) return;
  BatchScratch& S = batch_scratch();
  if (!S.sampler || S.flow_tag != flow_->instance_tag()) {
    S.sampler = std::make_unique<model::BatchSampler>(flow_);
    S.flow_tag = flow_->instance_tag();
    S.plans.clear();
  }
  if (S.sampler->begin_batch()) {
    S.plans.clear();  // topology mutated: every interned handle is invalid
  }

  // Pass 1: resolve each request to its cached PairPlan (path handles +
  // receiver windows), building the plan on first sight of the pair. A
  // steady-state sweep re-probes the same pairs tick after tick, so the
  // warm path is one hash probe per pair — no path-cache lookups, no
  // interning, no endpoint resolution.
  S.batch_plans.clear();
  S.handles.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const ProbeRequest& r = reqs[i];
    PairPlan& plan = S.plans[sim::pack_pair(r.src, r.dst)];
    // A different overlay set for the same pair (rare: distinct call sites)
    // rebuilds in place.
    if (plan.handles.empty() || plan.overlays != *r.overlays) {
      plan.overlays = *r.overlays;
      plan.eligible.clear();
      plan.handles.clear();
      plan.rwnd.clear();
      const double dst_rwnd = static_cast<double>(topo_->endpoint(r.dst).rcv_buf);
      plan.handles.push_back(S.sampler->intern(topo_->cached_path(r.src, r.dst)));
      plan.rwnd.push_back(dst_rwnd);
      for (int o : *r.overlays) {
        if (o == r.src || o == r.dst) continue;
        plan.eligible.push_back(o);
        // Split-TCP legs terminate at their own receivers: the overlay VM
        // for leg 1, the final destination for leg 2.
        plan.handles.push_back(S.sampler->intern(topo_->cached_path(r.src, o)));
        plan.rwnd.push_back(static_cast<double>(topo_->endpoint(o).rcv_buf));
        plan.handles.push_back(S.sampler->intern(topo_->cached_path(o, r.dst)));
        plan.rwnd.push_back(dst_rwnd);
      }
    }
    S.batch_plans.push_back(&plan);
    S.handles.insert(S.handles.end(), plan.handles.begin(), plan.handles.end());
  }

  // One batched sample: shared link fields are evaluated once for the
  // whole batch.
  S.metrics.resize(S.handles.size());
  S.sampler->sample_batch(S.handles.data(), S.handles.size(), t,
                          S.metrics.data());

  // Pass 2: receiver windows (precomputed per plan) and the flat PFTK
  // evaluation table, exactly as in measure(). Each overlay contributes
  // three deterministic evaluations — concat, leg1, leg2 — and the leg
  // values are shared between the split and discrete predictors.
  const model::TcpModelParams& p = flow_->params();
  S.concat.clear();
  S.rtt_ms.clear();
  S.loss.clear();
  S.residual_bps.clear();
  S.capacity_bps.clear();
  S.rwnd_bytes.clear();
  const auto push_eval = [&](const model::PathMetrics& m) {
    S.rtt_ms.push_back(m.rtt_ms);
    S.loss.push_back(m.loss);
    S.residual_bps.push_back(m.residual_bps);
    S.capacity_bps.push_back(m.capacity_bps);
    S.rwnd_bytes.push_back(m.rwnd_bytes > 0 ? m.rwnd_bytes : p.rwnd_bytes);
  };
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const PairPlan& plan = *S.batch_plans[i];
    for (std::size_t k = 0; k < plan.handles.size(); ++k) {
      S.metrics[cursor + k].rwnd_bytes = plan.rwnd[k];
    }
    push_eval(S.metrics[cursor]);
    for (std::size_t j = 0; j < plan.eligible.size(); ++j) {
      const model::PathMetrics& m1 = S.metrics[cursor + 1 + 2 * j];
      const model::PathMetrics& m2 = S.metrics[cursor + 2 + 2 * j];
      S.concat.push_back(model::FlowModel::concat(m1, m2));
      push_eval(S.concat.back());
      push_eval(m1);
      push_eval(m2);
    }
    cursor += plan.handles.size();
  }
  S.pftk_bps.resize(S.rtt_ms.size());
  model::pftk_throughput_batch(S.rtt_ms.size(), S.rtt_ms.data(), S.loss.data(),
                               S.residual_bps.data(), S.capacity_bps.data(),
                               S.rwnd_bytes.data(), p, S.pftk_bps.data());

  // Pass 3: the per-pair stochastic pass — draw-for-draw the sequence
  // measure() makes on its private (seed, src, dst, t) stream, applied to
  // the precomputed PFTK values.
  const double sigma = p.noise_sigma;
  const auto finish_tcp = [&](double pftk, const model::PathMetrics& m,
                              sim::Rng& rng) {
    double v = pftk;
    // When the flow saturates the residual capacity it also builds queue;
    // throughput clips slightly below the residual rate.
    const double cap = std::min(m.residual_bps, m.capacity_bps);
    if (v > 0.92 * cap) v = cap * rng.uniform(0.88, 0.96);
    return v * std::exp(rng.normal(0.0, sigma));
  };
  cursor = 0;
  std::size_t eval = 0, cc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ProbeRequest& r = reqs[i];
    PairSample& ps = out[i];
    ps.src = r.src;
    ps.dst = r.dst;
    sim::Rng rng(sim::pair_seed(seed_ ^ flow_->seed(), r.src, r.dst, t.ns()));
    const model::PathMetrics& dm = S.metrics[cursor++];
    ps.direct_bps = finish_tcp(S.pftk_bps[eval++], dm, rng);
    ps.direct_rtt_ms = dm.rtt_ms;
    ps.direct_loss = dm.loss;
    ps.direct_hops = dm.hop_count;
    ps.overlays.clear();  // keeps capacity: warm batches do not allocate
    for (int o : S.batch_plans[i]->eligible) {
      const model::PathMetrics& m1 = S.metrics[cursor++];
      const model::PathMetrics& m2 = S.metrics[cursor++];
      const model::PathMetrics& cm = S.concat[cc++];
      const double pftk_cm = S.pftk_bps[eval++];
      const double pftk_1 = S.pftk_bps[eval++];
      const double pftk_2 = S.pftk_bps[eval++];
      OverlaySample s;
      s.overlay_ep = o;
      s.plain_bps = finish_tcp(pftk_cm, cm, rng);
      const double t1 = finish_tcp(pftk_1, m1, rng);
      const double t2 = finish_tcp(pftk_2, m2, rng);
      s.leg1_bps = t1;
      s.leg2_bps = t2;
      s.split_bps = 0.97 * std::min(t1, t2);
      // discrete() draws inside an unsequenced std::min call; the compiler
      // evaluates the second leg first, so mirror that draw order here
      // (pinned by the batched==scalar equality tests).
      const double d2 = finish_tcp(pftk_2, m2, rng);
      const double d1 = finish_tcp(pftk_1, m1, rng);
      s.discrete_bps = std::min(d1, d2);
      s.rtt_ms = cm.rtt_ms;
      s.loss = cm.loss;
      ps.overlays.push_back(s);
    }
  }
}

void ModelMeasurement::measure_batch(const std::pair<int, int>* pairs,
                                     std::size_t n,
                                     const std::vector<int>& overlay_eps,
                                     sim::Time t, PairSample* out) const {
  BatchScratch& S = batch_scratch();
  S.reqs.clear();
  S.reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    S.reqs.push_back(ProbeRequest{pairs[i].first, pairs[i].second, &overlay_eps});
  }
  measure_batch(S.reqs.data(), n, t, out);
}

}  // namespace cronets::core
