#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace cronets::core {

/// Throughput samples for one endpoint pair over time:
/// samples[t][k] = throughput via overlay node k at sample t (bit/s);
/// direct[t] = throughput of the default path at sample t.
struct PairHistory {
  std::vector<double> direct;
  std::vector<std::vector<double>> overlay;  // [t][overlay index]
  // Optional RTT views (filled by the longitudinal study; empty otherwise).
  std::vector<double> direct_rtt_ms;
  std::vector<std::vector<double>> overlay_rtt_ms;

  std::size_t times() const { return direct.size(); }
  /// Widest overlay row. Histories can be ragged (an overlay skipped at
  /// some samples — e.g. a src/dst collision), so callers treat a missing
  /// entry as "not measured", not as an index they may dereference.
  std::size_t overlays() const {
    std::size_t n = 0;
    for (const auto& row : overlay) n = std::max(n, row.size());
    return n;
  }
};

/// Minimum number of overlay nodes needed so that, at every sample time,
/// some chosen node achieves the maximum observed overlay throughput
/// (within `tolerance`, relative). Figure 7's metric.
int min_overlays_required(const PairHistory& h, double tolerance = 0.01);

/// The best subset of exactly `k` overlay nodes: maximizes the average
/// over time of max-throughput-within-subset. Returns the subset's average
/// max throughput (Table I's ingredient). `chosen` (optional) receives the
/// winning indexes.
double best_subset_avg_bps(const PairHistory& h, int k,
                           std::vector<int>* chosen = nullptr);

/// --- Path selection policies (§VI and the probing baseline) -------------
///
/// The classic alternative to MPTCP: probe every path periodically and pin
/// traffic to the path that measured best. Between probes the choice goes
/// stale — the regret relative to the per-sample best path is the cost the
/// paper's MPTCP approach eliminates.
class ProbeSelector {
 public:
  /// `probe_interval`: re-probe every n samples (1 = always fresh).
  explicit ProbeSelector(int probe_interval) : interval_(probe_interval) {}

  /// Returns the throughput actually achieved at each sample, following
  /// the stale-probing policy over the history (direct path is choice -1,
  /// overlays 0..k-1). Re-probing costs nothing here; real probing
  /// overhead is modelled in the ablation bench.
  std::vector<double> achieved(const PairHistory& h);

 private:
  int interval_;
};

/// MPTCP-based selection (§VI-A): no probing; every sample achieves
/// (approximately) the max across all paths, modulo a small coupling
/// inefficiency factor.
std::vector<double> mptcp_achieved(const PairHistory& h, double efficiency = 0.97);

/// Epsilon-greedy bandit: learns the best path purely from its own
/// throughput observations (arm 0 = direct, arms 1..k = overlays); no
/// global snapshot, unlike ProbeSelector. A middle ground between blind
/// pinning and MPTCP.
class BanditSelector {
 public:
  BanditSelector(double epsilon, std::uint64_t seed)
      : epsilon_(epsilon), seed_(seed) {}
  std::vector<double> achieved(const PairHistory& h);

 private:
  double epsilon_;
  std::uint64_t seed_;
};

/// Latency-probe selection: pin to the minimum-RTT path each sample. RTT
/// probes are far cheaper than throughput probes — but RTT is the wrong
/// metric when loss dominates (the paper's §V shows why). Requires the
/// history's RTT views; falls back to the direct path where absent.
std::vector<double> min_rtt_achieved(const PairHistory& h);

}  // namespace cronets::core
