#pragma once

#include <string>
#include <vector>

namespace cronets::core {

/// Cloud pricing, modelled on 2015-era IBM Softlayer virtual servers
/// (§I: "about $20 per month" for a 100 Mbps VM; §VII-D's option grid).
struct CloudPricing {
  double vm_monthly_usd = 25.0;          ///< 1 core / 4 GB / 100 Mbps virtual server
  double bare_metal_monthly_usd = 159.0; ///< entry bare-metal alternative
  double port_1g_upcharge_usd = 100.0;
  double port_10g_upcharge_usd = 600.0;
  double included_gb = 250.0;            ///< monthly outbound allowance
  double per_gb_overage_usd = 0.09;
  double unlimited_100m_upcharge_usd = 200.0;  ///< unmetered bandwidth option
};

/// Private leased-line pricing (MPLS-style): dominated by a steep per-Mbps
/// monthly charge plus distance-dependent local loops [Gottlieb'12].
struct LeasedLinePricing {
  double per_mbps_monthly_usd = 45.0;  ///< typical 2015 MPLS port+transport
  double local_loop_monthly_usd = 600.0;
  double intercontinental_multiplier = 2.5;
};

struct CostBreakdown {
  double monthly_usd = 0.0;
  std::string description;
};

/// Monthly cost of a CRONets deployment: `num_overlays` rented VMs relaying
/// `monthly_traffic_gb` of traffic at `port_mbps` (100/1000/10000).
CostBreakdown cronets_monthly_cost(const CloudPricing& p, int num_overlays,
                                   double monthly_traffic_gb, int port_mbps,
                                   bool bare_metal = false);

/// Monthly cost of a leased line of `mbps` capacity between two sites
/// (`intercontinental` doubles-plus the transport charge).
CostBreakdown leased_line_monthly_cost(const LeasedLinePricing& p, double mbps,
                                       bool intercontinental);

}  // namespace cronets::core
