#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "topo/internet.h"
#include "transport/mptcp.h"
#include "transport/tcp.h"
#include "tunnel/tunnel.h"

namespace cronets::core {

/// Result of one packet-level measurement run (iperf-style).
struct PacketRunResult {
  double goodput_bps = 0.0;   ///< receiver-side delivered bytes over window
  double retrans_rate = 0.0;  ///< tstat-style: retransmitted/sent payload
  double avg_rtt_ms = 0.0;    ///< sender's timestamp-based average RTT
  std::uint64_t bytes = 0;    ///< bytes delivered in the measurement window
  bool connected = false;
};

/// Packet-level measurement runners. Each call builds a fresh simulator
/// and materializes exactly the topology slice the run needs, then drives
/// real TCP/MPTCP stacks through it. Used for the MPTCP experiments
/// (Figures 12/13), validation of the analytic model, and spot-checks of
/// the large sweeps.
///
/// `start_at` positions the run on the topology's shared timeline so that
/// diurnal/background processes and scheduled events line up across runs.
class PacketLab {
 public:
  explicit PacketLab(topo::Internet* topo, std::uint64_t seed = 1)
      : topo_(topo), seed_(seed) {}

  /// Plain single-path TCP src -> dst over the BGP default path.
  PacketRunResult run_direct(int src_ep, int dst_ep, sim::Time duration,
                             sim::Time start_at = sim::Time::zero(),
                             transport::TcpConfig cfg = {});

  /// GRE/IPsec tunnel overlay: src tunnels to `via`, which NATs and
  /// forwards; one TCP connection end to end (§II-A "Overlay").
  PacketRunResult run_tunnel(int src_ep, int dst_ep, int via_ep,
                             tunnel::TunnelMode mode, sim::Time duration,
                             sim::Time start_at = sim::Time::zero(),
                             transport::TcpConfig cfg = {});

  /// Split-TCP proxy at the overlay node (§II-A "Split-Overlay").
  PacketRunResult run_split(int src_ep, int dst_ep, int via_ep, sim::Time duration,
                            sim::Time start_at = sim::Time::zero(),
                            transport::TcpConfig cfg = {});

  /// Two independent leg measurements (§II-A "Discrete overlay"): returns
  /// min of the legs' goodputs.
  PacketRunResult run_discrete(int src_ep, int dst_ep, int via_ep,
                               sim::Time duration,
                               sim::Time start_at = sim::Time::zero(),
                               transport::TcpConfig cfg = {});

  /// MPTCP across the direct path plus one subflow per overlay node
  /// (§VI): path steering via per-subflow alias addresses tunnelled
  /// through the corresponding overlay node.
  PacketRunResult run_mptcp(int src_ep, int dst_ep, const std::vector<int>& via_eps,
                            transport::Coupling coupling, sim::Time duration,
                            sim::Time start_at = sim::Time::zero(),
                            transport::TcpConfig cfg = {});

  /// Multi-hop extension (§VII-B): split-TCP through two cloud nodes
  /// connected by the private backbone.
  PacketRunResult run_split_backbone(int src_ep, int dst_ep, int via_a, int via_b,
                                     sim::Time duration,
                                     sim::Time start_at = sim::Time::zero(),
                                     transport::TcpConfig cfg = {});

 private:
  topo::Internet* topo_;
  std::uint64_t seed_;
};

}  // namespace cronets::core
