#include "core/measure_packet.h"

#include <algorithm>
#include <memory>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/materialize.h"
#include "transport/apps.h"
#include "transport/split_proxy.h"

namespace cronets::core {

using sim::Time;
using transport::BulkSink;
using transport::BulkSource;
using transport::TcpConfig;

namespace {

constexpr net::TransportPort kSinkPort = 5001;
constexpr net::TransportPort kProxyPort = 5002;
constexpr net::TransportPort kProxy2Port = 5003;
constexpr net::TransportPort kClientPort = 20000;

struct Window {
  std::uint64_t start_bytes = 0;
  Time open_at{};
  Time close_at{};
};

/// Measurement window with warmup: skip slow-start and settle time.
Window plan_window(Time start, Time duration) {
  const Time warmup = std::min(Time::seconds(3), duration / 4);
  return Window{0, start + warmup, start + duration};
}

double to_bps(std::uint64_t bytes, Time from, Time to) {
  const double secs = (to - from).to_seconds();
  return secs > 0 ? static_cast<double>(bytes) * 8.0 / secs : 0.0;
}

}  // namespace

PacketRunResult PacketLab::run_direct(int src_ep, int dst_ep, Time duration,
                                      Time start_at, TcpConfig cfg) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{seed_});
  topo::Materializer mat(topo_, &netw);
  mat.add_pair(src_ep, dst_ep);
  mat.apply_events();

  net::Host* src = mat.host(src_ep);
  net::Host* dst = mat.host(dst_ep);

  TcpConfig sink_cfg = cfg;
  sink_cfg.rcv_buf = topo_->endpoint(dst_ep).rcv_buf;
  BulkSink sink(dst, kSinkPort, sink_cfg);
  BulkSource source(src, kClientPort, dst->addr(), kSinkPort, cfg);

  Window w = plan_window(start_at, duration);
  simv.schedule_at(start_at, [&] { source.start(); });
  simv.schedule_at(w.open_at, [&] { w.start_bytes = sink.bytes_received(); });
  simv.run_until(w.close_at);

  PacketRunResult r;
  r.connected = source.connection().established() || source.connection().state() ==
                                                         transport::TcpConnection::State::kFinWait;
  r.bytes = sink.bytes_received() - w.start_bytes;
  r.goodput_bps = to_bps(r.bytes, w.open_at, w.close_at);
  r.retrans_rate = source.connection().stats().retransmission_rate();
  r.avg_rtt_ms = source.connection().stats().avg_rtt_ms();
  return r;
}

PacketRunResult PacketLab::run_tunnel(int src_ep, int dst_ep, int via_ep,
                                      tunnel::TunnelMode mode, Time duration,
                                      Time start_at, TcpConfig cfg) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{seed_});
  topo::Materializer mat(topo_, &netw);
  mat.add_pair(src_ep, via_ep);
  mat.add_pair(via_ep, dst_ep);
  mat.apply_events();

  net::Host* src = mat.host(src_ep);
  net::Host* via = mat.host(via_ep);
  net::Host* dst = mat.host(dst_ep);

  tunnel::TunnelClient tc(src);
  tc.add_tunnel_route(dst->addr(), via->addr(), mode);
  tunnel::OverlayDatapath datapath(via);

  TcpConfig sink_cfg = cfg;
  sink_cfg.rcv_buf = topo_->endpoint(dst_ep).rcv_buf;
  BulkSink sink(dst, kSinkPort, sink_cfg);
  BulkSource source(src, kClientPort, dst->addr(), kSinkPort, cfg);

  Window w = plan_window(start_at, duration);
  simv.schedule_at(start_at, [&] { source.start(); });
  simv.schedule_at(w.open_at, [&] { w.start_bytes = sink.bytes_received(); });
  simv.run_until(w.close_at);

  PacketRunResult r;
  r.connected = source.connection().established();
  r.bytes = sink.bytes_received() - w.start_bytes;
  r.goodput_bps = to_bps(r.bytes, w.open_at, w.close_at);
  r.retrans_rate = source.connection().stats().retransmission_rate();
  r.avg_rtt_ms = source.connection().stats().avg_rtt_ms();
  return r;
}

PacketRunResult PacketLab::run_split(int src_ep, int dst_ep, int via_ep,
                                     Time duration, Time start_at, TcpConfig cfg) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{seed_});
  topo::Materializer mat(topo_, &netw);
  mat.add_pair(src_ep, via_ep);
  mat.add_pair(via_ep, dst_ep);
  mat.apply_events();

  net::Host* src = mat.host(src_ep);
  net::Host* via = mat.host(via_ep);
  net::Host* dst = mat.host(dst_ep);

  TcpConfig sink_cfg = cfg;
  sink_cfg.rcv_buf = topo_->endpoint(dst_ep).rcv_buf;
  BulkSink sink(dst, kSinkPort, sink_cfg);
  transport::SplitTcpProxy proxy(via, kProxyPort, dst->addr(), kSinkPort, cfg);
  BulkSource source(src, kClientPort, via->addr(), kProxyPort, cfg);

  Window w = plan_window(start_at, duration);
  simv.schedule_at(start_at, [&] { source.start(); });
  simv.schedule_at(w.open_at, [&] { w.start_bytes = sink.bytes_received(); });
  simv.run_until(w.close_at);

  PacketRunResult r;
  r.connected = source.connection().established();
  r.bytes = sink.bytes_received() - w.start_bytes;
  r.goodput_bps = to_bps(r.bytes, w.open_at, w.close_at);
  r.retrans_rate = source.connection().stats().retransmission_rate();
  r.avg_rtt_ms = source.connection().stats().avg_rtt_ms();
  return r;
}

PacketRunResult PacketLab::run_discrete(int src_ep, int dst_ep, int via_ep,
                                        Time duration, Time start_at,
                                        TcpConfig cfg) {
  PacketRunResult leg1 = run_direct(src_ep, via_ep, duration, start_at, cfg);
  PacketRunResult leg2 = run_direct(via_ep, dst_ep, duration, start_at, cfg);
  PacketRunResult r = leg1.goodput_bps < leg2.goodput_bps ? leg1 : leg2;
  r.connected = leg1.connected && leg2.connected;
  return r;
}

PacketRunResult PacketLab::run_mptcp(int src_ep, int dst_ep,
                                     const std::vector<int>& via_eps,
                                     transport::Coupling coupling, Time duration,
                                     Time start_at, TcpConfig cfg) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{seed_});
  topo::Materializer mat(topo_, &netw);

  mat.add_pair(src_ep, dst_ep);
  for (int via : via_eps) {
    mat.add_pair(src_ep, via);
    mat.add_pair(via, dst_ep);
  }
  // One alias address per overlay path, installed along via -> dst.
  std::vector<net::IpAddr> remote_addrs;
  net::Host* dst = mat.host(dst_ep);
  remote_addrs.push_back(dst->addr());
  for (std::size_t i = 0; i < via_eps.size(); ++i) {
    const net::IpAddr alias{0x0b000000u + static_cast<std::uint32_t>(i) + 1};
    mat.add_alias_path(alias, via_eps[i], dst_ep);
    remote_addrs.push_back(alias);
  }
  mat.apply_events();

  net::Host* src = mat.host(src_ep);
  tunnel::TunnelClient tc(src);
  std::vector<std::unique_ptr<tunnel::OverlayDatapath>> datapaths;
  for (std::size_t i = 0; i < via_eps.size(); ++i) {
    net::Host* via = mat.host(via_eps[i]);
    tc.add_tunnel_route(remote_addrs[i + 1], via->addr(), tunnel::TunnelMode::kGre);
    datapaths.push_back(std::make_unique<tunnel::OverlayDatapath>(via));
  }

  TcpConfig sink_cfg = cfg;
  sink_cfg.rcv_buf = topo_->endpoint(dst_ep).rcv_buf;
  transport::MptcpListener listener(dst, kSinkPort, sink_cfg);
  transport::MptcpConfig mcfg;
  mcfg.subflow = cfg;
  mcfg.coupling = coupling;
  transport::MptcpConnection conn(src, kClientPort, remote_addrs, kSinkPort, mcfg);
  conn.set_infinite_source(true);

  Window w = plan_window(start_at, duration);
  std::uint64_t open_bytes = 0;
  simv.schedule_at(start_at, [&] { conn.connect(); });
  simv.schedule_at(w.open_at, [&] { open_bytes = listener.bytes_delivered(); });
  simv.run_until(w.close_at);

  PacketRunResult r;
  r.connected = conn.alive_subflows() > 0;
  r.bytes = listener.bytes_delivered() - open_bytes;
  r.goodput_bps = to_bps(r.bytes, w.open_at, w.close_at);
  // Aggregate sender-side stats across subflows.
  std::uint64_t sent = 0, retx = 0;
  double rtt_sum = 0.0;
  std::uint64_t rtt_n = 0;
  for (const auto& s : conn.subflows()) {
    sent += s->stats().bytes_sent;
    retx += s->stats().bytes_retransmitted;
    rtt_sum += s->stats().rtt_sample_sum_ms;
    rtt_n += s->stats().rtt_sample_count;
  }
  r.retrans_rate = sent ? static_cast<double>(retx) / static_cast<double>(sent) : 0.0;
  r.avg_rtt_ms = rtt_n ? rtt_sum / static_cast<double>(rtt_n) : 0.0;
  return r;
}

PacketRunResult PacketLab::run_split_backbone(int src_ep, int dst_ep, int via_a,
                                              int via_b, Time duration,
                                              Time start_at, TcpConfig cfg) {
  sim::Simulator simv;
  net::Network netw(&simv, sim::Rng{seed_});
  topo::Materializer mat(topo_, &netw);
  mat.add_pair(src_ep, via_a);
  mat.add_backbone_pair(via_a, via_b);
  mat.add_pair(via_b, dst_ep);
  mat.apply_events();

  net::Host* src = mat.host(src_ep);
  net::Host* a = mat.host(via_a);
  net::Host* b = mat.host(via_b);
  net::Host* dst = mat.host(dst_ep);

  TcpConfig sink_cfg = cfg;
  sink_cfg.rcv_buf = topo_->endpoint(dst_ep).rcv_buf;
  BulkSink sink(dst, kSinkPort, sink_cfg);
  transport::SplitTcpProxy proxy_b(b, kProxy2Port, dst->addr(), kSinkPort, cfg);
  transport::SplitTcpProxy proxy_a(a, kProxyPort, b->addr(), kProxy2Port, cfg);
  BulkSource source(src, kClientPort, a->addr(), kProxyPort, cfg);

  Window w = plan_window(start_at, duration);
  simv.schedule_at(start_at, [&] { source.start(); });
  simv.schedule_at(w.open_at, [&] { w.start_bytes = sink.bytes_received(); });
  simv.run_until(w.close_at);

  PacketRunResult r;
  r.connected = source.connection().established();
  r.bytes = sink.bytes_received() - w.start_bytes;
  r.goodput_bps = to_bps(r.bytes, w.open_at, w.close_at);
  r.retrans_rate = source.connection().stats().retransmission_rate();
  r.avg_rtt_ms = source.connection().stats().avg_rtt_ms();
  return r;
}

}  // namespace cronets::core
