#pragma once

#include <vector>

#include "core/measure_model.h"
#include "sim/time.h"

namespace cronets::core {

/// §VII-A ("Overlay nodes selection", the paper's first future-work item):
/// which data centers should a customer rent, and how many?
///
/// Given a traffic matrix (the endpoint pairs the customer cares about) and
/// the candidate DCs, choose k overlay nodes maximizing the average
/// improvement over the direct paths. The objective — the sum over pairs of
/// max(direct, best split-overlay within the chosen set) — is monotone
/// submodular in the chosen set, so greedy selection carries the classic
/// (1 - 1/e) guarantee; an exhaustive baseline is provided for small k.
class PlacementOptimizer {
 public:
  struct Result {
    std::vector<int> chosen;        ///< endpoint ids of the rented DCs
    double avg_improvement = 0.0;   ///< mean over pairs of achieved/direct
    double total_bps = 0.0;         ///< sum over pairs of achieved throughput
  };

  PlacementOptimizer(topo::Internet* topo, ModelMeasurement* meter)
      : topo_(topo), meter_(meter) {}

  /// Measure every (pair, candidate) combination once at time `at`;
  /// subsequent optimization calls reuse the cached matrix.
  void measure(const std::vector<std::pair<int, int>>& pairs,
               const std::vector<int>& candidates, sim::Time at);

  /// Greedy submodular maximization: repeatedly add the candidate with the
  /// best marginal gain.
  Result greedy(int k) const;
  /// Exhaustive search over all subsets of size k (candidates <= ~16).
  Result exhaustive(int k) const;
  /// Expected value of a uniformly random subset of size k (baseline),
  /// averaged over `trials` draws.
  Result random_baseline(int k, int trials, std::uint64_t seed) const;

  std::size_t pair_count() const { return direct_.size(); }
  const std::vector<int>& candidates() const { return candidates_; }

 private:
  double value_of(const std::vector<int>& subset_idx, double* avg_improvement) const;

  topo::Internet* topo_;
  ModelMeasurement* meter_;
  std::vector<int> candidates_;
  std::vector<double> direct_;               // per pair
  std::vector<std::vector<double>> split_;   // [pair][candidate]
};

}  // namespace cronets::core
