#include "core/selection.h"

#include <algorithm>
#include <cassert>

#include "sim/rng.h"

namespace cronets::core {

namespace {
/// Overlay row at sample t; histories can be ragged or shorter than
/// `direct`, so a missing row reads as empty instead of out-of-bounds.
const std::vector<double>& overlay_row(const PairHistory& h, std::size_t t) {
  static const std::vector<double> kEmpty;
  return t < h.overlay.size() ? h.overlay[t] : kEmpty;
}

/// Max over a subset mask of overlay throughputs at sample t.
double subset_max(const PairHistory& h, std::size_t t, unsigned mask) {
  const auto& row = overlay_row(h, t);
  double best = 0.0;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (mask & (1u << k)) best = std::max(best, row[k]);
  }
  return best;
}
}  // namespace

int min_overlays_required(const PairHistory& h, double tolerance) {
  const std::size_t n = h.overlays();
  assert(n <= 16 && "subset search is exponential in overlay count");
  if (n == 0 || h.times() == 0) return 0;

  for (int k = 1; k <= static_cast<int>(n); ++k) {
    // Try every subset of size k.
    for (unsigned mask = 1; mask < (1u << n); ++mask) {
      if (__builtin_popcount(mask) != k) continue;
      bool ok = true;
      for (std::size_t t = 0; t < h.times() && ok; ++t) {
        const double all = subset_max(h, t, (1u << n) - 1);
        const double got = subset_max(h, t, mask);
        if (got < all * (1.0 - tolerance)) ok = false;
      }
      if (ok) return k;
    }
  }
  return static_cast<int>(n);
}

double best_subset_avg_bps(const PairHistory& h, int k, std::vector<int>* chosen) {
  const std::size_t n = h.overlays();
  if (chosen) chosen->clear();
  if (n == 0 || k < 1 || h.times() == 0) return 0.0;
  k = std::min(k, static_cast<int>(n));
  double best_avg = -1.0;
  unsigned best_mask = 0;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    double sum = 0.0;
    for (std::size_t t = 0; t < h.times(); ++t) sum += subset_max(h, t, mask);
    const double avg = sum / static_cast<double>(h.times());
    if (avg > best_avg) {
      best_avg = avg;
      best_mask = mask;
    }
  }
  if (chosen) {
    for (std::size_t i = 0; i < n; ++i) {
      if (best_mask & (1u << i)) chosen->push_back(static_cast<int>(i));
    }
  }
  return best_avg;
}

std::vector<double> ProbeSelector::achieved(const PairHistory& h) {
  std::vector<double> out;
  out.reserve(h.times());
  int choice = -1;  // start on the direct path
  for (std::size_t t = 0; t < h.times(); ++t) {
    const auto& row = overlay_row(h, t);
    if (t % static_cast<std::size_t>(std::max(1, interval_)) == 0) {
      // Probe: pick the best path as of this sample.
      choice = -1;
      double best = h.direct[t];
      for (std::size_t k = 0; k < row.size(); ++k) {
        if (row[k] > best) {
          best = row[k];
          choice = static_cast<int>(k);
        }
      }
    }
    // A pinned overlay missing from this sample's row falls back to the
    // direct path (the pin is unusable, not silently zero).
    out.push_back(choice < 0 || static_cast<std::size_t>(choice) >= row.size()
                      ? h.direct[t]
                      : row[static_cast<std::size_t>(choice)]);
  }
  return out;
}

std::vector<double> BanditSelector::achieved(const PairHistory& h) {
  const std::size_t arms = 1 + h.overlays();
  std::vector<double> sum(arms, 0.0);
  std::vector<int> count(arms, 0);
  sim::Rng rng(seed_);
  std::vector<double> out;
  out.reserve(h.times());

  auto reward = [&](std::size_t arm, std::size_t t) {
    if (arm == 0) return h.direct[t];
    const auto& row = overlay_row(h, t);
    // An overlay arm missing from this sample's row plays as the direct
    // path — same fallback a real client would take.
    return arm - 1 < row.size() ? row[arm - 1] : h.direct[t];
  };

  for (std::size_t t = 0; t < h.times(); ++t) {
    std::size_t arm;
    if (rng.bernoulli(epsilon_) || t < arms) {
      arm = t < arms ? t : rng.index(arms);  // initial sweep, then explore
    } else {
      arm = 0;
      double best = -1.0;
      for (std::size_t a = 0; a < arms; ++a) {
        const double est = count[a] ? sum[a] / count[a] : 0.0;
        if (est > best) {
          best = est;
          arm = a;
        }
      }
    }
    const double r = reward(arm, t);
    sum[arm] += r;
    ++count[arm];
    out.push_back(r);
  }
  return out;
}

std::vector<double> min_rtt_achieved(const PairHistory& h) {
  std::vector<double> out;
  out.reserve(h.times());
  for (std::size_t t = 0; t < h.times(); ++t) {
    if (h.direct_rtt_ms.size() <= t || h.overlay_rtt_ms.size() <= t) {
      out.push_back(h.direct[t]);
      continue;
    }
    const auto& row = overlay_row(h, t);
    std::size_t pick = 0;  // 0 = direct
    double best_rtt = h.direct_rtt_ms[t];
    // Only overlays with both an RTT probe and a throughput sample at t
    // are eligible — an RTT row can be wider than the throughput row.
    const std::size_t eligible = std::min(h.overlay_rtt_ms[t].size(), row.size());
    for (std::size_t a = 0; a < eligible; ++a) {
      if (h.overlay_rtt_ms[t][a] < best_rtt) {
        best_rtt = h.overlay_rtt_ms[t][a];
        pick = a + 1;
      }
    }
    out.push_back(pick == 0 ? h.direct[t] : row[pick - 1]);
  }
  return out;
}

std::vector<double> mptcp_achieved(const PairHistory& h, double efficiency) {
  std::vector<double> out;
  out.reserve(h.times());
  for (std::size_t t = 0; t < h.times(); ++t) {
    double best = h.direct[t];
    for (double v : overlay_row(h, t)) best = std::max(best, v);
    out.push_back(best * efficiency);
  }
  return out;
}

}  // namespace cronets::core
