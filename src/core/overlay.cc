#include "core/overlay.h"

#include <cassert>

namespace cronets::core {

OverlayNode OverlayNetwork::rent(const std::string& dc_name,
                                 tunnel::TunnelMode mode) {
  const int ep = topo_->dc_endpoint(dc_name);
  assert(ep >= 0 && "unknown data center");
  nodes_.push_back(OverlayNode{ep, dc_name, mode});
  return nodes_.back();
}

}  // namespace cronets::core
