#pragma once

#include <string>
#include <vector>

#include "topo/internet.h"
#include "tunnel/tunnel.h"

namespace cronets::core {

/// The four path types measured in the paper (§II-A), plus the k-hop
/// composed route of the multi-hop routing plane (src/route/): split-TCP
/// at two or more relay VMs with the middle legs on the cloud backbone.
enum class PathKind { kDirect, kOverlay, kSplitOverlay, kDiscrete, kMultiHop };

inline const char* path_kind_name(PathKind k) {
  switch (k) {
    case PathKind::kDirect: return "direct";
    case PathKind::kOverlay: return "overlay";
    case PathKind::kSplitOverlay: return "split-overlay";
    case PathKind::kDiscrete: return "discrete";
    case PathKind::kMultiHop: return "multi-hop";
  }
  return "?";
}

/// One rented overlay node: a cloud VM acting as tunnel endpoint + NAT
/// (and optionally split-TCP proxy).
struct OverlayNode {
  int endpoint = -1;  ///< topo endpoint id of the VM
  std::string dc_name;
  tunnel::TunnelMode mode = tunnel::TunnelMode::kGre;
};

/// A user's overlay: the set of cloud nodes they rented. Thin by design —
/// CRONets' point is that the overlay is just rented VMs plus tunnels.
class OverlayNetwork {
 public:
  explicit OverlayNetwork(topo::Internet* topo) : topo_(topo) {}

  /// Rent a VM in the named data center (must exist in CloudParams).
  /// Returns a copy: the internal list may reallocate on later rentals.
  OverlayNode rent(const std::string& dc_name,
                   tunnel::TunnelMode mode = tunnel::TunnelMode::kGre);

  const std::vector<OverlayNode>& nodes() const { return nodes_; }
  std::vector<int> endpoints() const {
    std::vector<int> out;
    for (const auto& n : nodes_) out.push_back(n.endpoint);
    return out;
  }

  topo::Internet& internet() { return *topo_; }

 private:
  topo::Internet* topo_;
  std::vector<OverlayNode> nodes_;
};

}  // namespace cronets::core
