#pragma once

#include <vector>

#include "core/overlay.h"
#include "model/flow_model.h"
#include "topo/internet.h"

namespace cronets::core {

/// One overlay node's view of an endpoint pair at a sample time.
struct OverlaySample {
  int overlay_ep = -1;
  double plain_bps = 0.0;
  double split_bps = 0.0;
  double discrete_bps = 0.0;
  double rtt_ms = 0.0;   ///< end-to-end RTT through the overlay
  double loss = 0.0;     ///< end-to-end loss through the overlay
};

/// Full measurement of one endpoint pair against a set of overlay nodes.
struct PairSample {
  int src = -1;
  int dst = -1;
  double direct_bps = 0.0;
  double direct_rtt_ms = 0.0;
  double direct_loss = 0.0;
  int direct_hops = 0;
  std::vector<OverlaySample> overlays;

  double best_plain_bps() const;
  double best_split_bps() const;
  double best_discrete_bps() const;
  double min_overlay_rtt_ms() const;
  double min_overlay_loss() const;
  int best_split_overlay_ep() const;
};

/// Analytic measurement runner: the instrument used for the paper-scale
/// sweeps (6,600 paths x several path types). All throughputs come from
/// the calibrated flow model over the same generated Internet the packet
/// simulator uses.
///
/// Every measurement draws its noise from a private stream seeded by
/// (seed, src, dst, t), so a pair's result depends only on those four
/// values — never on how many other pairs were measured before it, in what
/// order, or on which thread. This is what lets the experiment loops fan
/// pairs out across a thread pool and still produce bitwise-identical
/// results at any thread count.
class ModelMeasurement {
 public:
  ModelMeasurement(topo::Internet* topo, model::FlowModel* flow,
                   std::uint64_t seed = 0)
      : topo_(topo), flow_(flow), seed_(seed) {}

  /// Measure (src,dst) against every overlay node at simulated time `t`.
  /// Thread-safe: const, and all randomness is per-call.
  PairSample measure(int src_ep, int dst_ep, const std::vector<int>& overlay_eps,
                     sim::Time t) const;

 private:
  topo::Internet* topo_;
  model::FlowModel* flow_;
  std::uint64_t seed_;
};

}  // namespace cronets::core
