#pragma once

#include <vector>

#include "core/overlay.h"
#include "model/flow_model.h"
#include "topo/internet.h"

namespace cronets::core {

/// One overlay node's view of an endpoint pair at a sample time.
struct OverlaySample {
  int overlay_ep = -1;
  double plain_bps = 0.0;
  double split_bps = 0.0;
  double discrete_bps = 0.0;
  /// The two per-leg TCP rates behind split_bps (= 0.97 * min of them).
  /// The multi-hop ranker composes k-hop scores from leg1 of the entry VM
  /// and leg2 of the exit VM, so no extra measurement draws are needed.
  double leg1_bps = 0.0;  ///< src -> overlay VM
  double leg2_bps = 0.0;  ///< overlay VM -> dst
  double rtt_ms = 0.0;   ///< end-to-end RTT through the overlay
  double loss = 0.0;     ///< end-to-end loss through the overlay
};

/// Full measurement of one endpoint pair against a set of overlay nodes.
struct PairSample {
  int src = -1;
  int dst = -1;
  double direct_bps = 0.0;
  double direct_rtt_ms = 0.0;
  double direct_loss = 0.0;
  int direct_hops = 0;
  std::vector<OverlaySample> overlays;

  double best_plain_bps() const;
  double best_split_bps() const;
  double best_discrete_bps() const;
  double min_overlay_rtt_ms() const;
  double min_overlay_loss() const;
  int best_split_overlay_ep() const;
};

/// One work item of a batched probe sweep: measure (src, dst) against
/// `*overlays` (which must outlive the measure_batch call).
struct ProbeRequest {
  int src = -1;
  int dst = -1;
  const std::vector<int>* overlays = nullptr;
};

/// Batch size used by the batched probe consumers (broker probe sweeps,
/// figure sweeps): the CRONETS_BATCH environment variable, default 64,
/// clamped to >= 1. Read once and cached. A pure performance knob — every
/// batch size produces bitwise-identical samples.
int probe_batch_size();

/// Analytic measurement runner: the instrument used for the paper-scale
/// sweeps (6,600 paths x several path types). All throughputs come from
/// the calibrated flow model over the same generated Internet the packet
/// simulator uses.
///
/// Every measurement draws its noise from a private stream seeded by
/// (seed, src, dst, t), so a pair's result depends only on those four
/// values — never on how many other pairs were measured before it, in what
/// order, or on which thread. This is what lets the experiment loops fan
/// pairs out across a thread pool and still produce bitwise-identical
/// results at any thread count.
class ModelMeasurement {
 public:
  ModelMeasurement(topo::Internet* topo, model::FlowModel* flow,
                   std::uint64_t seed = 0)
      : topo_(topo), flow_(flow), seed_(seed) {}

  /// Measure (src,dst) against every overlay node at simulated time `t`.
  /// Thread-safe: const, and all randomness is per-call. This is the
  /// scalar reference path; the batched overloads below are bitwise
  /// identical to it.
  PairSample measure(int src_ep, int dst_ep, const std::vector<int>& overlay_eps,
                     sim::Time t) const;

  /// Batched measurement through the SoA kernel (model::BatchSampler):
  /// writes reqs[i]'s sample into out[i]. Link fields shared by any paths
  /// in the batch are evaluated once, and all deterministic PFTK
  /// evaluations run as one flat loop; per-pair noise still comes from the
  /// (seed, src, dst, t) stream, so out[i] is bitwise identical to
  /// measure(reqs[i]...) at every batch size. Thread-safe: each thread
  /// keeps its own sampler and scratch (reused across calls, so warm
  /// batches allocate nothing — out[i].overlays storage is reused too).
  void measure_batch(const ProbeRequest* reqs, std::size_t n, sim::Time t,
                     PairSample* out) const;

  /// Convenience batch: every pairs[i] = (src, dst) measured against the
  /// same overlay set.
  void measure_batch(const std::pair<int, int>* pairs, std::size_t n,
                     const std::vector<int>& overlay_eps, sim::Time t,
                     PairSample* out) const;

 private:
  topo::Internet* topo_;
  model::FlowModel* flow_;
  std::uint64_t seed_;
};

}  // namespace cronets::core
