#include "econ/billing_ledger.h"

#include <algorithm>
#include <cstring>

#include "sim/hash_rng.h"

namespace cronets::econ {

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t BillingLedger::key_of(const BillCell& cell) {
  // [vm_ep+1 : high] [region : 8 bits] [kind : 8 bits] — unique per cell
  // identity and monotone in (vm_ep, region, kind) for the sorted folds.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cell.vm_ep + 1))
          << 16) |
         (static_cast<std::uint64_t>(cell.egress) << 8) |
         static_cast<std::uint64_t>(cell.kind);
}

void BillingLedger::meter(const BillCell& cell, double gb) {
  Cell& c = cells_[key_of(cell)];
  c.gb += gb;
  c.usd += gb * cell.usd_per_gb;
  ++meter_events_;
}

void BillingLedger::meter_session(const std::vector<BillCell>& bills,
                                  double gb) {
  for (const BillCell& cell : bills) meter(cell, gb);
  delivered_gb_ += gb;
}

void BillingLedger::sorted_keys(std::vector<std::uint64_t>* out) const {
  out->clear();
  out->reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out->push_back(key);
  std::sort(out->begin(), out->end());
}

double BillingLedger::total_gb() const {
  std::vector<std::uint64_t> keys;
  sorted_keys(&keys);
  double sum = 0.0;
  for (const std::uint64_t k : keys) sum += cells_.at(k).gb;
  return sum;
}

double BillingLedger::total_usd() const {
  std::vector<std::uint64_t> keys;
  sorted_keys(&keys);
  double sum = 0.0;
  for (const std::uint64_t k : keys) sum += cells_.at(k).usd;
  return sum;
}

double BillingLedger::kind_gb(core::PathKind kind) const {
  std::vector<std::uint64_t> keys;
  sorted_keys(&keys);
  double sum = 0.0;
  for (const std::uint64_t k : keys) {
    if (static_cast<core::PathKind>(k & 0xffu) == kind) sum += cells_.at(k).gb;
  }
  return sum;
}

double BillingLedger::kind_usd(core::PathKind kind) const {
  std::vector<std::uint64_t> keys;
  sorted_keys(&keys);
  double sum = 0.0;
  for (const std::uint64_t k : keys) {
    if (static_cast<core::PathKind>(k & 0xffu) == kind) sum += cells_.at(k).usd;
  }
  return sum;
}

std::uint64_t BillingLedger::fingerprint() const {
  std::vector<std::uint64_t> keys;
  sorted_keys(&keys);
  std::uint64_t fp = sim::splitmix64(0xB111Dull);
  for (const std::uint64_t k : keys) {
    const Cell& c = cells_.at(k);
    fp = sim::hash_combine(fp, k);
    fp = sim::hash_combine(fp, double_bits(c.gb));
    fp = sim::hash_combine(fp, double_bits(c.usd));
  }
  fp = sim::hash_combine(fp, double_bits(delivered_gb_));
  return fp;
}

void CostLedger::add(double usd_per_hour) {
  reserved_ += usd_per_hour;
  peak_ = std::max(peak_, reserved_);
}

void CostLedger::sub(double usd_per_hour) { reserved_ -= usd_per_hour; }

}  // namespace cronets::econ
