#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/overlay.h"
#include "topo/types.h"

namespace cronets::econ {

/// One metering target of a pinned session: traffic leaving `vm_ep` toward
/// `egress` at `usd_per_gb`. A direct session carries exactly one zero-rate
/// cell (vm_ep = -1) so delivered traffic is metered even when nothing is
/// billed; a one-hop relay carries one transit cell; a multi-hop chain
/// carries one backbone cell per intermediate hop plus the exit transit
/// cell — the chain pays egress at every hop.
struct BillCell {
  int vm_ep = -1;  ///< egressing overlay VM (-1: no rented VM involved)
  topo::Region egress = topo::Region::kNaEast;  ///< where the bytes go
  core::PathKind kind = core::PathKind::kDirect;
  double usd_per_gb = 0.0;
};

/// Deterministic metered-billing book: GB and USD accumulated per
/// (overlay VM, egress region, path kind) cell. A plain value type, same
/// discipline as the NIC ledger: each shard's session table keeps its own
/// book while every metering event also lands in one shared global ledger,
/// written on the single-threaded control plane in global event order — so
/// the global ledger's doubles (and its fingerprint) are bitwise identical
/// at any shard count, thread count, and SIMD level, while the per-shard
/// books sum to it within float tolerance.
class BillingLedger {
 public:
  /// Accumulate `gb` (and gb x rate USD) into the cell.
  void meter(const BillCell& cell, double gb);

  /// Meter one session's accrual: every cell of its bill is charged the
  /// same delivered `gb` (a multi-hop chain pays at each hop), while the
  /// delivered counter advances once — so delivered_gb() stays the
  /// end-to-end transfer volume, not the hop-inflated billing volume.
  void meter_session(const std::vector<BillCell>& bills, double gb);

  /// Totals, summed over cells in sorted-key order (fixed fold order:
  /// bitwise deterministic for a given metering sequence).
  double total_gb() const;
  double total_usd() const;
  /// End-to-end GB delivered across all metered sessions (accumulated in
  /// meter order — deterministic on the global ledger, which is written in
  /// global event order).
  double delivered_gb() const { return delivered_gb_; }
  /// Per-path-kind slices (same fold order).
  double kind_gb(core::PathKind kind) const;
  double kind_usd(core::PathKind kind) const;

  std::size_t cell_count() const { return cells_.size(); }
  std::uint64_t meter_events() const { return meter_events_; }

  /// Order-insensitive-by-construction fingerprint: cells are hashed in
  /// sorted-key order over the exact bit patterns of their accumulated
  /// doubles. Two ledgers fed the same per-cell sequences fingerprint
  /// identically regardless of cell creation order.
  std::uint64_t fingerprint() const;

 private:
  struct Cell {
    double gb = 0.0;
    double usd = 0.0;
  };
  static std::uint64_t key_of(const BillCell& cell);
  void sorted_keys(std::vector<std::uint64_t>* out) const;

  std::unordered_map<std::uint64_t, Cell> cells_;
  std::uint64_t meter_events_ = 0;
  double delivered_gb_ = 0.0;
};

/// Reserved-spend book mirroring the NIC ledger: each admitted paid
/// session reserves its demand's spend rate (USD/hour) here; releases
/// return it. The budget policy checks admissions against the shared
/// global instance — budgets, like NICs, don't multiply with shards.
class CostLedger {
 public:
  void add(double usd_per_hour);
  void sub(double usd_per_hour);
  double reserved_usd_per_hour() const { return reserved_; }
  double peak_usd_per_hour() const { return peak_; }

 private:
  double reserved_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace cronets::econ
