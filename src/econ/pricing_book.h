#pragma once

#include "core/cost.h"
#include "topo/types.h"

namespace cronets::econ {

/// Online ranking objectives the economics plane offers the broker
/// (selected via CRONETS_COST_POLICY; EXPERIMENTS.md documents each).
enum class CostPolicy {
  /// Rank on smoothed goodput only — the pre-econ broker, bit for bit.
  kPerformance,
  /// Rank on goodput, but admission reserves each paid session's spend
  /// rate against a fleet budget (mirroring the NIC ledger): over budget,
  /// paid candidates are denied and the session falls to cheaper paths.
  kMaxGoodputUnderBudget,
  /// Among candidates meeting the SLO, prefer the cheapest ($/GB);
  /// below the SLO everywhere, fall back to max goodput.
  kMinCostMeetingSlo,
  /// Blend normalized goodput and $/GB with a tunable alpha knob
  /// (alpha = 1 is pure performance, alpha = 0 pure cost).
  kPareto,
};

inline const char* cost_policy_name(CostPolicy p) {
  switch (p) {
    case CostPolicy::kPerformance: return "performance";
    case CostPolicy::kMaxGoodputUnderBudget: return "max_goodput_under_budget";
    case CostPolicy::kMinCostMeetingSlo: return "min_cost_meeting_slo";
    case CostPolicy::kPareto: return "pareto";
  }
  return "?";
}

/// Per-region online pricing, built on the paper-era core::CloudPricing
/// (§VII-D: the same Softlayer-2015 numbers the offline cost model uses).
/// Egress is charged per GB leaving a rented VM; traffic riding the cloud
/// backbone between two DCs is cheaper than transit egress toward the
/// public Internet, and region-pair multipliers make long-haul (and
/// remote-region) egress dearer, as on real clouds.
struct PricingBook {
  core::CloudPricing cloud;  ///< VM rental + port tiers + overage rate

  /// Base $/GB of VM egress toward the public Internet (defaults to the
  /// paper's per-GB overage rate — the marginal cost of relayed traffic).
  double transit_usd_per_gb = 0.09;
  /// Base $/GB of DC-to-DC traffic over the provider backbone (multi-hop
  /// chains pay this at every intermediate hop).
  double backbone_usd_per_gb = 0.02;
  /// Region-pair multipliers on either base rate.
  double same_continent_multiplier = 1.1;   ///< e.g. NA-east <-> NA-west
  double intercontinental_multiplier = 1.5;
  /// South America / Australia endpoints (sparse 2015-era connectivity).
  double remote_region_multiplier = 2.0;
  /// Amortization denominator: hours in a billing month.
  double hours_per_month = 730.0;
};

/// $/GB for traffic egressing a VM in `from` toward `to` (`backbone` =
/// DC-to-DC over the provider backbone, else transit toward the public
/// Internet). Pure function of the book and the region pair.
double egress_usd_per_gb(const PricingBook& book, topo::Region from,
                         topo::Region to, bool backbone);

/// Amortized $/hour of one rented overlay node at the given port speed
/// (monthly rental + port-tier upcharge, spread over hours_per_month).
double vm_hour_usd(const PricingBook& book, int port_mbps,
                   bool bare_metal = false);

/// The book's reference $/GB (the plain transit rate), used to normalize
/// candidate costs in the pareto and min-cost objectives.
double reference_usd_per_gb(const PricingBook& book);

/// Everything the broker needs to run cost-aware: the book (null = the
/// whole economics plane off, rankings bitwise unchanged), the policy,
/// and the policy knobs. Lives inside service::RankerConfig.
struct EconConfig {
  const PricingBook* pricing = nullptr;
  CostPolicy policy = CostPolicy::kPerformance;
  /// Fleet-wide reserved-spend cap in USD/hour for
  /// kMaxGoodputUnderBudget; 0 = unlimited (the budget gate is off).
  double budget_usd_per_hour = 0.0;
  /// kPareto: weight of normalized goodput vs normalized $/GB, in [0, 1].
  double pareto_alpha = 0.5;
  /// kMinCostMeetingSlo: a candidate "meets the SLO" when its smoothed
  /// score is at least this. Defaults to the churn workload's top demand.
  double slo_bps = 4e6;
  /// kPareto: goodput normalizer (the 100 Mbps overlay NIC).
  double pareto_ref_bps = 100e6;
};

/// Read CRONETS_COST_POLICY, CRONETS_COST_BUDGET_USD (USD/hour, clamped
/// to [0, 1e9]) and CRONETS_PARETO_ALPHA (clamped to [0, 1]) into an
/// EconConfig bound to `pricing`. Garbage values warn once and fall back
/// to the defaults above (sim/env.h parsing rules).
EconConfig econ_config_from_env(const PricingBook* pricing);

}  // namespace cronets::econ
