#include "econ/pricing_book.h"

#include <algorithm>

#include "sim/env.h"

namespace cronets::econ {

namespace {

/// Continent grouping of the coarse regions: NA east/west share one.
int continent_of(topo::Region r) {
  switch (r) {
    case topo::Region::kNaEast:
    case topo::Region::kNaWest: return 0;
    case topo::Region::kEurope: return 1;
    case topo::Region::kAsia: return 2;
    case topo::Region::kSouthAmerica: return 3;
    case topo::Region::kAustralia: return 4;
  }
  return -1;
}

bool is_remote(topo::Region r) {
  return r == topo::Region::kSouthAmerica || r == topo::Region::kAustralia;
}

}  // namespace

double egress_usd_per_gb(const PricingBook& book, topo::Region from,
                         topo::Region to, bool backbone) {
  const double base =
      backbone ? book.backbone_usd_per_gb : book.transit_usd_per_gb;
  double mult = 1.0;
  if (from != to) {
    mult = continent_of(from) == continent_of(to)
               ? book.same_continent_multiplier
               : book.intercontinental_multiplier;
    if (is_remote(from) || is_remote(to)) {
      mult = std::max(mult, book.remote_region_multiplier);
    }
  }
  return base * mult;
}

double vm_hour_usd(const PricingBook& book, int port_mbps, bool bare_metal) {
  double monthly = bare_metal ? book.cloud.bare_metal_monthly_usd
                              : book.cloud.vm_monthly_usd;
  if (port_mbps >= 10000) {
    monthly += book.cloud.port_10g_upcharge_usd;
  } else if (port_mbps >= 1000) {
    monthly += book.cloud.port_1g_upcharge_usd;
  }
  return monthly / book.hours_per_month;
}

double reference_usd_per_gb(const PricingBook& book) {
  return book.transit_usd_per_gb;
}

EconConfig econ_config_from_env(const PricingBook* pricing) {
  EconConfig cfg;
  cfg.pricing = pricing;
  const int p = sim::env_choice("CRONETS_COST_POLICY", 0,
                                {"performance", "max_goodput_under_budget",
                                 "min_cost_meeting_slo", "pareto"});
  cfg.policy = static_cast<CostPolicy>(p);
  cfg.budget_usd_per_hour =
      sim::env_double_clamped("CRONETS_COST_BUDGET_USD", 0.0, 0.0, 1e9);
  cfg.pareto_alpha =
      sim::env_double_clamped("CRONETS_PARETO_ALPHA", 0.5, 0.0, 1.0);
  return cfg;
}

}  // namespace cronets::econ
