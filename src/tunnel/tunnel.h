#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>

#include "net/host.h"
#include "net/packet.h"
#include "net/types.h"

namespace cronets::tunnel {

enum class TunnelMode {
  kGre,    ///< cleartext inner headers (split-TCP possible downstream)
  kIpsec,  ///< encrypted inner headers; higher per-packet overhead
};

std::int64_t overhead_bytes(TunnelMode mode);
net::IpProto tunnel_proto(TunnelMode mode);

/// Client-side tunnel device. Installed on an endpoint host, it
/// encapsulates locally-originated packets whose destination has a tunnel
/// route (via Host's output hook) and decapsulates return traffic arriving
/// from the overlay node (via the packet-filter chain).
class TunnelClient : public net::PacketFilter {
 public:
  explicit TunnelClient(net::Host* host);

  /// Route traffic destined to `dst` through overlay node `via`.
  void add_tunnel_route(net::IpAddr dst, net::IpAddr via, TunnelMode mode);
  void remove_tunnel_route(net::IpAddr dst);

  Verdict process(net::Packet& pkt, net::Host& host) override;

  std::uint64_t encapsulated() const { return encapsulated_; }
  std::uint64_t decapsulated() const { return decapsulated_; }

 private:
  void on_output(net::Packet& pkt);

  struct Route {
    net::IpAddr via;
    TunnelMode mode;
  };
  net::Host* host_;
  std::unordered_map<net::IpAddr, Route> routes_;
  std::uint64_t encapsulated_ = 0;
  std::uint64_t decapsulated_ = 0;
};

/// Overlay-node datapath: decapsulates tunnelled packets, applies a
/// masquerade NAT (Linux IP-masquerade style — the inner source becomes the
/// overlay node's own address, so the far endpoint needs no tunnel), and
/// forwards. Return traffic is matched by external port, un-NATted, and
/// re-encapsulated back to the originating endpoint.
class OverlayDatapath : public net::PacketFilter {
 public:
  explicit OverlayDatapath(net::Host* host);

  Verdict process(net::Packet& pkt, net::Host& host) override;

  std::uint64_t forwarded_out() const { return forwarded_out_; }
  std::uint64_t forwarded_back() const { return forwarded_back_; }
  std::size_t nat_entries() const { return by_ext_port_.size(); }

 private:
  struct NatEntry {
    net::IpAddr orig_src;
    net::TransportPort orig_sport = 0;
    net::IpAddr peer;
    net::TransportPort peer_port = 0;
    TunnelMode mode = TunnelMode::kGre;
  };
  using FlowKey = std::tuple<std::uint32_t, net::TransportPort, std::uint32_t,
                             net::TransportPort>;

  Verdict handle_tunnelled(net::Packet& pkt, net::Host& host, TunnelMode mode);
  Verdict handle_return(net::Packet& pkt, net::Host& host);
  void send_time_exceeded(net::Host& host, const net::Packet& original);

  net::Host* host_;
  std::map<FlowKey, net::TransportPort> by_flow_;
  std::unordered_map<net::TransportPort, NatEntry> by_ext_port_;
  // ICMP probes NATted by probe id (tunnelled traceroute support).
  std::unordered_map<std::uint32_t, std::pair<net::IpAddr, TunnelMode>> icmp_map_;
  net::TransportPort next_ext_port_ = 40000;
  std::uint64_t forwarded_out_ = 0;
  std::uint64_t forwarded_back_ = 0;
};

}  // namespace cronets::tunnel
