#include "tunnel/tunnel.h"

#include <cassert>

namespace cronets::tunnel {

using net::Host;
using net::IpAddr;
using net::IpProto;
using net::Packet;

std::int64_t overhead_bytes(TunnelMode mode) {
  return mode == TunnelMode::kGre ? net::kGreOverheadBytes : net::kEspOverheadBytes;
}

IpProto tunnel_proto(TunnelMode mode) {
  return mode == TunnelMode::kGre ? IpProto::kGre : IpProto::kEsp;
}

namespace {
bool is_tunnel_proto(IpProto p) { return p == IpProto::kGre || p == IpProto::kEsp; }
}  // namespace

// ------------------------------------------------------------- TunnelClient

TunnelClient::TunnelClient(net::Host* host) : host_(host) {
  host_->add_filter(this);
  host_->set_output_hook([this](Packet& pkt) { on_output(pkt); });
}

void TunnelClient::add_tunnel_route(IpAddr dst, IpAddr via, TunnelMode mode) {
  routes_[dst] = Route{via, mode};
}

void TunnelClient::remove_tunnel_route(IpAddr dst) { routes_.erase(dst); }

void TunnelClient::on_output(Packet& pkt) {
  if (is_tunnel_proto(pkt.outer().proto)) return;  // already encapsulated
  auto it = routes_.find(pkt.outer().dst);
  if (it == routes_.end()) return;
  pkt.headers.push_back(net::Ipv4Header{.src = host_->addr(),
                                        .dst = it->second.via,
                                        .proto = tunnel_proto(it->second.mode),
                                        .encap_overhead =
                                            overhead_bytes(it->second.mode)});
  ++encapsulated_;
}

net::PacketFilter::Verdict TunnelClient::process(Packet& pkt, Host& host) {
  if (!is_tunnel_proto(pkt.outer().proto)) return Verdict::kPass;
  if (pkt.outer().dst != host.addr()) return Verdict::kPass;
  if (pkt.headers.size() < 2) return Verdict::kPass;
  pkt.headers.pop_back();
  ++decapsulated_;
  // Inner packet is addressed to us; let normal delivery continue.
  return Verdict::kPass;
}

// ---------------------------------------------------------- OverlayDatapath

OverlayDatapath::OverlayDatapath(net::Host* host) : host_(host) {
  host_->add_filter(this);
}

net::PacketFilter::Verdict OverlayDatapath::process(Packet& pkt, Host& host) {
  if (is_tunnel_proto(pkt.outer().proto) && pkt.outer().dst == host.addr() &&
      pkt.headers.size() >= 2) {
    const TunnelMode mode =
        pkt.outer().proto == IpProto::kGre ? TunnelMode::kGre : TunnelMode::kIpsec;
    return handle_tunnelled(pkt, host, mode);
  }
  if (pkt.outer().dst == host.addr()) {
    return handle_return(pkt, host);
  }
  return Verdict::kPass;
}

net::PacketFilter::Verdict OverlayDatapath::handle_tunnelled(Packet& pkt, Host& host,
                                                             TunnelMode mode) {
  pkt.headers.pop_back();  // decapsulate

  // The overlay node is a router-like hop for the inner packet.
  if (--pkt.ttl <= 0) {
    send_time_exceeded(host, pkt);
    return Verdict::kConsumed;
  }

  if (pkt.is_tcp()) {
    auto& seg = pkt.tcp();
    auto& hdr = pkt.outer();  // now the inner header
    const FlowKey key{hdr.src.value(), seg.sport, hdr.dst.value(), seg.dport};
    auto it = by_flow_.find(key);
    net::TransportPort ext;
    if (it == by_flow_.end()) {
      ext = next_ext_port_++;
      by_flow_[key] = ext;
      by_ext_port_[ext] =
          NatEntry{hdr.src, seg.sport, hdr.dst, seg.dport, mode};
    } else {
      ext = it->second;
    }
    // Masquerade: source becomes the overlay node itself.
    hdr.src = host.addr();
    seg.sport = ext;
    ++forwarded_out_;
    host.forward(std::move(pkt));
    return Verdict::kConsumed;
  }

  if (pkt.is_icmp()) {
    auto& hdr = pkt.outer();
    icmp_map_[pkt.icmp().probe_id] = {hdr.src, mode};
    hdr.src = host.addr();
    ++forwarded_out_;
    host.forward(std::move(pkt));
    return Verdict::kConsumed;
  }

  return Verdict::kConsumed;  // unknown inner protocol: drop
}

net::PacketFilter::Verdict OverlayDatapath::handle_return(Packet& pkt, Host& host) {
  if (pkt.is_tcp()) {
    auto it = by_ext_port_.find(pkt.tcp().dport);
    if (it == by_ext_port_.end()) return Verdict::kPass;  // node's own traffic
    const NatEntry& e = it->second;
    // Reverse translation + re-encapsulation toward the origin endpoint.
    pkt.outer().dst = e.orig_src;
    pkt.tcp().dport = e.orig_sport;
    pkt.headers.push_back(net::Ipv4Header{.src = host.addr(),
                                          .dst = e.orig_src,
                                          .proto = tunnel_proto(e.mode),
                                          .encap_overhead = overhead_bytes(e.mode)});
    ++forwarded_back_;
    host.forward(std::move(pkt));
    return Verdict::kConsumed;
  }
  if (pkt.is_icmp()) {
    auto it = icmp_map_.find(pkt.icmp().probe_id);
    if (it == icmp_map_.end()) return Verdict::kPass;
    pkt.outer().dst = it->second.first;
    pkt.headers.push_back(net::Ipv4Header{
        .src = host.addr(),
        .dst = it->second.first,
        .proto = tunnel_proto(it->second.second),
        .encap_overhead = overhead_bytes(it->second.second)});
    ++forwarded_back_;
    host.forward(std::move(pkt));
    return Verdict::kConsumed;
  }
  return Verdict::kPass;
}

void OverlayDatapath::send_time_exceeded(Host& host, const Packet& original) {
  Packet reply;
  reply.headers.push_back(net::Ipv4Header{
      .src = host.addr(), .dst = original.outer().src, .proto = IpProto::kIcmp});
  net::IcmpMessage msg;
  msg.type = net::IcmpType::kTimeExceeded;
  msg.original_dst = original.outer().dst;
  if (original.is_icmp()) {
    msg.probe_id = original.icmp().probe_id;
    msg.original_ttl = original.icmp().original_ttl;
  }
  reply.body = msg;
  host.send(std::move(reply));
}

}  // namespace cronets::tunnel
