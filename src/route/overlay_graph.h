#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/batch_sampler.h"
#include "model/flow_model.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::route {

/// The routing plane's view of the cloud: one node per data-center VM
/// endpoint, one directed edge per ordered DC pair, riding the private
/// backbone (topo::Internet::cached_backbone_path). Edges carry EWMA
/// estimates of backbone TCP rate and delay, refreshed once per routing
/// round through the SoA batch sampler — the same measurement kernel the
/// probe sweeps use, so an edge estimate is bitwise a pure function of
/// (seed, src VM, dst VM, t) at every SIMD level.
///
/// Liveness piggybacks on the Internet's mutation listeners: a BGP
/// adjacency change (chaos DC outages flip every adjacency of one cloud
/// AS) re-derives per-node up/down eagerly and bumps `liveness_epoch`, so
/// routes composed before the outage can be recognized as stale without
/// polling. Backbone links are plain links, not AS adjacencies — they stay
/// "up" through a DC outage, and reachability is gated purely on node
/// liveness, mirroring how a provider's WAN survives one site going dark.
class OverlayGraph {
 public:
  OverlayGraph(topo::Internet* topo, const model::FlowModel* flow,
               std::uint64_t seed, double ewma_alpha);
  ~OverlayGraph();
  OverlayGraph(const OverlayGraph&) = delete;
  OverlayGraph& operator=(const OverlayGraph&) = delete;

  int size() const { return n_; }
  int node_ep(int i) const { return eps_[static_cast<std::size_t>(i)]; }
  /// Node index of a DC VM endpoint; -1 for non-DC endpoints.
  int node_of_ep(int ep) const {
    const auto it = node_of_ep_.find(ep);
    return it == node_of_ep_.end() ? -1 : it->second;
  }
  bool node_up(int i) const { return up_[static_cast<std::size_t>(i)] != 0; }
  /// Bumped by every BGP adjacency change (the only mutation that can
  /// change node liveness). Part of RoutePlane::route_version.
  std::uint64_t liveness_epoch() const { return liveness_epoch_; }

  /// Measure every directed backbone edge at time `t` and fold the result
  /// into the EWMA estimates. All n*(n-1) edges are measured every round
  /// regardless of liveness — constant work per round, and a recovering DC
  /// has fresh estimates the moment it is back up.
  void measure_all(sim::Time t);

  bool edge_measured(int i, int j) const { return edge(i, j).measured; }
  double ewma_bps(int i, int j) const { return edge(i, j).ewma_bps; }
  double ewma_delay_ms(int i, int j) const { return edge(i, j).ewma_delay_ms; }
  double last_bps(int i, int j) const { return edge(i, j).last_bps; }
  double last_delay_ms(int i, int j) const { return edge(i, j).last_delay_ms; }

  int rounds_measured() const { return rounds_measured_; }

 private:
  struct EdgeState {
    topo::PathRef path;  ///< interned backbone segment (pins the pointer)
    double ewma_bps = 0.0;
    double ewma_delay_ms = 0.0;
    double last_bps = 0.0;
    double last_delay_ms = 0.0;
    bool measured = false;
  };

  const EdgeState& edge(int i, int j) const {
    return edges_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(j)];
  }
  EdgeState& edge(int i, int j) {
    return edges_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(j)];
  }
  void refresh_liveness();

  topo::Internet* topo_;
  const model::FlowModel* flow_;
  std::uint64_t seed_;
  double alpha_;

  int n_ = 0;
  std::vector<int> eps_;  ///< node index -> DC VM endpoint id
  std::vector<int> as_;   ///< node index -> cloud AS id
  std::unordered_map<int, int> node_of_ep_;
  std::vector<char> up_;
  std::uint64_t liveness_epoch_ = 0;
  int listener_id_ = -1;
  int rounds_measured_ = 0;

  std::vector<EdgeState> edges_;  ///< n*n row-major; diagonal unused

  // Batched measurement machinery (scratch persists across rounds so a
  // warm round allocates nothing).
  model::BatchSampler sampler_;
  std::vector<int> handles_;  ///< per edge, row-major skipping the diagonal
  bool handles_valid_ = false;
  std::vector<model::PathMetrics> metrics_;
  std::vector<double> rtt_ms_, loss_, residual_bps_, capacity_bps_,
      rwnd_bytes_, pftk_bps_;
};

}  // namespace cronets::route
