#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/batch_sampler.h"
#include "model/flow_model.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::route {

/// Probing knobs of the overlay graph (a slice of route::RouteConfig,
/// duplicated here so the graph does not depend on the policy header).
struct MeasureConfig {
  double ewma_alpha = 0.3;
  /// An edge is due for a re-probe once it has gone this many rounds
  /// without one. 1 = probe everything every round (the pre-incremental
  /// behaviour).
  int probe_interval_rounds = 8;
  /// Edges re-probed per round on staleness alone; 0 = auto, one
  /// interval's worth of the mesh (ceil(E / probe_interval_rounds)), so
  /// the steady-state backlog never grows. Dirty edges (mutations, never
  /// measured) bypass the budget — they are probed the round they appear.
  int probe_budget = 0;
  /// Relative EWMA change that re-latches the policy-facing metric of an
  /// edge. Policies read the latched values, so estimate jitter below the
  /// threshold provably cannot change any routing decision — that is what
  /// lets the incremental exchange skip untouched (agent, destination)
  /// rows while staying bitwise identical to the full recompute.
  double metric_threshold = 0.10;
  /// Selection structure: the ordered due-set (ProbeScheduler idiom) or
  /// the stateless full-scan reference. Both produce the same probe set
  /// by construction; CRONETS_ROUTE_INCREMENTAL=0 runs the reference so
  /// the equivalence is continuously re-proven by the fingerprint gates.
  bool incremental = true;
};

/// The routing plane's view of the cloud: one node per data-center VM
/// endpoint, one directed edge per ordered DC pair, riding the private
/// backbone (topo::Internet::cached_backbone_path). Edges carry EWMA
/// estimates of backbone TCP rate and delay, refreshed through the SoA
/// batch sampler — the same measurement kernel the probe sweeps use, so an
/// edge estimate is bitwise a pure function of (seed, src VM, dst VM, t)
/// at every SIMD level, and of the probe schedule, which is itself a pure
/// function of the mutation timeline.
///
/// Probing is incremental: each edge carries a staleness key (the round it
/// was last probed; -1 = dirty, probe now). A round probes every dirty
/// edge plus up to `probe_budget` of the most-stale due edges, so a
/// quiescent mesh costs E/interval edge measurements per round instead of
/// E. Mutation listeners feed the dirty set: a transient link event marks
/// every edge whose backbone path crosses the link dirty at the event's
/// start and end, and a BGP adjacency change marks the flipped DC's edges
/// dirty — so faults are re-measured the next round, not an interval later.
///
/// Liveness piggybacks on the Internet's mutation listeners: a BGP
/// adjacency change (chaos DC outages flip every adjacency of one cloud
/// AS) re-derives per-node up/down eagerly and bumps `liveness_epoch`, so
/// routes composed before the outage can be recognized as stale without
/// polling. Backbone links are plain links, not AS adjacencies — they stay
/// "up" through a DC outage, and reachability is gated purely on node
/// liveness, mirroring how a provider's WAN survives one site going dark.
class OverlayGraph {
 public:
  OverlayGraph(topo::Internet* topo, const model::FlowModel* flow,
               std::uint64_t seed, MeasureConfig cfg);
  ~OverlayGraph();
  OverlayGraph(const OverlayGraph&) = delete;
  OverlayGraph& operator=(const OverlayGraph&) = delete;

  int size() const { return n_; }
  int node_ep(int i) const { return eps_[static_cast<std::size_t>(i)]; }
  /// Node index of a DC VM endpoint; -1 for non-DC endpoints.
  int node_of_ep(int ep) const {
    const auto it = node_of_ep_.find(ep);
    return it == node_of_ep_.end() ? -1 : it->second;
  }
  bool node_up(int i) const { return up_[static_cast<std::size_t>(i)] != 0; }
  /// Bumped by every BGP adjacency change (the only mutation that can
  /// change node liveness). Part of RoutePlane::route_version.
  std::uint64_t liveness_epoch() const { return liveness_epoch_; }

  /// One measurement round at time `t`: probe every dirty edge plus the
  /// budgeted most-stale due edges, fold the samples into the EWMA
  /// estimates, and re-latch policy metrics that moved past the threshold.
  void measure(sim::Time t);

  bool edge_measured(int i, int j) const { return edge(i, j).measured; }
  double ewma_bps(int i, int j) const { return edge(i, j).ewma_bps; }
  double ewma_delay_ms(int i, int j) const { return edge(i, j).ewma_delay_ms; }
  double last_bps(int i, int j) const { return edge(i, j).last_bps; }
  double last_delay_ms(int i, int j) const { return edge(i, j).last_delay_ms; }
  /// Latched policy metrics: the EWMA as of its last threshold crossing.
  /// Both exchange policies read only these, so between latch moves their
  /// inputs are frozen — the incremental skip set falls out of that.
  double metric_bps(int i, int j) const { return edge(i, j).metric_bps; }
  double metric_delay_ms(int i, int j) const {
    return edge(i, j).metric_delay_ms;
  }

  int rounds_measured() const { return rounds_measured_; }
  const MeasureConfig& config() const { return cfg_; }
  /// The resolved per-round staleness budget (auto = ceil(E/interval)).
  int resolved_budget() const { return budget_; }

  /// Edges probed in the latest round / since construction.
  int edges_probed_last_round() const { return probed_last_round_; }
  std::uint64_t edges_probed_total() const { return probed_total_; }

  /// Rows (source nodes) with a delay-latch move in the latest round; the
  /// delay policy re-relaxes exactly these rows plus the dirty
  /// destinations. Valid until the next measure().
  const std::vector<char>& delay_dirty_rows() const {
    return delay_dirty_rows_;
  }
  /// Any rate (bps) latch moved in the latest round. Backpressure weights
  /// couple every commodity to every edge rate, so one rate move wakes
  /// all virtual-queue columns for one round.
  bool rate_latch_moved() const { return rate_latch_moves_round_ > 0; }
  std::uint64_t latch_moves_total() const { return latch_moves_total_; }

 private:
  struct EdgeState {
    topo::PathRef path;  ///< interned backbone segment (pins the pointer)
    double ewma_bps = 0.0;
    double ewma_delay_ms = 0.0;
    double last_bps = 0.0;
    double last_delay_ms = 0.0;
    double metric_bps = 0.0;       ///< latched (policy-facing) rate
    double metric_delay_ms = 0.0;  ///< latched (policy-facing) delay
    bool measured = false;
  };

  const EdgeState& edge(int i, int j) const {
    return edges_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(j)];
  }
  EdgeState& edge(int i, int j) {
    return edges_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(j)];
  }
  void refresh_liveness(std::vector<int>* flipped = nullptr);
  void mark_dirty(int e);
  void mark_node_edges_dirty(int node);
  void note_link_event(const topo::LinkEvent& ev);
  void select_due(std::vector<int>* out);

  topo::Internet* topo_;
  const model::FlowModel* flow_;
  std::uint64_t seed_;
  MeasureConfig cfg_;
  int budget_ = 0;

  int n_ = 0;
  std::vector<int> eps_;  ///< node index -> DC VM endpoint id
  std::vector<int> as_;   ///< node index -> cloud AS id
  std::unordered_map<int, int> node_of_ep_;
  std::vector<char> up_;
  std::uint64_t liveness_epoch_ = 0;
  int listener_id_ = -1;
  int rounds_measured_ = 0;

  std::vector<EdgeState> edges_;  ///< n*n row-major; diagonal unused

  // Staleness/dirty bookkeeping. `last_round_[e]` is the round the edge
  // was last probed (-1 = dirty: never measured, or touched by a
  // mutation). The incremental selection keeps the same keys in an
  // ordered due-set, (key, edge) ascending — the ProbeScheduler idiom —
  // whose prefix walk reproduces the full scan's sort exactly.
  std::vector<int> last_round_;            ///< n*n, keyed like edges_
  std::set<std::pair<int, int>> due_set_;  ///< (last_round, edge id)
  std::vector<std::pair<std::int64_t, int>> pending_dirty_;  ///< (ns, edge)
  std::vector<int> selected_;              ///< scratch: this round's probes
  std::vector<std::pair<int, int>> stale_scratch_;

  int probed_last_round_ = 0;
  std::uint64_t probed_total_ = 0;
  std::vector<char> delay_dirty_rows_;
  int rate_latch_moves_round_ = 0;
  std::uint64_t latch_moves_total_ = 0;

  // Batched measurement machinery (scratch persists across rounds so a
  // warm round allocates nothing).
  model::BatchSampler sampler_;
  std::vector<int> handles_;  ///< per edge, row-major skipping the diagonal
  bool handles_valid_ = false;
  std::vector<int> sel_handles_;
  std::vector<model::PathMetrics> metrics_;
  std::vector<double> rtt_ms_, loss_, residual_bps_, capacity_bps_,
      rwnd_bytes_, pftk_bps_;
};

}  // namespace cronets::route
