#pragma once

#include <limits>
#include <vector>

namespace cronets::route {

/// "Unreachable" metric sentinel of the routing tables.
constexpr double kInfMetric = std::numeric_limits<double>::infinity();

/// One destination's entry in a node's routing table. `metric` is
/// policy-defined (EWMA path delay for the delay policy, negated
/// backpressure weight for the backpressure policy) but always ordered so
/// that lower is better; `next = -1` means unreachable this round.
struct RouteEntry {
  int next = -1;          ///< next-hop node index (-1: unreachable)
  double metric = kInfMetric;
  int hops = 0;           ///< overlay hops to the destination via `next`
};

/// Per-overlay-node routing state. Agents hold no pointers into the graph
/// or the plane — a policy round is a pure function of (graph estimates,
/// agent states), which is what makes the exchange trivially deterministic:
/// rounds run in node index order on the single-threaded event queue, and
/// every read of a neighbour's table goes through the round's snapshot.
struct RoutingAgent {
  int node = -1;
  std::vector<RouteEntry> table;  ///< per destination node index
  /// Backpressure per-destination virtual queue (unused by the delay
  /// policy; kept here so the table fingerprint covers all policy state).
  std::vector<double> queue;

  void reset(int node_index, int n) {
    node = node_index;
    table.assign(static_cast<std::size_t>(n), RouteEntry{});
    queue.assign(static_cast<std::size_t>(n), 0.0);
    // Self route: zero cost, zero hops.
    table[static_cast<std::size_t>(node_index)] =
        RouteEntry{node_index, 0.0, 0};
  }
};

}  // namespace cronets::route
