#include "route/overlay_graph.h"

#include <algorithm>
#include <cmath>

#include "sim/hash_rng.h"

namespace cronets::route {

OverlayGraph::OverlayGraph(topo::Internet* topo, const model::FlowModel* flow,
                           std::uint64_t seed, MeasureConfig cfg)
    : topo_(topo), flow_(flow), seed_(seed), cfg_(cfg), sampler_(flow) {
  if (cfg_.probe_interval_rounds < 1) cfg_.probe_interval_rounds = 1;
  eps_ = topo_->dc_endpoints();
  n_ = static_cast<int>(eps_.size());
  as_.resize(eps_.size());
  for (int i = 0; i < n_; ++i) {
    as_[static_cast<std::size_t>(i)] = topo_->endpoint(eps_[i]).as_id;
    node_of_ep_.emplace(eps_[i], i);
  }
  const std::size_t nn =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  edges_.resize(nn);
  handles_.resize(static_cast<std::size_t>(n_) * (n_ > 0 ? n_ - 1 : 0));
  const int num_edges = n_ * (n_ > 0 ? n_ - 1 : 0);
  budget_ = cfg_.probe_budget > 0
                ? cfg_.probe_budget
                : std::max(1, (num_edges + cfg_.probe_interval_rounds - 1) /
                                  cfg_.probe_interval_rounds);
  last_round_.assign(nn, -1);
  if (cfg_.incremental) {
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (j != i) due_set_.insert({-1, i * n_ + j});
      }
    }
  }
  delay_dirty_rows_.assign(eps_.size(), 0);
  up_.assign(eps_.size(), 1);
  refresh_liveness();
  listener_id_ = topo_->add_mutation_listener([this](const topo::Mutation& m) {
    if (m.kind == topo::Mutation::Kind::kAdjacencyChange) {
      std::vector<int> flipped;
      refresh_liveness(&flipped);
      ++liveness_epoch_;
      // A flipped DC's edges are re-probed next round, so a recovering DC
      // has fresh estimates the moment it is back up.
      for (int node : flipped) mark_node_edges_dirty(node);
    } else if (m.kind == topo::Mutation::Kind::kTransientEvent) {
      note_link_event(m.event);
    }
  });
  // Episodes armed before this graph existed (benches build the event
  // timeline into the world) still deserve prompt re-probes at their
  // start and end.
  for (const auto& ev : topo_->events()) note_link_event(ev);
}

OverlayGraph::~OverlayGraph() {
  if (listener_id_ >= 0) topo_->remove_mutation_listener(listener_id_);
}

void OverlayGraph::refresh_liveness(std::vector<int>* flipped) {
  // A DC is alive while its cloud AS still has any BGP adjacency up; the
  // chaos engine's kDcOutage takes all of them down at once.
  const auto& ases = topo_->ases();
  for (int i = 0; i < n_; ++i) {
    bool any = false;
    for (const auto& a : ases[static_cast<std::size_t>(as_[i])].adj) {
      if (a.up) {
        any = true;
        break;
      }
    }
    const char now = any ? 1 : 0;
    if (flipped != nullptr && up_[static_cast<std::size_t>(i)] != now) {
      flipped->push_back(i);
    }
    up_[static_cast<std::size_t>(i)] = now;
  }
}

void OverlayGraph::mark_dirty(int e) {
  int& key = last_round_[static_cast<std::size_t>(e)];
  if (key < 0) return;  // already due-now
  if (cfg_.incremental) {
    due_set_.erase({key, e});
    due_set_.insert({-1, e});
  }
  key = -1;
}

void OverlayGraph::mark_node_edges_dirty(int node) {
  for (int j = 0; j < n_; ++j) {
    if (j == node) continue;
    mark_dirty(node * n_ + j);
    mark_dirty(j * n_ + node);
  }
}

void OverlayGraph::note_link_event(const topo::LinkEvent& ev) {
  if (ev.link_id < 0) return;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (j == i) continue;
      const topo::PathRef p = topo_->cached_backbone_path(eps_[i], eps_[j]);
      if (!p || !p->valid) continue;
      for (const auto& tr : p->traversals) {
        if (tr.link_id == ev.link_id) {
          // Probe the edge when the episode starts (see the surge) and
          // again just after it ends (see the recovery), instead of
          // waiting out the staleness interval.
          pending_dirty_.emplace_back(ev.from.ns(), i * n_ + j);
          pending_dirty_.emplace_back(ev.until.ns() + 1, i * n_ + j);
          break;
        }
      }
    }
  }
}

void OverlayGraph::select_due(std::vector<int>* out) {
  out->clear();
  const int due_key = rounds_measured_ - cfg_.probe_interval_rounds;
  if (cfg_.incremental) {
    // Ordered due-set prefix walk (the ProbeScheduler idiom): dirty edges
    // (key -1) first in edge order and budget-exempt, then the stale due
    // edges most-stale-first with edge-index tie-break.
    int taken = 0;
    for (const auto& [key, e] : due_set_) {
      if (key < 0) {
        out->push_back(e);
        continue;
      }
      if (key > due_key || taken >= budget_) break;
      out->push_back(e);
      ++taken;
    }
  } else {
    // Stateless full-scan reference: identical selection by construction.
    stale_scratch_.clear();
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (j == i) continue;
        const int e = i * n_ + j;
        const int key = last_round_[static_cast<std::size_t>(e)];
        if (key < 0) {
          out->push_back(e);
        } else if (key <= due_key) {
          stale_scratch_.emplace_back(key, e);
        }
      }
    }
    std::sort(stale_scratch_.begin(), stale_scratch_.end());
    const int take =
        std::min(budget_, static_cast<int>(stale_scratch_.size()));
    for (int s = 0; s < take; ++s) out->push_back(stale_scratch_[s].second);
  }
}

void OverlayGraph::measure(sim::Time t) {
  std::fill(delay_dirty_rows_.begin(), delay_dirty_rows_.end(), 0);
  rate_latch_moves_round_ = 0;
  probed_last_round_ = 0;
  if (handles_.empty()) {
    ++rounds_measured_;
    return;
  }
  // Scheduled dirty marks (link-event start/end) that have come due.
  if (!pending_dirty_.empty()) {
    std::size_t w = 0;
    for (const auto& pd : pending_dirty_) {
      if (pd.first <= t.ns()) {
        mark_dirty(pd.second);
      } else {
        pending_dirty_[w++] = pd;
      }
    }
    pending_dirty_.resize(w);
  }

  const bool reset = sampler_.begin_batch();
  if (reset || !handles_valid_) {
    std::size_t k = 0;
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (j == i) continue;
        EdgeState& e = edge(i, j);
        e.path = topo_->cached_backbone_path(eps_[i], eps_[j]);
        handles_[k++] = sampler_.intern(e.path);
      }
    }
    handles_valid_ = true;
  }

  select_due(&selected_);
  const std::size_t m = selected_.size();
  if (m > 0) {
    sel_handles_.resize(m);
    metrics_.resize(m);
    for (std::size_t s = 0; s < m; ++s) {
      const int e = selected_[s];
      const int i = e / n_;
      const int j = e % n_;
      const std::size_t k = static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(n_ - 1) +
                            static_cast<std::size_t>(j < i ? j : j - 1);
      sel_handles_[s] = handles_[k];
    }
    sampler_.sample_batch(sel_handles_.data(), m, t, metrics_.data());

    // Flat PFTK over the probed edges (SIMD-dispatched, bitwise
    // level-invariant), then the same two per-edge noise draws
    // FlowModel::tcp_throughput makes, from a stream keyed on
    // (seed, src VM, dst VM, t) — so an edge estimate never depends on
    // measurement order or on which other edges share the batch.
    const model::TcpModelParams& p = flow_->params();
    rtt_ms_.clear();
    loss_.clear();
    residual_bps_.clear();
    capacity_bps_.clear();
    rwnd_bytes_.clear();
    for (std::size_t s = 0; s < m; ++s) {
      const int j = selected_[s] % n_;
      model::PathMetrics& mm = metrics_[s];
      mm.rwnd_bytes = static_cast<double>(topo_->endpoint(eps_[j]).rcv_buf);
      rtt_ms_.push_back(mm.rtt_ms);
      loss_.push_back(mm.loss);
      residual_bps_.push_back(mm.residual_bps);
      capacity_bps_.push_back(mm.capacity_bps);
      rwnd_bytes_.push_back(mm.rwnd_bytes);
    }
    pftk_bps_.resize(m);
    model::pftk_throughput_batch(m, rtt_ms_.data(), loss_.data(),
                                 residual_bps_.data(), capacity_bps_.data(),
                                 rwnd_bytes_.data(), p, pftk_bps_.data());

    const double sigma = p.noise_sigma;
    const double alpha = cfg_.ewma_alpha;
    const double th = cfg_.metric_threshold;
    for (std::size_t s = 0; s < m; ++s) {
      const int eid = selected_[s];
      const int i = eid / n_;
      const int j = eid % n_;
      const model::PathMetrics& mm = metrics_[s];
      sim::Rng rng(
          sim::pair_seed(seed_ ^ flow_->seed(), eps_[i], eps_[j], t.ns()));
      double v = pftk_bps_[s];
      const double cap = std::min(mm.residual_bps, mm.capacity_bps);
      if (v > 0.92 * cap) v = cap * rng.uniform(0.88, 0.96);
      v *= std::exp(rng.normal(0.0, sigma));
      EdgeState& e = edge(i, j);
      e.last_bps = v;
      e.last_delay_ms = mm.rtt_ms;
      if (e.measured) {
        e.ewma_bps = alpha * v + (1.0 - alpha) * e.ewma_bps;
        e.ewma_delay_ms = alpha * mm.rtt_ms + (1.0 - alpha) * e.ewma_delay_ms;
      } else {
        e.ewma_bps = v;
        e.ewma_delay_ms = mm.rtt_ms;
        e.measured = true;
      }
      // Re-latch the policy-facing metrics only past the threshold. A
      // fresh edge latches on first sight (|x - 0| > th*0 for any x > 0).
      if (std::abs(e.ewma_bps - e.metric_bps) > th * e.metric_bps) {
        e.metric_bps = e.ewma_bps;
        ++rate_latch_moves_round_;
        ++latch_moves_total_;
      }
      if (std::abs(e.ewma_delay_ms - e.metric_delay_ms) >
          th * e.metric_delay_ms) {
        e.metric_delay_ms = e.ewma_delay_ms;
        delay_dirty_rows_[static_cast<std::size_t>(i)] = 1;
        ++latch_moves_total_;
      }
      const int old_key = last_round_[static_cast<std::size_t>(eid)];
      last_round_[static_cast<std::size_t>(eid)] = rounds_measured_;
      if (cfg_.incremental) {
        due_set_.erase({old_key, eid});
        due_set_.insert({rounds_measured_, eid});
      }
    }
  }
  probed_last_round_ = static_cast<int>(m);
  probed_total_ += m;
  ++rounds_measured_;
}

}  // namespace cronets::route
