#include "route/overlay_graph.h"

#include <algorithm>
#include <cmath>

#include "sim/hash_rng.h"

namespace cronets::route {

OverlayGraph::OverlayGraph(topo::Internet* topo, const model::FlowModel* flow,
                           std::uint64_t seed, double ewma_alpha)
    : topo_(topo),
      flow_(flow),
      seed_(seed),
      alpha_(ewma_alpha),
      sampler_(flow) {
  eps_ = topo_->dc_endpoints();
  n_ = static_cast<int>(eps_.size());
  as_.resize(eps_.size());
  for (int i = 0; i < n_; ++i) {
    as_[static_cast<std::size_t>(i)] = topo_->endpoint(eps_[i]).as_id;
    node_of_ep_.emplace(eps_[i], i);
  }
  edges_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  handles_.resize(static_cast<std::size_t>(n_) * (n_ > 0 ? n_ - 1 : 0));
  up_.assign(eps_.size(), 1);
  refresh_liveness();
  listener_id_ = topo_->add_mutation_listener([this](const topo::Mutation& m) {
    if (m.kind == topo::Mutation::Kind::kAdjacencyChange) {
      refresh_liveness();
      ++liveness_epoch_;
    }
  });
}

OverlayGraph::~OverlayGraph() {
  if (listener_id_ >= 0) topo_->remove_mutation_listener(listener_id_);
}

void OverlayGraph::refresh_liveness() {
  // A DC is alive while its cloud AS still has any BGP adjacency up; the
  // chaos engine's kDcOutage takes all of them down at once.
  const auto& ases = topo_->ases();
  for (int i = 0; i < n_; ++i) {
    bool any = false;
    for (const auto& a : ases[static_cast<std::size_t>(as_[i])].adj) {
      if (a.up) {
        any = true;
        break;
      }
    }
    up_[static_cast<std::size_t>(i)] = any ? 1 : 0;
  }
}

void OverlayGraph::measure_all(sim::Time t) {
  const std::size_t m = handles_.size();
  if (m == 0) return;
  const bool reset = sampler_.begin_batch();
  if (reset || !handles_valid_) {
    std::size_t k = 0;
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (j == i) continue;
        EdgeState& e = edge(i, j);
        e.path = topo_->cached_backbone_path(eps_[i], eps_[j]);
        handles_[k++] = sampler_.intern(e.path);
      }
    }
    handles_valid_ = true;
  }

  metrics_.resize(m);
  sampler_.sample_batch(handles_.data(), m, t, metrics_.data());

  // Flat PFTK over all edges (SIMD-dispatched, bitwise level-invariant),
  // then the same two per-edge noise draws FlowModel::tcp_throughput makes,
  // from a stream keyed on (seed, src VM, dst VM, t) — so an edge estimate
  // never depends on measurement order.
  const model::TcpModelParams& p = flow_->params();
  rtt_ms_.clear();
  loss_.clear();
  residual_bps_.clear();
  capacity_bps_.clear();
  rwnd_bytes_.clear();
  std::size_t k = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (j == i) continue;
      model::PathMetrics& mm = metrics_[k++];
      mm.rwnd_bytes = static_cast<double>(topo_->endpoint(eps_[j]).rcv_buf);
      rtt_ms_.push_back(mm.rtt_ms);
      loss_.push_back(mm.loss);
      residual_bps_.push_back(mm.residual_bps);
      capacity_bps_.push_back(mm.capacity_bps);
      rwnd_bytes_.push_back(mm.rwnd_bytes);
    }
  }
  pftk_bps_.resize(m);
  model::pftk_throughput_batch(m, rtt_ms_.data(), loss_.data(),
                               residual_bps_.data(), capacity_bps_.data(),
                               rwnd_bytes_.data(), p, pftk_bps_.data());

  const double sigma = p.noise_sigma;
  k = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (j == i) continue;
      const model::PathMetrics& mm = metrics_[k];
      sim::Rng rng(
          sim::pair_seed(seed_ ^ flow_->seed(), eps_[i], eps_[j], t.ns()));
      double v = pftk_bps_[k];
      const double cap = std::min(mm.residual_bps, mm.capacity_bps);
      if (v > 0.92 * cap) v = cap * rng.uniform(0.88, 0.96);
      v *= std::exp(rng.normal(0.0, sigma));
      EdgeState& e = edge(i, j);
      e.last_bps = v;
      e.last_delay_ms = mm.rtt_ms;
      if (e.measured) {
        e.ewma_bps = alpha_ * v + (1.0 - alpha_) * e.ewma_bps;
        e.ewma_delay_ms = alpha_ * mm.rtt_ms + (1.0 - alpha_) * e.ewma_delay_ms;
      } else {
        e.ewma_bps = v;
        e.ewma_delay_ms = mm.rtt_ms;
        e.measured = true;
      }
      ++k;
    }
  }
  ++rounds_measured_;
}

}  // namespace cronets::route
