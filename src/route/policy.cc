#include "route/policy.h"

#include <algorithm>
#include <cstring>

#include "sim/env.h"

namespace cronets::route {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kOff:
      return "off";
    case Policy::kDelay:
      return "delay";
    case Policy::kBackpressure:
      return "backpressure";
  }
  return "?";
}

RouteConfig RouteConfig::from_env() {
  RouteConfig cfg;
  const int p = sim::env_choice("CRONETS_ROUTE_POLICY", 0,
                                {"off", "delay", "backpressure"});
  cfg.policy = p == 1   ? Policy::kDelay
               : p == 2 ? Policy::kBackpressure
                        : Policy::kOff;
  // Clamped, not rejected: CRONETS_MAX_HOPS=0 or =99 pulls to the nearest
  // mechanical bound with a one-shot warning.
  cfg.max_hops = static_cast<int>(
      sim::env_int_clamped("CRONETS_MAX_HOPS", cfg.max_hops, 1, 8));
  cfg.incremental = sim::env_int("CRONETS_ROUTE_INCREMENTAL", 1, 0, 1) != 0;
  return cfg;
}

namespace {

/// Bitwise entry comparison (metric by bit pattern): the incremental
/// equivalence claim is bitwise, so the change detector must be too.
bool entry_equal(const RouteEntry& a, const RouteEntry& b) {
  std::uint64_t ma = 0;
  std::uint64_t mb = 0;
  std::memcpy(&ma, &a.metric, sizeof(ma));
  std::memcpy(&mb, &b.metric, sizeof(mb));
  return a.next == b.next && a.hops == b.hops && ma == mb;
}

/// Changed-entry bookkeeping shared by both policies: per-agent bitsets of
/// destinations whose entry changed this round (reported to the plane via
/// RoundContext) and last round (the delta-propagation frontier). Both
/// modes run identical tracking — the bits are derived from bitwise entry
/// comparisons, so full and incremental rounds record the same trajectory.
class DeltaTracker {
 public:
  void ensure(int n) {
    if (n == n_ && !prev_.empty()) return;
    n_ = n;
    words_ = (n + 63) / 64;
    prev_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(words_),
                 0);
    cur_.assign(prev_.size(), 0);
    union_.assign(static_cast<std::size_t>(words_), 0);
  }

  /// Clears this round's bits and folds last round's per-agent bits into
  /// the destination frontier (any agent's entry toward d changed).
  void begin_round() {
    std::fill(cur_.begin(), cur_.end(), 0);
    std::fill(union_.begin(), union_.end(), 0);
    for (int i = 0; i < n_; ++i) {
      const std::uint64_t* row = prev_row(i);
      for (int w = 0; w < words_; ++w) union_[static_cast<std::size_t>(w)] |= row[w];
    }
  }

  /// Write `nw` into agent `a`'s entry for destination `d`, recording
  /// recompute/change/flap stats. The single funnel for table writes.
  void commit(RoutingAgent* a, int i, int d, const RouteEntry& nw,
              RoundContext* ctx) {
    RouteEntry& out = a->table[static_cast<std::size_t>(d)];
    ++ctx->entries_recomputed;
    if (entry_equal(out, nw)) return;
    ++ctx->entries_changed;
    cur_[static_cast<std::size_t>(i) * static_cast<std::size_t>(words_) +
         static_cast<std::size_t>(d >> 6)] |= 1ull << (d & 63);
    if (nw.next != out.next) {
      ++ctx->next_changes;
      if (out.next >= 0) ++ctx->flaps;
    }
    out = nw;
  }

  void end_round(RoundContext* ctx) {
    prev_.swap(cur_);
    ctx->changed_words = prev_.data();
    ctx->words_per_agent = words_;
  }

  const std::uint64_t* prev_row(int i) const {
    return &prev_[static_cast<std::size_t>(i) *
                  static_cast<std::size_t>(words_)];
  }
  std::uint64_t union_word(int w) const {
    return union_[static_cast<std::size_t>(w)];
  }
  bool any_dest_dirty() const {
    for (const std::uint64_t w : union_) {
      if (w != 0) return true;
    }
    return false;
  }
  int words() const { return words_; }

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> prev_;   ///< changed last round (frontier)
  std::vector<std::uint64_t> cur_;    ///< changed this round
  std::vector<std::uint64_t> union_;  ///< OR of prev_ rows: dirty dests
};

/// Distance-vector over latched backbone delay (the overlay analogue of
/// Jonglez's delay-based detour selection, arXiv:1403.3488): split horizon,
/// bounded hop count, and hysteresis so a next-hop only changes when the
/// challenger is decisively faster — chatty-metric flapping is the classic
/// DV failure mode and the thing the flap counters in the bench watch.
///
/// Incremental rounds recompute entry (i, d) only when its inputs could
/// have moved: a delay latch in row i re-latched this round (every
/// candidate metric through i shifts), or some agent's entry toward d
/// changed last round (the advertised column d shifts). Everything else is
/// provably bit-identical to a recompute, because the latched metrics and
/// the advertised snapshot it would read are frozen.
class DelayPolicy final : public RoutePolicy {
 public:
  explicit DelayPolicy(const RouteConfig& cfg)
      : max_hops_(cfg.max_hops), hysteresis_(cfg.hysteresis) {}

  const char* name() const override { return "delay"; }

  void round(const OverlayGraph& g, std::vector<RoutingAgent>* agents,
             RoundContext* ctx) override {
    const int n = g.size();
    tracker_.ensure(n);
    tracker_.begin_round();
    const bool inc = ctx->incremental && !ctx->full_refresh;
    // Round-start snapshot: every agent advertises the table it ended the
    // previous round with, so in-round updates cannot leak sideways. The
    // incremental path keeps the snapshot warm by re-copying only the
    // entries that changed last round.
    adv_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    if (!inc || !adv_valid_) {
      for (int i = 0; i < n; ++i) {
        const RoutingAgent& a = (*agents)[static_cast<std::size_t>(i)];
        std::copy(a.table.begin(), a.table.end(),
                  adv_.begin() + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(n));
      }
      adv_valid_ = true;
    } else {
      for (int i = 0; i < n; ++i) {
        const RoutingAgent& a = (*agents)[static_cast<std::size_t>(i)];
        const std::uint64_t* row = tracker_.prev_row(i);
        for (int w = 0; w < tracker_.words(); ++w) {
          std::uint64_t word = row[w];
          while (word != 0) {
            const int d = w * 64 + __builtin_ctzll(word);
            word &= word - 1;
            adv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(d)] =
                a.table[static_cast<std::size_t>(d)];
          }
        }
      }
    }
    const std::vector<char>* rows = ctx->delay_dirty_rows;
    const bool any_dest = tracker_.any_dest_dirty();
    for (int i = 0; i < n; ++i) {
      RoutingAgent& a = (*agents)[static_cast<std::size_t>(i)];
      if (!g.node_up(i)) {
        // Withdraw everything. Idempotent, so incremental rounds skip it:
        // the wipe landed on the full-refresh round the liveness flip
        // forced.
        if (!inc) {
          for (int d = 0; d < n; ++d) {
            if (d != i) tracker_.commit(&a, i, d, RouteEntry{}, ctx);
          }
        }
        continue;
      }
      const bool row_dirty = !inc || rows == nullptr ||
                             (*rows)[static_cast<std::size_t>(i)] != 0;
      if (row_dirty) {
        for (int d = 0; d < n; ++d) {
          if (d != i) compute_entry(g, &a, i, d, ctx);
        }
      } else if (any_dest) {
        // Only destinations on the delta frontier.
        for (int w = 0; w < tracker_.words(); ++w) {
          std::uint64_t word = tracker_.union_word(w);
          while (word != 0) {
            const int d = w * 64 + __builtin_ctzll(word);
            word &= word - 1;
            if (d != i) compute_entry(g, &a, i, d, ctx);
          }
        }
      }
    }
    tracker_.end_round(ctx);
  }

 private:
  void compute_entry(const OverlayGraph& g, RoutingAgent* a, int i, int d,
                     RoundContext* ctx) {
    const int n = g.size();
    const int inc_next = a->table[static_cast<std::size_t>(d)].next;
    RouteEntry best;
    RouteEntry inc_fresh;  // the incumbent next-hop's metric this round
    // Candidates in ascending next-hop index with strict improvement,
    // so ties always resolve to the lowest node index.
    for (int j = 0; j < n; ++j) {
      if (j == i || !g.node_up(j) || !g.edge_measured(i, j)) continue;
      RouteEntry cand;
      if (j == d) {
        // The direct backbone edge.
        cand = RouteEntry{d, g.metric_delay_ms(i, d), 1};
      } else {
        const RouteEntry& via =
            adv_[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(d)];
        // Split horizon: never route towards a neighbour whose own
        // route points back through us.
        if (via.next < 0 || via.next == i) continue;
        if (1 + via.hops > max_hops_) continue;
        cand =
            RouteEntry{j, g.metric_delay_ms(i, j) + via.metric, 1 + via.hops};
      }
      if (cand.next == inc_next) inc_fresh = cand;
      if (cand.metric < best.metric) best = cand;
    }
    RouteEntry nw;
    if (best.next < 0) {
      nw = RouteEntry{};
    } else if (inc_fresh.next >= 0 && best.next != inc_fresh.next &&
               !(best.metric < inc_fresh.metric * (1.0 - hysteresis_))) {
      // A usable incumbent keeps the route unless the challenger beats
      // it by the hysteresis margin; its metric still refreshes.
      nw = inc_fresh;
    } else {
      nw = best;
    }
    tracker_.commit(a, i, d, nw, ctx);
  }

  int max_hops_;
  double hysteresis_;
  bool adv_valid_ = false;
  std::vector<RouteEntry> adv_;  ///< n*n advertised snapshot, row-major
  DeltaTracker tracker_;
};

/// Backpressure routing on per-destination virtual queues (Rai, Singh,
/// Modiano, arXiv:1612.05537): each round injects `bp_arrival` units of
/// virtual work per commodity, then every node forwards to the neighbour
/// maximizing (queue differential) x (edge rate). The next-hop choice IS
/// the routing table; throughput-optimal under stability, at the cost of
/// not minimizing delay. Decisions read the round-start queue snapshot;
/// transfers then apply to the live queues in ascending node order.
///
/// The round factorizes by destination: injection, snapshot, decisions and
/// transfers for commodity d touch only column d of the queue matrix, in
/// ascending node order either way — so processing column-by-column is
/// bitwise the row-major computation. A column whose end-of-round queues
/// bitwise repeated the previous round with no entry change is at a fixed
/// point: replaying it reproduces itself exactly, so incremental rounds
/// skip it until a rate latch or a liveness epoch move perturbs it.
class BackpressurePolicy final : public RoutePolicy {
 public:
  explicit BackpressurePolicy(const RouteConfig& cfg)
      : arrival_(cfg.bp_arrival),
        drain_(cfg.bp_drain),
        rate_ref_bps_(cfg.bp_rate_ref_bps) {}

  const char* name() const override { return "backpressure"; }

  void round(const OverlayGraph& g, std::vector<RoutingAgent>* agents,
             RoundContext* ctx) override {
    const int n = g.size();
    tracker_.ensure(n);
    tracker_.begin_round();
    const bool inc = ctx->incremental && !ctx->full_refresh;
    const std::size_t nn =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    if (qprev_.size() != nn) {
      qprev_.assign(nn, 0.0);
      col_stable_.assign(static_cast<std::size_t>(n), 0);
      qsnap_.assign(static_cast<std::size_t>(n), 0.0);
    }
    for (int d = 0; d < n; ++d) {
      // Rate latches couple every commodity to every edge, so one latch
      // move wakes all columns for one round.
      if (inc && !ctx->rate_latch_moved &&
          col_stable_[static_cast<std::size_t>(d)] != 0) {
        continue;
      }
      const long changed_before = ctx->entries_changed;
      // Phase 1 (column d): a dark DC drops its buffered virtual work and
      // withdraws its route; live ones take this round's virtual arrival
      // for live destinations.
      for (int i = 0; i < n; ++i) {
        RoutingAgent& a = (*agents)[static_cast<std::size_t>(i)];
        if (!g.node_up(i)) {
          a.queue[static_cast<std::size_t>(d)] = 0.0;
          if (d != i) tracker_.commit(&a, i, d, RouteEntry{}, ctx);
        } else if (d != i && g.node_up(d)) {
          a.queue[static_cast<std::size_t>(d)] += arrival_;
        }
      }
      // Round-start snapshot of this column.
      for (int i = 0; i < n; ++i) {
        qsnap_[static_cast<std::size_t>(i)] =
            (*agents)[static_cast<std::size_t>(i)]
                .queue[static_cast<std::size_t>(d)];
      }
      for (int i = 0; i < n; ++i) {
        if (i == d || !g.node_up(i)) continue;
        RoutingAgent& a = (*agents)[static_cast<std::size_t>(i)];
        int best_j = -1;
        double best_w = 0.0;
        for (int j = 0; j < n; ++j) {
          if (j == i || !g.node_up(j) || !g.edge_measured(i, j)) continue;
          // The destination itself sinks its commodity: differential
          // against an implicit empty queue.
          const double qj =
              j == d ? 0.0 : qsnap_[static_cast<std::size_t>(j)];
          const double w =
              (qsnap_[static_cast<std::size_t>(i)] - qj) * g.metric_bps(i, j);
          // Strict improvement: ties go to the lowest neighbour index, and
          // a non-positive differential forwards nowhere this round.
          if (w > best_w) {
            best_w = w;
            best_j = j;
          }
        }
        if (best_j < 0) {
          tracker_.commit(&a, i, d, RouteEntry{}, ctx);
        } else {
          tracker_.commit(&a, i, d, RouteEntry{best_j, -best_w, 1}, ctx);
          // Service is rate-limited: an edge running below the reference
          // rate hands over proportionally less virtual work, so a
          // congested edge backs its commodity up until the differential
          // steers it around.
          const double service =
              drain_ * std::min(1.0, g.metric_bps(i, best_j) / rate_ref_bps_);
          const double amount =
              std::min(a.queue[static_cast<std::size_t>(d)], service);
          a.queue[static_cast<std::size_t>(d)] -= amount;
          if (best_j != d) {
            (*agents)[static_cast<std::size_t>(best_j)]
                .queue[static_cast<std::size_t>(d)] += amount;
          }
        }
      }
      // Column fixed-point check: bitwise-identical end queues and no
      // entry change mean next round's replay reproduces itself exactly.
      bool repeat = true;
      for (int i = 0; i < n; ++i) {
        const double q = (*agents)[static_cast<std::size_t>(i)]
                             .queue[static_cast<std::size_t>(d)];
        double& prev = qprev_[static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(n) +
                              static_cast<std::size_t>(d)];
        std::uint64_t qa = 0;
        std::uint64_t qb = 0;
        std::memcpy(&qa, &q, sizeof(qa));
        std::memcpy(&qb, &prev, sizeof(qb));
        if (qa != qb) repeat = false;
        prev = q;
      }
      col_stable_[static_cast<std::size_t>(d)] =
          repeat && ctx->entries_changed == changed_before ? 1 : 0;
    }
    tracker_.end_round(ctx);
  }

 private:
  double arrival_;
  double drain_;
  double rate_ref_bps_;
  std::vector<double> qprev_;     ///< n*n end-of-previous-round queues
  std::vector<char> col_stable_;  ///< per destination: column at fixed point
  std::vector<double> qsnap_;     ///< scratch: this column's snapshot
  DeltaTracker tracker_;
};

}  // namespace

std::unique_ptr<RoutePolicy> make_policy(const RouteConfig& cfg) {
  switch (cfg.policy) {
    case Policy::kDelay:
      return std::make_unique<DelayPolicy>(cfg);
    case Policy::kBackpressure:
      return std::make_unique<BackpressurePolicy>(cfg);
    case Policy::kOff:
      break;
  }
  return nullptr;
}

}  // namespace cronets::route
