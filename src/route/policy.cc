#include "route/policy.h"

#include <algorithm>

#include "sim/env.h"

namespace cronets::route {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kOff:
      return "off";
    case Policy::kDelay:
      return "delay";
    case Policy::kBackpressure:
      return "backpressure";
  }
  return "?";
}

RouteConfig RouteConfig::from_env() {
  RouteConfig cfg;
  const int p = sim::env_choice("CRONETS_ROUTE_POLICY", 0,
                                {"off", "delay", "backpressure"});
  cfg.policy = p == 1   ? Policy::kDelay
               : p == 2 ? Policy::kBackpressure
                        : Policy::kOff;
  cfg.max_hops =
      static_cast<int>(sim::env_int("CRONETS_MAX_HOPS", cfg.max_hops, 1, 8));
  return cfg;
}

namespace {

/// Distance-vector over EWMA backbone delay (the overlay analogue of
/// Jonglez's delay-based detour selection, arXiv:1403.3488): split horizon,
/// bounded hop count, and hysteresis so a next-hop only changes when the
/// challenger is decisively faster — chatty-metric flapping is the classic
/// DV failure mode and the thing the flap counters in the bench watch.
class DelayPolicy final : public RoutePolicy {
 public:
  explicit DelayPolicy(const RouteConfig& cfg)
      : max_hops_(cfg.max_hops), hysteresis_(cfg.hysteresis) {}

  const char* name() const override { return "delay"; }

  void round(const OverlayGraph& g,
             std::vector<RoutingAgent>* agents) override {
    const int n = g.size();
    // Round-start snapshot: every agent advertises the table it ended the
    // previous round with, so in-round updates cannot leak sideways.
    adv_.resize(agents->size());
    for (std::size_t i = 0; i < agents->size(); ++i) {
      adv_[i] = (*agents)[i].table;
    }
    for (int i = 0; i < n; ++i) {
      RoutingAgent& a = (*agents)[i];
      if (!g.node_up(i)) {
        for (int d = 0; d < n; ++d) {
          if (d != i) a.table[static_cast<std::size_t>(d)] = RouteEntry{};
        }
        continue;
      }
      for (int d = 0; d < n; ++d) {
        if (d == i) continue;
        const int inc_next = a.table[static_cast<std::size_t>(d)].next;
        RouteEntry best;
        RouteEntry inc_fresh;  // the incumbent next-hop's metric this round
        // Candidates in ascending next-hop index with strict improvement,
        // so ties always resolve to the lowest node index.
        for (int j = 0; j < n; ++j) {
          if (j == i || !g.node_up(j) || !g.edge_measured(i, j)) continue;
          RouteEntry cand;
          if (j == d) {
            // The direct backbone edge.
            cand = RouteEntry{d, g.ewma_delay_ms(i, d), 1};
          } else {
            const RouteEntry& via = adv_[static_cast<std::size_t>(j)]
                                        [static_cast<std::size_t>(d)];
            // Split horizon: never route towards a neighbour whose own
            // route points back through us.
            if (via.next < 0 || via.next == i) continue;
            if (1 + via.hops > max_hops_) continue;
            cand = RouteEntry{j, g.ewma_delay_ms(i, j) + via.metric,
                              1 + via.hops};
          }
          if (cand.next == inc_next) inc_fresh = cand;
          if (cand.metric < best.metric) best = cand;
        }
        RouteEntry& out = a.table[static_cast<std::size_t>(d)];
        if (best.next < 0) {
          out = RouteEntry{};
        } else if (inc_fresh.next >= 0 && best.next != inc_fresh.next &&
                   !(best.metric < inc_fresh.metric * (1.0 - hysteresis_))) {
          // A usable incumbent keeps the route unless the challenger beats
          // it by the hysteresis margin; its metric still refreshes.
          out = inc_fresh;
        } else {
          out = best;
        }
      }
    }
  }

 private:
  int max_hops_;
  double hysteresis_;
  std::vector<std::vector<RouteEntry>> adv_;
};

/// Backpressure routing on per-destination virtual queues (Rai, Singh,
/// Modiano, arXiv:1612.05537): each round injects `bp_arrival` units of
/// virtual work per commodity, then every node forwards to the neighbour
/// maximizing (queue differential) x (edge rate). The next-hop choice IS
/// the routing table; throughput-optimal under stability, at the cost of
/// not minimizing delay. Decisions read the round-start queue snapshot;
/// transfers then apply to the live queues in (node, destination) order —
/// fully deterministic.
class BackpressurePolicy final : public RoutePolicy {
 public:
  explicit BackpressurePolicy(const RouteConfig& cfg)
      : arrival_(cfg.bp_arrival),
        drain_(cfg.bp_drain),
        rate_ref_bps_(cfg.bp_rate_ref_bps) {}

  const char* name() const override { return "backpressure"; }

  void round(const OverlayGraph& g,
             std::vector<RoutingAgent>* agents) override {
    const int n = g.size();
    for (int i = 0; i < n; ++i) {
      RoutingAgent& a = (*agents)[i];
      if (!g.node_up(i)) {
        // A dark DC drops its buffered virtual work and withdraws routes.
        std::fill(a.queue.begin(), a.queue.end(), 0.0);
        for (int d = 0; d < n; ++d) {
          if (d != i) a.table[static_cast<std::size_t>(d)] = RouteEntry{};
        }
        continue;
      }
      for (int d = 0; d < n; ++d) {
        if (d != i && g.node_up(d)) {
          a.queue[static_cast<std::size_t>(d)] += arrival_;
        }
      }
    }
    qsnap_.resize(agents->size());
    for (std::size_t i = 0; i < agents->size(); ++i) {
      qsnap_[i] = (*agents)[i].queue;
    }
    for (int i = 0; i < n; ++i) {
      RoutingAgent& a = (*agents)[i];
      if (!g.node_up(i)) continue;  // table already withdrawn above
      for (int d = 0; d < n; ++d) {
        if (d == i) continue;
        int best_j = -1;
        double best_w = 0.0;
        for (int j = 0; j < n; ++j) {
          if (j == i || !g.node_up(j) || !g.edge_measured(i, j)) continue;
          // The destination itself sinks its commodity: differential
          // against an implicit empty queue.
          const double qj = j == d ? 0.0
                                   : qsnap_[static_cast<std::size_t>(j)]
                                           [static_cast<std::size_t>(d)];
          const double w =
              (qsnap_[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(d)] -
               qj) *
              g.ewma_bps(i, j);
          // Strict improvement: ties go to the lowest neighbour index, and
          // a non-positive differential forwards nowhere this round.
          if (w > best_w) {
            best_w = w;
            best_j = j;
          }
        }
        RouteEntry& out = a.table[static_cast<std::size_t>(d)];
        if (best_j < 0) {
          out = RouteEntry{};
        } else {
          out = RouteEntry{best_j, -best_w, 1};
          // Service is rate-limited: an edge running below the reference
          // rate hands over proportionally less virtual work, so a
          // congested edge backs its commodity up until the differential
          // steers it around.
          const double service =
              drain_ * std::min(1.0, g.ewma_bps(i, best_j) / rate_ref_bps_);
          const double amount =
              std::min(a.queue[static_cast<std::size_t>(d)], service);
          a.queue[static_cast<std::size_t>(d)] -= amount;
          if (best_j != d) {
            (*agents)[static_cast<std::size_t>(best_j)]
                .queue[static_cast<std::size_t>(d)] += amount;
          }
        }
      }
    }
  }

 private:
  double arrival_;
  double drain_;
  double rate_ref_bps_;
  std::vector<std::vector<double>> qsnap_;
};

}  // namespace

std::unique_ptr<RoutePolicy> make_policy(const RouteConfig& cfg) {
  switch (cfg.policy) {
    case Policy::kDelay:
      return std::make_unique<DelayPolicy>(cfg);
    case Policy::kBackpressure:
      return std::make_unique<BackpressurePolicy>(cfg);
    case Policy::kOff:
      break;
  }
  return nullptr;
}

}  // namespace cronets::route
