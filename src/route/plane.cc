#include "route/plane.h"

#include <cassert>
#include <cstring>

#include "sim/hash_rng.h"

namespace cronets::route {

void RouteComposer::mid_segments(const std::vector<int>& via_eps,
                                 std::vector<topo::PathRef>* out) const {
  out->clear();
  for (std::size_t k = 1; k < via_eps.size(); ++k) {
    out->push_back(topo_->cached_backbone_path(via_eps[k - 1], via_eps[k]));
  }
}

void RouteComposer::segments(int src_ep, const std::vector<int>& via_eps,
                             int dst_ep,
                             std::vector<topo::PathRef>* out) const {
  out->clear();
  if (via_eps.empty()) {
    out->push_back(topo_->cached_path(src_ep, dst_ep));
    return;
  }
  out->push_back(topo_->cached_path(src_ep, via_eps.front()));
  for (std::size_t k = 1; k < via_eps.size(); ++k) {
    out->push_back(topo_->cached_backbone_path(via_eps[k - 1], via_eps[k]));
  }
  out->push_back(topo_->cached_path(via_eps.back(), dst_ep));
}

RoutePlane::RoutePlane(topo::Internet* topo, const model::FlowModel* flow,
                       std::uint64_t seed, RouteConfig cfg)
    : topo_(topo),
      cfg_(cfg),
      graph_(topo, flow, seed, cfg.measure_config()),
      composer_(topo),
      policy_(make_policy(cfg)) {
  const int n = graph_.size();
  agents_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) agents_[static_cast<std::size_t>(i)].reset(i, n);
  dest_version_.assign(static_cast<std::size_t>(n), 0);
  seen_liveness_epoch_ = graph_.liveness_epoch();
}

void RoutePlane::attach(sim::EventQueue* queue, sim::Time start) {
  assert(queue_ == nullptr && "a plane attaches to exactly one queue");
  queue_ = queue;
  schedule_round(start);
}

void RoutePlane::schedule_round(sim::Time t) {
  queue_->schedule(t, [this, t] {
    step(t);
    schedule_round(t + cfg_.round_interval);
  });
}

void RoutePlane::step(sim::Time t) {
  graph_.measure(t);
  ++rounds_;
  if (policy_ == nullptr) return;
  const bool liveness_moved = graph_.liveness_epoch() != seen_liveness_epoch_;
  seen_liveness_epoch_ = graph_.liveness_epoch();
  RoundContext ctx;
  ctx.incremental = cfg_.incremental;
  // Full refresh: the first round installs everything, a liveness move
  // invalidates node-up terms in every entry, and the periodic refresh
  // keeps a standing audit that the delta path missed nothing.
  ctx.full_refresh = rounds_ == 1 || liveness_moved ||
                     (cfg_.full_refresh_rounds > 0 &&
                      rounds_ % cfg_.full_refresh_rounds == 0);
  ctx.delay_dirty_rows = &graph_.delay_dirty_rows();
  ctx.rate_latch_moved = graph_.rate_latch_moved();
  policy_->round(graph_, &agents_, &ctx);
  recomputed_total_ += static_cast<std::uint64_t>(ctx.entries_recomputed);
  deltas_total_ += static_cast<std::uint64_t>(ctx.entries_changed);
  flaps_ += ctx.flaps;
  // Per-destination versions from the policy's changed bitsets: column d
  // moved somewhere => every cached route toward d may be stale. The bits
  // are bitwise change detections, identical between modes.
  if (ctx.changed_words != nullptr && ctx.words_per_agent > 0) {
    const int n = graph_.size();
    const int words = ctx.words_per_agent;
    for (int w = 0; w < words; ++w) {
      std::uint64_t word = 0;
      for (int i = 0; i < n; ++i) {
        word |= ctx.changed_words[static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(words) +
                                  static_cast<std::size_t>(w)];
      }
      while (word != 0) {
        const int d = w * 64 + __builtin_ctzll(word);
        word &= word - 1;
        if (d < n) ++dest_version_[static_cast<std::size_t>(d)];
      }
    }
  }
  if (ctx.next_changes > 0) {
    ++table_version_;
    convergence_round_ = -1;
  } else if (convergence_round_ < 0) {
    convergence_round_ = rounds_;
  }
}

bool RoutePlane::route(int entry_ep, int exit_ep,
                       std::vector<int>* via_eps) const {
  via_eps->clear();
  const int entry = graph_.node_of_ep(entry_ep);
  const int exit = graph_.node_of_ep(exit_ep);
  if (entry < 0 || exit < 0 || entry == exit) return false;
  const auto fallback = [&]() {
    // Direct backbone edge, the one-hop overlay of the base system.
    via_eps->clear();
    if (!graph_.node_up(entry) || !graph_.node_up(exit) ||
        !graph_.edge_measured(entry, exit)) {
      return false;
    }
    via_eps->push_back(entry_ep);
    via_eps->push_back(exit_ep);
    return true;
  };
  if (policy_ == nullptr) return fallback();
  // Liveness is checked live, not via the tables: between a DC outage and
  // the next exchange round the tables still hold pre-outage routes, and a
  // chain to or through a dark DC must never be handed out.
  if (!graph_.node_up(entry) || !graph_.node_up(exit)) return false;
  int cur = entry;
  via_eps->push_back(entry_ep);
  // The walk is bounded by max_hops edges; a withdrawn entry falls back to
  // the direct edge rather than failing the pair outright. A loop needs no
  // explicit check: the next-hop is a function of the current node alone,
  // so any revisit cycles forever and the hop budget converts it into the
  // same fallback — which is what lets the mesh grow past 64 nodes without
  // a visited bitmask.
  while (cur != exit) {
    if (static_cast<int>(via_eps->size()) > cfg_.max_hops) return fallback();
    const int next = agents_[static_cast<std::size_t>(cur)]
                         .table[static_cast<std::size_t>(exit)]
                         .next;
    if (next < 0 || next >= graph_.size()) return fallback();
    if (!graph_.node_up(next)) return fallback();
    cur = next;
    via_eps->push_back(graph_.node_ep(cur));
  }
  return true;
}

double RoutePlane::route_bottleneck_bps(
    const std::vector<int>& via_eps) const {
  double bottleneck = -1.0;
  for (std::size_t k = 1; k < via_eps.size(); ++k) {
    const int i = graph_.node_of_ep(via_eps[k - 1]);
    const int j = graph_.node_of_ep(via_eps[k]);
    if (i < 0 || j < 0 || !graph_.edge_measured(i, j)) return 0.0;
    const double bps = graph_.ewma_bps(i, j);
    if (bottleneck < 0.0 || bps < bottleneck) bottleneck = bps;
  }
  return bottleneck < 0.0 ? 0.0 : bottleneck;
}

std::uint64_t RoutePlane::table_fingerprint() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix_double = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = sim::hash_combine(h, bits);
  };
  for (const RoutingAgent& a : agents_) {
    for (const RouteEntry& e : a.table) {
      h = sim::hash_combine(h, static_cast<std::uint64_t>(e.next + 1));
      mix_double(e.metric);
      h = sim::hash_combine(h, static_cast<std::uint64_t>(e.hops));
    }
    for (double q : a.queue) mix_double(q);
  }
  return h;
}

}  // namespace cronets::route
