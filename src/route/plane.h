#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "route/overlay_graph.h"
#include "route/policy.h"
#include "route/routing_agent.h"
#include "sim/event_queue.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::route {

/// Turns a node-index route into interned path segments. All lookups go
/// through topo::PathCache (public legs in the normal key space, backbone
/// legs in the backbone key space), so composing a k-hop path allocates
/// nothing once warm and every consumer shares one immutable RouterPath
/// per segment.
class RouteComposer {
 public:
  explicit RouteComposer(topo::Internet* topo) : topo_(topo) {}

  /// The backbone segments between consecutive via DCs:
  /// out[k] = backbone(via_eps[k] -> via_eps[k+1]). `out` is cleared first.
  void mid_segments(const std::vector<int>& via_eps,
                    std::vector<topo::PathRef>* out) const;

  /// Full composed chain: public access leg src -> via_eps.front(), the
  /// backbone mids, then public leg via_eps.back() -> dst.
  void segments(int src_ep, const std::vector<int>& via_eps, int dst_ep,
                std::vector<topo::PathRef>* out) const;

 private:
  topo::Internet* topo_;
};

/// The multi-hop overlay routing plane: the overlay graph, one RoutingAgent
/// per DC, and a RoutePolicy exchanging metrics between them in periodic
/// rounds on the owner's event queue. Consumers (service::PathRanker via
/// RankerConfig::route_plane) treat it as read-only between rounds: they
/// ask `route()` for the current via-chain of an (entry DC, exit DC) pair
/// and watch `pair_route_version()` to re-compose a cached candidate only
/// when the table column or DC liveness behind it actually moved.
///
/// Incrementality (CRONETS_ROUTE_INCREMENTAL, default on): the graph
/// probes only dirty/stale edges per round, the policy recomputes only
/// entries whose inputs moved, and consumers recompose only pairs whose
/// destination version moved. A periodic full-refresh round recomputes
/// everything anyway, and `incremental = false` runs the full-recompute
/// reference over the same probe schedule — tables, fingerprints, and
/// decisions are bitwise identical between the two modes; the benches and
/// CI diff them byte for byte.
///
/// Determinism: rounds run single-threaded on the event queue, agents
/// update in node index order from round-start snapshots, and every edge
/// measurement is keyed on (seed, src, dst, t) — so `table_fingerprint()`
/// is bitwise invariant across worker thread counts, broker shard counts,
/// and SIMD levels. The benches assert exactly that.
class RoutePlane {
 public:
  RoutePlane(topo::Internet* topo, const model::FlowModel* flow,
             std::uint64_t seed, RouteConfig cfg);

  const RouteConfig& config() const { return cfg_; }
  const OverlayGraph& graph() const { return graph_; }
  const RouteComposer& composer() const { return composer_; }
  /// False for Policy::kOff: the plane never produces routes.
  bool enabled() const { return policy_ != nullptr; }

  /// Schedule the first routing round at `start` on `queue`; subsequent
  /// rounds self-reschedule every cfg.round_interval. A plane attaches to
  /// exactly one queue for its lifetime.
  void attach(sim::EventQueue* queue, sim::Time start);
  bool attached() const { return queue_ != nullptr; }

  /// One round now: probe due edges, run the policy exchange, account
  /// flaps/versions/convergence. Benches and tests may call this directly
  /// instead of attach() when they drive time themselves.
  void step(sim::Time t);

  /// Current route entry_ep -> exit_ep as a chain of DC endpoint ids,
  /// including both ends. Falls back to the direct backbone edge when the
  /// table walk fails (no entry, loop, hop budget exceeded) but both DCs
  /// are up; returns false when no usable route exists at all.
  bool route(int entry_ep, int exit_ep, std::vector<int>* via_eps) const;

  /// Min EWMA backbone rate over the chain's consecutive edges (0 when
  /// any edge is unmeasured).
  double route_bottleneck_bps(const std::vector<int>& via_eps) const;

  /// Changes whenever a consumer's composed routes may be stale: bumped by
  /// table changes and by DC liveness flips.
  std::uint64_t route_version() const {
    return table_version_ + graph_.liveness_epoch();
  }

  /// Per-pair staleness: the route() walk toward `exit_ep` reads only the
  /// table column of its exit node (plus liveness), so a consumer caching
  /// that pair's chain needs to recompose only when this moves. Identical
  /// between incremental and full modes — both derive destination versions
  /// from the same bitwise change trajectory. Falls back to the global
  /// route_version() for non-DC endpoints.
  std::uint64_t pair_route_version(int exit_ep) const {
    const int exit = graph_.node_of_ep(exit_ep);
    if (exit < 0) return route_version();
    return dest_version_[static_cast<std::size_t>(exit)] +
           graph_.liveness_epoch();
  }

  /// Order-sensitive hash over every agent's full table and virtual queues
  /// (metric doubles by bit pattern). THE determinism witness: equal
  /// fingerprints mean the distributed computation took the same path.
  std::uint64_t table_fingerprint() const;

  /// Read-only view of the per-node agents (tables + virtual queues), in
  /// node index order. Tests compare these against independent references.
  const std::vector<RoutingAgent>& agents() const { return agents_; }

  int rounds() const { return rounds_; }
  /// Next-hop changes where a previously valid next-hop was replaced or
  /// withdrawn (initial route installation is not a flap).
  int flaps() const { return flaps_; }
  /// The round at which the current stable table state was first
  /// confirmed (a full round with zero next-hop changes); -1 while still
  /// churning. Resets whenever a later round changes something.
  int convergence_round() const { return convergence_round_; }

  /// Incremental-work accounting across all rounds: table entries actually
  /// recomputed and entries that bitwise changed (the deltas that would go
  /// on the wire in a triggered-update protocol). `deltas_total` is
  /// identical between modes; `entries_recomputed_total` is the work saved.
  std::uint64_t entries_recomputed_total() const { return recomputed_total_; }
  std::uint64_t deltas_total() const { return deltas_total_; }

 private:
  void schedule_round(sim::Time t);

  topo::Internet* topo_;
  RouteConfig cfg_;
  OverlayGraph graph_;
  RouteComposer composer_;
  std::unique_ptr<RoutePolicy> policy_;
  std::vector<RoutingAgent> agents_;
  std::vector<std::uint64_t> dest_version_;  ///< per destination node
  sim::EventQueue* queue_ = nullptr;
  std::uint64_t table_version_ = 0;
  std::uint64_t seen_liveness_epoch_ = 0;
  std::uint64_t recomputed_total_ = 0;
  std::uint64_t deltas_total_ = 0;
  int rounds_ = 0;
  int flaps_ = 0;
  int convergence_round_ = -1;
};

}  // namespace cronets::route
