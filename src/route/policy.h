#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "route/overlay_graph.h"
#include "route/routing_agent.h"
#include "sim/time.h"

namespace cronets::route {

/// Which metric drives the distance-vector exchange.
enum class Policy {
  kOff,           ///< plane disabled: no multi-hop candidates anywhere
  kDelay,         ///< EWMA backbone delay + hysteresis (Jonglez-style DV)
  kBackpressure,  ///< per-destination virtual-queue differentials
};

const char* policy_name(Policy p);

/// Knobs of the routing plane. `from_env` reads the CRONETS_ROUTE_POLICY /
/// CRONETS_MAX_HOPS / CRONETS_ROUTE_INCREMENTAL environment knobs through
/// sim/env.h; everything else keeps its default unless a bench or test
/// overrides it in code.
struct RouteConfig {
  Policy policy = Policy::kOff;
  /// Maximum overlay hops (backbone edges) a composed route may take.
  /// 1 = plain one-hop relays only; the paper's 2-hop detours need >= 2.
  int max_hops = 3;
  double ewma_alpha = 0.3;  ///< edge-estimate smoothing (matches the ranker)
  /// Delay policy: a challenger next-hop must beat the incumbent's fresh
  /// metric by this relative margin to displace it (route-flap damping).
  double hysteresis = 0.10;
  sim::Time round_interval = sim::Time::seconds(1);
  /// Backpressure: virtual work injected per (up src, up dst) per round,
  /// and the per-destination amount one node may hand downstream per round
  /// over an edge running at `bp_rate_ref_bps` (the Softlayer VM NIC).
  /// Slower edges drain proportionally less, so severe congestion on an
  /// edge backs work up behind it and the differential steers around it —
  /// queues stay bounded while drain capacity exceeds arrivals.
  double bp_arrival = 1.0;
  double bp_drain = 4.0;
  double bp_rate_ref_bps = 100e6;

  /// Incremental plane (CRONETS_ROUTE_INCREMENTAL, default on): due-set
  /// probe selection, delta exchange rounds, per-destination route
  /// versions. Off runs the full-recompute reference — same probe
  /// schedule, same latched metrics, bitwise-identical tables and
  /// decisions; only the amount of work per round differs. The bench and
  /// CI gates diff the two modes byte for byte.
  bool incremental = true;
  /// Probing cadence (see route::MeasureConfig): re-probe an edge every
  /// `probe_interval_rounds` rounds, at most `probe_budget` staleness
  /// probes per round (0 = one interval's worth of the mesh), and re-latch
  /// a policy-facing metric only when the EWMA moved by
  /// `metric_threshold` relative.
  int probe_interval_rounds = 8;
  int probe_budget = 0;
  double metric_threshold = 0.10;
  /// Every this-many rounds the incremental path recomputes everything
  /// anyway — a cheap standing audit that pins inc == full equivalence
  /// (and the bench fingerprints cross both kinds of rounds).
  int full_refresh_rounds = 64;

  static RouteConfig from_env();

  MeasureConfig measure_config() const {
    MeasureConfig m;
    m.ewma_alpha = ewma_alpha;
    m.probe_interval_rounds = probe_interval_rounds;
    m.probe_budget = probe_budget;
    m.metric_threshold = metric_threshold;
    m.incremental = incremental;
    return m;
  }
};

/// Per-round exchange context: the plane tells the policy which delta
/// triggers fired this round (inputs), and the policy reports exactly what
/// it touched and changed (outputs) so the plane can maintain versions,
/// flap counters, and per-destination dirtiness without rescanning n^2
/// entries.
struct RoundContext {
  // -- inputs (plane -> policy) --
  /// Delta exchange enabled. False = recompute everything, every round.
  bool incremental = false;
  /// Recompute everything this round regardless of dirtiness: first
  /// round, liveness epoch moved, or the periodic refresh came due.
  bool full_refresh = true;
  /// Per-source-node flags: a delay latch in this row moved during this
  /// round's measurement (owned by the graph; nullptr = treat all dirty).
  const std::vector<char>* delay_dirty_rows = nullptr;
  /// Any rate (bps) latch moved during this round's measurement.
  bool rate_latch_moved = true;

  // -- outputs (policy -> plane) --
  /// (agent, destination) entries actually recomputed / bitwise changed.
  /// In full mode recomputed == n*(n-1)-ish; changed is identical between
  /// modes (that is the equivalence claim).
  long entries_recomputed = 0;
  long entries_changed = 0;
  /// Entries whose next-hop changed, and the subset where a valid
  /// next-hop was replaced or withdrawn (flaps).
  int next_changes = 0;
  int flaps = 0;
  /// Per-agent changed-destination bitsets for this round: agent i's words
  /// at [i * words_per_agent, (i+1) * words_per_agent). Owned by the
  /// policy, valid until its next round() call. nullptr when the policy
  /// does not track deltas (never the case for the built-in policies).
  const std::uint64_t* changed_words = nullptr;
  int words_per_agent = 0;
};

/// One metric-exchange discipline over the overlay graph. A `round` is a
/// synchronous Bellman-Ford-style step: every agent recomputes its table
/// from the round-start snapshot of its neighbours' tables, in node index
/// order — deterministic by construction, no tie ever resolved by arrival
/// order or wall clock.
///
/// Incremental contract: when `ctx->incremental` and not
/// `ctx->full_refresh`, the policy may skip any (agent, destination)
/// entry whose inputs provably did not move — skipped entries keep their
/// previous value, which is bitwise what a full recompute would have
/// produced. The policies derive the skip set from the graph's latched
/// metrics (frozen between threshold crossings) plus their own
/// changed-entry bitsets from the previous round.
class RoutePolicy {
 public:
  virtual ~RoutePolicy() = default;
  virtual const char* name() const = 0;
  virtual void round(const OverlayGraph& g, std::vector<RoutingAgent>* agents,
                     RoundContext* ctx) = 0;
};

/// Policy factory; returns null for Policy::kOff.
std::unique_ptr<RoutePolicy> make_policy(const RouteConfig& cfg);

}  // namespace cronets::route
