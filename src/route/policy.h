#pragma once

#include <memory>
#include <vector>

#include "route/overlay_graph.h"
#include "route/routing_agent.h"
#include "sim/time.h"

namespace cronets::route {

/// Which metric drives the distance-vector exchange.
enum class Policy {
  kOff,           ///< plane disabled: no multi-hop candidates anywhere
  kDelay,         ///< EWMA backbone delay + hysteresis (Jonglez-style DV)
  kBackpressure,  ///< per-destination virtual-queue differentials
};

const char* policy_name(Policy p);

/// Knobs of the routing plane. `from_env` reads the CRONETS_ROUTE_POLICY /
/// CRONETS_MAX_HOPS environment knobs through sim/env.h; everything else
/// keeps its default unless a bench or test overrides it in code.
struct RouteConfig {
  Policy policy = Policy::kOff;
  /// Maximum overlay hops (backbone edges) a composed route may take.
  /// 1 = plain one-hop relays only; the paper's 2-hop detours need >= 2.
  int max_hops = 3;
  double ewma_alpha = 0.3;  ///< edge-estimate smoothing (matches the ranker)
  /// Delay policy: a challenger next-hop must beat the incumbent's fresh
  /// metric by this relative margin to displace it (route-flap damping).
  double hysteresis = 0.10;
  sim::Time round_interval = sim::Time::seconds(1);
  /// Backpressure: virtual work injected per (up src, up dst) per round,
  /// and the per-destination amount one node may hand downstream per round
  /// over an edge running at `bp_rate_ref_bps` (the Softlayer VM NIC).
  /// Slower edges drain proportionally less, so severe congestion on an
  /// edge backs work up behind it and the differential steers around it —
  /// queues stay bounded while drain capacity exceeds arrivals.
  double bp_arrival = 1.0;
  double bp_drain = 4.0;
  double bp_rate_ref_bps = 100e6;

  static RouteConfig from_env();
};

/// One metric-exchange discipline over the overlay graph. A `round` is a
/// synchronous Bellman-Ford-style step: every agent recomputes its table
/// from the round-start snapshot of its neighbours' tables, in node index
/// order — deterministic by construction, no tie ever resolved by arrival
/// order or wall clock.
class RoutePolicy {
 public:
  virtual ~RoutePolicy() = default;
  virtual const char* name() const = 0;
  virtual void round(const OverlayGraph& g,
                     std::vector<RoutingAgent>* agents) = 0;
};

/// Policy factory; returns null for Policy::kOff.
std::unique_ptr<RoutePolicy> make_policy(const RouteConfig& cfg);

}  // namespace cronets::route
