#include "analysis/traceroute.h"

#include <algorithm>
#include <unordered_set>

namespace cronets::analysis {

namespace {
std::uint32_t next_probe_base() {
  static std::uint32_t counter = 1000;
  const std::uint32_t base = counter;
  counter += 1000;  // room for per-TTL ids
  return base;
}
}  // namespace

void Traceroute::run(DoneCallback done) {
  done_ = std::move(done);
  probe_base_ = next_probe_base();
  src_->set_icmp_sink([this](const net::IcmpMessage& msg, net::IpAddr from) {
    on_icmp(msg, from);
  });
  send_probe();
}

void Traceroute::send_probe() {
  net::Packet pkt;
  pkt.headers.push_back(net::Ipv4Header{
      .src = src_->addr(), .dst = target_, .proto = net::IpProto::kIcmp});
  pkt.ttl = current_ttl_;
  net::IcmpMessage msg;
  msg.type = net::IcmpType::kEchoRequest;
  msg.probe_id = probe_base_ + static_cast<std::uint32_t>(current_ttl_);
  msg.original_ttl = current_ttl_;
  pkt.body = msg;
  probe_sent_at_ = src_->simulator()->now();
  src_->send(std::move(pkt));

  // Per-hop timeout: a hop that drops our probe shows up as a gap.
  timeout_.cancel();
  timeout_ = src_->simulator()->schedule_in(sim::Time::seconds(3), [this] {
    result_.hops.push_back(Hop{net::IpAddr{}, -1.0});  // '*' hop
    if (++current_ttl_ > max_ttl_) {
      if (done_) done_(result_);
      return;
    }
    send_probe();
  });
}

void Traceroute::on_icmp(const net::IcmpMessage& msg, net::IpAddr from) {
  const std::uint32_t expect = probe_base_ + static_cast<std::uint32_t>(current_ttl_);
  if (msg.probe_id != expect) return;  // stale or foreign reply
  timeout_.cancel();
  if (msg.type == net::IcmpType::kEchoReply) {
    result_.reached = true;
    if (done_) done_(result_);
    return;
  }
  if (msg.type != net::IcmpType::kTimeExceeded) return;
  const double rtt_ms =
      (src_->simulator()->now() - probe_sent_at_).to_milliseconds();
  result_.hops.push_back(Hop{from, rtt_ms});
  if (++current_ttl_ > max_ttl_) {
    if (done_) done_(result_);
    return;
  }
  send_probe();
}

std::vector<int> map_traceroute(topo::Internet& internet, int ep_src, int ep_dst) {
  return internet.path(ep_src, ep_dst).routers;
}

std::vector<long long> interface_hops(const topo::RouterPath& path) {
  std::vector<long long> out;
  // routers[i] is entered over traversals[i] (traversal 0 is the source
  // host's access link).
  const std::size_t n = std::min(path.routers.size(), path.traversals.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<long long>(path.routers[i]) * 1000003LL +
                  path.traversals[i].link_id);
  }
  return out;
}

namespace {

template <typename T>
double diversity_score_impl(const std::vector<T>& direct, const std::vector<T>& overlay) {
  if (direct.empty()) return 0.0;
  std::unordered_set<T> set(overlay.begin(), overlay.end());
  int common = 0;
  for (const T& r : direct) {
    if (set.count(r)) ++common;
  }
  return 1.0 - static_cast<double>(common) / static_cast<double>(direct.size());
}

template <typename T>
CommonRouterLocation common_location_impl(const std::vector<T>& direct,
                                          const std::vector<T>& overlay) {
  CommonRouterLocation out;
  if (direct.empty()) return out;
  std::unordered_set<T> set(overlay.begin(), overlay.end());
  const std::size_t n = direct.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!set.count(direct[i])) continue;
    const double pos = static_cast<double>(i) / static_cast<double>(n);
    if (pos < 1.0 / 3.0 || pos >= 2.0 / 3.0) {
      ++out.common_end;
    } else {
      ++out.common_middle;
    }
  }
  return out;
}

}  // namespace

double diversity_score(const std::vector<int>& direct_routers,
                       const std::vector<int>& overlay_routers) {
  return diversity_score_impl(direct_routers, overlay_routers);
}
double diversity_score(const std::vector<long long>& direct_hops,
                       const std::vector<long long>& overlay_hops) {
  return diversity_score_impl(direct_hops, overlay_hops);
}

CommonRouterLocation common_router_location(const std::vector<int>& direct_routers,
                                            const std::vector<int>& overlay_routers) {
  return common_location_impl(direct_routers, overlay_routers);
}
CommonRouterLocation common_router_location(const std::vector<long long>& direct_hops,
                                            const std::vector<long long>& overlay_hops) {
  return common_location_impl(direct_hops, overlay_hops);
}

}  // namespace cronets::analysis
