#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace cronets::analysis {

/// Accumulates samples and answers distribution queries (the paper reports
/// everything as CDFs, medians and means).
class Cdf {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& vs) {
    values_.insert(values_.end(), vs.begin(), vs.end());
    sorted_ = false;
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double quantile(double q) const {
    assert(!values_.empty());
    sort();
    const double pos = q * static_cast<double>(values_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }
  double median() const { return quantile(0.5); }
  double min() const {
    sort();
    return values_.front();
  }
  double max() const {
    sort();
    return values_.back();
  }
  double mean() const {
    assert(!values_.empty());
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }
  double stdev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : values_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
  }

  /// Fraction of samples <= x (the CDF value at x).
  double fraction_leq(double x) const {
    if (values_.empty()) return 0.0;
    sort();
    auto it = std::upper_bound(values_.begin(), values_.end(), x);
    return static_cast<double>(it - values_.begin()) /
           static_cast<double>(values_.size());
  }
  double fraction_gt(double x) const { return 1.0 - fraction_leq(x); }
  double fraction_geq(double x) const {
    if (values_.empty()) return 0.0;
    sort();
    auto it = std::lower_bound(values_.begin(), values_.end(), x);
    return static_cast<double>(values_.end() - it) /
           static_cast<double>(values_.size());
  }

  const std::vector<double>& sorted_values() const {
    sort();
    return values_;
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Median of a vector (by copy; convenience for binned summaries).
double median_of(std::vector<double> v);
/// Median absolute deviation (the error bars of Figures 9/10).
double median_abs_deviation(const std::vector<double>& v);

/// Fixed-edge binning: values go to the bin whose [edge[i], edge[i+1])
/// contains them; the last bin is open-ended.
struct Binned {
  std::vector<std::vector<double>> bins;
  std::vector<std::size_t> counts() const {
    std::vector<std::size_t> c;
    for (const auto& b : bins) c.push_back(b.size());
    return c;
  }
};
Binned bin_by(const std::vector<double>& keys, const std::vector<double>& values,
              const std::vector<double>& edges);

}  // namespace cronets::analysis
