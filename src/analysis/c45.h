#pragma once

#include <memory>
#include <string>
#include <vector>

namespace cronets::analysis {

/// Training data for the classifier: continuous features, binary labels.
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> x;  ///< x[i][f]
  std::vector<int> y;                  ///< 0/1
};

/// A C4.5-style decision-tree learner (Quinlan): gain-ratio splits on
/// continuous attributes, minimum-leaf stopping, and pessimistic
/// (confidence-bound) subtree pruning. The paper (§V-B) uses C4.5 to find
/// the RTT/loss reduction thresholds beyond which an overlay path is very
/// likely to improve throughput; bench_c45_thresholds reproduces that
/// analysis with this implementation.
class C45Tree {
 public:
  struct Options {
    int min_leaf = 8;
    int max_depth = 12;
    double min_gain_ratio = 1e-3;
    bool prune = true;
    double pruning_z = 0.69;  ///< normal quantile for CF=0.25 (C4.5 default)
  };

  /// One decision on the path to a leaf: feature `greater` than threshold
  /// (or <= when greater == false).
  struct Condition {
    int feature = -1;
    bool greater = false;
    double threshold = 0.0;
  };

  /// A positive-class rule extracted from the tree.
  struct Rule {
    std::vector<Condition> conditions;
    int support = 0;        ///< training samples reaching the leaf
    double confidence = 0;  ///< positive fraction at the leaf
  };

  void train(const Dataset& data, Options opt);
  void train(const Dataset& data) { train(data, Options()); }

  int predict(const std::vector<double>& features) const;
  /// Fraction of positive training samples in the leaf `features` lands in.
  double predict_confidence(const std::vector<double>& features) const;

  /// All rules whose leaf predicts the positive class.
  std::vector<Rule> positive_rules(int min_support = 1) const;
  /// The positive rule with the highest confidence (ties: larger support).
  Rule best_positive_rule(int min_support = 1) const;

  std::string dump() const;
  int node_count() const;
  bool trained() const { return root_ != nullptr; }

 private:
  struct Node {
    bool leaf = true;
    int klass = 0;
    int n = 0;       // samples
    int npos = 0;    // positive samples
    int feature = -1;
    double threshold = 0.0;
    std::unique_ptr<Node> le;  // feature <= threshold
    std::unique_ptr<Node> gt;  // feature > threshold
  };

  std::unique_ptr<Node> build(const std::vector<int>& idx, int depth);
  double prune(Node* node);  // returns estimated errors; collapses subtrees
  void collect_rules(const Node* node, std::vector<Condition>& path,
                     std::vector<Rule>& out, int min_support) const;
  void dump_node(const Node* node, int depth, std::string& out) const;

  const Dataset* data_ = nullptr;  // valid during train() only
  Options opt_;
  std::vector<std::string> feature_names_;
  std::unique_ptr<Node> root_;
};

}  // namespace cronets::analysis
