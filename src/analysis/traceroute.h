#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/host.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "topo/internet.h"

namespace cronets::analysis {

/// Packet-level traceroute: sends TTL-limited ICMP echo probes from a host
/// and records the Time-Exceeded sources hop by hop, like the tool the
/// paper ran on its controlled senders.
class Traceroute {
 public:
  struct Hop {
    net::IpAddr addr;        ///< responding address ('0.0.0.0' for a gap)
    double rtt_ms = -1.0;    ///< probe round-trip time (-1 for a gap)
  };
  struct Result {
    std::vector<Hop> hops;  ///< one entry per TTL, in order
    bool reached = false;   ///< destination answered the final probe
  };
  using DoneCallback = std::function<void(const Result&)>;

  Traceroute(net::Host* src, net::IpAddr target, int max_ttl = 40)
      : src_(src), target_(target), max_ttl_(max_ttl) {}

  /// Launch the probe sequence; `done` fires when the destination replies
  /// or max TTL is exhausted.
  void run(DoneCallback done);

 private:
  void send_probe();
  void on_icmp(const net::IcmpMessage& msg, net::IpAddr from);

  net::Host* src_;
  net::IpAddr target_;
  int max_ttl_;
  int current_ttl_ = 1;
  std::uint32_t probe_base_ = 0;
  sim::Time probe_sent_at_{};
  Result result_;
  DoneCallback done_;
  sim::EventHandle timeout_;
};

/// Map-based traceroute: reads the router-level policy path straight off
/// the topology (what the packet traceroute converges to, used for the
/// 1,250-path diversity analysis at scale).
std::vector<int> map_traceroute(topo::Internet& internet, int ep_src, int ep_dst);

/// Interface-level hop identities, as an IP traceroute reports them: each
/// hop is the (router, ingress link) pair, i.e. the interface address the
/// probe's TTL expired on. Two paths crossing the same router through
/// different ingress interfaces count as different hops — exactly what an
/// IP-level diversity analysis over traceroute output sees.
std::vector<long long> interface_hops(const topo::RouterPath& path);

/// Diversity score of an overlay path vs the corresponding direct path
/// (§V-A): 1 - |common routers| / |routers on direct path|.
double diversity_score(const std::vector<int>& direct_routers,
                       const std::vector<int>& overlay_routers);
double diversity_score(const std::vector<long long>& direct_hops,
                       const std::vector<long long>& overlay_hops);

/// Fraction of the common routers that fall in the first/last third of the
/// direct path ("end segments") vs the middle third (§V-A's 87%/13% split).
struct CommonRouterLocation {
  int common_end = 0;
  int common_middle = 0;
};
CommonRouterLocation common_router_location(const std::vector<int>& direct_routers,
                                            const std::vector<int>& overlay_routers);
CommonRouterLocation common_router_location(const std::vector<long long>& direct_hops,
                                            const std::vector<long long>& overlay_hops);

}  // namespace cronets::analysis
