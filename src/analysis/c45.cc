#include "analysis/c45.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace cronets::analysis {

namespace {

double entropy(int pos, int n) {
  if (n == 0 || pos == 0 || pos == n) return 0.0;
  const double p = static_cast<double>(pos) / n;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/// C4.5's pessimistic upper bound on the error rate of a leaf with n
/// samples and e errors (normal approximation to the binomial upper
/// confidence limit).
double error_upper_bound(double n, double e, double z) {
  if (n <= 0.0) return 1.0;
  const double f = e / n;
  const double z2 = z * z;
  const double num = f + z2 / (2 * n) +
                     z * std::sqrt(std::max(0.0, f / n - f * f / n + z2 / (4 * n * n)));
  return std::min(1.0, num / (1.0 + z2 / n));
}

}  // namespace

void C45Tree::train(const Dataset& data, Options opt) {
  assert(data.x.size() == data.y.size());
  assert(!data.x.empty());
  data_ = &data;
  opt_ = opt;
  feature_names_ = data.feature_names;

  std::vector<int> idx(data.x.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  root_ = build(idx, 0);
  if (opt_.prune) prune(root_.get());
  data_ = nullptr;
}

std::unique_ptr<C45Tree::Node> C45Tree::build(const std::vector<int>& idx, int depth) {
  auto node = std::make_unique<Node>();
  node->n = static_cast<int>(idx.size());
  for (int i : idx) node->npos += (*data_).y[static_cast<std::size_t>(i)];
  node->klass = node->npos * 2 >= node->n ? 1 : 0;

  const double base_h = entropy(node->npos, node->n);
  if (node->npos == 0 || node->npos == node->n ||
      node->n < 2 * opt_.min_leaf || depth >= opt_.max_depth) {
    return node;
  }

  // Best gain-ratio continuous split across all features.
  const std::size_t nf = (*data_).x[0].size();
  double best_ratio = opt_.min_gain_ratio;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> vals(idx.size());  // (value, label)
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const int i = idx[k];
      vals[k] = {(*data_).x[static_cast<std::size_t>(i)][f],
                 (*data_).y[static_cast<std::size_t>(i)]};
    }
    std::sort(vals.begin(), vals.end());

    int left_n = 0, left_pos = 0;
    const int total_pos = node->npos;
    for (std::size_t k = 0; k + 1 < vals.size(); ++k) {
      left_n += 1;
      left_pos += vals[k].second;
      if (vals[k].first == vals[k + 1].first) continue;  // no boundary here
      const int right_n = node->n - left_n;
      if (left_n < opt_.min_leaf || right_n < opt_.min_leaf) continue;
      const int right_pos = total_pos - left_pos;
      const double pl = static_cast<double>(left_n) / node->n;
      const double gain = base_h - pl * entropy(left_pos, left_n) -
                          (1.0 - pl) * entropy(right_pos, right_n);
      const double split_info = entropy(left_n, node->n);  // binary split info
      if (split_info <= 1e-9) continue;
      const double ratio = gain / split_info;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_feature = static_cast<int>(f);
        best_threshold = (vals[k].first + vals[k + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node;

  std::vector<int> le_idx, gt_idx;
  for (int i : idx) {
    if ((*data_).x[static_cast<std::size_t>(i)][static_cast<std::size_t>(best_feature)] <=
        best_threshold) {
      le_idx.push_back(i);
    } else {
      gt_idx.push_back(i);
    }
  }
  if (le_idx.empty() || gt_idx.empty()) return node;

  node->leaf = false;
  node->feature = best_feature;
  node->threshold = best_threshold;
  node->le = build(le_idx, depth + 1);
  node->gt = build(gt_idx, depth + 1);
  return node;
}

double C45Tree::prune(Node* node) {
  const double leaf_errors =
      node->n *
      error_upper_bound(node->n, std::min(node->npos, node->n - node->npos),
                        opt_.pruning_z);
  if (node->leaf) return leaf_errors;

  const double subtree_errors = prune(node->le.get()) + prune(node->gt.get());
  if (leaf_errors <= subtree_errors + 0.1) {
    node->leaf = true;
    node->le.reset();
    node->gt.reset();
    return leaf_errors;
  }
  return subtree_errors;
}

int C45Tree::predict(const std::vector<double>& features) const {
  assert(root_);
  const Node* n = root_.get();
  while (!n->leaf) {
    n = features[static_cast<std::size_t>(n->feature)] <= n->threshold ? n->le.get()
                                                                       : n->gt.get();
  }
  return n->klass;
}

double C45Tree::predict_confidence(const std::vector<double>& features) const {
  assert(root_);
  const Node* n = root_.get();
  while (!n->leaf) {
    n = features[static_cast<std::size_t>(n->feature)] <= n->threshold ? n->le.get()
                                                                       : n->gt.get();
  }
  return n->n ? static_cast<double>(n->npos) / n->n : 0.0;
}

void C45Tree::collect_rules(const Node* node, std::vector<Condition>& path,
                            std::vector<Rule>& out, int min_support) const {
  if (node->leaf) {
    if (node->klass == 1 && node->n >= min_support) {
      Rule r;
      r.conditions = path;
      r.support = node->n;
      r.confidence = node->n ? static_cast<double>(node->npos) / node->n : 0.0;
      out.push_back(std::move(r));
    }
    return;
  }
  path.push_back(Condition{node->feature, false, node->threshold});
  collect_rules(node->le.get(), path, out, min_support);
  path.back().greater = true;
  collect_rules(node->gt.get(), path, out, min_support);
  path.pop_back();
}

std::vector<C45Tree::Rule> C45Tree::positive_rules(int min_support) const {
  std::vector<Rule> out;
  if (!root_) return out;
  std::vector<Condition> path;
  collect_rules(root_.get(), path, out, min_support);
  return out;
}

C45Tree::Rule C45Tree::best_positive_rule(int min_support) const {
  Rule best;
  for (const Rule& r : positive_rules(min_support)) {
    if (r.confidence > best.confidence ||
        (r.confidence == best.confidence && r.support > best.support)) {
      best = r;
    }
  }
  return best;
}

void C45Tree::dump_node(const Node* node, int depth, std::string& out) const {
  char buf[160];
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (node->leaf) {
    std::snprintf(buf, sizeof(buf), "%sclass=%d (%d/%d)\n", indent.c_str(),
                  node->klass, node->npos, node->n);
    out += buf;
    return;
  }
  const char* fname = node->feature < static_cast<int>(feature_names_.size())
                          ? feature_names_[static_cast<std::size_t>(node->feature)].c_str()
                          : "f?";
  std::snprintf(buf, sizeof(buf), "%s%s <= %.4f ?\n", indent.c_str(), fname,
                node->threshold);
  out += buf;
  dump_node(node->le.get(), depth + 1, out);
  dump_node(node->gt.get(), depth + 1, out);
}

std::string C45Tree::dump() const {
  std::string out;
  if (root_) dump_node(root_.get(), 0, out);
  return out;
}

int C45Tree::node_count() const {
  if (!root_) return 0;
  int count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++count;
    if (!n->leaf) {
      stack.push_back(n->le.get());
      stack.push_back(n->gt.get());
    }
  }
  return count;
}

}  // namespace cronets::analysis
