#include "analysis/tstat.h"

namespace cronets::analysis {

std::uint64_t Tstat::flow_key(const net::Packet& pkt, bool outgoing) {
  const auto& seg = pkt.tcp();
  // Canonical key: (local addr/port, remote addr/port) of the monitored
  // host, independent of packet direction.
  const std::uint32_t local = outgoing ? pkt.inner().src.value() : pkt.inner().dst.value();
  const std::uint32_t remote = outgoing ? pkt.inner().dst.value() : pkt.inner().src.value();
  const std::uint16_t lport = outgoing ? seg.sport : seg.dport;
  const std::uint16_t rport = outgoing ? seg.dport : seg.sport;
  return (static_cast<std::uint64_t>(local ^ (remote << 1)) << 32) |
         (static_cast<std::uint64_t>(lport) << 16) | rport;
}

void Tstat::attach(net::Host* host) {
  host->set_tap([this, host](const net::Packet& pkt, net::Host::TapDir dir) {
    observe(pkt, dir, host->simulator()->now());
  });
}

void Tstat::observe(const net::Packet& pkt, net::Host::TapDir dir, sim::Time now) {
  if (!pkt.is_tcp()) return;
  const auto& seg = pkt.tcp();
  const std::uint64_t key = flow_key(pkt, dir == net::Host::TapDir::kOut);
  FlowStats& fs = flows_[key];
  FlowTrack& tr = track_[key];

  if (dir == net::Host::TapDir::kOut && seg.payload > 0) {
    fs.bytes_sent += static_cast<std::uint64_t>(seg.payload);
    ++fs.segments;
    const std::uint64_t end = seg.seq + static_cast<std::uint64_t>(seg.payload);
    if (seg.seq < tr.high_seq) {
      fs.bytes_retransmitted += static_cast<std::uint64_t>(seg.payload);
    } else {
      // Only first transmissions contribute RTT samples (Karn's rule).
      tr.inflight[end] = now;
    }
    tr.high_seq = std::max(tr.high_seq, end);
  } else if (dir == net::Host::TapDir::kIn && seg.has_ack) {
    auto it = tr.inflight.begin();
    while (it != tr.inflight.end() && it->first <= seg.ack) {
      fs.rtt_sum_ms += (now - it->second).to_milliseconds();
      ++fs.rtt_samples;
      it = tr.inflight.erase(it);
    }
  }
}

Tstat::FlowStats Tstat::totals() const {
  FlowStats t;
  for (const auto& [k, fs] : flows_) {
    t.bytes_sent += fs.bytes_sent;
    t.bytes_retransmitted += fs.bytes_retransmitted;
    t.segments += fs.segments;
    t.rtt_sum_ms += fs.rtt_sum_ms;
    t.rtt_samples += fs.rtt_samples;
  }
  return t;
}

}  // namespace cronets::analysis
