#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "net/host.h"
#include "net/packet.h"
#include "sim/time.h"

namespace cronets::analysis {

/// Passive TCP-flow analyzer in the spirit of tstat [Mellia]: attach it as
/// a host tap (pcap-style) and it derives, per flow, the retransmission
/// rate (retransmitted payload bytes / total payload bytes sent, the
/// paper's §III-B.1 loss proxy) and the average RTT measured as the time
/// between a data segment leaving and the ACK covering it arriving
/// (§III-B.2), all without touching the TCP implementation's own counters.
class Tstat {
 public:
  struct FlowStats {
    std::uint64_t bytes_sent = 0;          // payload bytes, incl. retx
    std::uint64_t bytes_retransmitted = 0;
    std::uint64_t segments = 0;
    double rtt_sum_ms = 0.0;
    std::uint64_t rtt_samples = 0;

    double retransmission_rate() const {
      return bytes_sent ? static_cast<double>(bytes_retransmitted) /
                              static_cast<double>(bytes_sent)
                        : 0.0;
    }
    double avg_rtt_ms() const {
      return rtt_samples ? rtt_sum_ms / static_cast<double>(rtt_samples) : 0.0;
    }
  };

  /// Install on a host; observes that host's outgoing data and incoming ACKs.
  void attach(net::Host* host);

  /// Feed one packet manually (direction as seen by the monitored host).
  void observe(const net::Packet& pkt, net::Host::TapDir dir, sim::Time now);

  /// Aggregate over all monitored flows.
  FlowStats totals() const;
  const std::map<std::uint64_t, FlowStats>& flows() const { return flows_; }

 private:
  struct FlowTrack {
    std::uint64_t high_seq = 0;                 // retransmission watermark
    std::map<std::uint64_t, sim::Time> inflight;  // seq_end -> send time
  };
  static std::uint64_t flow_key(const net::Packet& pkt, bool outgoing);

  std::map<std::uint64_t, FlowStats> flows_;
  std::map<std::uint64_t, FlowTrack> track_;
};

}  // namespace cronets::analysis
