#include "analysis/stats.h"

namespace cronets::analysis {

double median_of(std::vector<double> v) {
  assert(!v.empty());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                     v.end());
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

double median_abs_deviation(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = median_of(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::abs(x - m));
  return median_of(dev);
}

Binned bin_by(const std::vector<double>& keys, const std::vector<double>& values,
              const std::vector<double>& edges) {
  assert(keys.size() == values.size());
  assert(!edges.empty());
  Binned out;
  out.bins.resize(edges.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double k = keys[i];
    if (k < edges.front()) continue;
    std::size_t bin = edges.size() - 1;
    for (std::size_t e = 0; e + 1 < edges.size(); ++e) {
      if (k >= edges[e] && k < edges[e + 1]) {
        bin = e;
        break;
      }
    }
    out.bins[bin].push_back(values[i]);
  }
  return out;
}

}  // namespace cronets::analysis
