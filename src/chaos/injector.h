#pragma once

#include <cstddef>
#include <vector>

#include "chaos/scenario.h"
#include "sim/event_queue.h"
#include "topo/internet.h"

namespace cronets::chaos {

/// Observer of fault lifecycle transitions, invoked synchronously on the
/// control-plane event queue after the fault's mutations have been applied
/// (begin) or reverted (end) — so a begin callback already sees routing
/// converged post-failure, candidate `down` flags set, and the broker's
/// failover scheduled. All overrides default to no-ops.
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;
  virtual void on_fault_begin(const Fault& f, sim::Time t) { (void)f, (void)t; }
  virtual void on_fault_end(const Fault& f, sim::Time t) { (void)f, (void)t; }
};

/// Replays a Scenario against the live world: schedules every fault's
/// begin/end on the control plane's sim::EventQueue and applies them
/// through the production mutation machinery (Internet::set_adjacency_up,
/// Internet::add_event) — so PathCache invalidation, FlowModel aggregate
/// rebuilds, BatchSampler re-interning, and Broker failover all fire
/// exactly as they would for a real mid-run failure.
class Injector {
 public:
  Injector(topo::Internet* topo, sim::EventQueue* queue)
      : topo_(topo), queue_(queue) {}

  void set_observer(FaultObserver* observer) { observer_ = observer; }

  /// Copy the scenario's faults and schedule all begin/end transitions.
  /// Call once, before running the queue; the injector must outlive the
  /// scheduled events.
  void arm(const Scenario& scenario);

  const std::vector<Fault>& faults() const { return faults_; }
  std::size_t begun() const { return begun_; }
  std::size_t ended() const { return ended_; }

 private:
  void begin_fault(Fault& f, sim::Time t);
  void end_fault(Fault& f, sim::Time t);

  topo::Internet* topo_;
  sim::EventQueue* queue_;
  FaultObserver* observer_ = nullptr;
  std::vector<Fault> faults_;
  std::size_t begun_ = 0;
  std::size_t ended_ = 0;
};

}  // namespace cronets::chaos
