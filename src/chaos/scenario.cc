#include "chaos/scenario.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "sim/hash_rng.h"
#include "sim/rng.h"

namespace cronets::chaos {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kDcOutage: return "dc-outage";
    case FaultKind::kCongestionStorm: return "congestion-storm";
    case FaultKind::kGrayFailure: return "gray-failure";
  }
  return "?";
}

namespace {

bool is_transit(const topo::AsNode& as) {
  return as.tier == topo::Tier::kTier1 || as.tier == topo::Tier::kTier2;
}

std::uint64_t adjacency_key(int a, int b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

/// Transit-transit adjacencies whose endpoints are both multi-connected
/// (>= 3 adjacencies each), so routing reconverges around a cut instead of
/// partitioning a single-homed subtree. Deterministic order: AS index,
/// then adjacency order.
std::vector<std::pair<int, int>> flap_candidates(const topo::Internet& topo) {
  std::vector<std::pair<int, int>> out;
  for (const auto& as : topo.ases()) {
    if (!is_transit(as) || as.adj.size() < 3) continue;
    for (const auto& adj : as.adj) {
      if (adj.nbr_as <= as.id) continue;  // dedupe (a < b)
      const auto& nbr = topo.ases()[static_cast<std::size_t>(adj.nbr_as)];
      if (!is_transit(nbr) || nbr.adj.size() < 3) continue;
      out.emplace_back(as.id, adj.nbr_as);
    }
  }
  return out;
}

/// Core (inter-transit) public links, excluding the cloud backbone — the
/// storm/gray target population. Deterministic order: link id.
std::vector<int> core_links(const topo::Internet& topo) {
  std::vector<int> out;
  for (const auto& link : topo.links()) {
    if (link.is_core && !link.is_backbone) out.push_back(link.id);
  }
  return out;
}

/// Draw a [begin, end) window for fault stream `rng`: begin from the MTTF
/// draw clamped into the usable part of the horizon, duration from the
/// MTTR draw.
void draw_window(sim::Rng& rng, const ScenarioParams& p, Fault* f) {
  const double h = p.horizon.to_seconds();
  double begin_s = rng.exponential(p.mean_failure_s);
  begin_s = std::clamp(begin_s, 0.05 * h, 0.75 * h);
  double repair_s = std::max(p.min_repair_s, rng.exponential(p.mean_repair_s));
  const double end_s = std::min(begin_s + repair_s, 0.95 * h);
  f->begin = sim::Time::from_seconds(begin_s);
  f->end = sim::Time::from_seconds(end_s);
}

}  // namespace

Scenario Scenario::generate(const topo::Internet& topo,
                            const ScenarioParams& params,
                            std::uint64_t world_seed,
                            std::uint64_t scenario_seed) {
  Scenario sc;
  const std::uint64_t base = sim::hash_combine(world_seed, scenario_seed);
  // Stream id per (kind, instance): fault k of kind K draws from an
  // independent hash-derived stream.
  const auto fault_rng = [&](FaultKind kind, int i) {
    return sim::Rng(sim::hash_combine(
        base, (static_cast<std::uint64_t>(kind) << 32) |
                  static_cast<std::uint32_t>(i)));
  };

  const auto flaps = flap_candidates(topo);
  const auto cores = core_links(topo);
  const std::size_t dcs = topo.dc_endpoints().size();

  // Link flaps: distinct adjacencies (restore-while-down conflicts would
  // corrupt the up/down bookkeeping), drawn with bounded rejection.
  std::unordered_set<std::uint64_t> used_adjacencies;
  for (int i = 0; i < params.link_flaps && !flaps.empty(); ++i) {
    sim::Rng rng = fault_rng(FaultKind::kLinkFlap, i);
    Fault f;
    f.kind = FaultKind::kLinkFlap;
    draw_window(rng, params, &f);
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto& [a, b] = flaps[rng.index(flaps.size())];
      if (used_adjacencies.insert(adjacency_key(a, b)).second) {
        f.as_a = a;
        f.as_b = b;
        break;
      }
    }
    if (f.as_a >= 0) sc.faults_.push_back(std::move(f));
  }

  // DC outages: distinct data centers.
  std::unordered_set<int> used_dcs;
  for (int i = 0; i < params.dc_outages && dcs > 0; ++i) {
    sim::Rng rng = fault_rng(FaultKind::kDcOutage, i);
    Fault f;
    f.kind = FaultKind::kDcOutage;
    draw_window(rng, params, &f);
    for (int attempt = 0; attempt < 32; ++attempt) {
      const int dc = static_cast<int>(rng.index(dcs));
      if (used_dcs.insert(dc).second) {
        f.dc = dc;
        break;
      }
    }
    if (f.dc >= 0) sc.faults_.push_back(std::move(f));
  }

  // Congestion storms: a clique of core links surges in both directions.
  for (int i = 0; i < params.congestion_storms && !cores.empty(); ++i) {
    sim::Rng rng = fault_rng(FaultKind::kCongestionStorm, i);
    Fault f;
    f.kind = FaultKind::kCongestionStorm;
    draw_window(rng, params, &f);
    std::unordered_set<int> picked;
    for (int l = 0; l < params.storm_links; ++l) {
      const int link = cores[rng.index(cores.size())];
      if (!picked.insert(link).second) continue;
      for (const bool forward : {true, false}) {
        topo::LinkEvent ev;
        ev.link_id = link;
        ev.forward = forward;
        ev.from = f.begin;
        ev.until = f.end;
        ev.util_boost = rng.uniform(params.storm_boost_lo, params.storm_boost_hi);
        f.events.push_back(ev);
      }
    }
    if (!f.events.empty()) sc.faults_.push_back(std::move(f));
  }

  // Gray failures: loss inflation on core links, no routing change.
  for (int i = 0; i < params.gray_failures && !cores.empty(); ++i) {
    sim::Rng rng = fault_rng(FaultKind::kGrayFailure, i);
    Fault f;
    f.kind = FaultKind::kGrayFailure;
    draw_window(rng, params, &f);
    std::unordered_set<int> picked;
    for (int l = 0; l < params.gray_links; ++l) {
      const int link = cores[rng.index(cores.size())];
      if (!picked.insert(link).second) continue;
      for (const bool forward : {true, false}) {
        topo::LinkEvent ev;
        ev.link_id = link;
        ev.forward = forward;
        ev.from = f.begin;
        ev.until = f.end;
        ev.loss_boost = rng.uniform(params.gray_loss_lo, params.gray_loss_hi);
        f.events.push_back(ev);
      }
    }
    if (!f.events.empty()) sc.faults_.push_back(std::move(f));
  }

  // Timeline order (stable: equal begins keep the generation order above,
  // which is itself deterministic).
  std::stable_sort(sc.faults_.begin(), sc.faults_.end(),
                   [](const Fault& a, const Fault& b) { return a.begin < b.begin; });
  for (std::size_t i = 0; i < sc.faults_.size(); ++i) {
    sc.faults_[i].index = static_cast<int>(i);
  }
  return sc;
}

int Scenario::count(FaultKind k) const {
  int n = 0;
  for (const auto& f : faults_) {
    if (f.kind == k) ++n;
  }
  return n;
}

std::string Scenario::describe(const Fault& f) const {
  char buf[160];
  switch (f.kind) {
    case FaultKind::kLinkFlap:
      std::snprintf(buf, sizeof buf, "#%d %s AS%d-AS%d [%.1f, %.1f)s", f.index,
                    fault_kind_name(f.kind), f.as_a, f.as_b,
                    f.begin.to_seconds(), f.end.to_seconds());
      break;
    case FaultKind::kDcOutage:
      std::snprintf(buf, sizeof buf, "#%d %s dc=%d [%.1f, %.1f)s", f.index,
                    fault_kind_name(f.kind), f.dc, f.begin.to_seconds(),
                    f.end.to_seconds());
      break;
    default:
      std::snprintf(buf, sizeof buf, "#%d %s %zu link events [%.1f, %.1f)s",
                    f.index, fault_kind_name(f.kind), f.events.size(),
                    f.begin.to_seconds(), f.end.to_seconds());
      break;
  }
  return buf;
}

}  // namespace cronets::chaos
