#include "chaos/injector.h"

#include <cassert>

namespace cronets::chaos {

void Injector::arm(const Scenario& scenario) {
  assert(faults_.empty() && "arm() is one-shot");
  faults_ = scenario.faults();
  // Schedule in timeline order: at equal times the queue is FIFO, so the
  // transition order is the deterministic schedule order below.
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    queue_->schedule(faults_[i].begin,
                     [this, i] { begin_fault(faults_[i], faults_[i].begin); });
    queue_->schedule(faults_[i].end,
                     [this, i] { end_fault(faults_[i], faults_[i].end); });
  }
}

void Injector::begin_fault(Fault& f, sim::Time t) {
  switch (f.kind) {
    case FaultKind::kLinkFlap:
      topo_->set_adjacency_up(f.as_a, f.as_b, false);
      break;
    case FaultKind::kDcOutage: {
      const int dc_ep = topo_->dc_endpoints()[static_cast<std::size_t>(f.dc)];
      const int dc_as = topo_->endpoint(dc_ep).as_id;
      // Snapshot the currently-up adjacencies first: the restore at fault
      // end must not resurrect sessions some other fault took down.
      f.downed.clear();
      for (const auto& adj : topo_->ases()[static_cast<std::size_t>(dc_as)].adj) {
        if (adj.up) f.downed.emplace_back(dc_as, adj.nbr_as);
      }
      for (const auto& [a, b] : f.downed) topo_->set_adjacency_up(a, b, false);
      break;
    }
    case FaultKind::kCongestionStorm:
    case FaultKind::kGrayFailure:
      // The events carry their own [begin, end) window; adding them now
      // (not at arm time) is what churns the mutation epoch mid-run.
      for (const auto& ev : f.events) topo_->add_event(ev);
      break;
  }
  ++begun_;
  if (observer_) observer_->on_fault_begin(f, t);
}

void Injector::end_fault(Fault& f, sim::Time t) {
  switch (f.kind) {
    case FaultKind::kLinkFlap:
      topo_->set_adjacency_up(f.as_a, f.as_b, true);
      break;
    case FaultKind::kDcOutage:
      for (const auto& [a, b] : f.downed) topo_->set_adjacency_up(a, b, true);
      break;
    case FaultKind::kCongestionStorm:
    case FaultKind::kGrayFailure:
      break;  // events expire by their own time window
  }
  ++ended_;
  if (observer_) observer_->on_fault_end(f, t);
}

}  // namespace cronets::chaos
