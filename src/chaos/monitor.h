#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chaos/injector.h"
#include "chaos/scenario.h"
#include "service/broker.h"
#include "sim/time.h"

namespace cronets::chaos {

/// Per-fault SLO record. Times are -1 when the transition never happened
/// (e.g. a fault whose blast radius was empty never needs a repin).
struct FaultReport {
  FaultKind kind = FaultKind::kLinkFlap;
  double begin_s = 0.0;
  double end_s = -1.0;
  /// First probe applied to an impacted pair after fault begin.
  double time_to_detect_s = -1.0;
  /// Hard faults: fault begin -> forced failover repin done. 0 when the
  /// fault impacted nothing.
  double time_to_repin_s = -1.0;
  int pairs_impacted = 0;     ///< pairs with any candidate on the faulted element
  int sessions_impacted = 0;  ///< sessions on impacted pairs at fault begin
  int sessions_degraded = 0;  ///< distinct sessions that sat pinned to the fault
  int sessions_dropped = 0;   ///< degraded sessions released before recovering
};

/// Aggregate resilience SLOs of one run. Every field is a pure function of
/// the seeds and config: all accounting happens on the single-threaded
/// control-plane queue, in event order.
struct ResilienceReport {
  std::vector<FaultReport> faults;
  double total_session_s = 0.0;     ///< integral of live sessions over time
  double degraded_session_s = 0.0;  ///< integral of degraded sessions
  /// Fraction of session-seconds spent on a usable (non-faulted) path.
  double availability = 1.0;
  /// Goodput regret split by whether the probed pair was inside an active
  /// fault's blast radius at probe time.
  double regret_in_sum = 0.0;
  std::uint64_t regret_in_samples = 0;
  double regret_out_sum = 0.0;
  std::uint64_t regret_out_samples = 0;
  int hard_faults_impacting = 0;  ///< hard faults with a non-empty blast radius
  /// Worst fault-begin -> repin-done time over impacting hard faults.
  double max_hard_repin_s = 0.0;
  int sessions_dropped = 0;  ///< sum over faults

  double mean_regret_in() const {
    return regret_in_samples ? regret_in_sum / static_cast<double>(regret_in_samples) : 0.0;
  }
  double mean_regret_out() const {
    return regret_out_samples ? regret_out_sum / static_cast<double>(regret_out_samples) : 0.0;
  }
};

/// Bridges the broker's decision stream and the injector's fault timeline
/// into resilience SLOs: time-to-detect, time-to-repin, degraded
/// session-seconds, availability, and in/out-of-fault goodput regret.
/// Attaches itself as the broker's monitor; purely observational, so the
/// broker's decision fingerprint is identical with or without it.
class ResilienceMonitor : public service::BrokerMonitor, public FaultObserver {
 public:
  explicit ResilienceMonitor(service::Broker* broker);
  ~ResilienceMonitor() override;

  /// Close the session-second integrals and open fault windows at the end
  /// of the run. Call once, after the last run_until.
  void finalize(sim::Time t);
  const ResilienceReport& report() const { return report_; }

  // FaultObserver
  void on_fault_begin(const Fault& f, sim::Time t) override;
  void on_fault_end(const Fault& f, sim::Time t) override;

  // service::BrokerMonitor
  void on_admit(std::uint64_t id, int pair_idx, int candidate,
                double demand_bps, sim::Time t) override;
  void on_release(std::uint64_t id, int pair_idx, sim::Time t) override;
  void on_probe_applied(int pair_idx, sim::Time t, bool repinned,
                        int moved) override;
  void on_failover_complete(sim::Time began, sim::Time t,
                            const std::vector<int>& pairs, int moved) override;

 private:
  struct ActiveFault {
    const Fault* fault = nullptr;  ///< injector storage (stable once armed)
    int slot = -1;                 ///< index into report_.faults
    sim::Time begin{};
    bool detected = false;
    bool repinned = false;
    std::vector<std::pair<int, int>> adjs;  ///< hard: downed adjacencies
    std::vector<int> links;                 ///< soft: event link ids
    std::unordered_set<int> pairs;          ///< impacted pair indices
  };

  /// Does this candidate currently sit on the fault's failed element?
  /// With `include_invalid`, a candidate whose re-expanded path is invalid
  /// (severed — no route) also counts; use only for re-checks on pairs
  /// already inside the fault's blast radius.
  bool touches(const ActiveFault& af, const service::Candidate& c,
               bool include_invalid) const;
  bool pair_in_active_fault(int pair_idx) const;
  /// Advance the session-second integrals to `t` (call before any state
  /// change that alters the live or degraded counts).
  void advance(sim::Time t);
  void enter_degraded(std::uint64_t id, int pair_idx, int slot);
  void exit_degraded(std::uint64_t id, bool dropped);

  service::Broker* broker_;
  ResilienceReport report_;
  std::vector<ActiveFault> active_;
  struct Degraded {
    int slot = -1;  ///< the fault that degraded this session
    int pair = -1;
  };
  std::unordered_map<std::uint64_t, Degraded> degraded_;
  std::size_t live_sessions_ = 0;
  sim::Time last_t_{0};
  std::vector<std::uint64_t> id_scratch_;
  bool finalized_ = false;
};

}  // namespace cronets::chaos
