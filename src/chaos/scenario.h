#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::chaos {

/// The fault vocabulary of the chaos engine. Hard faults (flap, outage)
/// disconnect routes and must trigger the broker's bounded-time failover;
/// soft faults (storm, gray) leave routing intact and must be absorbed by
/// the normal probe/rank/repin loop — the paper's "reachable but bad"
/// default path.
enum class FaultKind : std::uint8_t {
  kLinkFlap,         ///< one transit-transit adjacency down, then restored
  kDcOutage,         ///< every adjacency of one cloud DC AS down
  kCongestionStorm,  ///< transient utilization surge on a set of core links
  kGrayFailure,      ///< loss inflation on core links without disconnect
};

const char* fault_kind_name(FaultKind k);

/// One scheduled fault on the scenario timeline. Faults are pure data —
/// the Injector applies them to the world at `begin`/`end`.
struct Fault {
  FaultKind kind = FaultKind::kLinkFlap;
  int index = -1;  ///< position in the (begin-sorted) timeline
  sim::Time begin{};
  sim::Time end{};

  int as_a = -1, as_b = -1;  ///< kLinkFlap: the failed adjacency
  int dc = -1;               ///< kDcOutage: index into dc_endpoints()

  /// kCongestionStorm / kGrayFailure: prebuilt link events carrying the
  /// [begin, end) window; injected via Internet::add_event at fault begin
  /// so the mutation epoch (and every derived cache) churns mid-run.
  std::vector<topo::LinkEvent> events;

  /// kDcOutage: adjacencies actually taken down, filled by the Injector at
  /// fault begin and restored at fault end. Observers may read it while
  /// the fault is active.
  std::vector<std::pair<int, int>> downed;

  /// Hard faults disconnect routes; the failover SLO applies to them.
  bool hard() const {
    return kind == FaultKind::kLinkFlap || kind == FaultKind::kDcOutage;
  }
};

/// Shape of the standard scenario mix. Counts are per kind; intensities
/// are drawn per fault from the seeded stream.
struct ScenarioParams {
  int link_flaps = 4;
  int dc_outages = 1;
  int congestion_storms = 3;
  int gray_failures = 3;
  /// Faults begin inside [0.05, 0.75] x horizon and end by 0.95 x horizon,
  /// so every window closes while the workload still runs.
  sim::Time horizon = sim::Time::seconds(180);
  /// Repair-time (MTTR) distribution of every fault window: exponential
  /// with this mean, floored at `min_repair_s`.
  double mean_repair_s = 20.0;
  double min_repair_s = 5.0;
  /// Mean time to failure driving each fault's begin draw.
  double mean_failure_s = 60.0;
  int storm_links = 6;  ///< core links hit per congestion storm
  double storm_boost_lo = 0.25, storm_boost_hi = 0.55;
  int gray_links = 2;  ///< core links hit per gray failure
  double gray_loss_lo = 0.02, gray_loss_hi = 0.12;
};

/// A deterministic fault timeline: a pure function of the topology and
/// (world_seed, scenario_seed). Per-fault draws run on streams derived via
/// sim::hash_combine, so adding a fault kind or changing one count never
/// perturbs the other kinds' draws.
class Scenario {
 public:
  static Scenario generate(const topo::Internet& topo,
                           const ScenarioParams& params,
                           std::uint64_t world_seed,
                           std::uint64_t scenario_seed);

  const std::vector<Fault>& faults() const { return faults_; }
  int count(FaultKind k) const;
  /// One human-readable line per fault (bench/report output).
  std::string describe(const Fault& f) const;

 private:
  std::vector<Fault> faults_;
};

}  // namespace cronets::chaos
