#include "chaos/monitor.h"

#include <algorithm>
#include <cassert>

namespace cronets::chaos {

ResilienceMonitor::ResilienceMonitor(service::Broker* broker)
    : broker_(broker) {
  broker_->set_monitor(this);
}

ResilienceMonitor::~ResilienceMonitor() { broker_->set_monitor(nullptr); }

bool ResilienceMonitor::touches(const ActiveFault& af,
                                const service::Candidate& c,
                                bool include_invalid) const {
  // A hard fault that severed the candidate's route entirely leaves an
  // invalid re-expanded path behind — not on the failed adjacency anymore
  // (an invalid path has no traversals), but certainly not usable. Only
  // meaningful for re-checks on pairs already inside this fault's blast
  // radius: at fault begin every candidate still holds its stale-but-
  // intact pre-failure route, and an invalid path left by a *different*
  // active fault must not be attributed to this one.
  if (include_invalid && !af.adjs.empty()) {
    if ((c.path && !c.path->valid) || (c.leg2 && !c.leg2->valid)) return true;
  }
  const auto path_hits = [&](const topo::RouterPath& p) {
    for (const auto& [a, b] : af.adjs) {
      if (service::path_uses_adjacency(p, a, b)) return true;
    }
    if (!af.links.empty()) {
      for (const auto& trav : p.traversals) {
        for (int link : af.links) {
          if (trav.link_id == link) return true;
        }
      }
    }
    return false;
  };
  return (c.path && path_hits(*c.path)) || (c.leg2 && path_hits(*c.leg2));
}

bool ResilienceMonitor::pair_in_active_fault(int pair_idx) const {
  for (const auto& af : active_) {
    if (af.pairs.count(pair_idx)) return true;
  }
  return false;
}

void ResilienceMonitor::advance(sim::Time t) {
  if (t < last_t_) return;  // same-time events: integral already current
  const double dt = (t - last_t_).to_seconds();
  report_.total_session_s += dt * static_cast<double>(live_sessions_);
  report_.degraded_session_s += dt * static_cast<double>(degraded_.size());
  last_t_ = t;
}

void ResilienceMonitor::enter_degraded(std::uint64_t id, int pair_idx,
                                       int slot) {
  const auto [it, inserted] = degraded_.emplace(id, Degraded{slot, pair_idx});
  (void)it;
  if (inserted) ++report_.faults[static_cast<std::size_t>(slot)].sessions_degraded;
}

void ResilienceMonitor::exit_degraded(std::uint64_t id, bool dropped) {
  const auto it = degraded_.find(id);
  if (it == degraded_.end()) return;
  if (dropped) {
    ++report_.faults[static_cast<std::size_t>(it->second.slot)].sessions_dropped;
    ++report_.sessions_dropped;
  }
  degraded_.erase(it);
}

void ResilienceMonitor::on_fault_begin(const Fault& f, sim::Time t) {
  advance(t);
  ActiveFault af;
  af.fault = &f;
  af.slot = static_cast<int>(report_.faults.size());
  af.begin = t;
  FaultReport rep;
  rep.kind = f.kind;
  rep.begin_s = t.to_seconds();
  report_.faults.push_back(rep);

  switch (f.kind) {
    case FaultKind::kLinkFlap:
      af.adjs.emplace_back(f.as_a, f.as_b);
      break;
    case FaultKind::kDcOutage:
      af.adjs = f.downed;  // filled by the injector just before this hook
      break;
    case FaultKind::kCongestionStorm:
    case FaultKind::kGrayFailure:
      for (const auto& ev : f.events) {
        if (std::find(af.links.begin(), af.links.end(), ev.link_id) ==
            af.links.end()) {
          af.links.push_back(ev.link_id);
        }
      }
      break;
  }

  // Blast radius at begin: pairs with any candidate on the faulted
  // element, and — the degraded subset — sessions actually pinned to it.
  // Strict matching (no invalid-path attribution) so the radius agrees
  // with the broker's own mark_adjacency_down predicate: a hard fault
  // counts as impacting exactly when the broker will schedule a failover
  // for it.
  FaultReport& r = report_.faults[static_cast<std::size_t>(af.slot)];
  const auto& ranker = broker_->ranker();
  const auto& sessions = broker_->sessions();
  for (int i = 0; i < static_cast<int>(ranker.size()); ++i) {
    const service::PairState& p = ranker.pair(i);
    bool impacted = false;
    for (const auto& c : p.candidates) {
      if (touches(af, c, /*include_invalid=*/false)) {
        impacted = true;
        break;
      }
    }
    if (!impacted) continue;
    af.pairs.insert(i);
    ++r.pairs_impacted;
    id_scratch_.clear();
    sessions.pair_session_ids(p, &id_scratch_);
    r.sessions_impacted += static_cast<int>(id_scratch_.size());
    for (const std::uint64_t id : id_scratch_) {
      const service::Session& s = sessions.session(id);
      if (touches(af, p.candidates[static_cast<std::size_t>(s.candidate)],
                  /*include_invalid=*/false)) {
        enter_degraded(id, i, af.slot);
      }
    }
  }
  if (f.hard()) {
    if (af.pairs.empty()) {
      // Nothing to repin; also excludes this fault from later failover
      // attribution (a batched failover for other faults is not "its"
      // repin).
      r.time_to_repin_s = 0.0;
      af.repinned = true;
    } else {
      ++report_.hard_faults_impacting;
    }
  }
  active_.push_back(std::move(af));
}

void ResilienceMonitor::on_fault_end(const Fault& f, sim::Time t) {
  advance(t);
  const auto it =
      std::find_if(active_.begin(), active_.end(),
                   [&](const ActiveFault& af) { return af.fault == &f; });
  if (it == active_.end()) return;
  report_.faults[static_cast<std::size_t>(it->slot)].end_s = t.to_seconds();
  // The faulted element is healthy again: everyone still pinned to it
  // recovers by definition of the fault window.
  id_scratch_.clear();
  for (const auto& [id, d] : degraded_) {
    if (d.slot == it->slot) id_scratch_.push_back(id);
  }
  for (const std::uint64_t id : id_scratch_) exit_degraded(id, /*dropped=*/false);
  active_.erase(it);
}

void ResilienceMonitor::on_admit(std::uint64_t id, int pair_idx, int candidate,
                                 double demand_bps, sim::Time t) {
  (void)demand_bps;
  advance(t);
  ++live_sessions_;
  if (active_.empty()) return;
  // A session admitted into a live fault window can land on the faulted
  // element (soft faults don't block admission) — it joins the degraded set.
  const service::PairState& p = broker_->ranker().pair(pair_idx);
  for (const auto& af : active_) {
    if (af.pairs.count(pair_idx) &&
        touches(af, p.candidates[static_cast<std::size_t>(candidate)],
                /*include_invalid=*/true)) {
      enter_degraded(id, pair_idx, af.slot);
      break;
    }
  }
}

void ResilienceMonitor::on_release(std::uint64_t id, int pair_idx, sim::Time t) {
  (void)pair_idx;
  advance(t);
  assert(live_sessions_ > 0);
  --live_sessions_;
  // Released while still on a faulted path: counts against the SLO as a
  // session the fault cost us.
  exit_degraded(id, /*dropped=*/true);
}

void ResilienceMonitor::on_probe_applied(int pair_idx, sim::Time t,
                                         bool repinned, int moved) {
  (void)moved;
  // Regret attribution: inside vs. outside an active fault's blast radius.
  const service::PairState& p = broker_->ranker().pair(pair_idx);
  const bool inside = pair_in_active_fault(pair_idx);
  if (p.last_oracle_bps > 0.0) {
    const double regret =
        (p.last_oracle_bps - p.last_pinned_bps) / p.last_oracle_bps;
    if (inside) {
      report_.regret_in_sum += regret;
      ++report_.regret_in_samples;
    } else {
      report_.regret_out_sum += regret;
      ++report_.regret_out_samples;
    }
  }
  if (!inside) return;
  for (auto& af : active_) {
    if (!af.pairs.count(pair_idx)) continue;
    if (!af.detected) {
      af.detected = true;
      report_.faults[static_cast<std::size_t>(af.slot)].time_to_detect_s =
          (t - af.begin).to_seconds();
    }
  }
  if (!repinned) return;
  // Sessions of this pair may have migrated off (or onto) a faulted
  // element; re-evaluate the degraded set for the pair.
  advance(t);
  id_scratch_.clear();
  broker_->sessions().pair_session_ids(p, &id_scratch_);
  for (const std::uint64_t id : id_scratch_) {
    const auto it = degraded_.find(id);
    if (it == degraded_.end()) continue;
    const auto af_it = std::find_if(
        active_.begin(), active_.end(),
        [&](const ActiveFault& af) { return af.slot == it->second.slot; });
    if (af_it == active_.end()) continue;
    const service::Session& s = broker_->sessions().session(id);
    if (!touches(*af_it, p.candidates[static_cast<std::size_t>(s.candidate)],
                 /*include_invalid=*/true)) {
      exit_degraded(id, /*dropped=*/false);
    }
  }
}

void ResilienceMonitor::on_failover_complete(sim::Time began, sim::Time t,
                                             const std::vector<int>& pairs,
                                             int moved) {
  (void)pairs, (void)moved;
  // Every hard fault whose mutations were batched into this failover
  // (begin inside [began, t]) is now repinned.
  for (auto& af : active_) {
    if (af.repinned || !af.fault->hard()) continue;
    if (af.begin >= began && af.begin <= t) {
      af.repinned = true;
      FaultReport& r = report_.faults[static_cast<std::size_t>(af.slot)];
      r.time_to_repin_s = (t - af.begin).to_seconds();
      report_.max_hard_repin_s =
          std::max(report_.max_hard_repin_s, r.time_to_repin_s);
    }
  }
}

void ResilienceMonitor::finalize(sim::Time t) {
  if (finalized_) return;
  finalized_ = true;
  advance(t);
  for (const auto& af : active_) {
    FaultReport& r = report_.faults[static_cast<std::size_t>(af.slot)];
    if (r.end_s < 0.0) r.end_s = t.to_seconds();
  }
  active_.clear();
  degraded_.clear();
  report_.availability =
      report_.total_session_s > 0.0
          ? 1.0 - report_.degraded_session_s / report_.total_session_s
          : 1.0;
}

}  // namespace cronets::chaos
