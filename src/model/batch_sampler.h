#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/flow_model.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::model {

/// Batch-oriented, SIMD-friendly path sampler: a structure-of-arrays repack
/// of FlowModel::PathAggregates. Interned paths become dense handles whose
/// link-field constants (AR(1) parameters, base RTTs, delays, capacities)
/// live in contiguous arrays, and `sample_batch` evaluates a whole batch of
/// paths at one timestamp with
///
///  1. *deduplicated* link-field evaluation — each (link direction, t) is
///     computed exactly once per batch no matter how many paths cross it
///     (core links shared by many overlay legs are the common case), and
///  2. branch-light flat loops over the SoA store that the compiler can
///     auto-vectorize (the hash-indexed AR(1) innovations in particular).
///
/// Results are bitwise identical to FlowModel::sample(PathRef, t) at every
/// batch size — enforced by tests/batch_sampler_test.cc and the
/// bench_micro "batch sample == scalar sample" check. Unlike the scalar
/// fast path, no per-sample lock, hash-map memo probe, or shared_ptr
/// refcount is touched: a warm batch is pure arithmetic over dense arrays.
///
/// Thread-safety: none — a BatchSampler is a per-thread object (the batched
/// measurement consumers keep one per worker thread). Interning pins the
/// underlying RouterPath via the stored PathRef; `begin_batch` revalidates
/// against the topology mutation epoch and resets the store (invalidating
/// all handles) when the world has mutated, so callers re-intern their
/// paths at the start of every batch.
class BatchSampler {
 public:
  explicit BatchSampler(const FlowModel* flow)
      : flow_(flow),
        topo_(flow->topo()),
        epoch_(flow->topo()->mutation_epoch()) {
    path_slot_begin_.push_back(0);
  }

  /// Revalidate against the topology mutation epoch. Returns true if the
  /// store was reset (every previously returned handle is now invalid).
  bool begin_batch();

  /// Dense handle of `path`, interning its aggregates into the SoA store on
  /// first use. Valid until the next store reset (see begin_batch).
  int intern(const topo::PathRef& path);

  /// Metrics of handles[i] at time `t` into out[i]. Bitwise identical to
  /// FlowModel::sample(handle's path, t) for every element.
  void sample_batch(const int* handles, std::size_t n, sim::Time t,
                    PathMetrics* out);

  std::size_t paths() const { return path_ref_.size(); }
  std::size_t unique_fields() const { return f_stream_.size(); }
  /// Link-field evaluations saved by within-batch dedup since construction:
  /// (total path-link traversals sampled) - (unique fields evaluated).
  std::uint64_t dedup_saved() const { return dedup_saved_; }

  double path_base_rtt_ms(int handle) const {
    return path_base_rtt_ms_[static_cast<std::size_t>(handle)];
  }
  double path_min_capacity_bps(int handle) const {
    return path_min_capacity_bps_[static_cast<std::size_t>(handle)];
  }

 private:
  std::uint32_t intern_field(const FlowModel::LinkField& f);
  void reset();

  const FlowModel* flow_;
  const topo::Internet* topo_;
  std::uint64_t epoch_;

  // --- interned paths (SoA; the PathRef pins the keying pointer alive) ---
  std::unordered_map<const topo::RouterPath*, int> path_index_;
  std::vector<topo::PathRef> path_ref_;
  std::vector<double> path_base_rtt_ms_;
  std::vector<double> path_min_capacity_bps_;
  std::vector<int> path_hops_;
  std::vector<std::uint32_t> path_slot_begin_;  ///< size paths+1 (prefix sums)
  std::vector<std::uint32_t> slot_field_;       ///< per traversal: field index

  // --- unique link-direction fields (SoA, deduplicated by stream id) ---
  std::unordered_map<std::uint64_t, std::uint32_t> field_index_;
  std::vector<std::uint64_t> f_stream_;
  std::vector<std::int64_t> f_epoch_ns_;
  std::vector<double> f_a_;
  std::vector<int> f_horizon_;
  std::vector<double> f_stationary_sd_;
  std::vector<double> f_sqrt_w2_;
  std::vector<double> f_delay_ms_;
  std::vector<double> f_pkt_ms_;
  std::vector<double> f_capacity_bps_;
  std::vector<net::BackgroundParams> f_bg_;  ///< loss + diurnal parameters
  std::vector<std::uint8_t> f_has_diurnal_;
  std::vector<std::uint32_t> f_event_begin_;  ///< size fields+1 into events_
  std::vector<topo::LinkEvent> events_;

  // --- per-batch scratch (persistent so warm batches do not allocate) ---
  std::vector<std::uint32_t> used_;  ///< unique fields touched, first-touch order
  std::vector<std::uint32_t> mark_;  ///< per-field batch stamp
  std::uint32_t stamp_ = 0;
  std::vector<double> u_;            ///< per-field utilization at t
  std::vector<double> one_minus_loss_;
  std::vector<double> queue_ms_;
  std::vector<double> residual_bps_;
  std::uint64_t dedup_saved_ = 0;
};

}  // namespace cronets::model
