#include "model/batch_sampler.h"

#include <algorithm>
#include <cassert>

#include "sim/hash_rng.h"

namespace cronets::model {

namespace {
// utilization() caps the AR(1) truncation horizon at 64 (see FlowModel);
// the innovation scratch below relies on that bound.
constexpr int kMaxHorizon = 64;
}  // namespace

void BatchSampler::reset() {
  path_index_.clear();
  path_ref_.clear();
  path_base_rtt_ms_.clear();
  path_min_capacity_bps_.clear();
  path_hops_.clear();
  path_slot_begin_.clear();
  path_slot_begin_.push_back(0);
  slot_field_.clear();
  field_index_.clear();
  f_stream_.clear();
  f_epoch_ns_.clear();
  f_a_.clear();
  f_horizon_.clear();
  f_stationary_sd_.clear();
  f_sqrt_w2_.clear();
  f_delay_ms_.clear();
  f_pkt_ms_.clear();
  f_capacity_bps_.clear();
  f_bg_.clear();
  f_has_diurnal_.clear();
  f_event_begin_.clear();
  events_.clear();
  used_.clear();
  mark_.clear();
  stamp_ = 0;
}

bool BatchSampler::begin_batch() {
  const std::uint64_t epoch = topo_->mutation_epoch();
  if (epoch == epoch_) return false;
  reset();
  epoch_ = epoch;
  return true;
}

std::uint32_t BatchSampler::intern_field(const FlowModel::LinkField& f) {
  const auto [it, inserted] =
      field_index_.emplace(f.stream, static_cast<std::uint32_t>(f_stream_.size()));
  if (!inserted) return it->second;
  assert(f.horizon <= kMaxHorizon);
  f_stream_.push_back(f.stream);
  f_epoch_ns_.push_back(f.epoch_ns);
  f_a_.push_back(f.a);
  f_horizon_.push_back(f.horizon);
  f_stationary_sd_.push_back(f.stationary_sd);
  f_sqrt_w2_.push_back(f.sqrt_w2);
  f_delay_ms_.push_back(f.delay_ms);
  f_pkt_ms_.push_back(f.pkt_ms);
  f_capacity_bps_.push_back(f.capacity_bps);
  f_bg_.push_back(f.bg);
  f_has_diurnal_.push_back(f.has_diurnal ? 1 : 0);
  if (f_event_begin_.empty()) f_event_begin_.push_back(0);
  events_.insert(events_.end(), f.events.begin(), f.events.end());
  f_event_begin_.push_back(static_cast<std::uint32_t>(events_.size()));
  return it->second;
}

int BatchSampler::intern(const topo::PathRef& path) {
  const auto it = path_index_.find(path.get());
  if (it != path_index_.end()) return it->second;
  // Reuse the model's memoized aggregates: the SoA store is a repack of
  // exactly the constants the scalar fast path consumes.
  const auto agg = flow_->aggregates(path);
  const int handle = static_cast<int>(path_ref_.size());
  path_ref_.push_back(path);
  path_base_rtt_ms_.push_back(agg->base_rtt_ms);
  path_min_capacity_bps_.push_back(agg->min_capacity_bps);
  path_hops_.push_back(agg->hop_count);
  for (const FlowModel::LinkField& f : agg->links) {
    slot_field_.push_back(intern_field(f));
  }
  path_slot_begin_.push_back(static_cast<std::uint32_t>(slot_field_.size()));
  path_index_.emplace(path.get(), handle);
  return handle;
}

void BatchSampler::sample_batch(const int* handles, std::size_t n, sim::Time t,
                                PathMetrics* out) {
  // Pass 1: the unique link fields this batch touches, in first-touch
  // order. A field crossed by many paths is collected (and later
  // evaluated) exactly once.
  mark_.resize(f_stream_.size(), 0);
  if (++stamp_ == 0) {  // stamp wrapped: invalidate every mark
    std::fill(mark_.begin(), mark_.end(), 0);
    stamp_ = 1;
  }
  used_.clear();
  std::uint64_t traversals = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = static_cast<std::size_t>(handles[i]);
    for (std::uint32_t k = path_slot_begin_[h]; k < path_slot_begin_[h + 1]; ++k) {
      const std::uint32_t fi = slot_field_[k];
      ++traversals;
      if (mark_[fi] != stamp_) {
        mark_[fi] = stamp_;
        used_.push_back(fi);
      }
    }
  }
  dedup_saved_ += traversals - used_.size();

  // Pass 2: evaluate each used field once. The innovation prefill below is
  // the hot loop — pure integer hashing plus a uint->double conversion with
  // no loop-carried dependency, so it auto-vectorizes; the weighted sum
  // stays scalar to keep the accumulation order (and bits) of the scalar
  // sampler. Derived per-field quantities (loss complement, queueing delay,
  // residual) are also computed once here instead of once per traversal.
  u_.resize(f_stream_.size());
  one_minus_loss_.resize(f_stream_.size());
  queue_ms_.resize(f_stream_.size());
  residual_bps_.resize(f_stream_.size());
  for (const std::uint32_t fi : used_) {
    const std::int64_t epoch_n = t.ns() / f_epoch_ns_[fi];
    const std::uint64_t stream = f_stream_[fi];
    const int horizon = f_horizon_[fi];
    std::uint64_t keys[kMaxHorizon];
    double innov[kMaxHorizon];
    for (int j = 0; j < horizon; ++j) {
      keys[j] = sim::hash_combine(stream, static_cast<std::uint64_t>(epoch_n - j));
    }
    for (int j = 0; j < horizon; ++j) {
      innov[j] = sim::hash_centered(keys[j]);
    }
    double acc = 0.0, w = 1.0;
    const double a = f_a_[fi];
    for (int j = 0; j < horizon; ++j) {
      acc += w * innov[j];
      w *= a;
    }
    double u = f_bg_[fi].mean_util + acc * f_stationary_sd_[fi] / f_sqrt_w2_[fi];
    u = std::clamp(u, 0.0, 0.98);
    double total = f_has_diurnal_[fi] ? u + net::diurnal_component(f_bg_[fi], t) : u;
    for (std::uint32_t e = f_event_begin_[fi]; e < f_event_begin_[fi + 1]; ++e) {
      const topo::LinkEvent& ev = events_[e];
      if (t >= ev.from && t < ev.until) total += ev.util_boost;
    }
    total = std::clamp(total, 0.0, 0.98);
    u_[fi] = total;
    one_minus_loss_[fi] = 1.0 - net::loss_from_utilization(f_bg_[fi], total);
    for (std::uint32_t e = f_event_begin_[fi]; e < f_event_begin_[fi + 1]; ++e) {
      const topo::LinkEvent& ev = events_[e];
      if (ev.loss_boost != 0.0 && t >= ev.from && t < ev.until) {
        one_minus_loss_[fi] *= (1.0 - ev.loss_boost);
      }
    }
    // Light cross-traffic queueing (M/M/1-ish, negligible except when hot).
    queue_ms_[fi] =
        std::min(5.0, total / std::max(0.02, 1.0 - total) * f_pkt_ms_[fi]);
    residual_bps_[fi] = f_capacity_bps_[fi] * (1.0 - total);
  }

  // Pass 3: per-path accumulation over precomputed per-field values, in
  // the scalar sampler's link order and operation shape.
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = static_cast<std::size_t>(handles[i]);
    PathMetrics m;
    m.capacity_bps = path_min_capacity_bps_[h];
    m.residual_bps = 1e18;
    double survive = 1.0;
    double oneway_ms = 0.0;
    for (std::uint32_t k = path_slot_begin_[h]; k < path_slot_begin_[h + 1]; ++k) {
      const std::uint32_t fi = slot_field_[k];
      survive *= one_minus_loss_[fi];
      oneway_ms += f_delay_ms_[fi];
      oneway_ms += queue_ms_[fi];
      m.residual_bps = std::min(m.residual_bps, residual_bps_[fi]);
    }
    m.loss = 1.0 - survive;
    m.rtt_ms = 2.0 * oneway_ms;
    m.hop_count = path_hops_[h];
    out[i] = m;
  }
}

}  // namespace cronets::model
