#include "model/batch_sampler.h"

#include <algorithm>
#include <cassert>

#include "model/simd/dispatch.h"
#include "sim/hash_rng.h"

namespace cronets::model {

namespace {
// utilization() caps the AR(1) truncation horizon at 64 (see FlowModel);
// the innovation scratch below relies on that bound.
constexpr int kMaxHorizon = 64;
}  // namespace

void BatchSampler::reset() {
  path_index_.clear();
  path_ref_.clear();
  path_base_rtt_ms_.clear();
  path_min_capacity_bps_.clear();
  path_hops_.clear();
  path_slot_begin_.clear();
  path_slot_begin_.push_back(0);
  slot_field_.clear();
  field_index_.clear();
  f_stream_.clear();
  f_epoch_ns_.clear();
  f_a_.clear();
  f_horizon_.clear();
  f_stationary_sd_.clear();
  f_sqrt_w2_.clear();
  f_delay_ms_.clear();
  f_pkt_ms_.clear();
  f_capacity_bps_.clear();
  f_bg_.clear();
  f_has_diurnal_.clear();
  f_event_begin_.clear();
  events_.clear();
  f_weight_begin_.clear();
  f_weights_.clear();
  used_.clear();
  mark_.clear();
  stamp_ = 0;
  f_eval_.clear();
  plan_handles_.clear();
  plan_traversals_ = 0;
  plan_valid_ = false;
  plan_groups_.clear();
  plan_wt_.clear();
  plan_uniq_.clear();
  plan_out_of_.clear();
  uniq_out_.clear();
}

bool BatchSampler::begin_batch() {
  const std::uint64_t epoch = topo_->mutation_epoch();
  if (epoch == epoch_) return false;
  reset();
  epoch_ = epoch;
  return true;
}

std::uint32_t BatchSampler::intern_field(const FlowModel::LinkField& f) {
  const auto [it, inserted] =
      field_index_.emplace(f.stream, static_cast<std::uint32_t>(f_stream_.size()));
  if (!inserted) return it->second;
  assert(f.horizon <= kMaxHorizon);
  f_stream_.push_back(f.stream);
  f_epoch_ns_.push_back(f.epoch_ns);
  f_a_.push_back(f.a);
  f_horizon_.push_back(f.horizon);
  f_stationary_sd_.push_back(f.stationary_sd);
  f_sqrt_w2_.push_back(f.sqrt_w2);
  f_delay_ms_.push_back(f.delay_ms);
  f_pkt_ms_.push_back(f.pkt_ms);
  f_capacity_bps_.push_back(f.capacity_bps);
  f_bg_.push_back(f.bg);
  f_has_diurnal_.push_back(f.has_diurnal ? 1 : 0);
  if (f_event_begin_.empty()) f_event_begin_.push_back(0);
  events_.insert(events_.end(), f.events.begin(), f.events.end());
  f_event_begin_.push_back(static_cast<std::uint32_t>(events_.size()));
  // Precompute the exponential weights with the scalar sampler's own
  // w *= a recurrence: the lane-ordered reduction over this array is then
  // bitwise identical to the original loop-carried form.
  if (f_weight_begin_.empty()) f_weight_begin_.push_back(0);
  double w = 1.0;
  for (int j = 0; j < f.horizon; ++j) {
    f_weights_.push_back(w);
    w *= f.a;
  }
  f_weight_begin_.push_back(static_cast<std::uint32_t>(f_weights_.size()));
  return it->second;
}

int BatchSampler::intern(const topo::PathRef& path) {
  const auto it = path_index_.find(path.get());
  if (it != path_index_.end()) return it->second;
  // Reuse the model's memoized aggregates: the SoA store is a repack of
  // exactly the constants the scalar fast path consumes.
  const auto agg = flow_->aggregates(path);
  const int handle = static_cast<int>(path_ref_.size());
  path_ref_.push_back(path);
  path_base_rtt_ms_.push_back(agg->base_rtt_ms);
  path_min_capacity_bps_.push_back(agg->min_capacity_bps);
  path_hops_.push_back(agg->hop_count);
  for (const FlowModel::LinkField& f : agg->links) {
    slot_field_.push_back(intern_field(f));
  }
  path_slot_begin_.push_back(static_cast<std::uint32_t>(slot_field_.size()));
  path_index_.emplace(path.get(), handle);
  return handle;
}

void BatchSampler::sample_batch(const int* handles, std::size_t n, sim::Time t,
                                PathMetrics* out) {
  // Pass 1: the unique link fields this batch touches, in first-touch
  // order. A field crossed by many paths is collected (and later
  // evaluated) exactly once. The scan depends only on the handle set (not
  // on t), so re-sampling the same handles — probe sweeps and benches do
  // this every tick — reuses the previous plan after a cheap content
  // compare instead of walking every slot again.
  const bool plan_hit = plan_valid_ && plan_handles_.size() == n &&
                        std::equal(handles, handles + n, plan_handles_.begin());
  if (!plan_hit) {
    mark_.resize(f_stream_.size(), 0);
    if (++stamp_ == 0) {  // stamp wrapped: invalidate every mark
      std::fill(mark_.begin(), mark_.end(), 0);
      stamp_ = 1;
    }
    used_.clear();
    std::uint64_t traversals = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto h = static_cast<std::size_t>(handles[i]);
      for (std::uint32_t k = path_slot_begin_[h]; k < path_slot_begin_[h + 1];
           ++k) {
        const std::uint32_t fi = slot_field_[k];
        ++traversals;
        if (mark_[fi] != stamp_) {
          mark_[fi] = stamp_;
          used_.push_back(fi);
        }
      }
    }
    plan_handles_.assign(handles, handles + n);
    plan_traversals_ = traversals;
    plan_valid_ = true;
    // Path-level dedup: accumulate each distinct handle once in pass 3 and
    // copy its metrics to every position that names it.
    plan_uniq_.clear();
    plan_out_of_.resize(n);
    std::vector<int> uniq_of(path_ref_.size(), -1);
    for (std::size_t i = 0; i < n; ++i) {
      const int h = handles[i];
      int& u = uniq_of[static_cast<std::size_t>(h)];
      if (u < 0) {
        u = static_cast<int>(plan_uniq_.size());
        plan_uniq_.push_back(h);
      }
      plan_out_of_[i] = static_cast<std::uint32_t>(u);
    }
    uniq_out_.resize(plan_uniq_.size());
    // Pack the used fields into lane groups of four and transpose their
    // (t-independent) exponential weights for the grouped fold kernel,
    // zero-padding each lane past its own horizon.
    plan_groups_.clear();
    plan_wt_.clear();
    for (std::size_t g0 = 0; g0 < used_.size(); g0 += 4) {
      PlanGroup g;
      g.nf = static_cast<int>(std::min<std::size_t>(4, used_.size() - g0));
      g.maxh = 0;
      for (int k = 0; k < 4; ++k) {
        const std::uint32_t fi =
            used_[g0 + static_cast<std::size_t>(std::min(k, g.nf - 1))];
        g.field[k] = fi;
        if (k < g.nf) g.maxh = std::max(g.maxh, f_horizon_[fi]);
      }
      g.wt_begin = static_cast<std::uint32_t>(plan_wt_.size());
      plan_wt_.resize(plan_wt_.size() + 4 * static_cast<std::size_t>(g.maxh),
                      0.0);
      for (int k = 0; k < g.nf; ++k) {
        const std::uint32_t fi = g.field[k];
        const double* w = f_weights_.data() + f_weight_begin_[fi];
        for (int j = 0; j < f_horizon_[fi]; ++j) {
          plan_wt_[g.wt_begin + 4 * static_cast<std::size_t>(j) +
                   static_cast<std::size_t>(k)] = w[j];
        }
      }
      plan_groups_.push_back(g);
    }
  }
  dedup_saved_ += plan_traversals_ - used_.size();

  // Pass 2: evaluate each used field once, four fields per grouped kernel
  // call (see model/simd/): the AR(1) innovations are pure integer hashing
  // plus an exact uint->double conversion, and the exponentially-weighted
  // fold runs one field per SIMD lane in the scalar fold's strict j order
  // — the serial chain that bounds this pass advances four fields per
  // vector add without touching the accumulation order (or bits) of the
  // scalar sampler. Derived per-field quantities (loss complement,
  // queueing delay, residual) are also computed once here instead of once
  // per traversal.
  f_eval_.resize(f_stream_.size());
  for (const PlanGroup& g : plan_groups_) {
    // Grouped innovation + fold: four fields per kernel call, one SIMD
    // lane each, every lane's accumulation in the scalar fold's exact
    // j order (see simd::ar1_weighted_sums).
    std::uint64_t streams4[4];
    std::int64_t ns4[4];
    int hz4[4];
    double acc4[4];
    for (int k = 0; k < 4; ++k) {
      const std::uint32_t gfi = g.field[k];
      streams4[k] = f_stream_[gfi];
      ns4[k] = t.ns() / f_epoch_ns_[gfi];
      hz4[k] = f_horizon_[gfi];
    }
    simd::ar1_weighted_sums(level_, g.nf, streams4, ns4, hz4,
                            plan_wt_.data() + g.wt_begin, g.maxh, acc4);
    for (int k = 0; k < g.nf; ++k) {
      const std::uint32_t fi = g.field[k];
      const double acc = acc4[k];
      double u = f_bg_[fi].mean_util + acc * f_stationary_sd_[fi] / f_sqrt_w2_[fi];
      u = std::clamp(u, 0.0, 0.98);
      double total = f_has_diurnal_[fi] ? u + net::diurnal_component(f_bg_[fi], t) : u;
      for (std::uint32_t e = f_event_begin_[fi]; e < f_event_begin_[fi + 1]; ++e) {
        const topo::LinkEvent& ev = events_[e];
        if (t >= ev.from && t < ev.until) total += ev.util_boost;
      }
      total = std::clamp(total, 0.0, 0.98);
      FieldEval& ev_out = f_eval_[fi];
      ev_out.one_minus_loss = 1.0 - net::loss_from_utilization(f_bg_[fi], total);
      for (std::uint32_t e = f_event_begin_[fi]; e < f_event_begin_[fi + 1]; ++e) {
        const topo::LinkEvent& ev = events_[e];
        if (ev.loss_boost != 0.0 && t >= ev.from && t < ev.until) {
          ev_out.one_minus_loss *= (1.0 - ev.loss_boost);
        }
      }
      ev_out.delay_ms = f_delay_ms_[fi];
      // Light cross-traffic queueing (M/M/1-ish, negligible except when hot).
      ev_out.queue_ms =
          std::min(5.0, total / std::max(0.02, 1.0 - total) * f_pkt_ms_[fi]);
      ev_out.residual_bps = f_capacity_bps_[fi] * (1.0 - total);
    }
  }

  // Pass 3: per-path accumulation over precomputed per-field values, in
  // the scalar sampler's link order and operation shape. Only distinct
  // handles are walked (plan_uniq_); duplicates get a struct copy below.
  for (std::size_t u = 0; u < plan_uniq_.size(); ++u) {
    const auto h = static_cast<std::size_t>(plan_uniq_[u]);
    PathMetrics m;
    m.capacity_bps = path_min_capacity_bps_[h];
    m.residual_bps = 1e18;
    double survive = 1.0;
    double oneway_ms = 0.0;
    for (std::uint32_t k = path_slot_begin_[h]; k < path_slot_begin_[h + 1]; ++k) {
      // One interleaved 32-byte record per slot (vs four scattered array
      // reads). delay and queue are added separately — matching the scalar
      // sampler's accumulation order is what keeps the bits identical.
      const FieldEval& fe = f_eval_[slot_field_[k]];
      survive *= fe.one_minus_loss;
      oneway_ms += fe.delay_ms;
      oneway_ms += fe.queue_ms;
      m.residual_bps = std::min(m.residual_bps, fe.residual_bps);
    }
    m.loss = 1.0 - survive;
    m.rtt_ms = 2.0 * oneway_ms;
    m.hop_count = path_hops_[h];
    uniq_out_[u] = m;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = uniq_out_[plan_out_of_[i]];
  }
}

}  // namespace cronets::model
