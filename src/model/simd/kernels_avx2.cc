// AVX2 measurement kernels. This translation unit is compiled with -mavx2
// and *only* -mavx2 — no -mfma: FMA contraction of a*b+c would change the
// rounding of the PFTK denominator and break the bitwise SIMD == scalar
// guarantee. Entry is guarded by a runtime CPUID check in dispatch.cc, so
// no AVX2 instruction executes on machines without the feature.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

#include "model/flow_model.h"
#include "model/simd/kernels.h"

namespace cronets::model::simd::detail {

namespace {

// Low 64 bits of a 64x64 multiply per lane (AVX2 has no 64-bit vector
// multiply): lo(a)*lo(b) + ((hi(a)*lo(b) + lo(a)*hi(b)) << 32).
inline __m256i mul_lo64(__m256i a, __m256i b) {
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

// sim::splitmix64, four lanes at a time. Integer math: exact by definition.
inline __m256i splitmix64x4(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ull));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = mul_lo64(x, _mm256_set1_epi64x(0xbf58476d1ce4e5b9ull));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = mul_lo64(x, _mm256_set1_epi64x(0x94d049bb133111ebull));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

// Exact uint64 -> double for values < 2^53 (anything right-shifted by 11),
// matching static_cast<double> bit-for-bit: both produce the (unique) exact
// representation. Split into 32-bit halves, rebase each off 2^52 via the
// exponent trick, and recombine — every step exact.
inline __m256d u64_to_double(__m256i v) {
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xffffffffll));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d dlo = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(lo, _mm256_castpd_si256(two52))),
      two52);
  const __m256d dhi = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(hi, _mm256_castpd_si256(two52))),
      two52);
  return _mm256_add_pd(_mm256_mul_pd(dhi, _mm256_set1_pd(0x1.0p32)), dlo);
}

// Four lanes of hash_centered(hash_combine(stream, n - j)) for consecutive
// j. The additive constant of hash_combine depends only on `stream`, so it
// is hoisted; the two splitmix64 rounds (one inside hash_combine, one
// inside hash_u01) and the affine map to [-sqrt3, sqrt3] mirror the scalar
// expressions operation for operation.
inline __m256d centered_lanes(__m256i stream, __m256i add, __m256i b) {
  const __m256i key = splitmix64x4(_mm256_xor_si256(stream, _mm256_add_epi64(b, add)));
  const __m256i bits = _mm256_srli_epi64(splitmix64x4(key), 11);
  const __m256d u01 = _mm256_mul_pd(
      _mm256_add_pd(u64_to_double(bits), _mm256_set1_pd(0.5)),
      _mm256_set1_pd(0x1.0p-53));
  return _mm256_mul_pd(_mm256_sub_pd(u01, _mm256_set1_pd(0.5)),
                       _mm256_set1_pd(3.4641016151377544));
}

}  // namespace

void ar1_innovations_avx2(std::uint64_t stream, std::int64_t n, int horizon,
                          double* innov) {
  const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(stream));
  // hash_combine(a, b) mixes a ^ (b + C + (a<<6) + (a>>2)); fold the
  // a-dependent terms into one per-field constant.
  const __m256i add = _mm256_set1_epi64x(static_cast<long long>(
      0x9e3779b97f4a7c15ull + (stream << 6) + (stream >> 2)));
  const __m256i vn = _mm256_set1_epi64x(static_cast<long long>(n));
  int j = 0;
  for (; j + 4 <= horizon; j += 4) {
    const __m256i b = _mm256_sub_epi64(
        vn, _mm256_setr_epi64x(j, j + 1, j + 2, j + 3));
    _mm256_storeu_pd(innov + j, centered_lanes(vs, add, b));
  }
  if (j < horizon) {
    alignas(32) double tail[4];
    const __m256i b = _mm256_sub_epi64(
        vn, _mm256_setr_epi64x(j, j + 1, j + 2, j + 3));
    _mm256_store_pd(tail, centered_lanes(vs, add, b));
    std::memcpy(innov + j, tail, sizeof(double) * static_cast<std::size_t>(horizon - j));
  }
}

void ar1_weighted_sums_avx2(int nf, const std::uint64_t* streams,
                            const std::int64_t* ns, const int* horizons,
                            const double* wt, int maxh, double* acc) {
  (void)horizons;  // maxh covers every lane; shorter lanes see zero weights
  const __m256i vs =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(streams));
  // hash_combine's a-dependent terms, per lane this time (four streams).
  const __m256i add = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ull)),
      _mm256_add_epi64(_mm256_slli_epi64(vs, 6), _mm256_srli_epi64(vs, 2)));
  const __m256i vn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ns));
  // One vector add per j advances all four lanes' serial chains: the fold
  // stays latency-bound, but on 4 fields at once. Zero-padded weights make
  // a lane's extra terms exact +/-0.0 adds (bitwise no-ops — see dispatch.h).
  __m256d accv = _mm256_setzero_pd();
  for (int j = 0; j < maxh; ++j) {
    const __m256i b = _mm256_sub_epi64(vn, _mm256_set1_epi64x(j));
    const __m256d innov = centered_lanes(vs, add, b);
    accv = _mm256_add_pd(accv, _mm256_mul_pd(_mm256_loadu_pd(wt + 4 * j), innov));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, accv);
  for (int k = 0; k < nf; ++k) acc[k] = lanes[k];
}

void pftk_batch_avx2(std::size_t n, const double* rtt_ms, const double* loss,
                     const double* residual_bps, const double* capacity_bps,
                     const double* rwnd_bytes, const TcpModelParams& p,
                     double* out_bps) {
  const __m256d c1e3 = _mm256_set1_pd(1e3);
  const __m256d rtt_floor = _mm256_set1_pd(1e-4);
  const __m256d loss_gate = _mm256_set1_pd(1e-9);
  const __m256d vb = _mm256_set1_pd(p.b);
  const __m256d numer = _mm256_set1_pd(p.aggressiveness * p.mss);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vloss = _mm256_loadu_pd(loss + i);
    const __m256d rtt = _mm256_max_pd(
        _mm256_div_pd(_mm256_loadu_pd(rtt_ms + i), c1e3), rtt_floor);
    // Loss-bound term, evaluated on every lane with the scalar expression
    // shape; lanes at or below the loss gate blend to the 1e18 sentinel
    // (their zero denominator yields an IEEE inf, discarded by the blend).
    const __m256d bp = _mm256_mul_pd(vb, vloss);
    const __m256d t0 = _mm256_max_pd(_mm256_set1_pd(0.2),
                                     _mm256_mul_pd(_mm256_set1_pd(2.0), rtt));
    const __m256d sq1 = _mm256_sqrt_pd(
        _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), bp), _mm256_set1_pd(3.0)));
    const __m256d sq2 = _mm256_mul_pd(
        _mm256_set1_pd(3.0),
        _mm256_sqrt_pd(_mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(3.0), bp),
                                     _mm256_set1_pd(8.0))));
    const __m256d poly = _mm256_add_pd(
        _mm256_set1_pd(1.0),
        _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(32.0), vloss), vloss));
    const __m256d denom = _mm256_add_pd(
        _mm256_mul_pd(rtt, sq1),
        _mm256_mul_pd(
            _mm256_mul_pd(_mm256_mul_pd(t0, _mm256_min_pd(sq2, _mm256_set1_pd(1.0))),
                          vloss),
            poly));
    const __m256d gated = _mm256_cmp_pd(vloss, loss_gate, _CMP_GT_OQ);
    const __m256d loss_bound = _mm256_blendv_pd(
        _mm256_set1_pd(1e18), _mm256_div_pd(numer, denom), gated);
    const __m256d wnd_bound = _mm256_div_pd(_mm256_loadu_pd(rwnd_bytes + i), rtt);
    const __m256d cap = _mm256_div_pd(
        _mm256_min_pd(_mm256_loadu_pd(residual_bps + i),
                      _mm256_loadu_pd(capacity_bps + i)),
        _mm256_set1_pd(8.0));
    const __m256d best =
        _mm256_min_pd(_mm256_min_pd(loss_bound, wnd_bound), cap);
    _mm256_storeu_pd(out_bps + i, _mm256_mul_pd(_mm256_set1_pd(8.0), best));
  }
  if (i < n) {
    pftk_batch_scalar(n - i, rtt_ms + i, loss + i, residual_bps + i,
                      capacity_bps + i, rwnd_bytes + i, p, out_bps + i);
  }
}

}  // namespace cronets::model::simd::detail

#endif  // x86-64
