#include <algorithm>
#include <cmath>

#include "model/flow_model.h"
#include "model/simd/kernels.h"
#include "sim/hash_rng.h"

namespace cronets::model::simd::detail {

// Portable reference kernels: the exact loops BatchSampler::sample_batch
// and model::pftk_throughput_batch ran before the SIMD split. Every wider
// level is pinned bitwise against these (tests/simd_test.cc and the
// bench_micro "simd sample == scalar sample" row).

void ar1_innovations_scalar(std::uint64_t stream, std::int64_t n, int horizon,
                            double* innov) {
  std::uint64_t keys[64];
  for (int j = 0; j < horizon; ++j) {
    keys[j] = sim::hash_combine(stream, static_cast<std::uint64_t>(n - j));
  }
  for (int j = 0; j < horizon; ++j) {
    innov[j] = sim::hash_centered(keys[j]);
  }
}

void ar1_weighted_sums_scalar(int nf, const std::uint64_t* streams,
                              const std::int64_t* ns, const int* horizons,
                              const double* wt, int maxh, double* acc) {
  (void)maxh;
  for (int k = 0; k < nf; ++k) {
    double innov[64];
    ar1_innovations_scalar(streams[k], ns[k], horizons[k], innov);
    // Strict j-order fold; wt rows hold this lane's weight at stride 4.
    double a = 0.0;
    for (int j = 0; j < horizons[k]; ++j) {
      a += wt[4 * j + k] * innov[j];
    }
    acc[k] = a;
  }
}

void pftk_batch_scalar(std::size_t n, const double* rtt_ms, const double* loss,
                       const double* residual_bps, const double* capacity_bps,
                       const double* rwnd_bytes, const TcpModelParams& p,
                       double* out_bps) {
  for (std::size_t i = 0; i < n; ++i) {
    const double rtt = std::max(rtt_ms[i] / 1e3, 1e-4);
    double loss_bound_Bps = 1e18;
    if (loss[i] > 1e-9) {
      const double bp = p.b * loss[i];
      const double t0 = std::max(0.2, 2.0 * rtt);  // RTO estimate
      const double denom =
          rtt * std::sqrt(2.0 * bp / 3.0) +
          t0 * std::min(1.0, 3.0 * std::sqrt(3.0 * bp / 8.0)) * loss[i] *
              (1.0 + 32.0 * loss[i] * loss[i]);
      loss_bound_Bps = p.aggressiveness * p.mss / denom;
    }
    const double wnd_bound_Bps = rwnd_bytes[i] / rtt;
    const double cap_Bps = std::min(residual_bps[i], capacity_bps[i]) / 8.0;
    out_bps[i] = 8.0 * std::min({loss_bound_Bps, wnd_bound_Bps, cap_Bps});
  }
}

}  // namespace cronets::model::simd::detail
