// NEON (aarch64) measurement kernels. A64 NEON has no 64-bit vector
// multiply, and scalar 64-bit MUL issues at full rate there, so the
// integer hashing runs scalar while the double math — the exact IEEE
// div / sqrt / min / max / blend chain — runs 2-wide. Compiled without
// -ffast-math or FMA contraction, every lane reproduces the scalar
// reference bit-for-bit (same argument as the AVX2 unit).
#if defined(__aarch64__)

#include <arm_neon.h>

#include "model/flow_model.h"
#include "model/simd/kernels.h"
#include "sim/hash_rng.h"

namespace cronets::model::simd::detail {

void ar1_innovations_neon(std::uint64_t stream, std::int64_t n, int horizon,
                          double* innov) {
  // hash_combine(a, b) mixes a ^ (b + C + (a<<6) + (a>>2)); the a-dependent
  // terms fold into one per-field constant.
  const std::uint64_t add =
      0x9e3779b97f4a7c15ull + (stream << 6) + (stream >> 2);
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t scale = vdupq_n_f64(0x1.0p-53);
  const float64x2_t spread = vdupq_n_f64(3.4641016151377544);
  int j = 0;
  for (; j + 2 <= horizon; j += 2) {
    const std::uint64_t b0 = static_cast<std::uint64_t>(n - j);
    const std::uint64_t b1 = static_cast<std::uint64_t>(n - (j + 1));
    const std::uint64_t k0 = sim::splitmix64(stream ^ (b0 + add));
    const std::uint64_t k1 = sim::splitmix64(stream ^ (b1 + add));
    const uint64x2_t bits = vcombine_u64(vcreate_u64(sim::splitmix64(k0) >> 11),
                                         vcreate_u64(sim::splitmix64(k1) >> 11));
    // vcvtq_f64_u64 is exact below 2^53, matching static_cast<double>.
    const float64x2_t u01 =
        vmulq_f64(vaddq_f64(vcvtq_f64_u64(bits), half), scale);
    vst1q_f64(innov + j, vmulq_f64(vsubq_f64(u01, half), spread));
  }
  if (j < horizon) {
    innov[j] = sim::hash_centered(
        sim::hash_combine(stream, static_cast<std::uint64_t>(n - j)));
  }
}

void ar1_weighted_sums_neon(int nf, const std::uint64_t* streams,
                            const std::int64_t* ns, const int* horizons,
                            const double* wt, int maxh, double* acc) {
  (void)horizons;  // maxh covers every lane; shorter lanes see zero weights
  // Two 2-wide chains covering lanes {0,1} and {2,3} of the 4-lane group
  // layout. Integer hashing stays scalar (no 64-bit vector multiply on
  // A64); the weighted fold — the latency-bound part — runs per lane in
  // strict j order, so each lane reproduces the scalar fold bitwise (the
  // zero-padded terms add exact +/-0.0, a no-op; see dispatch.h).
  std::uint64_t add[4];
  for (int k = 0; k < 4; ++k) {
    add[k] = 0x9e3779b97f4a7c15ull + (streams[k] << 6) + (streams[k] >> 2);
  }
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t scale = vdupq_n_f64(0x1.0p-53);
  const float64x2_t spread = vdupq_n_f64(3.4641016151377544);
  float64x2_t acc_lo = vdupq_n_f64(0.0);
  float64x2_t acc_hi = vdupq_n_f64(0.0);
  for (int j = 0; j < maxh; ++j) {
    std::uint64_t bits[4];
    for (int k = 0; k < 4; ++k) {
      const std::uint64_t b = static_cast<std::uint64_t>(ns[k] - j);
      bits[k] = sim::splitmix64(sim::splitmix64(streams[k] ^ (b + add[k]))) >> 11;
    }
    const float64x2_t u01_lo = vmulq_f64(
        vaddq_f64(vcvtq_f64_u64(vcombine_u64(vcreate_u64(bits[0]),
                                             vcreate_u64(bits[1]))),
                  half),
        scale);
    const float64x2_t u01_hi = vmulq_f64(
        vaddq_f64(vcvtq_f64_u64(vcombine_u64(vcreate_u64(bits[2]),
                                             vcreate_u64(bits[3]))),
                  half),
        scale);
    const float64x2_t innov_lo = vmulq_f64(vsubq_f64(u01_lo, half), spread);
    const float64x2_t innov_hi = vmulq_f64(vsubq_f64(u01_hi, half), spread);
    acc_lo = vaddq_f64(acc_lo, vmulq_f64(vld1q_f64(wt + 4 * j), innov_lo));
    acc_hi = vaddq_f64(acc_hi, vmulq_f64(vld1q_f64(wt + 4 * j + 2), innov_hi));
  }
  double lanes[4];
  vst1q_f64(lanes, acc_lo);
  vst1q_f64(lanes + 2, acc_hi);
  for (int k = 0; k < nf; ++k) acc[k] = lanes[k];
}

void pftk_batch_neon(std::size_t n, const double* rtt_ms, const double* loss,
                     const double* residual_bps, const double* capacity_bps,
                     const double* rwnd_bytes, const TcpModelParams& p,
                     double* out_bps) {
  const float64x2_t c1e3 = vdupq_n_f64(1e3);
  const float64x2_t rtt_floor = vdupq_n_f64(1e-4);
  const float64x2_t loss_gate = vdupq_n_f64(1e-9);
  const float64x2_t vb = vdupq_n_f64(p.b);
  const float64x2_t numer = vdupq_n_f64(p.aggressiveness * p.mss);
  const float64x2_t sentinel = vdupq_n_f64(1e18);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vloss = vld1q_f64(loss + i);
    const float64x2_t rtt =
        vmaxq_f64(vdivq_f64(vld1q_f64(rtt_ms + i), c1e3), rtt_floor);
    const float64x2_t bp = vmulq_f64(vb, vloss);
    const float64x2_t t0 =
        vmaxq_f64(vdupq_n_f64(0.2), vmulq_f64(vdupq_n_f64(2.0), rtt));
    const float64x2_t sq1 = vsqrtq_f64(
        vdivq_f64(vmulq_f64(vdupq_n_f64(2.0), bp), vdupq_n_f64(3.0)));
    const float64x2_t sq2 = vmulq_f64(
        vdupq_n_f64(3.0),
        vsqrtq_f64(vdivq_f64(vmulq_f64(vdupq_n_f64(3.0), bp), vdupq_n_f64(8.0))));
    const float64x2_t poly = vaddq_f64(
        vdupq_n_f64(1.0), vmulq_f64(vmulq_f64(vdupq_n_f64(32.0), vloss), vloss));
    const float64x2_t denom = vaddq_f64(
        vmulq_f64(rtt, sq1),
        vmulq_f64(vmulq_f64(vmulq_f64(t0, vminq_f64(sq2, vdupq_n_f64(1.0))),
                            vloss),
                  poly));
    const uint64x2_t gated = vcgtq_f64(vloss, loss_gate);
    const float64x2_t loss_bound =
        vbslq_f64(gated, vdivq_f64(numer, denom), sentinel);
    const float64x2_t wnd_bound = vdivq_f64(vld1q_f64(rwnd_bytes + i), rtt);
    const float64x2_t cap = vdivq_f64(
        vminq_f64(vld1q_f64(residual_bps + i), vld1q_f64(capacity_bps + i)),
        vdupq_n_f64(8.0));
    const float64x2_t best = vminq_f64(vminq_f64(loss_bound, wnd_bound), cap);
    vst1q_f64(out_bps + i, vmulq_f64(vdupq_n_f64(8.0), best));
  }
  if (i < n) {
    pftk_batch_scalar(n - i, rtt_ms + i, loss + i, residual_bps + i,
                      capacity_bps + i, rwnd_bytes + i, p, out_bps + i);
  }
}

}  // namespace cronets::model::simd::detail

#endif  // aarch64
