#pragma once

// Internal per-level kernel entry points behind simd/dispatch.h. The AVX2
// definitions live in a translation unit compiled with -mavx2 (and nothing
// stronger: FMA contraction would change the bits); they are only declared
// here and only called after a runtime CPUID check, so the rest of the
// binary carries no AVX2 instructions. The NEON definitions exist only on
// aarch64, where NEON is architecturally guaranteed.

#include <cstddef>
#include <cstdint>

namespace cronets::model {
struct TcpModelParams;
}

namespace cronets::model::simd::detail {

void ar1_innovations_scalar(std::uint64_t stream, std::int64_t n, int horizon,
                            double* innov);
void ar1_weighted_sums_scalar(int nf, const std::uint64_t* streams,
                              const std::int64_t* ns, const int* horizons,
                              const double* wt, int maxh, double* acc);
void pftk_batch_scalar(std::size_t n, const double* rtt_ms, const double* loss,
                       const double* residual_bps, const double* capacity_bps,
                       const double* rwnd_bytes, const TcpModelParams& p,
                       double* out_bps);

#if defined(__x86_64__) || defined(_M_X64)
void ar1_innovations_avx2(std::uint64_t stream, std::int64_t n, int horizon,
                          double* innov);
void ar1_weighted_sums_avx2(int nf, const std::uint64_t* streams,
                            const std::int64_t* ns, const int* horizons,
                            const double* wt, int maxh, double* acc);
void pftk_batch_avx2(std::size_t n, const double* rtt_ms, const double* loss,
                     const double* residual_bps, const double* capacity_bps,
                     const double* rwnd_bytes, const TcpModelParams& p,
                     double* out_bps);
#endif

#if defined(__aarch64__)
void ar1_innovations_neon(std::uint64_t stream, std::int64_t n, int horizon,
                          double* innov);
void ar1_weighted_sums_neon(int nf, const std::uint64_t* streams,
                            const std::int64_t* ns, const int* horizons,
                            const double* wt, int maxh, double* acc);
void pftk_batch_neon(std::size_t n, const double* rtt_ms, const double* loss,
                     const double* residual_bps, const double* capacity_bps,
                     const double* rwnd_bytes, const TcpModelParams& p,
                     double* out_bps);
#endif

}  // namespace cronets::model::simd::detail
