#pragma once

#include <cstddef>
#include <cstdint>

namespace cronets::model {
struct TcpModelParams;  // flow_model.h
}

namespace cronets::model::simd {

/// Instruction-set level of the vectorized measurement kernels. The level
/// is picked once per process (see active_level) and every kernel has a
/// portable scalar fallback, so a binary built with the AVX2/NEON
/// translation units still runs — and produces identical bits — on a
/// machine without them.
enum class Level : int {
  kScalar = 0,  ///< portable reference loops (always available)
  kAvx2 = 1,    ///< 4-wide doubles / 4x64-bit hashing (x86-64 with AVX2)
  kNeon = 2,    ///< 2-wide doubles (aarch64; NEON is baseline there)
};

/// Name used in logs and bench JSON ("scalar" / "avx2" / "neon").
const char* level_name(Level level);

/// Whether `level` can execute on this machine (compile-time ISA support
/// AND a runtime CPUID check for AVX2; NEON is unconditional on aarch64).
bool level_available(Level level);

/// The process-wide kernel level: the `CRONETS_SIMD` environment knob
/// (auto | avx2 | neon | scalar) clamped to what the machine supports.
/// "auto" (or unset) picks the widest available level; an unavailable or
/// unrecognized request warns once on stderr and falls back to auto.
/// Cached after the first call.
Level active_level();

/// Fill innov[0..horizon) with the AR(1) innovation lanes of one field:
///   innov[j] = sim::hash_centered(sim::hash_combine(stream, uint64(n - j)))
/// Bitwise identical across levels: the hash is integer math and the
/// uint64 -> double conversion plus affine map are exact IEEE operations,
/// so vector lanes reproduce the scalar loop bit-for-bit. The caller keeps
/// the exponentially-weighted *reduction* scalar, in lane order j = 0,1,...
/// (the "deterministic lane-ordered reduction"), which is what pins
/// SIMD == scalar at every batch size. `horizon` must be <= 64.
void ar1_innovations(Level level, std::uint64_t stream, std::int64_t n,
                     int horizon, double* innov);

/// Exponentially-weighted AR(1) folds for a *group* of up to four link
/// fields, one SIMD lane per field:
///   acc[k] = sum_{j=0}^{horizons[k]-1} wt[4*j + k] * innov_k(j)
/// with innov_k(j) as in ar1_innovations for (streams[k], ns[k]). `wt` is
/// the lane-transposed weight matrix: row j holds the four fields' j-th
/// exponential weights, zero-padded past each field's own horizon, `maxh`
/// rows total (maxh = max horizon of the group, <= 64).
///
/// Each lane's accumulation runs in strict j order — the identical serial
/// chain the scalar per-field fold executes — and a zero-padded term
/// contributes an exact +/-0.0 (the accumulator is never -0.0, so adding
/// it is a bitwise no-op). Hence acc[k] is bitwise identical to the scalar
/// fold at every level; the win is four independent latency-bound chains
/// advancing per vector add instead of one. streams/ns/horizons must have
/// four entries (pad spare lanes with any valid field); only acc[0..nf)
/// is meaningful.
void ar1_weighted_sums(Level level, int nf, const std::uint64_t* streams,
                       const std::int64_t* ns, const int* horizons,
                       const double* wt, int maxh, double* acc);

/// Vectorized flat-array PFTK: out_bps[i] bitwise identical to
/// pftk_throughput_bps(rtt_ms[i], loss[i], residual_bps[i],
/// capacity_bps[i], p with rwnd_bytes = rwnd_bytes[i]) at every level.
/// The scalar `loss > 1e-9` branch becomes a lane blend; sqrt / min / max /
/// div are correctly-rounded IEEE operations in every lane, so the blend
/// cannot change bits. Lanes where loss <= 1e-9 divide by a denominator of
/// zero before the blend discards the quotient — an IEEE inf, never a trap.
void pftk_batch(Level level, std::size_t n, const double* rtt_ms,
                const double* loss, const double* residual_bps,
                const double* capacity_bps, const double* rwnd_bytes,
                const TcpModelParams& p, double* out_bps);

}  // namespace cronets::model::simd
