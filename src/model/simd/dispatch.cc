#include "model/simd/dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "model/simd/kernels.h"

namespace cronets::model::simd {

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level widest_available() {
#if defined(__aarch64__)
  return Level::kNeon;
#else
  return cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
#endif
}

Level parse_env_level() {
  const char* v = std::getenv("CRONETS_SIMD");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "auto") == 0) {
    return widest_available();
  }
  if (std::strcmp(v, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(v, "avx2") == 0 || std::strcmp(v, "neon") == 0) {
    const Level want = std::strcmp(v, "avx2") == 0 ? Level::kAvx2 : Level::kNeon;
    if (level_available(want)) return want;
    std::fprintf(stderr,
                 "CRONETS_SIMD=%s: level not available on this machine; "
                 "using %s\n",
                 v, level_name(widest_available()));
    return widest_available();
  }
  std::fprintf(stderr,
               "CRONETS_SIMD=%s: unrecognized (want auto|avx2|neon|scalar); "
               "using %s\n",
               v, level_name(widest_available()));
  return widest_available();
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

bool level_available(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return cpu_has_avx2();
    case Level::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level active_level() {
  static const Level cached = parse_env_level();
  return cached;
}

void ar1_innovations(Level level, std::uint64_t stream, std::int64_t n,
                     int horizon, double* innov) {
  switch (level) {
#if defined(__x86_64__) || defined(_M_X64)
    case Level::kAvx2:
      detail::ar1_innovations_avx2(stream, n, horizon, innov);
      return;
#endif
#if defined(__aarch64__)
    case Level::kNeon:
      detail::ar1_innovations_neon(stream, n, horizon, innov);
      return;
#endif
    default:
      detail::ar1_innovations_scalar(stream, n, horizon, innov);
      return;
  }
}

void ar1_weighted_sums(Level level, int nf, const std::uint64_t* streams,
                       const std::int64_t* ns, const int* horizons,
                       const double* wt, int maxh, double* acc) {
  switch (level) {
#if defined(__x86_64__) || defined(_M_X64)
    case Level::kAvx2:
      detail::ar1_weighted_sums_avx2(nf, streams, ns, horizons, wt, maxh, acc);
      return;
#endif
#if defined(__aarch64__)
    case Level::kNeon:
      detail::ar1_weighted_sums_neon(nf, streams, ns, horizons, wt, maxh, acc);
      return;
#endif
    default:
      detail::ar1_weighted_sums_scalar(nf, streams, ns, horizons, wt, maxh,
                                       acc);
      return;
  }
}

void pftk_batch(Level level, std::size_t n, const double* rtt_ms,
                const double* loss, const double* residual_bps,
                const double* capacity_bps, const double* rwnd_bytes,
                const TcpModelParams& p, double* out_bps) {
  switch (level) {
#if defined(__x86_64__) || defined(_M_X64)
    case Level::kAvx2:
      detail::pftk_batch_avx2(n, rtt_ms, loss, residual_bps, capacity_bps,
                              rwnd_bytes, p, out_bps);
      return;
#endif
#if defined(__aarch64__)
    case Level::kNeon:
      detail::pftk_batch_neon(n, rtt_ms, loss, residual_bps, capacity_bps,
                              rwnd_bytes, p, out_bps);
      return;
#endif
    default:
      detail::pftk_batch_scalar(n, rtt_ms, loss, residual_bps, capacity_bps,
                                rwnd_bytes, p, out_bps);
      return;
  }
}

}  // namespace cronets::model::simd
