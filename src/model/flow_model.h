#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "model/simd/dispatch.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::model {

/// Instantaneous condition of one end-to-end path at a sample time.
struct PathMetrics {
  double rtt_ms = 0.0;        ///< average RTT incl. queueing
  double loss = 0.0;          ///< end-to-end packet loss probability
  double residual_bps = 0.0;  ///< min residual capacity along the path
  double capacity_bps = 0.0;  ///< min raw capacity (usually the NIC)
  int hop_count = 0;          ///< router-level hops
  /// Receiver window of the connection's sink (0: use TcpModelParams).
  double rwnd_bytes = 0.0;
};

/// Steady-state TCP throughput model parameters.
struct TcpModelParams {
  double mss = 1460.0;
  double b = 1.0;              ///< ACKed segments per ACK
  double rwnd_bytes = 4.0 * 1024 * 1024;
  /// Multiplier on the loss-based throughput term; calibrated against the
  /// packet-level CUBIC stack (CUBIC is more aggressive than the Reno that
  /// PFTK models). See tests/model_calibration_test.cc.
  double aggressiveness = 1.4;
  double noise_sigma = 0.08;   ///< lognormal measurement noise
};

/// PFTK (Padhye et al.) steady-state TCP throughput in bit/s, capped by the
/// receive window and path capacity. `rtt_ms`/`loss` as in PathMetrics.
double pftk_throughput_bps(double rtt_ms, double loss, double residual_bps,
                           double capacity_bps, const TcpModelParams& p);

/// Flat-loop PFTK over parallel arrays: out_bps[i] is bitwise identical to
/// pftk_throughput_bps(rtt_ms[i], ..., p') where p' is `p` with rwnd_bytes
/// replaced by rwnd_bytes[i]. The batched measurement path hoists every
/// deterministic throughput evaluation of a probe batch into one call;
/// the loop dispatches to the vectorized kernels in model/simd/ at the
/// process-wide simd::active_level() (CRONETS_SIMD), every level bitwise
/// identical to the scalar reference.
void pftk_throughput_batch(std::size_t n, const double* rtt_ms,
                           const double* loss, const double* residual_bps,
                           const double* capacity_bps, const double* rwnd_bytes,
                           const TcpModelParams& p, double* out_bps);

/// Explicit-level overload (benches/tests comparing scalar vs SIMD in one
/// process; same bits at every level).
void pftk_throughput_batch(simd::Level level, std::size_t n,
                           const double* rtt_ms, const double* loss,
                           const double* residual_bps,
                           const double* capacity_bps, const double* rwnd_bytes,
                           const TcpModelParams& p, double* out_bps);

/// Analytic "measurement instrument": evaluates per-link utilizations as a
/// stateless hash-indexed random field (stationary AR(1) statistics — the
/// same process the packet-level BackgroundProcess integrates), derives
/// path metrics, and predicts TCP / split-TCP / MPTCP throughput. Used for
/// the paper's large-scale sweeps (6,600 paths) where packet-level
/// simulation would be prohibitive; its agreement with the packet
/// simulator is enforced by tests.
///
/// Thread-safety: `utilization`, `link_loss`, and `sample` are const and
/// touch no mutable state — the utilization at (link, direction, t) is a
/// pure function of the model seed, so concurrent measurements see one
/// consistent world regardless of query order or thread count. The
/// throughput predictors draw measurement noise: pass an explicit `Rng`
/// (e.g. a per-pair stream) from parallel code; the overloads without one
/// use the model's own serial stream and are NOT thread-safe.
namespace detail {
/// Process-unique tag per FlowModel instance; keys the per-thread
/// field-value memo so models over different topologies never alias.
std::uint64_t next_flow_model_tag();
}  // namespace detail

class FlowModel {
 public:
  FlowModel(topo::Internet* topo, std::uint64_t seed)
      : topo_(topo), seed_(seed), rng_(seed) {}

  /// Utilization of one link direction at time `t` (stationary AR(1)
  /// random field, with diurnal component and scheduled transient events
  /// applied). Pure function of (seed, link, direction, t).
  double utilization(int link_id, bool forward, sim::Time t) const;
  /// Loss probability of one link direction at time `t`.
  double link_loss(int link_id, bool forward, sim::Time t) const;

  /// Sample the instantaneous metrics of a router path.
  PathMetrics sample(const topo::RouterPath& path, sim::Time t) const;
  /// Fast-path overload for interned paths: per-path constants (AR(1)
  /// field parameters, direction-resolved link conditions, matching
  /// transient events) are precomputed once per cached path, so the
  /// per-sample loop evaluates only the stochastic field itself. Bitwise
  /// identical to the generic overload — enforced by tests.
  PathMetrics sample(const topo::PathRef& path, sim::Time t) const;
  /// Metrics of the concatenation A->O->B (one tunnel; RTT and loss add).
  static PathMetrics concat(const PathMetrics& a, const PathMetrics& b);

  /// Static per-link constants of one directed traversal, precomputed at
  /// aggregate-build time so `sample` touches no topology state.
  struct LinkField {
    net::BackgroundParams bg;   ///< direction-resolved condition (copy)
    double delay_ms = 0.0;
    double capacity_bps = 0.0;
    double pkt_ms = 0.0;        ///< 1500-byte serialization time, ms
    std::uint64_t stream = 0;   ///< AR(1) innovation stream id
    std::int64_t epoch_ns = 1;
    double a = 0.0;             ///< AR(1) coefficient
    int horizon = 1;            ///< truncation length of the weighted sum
    double stationary_sd = 0.0;
    double sqrt_w2 = 1.0;       ///< sqrt of the truncated weight norm
    bool has_diurnal = false;
    std::vector<topo::LinkEvent> events;  ///< transients on this direction
  };

  /// Precomputed static aggregates of one interned path: the quantities
  /// the per-sample loop would otherwise re-derive on every call.
  struct PathAggregates {
    topo::PathRef path;          ///< pins the keying pointer alive
    double base_rtt_ms = 0.0;    ///< uncongested propagation RTT
    int hop_count = 0;
    double min_capacity_bps = 1e18;
    std::vector<LinkField> links;
  };

  /// The (memoized) aggregates of an interned path. Thread-safe; entries
  /// are invalidated when the Internet's mutation_epoch advances (transient
  /// events added, BGP failures injected).
  std::shared_ptr<const PathAggregates> aggregates(const topo::PathRef& path) const;

  // --- Throughput predictors (bit/s), with measurement noise ---
  double tcp_throughput(const PathMetrics& m, sim::Rng& rng) const;
  /// Plain tunnel overlay: a single TCP connection over the whole A->O->B.
  double overlay_plain(const PathMetrics& leg1, const PathMetrics& leg2,
                       sim::Rng& rng) const;
  /// Split-TCP at the overlay node: min of the two legs' own TCP rates.
  double overlay_split(const PathMetrics& leg1, const PathMetrics& leg2,
                       sim::Rng& rng) const;
  /// Same draws, same result, but also exposes the two per-leg TCP rates
  /// (either out pointer may be null). The multi-hop ranker reuses a
  /// one-hop probe's leg rates to score k-hop compositions without any
  /// extra measurement draws.
  double overlay_split(const PathMetrics& leg1, const PathMetrics& leg2,
                       sim::Rng& rng, double* leg1_bps, double* leg2_bps) const;
  /// Discrete bound: min of independently measured legs (no tunnel cost).
  double discrete(const PathMetrics& leg1, const PathMetrics& leg2,
                  sim::Rng& rng) const;
  /// Coupled MPTCP (OLIA/LIA): ~ the best single path.
  double mptcp_coupled(const std::vector<double>& per_path_tput, sim::Rng& rng) const;
  /// Uncoupled MPTCP: ~ sum of subflows, capped by the NIC.
  double mptcp_uncoupled(const std::vector<double>& per_path_tput, double nic_bps,
                         sim::Rng& rng) const;

  // Serial conveniences drawing from the model's own stream (single-thread).
  double tcp_throughput(const PathMetrics& m) { return tcp_throughput(m, rng_); }
  double overlay_plain(const PathMetrics& l1, const PathMetrics& l2) {
    return overlay_plain(l1, l2, rng_);
  }
  double overlay_split(const PathMetrics& l1, const PathMetrics& l2) {
    return overlay_split(l1, l2, rng_);
  }
  double discrete(const PathMetrics& l1, const PathMetrics& l2) {
    return discrete(l1, l2, rng_);
  }
  double mptcp_coupled(const std::vector<double>& t) { return mptcp_coupled(t, rng_); }
  double mptcp_uncoupled(const std::vector<double>& t, double nic_bps) {
    return mptcp_uncoupled(t, nic_bps, rng_);
  }

  std::uint64_t seed() const { return seed_; }
  topo::Internet* topo() const { return topo_; }
  /// Process-unique instance tag (see detail::next_flow_model_tag): lets
  /// thread-local caches keyed on it (field memo, batch samplers) detect a
  /// different model even if one is reallocated at the same address.
  std::uint64_t instance_tag() const { return model_tag_; }
  const TcpModelParams& params() const { return params_; }
  TcpModelParams& params() { return params_; }

 private:
  double noise(sim::Rng& rng) const {
    return std::exp(rng.normal(0.0, params_.noise_sigma));
  }

  std::shared_ptr<const PathAggregates> build_aggregates(
      const topo::PathRef& path) const;
  double field_utilization(const LinkField& f, sim::Time t) const;

  topo::Internet* topo_;
  std::uint64_t seed_;
  std::uint64_t model_tag_ = detail::next_flow_model_tag();
  sim::Rng rng_;  ///< serial stream backing the legacy overloads only
  TcpModelParams params_;

  // Per-path aggregate memo, keyed on the interned path's address (the
  // stored PathRef inside each entry keeps that address from being
  // recycled). agg_epoch_ tracks the Internet mutation epoch the entries
  // were built against; a mismatch clears the memo lazily.
  mutable std::shared_mutex agg_mu_;
  mutable std::unordered_map<const topo::RouterPath*,
                             std::shared_ptr<const PathAggregates>>
      agg_cache_;
  mutable std::uint64_t agg_epoch_ = 0;  // guarded by agg_mu_
};

}  // namespace cronets::model
