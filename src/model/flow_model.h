#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "topo/internet.h"

namespace cronets::model {

/// Instantaneous condition of one end-to-end path at a sample time.
struct PathMetrics {
  double rtt_ms = 0.0;        ///< average RTT incl. queueing
  double loss = 0.0;          ///< end-to-end packet loss probability
  double residual_bps = 0.0;  ///< min residual capacity along the path
  double capacity_bps = 0.0;  ///< min raw capacity (usually the NIC)
  int hop_count = 0;          ///< router-level hops
  /// Receiver window of the connection's sink (0: use TcpModelParams).
  double rwnd_bytes = 0.0;
};

/// Steady-state TCP throughput model parameters.
struct TcpModelParams {
  double mss = 1460.0;
  double b = 1.0;              ///< ACKed segments per ACK
  double rwnd_bytes = 4.0 * 1024 * 1024;
  /// Multiplier on the loss-based throughput term; calibrated against the
  /// packet-level CUBIC stack (CUBIC is more aggressive than the Reno that
  /// PFTK models). See tests/model_calibration_test.cc.
  double aggressiveness = 1.4;
  double noise_sigma = 0.08;   ///< lognormal measurement noise
};

/// PFTK (Padhye et al.) steady-state TCP throughput in bit/s, capped by the
/// receive window and path capacity. `rtt_ms`/`loss` as in PathMetrics.
double pftk_throughput_bps(double rtt_ms, double loss, double residual_bps,
                           double capacity_bps, const TcpModelParams& p);

/// Analytic "measurement instrument": samples per-link utilizations with an
/// exactly-bridged AR(1) process (the same statistics the packet-level
/// BackgroundProcess produces), derives path metrics, and predicts TCP /
/// split-TCP / MPTCP throughput. Used for the paper's large-scale sweeps
/// (6,600 paths) where packet-level simulation would be prohibitive; its
/// agreement with the packet simulator is enforced by tests.
class FlowModel {
 public:
  FlowModel(topo::Internet* topo, std::uint64_t seed)
      : topo_(topo), rng_(seed) {}

  /// Utilization of one link direction at time `t` (AR(1)-bridged, with
  /// diurnal component and scheduled transient events applied).
  double utilization(int link_id, bool forward, sim::Time t);
  /// Loss probability of one link direction at time `t`.
  double link_loss(int link_id, bool forward, sim::Time t);

  /// Sample the instantaneous metrics of a router path.
  PathMetrics sample(const topo::RouterPath& path, sim::Time t);
  /// Metrics of the concatenation A->O->B (one tunnel; RTT and loss add).
  static PathMetrics concat(const PathMetrics& a, const PathMetrics& b);

  // --- Throughput predictors (bit/s), with measurement noise ---
  double tcp_throughput(const PathMetrics& m);
  /// Plain tunnel overlay: a single TCP connection over the whole A->O->B.
  double overlay_plain(const PathMetrics& leg1, const PathMetrics& leg2);
  /// Split-TCP at the overlay node: min of the two legs' own TCP rates.
  double overlay_split(const PathMetrics& leg1, const PathMetrics& leg2);
  /// Discrete bound: min of independently measured legs (no tunnel cost).
  double discrete(const PathMetrics& leg1, const PathMetrics& leg2);
  /// Coupled MPTCP (OLIA/LIA): ~ the best single path.
  double mptcp_coupled(const std::vector<double>& per_path_tput);
  /// Uncoupled MPTCP: ~ sum of subflows, capped by the NIC.
  double mptcp_uncoupled(const std::vector<double>& per_path_tput, double nic_bps);

  const TcpModelParams& params() const { return params_; }
  TcpModelParams& params() { return params_; }

 private:
  struct ArState {
    bool init = false;
    sim::Time t{};
    double u = 0.0;
  };

  double noise() { return std::exp(rng_.normal(0.0, params_.noise_sigma)); }

  topo::Internet* topo_;
  sim::Rng rng_;
  TcpModelParams params_;
  std::unordered_map<std::int64_t, ArState> state_;  // key: link*2 + dir
};

}  // namespace cronets::model
