#include "model/flow_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "sim/hash_rng.h"

namespace cronets::model {

using sim::Time;

namespace detail {
std::uint64_t next_flow_model_tag() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

namespace {

// Per-thread memo of field_utilization results, keyed by the link
// direction's innovation stream id. The value is a pure function of
// (model, topology mutation epoch, stream, t); the tag comparison is exact,
// so a hit returns the same bits a recompute would. Shared links — access
// links on every overlay leg, common backbone hops — are evaluated once per
// (thread, timestep) instead of once per path traversal.
struct FieldMemoEntry {
  std::uint64_t model = 0;
  std::uint64_t epoch = 0;
  std::int64_t t_ns = 0;
  double u = 0.0;
  bool valid = false;
  // Hoisted AR(1) truncation constants for the scalar utilization() path —
  // a pure function of (model, epoch, stream), so warm probes skip the
  // log/ceil horizon derivation and the weight-norm loop. Stamped
  // separately from the value above: the value goes stale every timestep,
  // the constants only on model/topology change.
  std::uint64_t cmodel = 0;
  std::uint64_t cepoch = 0;
  bool consts_valid = false;
  double a = 0.0;
  int horizon = 1;
  double stationary_sd = 0.0;
  double sqrt_w2 = 1.0;
};

std::unordered_map<std::uint64_t, FieldMemoEntry>& field_memo() {
  thread_local std::unordered_map<std::uint64_t, FieldMemoEntry> memo;
  return memo;
}

}  // namespace

double pftk_throughput_bps(double rtt_ms, double loss, double residual_bps,
                           double capacity_bps, const TcpModelParams& p) {
  const double rtt = std::max(rtt_ms / 1e3, 1e-4);
  double loss_bound_Bps = 1e18;
  if (loss > 1e-9) {
    const double bp = p.b * loss;
    const double t0 = std::max(0.2, 2.0 * rtt);  // RTO estimate
    const double denom = rtt * std::sqrt(2.0 * bp / 3.0) +
                         t0 * std::min(1.0, 3.0 * std::sqrt(3.0 * bp / 8.0)) * loss *
                             (1.0 + 32.0 * loss * loss);
    loss_bound_Bps = p.aggressiveness * p.mss / denom;
  }
  const double wnd_bound_Bps = p.rwnd_bytes / rtt;
  const double cap_Bps = std::min(residual_bps, capacity_bps) / 8.0;
  return 8.0 * std::min({loss_bound_Bps, wnd_bound_Bps, cap_Bps});
}

void pftk_throughput_batch(std::size_t n, const double* rtt_ms,
                           const double* loss, const double* residual_bps,
                           const double* capacity_bps, const double* rwnd_bytes,
                           const TcpModelParams& p, double* out_bps) {
  pftk_throughput_batch(simd::active_level(), n, rtt_ms, loss, residual_bps,
                        capacity_bps, rwnd_bytes, p, out_bps);
}

void pftk_throughput_batch(simd::Level level, std::size_t n,
                           const double* rtt_ms, const double* loss,
                           const double* residual_bps,
                           const double* capacity_bps, const double* rwnd_bytes,
                           const TcpModelParams& p, double* out_bps) {
  // Element-wise mirror of pftk_throughput_bps with the rwnd override
  // applied per element; every kernel level keeps the scalar expression
  // shape (the loss branch becomes a lane blend), so the results are
  // bitwise identical.
  simd::pftk_batch(level, n, rtt_ms, loss, residual_bps, capacity_bps,
                   rwnd_bytes, p, out_bps);
}

double FlowModel::utilization(int link_id, bool forward, Time t) const {
  const auto& link = topo_->links()[link_id];
  const net::BackgroundParams& bg = forward ? link.bg_fwd : link.bg_rev;

  // Stationary AR(1) as a stateless random field: the process value at
  // integer epoch n is the exponentially-weighted sum of hash-indexed
  // innovations, u_n = mean + c * sum_{j<J} a^j e_{n-j}, truncated where
  // the tail weight is negligible and rescaled so the variance is exactly
  // the stationary sigma^2/(1-a^2). Consecutive epochs share J-1
  // innovations, reproducing the AR(1) autocorrelation a^|d| — but unlike
  // the recursive form, any (link, direction, t) can be evaluated
  // independently, in any order, on any thread, with identical bits.
  const std::int64_t n = t.ns() / std::max<std::int64_t>(bg.epoch.ns(), 1);
  const std::uint64_t stream = sim::hash_combine(
      seed_, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(link_id)) << 1) |
                 (forward ? 1u : 0u));

  const std::uint64_t epoch = topo_->mutation_epoch();
  FieldMemoEntry& memo = field_memo()[stream];
  if (memo.valid && memo.model == model_tag_ && memo.epoch == epoch &&
      memo.t_ns == t.ns()) {
    return memo.u;
  }
  if (!(memo.consts_valid && memo.cmodel == model_tag_ && memo.cepoch == epoch)) {
    // Cold path: derive the truncation constants once per (model, epoch).
    // Same expressions as build_aggregates, so warm hits change no bits.
    memo.a = std::clamp(1.0 - bg.theta, 0.0, 0.999);
    memo.horizon = 1;  // smallest J with a^J <= 1e-3 (cap keeps cost bounded)
    if (memo.a > 1e-3) {
      memo.horizon =
          std::min(64, static_cast<int>(std::ceil(-6.907755 / std::log(memo.a))));
    }
    double w = 1.0, w2_sum = 0.0;
    for (int j = 0; j < memo.horizon; ++j) {
      w2_sum += w * w;
      w *= memo.a;
    }
    memo.stationary_sd =
        bg.sigma / std::sqrt(std::max(1e-9, 1.0 - memo.a * memo.a));
    memo.sqrt_w2 = std::sqrt(w2_sum);
    memo.cmodel = model_tag_;
    memo.cepoch = epoch;
    memo.consts_valid = true;
  }
  double acc = 0.0, w = 1.0;
  for (int j = 0; j < memo.horizon; ++j) {
    acc += w * sim::hash_centered(
                   sim::hash_combine(stream, static_cast<std::uint64_t>(n - j)));
    w *= memo.a;
  }
  double u = bg.mean_util + acc * memo.stationary_sd / memo.sqrt_w2;
  u = std::clamp(u, 0.0, 0.98);

  double out = u + net::diurnal_component(bg, t);
  for (const auto& ev : topo_->events()) {
    if (ev.link_id == link_id && ev.forward == forward && t >= ev.from &&
        t < ev.until) {
      out += ev.util_boost;
    }
  }
  out = std::clamp(out, 0.0, 0.98);
  memo.model = model_tag_;
  memo.epoch = epoch;
  memo.t_ns = t.ns();
  memo.u = out;
  memo.valid = true;
  return out;
}

double FlowModel::link_loss(int link_id, bool forward, Time t) const {
  const auto& link = topo_->links()[link_id];
  const net::BackgroundParams& bg = forward ? link.bg_fwd : link.bg_rev;
  double loss = net::loss_from_utilization(bg, utilization(link_id, forward, t));
  for (const auto& ev : topo_->events()) {
    if (ev.link_id == link_id && ev.forward == forward && ev.loss_boost != 0.0 &&
        t >= ev.from && t < ev.until) {
      loss = 1.0 - (1.0 - loss) * (1.0 - ev.loss_boost);
    }
  }
  return loss;
}

PathMetrics FlowModel::sample(const topo::RouterPath& path, Time t) const {
  PathMetrics m;
  m.capacity_bps = 1e18;
  m.residual_bps = 1e18;
  double survive = 1.0;
  double oneway_ms = 0.0;
  for (const auto& trav : path.traversals) {
    const auto& link = topo_->links()[trav.link_id];
    const double u = utilization(trav.link_id, trav.forward, t);
    const net::BackgroundParams& bg = trav.forward ? link.bg_fwd : link.bg_rev;
    // Gray-failure loss events compose multiplicatively onto the survival
    // factor; with no active event the operation sequence is unchanged, so
    // event-free samples keep their exact bits.
    double one_minus_loss = 1.0 - net::loss_from_utilization(bg, u);
    for (const auto& ev : topo_->events()) {
      if (ev.link_id == trav.link_id && ev.forward == trav.forward &&
          ev.loss_boost != 0.0 && t >= ev.from && t < ev.until) {
        one_minus_loss *= (1.0 - ev.loss_boost);
      }
    }
    survive *= one_minus_loss;
    oneway_ms += link.delay_ms;
    // Light cross-traffic queueing (M/M/1-ish, negligible except when hot).
    const double pkt_ms = 1500.0 * 8.0 / link.capacity_bps * 1e3;
    oneway_ms += std::min(5.0, u / std::max(0.02, 1.0 - u) * pkt_ms);
    m.capacity_bps = std::min(m.capacity_bps, link.capacity_bps);
    m.residual_bps = std::min(m.residual_bps, link.capacity_bps * (1.0 - u));
  }
  m.loss = 1.0 - survive;
  m.rtt_ms = 2.0 * oneway_ms;
  m.hop_count = static_cast<int>(path.routers.size());
  return m;
}

std::shared_ptr<const FlowModel::PathAggregates> FlowModel::build_aggregates(
    const topo::PathRef& path) const {
  // Every constant below replicates the exact expression the generic
  // sample()/utilization() pair evaluates per call, so the fast path's
  // arithmetic stays bitwise identical.
  auto agg = std::make_shared<PathAggregates>();
  agg->path = path;
  agg->hop_count = static_cast<int>(path->routers.size());
  agg->links.reserve(path->traversals.size());
  double oneway_ms = 0.0;
  for (const auto& trav : path->traversals) {
    const auto& link = topo_->links()[trav.link_id];
    LinkField f;
    f.bg = trav.forward ? link.bg_fwd : link.bg_rev;
    f.delay_ms = link.delay_ms;
    f.capacity_bps = link.capacity_bps;
    f.pkt_ms = 1500.0 * 8.0 / link.capacity_bps * 1e3;
    f.a = std::clamp(1.0 - f.bg.theta, 0.0, 0.999);
    f.epoch_ns = std::max<std::int64_t>(f.bg.epoch.ns(), 1);
    f.stream = sim::hash_combine(
        seed_,
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(trav.link_id)) << 1) |
            (trav.forward ? 1u : 0u));
    f.horizon = 1;
    if (f.a > 1e-3) {
      f.horizon =
          std::min(64, static_cast<int>(std::ceil(-6.907755 / std::log(f.a))));
    }
    double w = 1.0, w2_sum = 0.0;
    for (int j = 0; j < f.horizon; ++j) {
      w2_sum += w * w;
      w *= f.a;
    }
    f.stationary_sd = f.bg.sigma / std::sqrt(std::max(1e-9, 1.0 - f.a * f.a));
    f.sqrt_w2 = std::sqrt(w2_sum);
    f.has_diurnal = f.bg.diurnal_amp != 0.0;
    for (const auto& ev : topo_->events()) {
      if (ev.link_id == trav.link_id && ev.forward == trav.forward) {
        f.events.push_back(ev);
      }
    }
    oneway_ms += link.delay_ms;
    agg->min_capacity_bps = std::min(agg->min_capacity_bps, link.capacity_bps);
    agg->links.push_back(std::move(f));
  }
  agg->base_rtt_ms = 2.0 * oneway_ms;
  return agg;
}

std::shared_ptr<const FlowModel::PathAggregates> FlowModel::aggregates(
    const topo::PathRef& path) const {
  const std::uint64_t epoch = topo_->mutation_epoch();
  {
    std::shared_lock<std::shared_mutex> lk(agg_mu_);
    if (agg_epoch_ == epoch) {
      auto it = agg_cache_.find(path.get());
      if (it != agg_cache_.end()) return it->second;
    }
  }
  // Build outside the lock; the first insert wins on a race (identical
  // aggregates either way — they are a pure function of path and epoch).
  auto agg = build_aggregates(path);
  std::unique_lock<std::shared_mutex> lk(agg_mu_);
  if (agg_epoch_ != epoch) {
    agg_cache_.clear();
    agg_epoch_ = epoch;
  }
  return agg_cache_.emplace(path.get(), std::move(agg)).first->second;
}

double FlowModel::field_utilization(const LinkField& f, Time t) const {
  const std::uint64_t epoch = topo_->mutation_epoch();
  FieldMemoEntry& memo = field_memo()[f.stream];
  if (memo.valid && memo.model == model_tag_ && memo.epoch == epoch &&
      memo.t_ns == t.ns()) {
    return memo.u;
  }
  // Mirror of utilization() over precomputed constants; every floating
  // point operation appears in the same shape and order.
  const std::int64_t n = t.ns() / f.epoch_ns;
  double acc = 0.0, w = 1.0;
  for (int j = 0; j < f.horizon; ++j) {
    acc += w * sim::hash_centered(
                   sim::hash_combine(f.stream, static_cast<std::uint64_t>(n - j)));
    w *= f.a;
  }
  double u = f.bg.mean_util + acc * f.stationary_sd / f.sqrt_w2;
  u = std::clamp(u, 0.0, 0.98);
  // diurnal_component returns exactly 0.0 when the amplitude is zero, and
  // u >= 0 here, so skipping the call cannot change the sum's bits.
  double out = f.has_diurnal ? u + net::diurnal_component(f.bg, t) : u;
  for (const auto& ev : f.events) {
    if (t >= ev.from && t < ev.until) out += ev.util_boost;
  }
  out = std::clamp(out, 0.0, 0.98);
  // Field-wise write: the entry's hoisted utilization() constants (stamped
  // independently) survive the value refresh.
  memo.model = model_tag_;
  memo.epoch = epoch;
  memo.t_ns = t.ns();
  memo.u = out;
  memo.valid = true;
  return out;
}

PathMetrics FlowModel::sample(const topo::PathRef& path, Time t) const {
  const auto agg = aggregates(path);
  PathMetrics m;
  m.capacity_bps = agg->min_capacity_bps;
  m.residual_bps = 1e18;
  double survive = 1.0;
  double oneway_ms = 0.0;
  for (const LinkField& f : agg->links) {
    const double u = field_utilization(f, t);
    double one_minus_loss = 1.0 - net::loss_from_utilization(f.bg, u);
    for (const auto& ev : f.events) {
      if (ev.loss_boost != 0.0 && t >= ev.from && t < ev.until) {
        one_minus_loss *= (1.0 - ev.loss_boost);
      }
    }
    survive *= one_minus_loss;
    oneway_ms += f.delay_ms;
    // Light cross-traffic queueing (M/M/1-ish, negligible except when hot).
    oneway_ms += std::min(5.0, u / std::max(0.02, 1.0 - u) * f.pkt_ms);
    m.residual_bps = std::min(m.residual_bps, f.capacity_bps * (1.0 - u));
  }
  m.loss = 1.0 - survive;
  m.rtt_ms = 2.0 * oneway_ms;
  m.hop_count = agg->hop_count;
  return m;
}

PathMetrics FlowModel::concat(const PathMetrics& a, const PathMetrics& b) {
  PathMetrics m;
  m.rtt_ms = a.rtt_ms + b.rtt_ms;
  m.loss = 1.0 - (1.0 - a.loss) * (1.0 - b.loss);
  m.residual_bps = std::min(a.residual_bps, b.residual_bps);
  m.capacity_bps = std::min(a.capacity_bps, b.capacity_bps);
  m.hop_count = a.hop_count + b.hop_count;
  m.rwnd_bytes = b.rwnd_bytes > 0 ? b.rwnd_bytes : a.rwnd_bytes;
  return m;
}

double FlowModel::tcp_throughput(const PathMetrics& m, sim::Rng& rng) const {
  TcpModelParams p = params_;
  if (m.rwnd_bytes > 0) p.rwnd_bytes = m.rwnd_bytes;
  double t = pftk_throughput_bps(m.rtt_ms, m.loss, m.residual_bps, m.capacity_bps, p);
  // When the flow saturates the residual capacity it also builds queue;
  // throughput clips slightly below the residual rate.
  const double cap = std::min(m.residual_bps, m.capacity_bps);
  if (t > 0.92 * cap) t = cap * rng.uniform(0.88, 0.96);
  return t * noise(rng);
}

double FlowModel::overlay_plain(const PathMetrics& leg1, const PathMetrics& leg2,
                                sim::Rng& rng) const {
  return tcp_throughput(concat(leg1, leg2), rng);
}

double FlowModel::overlay_split(const PathMetrics& leg1, const PathMetrics& leg2,
                                sim::Rng& rng) const {
  return overlay_split(leg1, leg2, rng, nullptr, nullptr);
}

double FlowModel::overlay_split(const PathMetrics& leg1, const PathMetrics& leg2,
                                sim::Rng& rng, double* leg1_bps,
                                double* leg2_bps) const {
  // Each leg runs its own TCP; the proxy relays with ample buffer. A small
  // efficiency haircut models the proxy's buffer coupling.
  const double t1 = tcp_throughput(leg1, rng);
  const double t2 = tcp_throughput(leg2, rng);
  if (leg1_bps != nullptr) *leg1_bps = t1;
  if (leg2_bps != nullptr) *leg2_bps = t2;
  return 0.97 * std::min(t1, t2);
}

double FlowModel::discrete(const PathMetrics& leg1, const PathMetrics& leg2,
                           sim::Rng& rng) const {
  return std::min(tcp_throughput(leg1, rng), tcp_throughput(leg2, rng));
}

double FlowModel::mptcp_coupled(const std::vector<double>& per_path_tput,
                                sim::Rng& rng) const {
  double best = 0.0;
  for (double t : per_path_tput) best = std::max(best, t);
  // OLIA converges to (roughly) the best path; small shortfall/overshoot
  // from probing the other subflows.
  return best * rng.uniform(0.92, 1.04);
}

double FlowModel::mptcp_uncoupled(const std::vector<double>& per_path_tput,
                                  double nic_bps, sim::Rng& rng) const {
  double sum = 0.0;
  for (double t : per_path_tput) sum += t;
  return std::min(sum * rng.uniform(0.95, 1.0), nic_bps * 0.97);
}

}  // namespace cronets::model
