#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace cronets::sim {

/// Simulated time, stored as integer nanoseconds since the start of the
/// simulation. A strong type so that times, durations and plain integers
/// cannot be mixed up silently.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time nanoseconds(std::int64_t v) { return Time{v}; }
  static constexpr Time microseconds(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time milliseconds(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time seconds(std::int64_t v) { return Time{v * 1'000'000'000}; }
  static constexpr Time minutes(std::int64_t v) { return seconds(v * 60); }
  static constexpr Time hours(std::int64_t v) { return seconds(v * 3600); }
  /// Fractional seconds, e.g. Time::from_seconds(0.25).
  static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_milliseconds() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time rhs) const { return Time{ns_ + rhs.ns_}; }
  constexpr Time operator-(Time rhs) const { return Time{ns_ - rhs.ns_}; }
  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time{ns_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ns_ / k}; }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// Time needed to serialize `bytes` at `bits_per_second` on the wire.
constexpr Time transmission_time(std::int64_t bytes, double bits_per_second) {
  return Time{static_cast<std::int64_t>(static_cast<double>(bytes) * 8.0 /
                                        bits_per_second * 1e9)};
}

}  // namespace cronets::sim
