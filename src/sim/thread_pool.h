#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cronets::sim {

/// How many threads the measurement engine may use. `threads == 0` means
/// auto: the `CRONETS_THREADS` environment variable if set, else hardware
/// concurrency. `threads == 1` forces fully serial execution.
struct Parallelism {
  int threads = 0;
  /// The concrete thread count this config resolves to (always >= 1).
  int resolved() const;
};

/// Persistent chunk-claiming thread pool for embarrassingly parallel index
/// loops. Workers (plus the calling thread) grab contiguous index chunks
/// off a shared atomic cursor, so load-imbalanced bodies still fill all
/// cores without per-item synchronization. Bodies must be independent per
/// index; result ordering is the caller's index space, so output is
/// identical at any thread count.
class ThreadPool {
 public:
  explicit ThreadPool(Parallelism par = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a parallel_for (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run body(i) for every i in [0, n). Blocks until all iterations are
  /// done. Rethrows the first body exception in the calling thread. Not
  /// reentrant: bodies must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t cursor = 0;      // next unclaimed index (guarded by mu_)
    std::size_t done = 0;        // completed iterations (guarded by mu_)
    std::uint64_t generation = 0;
    std::exception_ptr error;    // first failure, rethrown by the caller
  };

  void worker_loop();
  /// Claim and run chunks of the current job until the cursor is spent.
  void drain(std::uint64_t generation);

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: new job / shutdown
  std::condition_variable done_cv_;   // signals caller: all iterations done
  Job job_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cronets::sim
