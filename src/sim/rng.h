#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace cronets::sim {

/// Deterministic random source. All stochastic behaviour in the simulator is
/// funnelled through one of these so that a (seed) pair fully reproduces a
/// run. Components should derive sub-streams via `fork()` to stay decoupled
/// from each other's consumption order.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Independent child stream; deterministic function of parent state.
  Rng fork() { return Rng{engine_()}; }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  double uniform(double lo, double hi) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  double exponential(double mean) {
    assert(mean > 0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  double normal(double mean, double stdev) {
    return std::normal_distribution<double>{mean, stdev}(engine_);
  }

  /// Normal clipped to [lo, hi].
  double clipped_normal(double mean, double stdev, double lo, double hi) {
    return std::clamp(normal(mean, stdev), lo, hi);
  }

  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha) {
    assert(x_m > 0 && alpha > 0);
    double u = 1.0 - uniform();  // (0,1]
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[index(v.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Weighted index draw; weights need not be normalised.
  std::size_t weighted_index(const std::vector<double>& weights) {
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights) total += w;
    assert(total > 0.0);
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cronets::sim
