#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace cronets::sim {

/// Deterministic single-threaded discrete-event simulator.
///
/// All network components hold a Simulator* and schedule callbacks on it.
/// Typical usage:
///
///   Simulator simv;
///   simv.schedule_in(Time::milliseconds(5), [] { ... });
///   simv.run_until(Time::seconds(30));
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()). Accepts any
  /// callable; it is stored in the event arena without a std::function
  /// round-trip (no allocation for reasonably-sized captures).
  template <typename F>
  EventHandle schedule_at(Time at, F&& cb) {
    assert(at >= now_ && "cannot schedule into the past");
    return queue_.schedule(at, std::forward<F>(cb));
  }

  /// Schedule `cb` after `delay` from now.
  template <typename F>
  EventHandle schedule_in(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Run every event with time <= deadline. Clock ends at the deadline.
  void run_until(Time deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      now_ = queue_.next_time();  // advance the clock BEFORE the callback runs
      queue_.run_next();
      ++events_run_;
    }
    if (deadline > now_) now_ = deadline;
  }

  /// Run until the event queue drains completely.
  void run() {
    while (!queue_.empty()) {
      now_ = queue_.next_time();
      queue_.run_next();
      ++events_run_;
    }
  }

  std::uint64_t events_run() const { return events_run_; }
  bool idle() { return queue_.empty(); }

 private:
  Time now_ = Time::zero();
  EventQueue queue_;
  std::uint64_t events_run_ = 0;
};

}  // namespace cronets::sim
