#include "sim/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace cronets::sim {

namespace {

void warn(const char* name, const char* value, const char* why) {
  std::fprintf(stderr, "cronets: ignoring %s=\"%s\" (%s); using the default\n",
               name, value, why);
}

/// True the first time a given (knob, reason) pair warns; later calls for
/// the same pair stay silent, so a knob read in a hot loop (per-shard, per
/// round) complains once instead of flooding stderr.
bool first_warning(const char* name, const char* why) {
  static std::mutex mu;
  static std::set<std::string> seen;
  std::lock_guard<std::mutex> lock(mu);
  return seen.insert(std::string(name) + '\0' + why).second;
}

/// True when `s` is non-empty and `end` consumed it entirely (trailing
/// whitespace allowed, so "8 " parses but "8x" does not).
bool fully_parsed(const char* s, const char* end) {
  if (end == s) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

}  // namespace

long env_int(const char* name, long def, long lo, long hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (!fully_parsed(s, end) || errno == ERANGE) {
    warn(name, s, "not an integer");
    return def;
  }
  if (v < lo || v > hi) {
    std::fprintf(stderr,
                 "cronets: ignoring %s=%ld (outside [%ld, %ld]); using the "
                 "default\n",
                 name, v, lo, hi);
    return def;
  }
  return v;
}

long env_int_clamped(const char* name, long def, long lo, long hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (!fully_parsed(s, end) || errno == ERANGE) {
    if (first_warning(name, "not an integer")) warn(name, s, "not an integer");
    return def;
  }
  if (v < lo || v > hi) {
    const long clamped = v < lo ? lo : hi;
    if (first_warning(name, "clamped")) {
      std::fprintf(stderr,
                   "cronets: clamping %s=%ld into [%ld, %ld] -> %ld\n", name,
                   v, lo, hi, clamped);
    }
    return clamped;
  }
  return v;
}

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* s = std::getenv(name);
  if (s == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  // Reject the sign strtoull would silently wrap.
  const char* digits = s;
  while (std::isspace(static_cast<unsigned char>(*digits))) ++digits;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (!fully_parsed(s, end) || errno == ERANGE || *digits == '-') {
    warn(name, s, "not an unsigned integer");
    return def;
  }
  return static_cast<std::uint64_t>(v);
}

double env_double(const char* name, double def, double lo, double hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (!fully_parsed(s, end) || errno == ERANGE) {
    warn(name, s, "not a number");
    return def;
  }
  if (!(v >= lo && v <= hi)) {  // also rejects NaN
    std::fprintf(stderr,
                 "cronets: ignoring %s=%g (outside [%g, %g]); using the "
                 "default\n",
                 name, v, lo, hi);
    return def;
  }
  return v;
}

double env_double_clamped(const char* name, double def, double lo, double hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return def;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (!fully_parsed(s, end) || errno == ERANGE || v != v) {
    if (first_warning(name, "not a number")) warn(name, s, "not a number");
    return def;
  }
  if (v < lo || v > hi) {
    const double clamped = v < lo ? lo : hi;
    if (first_warning(name, "clamped")) {
      std::fprintf(stderr, "cronets: clamping %s=%g into [%g, %g] -> %g\n",
                   name, v, lo, hi, clamped);
    }
    return clamped;
  }
  return v;
}

int env_choice(const char* name, int def,
               std::initializer_list<const char*> choices) {
  const char* s = std::getenv(name);
  if (s == nullptr) return def;
  int i = 0;
  for (const char* c : choices) {
    if (std::strcmp(s, c) == 0) return i;
    ++i;
  }
  if (first_warning(name, "bad choice")) {
    std::fprintf(stderr, "cronets: ignoring %s=\"%s\" (expected one of:", name,
                 s);
    for (const char* c : choices) std::fprintf(stderr, " %s", c);
    std::fprintf(stderr, "); using the default\n");
  }
  return def;
}

bool env_flag(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return false;
  return std::strcmp(s, "0") != 0 && std::strcmp(s, "false") != 0 &&
         std::strcmp(s, "off") != 0;
}

}  // namespace cronets::sim
