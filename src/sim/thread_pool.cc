#include "sim/thread_pool.h"

#include <algorithm>

#include "sim/env.h"

namespace cronets::sim {

int Parallelism::resolved() const {
  if (threads > 0) return threads;
  const long n = env_int("CRONETS_THREADS", 0, 1, 4096);
  if (n > 0) return static_cast<int>(n);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(Parallelism par) {
  const int n = std::max(1, par.resolved());
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_.body = &body;
    job_.n = n;
    // ~8 chunks per thread balances claim overhead against imbalance.
    job_.grain = std::max<std::size_t>(1, n / (static_cast<std::size_t>(size()) * 8));
    job_.cursor = 0;
    job_.done = 0;
    job_.error = nullptr;
    ++job_.generation;
    generation = job_.generation;
  }
  work_cv_.notify_all();

  drain(generation);

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return job_.done == job_.n; });
  job_.body = nullptr;
  if (job_.error) std::rethrow_exception(job_.error);
}

void ThreadPool::drain(std::uint64_t generation) {
  for (;;) {
    std::size_t lo, hi;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (job_.generation != generation || job_.cursor >= job_.n) return;
      lo = job_.cursor;
      hi = std::min(job_.n, lo + job_.grain);
      job_.cursor = hi;
    }
    std::exception_ptr err;
    for (std::size_t i = lo; i < hi; ++i) {
      if (!err) {
        try {
          (*job_.body)(i);
        } catch (...) {
          err = std::current_exception();
        }
      }
    }
    bool all_done;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !job_.error) job_.error = err;
      job_.done += hi - lo;
      all_done = job_.done == job_.n;
    }
    if (all_done) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t generation;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (job_.body != nullptr && job_.generation != seen &&
                         job_.cursor < job_.n);
      });
      if (stop_) return;
      generation = job_.generation;
    }
    seen = generation;
    drain(generation);
  }
}

}  // namespace cronets::sim
