#pragma once

#include <cstdint>
#include <initializer_list>

namespace cronets::sim {

/// Centralized CRONETS_* environment-knob parsing. Every helper parses the
/// variable strictly (the whole value must be a number of the right type,
/// in [lo, hi]); a set-but-garbage or out-of-range value prints one warning
/// to stderr and falls back to `def` instead of being silently ignored —
/// a mistyped knob on a long bench run should be loud, not invisible.
///
/// Helpers read the environment on every call: cache the result at the
/// call site (`static const int n = env_int(...)`) when the knob guards a
/// hot path.

/// Integer knob in [lo, hi]; `def` when unset or rejected.
long env_int(const char* name, long def, long lo, long hi);

/// Integer knob clamped into [lo, hi]: an out-of-range value is pulled to
/// the nearest bound (with a one-shot stderr warning) instead of being
/// replaced by the default — "CRONETS_MAX_HOPS=0" means "as few hops as
/// allowed", not "whatever the default is". Garbage still falls back to
/// `def` (one-shot warning). Use for knobs where the valid range is a
/// mechanical limit rather than a semantic choice.
long env_int_clamped(const char* name, long def, long lo, long hi);

/// Unsigned 64-bit knob (seeds); `def` when unset or rejected.
std::uint64_t env_u64(const char* name, std::uint64_t def);

/// Floating-point knob in [lo, hi]; `def` when unset or rejected.
double env_double(const char* name, double def, double lo, double hi);

/// Floating-point knob clamped into [lo, hi]: an out-of-range value is
/// pulled to the nearest bound (one-shot stderr warning) instead of being
/// replaced by the default — "CRONETS_PARETO_ALPHA=2" means "all goodput",
/// not "whatever the default is". Garbage (and NaN) still falls back to
/// `def` with a one-shot warning, mirroring env_int_clamped.
double env_double_clamped(const char* name, double def, double lo, double hi);

/// Boolean knob: unset, "0", "false", "off", or "" are false; any other
/// value (including "1", "true", "on") is true.
bool env_flag(const char* name);

/// Choice knob: returns the index of the value in `choices` (exact,
/// case-sensitive match); `def` when unset or — with a one-shot warning
/// listing the accepted values — when the value matches none of them.
int env_choice(const char* name, int def,
               std::initializer_list<const char*> choices);

}  // namespace cronets::sim
