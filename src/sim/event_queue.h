#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace cronets::sim {

class EventQueue;

/// Handle to a scheduled event; allows O(1) logical cancellation.
/// Cancelled events stay in the heap but are skipped when popped.
///
/// A handle is a (queue, slot, generation) triple into the queue's event
/// arena: when the event fires or is cancelled its slot's generation is
/// bumped, so stale handles become inert (pending() false, cancel() no-op).
/// Handles must not outlive their EventQueue.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has not fired or been
  /// cancelled yet.
  bool pending() const;

  /// Cancel the event. Safe to call on empty or already-fired handles.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
      : queue_(q), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Priority queue of timed callbacks. FIFO among events with equal time.
///
/// Storage is an arena of generation-counted slots recycled through a free
/// list: each scheduled callback is constructed in place inside its slot
/// (heap fallback only for callables larger than the inline buffer), heap
/// entries are 24-byte PODs, and slot chunks are allocated once and reused
/// for the lifetime of the queue — so steady-state schedule/cancel/fire
/// cycles perform no allocations at all.
class EventQueue {
 public:
  /// Legacy alias; schedule() accepts any callable, not just std::function.
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    for (std::uint32_t i = 0; i < slot_count_; ++i) {
      Slot& s = slot(i);
      if (s.invoke != nullptr) s.release();
    }
  }

  template <typename F>
  EventHandle schedule(Time at, F&& cb) {
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    s.emplace(std::forward<F>(cb));
    heap_.push(Entry{at, next_seq_++, idx, s.gen});
    return EventHandle{this, idx, s.gen};
  }

  /// True when no live (non-cancelled) event remains.
  bool empty() {
    drop_stale();
    return heap_.empty();
  }

  /// Earliest live event time; Time::max() when empty.
  Time next_time() {
    drop_stale();
    return heap_.empty() ? Time::max() : heap_.top().at;
  }

  /// Pop and run the earliest live event. Returns false when empty.
  bool run_next(Time* fired_at = nullptr) {
    drop_stale();
    if (heap_.empty()) return false;
    const Entry e = heap_.top();  // POD — no callback copied off the heap
    heap_.pop();
    Slot& s = slot(e.slot);
    // Invalidate handles before running (pending() flips, and a cancel()
    // from inside the callback is a harmless no-op), but keep the slot off
    // the free list until the callback returns so reentrant schedule()
    // calls cannot reuse its storage.
    ++s.gen;
    if (fired_at) *fired_at = e.at;
    s.invoke(s.storage);
    s.release();
    free_slot(e.slot);
    return true;
  }

 private:
  friend class EventHandle;

  /// Callables up to this size (and with fundamental alignment) run from
  /// the slot itself; larger ones fall back to one heap allocation. Sized
  /// so the packet-in-flight lambdas of net::Link stay inline.
  static constexpr std::size_t kInlineBytes = 248;
  static constexpr std::uint32_t kSlotsPerChunk = 128;
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  struct Slot {
    void (*invoke)(void*) = nullptr;   // non-null iff a callback is stored
    void (*destroy)(void*) = nullptr;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoFreeSlot;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];

    template <typename F>
    void emplace(F&& cb) {
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineBytes &&
                    alignof(Fn) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(storage)) Fn(std::forward<F>(cb));
        invoke = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
        destroy = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
      } else {
        ::new (static_cast<void*>(storage)) Fn*(new Fn(std::forward<F>(cb)));
        invoke = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
        destroy = [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); };
      }
    }

    void release() {
      destroy(storage);
      invoke = nullptr;
      destroy = nullptr;
    }
  };

  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx / kSlotsPerChunk][idx % kSlotsPerChunk];
  }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx / kSlotsPerChunk][idx % kSlotsPerChunk];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoFreeSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot(idx).next_free;
      return idx;
    }
    if (slot_count_ == chunks_.size() * kSlotsPerChunk) {
      chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
    }
    return slot_count_++;
  }

  void free_slot(std::uint32_t idx) {
    Slot& s = slot(idx);
    s.next_free = free_head_;
    free_head_ = idx;
  }

  bool live(std::uint32_t idx, std::uint32_t gen) const {
    return idx < slot_count_ && slot(idx).gen == gen &&
           slot(idx).invoke != nullptr;
  }

  void cancel(std::uint32_t idx, std::uint32_t gen) {
    if (!live(idx, gen)) return;
    Slot& s = slot(idx);
    ++s.gen;  // stale heap entry is dropped when it reaches the top
    s.release();
    free_slot(idx);
  }

  void drop_stale() {
    while (!heap_.empty() && slot(heap_.top().slot).gen != heap_.top().gen) {
      heap_.pop();
    }
  }

  // Chunked so slot addresses stay stable while callbacks run and schedule
  // more events; chunks are never returned until destruction.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->live(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel(slot_, gen_);
}

}  // namespace cronets::sim
