#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace cronets::sim {

/// Handle to a scheduled event; allows O(1) logical cancellation.
/// Cancelled events stay in the heap but are skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has not fired or been
  /// cancelled yet.
  bool pending() const { return state_ && !*state_; }

  /// Cancel the event. Safe to call on empty or already-fired handles.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // *state_ == true  =>  cancelled or fired
};

/// Priority queue of timed callbacks. FIFO among events with equal time.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventHandle schedule(Time at, Callback cb) {
    auto state = std::make_shared<bool>(false);
    heap_.push(Entry{at, next_seq_++, std::move(cb), state});
    return EventHandle{std::move(state)};
  }

  /// True when no live (non-cancelled) event remains.
  bool empty() {
    drop_cancelled();
    return heap_.empty();
  }

  /// Earliest live event time; Time::max() when empty.
  Time next_time() {
    drop_cancelled();
    return heap_.empty() ? Time::max() : heap_.top().at;
  }

  /// Pop and run the earliest live event. Returns false when empty.
  bool run_next(Time* fired_at = nullptr) {
    drop_cancelled();
    if (heap_.empty()) return false;
    Entry e = heap_.top();
    heap_.pop();
    *e.cancelled = true;  // mark fired so handle.pending() flips
    if (fired_at) *fired_at = e.at;
    e.cb();
    return true;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cronets::sim
