#include "sim/time.h"

#include <cstdio>

namespace cronets::sim {

std::string Time::to_string() const {
  char buf[64];
  if (ns_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (ns_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_milliseconds());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace cronets::sim
