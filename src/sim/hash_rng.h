#pragma once

#include <cmath>
#include <cstdint>

namespace cronets::sim {

/// Counter-based (stateless) random primitives. Unlike `Rng`, which owns a
/// sequential engine, these map a key directly to a draw, so any thread can
/// evaluate any draw in any order and get the same bits — the foundation of
/// the parallel measurement engine's determinism guarantee.

/// Fibonacci-hashing finalizer (splitmix64); full-avalanche on 64 bits.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-sensitive combination of two keys into one stream id.
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/// Uniform double in (0, 1) from a key (never exactly 0 or 1).
inline double hash_u01(std::uint64_t key) {
  return (static_cast<double>(splitmix64(key) >> 11) + 0.5) * 0x1.0p-53;
}

/// Zero-mean, unit-variance draw from a key. Uniform on
/// [-sqrt(3), sqrt(3)] — the flow model only consumes these inside long
/// exponentially-weighted sums, whose totals are Gaussian by CLT, so the
/// cheap flat innovation is statistically equivalent to N(0,1) there.
inline double hash_centered(std::uint64_t key) {
  return (hash_u01(key) - 0.5) * 3.4641016151377544;  // 2*sqrt(3)
}

/// Standard normal from a key (Box-Muller; two decorrelated sub-draws).
inline double hash_normal(std::uint64_t key) {
  const double u1 = hash_u01(key);
  const double u2 = hash_u01(key ^ 0x5851f42d4c957f2dull);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(6.28318530717958647692 * u2);
}

/// Canonical packed (src, dst) endpoint-pair key: the 64-bit id every
/// per-pair table keys on (ranker indices, batch plans, shard hashing,
/// route tables). Feed through splitmix64 when a uniform hash of the pair
/// is needed (e.g. ShardedBroker::shard_of).
inline std::uint64_t pack_pair(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

/// Seed of the measurement-noise stream for one (src, dst, time) pair.
/// Every stochastic draw inside one pair measurement comes from an `Rng`
/// seeded with this, which is what makes results independent of the order
/// (and thread) in which pairs are measured.
inline std::uint64_t pair_seed(std::uint64_t world_seed, int src, int dst,
                               std::int64_t t_ns) {
  std::uint64_t h = hash_combine(world_seed, static_cast<std::uint64_t>(src));
  h = hash_combine(h, static_cast<std::uint64_t>(dst));
  return hash_combine(h, static_cast<std::uint64_t>(t_ns));
}

}  // namespace cronets::sim
