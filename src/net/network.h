#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/link.h"
#include "net/router.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace cronets::net {

/// Properties for one (bidirectional) link.
struct LinkSpec {
  double capacity_bps = 1e9;
  sim::Time prop_delay = sim::Time::milliseconds(1);
  std::int64_t queue_limit_bytes = 512 * 1024;
  BackgroundParams background{};
};

/// Owns a materialized packet-level network: nodes and links, with helpers
/// to build graphs and install routes. Larger experiments materialize only
/// the paths they exercise rather than the whole Internet map.
class Network {
 public:
  Network(sim::Simulator* simv, sim::Rng rng) : sim_(simv), rng_(std::move(rng)) {}

  Host* add_host(const std::string& name);
  Router* add_router(const std::string& name);

  /// Adds links in both directions with identical spec; returns {a->b, b->a}.
  std::pair<Link*, Link*> add_link(Node* a, Node* b, const LinkSpec& spec);
  /// Adds links with asymmetric background (e.g. congested only one way).
  std::pair<Link*, Link*> add_link(Node* a, Node* b, const LinkSpec& forward,
                                   const LinkSpec& reverse);

  /// Install host routes along an explicit node path for `dst` (forward
  /// direction) — every node on the path learns the next hop toward dst.
  void install_path(const std::vector<Node*>& path, IpAddr dst);

  /// Compute shortest-delay routes between all node pairs and install host
  /// routes for every host address. Convenient for small test networks.
  void compute_routes();

  sim::Simulator* simulator() const { return sim_; }
  sim::Rng& rng() { return rng_; }
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  Link* find_link(Node* a, Node* b) const;

 private:
  void install_route(Node* at, IpAddr dst, Link* out);

  sim::Simulator* sim_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;
  std::uint32_t next_addr_ = 0x0a000001;  // 10.0.0.1
};

}  // namespace cronets::net
