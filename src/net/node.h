#pragma once

#include <string>

#include "net/packet.h"
#include "net/types.h"

namespace cronets::net {

class Link;

/// Anything that can terminate a link: routers and hosts.
class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Deliver `pkt` arriving over `from` (nullptr for locally injected).
  virtual void receive(Packet pkt, Link* from) = 0;

  /// Install `next_hop` as the route toward `dst`. Routers and hosts both
  /// keep host routes; the topology layer installs paths without caring
  /// which it is talking to.
  virtual void add_route(IpAddr dst, Link* next_hop) = 0;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace cronets::net
