#include "net/link.h"

#include <algorithm>

namespace cronets::net {

void Link::send(Packet pkt) {
  if (down_) {
    ++stats_.random_drops;
    return;
  }
  // Random loss models drops suffered at this hop due to competing
  // background bursts that our queue does not explicitly contain.
  if (rng_.bernoulli(bg_.loss_prob(sim_->now()))) {
    ++stats_.random_drops;
    return;
  }
  const std::int64_t sz = pkt.size_bytes();
  if (queued_bytes_ + sz > queue_limit_bytes_) {
    ++stats_.queue_drops;
    return;
  }
  if (qdisc_ == QueueDiscipline::kRed && !red_admits(sz)) {
    ++stats_.red_drops;
    return;
  }
  queue_.push_back(std::move(pkt));
  queued_bytes_ += sz;
  if (!transmitting_) start_transmission();
}

bool Link::red_admits(std::int64_t pkt_bytes) {
  (void)pkt_bytes;
  // EWMA of the instantaneous queue, updated on every arrival.
  red_avg_bytes_ =
      (1.0 - red_.weight) * red_avg_bytes_ + red_.weight * static_cast<double>(queued_bytes_);
  const double min_th = red_.min_th_fraction * static_cast<double>(queue_limit_bytes_);
  const double max_th = red_.max_th_fraction * static_cast<double>(queue_limit_bytes_);
  if (red_avg_bytes_ <= min_th) return true;
  if (red_avg_bytes_ >= max_th) return false;
  const double p = red_.max_p * (red_avg_bytes_ - min_th) / (max_th - min_th);
  return !rng_.bernoulli(p);
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const Packet& pkt = queue_.front();
  // Residual rate: background flows consume u(t) of the raw capacity.
  const double rate = std::max(1e3, available_bps());
  const sim::Time tx = sim::transmission_time(pkt.size_bytes(), rate);
  sim_->schedule_in(tx, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= pkt.size_bytes();
  ++stats_.tx_packets;
  stats_.tx_bytes += static_cast<std::uint64_t>(pkt.size_bytes());

  // Propagation: deliver to the far end after the flight time.
  sim_->schedule_in(prop_delay_, [this, p = std::move(pkt)]() mutable {
    dst_->receive(std::move(p), this);
  });

  start_transmission();
}

}  // namespace cronets::net
