#include "net/router.h"

namespace cronets::net {

void Router::receive(Packet pkt, Link* /*from*/) {
  if (pkt.outer().dst == addr_) {
    // Routers terminate nothing except stray ICMP addressed to them.
    return;
  }
  if (--pkt.ttl <= 0) {
    send_time_exceeded(pkt);
    return;
  }
  Link* out = route(pkt.outer().dst);
  if (!out) {
    ++no_route_drops_;
    return;
  }
  ++forwarded_;
  out->send(std::move(pkt));
}

void Router::send_time_exceeded(const Packet& original) {
  Link* back = route(original.outer().src);
  if (!back) return;

  Packet reply;
  reply.headers.push_back(
      Ipv4Header{.src = addr_, .dst = original.outer().src, .proto = IpProto::kIcmp});
  reply.ttl = 64;
  IcmpMessage msg;
  msg.type = IcmpType::kTimeExceeded;
  msg.original_dst = original.outer().dst;
  if (original.is_icmp()) {
    msg.probe_id = original.icmp().probe_id;
    msg.original_ttl = original.icmp().original_ttl;
  }
  reply.body = msg;
  back->send(std::move(reply));
}

}  // namespace cronets::net
